// The protocol registry and the declarative Scenario API.
//
// A ScenarioSpec is a complete, declarative description of one experiment
// cell: which protocol, at which population size, from which named
// adversarial initial condition, on which engine and batching strategy,
// run until which stop condition, for how many seeded trials. The registry
// maps protocol names to type-erased entries that know how to execute a
// spec end to end and return a ScenarioResult (per-trial measurements +
// summary + resolved configuration), so harnesses — tools/ppsle_run, the
// bench binaries, the tests — compose experiments as data instead of
// hand-writing a .cpp per (protocol x n x adversary x horizon) cell.
//
// This header is protocol-agnostic on purpose: it defines only the spec,
// result, entry and registry types (type-erased behind std::function).
// The concrete protocols are registered in analysis/scenarios.h, which is
// where the template machinery that builds an entry's run() lives.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/engine.h"
#include "core/faults.h"
#include "core/stats.h"

namespace ppsim {

// One experiment cell, fully declarative. Empty/zero fields mean "the
// protocol's registered default".
struct ScenarioSpec {
  std::string protocol;        // registry name (required)
  std::uint32_t n = 0;         // population size (0 = entry default_n)
  std::string init;            // initial-condition name ("" = entry default)
  std::string engine = "auto";    // array | batch | auto (batch if able) |
                                  // ode (APPROXIMATE mean-field drift)
  std::string strategy = "auto";  // geometric_skip | multinomial | auto |
                                  // sharded (intra-run parallelism) |
                                  // tau (APPROXIMATE tau-leaping)
  std::uint32_t shards = 0;    // strategy=sharded: worker shard count
                               // (0 = the engine's fixed default, 8;
                               // clamped to n/2). Results depend on
                               // (seed, shards), never on the executing
                               // thread count.
  std::string until;           // stop condition name ("" = entry default)
  std::uint64_t max_interactions = 0;  // hard horizon (0 = entry default)
  double horizon_ptime = 0.0;  // until=ptime: the fixed parallel-time budget
  double tail_ptime = -1.0;    // ranked runs: extra correct window (<0 =
                               // entry default)
  std::uint32_t trials = 1;
  std::uint64_t seed = 1;      // base seed; trial t runs derive_seed(seed, t)
  std::uint32_t threads = 0;   // trial fan-out (0 = env/hardware)
  double tau_eps = 0.0;        // strategy=tau: leap-size knob ("tau.eps=",
                               // 0 = kDefaultTauEps); engine=ode reuses it
                               // as the RK4 step in parallel-time units.
                               // Approximate results are pure functions of
                               // (seed, tau_eps) and stamped as such.
  FaultSpec faults;            // fault.drop= / fault.oneway= / fault.churn=
                               // (core/faults.h). Exact on array, batch and
                               // sharded; rejected on the approximate tier
                               // (tau / ode), whose error bounds assume the
                               // fault-free transition rates. Any non-zero
                               // knob stamps the result `faulted`.
  std::string topology;        // interaction graph (core/topology.h):
                               // "" | complete | ring | line | star |
                               // mesh:RxC | torus:RxC | custom:<path>.
                               // "" = complete (the classical scheduler,
                               // bit-identical). Non-complete graphs run on
                               // the agent array; the ring additionally has
                               // the run-length-compressed count engine.
                               // Joins the record identity when non-complete.

  // Protocol-constant overrides ("param.<name>=<value>" on the CLI / in
  // matrix files): each entry is interpreted by the protocol's registered
  // runner through a ParamReader. Unknown names are hard errors, exactly
  // like unknown spec keys.
  std::vector<std::pair<std::string, std::string>> params;
};

// Typed view over ScenarioSpec::params for a protocol runner: each lookup
// marks its key consumed, and finish() rejects leftovers so a typo'd or
// misplaced override fails loudly instead of silently running defaults.
class ParamReader {
 public:
  explicit ParamReader(const ScenarioSpec& spec)
      : params_(spec.params), used_(spec.params.size(), false) {}

  double number(const std::string& name, double fallback) {
    const std::string* v = find(name);
    if (v == nullptr) return fallback;
    try {
      std::size_t pos = 0;
      const double d = std::stod(*v, &pos);
      if (pos != v->size()) throw std::invalid_argument(*v);
      return d;
    } catch (...) {
      throw std::invalid_argument("param '" + name + "' is not a number: '" +
                                  *v + "'");
    }
  }

  std::uint64_t integer(const std::string& name, std::uint64_t fallback) {
    const std::string* v = find(name);
    if (v == nullptr) return fallback;
    try {
      std::size_t pos = 0;
      const unsigned long long u = std::stoull(*v, &pos);
      if (pos != v->size()) throw std::invalid_argument(*v);
      return u;
    } catch (...) {
      throw std::invalid_argument("param '" + name +
                                  "' is not an integer: '" + *v + "'");
    }
  }

  bool flag(const std::string& name, bool fallback) {
    const std::string* v = find(name);
    if (v == nullptr) return fallback;
    if (*v == "1" || *v == "true") return true;
    if (*v == "0" || *v == "false") return false;
    throw std::invalid_argument("param '" + name +
                                "' is not a flag (0|1|true|false): '" + *v +
                                "'");
  }

  // Call after the last lookup; throws listing every unconsumed key.
  void finish() const {
    std::string unknown;
    for (std::size_t i = 0; i < params_.size(); ++i) {
      if (used_[i]) continue;
      if (!unknown.empty()) unknown += ", ";
      unknown += params_[i].first;
    }
    if (!unknown.empty())
      throw std::invalid_argument(
          "unknown param(s) for this protocol: " + unknown);
  }

 private:
  // Last occurrence wins (CLI-override semantics); every occurrence is
  // marked consumed.
  const std::string* find(const std::string& name) {
    const std::string* out = nullptr;
    for (std::size_t i = 0; i < params_.size(); ++i) {
      if (params_[i].first != name) continue;
      used_[i] = true;
      out = &params_[i].second;
    }
    return out;
  }

  const std::vector<std::pair<std::string, std::string>>& params_;
  std::vector<char> used_;
};

// What one executed spec measured. `values` holds the per-trial metric —
// stabilization/stop parallel time for predicate-style stop conditions,
// per-trial wall seconds for fixed-budget (until=ptime) runs; failed trials
// (horizon hit before the stop condition) contribute -1, mirroring the
// bench convention.
struct ScenarioResult {
  std::string metric = "parallel_time";
  Summary summary;             // over `values`
  std::vector<double> values;  // per-trial, trial index = vector index
  std::string backend;         // resolved: "array" | "batch"
  std::string strategy;        // resolved; empty on the array engine
  std::string engine_arm;      // strategy controller's whole-run pick when
                               // engine=auto + strategy=auto left it the
                               // choice ("" when the spec pinned it)
  StrategyTrace trace;         // per-arm steps/interactions, merged over
                               // all trials (the controller decision trace)
  std::uint32_t shards = 0;    // resolved shard count (sharded runs only)
  std::string init;            // resolved initial-condition name
  std::string until;           // resolved stop-condition name
  std::string topology;        // resolved interaction graph ("complete"
                               // unless the spec named another; joins the
                               // record identity when non-complete)
  std::vector<std::pair<std::string, std::string>> params;  // echoed spec
  std::uint32_t n = 0;
  std::uint64_t trials = 0;
  std::uint64_t failed = 0;            // trials that hit the horizon
  double wall_seconds = 0.0;           // whole scenario (all trials)
  double interactions_mean = 0.0;      // per trial

  // Honesty stamp for the approximate tier (strategy=tau / engine=ode):
  // true means the values are NOT exact-in-distribution and must never be
  // strict-diffed against exact baselines (bench_compare exempts them).
  bool approximate = false;
  double tau_eps = 0.0;  // resolved knob behind an approximate result

  // Honesty stamp for state-abstracted protocols (e.g. the count-form
  // Sublinear-Time-SSR quotient): the *protocol itself* is a truncated
  // abstraction of the one named in the experiment, so values can diverge
  // from the concrete dynamics even under an exact engine. Orthogonal to
  // `approximate` (an abstracted protocol run under tau carries both).
  // bench_compare exempts abstracted records from --strict drift the same
  // way it exempts approximate ones.
  bool abstracted = false;

  // Honesty stamp for fault injection: true means the scheduler layer was
  // unreliable (some fault knob non-zero), so values measure behaviour
  // under the FaultSpec's law, not the paper's fault-free model. UNLIKE
  // approximate/abstracted, faulted results keep the full bit-determinism
  // contract — seeded faults reproduce exactly, so bench_compare --strict
  // still applies. The knobs are part of the record identity.
  bool faulted = false;
  FaultSpec faults;  // echoed spec (all-zero when faulted == false)
};

// A registered protocol: metadata for --list plus the type-erased runner.
struct ProtocolEntry {
  std::string name;         // registry key, e.g. "optimal-silent"
  std::string description;  // one line for --list
  std::string states;       // state-space size, human form, e.g. "~35n"
  bool silent = false;      // does the protocol stabilize to silence?
  bool batch_capable = false;  // EnumerableProtocol => count engine works
  std::uint32_t fixed_n = 0;   // nonzero: protocol is defined only at this n
  std::uint32_t default_n = 64;

  std::vector<std::string> inits;   // registered generator names
  std::string default_init;         // an *adversarial* default
  std::vector<std::string> untils;  // registered stop-condition names
  std::string default_until;

  // Executes the spec (protocol field already matched). Throws
  // std::invalid_argument on an inexpressible spec (unknown init/until,
  // batch engine on a non-enumerable protocol, n mismatch, ...).
  std::function<ScenarioResult(const ScenarioSpec&)> run;
};

class ProtocolRegistry {
 public:
  ProtocolRegistry& add(ProtocolEntry entry) {
    if (find(entry.name) != nullptr)
      throw std::logic_error("duplicate protocol entry '" + entry.name + "'");
    entries_.push_back(std::move(entry));
    return *this;
  }

  const ProtocolEntry* find(const std::string& name) const {
    for (const auto& e : entries_)
      if (e.name == name) return &e;
    return nullptr;
  }

  const ProtocolEntry& at(const std::string& name) const {
    const ProtocolEntry* e = find(name);
    if (e == nullptr)
      throw std::invalid_argument("unknown protocol '" + name +
                                  "' (see --list)");
    return *e;
  }

  const std::vector<ProtocolEntry>& all() const { return entries_; }

  // Front door: resolve the spec's protocol and execute it.
  ScenarioResult run(const ScenarioSpec& spec) const {
    return at(spec.protocol).run(spec);
  }

 private:
  std::vector<ProtocolEntry> entries_;
};

}  // namespace ppsim
