// Small statistics toolkit for the experiment harness: summary statistics,
// quantiles, confidence intervals, and least-squares fits used to estimate
// scaling exponents from (n, time) sweeps.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace ppsim {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;   // sample standard deviation
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  // Half-width of the 95% normal-approximation confidence interval on mean.
  double ci95 = 0.0;
};

// Quantile by linear interpolation on the sorted sample, q in [0, 1].
inline double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) throw std::invalid_argument("quantile of empty sample");
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

inline Summary summarize(std::vector<double> xs) {
  if (xs.empty()) throw std::invalid_argument("summarize of empty sample");
  Summary s;
  s.count = xs.size();
  double sum = 0.0;
  for (double x : xs) sum += x;
  s.mean = sum / static_cast<double>(xs.size());
  double ss = 0.0;
  for (double x : xs) ss += (x - s.mean) * (x - s.mean);
  s.stddev = xs.size() > 1
                 ? std::sqrt(ss / static_cast<double>(xs.size() - 1))
                 : 0.0;
  std::sort(xs.begin(), xs.end());
  s.min = xs.front();
  s.max = xs.back();
  s.p50 = quantile_sorted(xs, 0.50);
  s.p95 = quantile_sorted(xs, 0.95);
  s.p99 = quantile_sorted(xs, 0.99);
  s.ci95 = 1.96 * s.stddev / std::sqrt(static_cast<double>(xs.size()));
  return s;
}

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r2 = 0.0;
};

// Ordinary least squares y = slope*x + intercept.
inline LinearFit fit_line(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2)
    throw std::invalid_argument("fit_line needs >= 2 matching points");
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) throw std::invalid_argument("degenerate x values");
  LinearFit f;
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double e = ys[i] - (f.slope * xs[i] + f.intercept);
    ss_res += e * e;
  }
  f.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return f;
}

// Fits time ~ c * n^e on a (n, time) sweep; returns the exponent e (slope in
// log-log space). This is how every scaling claim in the paper is checked.
inline LinearFit fit_power_law(const std::vector<double>& ns,
                               const std::vector<double>& times) {
  std::vector<double> lx(ns.size()), ly(times.size());
  for (std::size_t i = 0; i < ns.size(); ++i) {
    if (ns[i] <= 0 || times[i] <= 0)
      throw std::invalid_argument("power-law fit needs positive data");
    lx[i] = std::log2(ns[i]);
    ly[i] = std::log2(times[i]);
  }
  return fit_line(lx, ly);
}

inline double harmonic_number(std::uint64_t k) {
  double h = 0.0;
  for (std::uint64_t i = 1; i <= k; ++i) h += 1.0 / static_cast<double>(i);
  return h;
}

}  // namespace ppsim
