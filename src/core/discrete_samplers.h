// Exact discrete samplers for the batched simulation backends.
//
// The multinomial batch engine (core/batch_kernels.h) simulates a whole
// Theta(sqrt(n))-interaction batch at once by drawing the *state multiset*
// of the batch's participants instead of the participants themselves
// (Berenbrink et al.'s batched population-protocol simulation, as adopted
// by Doty-Severson's ppsim). That requires exact finite-population
// sampling primitives, implemented here with no external dependencies:
//
//   sample_binomial          - inversion for small n*p, BTPE
//                              (Kachitvichyanukul & Schmeiser 1988) for
//                              large: an exact acceptance/rejection scheme
//                              whose triangle/parallelogram/exponential-tail
//                              envelope keeps the expected number of
//                              uniforms O(1) for any parameters
//   sample_hypergeometric    - sequential inversion (Fishman's HYP) for
//                              small samples, mode-centered two-sided
//                              inversion for mid-size draws with a small
//                              standard deviation (the regime that
//                              dominates segment-split draws in
//                              core/batch_kernels.h), HRUA (Stadlober's
//                              ratio-of-uniforms with squeeze) for large
//   sample_multivariate_hypergeometric
//                            - conditional univariate draws, category by
//                              category (exact chain rule)
//   sample_multinomial       - conditional binomial draws
//   sample_poisson           - cdf inversion for small means, PTRS
//                              (Hörmann's transformed rejection) for large:
//                              exact for all finite means; the arrival-count
//                              primitive of the tau-leaping approximate tier
//                              (core/tau_leap_simulation.h)
//
// Every sampler consumes randomness only from the caller's Rng, so results
// are reproducible from (params, seed) like everything else in the repo.
// Exactness is validated against closed-form pmfs by chi-square tests in
// tests/discrete_samplers_test.cpp (both binomial branches, the n*p ~ 10
// boundary, both hypergeometric branches, both Poisson branches).
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/rng.h"

namespace ppsim {

// log Gamma(x) for x > 0 via the Stirling asymptotic series (argument
// shifted above 7 first). Max relative error ~1e-14 over the range used
// here; self-contained and thread-safe, unlike std::lgamma which may write
// the global signgam.
inline double log_gamma(double x) {
  constexpr double kCoeffs[10] = {
      8.333333333333333e-02,  -2.777777777777778e-03, 7.936507936507937e-04,
      -5.952380952380952e-04, 8.417508417508418e-04,  -1.917526917526918e-03,
      6.410256410256410e-03,  -2.955065359477124e-02, 1.796443723688307e-01,
      -1.392432216905901e+00};
  constexpr double kTwoPi = 6.283185307179586477;
  if (x == 1.0 || x == 2.0) return 0.0;
  double x0 = x;
  int shift = 0;
  if (x <= 7.0) {
    shift = static_cast<int>(7.0 - x) + 1;
    x0 = x + shift;
  }
  const double inv2 = 1.0 / (x0 * x0);
  double series = kCoeffs[9];
  for (int k = 8; k >= 0; --k) series = series * inv2 + kCoeffs[k];
  double gl = series / x0 + 0.5 * std::log(kTwoPi) +
              (x0 - 0.5) * std::log(x0) - x0;
  for (int k = 0; k < shift; ++k) {
    x0 -= 1.0;
    gl -= std::log(x0);
  }
  return gl;
}

namespace detail {

// Binomial by inversion of the cdf via the pmf recurrence; exact, O(n*p)
// expected. Requires p <= 0.5 (the caller flips) and n*p small enough that
// q^n does not underflow (guaranteed by the dispatch threshold).
inline std::uint64_t binomial_inversion(Rng& rng, std::uint64_t n, double p) {
  const double q = 1.0 - p;
  const double s = p / q;
  const double a = static_cast<double>(n + 1) * s;
  const double r0 = std::exp(static_cast<double>(n) * std::log1p(-p));
  for (;;) {
    double r = r0;
    double u = rng.unit();
    std::uint64_t x = 0;
    bool overflow = false;
    while (u > r) {
      u -= r;
      ++x;
      if (x > n) {  // floating-point leak past the support: redraw
        overflow = true;
        break;
      }
      r *= (a / static_cast<double>(x) - s);
    }
    if (!overflow) return x;
  }
}

// BTPE (Binomial Triangle Parallelogram Exponential) of Kachitvichyanukul &
// Schmeiser 1988: exact acceptance/rejection against a four-region envelope
// around the scaled pmf, with squeeze tests so most candidates avoid the
// O(|y - m|) pmf-ratio product. Requires p <= 0.5 and n*p >= 10.
inline std::uint64_t binomial_btpe(Rng& rng, std::uint64_t n, double p) {
  const double r = p;
  const double q = 1.0 - r;
  const double nd = static_cast<double>(n);
  const double fm = nd * r + r;
  const double m = std::floor(fm);
  const double nrq = nd * r * q;
  const double p1 = std::floor(2.195 * std::sqrt(nrq) - 4.6 * q) + 0.5;
  const double xm = m + 0.5;
  const double xl = xm - p1;
  const double xr = xm + p1;
  const double c = 0.134 + 20.5 / (15.3 + m);
  double a = (fm - xl) / (fm - xl * r);
  const double laml = a * (1.0 + a / 2.0);
  a = (xr - fm) / (xr * q);
  const double lamr = a * (1.0 + a / 2.0);
  const double p2 = p1 * (1.0 + 2.0 * c);
  const double p3 = p2 + c / laml;
  const double p4 = p3 + c / lamr;

  for (;;) {
    const double u = rng.unit() * p4;
    const double v = 1.0 - rng.unit();  // in (0, 1]: safe under log()
    double y;
    if (u <= p1) {
      // Triangular central region: accept immediately.
      y = std::floor(xm - p1 * v + u);
      return static_cast<std::uint64_t>(y);
    }
    double vv = v;
    if (u <= p2) {
      // Parallelogram: squeeze against the triangle.
      const double x = xl + (u - p1) / c;
      vv = vv * c + 1.0 - std::fabs(m - x + 0.5) / p1;
      if (vv > 1.0) continue;
      y = std::floor(x);
    } else if (u <= p3) {
      // Left exponential tail.
      y = std::floor(xl + std::log(vv) / laml);
      if (y < 0.0) continue;
      vv = vv * (u - p2) * laml;
    } else {
      // Right exponential tail.
      y = std::floor(xr - std::log(vv) / lamr);
      if (y > nd) continue;
      vv = vv * (u - p3) * lamr;
    }

    const double k = std::fabs(y - m);
    if (k <= 20.0 || k >= nrq / 2.0 - 1.0) {
      // Evaluate f(y)/f(m) by the pmf recurrence (O(k) but k is small or
      // the candidate is already nearly decided).
      const double s = r / q;
      const double aa = s * (nd + 1.0);
      double f = 1.0;
      if (m < y) {
        for (double i = m + 1.0; i <= y; i += 1.0) f *= (aa / i - s);
      } else if (m > y) {
        for (double i = y + 1.0; i <= m; i += 1.0) f /= (aa / i - s);
      }
      if (vv <= f) return static_cast<std::uint64_t>(y);
      continue;
    }
    // Squeeze on log f(y)/f(m) before paying for the Stirling evaluation.
    const double rho =
        (k / nrq) * ((k * (k / 3.0 + 0.625) + 1.0 / 6.0) / nrq + 0.5);
    const double t = -k * k / (2.0 * nrq);
    const double log_v = std::log(vv);
    if (log_v < t - rho) return static_cast<std::uint64_t>(y);
    if (log_v > t + rho) continue;
    // Final exact comparison via Stirling-corrected factorials.
    const double x1 = y + 1.0;
    const double f1 = m + 1.0;
    const double z = nd + 1.0 - m;
    const double w = nd - y + 1.0;
    const double x2 = x1 * x1;
    const double f2 = f1 * f1;
    const double z2 = z * z;
    const double w2 = w * w;
    auto stirling = [](double f, double fsq) {
      return (13860.0 -
              (462.0 - (132.0 - (99.0 - 140.0 / fsq) / fsq) / fsq) / fsq) /
             f / 166320.0;
    };
    const double bound =
        xm * std::log(f1 / x1) + (nd - m + 0.5) * std::log(z / w) +
        (y - m) * std::log(w * r / (x1 * q)) + stirling(f1, f2) +
        stirling(z, z2) + stirling(x1, x2) + stirling(w, w2);
    if (log_v <= bound) return static_cast<std::uint64_t>(y);
  }
}

}  // namespace detail

// Number of successes in n Bernoulli(p) trials. Exact for all parameters;
// dispatches to inversion when n * min(p, 1-p) < 10 and to BTPE otherwise
// (the boundary both tests cross-validate).
inline std::uint64_t sample_binomial(Rng& rng, std::uint64_t n, double p) {
  if (!(p >= 0.0) || p > 1.0)
    throw std::invalid_argument("binomial p outside [0, 1]");
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;
  const double pmin = p <= 0.5 ? p : 1.0 - p;
  std::uint64_t x;
  if (static_cast<double>(n) * pmin < 10.0) {
    x = detail::binomial_inversion(rng, n, pmin);
  } else {
    x = detail::binomial_btpe(rng, n, pmin);
  }
  return p <= 0.5 ? x : n - x;
}

namespace detail {

// Fishman's HYP: sequential inversion, O(sample) uniforms. Exact; used for
// small samples where its cost beats HRUA's setup.
inline std::uint64_t hypergeometric_hyp(Rng& rng, std::uint64_t good,
                                        std::uint64_t bad,
                                        std::uint64_t sample) {
  const double d1 = static_cast<double>(bad + good - sample);
  const double d2 = static_cast<double>(good < bad ? good : bad);
  double y = d2;
  std::uint64_t k = sample;
  while (y > 0.0) {
    const double u = rng.unit();
    y -= std::floor(u + y / (d1 + static_cast<double>(k)));
    --k;
    if (k == 0) break;
  }
  std::uint64_t z = static_cast<std::uint64_t>(d2 - y);
  if (good > bad) z = sample - z;
  return z;
}

// The two-sided inversion works on min(good, bad) successes like HYP/HRUA;
// this undoes that swap on the way out.
inline std::uint64_t reflect_two_sided(std::uint64_t good, std::uint64_t bad,
                                       std::uint64_t sample, double z) {
  const auto k = static_cast<std::uint64_t>(z);
  return good > bad ? sample - k : k;
}

// Mode-centered two-sided inversion: evaluate the pmf once at the mode
// (through log_gamma) and invert one uniform by walking outward from the
// mode, alternating up/down, with the exact pmf ratio recurrences
//   pmf(k+1)/pmf(k) = (g - k)(s - k) / ((k + 1)(b - s + k + 1))
//   pmf(k-1)/pmf(k) = k (b - s + k) / ((g - k + 1)(s - k + 1))
// (g = min(good, bad), b = max(good, bad), s = sample). The cumulated mass
// is maximal near the start of the walk, so the expected number of
// iterations is O(sd) — each a handful of multiplications, with no further
// log_gamma calls. Beats HRUA (whose every candidate costs four log_gamma
// evaluations) exactly when sd is small but sample >= 10 keeps HYP's
// O(sample) sequential inversion from winning: the mid-size regime of
// segment-split draws. Requires sample <= popsize / 2 (the caller
// reflects); exact up to the ~1e-13 accumulated pmf mass a redraw guards.
inline std::uint64_t hypergeometric_two_sided(Rng& rng, std::uint64_t good,
                                              std::uint64_t bad,
                                              std::uint64_t sample) {
  const std::uint64_t popsize = good + bad;
  const double ming = static_cast<double>(good < bad ? good : bad);
  const double maxg = static_cast<double>(good < bad ? bad : good);
  const double s = static_cast<double>(sample);
  const double lo = s > maxg ? s - maxg : 0.0;
  const double hi = ming < s ? ming : s;
  double mode = std::floor((s + 1.0) * (ming + 1.0) /
                           (static_cast<double>(popsize) + 2.0));
  if (mode < lo) mode = lo;
  if (mode > hi) mode = hi;
  // Absolute pmf at the mode: C(ming, m) C(maxg, s - m) / C(pop, s).
  const double log_p_mode =
      log_gamma(ming + 1.0) - log_gamma(mode + 1.0) -
      log_gamma(ming - mode + 1.0) + log_gamma(maxg + 1.0) -
      log_gamma(s - mode + 1.0) - log_gamma(maxg - s + mode + 1.0) -
      log_gamma(static_cast<double>(popsize) + 1.0) + log_gamma(s + 1.0) +
      log_gamma(static_cast<double>(popsize) - s + 1.0);
  const double p_mode = std::exp(log_p_mode);
  for (;;) {
    double u = rng.unit();
    if (u < p_mode) return reflect_two_sided(good, bad, sample, mode);
    u -= p_mode;
    double k_up = mode, p_up = p_mode;
    double k_dn = mode, p_dn = p_mode;
    for (;;) {
      bool moved = false;
      if (k_up < hi) {
        p_up *= (ming - k_up) * (s - k_up) /
                ((k_up + 1.0) * (maxg - s + k_up + 1.0));
        k_up += 1.0;
        if (u < p_up) return reflect_two_sided(good, bad, sample, k_up);
        u -= p_up;
        moved = true;
      }
      if (k_dn > lo) {
        p_dn *= k_dn * (maxg - s + k_dn) /
                ((ming - k_dn + 1.0) * (s - k_dn + 1.0));
        k_dn -= 1.0;
        if (u < p_dn) return reflect_two_sided(good, bad, sample, k_dn);
        u -= p_dn;
        moved = true;
      }
      if (!moved) break;  // floating-point leak past the support: redraw
    }
  }
}

// HRUA: Stadlober's ratio-of-uniforms hypergeometric with squeeze steps.
// Exact accept/reject against the pmf evaluated through log_gamma; the
// candidate window is truncated 16 standard deviations out (acceptance
// probability of the removed tail < 1e-50). Requires
// sample <= popsize / 2 (the caller reflects).
inline std::uint64_t hypergeometric_hrua(Rng& rng, std::uint64_t good,
                                         std::uint64_t bad,
                                         std::uint64_t sample) {
  constexpr double kD1 = 1.7155277699214135;  // 2 sqrt(2 / e)
  constexpr double kD2 = 0.8989161620588988;  // 3 - 2 sqrt(3 / e)
  const std::uint64_t popsize = good + bad;
  const std::uint64_t mingoodbad = good < bad ? good : bad;
  const std::uint64_t maxgoodbad = good < bad ? bad : good;
  const std::uint64_t m = sample;  // caller guarantees sample <= popsize/2
  const double d4 =
      static_cast<double>(mingoodbad) / static_cast<double>(popsize);
  const double d5 = 1.0 - d4;
  const double d6 = static_cast<double>(m) * d4 + 0.5;
  const double d7 =
      std::sqrt(static_cast<double>(popsize - m) * static_cast<double>(m) *
                    d4 * d5 / static_cast<double>(popsize - 1) +
                0.5);
  const double d8 = kD1 * d7 + kD2;
  const auto d9 = std::floor(static_cast<double>(m + 1) *
                             static_cast<double>(mingoodbad + 1) /
                             static_cast<double>(popsize + 2));
  const double d10 = log_gamma(d9 + 1.0) +
                     log_gamma(static_cast<double>(mingoodbad) - d9 + 1.0) +
                     log_gamma(static_cast<double>(m) - d9 + 1.0) +
                     log_gamma(static_cast<double>(maxgoodbad - m) + d9 + 1.0);
  const double hard_cap =
      static_cast<double>(m < mingoodbad ? m : mingoodbad) + 1.0;
  double d11 = std::floor(d6 + 16.0 * d7);
  if (d11 > hard_cap) d11 = hard_cap;

  double zf;
  for (;;) {
    const double x = 1.0 - rng.unit();  // in (0, 1]: safe under / and log
    const double y = rng.unit();
    const double w = d6 + d8 * (y - 0.5) / x;
    if (w < 0.0 || w >= d11) continue;
    zf = std::floor(w);
    const double t =
        d10 - (log_gamma(zf + 1.0) +
               log_gamma(static_cast<double>(mingoodbad) - zf + 1.0) +
               log_gamma(static_cast<double>(m) - zf + 1.0) +
               log_gamma(static_cast<double>(maxgoodbad - m) + zf + 1.0));
    if (x * (4.0 - x) - 3.0 <= t) break;  // fast acceptance
    if (x * (x - t) >= 1.0) continue;     // fast rejection
    if (2.0 * std::log(x) <= t) break;    // exact acceptance
  }
  std::uint64_t z = static_cast<std::uint64_t>(zf);
  if (good > bad) z = m - z;
  return z;
}

}  // namespace detail

// Standard-deviation cutoff between the two-sided inversion walk and HRUA:
// the walk's expected iteration count is a small multiple of sd, so below
// this it wins on every draw (HRUA's setup alone is 4 log_gamma calls);
// above it the walk's O(sd) tail loses to HRUA's O(1) expected candidates.
// Crossover measured at sd ~ 40-60 on the dev host; 32 keeps a margin.
constexpr double kHypergeometricTwoSidedMaxSd = 32.0;

// Number of "good" items in a uniform sample (without replacement) of
// `sample` items from a population of `good` + `bad`. Exact.
inline std::uint64_t sample_hypergeometric(Rng& rng, std::uint64_t good,
                                           std::uint64_t bad,
                                           std::uint64_t sample) {
  const std::uint64_t popsize = good + bad;
  if (sample > popsize)
    throw std::invalid_argument("hypergeometric sample > population");
  if (sample == 0 || good == 0) return 0;
  if (bad == 0) return sample;
  if (sample == popsize) return good;
  // Reflect large samples: if X ~ Hyp(good, bad, s) then
  // good - X ~ Hyp(good, bad, popsize - s).
  if (2 * sample > popsize)
    return good - sample_hypergeometric(rng, good, bad, popsize - sample);
  if (sample < 10) return detail::hypergeometric_hyp(rng, good, bad, sample);
  // Mid-size regime: the two-sided walk costs O(sd) cheap iterations after
  // one 9-log_gamma setup, vs HRUA's 4 log_gamma per candidate. Route by the
  // distribution's standard deviation, not the sample size.
  const double d4 = static_cast<double>(good < bad ? good : bad) /
                    static_cast<double>(popsize);
  const double sd =
      std::sqrt(static_cast<double>(sample) * d4 * (1.0 - d4) *
                static_cast<double>(popsize - sample) /
                static_cast<double>(popsize - 1));
  if (sd <= kHypergeometricTwoSidedMaxSd)
    return detail::hypergeometric_two_sided(rng, good, bad, sample);
  return detail::hypergeometric_hrua(rng, good, bad, sample);
}

// The multiset of categories in a uniform without-replacement sample of
// `sample` items from a population with `counts[i]` items of category i:
// out[i] ~ conditional hypergeometric, chained exactly. `out` is resized
// and overwritten. Cost: one univariate draw per category (early exit once
// the sample is exhausted).
inline void sample_multivariate_hypergeometric(
    Rng& rng, const std::vector<std::uint64_t>& counts, std::uint64_t sample,
    std::vector<std::uint64_t>& out) {
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (sample > total)
    throw std::invalid_argument("multivariate hypergeometric sample > total");
  out.assign(counts.size(), 0);
  std::uint64_t remaining = total;
  std::uint64_t left = sample;
  for (std::size_t i = 0; i < counts.size() && left > 0; ++i) {
    const std::uint64_t x =
        sample_hypergeometric(rng, counts[i], remaining - counts[i], left);
    out[i] = x;
    left -= x;
    remaining -= counts[i];
  }
}

// Uniformly random partition of a population into fixed-size shards,
// projected onto category counts: shard t's per-category counts are a
// multivariate-hypergeometric draw of size `sizes[t]` from the population
// left by shards 0..t-1 (exact chain rule, so the joint distribution is the
// uniform partition and every shard's marginal is exchangeable — shard t's
// count of category c is Hyp(counts[c], total - counts[c], sizes[t]) for
// every t, validated in tests/discrete_samplers_test.cpp). `out[t]` is
// parallel to `counts`. The sharded engine's per-round split
// (core/sharded_simulation.h) is this draw with quota-0 shards integrated
// out.
inline void sample_shard_partition(
    Rng& rng, const std::vector<std::uint64_t>& counts,
    const std::vector<std::uint64_t>& sizes,
    std::vector<std::vector<std::uint64_t>>& out) {
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  std::uint64_t claimed = 0;
  for (std::uint64_t s : sizes) claimed += s;
  if (claimed != total)
    throw std::invalid_argument("shard sizes must sum to the population");
  out.assign(sizes.size(), {});
  std::vector<std::uint64_t> remaining = counts;
  for (std::size_t t = 0; t + 1 < sizes.size(); ++t) {
    sample_multivariate_hypergeometric(rng, remaining, sizes[t], out[t]);
    for (std::size_t c = 0; c < remaining.size(); ++c)
      remaining[c] -= out[t][c];
  }
  if (!sizes.empty()) out.back() = std::move(remaining);
}

// Category counts of `trials` independent draws from the distribution
// `probs` (need not be normalized; weights must be >= 0 with positive sum).
// Chained conditional binomials; exact. `out` is resized and overwritten.
inline void sample_multinomial(Rng& rng, std::uint64_t trials,
                               const std::vector<double>& probs,
                               std::vector<std::uint64_t>& out) {
  double total = 0.0;
  for (double p : probs) {
    if (!(p >= 0.0)) throw std::invalid_argument("multinomial weight < 0");
    total += p;
  }
  if (!(total > 0.0) && trials > 0)
    throw std::invalid_argument("multinomial weights sum to zero");
  out.assign(probs.size(), 0);
  std::uint64_t left = trials;
  double mass = total;
  for (std::size_t i = 0; i + 1 < probs.size() && left > 0; ++i) {
    double p = probs[i] / mass;
    if (p > 1.0) p = 1.0;
    const std::uint64_t x = sample_binomial(rng, left, p);
    out[i] = x;
    left -= x;
    mass -= probs[i];
    if (!(mass > 0.0)) mass = 0.0;
  }
  if (!probs.empty()) out[probs.size() - 1] += left;
}

namespace detail {

// Poisson by inversion of the cdf via the pmf recurrence; exact, O(mean)
// expected. Requires mean small enough that exp(-mean) does not underflow
// (guaranteed by the dispatch threshold).
inline std::uint64_t poisson_inversion(Rng& rng, double mean) {
  const double r0 = std::exp(-mean);
  for (;;) {
    double r = r0;
    double u = rng.unit();
    std::uint64_t x = 0;
    bool overflow = false;
    while (u > r) {
      u -= r;
      ++x;
      // The support is unbounded, but past mean + ~40 sd the residual mass
      // is far below the 2^-53 resolution of u: any walk that gets there is
      // a floating-point leak, not a sample. Redraw.
      if (static_cast<double>(x) >
          mean + 40.0 * std::sqrt(mean + 1.0) + 16.0) {
        overflow = true;
        break;
      }
      r *= mean / static_cast<double>(x);
    }
    if (!overflow) return x;
  }
}

// PTRS (Poisson Transformed Rejection with Squeeze) of Hörmann 1993: exact
// acceptance/rejection of a transformed-uniform candidate against the pmf
// evaluated through log_gamma, with a squeeze region accepting ~88% of
// candidates before any transcendental call. Requires mean >= 10.
inline std::uint64_t poisson_ptrs(Rng& rng, double mean) {
  const double slam = std::sqrt(mean);
  const double loglam = std::log(mean);
  const double b = 0.931 + 2.53 * slam;
  const double a = -0.059 + 0.02483 * b;
  const double invalpha = 1.1239 + 1.1328 / (b - 3.4);
  const double vr = 0.9277 - 3.6224 / (b - 2.0);
  for (;;) {
    const double u = rng.unit() - 0.5;
    const double v = 1.0 - rng.unit();  // in (0, 1]: safe under log()
    const double us = 0.5 - std::fabs(u);
    const double kf = std::floor((2.0 * a / us + b) * u + mean + 0.43);
    if (kf < 0.0) continue;
    if (us >= 0.07 && v <= vr) return static_cast<std::uint64_t>(kf);
    if (us < 0.013 && v > us) continue;
    if (std::log(v) + std::log(invalpha) - std::log(a / (us * us) + b) <=
        kf * loglam - mean - log_gamma(kf + 1.0))
      return static_cast<std::uint64_t>(kf);
  }
}

}  // namespace detail

// Number of arrivals of a Poisson process with the given expected count.
// Exact for every finite mean >= 0; dispatches to cdf inversion below mean
// 10 and to PTRS at or above it (the boundary both tests cross-validate).
// mean == 0 returns 0 without consuming randomness.
inline std::uint64_t sample_poisson(Rng& rng, double mean) {
  if (!(mean >= 0.0) || !std::isfinite(mean))
    throw std::invalid_argument("poisson mean not finite and >= 0");
  if (mean == 0.0) return 0;
  if (mean < 10.0) return detail::poisson_inversion(rng, mean);
  return detail::poisson_ptrs(rng, mean);
}

}  // namespace ppsim
