// Generic agent-array simulation engine.
//
// A Protocol supplies a State type and an interact(initiator, responder, rng)
// transition; the engine owns the agent array, the scheduler and the RNG, and
// accounts parallel time = interactions / n exactly as the paper defines it.
#pragma once

#include <concepts>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/rng.h"
#include "core/scheduler.h"

namespace ppsim {

// Minimal contract a protocol must satisfy to be simulated.
template <class P>
concept Protocol = requires(P p, typename P::State& s, typename P::State& t,
                            Rng& rng) {
  typename P::State;
  { p.population_size() } -> std::convertible_to<std::uint32_t>;
  { p.interact(s, t, rng) };
};

// Protocols that expose a ranking output (all protocols in this repo do;
// rank_of returns 0 for "no rank assigned yet").
template <class P>
concept RankingProtocol =
    Protocol<P> && requires(const P p, const typename P::State& s) {
      { p.rank_of(s) } -> std::convertible_to<std::uint32_t>;
    };

template <Protocol P>
class Simulation {
 public:
  using State = typename P::State;

  Simulation(P protocol, std::vector<State> initial, std::uint64_t seed)
      : protocol_(std::move(protocol)),
        states_(std::move(initial)),
        scheduler_(protocol_.population_size()),
        rng_(seed) {
    if (states_.size() != protocol_.population_size())
      throw std::invalid_argument(
          "initial configuration size != population size");
  }

  std::uint32_t population_size() const {
    return protocol_.population_size();
  }
  const std::vector<State>& states() const { return states_; }
  std::vector<State>& mutable_states() { return states_; }
  P& protocol() { return protocol_; }
  const P& protocol() const { return protocol_; }
  Rng& rng() { return rng_; }

  std::uint64_t interactions() const { return interactions_; }
  double parallel_time() const {
    return static_cast<double>(interactions_) /
           static_cast<double>(population_size());
  }

  // Executes one interaction and returns the pair that interacted.
  AgentPair step() {
    const AgentPair pair = scheduler_.next(rng_);
    protocol_.interact(states_[pair.initiator], states_[pair.responder], rng_);
    ++interactions_;
    return pair;
  }

  // Runs `count` interactions.
  void run(std::uint64_t count) {
    for (std::uint64_t k = 0; k < count; ++k) step();
  }

  // Runs until `done(simulation)` is true, checking after every interaction,
  // up to `max_interactions`. Returns true iff the predicate fired.
  template <class Done>
  bool run_until(Done&& done, std::uint64_t max_interactions) {
    while (interactions_ < max_interactions) {
      step();
      if (done(*this)) return true;
    }
    return false;
  }

 private:
  P protocol_;
  std::vector<State> states_;
  UniformScheduler scheduler_;
  Rng rng_;
  std::uint64_t interactions_ = 0;
};

}  // namespace ppsim
