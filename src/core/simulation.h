// Generic agent-array simulation engine.
//
// A Protocol supplies a State type and a const interact(initiator,
// responder, rng[, counters]) transition; the engine owns the agent array,
// the scheduler, the RNG and the protocol's event counters, and accounts
// parallel time = interactions / n exactly as the paper defines it.
//
// Simulation<P> satisfies the Engine concept of core/engine.h (and
// AgentArrayEngine); it works for every protocol and is the ground truth
// the count-based backend is validated against.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/protocol.h"
#include "core/rng.h"
#include "core/scheduler.h"
#include "core/topology.h"

namespace ppsim {

template <Protocol P>
class Simulation {
 public:
  using State = typename P::State;
  using Counters = ProtocolCounters<P>;

  Simulation(P protocol, std::vector<State> initial, std::uint64_t seed)
      : Simulation(std::move(protocol), std::move(initial), seed,
                   Topology()) {}

  // Interaction-graph variant (core/topology.h): pairs are scheduled
  // uniformly over the topology's directed edges. The default (and an
  // explicit complete topology) replays UniformScheduler's draws bit for
  // bit, so the classical engine is the special case, not a sibling.
  Simulation(P protocol, std::vector<State> initial, std::uint64_t seed,
             Topology topology)
      : protocol_(std::move(protocol)),
        states_(std::move(initial)),
        topology_(topology.population_size() == 0
                      ? Topology::complete(protocol_.population_size())
                      : std::move(topology)),
        rng_(seed) {
    if (states_.size() != protocol_.population_size())
      throw std::invalid_argument(
          "initial configuration size != population size");
    if (topology_.population_size() != protocol_.population_size())
      throw std::invalid_argument(
          "topology population size != protocol population size");
  }

  std::uint32_t population_size() const {
    return protocol_.population_size();
  }
  const std::vector<State>& states() const { return states_; }
  std::vector<State>& mutable_states() { return states_; }
  P& protocol() { return protocol_; }
  const P& protocol() const { return protocol_; }
  const Topology& topology() const { return topology_; }
  Rng& rng() { return rng_; }

  // Engine-side observer: per-interaction events reported by observable
  // protocols (empty for plain protocols).
  const Counters& counters() const { return counters_; }

  std::uint64_t interactions() const { return interactions_; }
  double parallel_time() const {
    return static_cast<double>(interactions_) /
           static_cast<double>(population_size());
  }

  // State-count snapshot in the enumerable protocol's coding — the bridge
  // to the count-based backend (O(n) scan; BatchSimulation keeps this
  // vector as its configuration).
  std::vector<std::uint64_t> state_counts() const
    requires EnumerableProtocol<P>
  {
    std::vector<std::uint64_t> counts(protocol_.num_states(), 0);
    for (const State& s : states_) ++counts[protocol_.encode(s)];
    return counts;
  }

  // Executes one interaction and returns the pair that interacted.
  AgentPair step() {
    const AgentPair pair = topology_.sample(rng_);
    invoke_interact(protocol_, states_[pair.initiator],
                    states_[pair.responder], rng_, counters_);
    ++interactions_;
    return pair;
  }

  // Runs `count` interactions.
  void run(std::uint64_t count) {
    for (std::uint64_t k = 0; k < count; ++k) step();
  }

  // Runs until `done(simulation)` is true, checking after every interaction,
  // up to `max_interactions`. Returns true iff the predicate fired.
  template <class Done>
  bool run_until(Done&& done, std::uint64_t max_interactions) {
    while (interactions_ < max_interactions) {
      step();
      if (done(*this)) return true;
    }
    return false;
  }

 private:
  P protocol_;
  std::vector<State> states_;
  Topology topology_;
  Rng rng_;
  std::uint64_t interactions_ = 0;
  [[no_unique_address]] Counters counters_{};
};

}  // namespace ppsim
