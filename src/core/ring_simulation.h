// Run-length-compressed count engine for the directed ring.
//
// On the clique the batched engine compresses the *configuration* (state
// counts) because agent identity is irrelevant. On a ring identity is
// position, so the compressible structure is different: runs of adjacent
// agents in the same state. RingSimulation keeps the configuration as a
// circular sequence of arcs (code, start, len) — maximal runs of equal
// states along the cycle — and plays the geometric-skip trick on the
// ring's n directed edges:
//
//   * an edge interior to an arc is (c, c); the boundary edge of an arc is
//     (c, next-arc's c). Nullity of either is a deterministic O(1) probe
//     (DeterministicProtocol), so each arc's count of active outgoing
//     edges is w(A) = (len-1)·[active(c,c)] + [active(c, next.c)], and the
//     total active weight W = sum w(A) over a Fenwick tree.
//   * each slot schedules a uniform edge, so the wait until the next
//     changeful slot is Geometric(W/n) exactly — one draw skips the whole
//     null stretch, then one Fenwick walk picks the active edge with the
//     exact conditional law (uniform among active edges).
//
// A converged ring-ssle population is a single coherent arc structure with
// O(1) active edges, so W/n = O(1/n) and the engine advances ~n slots per
// effective interaction; a one-way epidemic on the ring has exactly one
// active edge (the frontier) for the whole run. That is the ring analogue
// of the clique engine's silent-heavy regimes and the source of the
// bench_topology speedup at n = 10^6.
//
// Position surgery (an agent at position p changes state) is local: split
// the containing arc, re-merge with equal-coded neighbours, refresh the
// touched arcs' weights. A second Fenwick over positions (one mark per arc
// start) gives O(log n) position -> arc lookup, used for the responder of
// a boundary edge and for churn victims.
//
// Fault model (core/faults.h), compiled exactly:
//   drop   - thins the changeful-slot rate multiplicatively (a dropped
//            active slot is indistinguishable from a null slot), exactly
//            as in BatchSimulation::geometric_step;
//   oneway - drawn per effective interaction; the full transition is
//            computed (counters recorded in full, the documented
//            convention), only the initiator's new state is applied;
//   churn  - the same geometric slot-countdown as the other engines; the
//            victim position is uniform and the reset is one surgery.
//
// Satisfies the CountEngine concept: drive()'s ranked/held/predicate
// runners, RankTracker delta-following and the stat harness all work
// unchanged on the ring path.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/batch_kernels.h"  // CountDelta
#include "core/engine.h"         // StrategyTrace
#include "core/faults.h"
#include "core/protocol.h"
#include "core/rng.h"

namespace ppsim {

// What the ring compression needs from a protocol: enumerable codes (the
// arc labels) and a deterministic transition (exact nullity probing and
// responder-independent replay). Protocols that draw randomness inside
// interact() stay on the agent array.
template <class P>
concept RingCompressibleProtocol =
    EnumerableProtocol<P> && DeterministicProtocol<P>;

// Protocols that expose a leader predicate on states; the ring engine
// maintains the live leader count incrementally for such protocols so
// "elected" stop conditions are O(1) per check.
template <class P>
concept LeaderReportingProtocol =
    Protocol<P> && requires(const P p, const typename P::State& s) {
      { p.is_leader(s) } -> std::convertible_to<bool>;
    };

// Fenwick tree over fixed [0, size): point add, prefix sums and select
// (smallest index whose inclusive prefix reaches k) in O(log size). Used
// twice per engine: u64 edge weights over arc slots, 0/1 start marks over
// ring positions.
class RingFenwick {
 public:
  void init(std::uint32_t size) {
    size_ = size;
    top_ = 1;
    while ((top_ << 1) <= size_) top_ <<= 1;
    tree_.assign(static_cast<std::size_t>(size_) + 1, 0);
    total_ = 0;
  }

  void add(std::uint32_t i, std::int64_t delta) {
    total_ = static_cast<std::uint64_t>(static_cast<std::int64_t>(total_) +
                                        delta);
    for (std::uint32_t x = i + 1; x <= size_; x += x & (~x + 1))
      tree_[x] = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(tree_[x]) + delta);
  }

  std::uint64_t total() const { return total_; }

  // Sum over [0, i).
  std::uint64_t prefix(std::uint32_t i) const {
    std::uint64_t s = 0;
    for (std::uint32_t x = i; x > 0; x -= x & (~x + 1)) s += tree_[x];
    return s;
  }

  // Smallest index i with prefix(i + 1) >= k, plus the remainder
  // k - prefix(i) in [1, weight(i)]. Requires 1 <= k <= total().
  std::pair<std::uint32_t, std::uint64_t> select(std::uint64_t k) const {
    std::uint32_t idx = 0;
    for (std::uint32_t step = top_; step > 0; step >>= 1) {
      const std::uint32_t nxt = idx + step;
      if (nxt <= size_ && tree_[nxt] < k) {
        idx = nxt;
        k -= tree_[nxt];
      }
    }
    return {idx, k};  // idx is 0-based; tree_ walk left it just before i
  }

 private:
  std::uint32_t size_ = 0;
  std::uint32_t top_ = 1;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> tree_;
};

template <RingCompressibleProtocol P>
class RingSimulation {
 public:
  using State = typename P::State;
  using Counters = ProtocolCounters<P>;

  // `initial` is position-ordered: initial[i] is the agent at ring
  // position i, with directed edges i -> (i+1) mod n. The same catalog
  // vector the agent-array engine consumes, so both engines start from
  // identical configurations per seed.
  RingSimulation(P protocol, std::vector<State> initial, std::uint64_t seed)
      : RingSimulation(std::move(protocol), std::move(initial), seed,
                       FaultSpec{}) {}

  RingSimulation(P protocol, std::vector<State> initial, std::uint64_t seed,
                 const FaultSpec& faults)
      : protocol_(std::move(protocol)), rng_(seed), faults_(faults) {
    n_ = protocol_.population_size();
    if (n_ < 2)
      throw std::invalid_argument("ring needs a population of >= 2 agents");
    if (initial.size() != n_)
      throw std::invalid_argument(
          "initial configuration size != population size");
    faults_.validate();
    faults_active_ = faults_.active();
    if (faults_.churn > 0.0) {
      if constexpr (!ChurnableProtocol<P>) {
        throw std::invalid_argument(
            "fault.churn needs a protocol with a churn_state()");
      } else {
        crash_q_ = faults_.crash_probability(n_);
        churn_code_ = protocol_.encode(protocol_.churn_state());
        crash_countdown_ = sample_geometric(rng_, crash_q_);
      }
    }
    build(initial);
  }

  std::uint32_t population_size() const { return n_; }
  P& protocol() { return protocol_; }
  const P& protocol() const { return protocol_; }
  const Counters& counters() const { return counters_; }
  const FaultSpec& faults() const { return faults_; }

  std::uint64_t interactions() const { return interactions_; }
  double parallel_time() const {
    return static_cast<double>(interactions_) / static_cast<double>(n_);
  }

  const std::vector<std::uint64_t>& state_counts() const {
    return state_counts_;
  }
  const std::vector<CountDelta>& last_deltas() const { return last_deltas_; }
  const StrategyTrace& strategy_trace() const { return trace_; }

  // Number of active directed edges in the current configuration (the
  // compression's whole-ring summary; 0 iff provably silent).
  std::uint64_t active_weight() const { return weights_.total(); }
  bool silent() const { return weights_.total() == 0; }

  // Number of maximal equal-state arcs (the compressed representation
  // size; 1 when the whole ring agrees).
  std::uint32_t arc_count() const { return arc_count_; }

  std::uint64_t leader_count() const
    requires LeaderReportingProtocol<P>
  {
    return leader_count_;
  }

  // The state at a ring position (O(log n); for tests and spot checks).
  State state_at(std::uint32_t pos) const {
    return protocol_.decode(arcs_[find_arc(pos)].code);
  }

  // Advances past the next changeful slot (the skipped null stretch counts
  // as real interactions). Returns slots consumed, 0 iff provably stuck:
  // zero active edges and no churn to revive them.
  std::uint64_t step() {
    last_deltas_.clear();
    const bool churn_on = crash_q_ > 0.0;
    const std::uint64_t w = weights_.total();
    double p = static_cast<double>(w) / static_cast<double>(n_);
    if (faults_active_) p *= 1.0 - faults_.drop;
    if (w == 0 || p <= 0.0) {  // silent (or drop == 1): only churn can act
      if (!churn_on) return 0;
      const std::uint64_t consumed = crash_fast_forward();
      trace_.note(StrategyArm::kGeometricSkip, consumed);
      return consumed;
    }
    const std::uint64_t wait = sample_geometric(rng_, p);
    if (churn_on && wait > crash_countdown_) {
      const std::uint64_t consumed = crash_fast_forward();
      trace_.note(StrategyArm::kGeometricSkip, consumed);
      return consumed;
    }
    interactions_ += wait;
    if (churn_on) crash_countdown_ -= wait;
    apply_active_edge();
    maybe_crash_after_slot();
    trace_.note(StrategyArm::kGeometricSkip, wait);
    return wait;
  }

  // Runs until at least `count` interactions have elapsed (a final skip
  // may overshoot; the overshoot is real simulated time, not error).
  void run(std::uint64_t count) {
    const std::uint64_t target = interactions_ + count;
    while (interactions_ < target)
      if (step() == 0) break;  // silent: nothing will ever change again
  }

  // Runs until done(*this) is true, checking after every configuration
  // change (null stretches cannot flip a configuration predicate).
  template <class Done>
  bool run_until(Done&& done, std::uint64_t max_interactions) {
    if (done(*this)) return true;
    while (interactions_ < max_interactions) {
      if (step() == 0) return done(*this);
      if (done(*this)) return true;
    }
    return false;
  }

 private:
  struct Arc {
    std::uint32_t code = 0;
    std::uint32_t start = 0;  // first ring position of the run
    std::uint32_t len = 0;    // 0 marks a free slot
    std::uint32_t prev = 0;   // circular order around the ring
    std::uint32_t next = 0;
  };

  std::uint32_t pos_add(std::uint32_t pos, std::uint32_t d) const {
    const std::uint64_t s = static_cast<std::uint64_t>(pos) + d;
    return static_cast<std::uint32_t>(s >= n_ ? s - n_ : s);
  }

  // Exact deterministic nullity of the directed edge (ca -> cb). Uses the
  // protocol's own predicate when it has one; otherwise a trial
  // application (kDeterministicInteract: the rng is never read, and probe
  // counters are discarded).
  bool edge_active(std::uint32_t ca, std::uint32_t cb) {
    if constexpr (NullPairProtocol<P>) {
      return !protocol_.is_null_pair(protocol_.decode(ca),
                                     protocol_.decode(cb));
    } else {
      State a = protocol_.decode(ca);
      State b = protocol_.decode(cb);
      Counters scratch{};
      invoke_interact(protocol_, a, b, probe_rng_, scratch);
      return protocol_.encode(a) != ca || protocol_.encode(b) != cb;
    }
  }

  std::uint64_t internal_weight(const Arc& a) {
    if (a.len < 2) return 0;
    return edge_active(a.code, a.code) ? a.len - 1u : 0u;
  }

  std::uint64_t arc_weight(const Arc& a) {
    std::uint64_t w = internal_weight(a);
    if (edge_active(a.code, arcs_[a.next].code)) w += 1;
    return w;
  }

  void refresh_weight(std::uint32_t slot) {
    if (arcs_[slot].len == 0) return;  // freed during the same surgery
    const std::uint64_t w = arc_weight(arcs_[slot]);
    const std::uint64_t old = weights_.prefix(slot + 1) - weights_.prefix(slot);
    if (w != old)
      weights_.add(slot, static_cast<std::int64_t>(w) -
                             static_cast<std::int64_t>(old));
  }

  // --- construction ---------------------------------------------------

  void build(const std::vector<State>& initial) {
    state_counts_.assign(protocol_.num_states(), 0);
    std::vector<std::uint32_t> codes(n_);
    for (std::uint32_t i = 0; i < n_; ++i) {
      codes[i] = protocol_.encode(initial[i]);
      ++state_counts_[codes[i]];
      if constexpr (LeaderReportingProtocol<P>)
        if (protocol_.is_leader(initial[i])) ++leader_count_;
    }
    // Linear runs, then circular merge of the first and last.
    struct Run {
      std::uint32_t code, start, len;
    };
    std::vector<Run> runs;
    for (std::uint32_t i = 0; i < n_;) {
      std::uint32_t j = i + 1;
      while (j < n_ && codes[j] == codes[i]) ++j;
      runs.push_back({codes[i], i, j - i});
      i = j;
    }
    if (runs.size() > 1 && runs.front().code == runs.back().code) {
      runs.front().start = runs.back().start;
      runs.front().len += runs.back().len;
      runs.pop_back();
    }
    arcs_.assign(n_, Arc{});
    free_.clear();
    for (std::uint32_t s = n_; s > static_cast<std::uint32_t>(runs.size());
         --s)
      free_.push_back(s - 1);
    arc_count_ = static_cast<std::uint32_t>(runs.size());
    weights_.init(n_);
    marks_.init(n_);
    start_slot_.assign(n_, 0);
    for (std::uint32_t s = 0; s < arc_count_; ++s) {
      arcs_[s] = Arc{runs[s].code, runs[s].start, runs[s].len,
                     s == 0 ? arc_count_ - 1 : s - 1,
                     s + 1 == arc_count_ ? 0 : s + 1};
      marks_.add(runs[s].start, +1);
      start_slot_[runs[s].start] = s;
    }
    for (std::uint32_t s = 0; s < arc_count_; ++s) refresh_weight(s);
  }

  // --- position -> arc lookup ------------------------------------------

  std::uint32_t find_arc(std::uint32_t pos) const {
    // Starts in [0, pos]; none means pos sits in the arc wrapping past 0,
    // i.e. the one with the numerically last start.
    std::uint64_t k = marks_.prefix(pos + 1);
    if (k == 0) k = marks_.total();
    return start_slot_[marks_.select(k).first];
  }

  // --- RLE surgery ------------------------------------------------------

  std::uint32_t alloc_arc(std::uint32_t code, std::uint32_t start,
                          std::uint32_t len) {
    const std::uint32_t slot = free_.back();
    free_.pop_back();
    arcs_[slot].code = code;
    arcs_[slot].start = start;
    arcs_[slot].len = len;
    marks_.add(start, +1);
    start_slot_[start] = slot;
    ++arc_count_;
    return slot;
  }

  void link_after(std::uint32_t slot, std::uint32_t after) {
    const std::uint32_t nxt = arcs_[after].next;
    arcs_[slot].prev = after;
    arcs_[slot].next = nxt;
    arcs_[after].next = slot;
    arcs_[nxt].prev = slot;
  }

  void free_arc(std::uint32_t slot) {
    const std::uint64_t w = weights_.prefix(slot + 1) - weights_.prefix(slot);
    if (w != 0) weights_.add(slot, -static_cast<std::int64_t>(w));
    marks_.add(arcs_[slot].start, -1);
    arcs_[slot].len = 0;
    free_.push_back(slot);
    --arc_count_;
  }

  // Absorbs arc `b` (the ring successor of `a`) into `a`.
  void merge_into(std::uint32_t a, std::uint32_t b) {
    arcs_[a].len += arcs_[b].len;
    const std::uint32_t nxt = arcs_[b].next;
    free_arc(b);
    arcs_[a].next = nxt;
    arcs_[nxt].prev = a;
  }

  void move_start(std::uint32_t slot, std::uint32_t new_start) {
    marks_.add(arcs_[slot].start, -1);
    arcs_[slot].start = new_start;
    marks_.add(new_start, +1);
    start_slot_[new_start] = slot;
  }

  // Rewrites the state at ring position `pos` to `code` (which must differ
  // from the current one), restoring arc maximality and refreshing the
  // touched weights. O(log n).
  void set_position(std::uint32_t pos, std::uint32_t code) {
    const std::uint32_t slot = find_arc(pos);
    Arc& a = arcs_[slot];
    const std::uint32_t old = a.code;
    --state_counts_[old];
    ++state_counts_[code];
    last_deltas_.push_back({old, -1});
    last_deltas_.push_back({code, +1});
    if constexpr (LeaderReportingProtocol<P>)
      leader_count_ +=
          static_cast<std::uint64_t>(
              protocol_.is_leader(protocol_.decode(code))) -
          static_cast<std::uint64_t>(protocol_.is_leader(protocol_.decode(old)));
    const std::uint32_t k = pos >= a.start
                                ? pos - a.start
                                : pos + n_ - a.start;  // offset inside the arc
    std::uint32_t touched[3];
    std::uint32_t n_touched = 0;
    if (a.len == 1) {
      a.code = code;
      std::uint32_t self = slot;
      // Re-merge with equal-coded neighbours (guarding the single-arc and
      // two-arc rings where prev/next alias self).
      if (arcs_[self].next != self && arcs_[arcs_[self].next].code == code)
        merge_into(self, arcs_[self].next);
      const std::uint32_t prv = arcs_[self].prev;
      if (prv != self && arcs_[prv].code == code) {
        merge_into(prv, self);
        self = prv;
      }
      touched[n_touched++] = self;
    } else if (k == 0) {
      move_start(slot, pos_add(a.start, 1));
      a.len -= 1;
      const std::uint32_t m = alloc_arc(code, pos, 1);
      // Insert immediately before `slot` in ring order; when the arc was
      // the whole ring (prev == slot) this degenerates to the 2-cycle.
      link_after(m, a.prev);
      std::uint32_t self = m;
      const std::uint32_t prv = arcs_[m].prev;
      if (prv != m && prv != slot && arcs_[prv].code == code) {
        merge_into(prv, m);
        self = prv;
      }
      touched[n_touched++] = self;
      touched[n_touched++] = slot;
    } else if (k == a.len - 1) {
      a.len -= 1;
      const std::uint32_t m = alloc_arc(code, pos, 1);
      link_after(m, slot);
      std::uint32_t self = m;
      const std::uint32_t nxt = arcs_[m].next;
      if (nxt != m && nxt != slot && arcs_[nxt].code == code)
        merge_into(self, nxt);
      touched[n_touched++] = self;
      touched[n_touched++] = slot;
    } else {
      // Interior split: A[0..k-1] | M | B[k+1..]; no merges are possible
      // (M differs from the old code on both sides by maximality).
      const std::uint32_t tail_len = a.len - k - 1;
      a.len = k;
      const std::uint32_t m = alloc_arc(code, pos, 1);
      link_after(m, slot);
      const std::uint32_t b = alloc_arc(old, pos_add(pos, 1), tail_len);
      link_after(b, m);
      touched[n_touched++] = slot;
      touched[n_touched++] = m;
      touched[n_touched++] = b;
    }
    for (std::uint32_t i = 0; i < n_touched; ++i) {
      refresh_weight(touched[i]);
      refresh_weight(arcs_[touched[i]].prev);
    }
  }

  // --- the effective interaction ---------------------------------------

  void apply_active_edge() {
    const std::uint64_t w = weights_.total();
    const std::uint64_t x = rng_.below(w);
    const auto [slot, rem] = weights_.select(x + 1);
    const Arc& a = arcs_[slot];
    const std::uint64_t internal = internal_weight(arcs_[slot]);
    std::uint32_t p;
    std::uint32_t cb;
    if (rem <= internal) {
      p = pos_add(a.start, static_cast<std::uint32_t>(rem - 1));
      cb = a.code;
    } else {
      p = pos_add(a.start, a.len - 1);
      cb = arcs_[a.next].code;
    }
    const std::uint32_t q = pos_add(p, 1);
    const std::uint32_t ca = a.code;
    bool one_way = false;
    if (faults_active_ && faults_.oneway > 0.0)
      one_way = rng_.unit() < faults_.oneway;
    State sa = protocol_.decode(ca);
    State sb = protocol_.decode(cb);
    invoke_interact(protocol_, sa, sb, rng_, counters_);
    const std::uint32_t na = protocol_.encode(sa);
    const std::uint32_t nb = one_way ? cb : protocol_.encode(sb);
    if (na != ca) set_position(p, na);
    if (nb != cb) set_position(q, nb);
  }

  // --- churn ------------------------------------------------------------

  void crash_uniform_agent() {
    if constexpr (ChurnableProtocol<P>) {
      const auto victim = static_cast<std::uint32_t>(rng_.below(n_));
      const std::uint32_t old = arcs_[find_arc(victim)].code;
      if (old != churn_code_) set_position(victim, churn_code_);
    }
  }

  void maybe_crash_after_slot() {
    if (crash_q_ > 0.0 && crash_countdown_ == 0) {
      crash_uniform_agent();
      crash_countdown_ = sample_geometric(rng_, crash_q_);
    }
  }

  // No changeful interaction can precede the next crash: consume the
  // countdown's null slots, crash at the countdown's own slot, redraw.
  // Always consumes >= 1 slot, so a churning engine never reports stuck.
  std::uint64_t crash_fast_forward() {
    const std::uint64_t consumed = crash_countdown_;
    interactions_ += consumed;
    crash_countdown_ = 0;
    maybe_crash_after_slot();
    return consumed;
  }

  P protocol_;
  std::uint32_t n_ = 0;
  Rng rng_;
  Rng probe_rng_{0};  // never advanced: deterministic probes don't read it
  FaultSpec faults_{};
  bool faults_active_ = false;
  double crash_q_ = 0.0;
  std::uint32_t churn_code_ = 0;
  std::uint64_t crash_countdown_ = 0;
  std::uint64_t interactions_ = 0;
  std::uint64_t leader_count_ = 0;
  std::vector<Arc> arcs_;
  std::vector<std::uint32_t> free_;
  std::uint32_t arc_count_ = 0;
  RingFenwick weights_;  // active outgoing edges per arc slot
  RingFenwick marks_;    // one mark per arc start position
  std::vector<std::uint32_t> start_slot_;  // valid where a mark is set
  std::vector<std::uint64_t> state_counts_;
  std::vector<CountDelta> last_deltas_;
  StrategyTrace trace_;
  [[no_unique_address]] Counters counters_{};
};

}  // namespace ppsim
