// Incremental tracker for "the rank fields form a permutation of 1..n".
//
// Checking correctness of a ranking configuration naively costs O(n) per
// interaction; since an interaction touches exactly two agents, the tracker
// maintains per-rank counts and the number of ranks with count exactly 1,
// giving an O(1) update. Rank 0 means "no rank assigned".
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

namespace ppsim {

class RankTracker {
 public:
  explicit RankTracker(std::uint32_t n) : n_(n), counts_(n + 1, 0) {}

  // Initializes from a full configuration scan.
  template <class States, class RankOf>
  void reset(const States& states, RankOf&& rank_of) {
    counts_.assign(n_ + 1, 0);
    singletons_ = 0;
    for (const auto& s : states) add(rank_of(s));
  }

  // Call when one agent's rank changes from old_rank to new_rank.
  void on_change(std::uint32_t old_rank, std::uint32_t new_rank) {
    if (old_rank == new_rank) return;
    remove(old_rank);
    add(new_rank);
  }

  // Count-engine form: `delta` agents entered (+) or left (-) `rank`.
  // Mirrors the CountDelta stream of BatchSimulation::last_deltas().
  void apply_delta(std::uint32_t rank, std::int64_t delta) {
    for (; delta > 0; --delta) add(rank);
    for (; delta < 0; ++delta) remove(rank);
  }

  // True iff every rank in 1..n is held by exactly one agent.
  bool is_permutation() const { return singletons_ == n_; }

  std::uint32_t count_of(std::uint32_t rank) const {
    return counts_.at(rank);
  }

 private:
  void add(std::uint32_t rank) {
    if (rank > n_) throw std::out_of_range("rank exceeds population size");
    const auto c = ++counts_[rank];
    if (rank == 0) return;
    if (c == 1)
      ++singletons_;
    else if (c == 2)
      --singletons_;
  }

  void remove(std::uint32_t rank) {
    if (rank > n_) throw std::out_of_range("rank exceeds population size");
    const auto c = --counts_[rank];
    if (rank == 0) return;
    if (c == 1)
      ++singletons_;
    else if (c == 0)
      --singletons_;
  }

  std::uint32_t n_;
  std::vector<std::uint32_t> counts_;
  std::uint32_t singletons_ = 0;
};

}  // namespace ppsim
