// Mean-field ODE companion to the tau-leaping tier.
//
// In the n -> infinity fluid limit the count vector's expected drift per
// unit of parallel time is
//   dx_q / dtau = n * sum over non-null (a, b) of
//                   [x_a (x_b - [a = b]) / (n (n - 1))] * delta_q(a, b),
// with delta_q(a, b) the transition's net count change at q — the same
// deterministic transition function the exact engines apply, read through
// the shared TransitionCache. MeanFieldSimulation integrates that drift
// with classical RK4 over the real-valued mass vector: no randomness at
// all, so it answers *drift-only* questions (expected trajectories,
// occupancy profiles, where the bulk of the population sits at time t) at
// a cost independent of n. Everything stochastic — hitting times of rare
// events, fluctuation-driven leader collisions, stabilization tails — is
// invisible to it; for those, use tau-leaping (which keeps the noise) or
// an exact engine.
//
// The derivative enumeration reuses the passive-structured null knowledge
// (categories with both sides passive and, for keyed protocols, distinct
// keys are never visited), walking only the occupied support: O(occupied
// active x occupied) per evaluation. Masses below kMassFloorPerAgent * n
// are pruned to keep the support finite; the pruned mass (reported by
// pruned_mass()) bounds the non-conservation error.
//
// Deterministic by construction; still *approximate* — results that flow
// through the scenario API (engine=ode) are stamped `approximate: true`.
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/batch_kernels.h"
#include "core/protocol.h"
#include "core/rng.h"

namespace ppsim {

// Default RK4 step in parallel-time units. Timer-chain protocols move a
// code's mass at rate ~2x per unit of parallel time, so 0.05 resolves the
// fastest drift to a few percent per step; engine=ode reuses the scenario's
// tau_eps knob as the step when one is given.
inline constexpr double kDefaultOdeDt = 0.05;

template <EnumerableProtocol P>
class MeanFieldSimulation {
  static_assert(DeterministicProtocol<P>,
                "the mean-field drift is derived from the deterministic "
                "transition function");
  static_assert(KeyedPassiveProtocol<P> || UnkeyedPassiveProtocol<P>,
                "drift enumeration needs the passive-structured null "
                "knowledge to skip null categories");

 public:
  using State = typename P::State;
  using Counters = ProtocolCounters<P>;

  // Mass below this fraction of one agent is pruned from the support.
  static constexpr double kMassFloorPerAgent = 1e-12;

  MeanFieldSimulation(P protocol, const std::vector<std::uint64_t>& counts,
                      double dt = kDefaultOdeDt)
      : protocol_(std::move(protocol)),
        mass_(protocol_.num_states(), 0.0),
        deriv_(protocol_.num_states(), 0.0),
        dt_(dt) {
    if (!(dt_ > 0.0) || !std::isfinite(dt_))
      throw std::invalid_argument("ode dt must be finite and > 0");
    if (counts.size() != mass_.size())
      throw std::invalid_argument("counts size != num_states");
    std::uint64_t total = 0;
    for (std::uint32_t code = 0; code < counts.size(); ++code) {
      if (counts[code] == 0) continue;
      total += counts[code];
      mass_[code] = static_cast<double>(counts[code]);
      occupied_.push_back(code);
      occ_index_.find_or_insert(code, 0);
    }
    if (total != protocol_.population_size() || total < 2)
      throw std::invalid_argument("counts must sum to population size >= 2");
  }

  std::uint32_t population_size() const { return protocol_.population_size(); }
  const P& protocol() const { return protocol_; }
  // Expected per-interaction event counters are not integrated (the repo's
  // counters are integer-valued); always empty.
  const Counters& counters() const { return counters_; }

  double parallel_time() const { return time_; }
  std::uint64_t interactions() const {
    return static_cast<std::uint64_t>(
        time_ * static_cast<double>(population_size()));
  }
  double dt() const { return dt_; }

  // Real-valued mass at a state code, and the current support.
  double mass(std::uint32_t code) const { return mass_[code]; }
  const std::vector<std::uint32_t>& occupied() const { return occupied_; }
  // Total mass pruned at the support floor so far (non-conservation bound).
  double pruned_mass() const { return pruned_; }

  // Advances by `count` scheduler interactions' worth of parallel time
  // (count / n units), in RK4 steps of dt (a final partial step lands
  // exactly on the target).
  void run(std::uint64_t count) {
    run_ptime(static_cast<double>(count) /
              static_cast<double>(population_size()));
  }

  template <class Done>
  bool run_until(Done&& done, std::uint64_t max_interactions) {
    if (done(*this)) return true;
    while (interactions() < max_interactions) {
      step();
      if (done(*this)) return true;
    }
    return false;
  }

  void run_ptime(double tau) {
    const double target = time_ + tau;
    while (time_ < target) {
      const double h = std::min(dt_, target - time_);
      step(h);
    }
  }

  // One RK4 step of length h (default dt).
  void step(double h = 0.0) {
    if (h <= 0.0) h = dt_;
    // k1..k4 each evaluate the drift at base + c * k_prev, applied to the
    // mass vector in place and reverted (the support is sparse; copying
    // the dense vector per stage would dominate).
    eval_drift(k1_);
    with_offset(k1_, 0.5 * h, [&] { eval_drift(k2_); });
    with_offset(k2_, 0.5 * h, [&] { eval_drift(k3_); });
    with_offset(k3_, h, [&] { eval_drift(k4_); });
    const double w1 = h / 6.0, w2 = h / 3.0;
    apply_stage(k1_, w1);
    apply_stage(k2_, w2);
    apply_stage(k3_, w2);
    apply_stage(k4_, w1);
    prune_and_compact();
    time_ += h;
  }

 private:
  struct Stage {
    std::vector<std::uint32_t> codes;
    std::vector<double> values;
  };

  bool restless(std::uint32_t code) const {
    return !protocol_.is_passive(protocol_.decode(code));
  }

  // Evaluates dx/dtau at the current mass_ into `out` (sparse). Enumerates
  // active x occupied and passive x active categories plus (keyed) the
  // same-key passive fibers; every category's deltas come from the shared
  // transition cache.
  void eval_drift(Stage& out) {
    out.codes.clear();
    out.values.clear();
    drift_seen_.clear();
    const double n = static_cast<double>(population_size());
    const double scale = n / (n * (n - 1.0));  // per unit parallel time
    const double floor = kMassFloorPerAgent * n;
    auto add = [&](std::uint32_t code, double v) {
      bool inserted = false;
      drift_seen_.find_or_insert(code, 0, &inserted);
      if (inserted) out.codes.push_back(code);
      deriv_[code] += v;
    };
    auto category = [&](std::uint32_t a, double xa, std::uint32_t b,
                        double xb) {
      if (a == b) xb -= 1.0;
      if (xb <= 0.0) return;
      const typename TransitionCache<P>::Entry& e =
          cache_.lookup(protocol_, a, b, null_rng_);
      if (e.na == a && e.nb == b) return;  // null category
      const double rate = scale * xa * xb;
      add(a, -rate);
      add(b, -rate);
      add(e.na, rate);
      add(e.nb, rate);
    };
    for (std::uint32_t a : occupied_) {
      const double xa = mass_[a];
      if (xa <= floor || !restless(a)) continue;
      for (std::uint32_t b : occupied_) {
        const double xb = mass_[b];
        if (xb <= floor) continue;
        category(a, xa, b, xb);
      }
    }
    for (std::uint32_t q : occupied_) {
      const double xq = mass_[q];
      if (xq <= floor || restless(q)) continue;
      for (std::uint32_t b : occupied_) {
        const double xb = mass_[b];
        if (xb <= floor || !restless(b)) continue;
        category(q, xq, b, xb);
      }
    }
    if constexpr (KeyedPassiveProtocol<P>) {
      // Same-key passive pairs: group occupied passive codes by key.
      key_mass_.clear();
      for (std::uint32_t q : occupied_) {
        if (mass_[q] <= floor || restless(q)) continue;
        key_mass_.add(protocol_.passive_key(protocol_.decode(q)), 1);
      }
      for (std::uint32_t slot : key_mass_.entry_slots()) {
        // Fibers are tiny (3 codes for Optimal-Silent); enumerate the
        // key's fiber pairs whenever the key holds occupied passive mass
        // (two distinct codes, or one code with mass > 1).
        const auto key = static_cast<std::uint32_t>(key_mass_.key_at(slot));
        for (std::uint32_t c1 : protocol_.passive_fiber(key)) {
          const double x1 = mass_[c1];
          if (x1 <= floor) continue;
          for (std::uint32_t c2 : protocol_.passive_fiber(key)) {
            const double x2 = mass_[c2];
            if (x2 <= floor) continue;
            category(c1, x1, c2, x2);
          }
        }
      }
    }
    for (std::uint32_t code : out.codes) {
      out.values.push_back(deriv_[code]);
      deriv_[code] = 0.0;  // leave the dense accumulator clean
    }
  }

  // Runs `body` with mass_ displaced by c * stage, then reverts exactly
  // (the displacement is saved, not recomputed, so float drift cannot
  // corrupt the base state).
  template <class Body>
  void with_offset(const Stage& stage, double c, Body body) {
    saved_.clear();
    for (std::size_t i = 0; i < stage.codes.size(); ++i) {
      const std::uint32_t code = stage.codes[i];
      saved_.push_back(mass_[code]);
      ensure_occupied(code);
      mass_[code] =
          std::max(0.0, mass_[code] + c * stage.values[i]);
    }
    body();
    for (std::size_t i = 0; i < stage.codes.size(); ++i)
      mass_[stage.codes[i]] = saved_[i];
  }

  void apply_stage(const Stage& stage, double c) {
    for (std::size_t i = 0; i < stage.codes.size(); ++i) {
      const std::uint32_t code = stage.codes[i];
      ensure_occupied(code);
      mass_[code] = std::max(0.0, mass_[code] + c * stage.values[i]);
    }
  }

  void ensure_occupied(std::uint32_t code) {
    bool inserted = false;
    occ_index_.find_or_insert(code, 0, &inserted);
    if (inserted) occupied_.push_back(code);
  }

  void prune_and_compact() {
    const double floor =
        kMassFloorPerAgent * static_cast<double>(population_size());
    std::size_t kept = 0;
    for (std::uint32_t code : occupied_) {
      if (mass_[code] > floor) {
        occupied_[kept++] = code;
      } else {
        pruned_ += mass_[code];
        mass_[code] = 0.0;
      }
    }
    if (kept == occupied_.size()) return;
    occupied_.resize(kept);
    occ_index_.clear();
    for (std::uint32_t code : occupied_) occ_index_.find_or_insert(code, 0);
  }

  P protocol_;
  std::vector<double> mass_;
  std::vector<double> deriv_;  // dense accumulator for eval_drift
  std::vector<std::uint32_t> occupied_;
  FlatMap64 occ_index_;
  FlatMap64 drift_seen_;  // codes already pushed this evaluation
  FlatMap64 key_mass_;    // keyed: occupied passive keys this evaluation
  TransitionCache<P> cache_;
  Rng null_rng_{0};  // deterministic protocols never read it
  Counters counters_{};
  std::vector<double> saved_;
  Stage k1_, k2_, k3_, k4_;
  double dt_;
  double time_ = 0.0;
  double pruned_ = 0.0;
};

}  // namespace ppsim
