// The backend-agnostic Engine contract.
//
// Both simulation backends — the agent-array Simulation<P> and the
// count-based BatchSimulation<P> — satisfy the same structural concept:
// run / run_until / interactions / parallel_time / state_counts snapshot /
// counters. Analysis code (analysis/convergence.h, analysis/experiments.h)
// is written against these concepts, so every harness, bench and example
// can pick a backend per protocol and per population size instead of being
// hard-wired to one engine.
//
// The refinements capture what each backend can do *beyond* the shared
// contract:
//   AgentArrayEngine - exposes the explicit agent array and per-step
//                      (initiator, responder) pairs; works for every
//                      protocol and is the ground truth.
//   CountEngine      - the configuration IS the state-count vector; exposes
//                      the per-step count deltas so trackers can stay
//                      incremental, and step() returns the number of
//                      interactions consumed (0 = provably stuck/silent).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/protocol.h"
#include "core/scheduler.h"

namespace ppsim {

// How a count engine advances time between configuration changes:
//   kGeometricSkip - jump over provably-null stretches with one geometric
//                    draw, then simulate the next candidate interaction
//                    individually (optimal when effective interactions are
//                    rare: silent-heavy regimes, detection waits)
//   kMultinomial   - simulate a whole Theta(sqrt(n))-interaction
//                    collision-free batch at once by sampling its state
//                    multiset hypergeometrically (ppsim-style; optimal when
//                    nearly every interaction is effective: timer-driven
//                    countdowns)
//   kAuto          - pick per step from the measured effective-interaction
//                    density (the active-weight fraction W / n(n-1) when the
//                    protocol exposes an exact active weight)
//   kSharded       - intra-run parallelism: split the count vector across T
//                    worker shards per round (multivariate-hypergeometric
//                    partition), run each shard's batches concurrently, and
//                    merge (core/sharded_simulation.h's ShardedSimulation;
//                    BatchSimulation itself rejects this value)
enum class BatchStrategy : std::uint8_t {
  kGeometricSkip,
  kMultinomial,
  kAuto,
  kSharded,
};

inline const char* to_string(BatchStrategy s) {
  switch (s) {
    case BatchStrategy::kGeometricSkip: return "geometric_skip";
    case BatchStrategy::kMultinomial: return "multinomial";
    case BatchStrategy::kAuto: return "auto";
    case BatchStrategy::kSharded: return "sharded";
  }
  return "?";
}

// Parses the --strategy= spelling used by the bench binaries.
inline bool parse_strategy(const std::string& name, BatchStrategy& out) {
  if (name == "geometric_skip" || name == "geometric") {
    out = BatchStrategy::kGeometricSkip;
  } else if (name == "multinomial") {
    out = BatchStrategy::kMultinomial;
  } else if (name == "auto") {
    out = BatchStrategy::kAuto;
  } else if (name == "sharded") {
    out = BatchStrategy::kSharded;
  } else {
    return false;
  }
  return true;
}

// Concept-probe predicate (requires-expressions cannot contain lambdas).
struct NeverDone {
  template <class E>
  bool operator()(const E&) const {
    return false;
  }
};

template <class E>
concept Engine = requires(E e, const E ce, std::uint64_t k) {
  typename E::State;
  { ce.population_size() } -> std::convertible_to<std::uint32_t>;
  { ce.interactions() } -> std::convertible_to<std::uint64_t>;
  { ce.parallel_time() } -> std::convertible_to<double>;
  { ce.protocol() };
  { ce.counters() };
  { e.run(k) };
  { e.run_until(NeverDone{}, k) } -> std::convertible_to<bool>;
};

// Engines whose configuration snapshot is the state-count vector and that
// report which counts the last effective step changed.
template <class E>
concept CountEngine = Engine<E> && requires(E e, const E ce) {
  { ce.state_counts() } -> std::convertible_to<const std::vector<std::uint64_t>&>;
  { ce.last_deltas() };
  { e.step() } -> std::convertible_to<std::uint64_t>;
};

// Engines that own an explicit agent array and schedule one ordered agent
// pair per step.
template <class E>
concept AgentArrayEngine = Engine<E> && requires(E e, const E ce) {
  { ce.states() };
  { e.step() } -> std::same_as<AgentPair>;
};

// Count engines with a runtime-selectable batching strategy. strategy() is
// the requested strategy; resolved_strategy() is what the next step will
// actually run (they differ only under kAuto, which switches on the
// measured effective-interaction density).
template <class E>
concept StrategyEngine = CountEngine<E> && requires(E e, const E ce,
                                                    BatchStrategy s) {
  { ce.strategy() } -> std::same_as<BatchStrategy>;
  { ce.resolved_strategy() } -> std::same_as<BatchStrategy>;
  { e.set_strategy(s) };
};

}  // namespace ppsim
