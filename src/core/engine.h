// The backend-agnostic Engine contract.
//
// Both simulation backends — the agent-array Simulation<P> and the
// count-based BatchSimulation<P> — satisfy the same structural concept:
// run / run_until / interactions / parallel_time / state_counts snapshot /
// counters. Analysis code (analysis/convergence.h, analysis/experiments.h)
// is written against these concepts, so every harness, bench and example
// can pick a backend per protocol and per population size instead of being
// hard-wired to one engine.
//
// The refinements capture what each backend can do *beyond* the shared
// contract:
//   AgentArrayEngine - exposes the explicit agent array and per-step
//                      (initiator, responder) pairs; works for every
//                      protocol and is the ground truth.
//   CountEngine      - the configuration IS the state-count vector; exposes
//                      the per-step count deltas so trackers can stay
//                      incremental, and step() returns the number of
//                      interactions consumed (0 = provably stuck/silent).
#pragma once

#include <cstdint>
#include <vector>

#include "core/protocol.h"
#include "core/scheduler.h"

namespace ppsim {

// Concept-probe predicate (requires-expressions cannot contain lambdas).
struct NeverDone {
  template <class E>
  bool operator()(const E&) const {
    return false;
  }
};

template <class E>
concept Engine = requires(E e, const E ce, std::uint64_t k) {
  typename E::State;
  { ce.population_size() } -> std::convertible_to<std::uint32_t>;
  { ce.interactions() } -> std::convertible_to<std::uint64_t>;
  { ce.parallel_time() } -> std::convertible_to<double>;
  { ce.protocol() };
  { ce.counters() };
  { e.run(k) };
  { e.run_until(NeverDone{}, k) } -> std::convertible_to<bool>;
};

// Engines whose configuration snapshot is the state-count vector and that
// report which counts the last effective step changed.
template <class E>
concept CountEngine = Engine<E> && requires(E e, const E ce) {
  { ce.state_counts() } -> std::convertible_to<const std::vector<std::uint64_t>&>;
  { ce.last_deltas() };
  { e.step() } -> std::convertible_to<std::uint64_t>;
};

// Engines that own an explicit agent array and schedule one ordered agent
// pair per step.
template <class E>
concept AgentArrayEngine = Engine<E> && requires(E e, const E ce) {
  { ce.states() };
  { e.step() } -> std::same_as<AgentPair>;
};

}  // namespace ppsim
