// The backend-agnostic Engine contract.
//
// Both simulation backends — the agent-array Simulation<P> and the
// count-based BatchSimulation<P> — satisfy the same structural concept:
// run / run_until / interactions / parallel_time / state_counts snapshot /
// counters. Analysis code (analysis/convergence.h, analysis/experiments.h)
// is written against these concepts, so every harness, bench and example
// can pick a backend per protocol and per population size instead of being
// hard-wired to one engine.
//
// The refinements capture what each backend can do *beyond* the shared
// contract:
//   AgentArrayEngine - exposes the explicit agent array and per-step
//                      (initiator, responder) pairs; works for every
//                      protocol and is the ground truth.
//   CountEngine      - the configuration IS the state-count vector; exposes
//                      the per-step count deltas so trackers can stay
//                      incremental, and step() returns the number of
//                      interactions consumed (0 = provably stuck/silent).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "core/protocol.h"
#include "core/scheduler.h"

namespace ppsim {

// How a count engine advances time between configuration changes:
//   kGeometricSkip - jump over provably-null stretches with one geometric
//                    draw, then simulate the next candidate interaction
//                    individually (optimal when effective interactions are
//                    rare: silent-heavy regimes, detection waits)
//   kMultinomial   - simulate a whole Theta(sqrt(n))-interaction
//                    collision-free batch at once by sampling its state
//                    multiset hypergeometrically (ppsim-style; optimal when
//                    nearly every interaction is effective: timer-driven
//                    countdowns)
//   kAuto          - pick per step from the measured effective-interaction
//                    density (the active-weight fraction W / n(n-1) when the
//                    protocol exposes an exact active weight)
//   kSharded       - intra-run parallelism: split the count vector across T
//                    worker shards per round (multivariate-hypergeometric
//                    partition), run each shard's batches concurrently, and
//                    merge (core/sharded_simulation.h's ShardedSimulation;
//                    BatchSimulation itself rejects this value)
//   kTauLeap       - APPROXIMATE: freeze the pair rates and advance a whole
//                    macro-leap at once by drawing Poisson interaction
//                    counts per (s1, s2) category
//                    (core/tau_leap_simulation.h's TauLeapSimulation;
//                    BatchSimulation itself rejects this value). Results
//                    are a pure function of (seed, tau_eps) but are NOT
//                    exact-in-distribution; every result that flows through
//                    the scenario API is stamped approximate.
enum class BatchStrategy : std::uint8_t {
  kGeometricSkip,
  kMultinomial,
  kAuto,
  kSharded,
  kTauLeap,
};

inline const char* to_string(BatchStrategy s) {
  switch (s) {
    case BatchStrategy::kGeometricSkip: return "geometric_skip";
    case BatchStrategy::kMultinomial: return "multinomial";
    case BatchStrategy::kAuto: return "auto";
    case BatchStrategy::kSharded: return "sharded";
    case BatchStrategy::kTauLeap: return "tau";
  }
  return "?";
}

// Parses the --strategy= spelling used by the bench binaries.
inline bool parse_strategy(const std::string& name, BatchStrategy& out) {
  if (name == "geometric_skip" || name == "geometric") {
    out = BatchStrategy::kGeometricSkip;
  } else if (name == "multinomial") {
    out = BatchStrategy::kMultinomial;
  } else if (name == "auto") {
    out = BatchStrategy::kAuto;
  } else if (name == "sharded") {
    out = BatchStrategy::kSharded;
  } else if (name == "tau" || name == "tau_leap") {
    out = BatchStrategy::kTauLeap;
  } else {
    return false;
  }
  return true;
}

// One executable arm of the occupancy-adaptive strategy controller: the
// full space of ways a scenario step can be driven, including the
// agent-array ground truth (which BatchStrategy cannot express — it is not
// a count-engine strategy at all).
enum class StrategyArm : std::uint8_t {
  kArray = 0,
  kGeometricSkip = 1,
  kMultinomial = 2,
  kSharded = 3,
  kTauLeap = 4,
};

inline constexpr std::size_t kStrategyArmCount = 5;

inline const char* to_string(StrategyArm a) {
  switch (a) {
    case StrategyArm::kArray: return "array";
    case StrategyArm::kGeometricSkip: return "geometric_skip";
    case StrategyArm::kMultinomial: return "multinomial";
    case StrategyArm::kSharded: return "sharded";
    case StrategyArm::kTauLeap: return "tau";
  }
  return "?";
}

// Per-run record of which arm drove each step and how many interactions it
// consumed — the controller's decision trace, surfaced through
// ScenarioResult so benches can report what `auto` actually ran.
struct StrategyTrace {
  std::array<std::uint64_t, kStrategyArmCount> steps{};
  std::array<std::uint64_t, kStrategyArmCount> interactions{};

  void note(StrategyArm arm, std::uint64_t consumed) {
    const auto i = static_cast<std::size_t>(arm);
    ++steps[i];
    interactions[i] += consumed;
  }

  void merge(const StrategyTrace& other) {
    for (std::size_t i = 0; i < kStrategyArmCount; ++i) {
      steps[i] += other.steps[i];
      interactions[i] += other.interactions[i];
    }
  }

  std::uint64_t total_steps() const {
    std::uint64_t s = 0;
    for (std::uint64_t v : steps) s += v;
    return s;
  }
};

// The measured strategy controller behind `auto`: maps the configuration's
// occupancy profile — population, occupied-state count, segment count and
// the exact active weight when the protocol declares structure — onto the
// arm that the measurements in README.md ("Occupancy regimes and strategy
// selection") show is fastest there. Every input is derived from the
// deterministic simulation state (never wall-clock), so decisions are a
// pure function of the seed and all bit-determinism contracts survive.
//
// The sharded arm is never auto-chosen: picking it from a machine property
// (core count) would make results machine-dependent, which the repo's
// determinism contract forbids. It runs only when requested explicitly.
//
// The tau-leap arm is likewise never auto-chosen, for a stronger reason:
// it is approximate, and `auto` promises an exact-in-distribution result.
// Approximation is opt-in only (strategy=tau), and everything it produces
// is stamped approximate downstream.
struct StrategyController {
  // Whole-run arm choice (engine_arm): dense starts — occupancy at least
  // n / kDenseOccupancyDivisor — defeat every count engine, because with
  // ~n occupied states each interaction pays hash/Fenwick traffic that the
  // agent array's two random array reads do not. Measured on the
  // uniform-random n = 10^6 worst case: array ~80 ns/interaction vs ~2 us
  // for the count engines. Below kDenseArrayMinPopulation the count
  // engines' batches stay cache-resident regardless of occupancy, so the
  // density signal alone decides.
  static constexpr std::uint64_t kDenseArrayMinPopulation = 4096;
  static constexpr std::uint64_t kDenseOccupancyDivisor = 8;

  // Count-engine effective-interaction density below which geometric skip
  // beats batching (most interactions are null: jump them).
  static constexpr double kSkipDensity = 1.0 / 16.0;

  // Below this population a structured protocol under `auto` never builds
  // the occupied pool (no segment signal, no batching): the geometric
  // path's Fenwick walks are cache-hot there and win even at density 1.
  // Measured crossover on the Optimal-Silent dormant countdown is
  // n ~ 1-2e4 (bench_table1's strategy head-to-head); the floor sits below
  // it so the controller — not the floor — decides the contested range.
  static constexpr std::uint64_t kAutoPoolMinPopulation = 4096;

  // Batch amortization guard: the multinomial batch spreads its O(segments)
  // split cost over E[L] ~ 0.63 sqrt(n) interactions, so batching needs
  // kBatchSegmentsPerPrefix * segments <= sqrt(n). This replaces the old
  // fixed n >= 16384 floor with the occupancy-adaptive equivalent (at the
  // old floor, sqrt(n) = 128: protocols with <= 32 segments batch exactly
  // as before; fragmented configurations now correctly fall back to skip).
  static constexpr std::uint64_t kBatchSegmentsPerPrefix = 4;

  // Whole-run decision from the initial configuration, taken before an
  // engine is constructed: dense starts go to the agent array, everything
  // else to a count engine refined per step by step_strategy().
  static StrategyArm engine_arm(std::uint64_t n, std::uint64_t occupancy) {
    if (n >= kDenseArrayMinPopulation &&
        occupancy * kDenseOccupancyDivisor >= n)
      return StrategyArm::kArray;
    return StrategyArm::kMultinomial;
  }

  // Per-step count-engine choice for protocols with an exact structured
  // active weight W (effective-interaction density W / n(n-1)).
  static BatchStrategy step_strategy(std::uint64_t n,
                                     std::uint64_t active_weight,
                                     std::uint32_t segments) {
    const double density =
        static_cast<double>(active_weight) /
        (static_cast<double>(n) * static_cast<double>(n - 1));
    if (density < kSkipDensity) return BatchStrategy::kGeometricSkip;
    const double prefix = std::sqrt(static_cast<double>(n));
    if (static_cast<double>(kBatchSegmentsPerPrefix) *
            static_cast<double>(segments) >
        prefix)
      return BatchStrategy::kGeometricSkip;
    return BatchStrategy::kMultinomial;
  }

  // Per-step choice inside a shard worker. The tradeoff differs from
  // step_strategy() because the geometric path's costs differ: the merged
  // engine draws its active pair through full-|Q| Fenwick walks (O(log |Q|)
  // per effective interaction), while a shard worker draws by linear scans
  // over its occupied pool — O(occupied) per *effective* interaction. So
  // inside a shard the skip path pays only while active arrivals are rare
  // enough that scans are amortized by the jumps; at higher density the
  // multinomial batch wins regardless of segment spread (the sparse
  // kernel's per-draw fallback is O(log segments + segment fill) per draw,
  // never O(occupied)). Without this a dense uniform-random pool pinned to
  // strategy=sharded paid ~n scans per interaction — quadratic rounds.
  static BatchStrategy shard_step_strategy(std::uint64_t m,
                                           std::uint64_t active_weight) {
    const double density =
        static_cast<double>(active_weight) /
        (static_cast<double>(m) * static_cast<double>(m - 1));
    return density < kSkipDensity ? BatchStrategy::kGeometricSkip
                                  : BatchStrategy::kMultinomial;
  }
};

// Concept-probe predicate (requires-expressions cannot contain lambdas).
struct NeverDone {
  template <class E>
  bool operator()(const E&) const {
    return false;
  }
};

template <class E>
concept Engine = requires(E e, const E ce, std::uint64_t k) {
  typename E::State;
  { ce.population_size() } -> std::convertible_to<std::uint32_t>;
  { ce.interactions() } -> std::convertible_to<std::uint64_t>;
  { ce.parallel_time() } -> std::convertible_to<double>;
  { ce.protocol() };
  { ce.counters() };
  { e.run(k) };
  { e.run_until(NeverDone{}, k) } -> std::convertible_to<bool>;
};

// Engines whose configuration snapshot is the state-count vector and that
// report which counts the last effective step changed.
template <class E>
concept CountEngine = Engine<E> && requires(E e, const E ce) {
  { ce.state_counts() } -> std::convertible_to<const std::vector<std::uint64_t>&>;
  { ce.last_deltas() };
  { e.step() } -> std::convertible_to<std::uint64_t>;
};

// Engines that own an explicit agent array and schedule one ordered agent
// pair per step.
template <class E>
concept AgentArrayEngine = Engine<E> && requires(E e, const E ce) {
  { ce.states() };
  { e.step() } -> std::same_as<AgentPair>;
};

// Count engines with a runtime-selectable batching strategy. strategy() is
// the requested strategy; resolved_strategy() is what the next step will
// actually run (they differ only under kAuto, which switches on the
// measured effective-interaction density).
template <class E>
concept StrategyEngine = CountEngine<E> && requires(E e, const E ce,
                                                    BatchStrategy s) {
  { ce.strategy() } -> std::same_as<BatchStrategy>;
  { ce.resolved_strategy() } -> std::same_as<BatchStrategy>;
  { e.set_strategy(s) };
};

}  // namespace ppsim
