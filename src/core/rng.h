// Deterministic pseudo-random number generation for population-protocol
// simulation.
//
// The uniform random scheduler is the only source of randomness in the model
// (Section 2 of the paper); every simulation owns one Xoshiro256ss instance
// seeded explicitly, so all experiments are reproducible from (params, seed).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

namespace ppsim {

// SplitMix64: used to expand a single 64-bit seed into the 256-bit state of
// xoshiro256**. Passes through zero-state pathologies of naive seeding.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
// Satisfies UniformRandomBitGenerator.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256ss(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound), bound >= 1. Lemire's multiply-shift with
  // rejection: unbiased and branch-cheap.
  std::uint64_t below(std::uint64_t bound) {
    using u128 = unsigned __int128;
    std::uint64_t x = (*this)();
    u128 m = static_cast<u128>(x) * static_cast<u128>(bound);
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<u128>(x) * static_cast<u128>(bound);
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  bool coin() { return ((*this)() >> 63) != 0; }

  // Uniform double in [0, 1).
  double unit() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

using Rng = Xoshiro256ss;

// Number of Bernoulli(p) trials up to and including the first success:
// P[X >= k] = (1-p)^{k-1}. The jump-chain accelerators (SilentNStateFast,
// BatchSimulation) use this to skip whole null stretches in one draw.
inline std::uint64_t sample_geometric(Rng& rng, double p) {
  if (p >= 1.0) return 1;
  if (p <= 0.0) throw std::invalid_argument("geometric with p<=0");
  const double u = 1.0 - rng.unit();  // in (0, 1]
  const double k = std::ceil(std::log(u) / std::log1p(-p));
  return k < 1.0 ? 1 : static_cast<std::uint64_t>(k);
}

// Derives a child seed from (base, stream) so that parameter sweeps use
// independent streams without manual bookkeeping.
inline std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) {
  SplitMix64 sm(base ^ (0xd1342543de82ef95ULL * (stream + 1)));
  sm.next();
  return sm.next();
}

}  // namespace ppsim
