// Count-based batched simulation backend.
//
// For a protocol whose state space Q is finite and enumerable, a population
// configuration is fully described by the vector of state counts
// (m_q)_{q in Q} — the scheduler of Section 2 is anonymous, so agent
// identities carry no information. This backend keeps exactly that vector:
// O(|Q|) memory instead of the O(n) agent array, and each step samples the
// ordered (initiator, responder) *state pair* from the count distribution,
//   P[(a, b)] = m_a (m_b - [a = b]) / (n (n - 1)),
// which is precisely the pushforward of the uniform ordered-agent-pair
// scheduler. The simulated interaction-count process therefore has the same
// distribution as Simulation<P>'s, projected onto counts (validated in
// tests/batch_simulation_test.cpp and tests/engine_equivalence_test.cpp).
//
// Batching. Protocols that expose a deterministic null-pair predicate
// (NullPairProtocol) let the backend skip runs of identical-outcome draws:
//  * If the protocol further declares that only equal-state pairs can be
//    non-null (DiagonalActiveProtocol — true for Silent-n-state-SSR, whose
//    transition fires only on rank collisions), the total non-null weight
//    W = sum_q active(q) m_q (m_q - 1) is maintained incrementally, the
//    wait until the next effective interaction is Geometric(W / n(n-1)),
//    and whole Theta(n^2)-step null stretches cost O(1). This generalizes
//    the hand-rolled SilentNStateFast accelerator to any diagonal protocol.
//  * If the protocol declares the keyed-passive structure (null iff both
//    agents are "passive" with distinct keys — Optimal-Silent-SSR: passive
//    = Settled, key = rank), the active weight decomposes exactly as
//      W = A (n - 1) + S A + sum_k s_k (s_k - 1),
//    with A restless agents, S = n - A passive agents and s_k passive
//    agents at key k. All three terms are maintained incrementally, the
//    wait until the next active interaction is Geometric(W / n(n-1)), and
//    the active pair is sampled from the exact conditional distribution by
//    case-splitting on the three terms. A mostly-Settled population (the
//    regime of the Observation 2.6 detection experiments) fast-forwards
//    through Theta(n^2) null interactions in O(1).
//  * Otherwise, when a drawn pair (a, b) is null, the run of consecutive
//    identical (a, b) draws is Geometric too; the backend samples its
//    length, accounts the whole run at once, and then redraws from the
//    exact conditional distribution (rejection against the just-finished
//    pair), which pays off whenever counts are concentrated on few states.
//
// Weighted state sampling uses a Fenwick (binary indexed) tree: O(log |Q|)
// per draw and per count update, so even |Q| = 35 n = 3.5e8 state spaces
// (Optimal-Silent-SSR at n = 10^7) sample efficiently.
//
// BatchSimulation<P> satisfies the Engine and CountEngine concepts of
// core/engine.h; protocol event counters live engine-side (counters()).
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/protocol.h"
#include "core/rng.h"  // sample_geometric

namespace ppsim {

// Fenwick tree over per-state weights, supporting O(log |Q|) point update
// and O(log |Q|) sampling of an index with probability weight/total.
class WeightedSampler {
 public:
  explicit WeightedSampler(std::uint32_t size) : tree_(size + 1, 0) {}

  // O(size) bulk construction from a full weight vector (replaces any
  // existing content) — point-adds would cost O(size log size).
  void build(const std::vector<std::uint64_t>& weights) {
    std::fill(tree_.begin(), tree_.end(), 0);
    for (std::uint32_t i = 1; i < tree_.size(); ++i) {
      tree_[i] += weights[i - 1];
      const std::uint32_t parent = i + (i & (~i + 1));
      if (parent < tree_.size()) tree_[parent] += tree_[i];
    }
  }

  void add(std::uint32_t index, std::int64_t delta) {
    for (std::uint32_t i = index + 1; i < tree_.size(); i += i & (~i + 1))
      tree_[i] += static_cast<std::uint64_t>(delta);
  }

  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (std::uint32_t i = static_cast<std::uint32_t>(tree_.size()) - 1; i > 0;
         i -= i & (~i + 1))
      sum += tree_[i];
    return sum;
  }

  // Returns the smallest index such that the prefix sum through it exceeds
  // `target` (target in [0, total())): samples index ∝ weight.
  std::uint32_t find(std::uint64_t target) const {
    std::uint32_t pos = 0;
    std::uint32_t mask = 1;
    while ((mask << 1) < tree_.size()) mask <<= 1;
    for (; mask > 0; mask >>= 1) {
      const std::uint32_t next = pos + mask;
      if (next < tree_.size() && tree_[next] <= target) {
        target -= tree_[next];
        pos = next;
      }
    }
    return pos;  // 0-based index
  }

 private:
  std::vector<std::uint64_t> tree_;  // 1-based internal indexing
};

struct BatchStepStats {
  std::uint64_t effective = 0;  // interactions simulated individually
  std::uint64_t batched = 0;    // null interactions accounted in bulk
};

// One count change applied by the last effective step: counts()[code]
// moved by delta. At most four entries per step (two agents, two states
// each). Lets analysis code (e.g. the generic ranked-run harness) keep
// incremental trackers without rescanning O(|Q|) counts.
struct CountDelta {
  std::uint32_t code;
  std::int32_t delta;
};

template <EnumerableProtocol P>
class BatchSimulation {
 public:
  using State = typename P::State;
  using Counters = ProtocolCounters<P>;

  // Member-initialization order (declaration order) makes counts_of safe
  // here: protocol_ is fully constructed before counts_ is initialized.
  BatchSimulation(P protocol, const std::vector<State>& initial,
                  std::uint64_t seed)
      : protocol_(std::move(protocol)),
        counts_(counts_of(protocol_, initial)),
        count_sampler_(protocol_.num_states()),
        diag_sampler_(DiagonalActiveProtocol<P> ? protocol_.num_states() : 0),
        restless_sampler_(keyed_only(protocol_.num_states())),
        key_sampler_(keyed_only_keys()),
        rng_(seed) {
    init_samplers();
  }

  BatchSimulation(P protocol, std::vector<std::uint64_t> counts,
                  std::uint64_t seed)
      : protocol_(std::move(protocol)),
        counts_(std::move(counts)),
        count_sampler_(protocol_.num_states()),
        diag_sampler_(DiagonalActiveProtocol<P> ? protocol_.num_states() : 0),
        restless_sampler_(keyed_only(protocol_.num_states())),
        key_sampler_(keyed_only_keys()),
        rng_(seed) {
    init_samplers();
  }

  std::uint32_t population_size() const {
    return protocol_.population_size();
  }
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  // Engine-contract name for the same snapshot.
  const std::vector<std::uint64_t>& state_counts() const { return counts_; }
  const P& protocol() const { return protocol_; }
  P& protocol() { return protocol_; }
  Rng& rng() { return rng_; }

  // Engine-side observer: per-interaction events reported by observable
  // protocols (empty for plain protocols).
  const Counters& counters() const { return counters_; }

  std::uint64_t interactions() const { return interactions_; }
  double parallel_time() const {
    return static_cast<double>(interactions_) /
           static_cast<double>(population_size());
  }
  const BatchStepStats& stats() const { return stats_; }

  // Count changes applied by the most recent effective step (empty right
  // after construction and after a step() that returned 0).
  const std::vector<CountDelta>& last_deltas() const { return last_deltas_; }

  // For diagonal and keyed-passive protocols: true iff no future interaction
  // can change the configuration (the configuration is silent).
  bool silent() const
    requires DiagonalActiveProtocol<P> || KeyedPassiveProtocol<P>
  {
    if constexpr (DiagonalActiveProtocol<P>) {
      return diag_sampler_.total() == 0;
    } else {
      return active_weight_keyed() == 0;
    }
  }

  // Advances the simulation by at least one interaction (a whole batched
  // null run counts as its true number of interactions). Returns the number
  // of interactions consumed, 0 iff the configuration is provably stuck:
  // zero active weight (diagonal/keyed protocols), or every agent in one
  // null self-pairing state (null-aware general protocols).
  std::uint64_t step() {
    if constexpr (DiagonalActiveProtocol<P>) {
      return step_diagonal();
    } else if constexpr (KeyedPassiveProtocol<P>) {
      return step_keyed();
    } else {
      return step_general();
    }
  }

  // Runs until at least `count` interactions have elapsed (a final batch
  // may overshoot; the overshoot is real simulated time, not error).
  void run(std::uint64_t count) {
    const std::uint64_t target = interactions_ + count;
    while (interactions_ < target)
      if (step() == 0) break;  // silent: nothing will ever change again
  }

  // Runs until done(*this) is true, checking after every configuration
  // change (null runs cannot flip a configuration predicate). Returns true
  // iff the predicate fired before `max_interactions`.
  template <class Done>
  bool run_until(Done&& done, std::uint64_t max_interactions) {
    if (done(*this)) return true;
    while (interactions_ < max_interactions) {
      if (step() == 0) return done(*this);
      if (done(*this)) return true;
    }
    return false;
  }

 private:
  static constexpr std::uint32_t keyed_only(std::uint32_t size) {
    return KeyedPassiveProtocol<P> ? size : 0;
  }
  std::uint32_t keyed_only_keys() const {
    if constexpr (KeyedPassiveProtocol<P>)
      return protocol_.num_passive_keys();
    else
      return 0;
  }

  void init_samplers() {
    const std::uint32_t q = protocol_.num_states();
    if (counts_.size() != q)
      throw std::invalid_argument("counts size != num_states");
    std::uint64_t total = 0;
    for (std::uint32_t s = 0; s < q; ++s) total += counts_[s];
    if (total != protocol_.population_size())
      throw std::invalid_argument("counts must sum to population size");
    count_sampler_.build(counts_);
    if constexpr (DiagonalActiveProtocol<P>) {
      diag_active_.resize(q);
      std::vector<std::uint64_t> diag(q, 0);
      for (std::uint32_t s = 0; s < q; ++s) {
        const State st = protocol_.decode(s);
        diag_active_[s] = !protocol_.is_null_pair(st, st);
        if (diag_active_[s]) diag[s] = diag_weight(s);
      }
      diag_sampler_.build(diag);
    } else if constexpr (KeyedPassiveProtocol<P>) {
      key_counts_.assign(protocol_.num_passive_keys(), 0);
      // Point-adds over occupied states only: at most n of the |Q| codes
      // are occupied, so this beats a dense O(|Q|) weight-vector build
      // (and avoids allocating a second |Q|-sized temporary — |Q| = 35n
      // for Optimal-Silent-SSR, so construction cost matters at n = 10^6+).
      for (std::uint32_t s = 0; s < q; ++s) {
        if (counts_[s] == 0) continue;
        const State st = protocol_.decode(s);
        if (protocol_.is_passive(st)) {
          key_counts_[protocol_.passive_key(st)] += counts_[s];
        } else {
          restless_sampler_.add(s, static_cast<std::int64_t>(counts_[s]));
        }
      }
      std::vector<std::uint64_t> key_w(key_counts_.size(), 0);
      for (std::uint32_t k = 0; k < key_counts_.size(); ++k)
        key_w[k] = pair_weight(key_counts_[k]);
      key_sampler_.build(key_w);
    }
  }

  static std::vector<std::uint64_t> counts_of(const P& protocol,
                                              const std::vector<State>& states) {
    if (states.size() != protocol.population_size())
      throw std::invalid_argument(
          "initial configuration size != population size");
    std::vector<std::uint64_t> counts(protocol.num_states(), 0);
    for (const State& s : states) {
      const std::uint32_t code = protocol.encode(s);
      if (code >= counts.size())
        throw std::invalid_argument("encode() out of range");
      ++counts[code];
    }
    return counts;
  }

  static std::uint64_t pair_weight(std::uint64_t m) {
    return m * (m > 0 ? m - 1 : 0);
  }

  std::uint64_t diag_weight(std::uint32_t s) const {
    return pair_weight(counts_[s]);
  }

  double ordered_pairs() const {
    const double n = static_cast<double>(population_size());
    return n * (n - 1.0);
  }

  void apply_count_delta(std::uint32_t s, std::int64_t delta) {
    if constexpr (DiagonalActiveProtocol<P>) {
      if (diag_active_[s])
        diag_sampler_.add(s, -static_cast<std::int64_t>(diag_weight(s)));
    }
    counts_[s] = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(counts_[s]) + delta);
    count_sampler_.add(s, delta);
    if constexpr (DiagonalActiveProtocol<P>) {
      if (diag_active_[s])
        diag_sampler_.add(s, static_cast<std::int64_t>(diag_weight(s)));
    } else if constexpr (KeyedPassiveProtocol<P>) {
      const State st = protocol_.decode(s);
      if (protocol_.is_passive(st)) {
        const std::uint32_t k = protocol_.passive_key(st);
        key_sampler_.add(
            k, -static_cast<std::int64_t>(pair_weight(key_counts_[k])));
        key_counts_[k] = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(key_counts_[k]) + delta);
        key_sampler_.add(
            k, static_cast<std::int64_t>(pair_weight(key_counts_[k])));
      } else {
        restless_sampler_.add(s, delta);
      }
    }
    last_deltas_.push_back(CountDelta{s, static_cast<std::int32_t>(delta)});
  }

  // Applies interact() to one (a, b) state pair drawn by the scheduler and
  // folds the result back into the counts.
  void apply_interaction(std::uint32_t a, std::uint32_t b) {
    last_deltas_.clear();
    State sa = protocol_.decode(a);
    State sb = protocol_.decode(b);
    invoke_interact(protocol_, sa, sb, rng_, counters_);
    const std::uint32_t na = protocol_.encode(sa);
    const std::uint32_t nb = protocol_.encode(sb);
    if (na != a) {
      apply_count_delta(a, -1);
      apply_count_delta(na, +1);
    }
    if (nb != b) {
      apply_count_delta(b, -1);
      apply_count_delta(nb, +1);
    }
  }

  // Diagonal fast path: every non-null pair has equal states, so the wait
  // until the next effective interaction is Geometric(W / n(n-1)) with
  // W = sum over active q of m_q (m_q - 1), and the colliding state is
  // drawn ∝ m_q (m_q - 1). Identical in distribution to stepping one
  // interaction at a time (compare SilentNStateFast).
  std::uint64_t step_diagonal() {
    const std::uint64_t w = diag_sampler_.total();
    if (w == 0) {  // silent forever
      last_deltas_.clear();
      return 0;
    }
    const double p = static_cast<double>(w) / ordered_pairs();
    const std::uint64_t wait = sample_geometric(rng_, p);
    interactions_ += wait;
    stats_.batched += wait - 1;
    ++stats_.effective;
    const std::uint32_t q = diag_sampler_.find(rng_.below(w));
    apply_interaction(q, q);
    return wait;
  }

  // --- Keyed-passive fast path ---------------------------------------------
  //
  // Ordered active pairs partition exactly into
  //   (1) restless initiator, any responder:        A (n - 1)
  //   (2) passive initiator, restless responder:    S A
  //   (3) both passive with the same key:           D = sum_k s_k (s_k - 1)
  // (check: n(n-1) - [passive pairs with distinct keys] = A(n-1) + SA + D).
  // The wait until the next active interaction is Geometric(W / n(n-1)) and
  // the active pair is drawn by case-splitting on the three weights; each
  // case samples its conditional distribution exactly.

  // The three-term active-weight partition, computed in one place so that
  // silent() and step_keyed() can never drift apart.
  struct KeyedWeights {
    std::uint64_t restless = 0;  // A
    std::uint64_t diag = 0;      // D = sum_k s_k (s_k - 1)
    std::uint64_t w1 = 0;        // A (n - 1)
    std::uint64_t w2 = 0;        // S A
    std::uint64_t total = 0;     // W = w1 + w2 + D
  };

  KeyedWeights keyed_weights() const {
    const std::uint64_t n = population_size();
    KeyedWeights kw;
    kw.restless = restless_sampler_.total();
    kw.diag = key_sampler_.total();
    kw.w1 = kw.restless * (n - 1);
    kw.w2 = (n - kw.restless) * kw.restless;
    kw.total = kw.w1 + kw.w2 + kw.diag;
    return kw;
  }

  std::uint64_t active_weight_keyed() const { return keyed_weights().total; }

  std::uint64_t step_keyed() {
    const std::uint64_t n = population_size();
    const KeyedWeights kw = keyed_weights();
    const std::uint64_t restless = kw.restless;
    const std::uint64_t d = kw.diag;
    const std::uint64_t w1 = kw.w1;
    const std::uint64_t w2 = kw.w2;
    const std::uint64_t w = kw.total;
    if (w == 0) {  // every pair is passive-distinct-key: silent forever
      last_deltas_.clear();
      return 0;
    }
    std::uint64_t wait = 1;
    if (w < n * (n - 1)) {
      const double p = static_cast<double>(w) / ordered_pairs();
      wait = sample_geometric(rng_, p);
    }
    interactions_ += wait;
    stats_.batched += wait - 1;
    ++stats_.effective;

    const std::uint64_t x = rng_.below(w);
    std::uint32_t a_code, b_code;
    if (x < w1) {
      // (1) restless initiator; responder uniform over the other n-1 agents
      // (same count vector with one agent in the initiator's state removed).
      a_code = restless_sampler_.find(rng_.below(restless));
      count_sampler_.add(a_code, -1);
      b_code = count_sampler_.find(rng_.below(n - 1));
      count_sampler_.add(a_code, +1);
    } else if (x < w1 + w2) {
      // (2) passive initiator by rejection against the full count vector
      // (P[passive] = S/n per try; this branch is drawn with probability
      // ∝ S, so the expected rejection work per step is O(1)); restless
      // responder directly.
      for (;;) {
        a_code = count_sampler_.find(rng_.below(n));
        if (protocol_.is_passive(protocol_.decode(a_code))) break;
      }
      b_code = restless_sampler_.find(rng_.below(restless));
    } else {
      // (3) a same-key passive pair: key ∝ s_k (s_k - 1), then the ordered
      // pair inside the key's fiber ∝ m_q (m_q' - [q = q']).
      const std::uint32_t k = key_sampler_.find(rng_.below(d));
      const std::vector<std::uint32_t> fiber = protocol_.passive_fiber(k);
      a_code = pick_in_fiber(fiber, rng_.below(key_counts_[k]),
                             /*exclude=*/fiber.size(), 0);
      b_code = pick_in_fiber(fiber, rng_.below(key_counts_[k] - 1),
                             /*exclude_pos=*/find_pos(fiber, a_code), 1);
    }
    apply_interaction(a_code, b_code);
    return wait;
  }

  static std::size_t find_pos(const std::vector<std::uint32_t>& fiber,
                              std::uint32_t code) {
    for (std::size_t i = 0; i < fiber.size(); ++i)
      if (fiber[i] == code) return i;
    return fiber.size();
  }

  // Samples a code from `fiber` with weight counts_[code], minus `discount`
  // on the entry at `exclude_pos` (used to remove the already-chosen
  // initiator agent from the responder draw).
  std::uint32_t pick_in_fiber(const std::vector<std::uint32_t>& fiber,
                              std::uint64_t target, std::size_t exclude_pos,
                              std::uint64_t discount) const {
    for (std::size_t i = 0; i < fiber.size(); ++i) {
      std::uint64_t weight = counts_[fiber[i]];
      if (i == exclude_pos) weight -= discount;
      if (target < weight) return fiber[i];
      target -= weight;
    }
    throw std::logic_error(
        "passive_fiber inconsistent with counts: fiber weight exhausted");
  }

  // General path: draw the ordered state pair exactly; when the protocol
  // can certify the pair null, batch the whole run of consecutive
  // identical draws (Geometric in the pair's own probability) and then
  // redraw conditioned on "not that pair again" by rejection.
  std::uint64_t step_general() {
    const std::uint64_t n = population_size();
    std::uint32_t a = count_sampler_.find(rng_.below(n));
    // Responder is uniform over the other n-1 agents: same count vector
    // with one agent in state a removed.
    count_sampler_.add(a, -1);
    std::uint32_t b = count_sampler_.find(rng_.below(n - 1));
    count_sampler_.add(a, +1);

    if constexpr (NullPairProtocol<P>) {
      const State sa = protocol_.decode(a);
      const State sb = protocol_.decode(b);
      if (protocol_.is_null_pair(sa, sb)) {
        // Probability of drawing this exact ordered pair again.
        const double pq = static_cast<double>(counts_[a]) *
                          static_cast<double>(counts_[b] - (a == b ? 1 : 0)) /
                          ordered_pairs();
        if (pq >= 1.0) {
          // (a, b) is the only drawable pair (all agents share one state)
          // and it is null: the configuration can never change again.
          // Signal silence exactly like the diagonal path does.
          last_deltas_.clear();
          return 0;
        }
        // Run of consecutive (a, b) draws, first included: Geometric in
        // the probability of breaking the run.
        std::uint64_t run = 1;
        if (pq > 0.0)
          run = sample_geometric(rng_, 1.0 - pq);
        interactions_ += run;
        stats_.batched += run;
        // The next draw is conditioned != (a, b); rejection is exact and
        // terminates fast because P[reject] = pq < 1.
        for (;;) {
          std::uint32_t a2 = count_sampler_.find(rng_.below(n));
          count_sampler_.add(a2, -1);
          std::uint32_t b2 = count_sampler_.find(rng_.below(n - 1));
          count_sampler_.add(a2, +1);
          if (a2 == a && b2 == b) continue;
          ++interactions_;
          ++stats_.effective;
          apply_interaction(a2, b2);
          return run + 1;
        }
      }
    }
    ++interactions_;
    ++stats_.effective;
    apply_interaction(a, b);
    return 1;
  }

  P protocol_;
  std::vector<std::uint64_t> counts_;
  WeightedSampler count_sampler_;  // weight m_q: scheduler state draws
  WeightedSampler diag_sampler_;   // weight m_q (m_q - 1) on active states
  std::vector<char> diag_active_;  // diagonal protocols only
  // Keyed-passive protocols only:
  WeightedSampler restless_sampler_;        // weight m_q on non-passive states
  WeightedSampler key_sampler_;             // weight s_k (s_k - 1) per key
  std::vector<std::uint64_t> key_counts_;   // s_k: passive agents per key
  Rng rng_;
  std::uint64_t interactions_ = 0;
  BatchStepStats stats_;
  std::vector<CountDelta> last_deltas_;
  [[no_unique_address]] Counters counters_{};
};

}  // namespace ppsim
