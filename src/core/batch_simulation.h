// Count-based batched simulation backend.
//
// For a protocol whose state space Q is finite and enumerable, a population
// configuration is fully described by the vector of state counts
// (m_q)_{q in Q} — the scheduler of Section 2 is anonymous, so agent
// identities carry no information. This backend keeps exactly that vector:
// O(|Q|) memory instead of the O(n) agent array, and each step samples the
// ordered (initiator, responder) *state pair* from the count distribution,
//   P[(a, b)] = m_a (m_b - [a = b]) / (n (n - 1)),
// which is precisely the pushforward of the uniform ordered-agent-pair
// scheduler. The simulated interaction-count process therefore has the same
// distribution as Simulation<P>'s, projected onto counts (validated in
// tests/batch_simulation_test.cpp).
//
// Batching. Protocols that expose a deterministic null-pair predicate
// (NullPairProtocol) let the backend skip runs of identical-outcome draws:
//  * If the protocol further declares that only equal-state pairs can be
//    non-null (DiagonalActiveProtocol — true for Silent-n-state-SSR, whose
//    transition fires only on rank collisions), the total non-null weight
//    W = sum_q active(q) m_q (m_q - 1) is maintained incrementally, the
//    wait until the next effective interaction is Geometric(W / n(n-1)),
//    and whole Theta(n^2)-step null stretches cost O(1). This generalizes
//    the hand-rolled SilentNStateFast accelerator to any diagonal protocol.
//  * Otherwise, when a drawn pair (a, b) is null, the run of consecutive
//    identical (a, b) draws is Geometric too; the backend samples its
//    length, accounts the whole run at once, and then redraws from the
//    exact conditional distribution (rejection against the just-finished
//    pair), which pays off whenever counts are concentrated on few states.
//
// Weighted state sampling uses a Fenwick (binary indexed) tree: O(log |Q|)
// per draw and per count update, so even |Q| = n = 10^6 state spaces
// (Silent-n-state-SSR) sample efficiently.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/rng.h"  // sample_geometric
#include "core/simulation.h"

namespace ppsim {

// A protocol whose finite state space can be enumerated: states are coded
// as integers in [0, num_states()), with encode/decode the bijection.
template <class P>
concept EnumerableProtocol =
    Protocol<P> && requires(const P p, const typename P::State& s,
                            std::uint32_t code) {
      { p.num_states() } -> std::convertible_to<std::uint32_t>;
      { p.encode(s) } -> std::convertible_to<std::uint32_t>;
      { p.decode(code) } -> std::same_as<typename P::State>;
    };

// Protocols that can tell, deterministically and without consuming
// randomness, whether interact(a, b, .) would leave (a, b) unchanged.
template <class P>
concept NullPairProtocol =
    requires(const P p, const typename P::State& a, const typename P::State& b) {
      { p.is_null_pair(a, b) } -> std::convertible_to<bool>;
    };

// Protocols asserting that every non-null ordered pair has equal states
// (all progress happens on the diagonal of Q x Q). Enables the exact
// geometric fast-forward between effective interactions.
template <class P>
concept DiagonalActiveProtocol =
    NullPairProtocol<P> && P::kActiveRequiresEqualStates;

// Fenwick tree over per-state weights, supporting O(log |Q|) point update
// and O(log |Q|) sampling of an index with probability weight/total.
class WeightedSampler {
 public:
  explicit WeightedSampler(std::uint32_t size) : tree_(size + 1, 0) {}

  // O(size) bulk construction from a full weight vector (replaces any
  // existing content) — point-adds would cost O(size log size).
  void build(const std::vector<std::uint64_t>& weights) {
    std::fill(tree_.begin(), tree_.end(), 0);
    for (std::uint32_t i = 1; i < tree_.size(); ++i) {
      tree_[i] += weights[i - 1];
      const std::uint32_t parent = i + (i & (~i + 1));
      if (parent < tree_.size()) tree_[parent] += tree_[i];
    }
  }

  void add(std::uint32_t index, std::int64_t delta) {
    for (std::uint32_t i = index + 1; i < tree_.size(); i += i & (~i + 1))
      tree_[i] += static_cast<std::uint64_t>(delta);
  }

  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (std::uint32_t i = static_cast<std::uint32_t>(tree_.size()) - 1; i > 0;
         i -= i & (~i + 1))
      sum += tree_[i];
    return sum;
  }

  // Returns the smallest index such that the prefix sum through it exceeds
  // `target` (target in [0, total())): samples index ∝ weight.
  std::uint32_t find(std::uint64_t target) const {
    std::uint32_t pos = 0;
    std::uint32_t mask = 1;
    while ((mask << 1) < tree_.size()) mask <<= 1;
    for (; mask > 0; mask >>= 1) {
      const std::uint32_t next = pos + mask;
      if (next < tree_.size() && tree_[next] <= target) {
        target -= tree_[next];
        pos = next;
      }
    }
    return pos;  // 0-based index
  }

 private:
  std::vector<std::uint64_t> tree_;  // 1-based internal indexing
};

struct BatchStepStats {
  std::uint64_t effective = 0;  // interactions simulated individually
  std::uint64_t batched = 0;    // null interactions accounted in bulk
};

template <EnumerableProtocol P>
class BatchSimulation {
 public:
  using State = typename P::State;

  // Member-initialization order (declaration order) makes counts_of safe
  // here: protocol_ is fully constructed before counts_ is initialized.
  BatchSimulation(P protocol, const std::vector<State>& initial,
                  std::uint64_t seed)
      : protocol_(std::move(protocol)),
        counts_(counts_of(protocol_, initial)),
        count_sampler_(protocol_.num_states()),
        diag_sampler_(protocol_.num_states()),
        rng_(seed) {
    init_samplers();
  }

  BatchSimulation(P protocol, std::vector<std::uint64_t> counts,
                  std::uint64_t seed)
      : protocol_(std::move(protocol)),
        counts_(std::move(counts)),
        count_sampler_(protocol_.num_states()),
        diag_sampler_(protocol_.num_states()),
        rng_(seed) {
    init_samplers();
  }

  std::uint32_t population_size() const {
    return protocol_.population_size();
  }
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  const P& protocol() const { return protocol_; }
  P& protocol() { return protocol_; }
  Rng& rng() { return rng_; }

  std::uint64_t interactions() const { return interactions_; }
  double parallel_time() const {
    return static_cast<double>(interactions_) /
           static_cast<double>(population_size());
  }
  const BatchStepStats& stats() const { return stats_; }

  // For diagonal protocols: true iff no future interaction can change the
  // configuration (the configuration is silent).
  bool silent() const
    requires DiagonalActiveProtocol<P>
  {
    return diag_sampler_.total() == 0;
  }

  // Advances the simulation by at least one interaction (a whole batched
  // null run counts as its true number of interactions). Returns the number
  // of interactions consumed, 0 iff the configuration is provably stuck:
  // zero active weight (diagonal protocols), or every agent in one null
  // self-pairing state (null-aware general protocols).
  std::uint64_t step() {
    if constexpr (DiagonalActiveProtocol<P>) {
      return step_diagonal();
    } else {
      return step_general();
    }
  }

  // Runs until at least `count` interactions have elapsed (a final batch
  // may overshoot; the overshoot is real simulated time, not error).
  void run(std::uint64_t count) {
    const std::uint64_t target = interactions_ + count;
    while (interactions_ < target)
      if (step() == 0) break;  // silent: nothing will ever change again
  }

  // Runs until done(*this) is true, checking after every configuration
  // change (null runs cannot flip a configuration predicate). Returns true
  // iff the predicate fired before `max_interactions`.
  template <class Done>
  bool run_until(Done&& done, std::uint64_t max_interactions) {
    if (done(*this)) return true;
    while (interactions_ < max_interactions) {
      if (step() == 0) return done(*this);
      if (done(*this)) return true;
    }
    return false;
  }

 private:
  void init_samplers() {
    const std::uint32_t q = protocol_.num_states();
    if (counts_.size() != q)
      throw std::invalid_argument("counts size != num_states");
    std::uint64_t total = 0;
    for (std::uint32_t s = 0; s < q; ++s) total += counts_[s];
    if (total != protocol_.population_size())
      throw std::invalid_argument("counts must sum to population size");
    count_sampler_.build(counts_);
    if constexpr (DiagonalActiveProtocol<P>) {
      diag_active_.resize(q);
      std::vector<std::uint64_t> diag(q, 0);
      for (std::uint32_t s = 0; s < q; ++s) {
        const State st = protocol_.decode(s);
        diag_active_[s] = !protocol_.is_null_pair(st, st);
        if (diag_active_[s]) diag[s] = diag_weight(s);
      }
      diag_sampler_.build(diag);
    }
  }

  static std::vector<std::uint64_t> counts_of(const P& protocol,
                                              const std::vector<State>& states) {
    if (states.size() != protocol.population_size())
      throw std::invalid_argument(
          "initial configuration size != population size");
    std::vector<std::uint64_t> counts(protocol.num_states(), 0);
    for (const State& s : states) {
      const std::uint32_t code = protocol.encode(s);
      if (code >= counts.size())
        throw std::invalid_argument("encode() out of range");
      ++counts[code];
    }
    return counts;
  }

  std::uint64_t diag_weight(std::uint32_t s) const {
    return counts_[s] * (counts_[s] > 0 ? counts_[s] - 1 : 0);
  }

  double ordered_pairs() const {
    const double n = static_cast<double>(population_size());
    return n * (n - 1.0);
  }

  void apply_count_delta(std::uint32_t s, std::int64_t delta) {
    if constexpr (DiagonalActiveProtocol<P>) {
      if (diag_active_[s])
        diag_sampler_.add(s, -static_cast<std::int64_t>(diag_weight(s)));
    }
    counts_[s] = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(counts_[s]) + delta);
    count_sampler_.add(s, delta);
    if constexpr (DiagonalActiveProtocol<P>) {
      if (diag_active_[s])
        diag_sampler_.add(s, static_cast<std::int64_t>(diag_weight(s)));
    }
  }

  // Applies interact() to one (a, b) state pair drawn by the scheduler and
  // folds the result back into the counts.
  void apply_interaction(std::uint32_t a, std::uint32_t b) {
    State sa = protocol_.decode(a);
    State sb = protocol_.decode(b);
    protocol_.interact(sa, sb, rng_);
    const std::uint32_t na = protocol_.encode(sa);
    const std::uint32_t nb = protocol_.encode(sb);
    if (na != a) {
      apply_count_delta(a, -1);
      apply_count_delta(na, +1);
    }
    if (nb != b) {
      apply_count_delta(b, -1);
      apply_count_delta(nb, +1);
    }
  }

  // Diagonal fast path: every non-null pair has equal states, so the wait
  // until the next effective interaction is Geometric(W / n(n-1)) with
  // W = sum over active q of m_q (m_q - 1), and the colliding state is
  // drawn ∝ m_q (m_q - 1). Identical in distribution to stepping one
  // interaction at a time (compare SilentNStateFast).
  std::uint64_t step_diagonal() {
    const std::uint64_t w = diag_sampler_.total();
    if (w == 0) return 0;  // silent forever
    const double p = static_cast<double>(w) / ordered_pairs();
    const std::uint64_t wait = sample_geometric(rng_, p);
    interactions_ += wait;
    stats_.batched += wait - 1;
    ++stats_.effective;
    const std::uint32_t q = diag_sampler_.find(rng_.below(w));
    apply_interaction(q, q);
    return wait;
  }

  // General path: draw the ordered state pair exactly; when the protocol
  // can certify the pair null, batch the whole run of consecutive
  // identical draws (Geometric in the pair's own probability) and then
  // redraw conditioned on "not that pair again" by rejection.
  std::uint64_t step_general() {
    const std::uint64_t n = population_size();
    std::uint32_t a = count_sampler_.find(rng_.below(n));
    // Responder is uniform over the other n-1 agents: same count vector
    // with one agent in state a removed.
    count_sampler_.add(a, -1);
    std::uint32_t b = count_sampler_.find(rng_.below(n - 1));
    count_sampler_.add(a, +1);

    if constexpr (NullPairProtocol<P>) {
      const State sa = protocol_.decode(a);
      const State sb = protocol_.decode(b);
      if (protocol_.is_null_pair(sa, sb)) {
        // Probability of drawing this exact ordered pair again.
        const double pq = static_cast<double>(counts_[a]) *
                          static_cast<double>(counts_[b] - (a == b ? 1 : 0)) /
                          ordered_pairs();
        if (pq >= 1.0) {
          // (a, b) is the only drawable pair (all agents share one state)
          // and it is null: the configuration can never change again.
          // Signal silence exactly like the diagonal path does.
          return 0;
        }
        // Run of consecutive (a, b) draws, first included: Geometric in
        // the probability of breaking the run.
        std::uint64_t run = 1;
        if (pq > 0.0)
          run = sample_geometric(rng_, 1.0 - pq);
        interactions_ += run;
        stats_.batched += run;
        // The next draw is conditioned != (a, b); rejection is exact and
        // terminates fast because P[reject] = pq < 1.
        for (;;) {
          std::uint32_t a2 = count_sampler_.find(rng_.below(n));
          count_sampler_.add(a2, -1);
          std::uint32_t b2 = count_sampler_.find(rng_.below(n - 1));
          count_sampler_.add(a2, +1);
          if (a2 == a && b2 == b) continue;
          ++interactions_;
          ++stats_.effective;
          apply_interaction(a2, b2);
          return run + 1;
        }
      }
    }
    ++interactions_;
    ++stats_.effective;
    apply_interaction(a, b);
    return 1;
  }

  P protocol_;
  std::vector<std::uint64_t> counts_;
  WeightedSampler count_sampler_;  // weight m_q: scheduler state draws
  WeightedSampler diag_sampler_;   // weight m_q (m_q - 1) on active states
  std::vector<char> diag_active_;  // diagonal protocols only
  Rng rng_;
  std::uint64_t interactions_ = 0;
  BatchStepStats stats_;
};

}  // namespace ppsim
