// Count-based batched simulation backend.
//
// For a protocol whose state space Q is finite and enumerable, a population
// configuration is fully described by the vector of state counts
// (m_q)_{q in Q} — the scheduler of Section 2 is anonymous, so agent
// identities carry no information. This backend keeps exactly that vector:
// O(|Q|) memory instead of the O(n) agent array, and every step simulates
// draws of the ordered (initiator, responder) *state pair* from the count
// distribution,
//   P[(a, b)] = m_a (m_b - [a = b]) / (n (n - 1)),
// which is precisely the pushforward of the uniform ordered-agent-pair
// scheduler. The simulated interaction-count process therefore has the same
// distribution as Simulation<P>'s, projected onto counts (validated in
// tests/batch_simulation_test.cpp and tests/engine_equivalence_test.cpp).
//
// The engine is assembled from the sampling kernels in
// core/batch_kernels.h and advances with a runtime-selectable strategy
// (core/engine.h's BatchStrategy):
//
//  * kGeometricSkip — skip runs of provably-null draws in one geometric
//    jump, then simulate the next candidate interaction individually.
//    Which jumps are available depends on the protocol's declared
//    structure, checked in order:
//      - DiagonalActiveProtocol (non-null pairs have equal states, e.g.
//        Silent-n-state-SSR): W = sum_q active(q) m_q (m_q - 1), whole
//        Theta(n^2)-step null stretches cost O(1);
//      - KeyedPassiveProtocol (null iff both passive with distinct keys,
//        e.g. Optimal-Silent-SSR with passive = Settled, key = rank):
//        W = A(n-1) + SA + sum_k s_k (s_k - 1), maintained incrementally,
//        with exact 3-case conditional pair sampling;
//      - UnkeyedPassiveProtocol (both passive => null, no key, e.g.
//        ResetProcess with passive = computing, one-way epidemics with
//        passive = infected): W = A(n-1) + SA with 2-case sampling;
//      - otherwise (NullPairProtocol) runs of one identical null pair are
//        geometric in that pair's own probability.
//  * kMultinomial — the ppsim-style batch step (Berenbrink et al.; Doty &
//    Severson's ppsim): simulate a whole collision-free prefix of
//    ~sqrt(pi n / 8) interactions at once by sampling its sender/receiver
//    state multisets hypergeometrically from the counts and applying
//    transitions per ordered (s1, s2) pair in bulk through a cached delta
//    table, then replay the one colliding interaction exactly. Optimal in
//    timer-heavy regimes where nearly every interaction is effective and
//    the geometric skip degenerates to one-by-one simulation.
//  * kAuto — delegate per step to core/engine.h's StrategyController: the
//    exact active-weight density W / n(n-1) decides skip vs batch, and the
//    occupied pool's segment count guards batch amortization (protocols
//    with only the generic null-pair predicate stay on the geometric path;
//    protocols with no null knowledge always batch multinomially). Every
//    step's resolved arm is recorded in strategy_trace().
//
// While the multinomial kernel drives the run it never touches the
// geometric paths' Fenwick trees (the full-|Q| count tree is hundreds of MB
// for Optimal-Silent-SSR at n >= 10^6, so per-delta updates there would
// dominate); the engine instead keeps the active-weight *scalars* current,
// records which codes diverged, and replays them into the trees before the
// next geometric-skip step.
//
// BatchSimulation<P> satisfies the Engine, CountEngine and StrategyEngine
// concepts of core/engine.h; protocol event counters live engine-side
// (counters()).
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/batch_kernels.h"
#include "core/engine.h"
#include "core/faults.h"
#include "core/protocol.h"
#include "core/rng.h"  // sample_geometric

namespace ppsim {

struct BatchStepStats {
  std::uint64_t effective = 0;  // interactions simulated individually
  std::uint64_t batched = 0;    // interactions accounted in bulk
  std::uint64_t multinomial_batches = 0;  // multinomial batch steps taken
};

template <EnumerableProtocol P>
class BatchSimulation {
 public:
  using State = typename P::State;
  using Counters = ProtocolCounters<P>;

  // Member-initialization order (declaration order) makes counts_of safe
  // here: protocol_ is fully constructed before counts_ is initialized.
  BatchSimulation(P protocol, const std::vector<State>& initial,
                  std::uint64_t seed,
                  BatchStrategy strategy = BatchStrategy::kGeometricSkip)
      : protocol_(std::move(protocol)),
        counts_(counts_of(protocol_, initial)),
        rng_(seed),
        strategy_(strategy) {
    init_samplers();
  }

  BatchSimulation(P protocol, std::vector<std::uint64_t> counts,
                  std::uint64_t seed,
                  BatchStrategy strategy = BatchStrategy::kGeometricSkip)
      : protocol_(std::move(protocol)),
        counts_(std::move(counts)),
        rng_(seed),
        strategy_(strategy) {
    init_samplers();
  }

  std::uint32_t population_size() const {
    return protocol_.population_size();
  }
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  // Engine-contract name for the same snapshot.
  const std::vector<std::uint64_t>& state_counts() const { return counts_; }
  const P& protocol() const { return protocol_; }
  P& protocol() { return protocol_; }
  Rng& rng() { return rng_; }

  // Engine-side observer: per-interaction events reported by observable
  // protocols (empty for plain protocols).
  const Counters& counters() const { return counters_; }

  std::uint64_t interactions() const { return interactions_; }
  double parallel_time() const {
    return static_cast<double>(interactions_) /
           static_cast<double>(population_size());
  }
  const BatchStepStats& stats() const { return stats_; }

  // Count changes applied by the most recent effective step (empty right
  // after construction and after a step() that returned 0). A multinomial
  // step reports the whole batch's net change per code.
  const std::vector<CountDelta>& last_deltas() const { return last_deltas_; }

  BatchStrategy strategy() const { return strategy_; }
  void set_strategy(BatchStrategy s) {
    reject_sharded(s);
    strategy_ = s;
  }

  // Fault injection (core/faults.h), compiled exactly into every count
  // path. Call before the first step. drop thins the changeful-slot
  // probability multiplicatively (a dropped pair is a null), oneway is
  // drawn per delivered interaction, and churn is materialized as a
  // geometric crash countdown over interaction slots: geometric waits and
  // multinomial batches are truncated at the countdown, which is exact by
  // memorylessness. An all-zero spec is a no-op: the engine consumes
  // exactly the fault-free randomness stream, bit for bit.
  void set_faults(const FaultSpec& faults) {
    faults.validate();
    constexpr bool structured = DiagonalActiveProtocol<P> ||
                                KeyedPassiveProtocol<P> ||
                                UnkeyedPassiveProtocol<P>;
    if (faults.active() && !structured)
      throw std::invalid_argument(
          "count-engine fault injection requires a protocol with declared "
          "null structure (diagonal / keyed / unkeyed passive); use "
          "engine=array");
    faults_ = faults;
    faults_active_ = faults.active();
    multi_kernel_.set_faults(faults_active_ ? &faults_ : nullptr);
    crash_q_ = 0.0;
    crash_countdown_ = 0;
    if (faults.churn > 0.0) {
      if constexpr (!ChurnableProtocol<P>) {
        throw std::invalid_argument(
            "fault.churn needs a protocol with a churn_state()");
      } else {
        crash_q_ = faults.crash_probability(population_size());
        churn_code_ = protocol_.encode(protocol_.churn_state());
        crash_countdown_ = sample_geometric(rng_, crash_q_);
      }
    }
  }
  const FaultSpec& faults() const { return faults_; }

  // The strategy the next step will actually run: kAuto delegates to the
  // StrategyController with the measured per-round inputs (population,
  // exact active weight, occupied-segment count). Protocols with only the
  // generic null-pair predicate stay on the geometric path; protocols with
  // no null knowledge always batch multinomially. When the occupied pool
  // was never built (small populations under kAuto — see init_samplers),
  // the controller has no segment signal and the engine stays on the
  // cache-hot geometric path, which is what wins there anyway.
  BatchStrategy resolved_strategy() const {
    if (strategy_ != BatchStrategy::kAuto) return strategy_;
    if constexpr (DiagonalActiveProtocol<P> || KeyedPassiveProtocol<P> ||
                  UnkeyedPassiveProtocol<P>) {
      if (!multi_kernel_.built()) return BatchStrategy::kGeometricSkip;
      return StrategyController::step_strategy(
          population_size(), active_weight(),
          multi_kernel_.pool().segment_count());
    } else if constexpr (NullPairProtocol<P>) {
      return BatchStrategy::kGeometricSkip;
    } else {
      return BatchStrategy::kMultinomial;
    }
  }

  // The controller's decision trace: per-arm step and interaction totals
  // for every step this engine has taken (single-arm runs under a pinned
  // strategy; mixed under kAuto).
  const StrategyTrace& strategy_trace() const { return trace_; }

  // For diagonal and passive-structured protocols: true iff no future
  // interaction can change the configuration (the configuration is silent).
  bool silent() const
    requires DiagonalActiveProtocol<P> || KeyedPassiveProtocol<P> ||
             UnkeyedPassiveProtocol<P>
  {
    return active_weight() == 0;
  }

  // Advances the simulation by at least one interaction (a whole batched
  // stretch counts as its true number of interactions). Returns the number
  // of interactions consumed, 0 iff the configuration is provably stuck:
  // zero active weight (structured protocols), or every agent in one null
  // self-pairing state (null-aware general protocols).
  std::uint64_t step() {
    if (resolved_strategy() == BatchStrategy::kMultinomial) {
      const std::uint64_t consumed = step_multinomial();
      if (consumed != 0) trace_.note(StrategyArm::kMultinomial, consumed);
      return consumed;
    }
    resync_fenwicks();
    std::uint64_t consumed;
    if constexpr (DiagonalActiveProtocol<P>) {
      consumed = step_diagonal();
    } else if constexpr (KeyedPassiveProtocol<P>) {
      consumed = step_keyed();
    } else if constexpr (UnkeyedPassiveProtocol<P>) {
      consumed = step_unkeyed();
    } else {
      consumed = step_general();
    }
    if (consumed != 0) trace_.note(StrategyArm::kGeometricSkip, consumed);
    return consumed;
  }

  // Runs until at least `count` interactions have elapsed (a final batch
  // may overshoot; the overshoot is real simulated time, not error).
  void run(std::uint64_t count) {
    const std::uint64_t target = interactions_ + count;
    while (interactions_ < target)
      if (step() == 0) break;  // silent: nothing will ever change again
  }

  // Runs until done(*this) is true, checking after every configuration
  // change (null runs cannot flip a configuration predicate; a multinomial
  // batch is checked at its end). Returns true iff the predicate fired
  // before `max_interactions`.
  template <class Done>
  bool run_until(Done&& done, std::uint64_t max_interactions) {
    if (done(*this)) return true;
    while (interactions_ < max_interactions) {
      if (step() == 0) return done(*this);
      if (done(*this)) return true;
    }
    return false;
  }

 private:
  // kSharded and kTauLeap are whole-engine choices, not per-step paths:
  // intra-run parallelism lives in ShardedSimulation
  // (core/sharded_simulation.h) and the approximate macro-leap tier in
  // TauLeapSimulation (core/tau_leap_simulation.h); each owns machinery
  // this exact single-threaded engine has no counterpart for.
  static void reject_sharded(BatchStrategy s) {
    if (s == BatchStrategy::kSharded)
      throw std::invalid_argument(
          "strategy 'sharded' runs on ShardedSimulation "
          "(core/sharded_simulation.h), not BatchSimulation");
    if (s == BatchStrategy::kTauLeap)
      throw std::invalid_argument(
          "strategy 'tau' runs on TauLeapSimulation "
          "(core/tau_leap_simulation.h), not BatchSimulation");
  }

  void init_samplers() {
    reject_sharded(strategy_);
    const std::uint32_t q = protocol_.num_states();
    if (counts_.size() != q)
      throw std::invalid_argument("counts size != num_states");
    std::uint64_t total = 0;
    for (std::uint32_t s = 0; s < q; ++s) total += counts_[s];
    if (total != protocol_.population_size())
      throw std::invalid_argument("counts must sum to population size");
    count_sampler_.build(counts_);
    if constexpr (DiagonalActiveProtocol<P>) {
      diag_kernel_.build(protocol_, counts_);
    } else if constexpr (KeyedPassiveProtocol<P>) {
      keyed_kernel_.build(protocol_, counts_);
    } else if constexpr (UnkeyedPassiveProtocol<P>) {
      unkeyed_kernel_.build(protocol_, counts_);
    }
    // The occupied pool costs one O(|Q|) scan to build and O(log segments)
    // per count change to maintain; pay that at construction (like the
    // Fenwick builds above) only when some step can actually resolve to
    // the multinomial batch. Under kAuto with a structured protocol the
    // pool doubles as the controller's segment-count signal, so it is
    // built above the controller's pool floor and skipped below it (where
    // the cache-hot geometric path wins regardless and resolved_strategy
    // treats the missing pool as "skip"). An engine pinned to the
    // geometric path never batches and skips the pool entirely. (A later
    // set_strategy() is still safe: run_batch builds lazily.)
    constexpr bool structured = DiagonalActiveProtocol<P> ||
                                KeyedPassiveProtocol<P> ||
                                UnkeyedPassiveProtocol<P>;
    constexpr bool auto_can_batch = structured || !NullPairProtocol<P>;
    const bool may_batch =
        strategy_ == BatchStrategy::kMultinomial ||
        (strategy_ == BatchStrategy::kAuto && auto_can_batch &&
         (!structured ||
          population_size() >= StrategyController::kAutoPoolMinPopulation));
    if (may_batch) multi_kernel_.ensure_built(counts_);
  }

  static std::vector<std::uint64_t> counts_of(const P& protocol,
                                              const std::vector<State>& states) {
    if (states.size() != protocol.population_size())
      throw std::invalid_argument(
          "initial configuration size != population size");
    std::vector<std::uint64_t> counts(protocol.num_states(), 0);
    for (const State& s : states) {
      const std::uint32_t code = protocol.encode(s);
      if (code >= counts.size())
        throw std::invalid_argument("encode() out of range");
      ++counts[code];
    }
    return counts;
  }

  double ordered_pairs() const {
    const double n = static_cast<double>(population_size());
    return n * (n - 1.0);
  }

  std::uint64_t active_weight() const {
    if constexpr (DiagonalActiveProtocol<P>) {
      return diag_kernel_.total();
    } else if constexpr (KeyedPassiveProtocol<P>) {
      return keyed_kernel_.weights(population_size()).total;
    } else if constexpr (UnkeyedPassiveProtocol<P>) {
      return unkeyed_kernel_.weights(population_size()).total;
    } else {
      return 0;  // unreachable: callers are constrained to structured P
    }
  }

  // Eager count change: counts, the full-|Q| count tree, the structure
  // kernel's trees and scalars, and the multinomial pool all move together.
  // Used by every individually-simulated interaction.
  void apply_count_delta(std::uint32_t s, std::int64_t delta) {
    const std::uint64_t old_count = counts_[s];
    counts_[s] = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(old_count) + delta);
    count_sampler_.add(s, delta);
    if constexpr (DiagonalActiveProtocol<P>) {
      diag_kernel_.on_count_change(s, old_count, counts_[s], /*lazy=*/false);
    } else if constexpr (KeyedPassiveProtocol<P>) {
      keyed_kernel_.on_count_change(protocol_, s, delta, /*lazy=*/false);
    } else if constexpr (UnkeyedPassiveProtocol<P>) {
      unkeyed_kernel_.on_count_change(protocol_, s, delta, /*lazy=*/false);
    }
    multi_kernel_.on_external_change(s, delta);
    last_deltas_.push_back(CountDelta{s, static_cast<std::int32_t>(delta)});
  }

  // Lazy count change: the multinomial kernel already updated counts_ and
  // its own pool; here the active-weight scalars are kept current and the
  // Fenwick divergence is recorded for resync_fenwicks().
  void note_lazy_delta(std::uint32_t code, std::int32_t delta) {
    fenwicks_dirty_ = true;
    const std::uint64_t now = counts_[code];
    const std::uint64_t old_count = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(now) - delta);
    dirty_codes_.find_or_insert(code, old_count);  // first old value wins
    if constexpr (DiagonalActiveProtocol<P>) {
      diag_kernel_.on_count_change(code, old_count, now, /*lazy=*/true);
    } else if constexpr (KeyedPassiveProtocol<P>) {
      keyed_kernel_.on_count_change(protocol_, code, delta, /*lazy=*/true);
    } else if constexpr (UnkeyedPassiveProtocol<P>) {
      unkeyed_kernel_.on_count_change(protocol_, code, delta, /*lazy=*/true);
    }
  }

  void resync_fenwicks() {
    if (!fenwicks_dirty_) return;
    for (std::uint32_t slot : dirty_codes_.entry_slots()) {
      const auto code = static_cast<std::uint32_t>(dirty_codes_.key_at(slot));
      const std::uint64_t old_count = dirty_codes_.value_at(slot);
      const std::uint64_t now = counts_[code];
      const std::int64_t d = static_cast<std::int64_t>(now) -
                             static_cast<std::int64_t>(old_count);
      if (d != 0) count_sampler_.add(code, d);
      if constexpr (DiagonalActiveProtocol<P>) {
        diag_kernel_.resync_code(code, old_count, now);
      } else if constexpr (KeyedPassiveProtocol<P>) {
        keyed_kernel_.resync_code(protocol_, code, old_count, now);
      } else if constexpr (UnkeyedPassiveProtocol<P>) {
        unkeyed_kernel_.resync_code(protocol_, code, old_count, now);
      }
    }
    if constexpr (KeyedPassiveProtocol<P>) keyed_kernel_.resync_keys();
    dirty_codes_.clear();
    fenwicks_dirty_ = false;
  }

  // Applies interact() to one (a, b) state pair drawn by the scheduler and
  // folds the result back into the counts. Under fault injection the
  // one-way draw happens here (drop is folded into the wait upstream): the
  // transition runs in full — counters included, per the FaultSpec
  // convention — but the responder keeps its old state.
  void apply_interaction(std::uint32_t a, std::uint32_t b) {
    last_deltas_.clear();
    const bool one_way = faults_active_ && faults_.oneway > 0.0 &&
                         rng_.unit() < faults_.oneway;
    State sa = protocol_.decode(a);
    State sb = protocol_.decode(b);
    invoke_interact(protocol_, sa, sb, rng_, counters_);
    const std::uint32_t na = protocol_.encode(sa);
    const std::uint32_t nb = one_way ? b : protocol_.encode(sb);
    if (na != a) {
      apply_count_delta(a, -1);
      apply_count_delta(na, +1);
    }
    if (nb != b) {
      apply_count_delta(b, -1);
      apply_count_delta(nb, +1);
    }
  }

  // --- Multinomial batch step ----------------------------------------------

  std::uint64_t step_multinomial() {
    const bool churn_on = crash_q_ > 0.0;
    if constexpr (DiagonalActiveProtocol<P> || KeyedPassiveProtocol<P> ||
                  UnkeyedPassiveProtocol<P>) {
      if (active_weight() == 0 || (faults_active_ && faults_.drop >= 1.0)) {
        // Silent (or every interaction dropped): only churn can act.
        last_deltas_.clear();
        if (!churn_on) return 0;
        return crash_fast_forward();
      }
    } else if constexpr (NullPairProtocol<P>) {
      // The only stuck configuration a structureless protocol can certify:
      // every agent in one state whose self-pairing is null.
      multi_kernel_.ensure_built(counts_);
      std::uint32_t only;
      if (multi_kernel_.single_occupied_code(only)) {
        const State s = protocol_.decode(only);
        if (protocol_.is_null_pair(s, s)) {
          last_deltas_.clear();
          return 0;
        }
      }
    }
    last_deltas_.clear();
    // With churn on, the batch is capped at the crash countdown: the crash
    // must land at its exact slot, and it changes the counts the next
    // batch's prefix law is computed from.
    const std::uint64_t consumed = multi_kernel_.run_batch(
        protocol_, counts_, rng_, counters_, last_deltas_,
        churn_on ? crash_countdown_ : 0);
    for (const CountDelta& d : last_deltas_) note_lazy_delta(d.code, d.delta);
    interactions_ += consumed;
    stats_.batched += consumed - 1;
    ++stats_.effective;
    ++stats_.multinomial_batches;
    if (churn_on) {
      crash_countdown_ -= consumed;
      maybe_crash_after_slot();
    }
    return consumed;
  }

  // --- Churn ---------------------------------------------------------------

  // End-of-slot crash: reset one uniformly random agent to the protocol's
  // boot state. The eager count update requires clean Fenwick trees (an
  // eager delta on a lazily-dirty code would be double-counted at the next
  // resync), and it appends to last_deltas_ so rank trackers observing the
  // count stream see churn like any other transition.
  void crash_uniform_agent() {
    if constexpr (ChurnableProtocol<P>) {
      resync_fenwicks();
      const std::uint32_t victim =
          count_sampler_.find(rng_.below(population_size()));
      if (victim != churn_code_) {
        apply_count_delta(victim, -1);
        apply_count_delta(churn_code_, +1);
      }
    }
  }

  void maybe_crash_after_slot() {
    if (crash_q_ > 0.0 && crash_countdown_ == 0) {
      crash_uniform_agent();
      crash_countdown_ = sample_geometric(rng_, crash_q_);
    }
  }

  // No changeful interaction can precede the next crash: consume the
  // countdown's null slots, crash at the countdown's own slot, redraw.
  // Always consumes >= 1 slot, so a churning engine never reports stuck.
  std::uint64_t crash_fast_forward() {
    last_deltas_.clear();
    const std::uint64_t consumed = crash_countdown_;
    interactions_ += consumed;
    stats_.batched += consumed;
    crash_countdown_ = 0;
    maybe_crash_after_slot();
    return consumed;
  }

  // --- Geometric-skip steps ------------------------------------------------

  // Shared geometric-skip core: wait Geometric(p_eff) until the next
  // changeful slot, where p_eff = (w / n(n-1)) * (1 - drop). Dropping is
  // uniform thinning, so it scales the changeful-slot rate without
  // disturbing the conditional active-pair distribution — the sampler
  // callback is fault-agnostic. With churn on, a wait overshooting the
  // crash countdown is cut at the crash (exact by memorylessness: the
  // crash changes the active weight, and the residual wait is recomputed
  // from the fresh counts on the next step).
  //
  // Fault-free bit-identity: sample_geometric returns 1 without touching
  // the rng when p >= 1, so calling it unconditionally reproduces the old
  // `wait = 1` saturated-weight shortcut of the keyed/unkeyed paths
  // exactly.
  template <class SampleApply>
  std::uint64_t geometric_step(std::uint64_t w, SampleApply&& sample_apply) {
    const bool churn_on = crash_q_ > 0.0;
    double p = static_cast<double>(w) / ordered_pairs();
    if (faults_active_) p *= 1.0 - faults_.drop;
    if (w == 0 || p <= 0.0) {  // silent (or drop == 1): only churn can act
      last_deltas_.clear();
      if (!churn_on) return 0;  // silent forever
      return crash_fast_forward();
    }
    const std::uint64_t wait = sample_geometric(rng_, p);
    if (churn_on && wait > crash_countdown_) return crash_fast_forward();
    interactions_ += wait;
    stats_.batched += wait - 1;
    ++stats_.effective;
    if (churn_on) crash_countdown_ -= wait;
    sample_apply();
    maybe_crash_after_slot();
    return wait;
  }

  // Diagonal fast path: every non-null pair has equal states, so the wait
  // until the next effective interaction is Geometric(W / n(n-1)) with
  // W = sum over active q of m_q (m_q - 1), and the colliding state is
  // drawn ∝ m_q (m_q - 1). Identical in distribution to stepping one
  // interaction at a time (compare SilentNStateFast).
  std::uint64_t step_diagonal() {
    return geometric_step(diag_kernel_.total(), [&] {
      const std::uint32_t q = diag_kernel_.sample(rng_);
      apply_interaction(q, q);
    });
  }

  // Keyed-passive fast path: the wait until the next active interaction is
  // Geometric(W / n(n-1)) and the active pair is drawn by case-splitting on
  // the kernel's three-term weight partition (see batch_kernels.h).
  std::uint64_t step_keyed() {
    const std::uint64_t n = population_size();
    const auto kw = keyed_kernel_.weights(n);
    return geometric_step(kw.total, [&] {
      const auto [a, b] = keyed_kernel_.sample_pair(rng_, protocol_,
                                                    count_sampler_, counts_,
                                                    n, kw);
      apply_interaction(a, b);
    });
  }

  // Unkeyed-passive fast path: both-passive pairs are null by the declared
  // structure, so candidate pairs (at least one restless agent) arrive at
  // rate W / n(n-1) and are simulated individually (they may still turn out
  // null — that costs one simulated interaction, not a missed skip).
  std::uint64_t step_unkeyed() {
    const std::uint64_t n = population_size();
    const auto kw = unkeyed_kernel_.weights(n);
    return geometric_step(kw.total, [&] {
      const auto [a, b] = unkeyed_kernel_.sample_pair(rng_, protocol_,
                                                      count_sampler_, n, kw);
      apply_interaction(a, b);
    });
  }

  // General path: draw the ordered state pair exactly; when the protocol
  // can certify the pair null, batch the whole run of consecutive
  // identical draws (Geometric in the pair's own probability) and then
  // redraw conditioned on "not that pair again" by rejection.
  std::uint64_t step_general() {
    const std::uint64_t n = population_size();
    const auto [a, b] = sample_ordered_state_pair(rng_, count_sampler_, n);

    if constexpr (NullPairProtocol<P>) {
      const State sa = protocol_.decode(a);
      const State sb = protocol_.decode(b);
      if (protocol_.is_null_pair(sa, sb)) {
        // Probability of drawing this exact ordered pair again.
        const double pq = static_cast<double>(counts_[a]) *
                          static_cast<double>(counts_[b] - (a == b ? 1 : 0)) /
                          ordered_pairs();
        if (pq >= 1.0) {
          // (a, b) is the only drawable pair (all agents share one state)
          // and it is null: the configuration can never change again.
          // Signal silence exactly like the diagonal path does.
          last_deltas_.clear();
          return 0;
        }
        // Run of consecutive (a, b) draws, first included: Geometric in
        // the probability of breaking the run.
        std::uint64_t run = 1;
        if (pq > 0.0)
          run = sample_geometric(rng_, 1.0 - pq);
        interactions_ += run;
        stats_.batched += run;
        // The next draw is conditioned != (a, b); rejection is exact and
        // terminates fast because P[reject] = pq < 1.
        for (;;) {
          const auto [a2, b2] =
              sample_ordered_state_pair(rng_, count_sampler_, n);
          if (a2 == a && b2 == b) continue;
          ++interactions_;
          ++stats_.effective;
          apply_interaction(a2, b2);
          return run + 1;
        }
      }
    }
    ++interactions_;
    ++stats_.effective;
    apply_interaction(a, b);
    return 1;
  }

  P protocol_;
  std::vector<std::uint64_t> counts_;
  WeightedSampler count_sampler_;           // weight m_q: scheduler draws
  DiagonalKernel<P> diag_kernel_;           // diagonal protocols only
  KeyedPassiveKernel<P> keyed_kernel_;      // keyed-passive protocols only
  UnkeyedPassiveKernel<P> unkeyed_kernel_;  // unkeyed-passive protocols only
  MultinomialKernel<P> multi_kernel_;       // built lazily on first use
  Rng rng_;
  BatchStrategy strategy_ = BatchStrategy::kGeometricSkip;
  std::uint64_t interactions_ = 0;
  BatchStepStats stats_;
  StrategyTrace trace_;
  std::vector<CountDelta> last_deltas_;
  FlatMap64 dirty_codes_;  // code -> count the Fenwick trees still reflect
  bool fenwicks_dirty_ = false;
  FaultSpec faults_{};  // all-zero (and bit-transparent) unless set_faults()
  bool faults_active_ = false;
  double crash_q_ = 0.0;  // per-slot crash probability churn / n
  std::uint64_t crash_countdown_ = 0;  // slots until the next crash
  std::uint32_t churn_code_ = 0;       // encode(churn_state()), churn only
  [[no_unique_address]] Counters counters_{};
};

}  // namespace ppsim
