// Approximate tau-leaping count engine (the repo's first non-exact tier).
//
// The exact engines advance one effective interaction (or one exact
// collision-free batch) at a time; full stabilization of the paper's
// Optimal-Silent protocol at n = 10^6 is ~4n^2 effective interactions,
// out of reach for any of them. TauLeapSimulation trades exactness for
// throughput the standard SSA way (Gillespie's tau-leaping): freeze the
// pair rates, pick a macro-leap of L candidate interactions, draw how many
// *effective* interactions of each ordered (s1, s2) category the leap
// contains, and apply them in bulk against the frozen counts.
//
// Under the uniform ordered-pair scheduler, category (a, b) is drawn with
// probability m_a (m_b - [a = b]) / (n (n - 1)) per candidate interaction.
// Approximating the L-candidate multinomial by independent Poisson counts
// with the matched means lambda_ab = L m_a (m_b - [a = b]) / (n (n - 1)) —
// equivalently, one Poisson total thinned by the category distribution —
// and ignoring within-leap state changes is the entire approximation; its
// error shrinks with the leap's relative rate drift, which the adaptive
// controls below bound.
//
// Sampling uses the structured active-weight decomposition of the
// geometric-skip kernels (passive-structured protocols: W = A(n-1) + SA
// [+ sum_k s_k (s_k - 1) for keyed protocols]), so null categories are
// never enumerated or drawn. A leap runs in one of three modes, chosen by
// its expected event count k = L * W / n(n-1):
//   * exact jump chain (k <= kBulkMinEvents): too few events for bulk
//     statistics to pay off — the window is consumed exactly like the
//     geometric-skip kernel (skip to each effective interaction, sample
//     its pair from the live counts, apply immediately). This mode is
//     exact in distribution, so small populations (n up to ~kBulkMinEvents
//     / tau_eps at the eps target) incur no approximation error at all;
//   * enumerated bulk (k large, category grid small): one independent
//     Poisson per non-null category over active x occupied, walking the
//     SegmentedPool occupied slots — O(active-occupied x occupied), not
//     O(|Q|^2) — applied as net deltas against the frozen counts;
//   * per-draw bulk (k large, grid large): one Poisson total, then each
//     effective interaction samples its ordered pair through the pools'
//     weighted draws with the rates frozen at the leap's start.
// Bulk modes apply the drawn category counts through the shared
// TransitionCache (the MultinomialKernel delta table) with counters scaled
// by the repetition count.
//
// Adaptive tau: the leap targets tau_eps * n effective interactions (so
// tau ~ 2 tau_eps units of parallel time at density 1). Two controls bound
// the frozen-rate error of the bulk modes:
//   * occupancy collisions: a staged bulk leap whose Poisson draws would
//     drive any count negative is abandoned and the SAME window is
//     consumed by the exact jump chain instead (and the next bulk attempt
//     is halved). Resampling-until-feasible — the textbook rejection — is
//     deliberately avoided: it conditions the dynamics on "no code drawn
//     beyond its occupancy", which systematically slows every
//     occupancy-limited chain (measured at +20-40% stabilization time on
//     Optimal-Silent's dormant countdown before this design);
//   * rate drift: when a committed bulk leap that drew >= 2 effective
//     interactions moved the aggregate active weight by more than
//     kRateDriftFactor * tau_eps relatively, the *next* leap is halved
//     (and grows back x2 per quiet leap). This too is feedback, not
//     rejection — rejecting on drift would resample until the leap
//     contained no weight-moving events, suppressing exactly the rare
//     transitions (reset-wave recruitments, the last rank assignments)
//     that high-relative-drift regimes consist of.
//
// Everything is a pure function of (seed, tau_eps): determinism contracts
// survive, but distributional exactness does not. Results that flow
// through the scenario API are stamped `approximate: true` and carry
// tau_eps; `auto` never selects this engine.
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/batch_kernels.h"
#include "core/discrete_samplers.h"
#include "core/engine.h"
#include "core/protocol.h"
#include "core/rng.h"

namespace ppsim {

// Default leap-size knob: each leap targets kDefaultTauEps * n effective
// interactions. At 0.05 the per-leap relative rate drift stays within a few
// percent across the repo's protocols (quantified against the exact
// engines by tests/approx_error_test.cpp).
inline constexpr double kDefaultTauEps = 0.05;

template <EnumerableProtocol P>
class TauLeapSimulation {
  static_assert(DeterministicProtocol<P>,
                "tau-leaping applies cached transitions in bulk; interact() "
                "must be deterministic");
  static_assert(KeyedPassiveProtocol<P> || UnkeyedPassiveProtocol<P>,
                "tau-leaping needs the passive-structured active weight to "
                "enumerate non-null categories");
  static_assert(!ObservableProtocol<P> ||
                    ScalableCounters<ProtocolCounters<P>>,
                "observable protocols need add_scaled counters for bulk "
                "application");

 public:
  using State = typename P::State;
  using Counters = ProtocolCounters<P>;

  TauLeapSimulation(P protocol, std::vector<std::uint64_t> counts,
                    std::uint64_t seed, double tau_eps = kDefaultTauEps)
      : protocol_(std::move(protocol)),
        counts_(std::move(counts)),
        rng_(seed),
        eps_(tau_eps) {
    if (!(eps_ > 0.0) || !std::isfinite(eps_))
      throw std::invalid_argument("tau_eps must be finite and > 0");
    const std::uint32_t q = protocol_.num_states();
    if (counts_.size() != q)
      throw std::invalid_argument("counts size != num_states");
    std::uint64_t total = 0;
    for (std::uint32_t s = 0; s < q; ++s) total += counts_[s];
    if (total != protocol_.population_size() || total < 2)
      throw std::invalid_argument("counts must sum to population size >= 2");
    all_pool_.build(counts_);
    active_pool_.reset();
    for (std::uint32_t slot = 0; slot < all_pool_.slots(); ++slot) {
      const std::uint32_t code = all_pool_.code_at(slot);
      const std::uint64_t m = all_pool_.weight_at(slot);
      if (m == 0) continue;
      weight_.on_count_change(protocol_, code, 0, m);
      if (restless(code))
        active_pool_.apply_delta(code, static_cast<std::int64_t>(m));
    }
  }

  std::uint32_t population_size() const { return protocol_.population_size(); }
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  const std::vector<std::uint64_t>& state_counts() const { return counts_; }
  const P& protocol() const { return protocol_; }
  P& protocol() { return protocol_; }
  const Counters& counters() const { return counters_; }
  std::uint64_t interactions() const { return interactions_; }
  double parallel_time() const {
    return static_cast<double>(interactions_) /
           static_cast<double>(population_size());
  }
  const std::vector<CountDelta>& last_deltas() const { return last_deltas_; }
  const StrategyTrace& strategy_trace() const { return trace_; }

  double tau_eps() const { return eps_; }
  // Leaps committed, bulk leaps that fell back to the exact jump chain on
  // an occupancy collision, and the number of *effective* interactions the
  // committed leaps contained — the "leaped" side of the exact-vs-leaped
  // interaction accounting (the trace arm holds the candidate-interaction
  // side).
  std::uint64_t leaps() const { return leaps_; }
  std::uint64_t shrink_retries() const { return shrink_retries_; }
  std::uint64_t effective_interactions() const { return effective_; }

  // True iff no future interaction can change the configuration (exact:
  // the structured active weight is identically zero).
  bool silent() const { return weight_.total(population_size()) == 0; }

  // One macro-leap. Returns the candidate interactions the leap covered,
  // 0 iff the configuration is provably silent. A returned leap has
  // already been committed (counts, counters, pools, last_deltas).
  std::uint64_t step() {
    const std::uint64_t n = population_size();
    const std::uint64_t w = weight_.total(n);
    if (w == 0) {
      last_deltas_.clear();
      return 0;
    }
    const double pairs =
        static_cast<double>(n) * static_cast<double>(n - 1);
    const double density = static_cast<double>(w) / pairs;
    const double k_target =
        std::max(1.0, eps_ * static_cast<double>(n));
    const double l_cap =
        static_cast<double>(kMaxLeapPtime) * static_cast<double>(n);
    double l_cand = k_target / density;
    if (l_cand > l_cap) l_cand = l_cap;
    const auto target = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::llround(l_cand)));
    const std::uint64_t leap = std::min(target, cur_leap_);
    const double k_mean = static_cast<double>(leap) * density;
    bool bulk_rejected = false;
    if (k_mean <= static_cast<double>(kBulkMinEvents)) {
      // Too few expected events for bulk statistics to pay off (small
      // populations live here permanently): consume the window exactly.
      exact_jump(leap);
      last_drift_exceeded_ = false;
    } else if (!try_leap(leap)) {
      // Bulk staging drew more events on some code than its occupancy —
      // the occupancy scale is too small for Poissonized bulk application
      // at this length. Resampling until feasible would condition the
      // dynamics on "no collisions" (a systematic slow-down of every
      // occupancy-limited chain); instead the same window is consumed
      // exactly and the next bulk attempt is halved.
      ++shrink_retries_;
      exact_jump(leap);
      last_drift_exceeded_ = false;
      bulk_rejected = true;
    }
    // Leap-length feedback (never resampling — see the header comment):
    // a bulk leap that moved the rates too much, or one whose Poisson draw
    // overran an occupancy, halves the next attempt; a clean leap doubles
    // back toward the eps target.
    if (bulk_rejected || last_drift_exceeded_) {
      cur_leap_ = std::max<std::uint64_t>(1, leap / 2);
    } else if (leap < target) {
      cur_leap_ = leap < target / 2 ? leap * 2 : target;
    } else {
      cur_leap_ = target;
    }
    interactions_ += leap;
    ++leaps_;
    trace_.note(StrategyArm::kTauLeap, leap);
    return leap;
  }

  // Runs until at least `count` interactions have elapsed (a final leap
  // may overshoot; the overshoot is real simulated time, not error).
  void run(std::uint64_t count) {
    const std::uint64_t target = interactions_ + count;
    while (interactions_ < target)
      if (step() == 0) break;  // silent: nothing will ever change again
  }

  // Runs until done(*this) is true, checking after every committed leap
  // (the predicate is evaluated at leap granularity: a flip inside a leap
  // is observed at the leap's end). Returns true iff the predicate fired
  // before `max_interactions`.
  template <class Done>
  bool run_until(Done&& done, std::uint64_t max_interactions) {
    if (done(*this)) return true;
    while (interactions_ < max_interactions) {
      if (step() == 0) return done(*this);
      if (done(*this)) return true;
    }
    return false;
  }

 private:
  // Hard per-leap ceiling in parallel-time units. Near-silent endgames have
  // densities ~1/n^2, where covering k_target effective draws would need
  // astronomically long leaps; capping keeps every leap's candidate length
  // (and so the time axis of trajectories) finitely resolved while the
  // Poisson means simply scale down.
  static constexpr std::uint64_t kMaxLeapPtime = 64;

  // Below this expected event count per leap, bulk Poisson application is
  // replaced by the exact jump chain: the bulk machinery only pays off when
  // a leap amortizes hundreds of events, and small expected counts are
  // exactly where Poissonization + occupancy collisions would bias the
  // dynamics. With the eps target k = tau_eps * n, populations up to
  // ~kBulkMinEvents / tau_eps run entirely exactly.
  static constexpr std::uint64_t kBulkMinEvents = 256;

  // Per-draw mode clamps the Poisson total 8 sigma above its mean so a
  // single leap cannot draw more effective interactions than candidates in
  // pathological tails (P < 1e-15 per leap; the distortion is far below
  // the method's own bias).
  static std::uint64_t clamp_tail(std::uint64_t k, double mean) {
    const double cap = mean + 8.0 * std::sqrt(mean) + 16.0;
    const auto cap_u = static_cast<std::uint64_t>(cap);
    return k > cap_u ? cap_u : k;
  }

  bool restless(std::uint32_t code) const {
    return !protocol_.is_passive(protocol_.decode(code));
  }

  // Stages one bulk leap of `leap` candidate interactions into
  // draws_/net_ and commits it unless a count would go negative (then:
  // discard; the caller consumes the window exactly instead). On commit it
  // also evaluates the aggregate-weight drift of multi-event leaps into
  // last_drift_exceeded_ for the step()-level feedback controller — drift
  // never rejects a drawn leap (that would condition the dynamics on "no
  // rare events"; see the header comment).
  bool try_leap(std::uint64_t leap) {
    const std::uint64_t n = population_size();
    const std::uint64_t active = weight_.restless();
    const std::uint64_t settled = n - active;
    std::uint64_t key_diag = 0;
    if constexpr (KeyedPassiveProtocol<P>) key_diag = weight_.key_diag();
    const std::uint64_t w1 = active * (n - 1);
    const std::uint64_t w2 = settled * active;
    const std::uint64_t w = w1 + w2 + key_diag;
    const double pairs =
        static_cast<double>(n) * static_cast<double>(n - 1);
    const double per_pair = static_cast<double>(leap) / pairs;
    const double k_mean = per_pair * static_cast<double>(w);

    draws_.clear();
    std::uint64_t drawn = 0;

    // Category enumeration beats per-draw sampling when the category grid
    // is small relative to the expected number of draws it replaces.
    const auto a_occ = static_cast<std::uint64_t>(active_pool_.occupied());
    const auto occ = static_cast<std::uint64_t>(all_pool_.occupied());
    std::uint64_t grid = a_occ * occ + (occ - a_occ) * a_occ;
    if constexpr (KeyedPassiveProtocol<P>)
      grid += weight_.key_counts().size();
    const bool enumerate =
        static_cast<double>(grid) <=
        std::max(256.0, 0.5 * k_mean);

    if (enumerate) {
      drawn = stage_enumerated(per_pair);
    } else {
      const std::uint64_t k_total =
          clamp_tail(sample_poisson(rng_, k_mean), k_mean);
      drawn = stage_per_draw(k_total, w1, w2, key_diag);
    }

    // --- Stage the net deltas (and counter deltas) through the cache.
    net_.clear();
    Counters staged{};
    for (std::uint32_t slot : draws_.entry_slots()) {
      const std::uint64_t key = draws_.key_at(slot);
      const std::uint64_t k = draws_.value_at(slot);
      const auto a = static_cast<std::uint32_t>(key >> 32);
      const auto b = static_cast<std::uint32_t>(key);
      const typename TransitionCache<P>::Entry& e =
          cache_.lookup(protocol_, a, b, rng_);
      if constexpr (ObservableProtocol<P>)
        staged.add_scaled(e.counters_delta, k);
      const auto dk = static_cast<std::int64_t>(k);
      net_.add(a, -dk);
      net_.add(b, -dk);
      net_.add(e.na, +dk);
      net_.add(e.nb, +dk);
    }

    // --- Reject leaps the frozen-rate fiction cannot support.
    std::int64_t d_active = 0;
    if constexpr (KeyedPassiveProtocol<P>) key_net_.clear();
    for (std::uint32_t slot : net_.entry_slots()) {
      const auto code = static_cast<std::uint32_t>(net_.key_at(slot));
      const auto d = static_cast<std::int64_t>(net_.value_at(slot));
      if (d == 0) continue;
      if (d < 0 && counts_[code] < static_cast<std::uint64_t>(-d))
        return false;  // negative count: shrink and retry
      if (restless(code)) {
        d_active += d;
      } else if constexpr (KeyedPassiveProtocol<P>) {
        key_net_.add(protocol_.passive_key(protocol_.decode(code)), d);
      }
    }
    last_drift_exceeded_ = false;
    if (drawn >= 2) {
      std::int64_t d_diag = 0;
      if constexpr (KeyedPassiveProtocol<P>) {
        for (std::uint32_t slot : key_net_.entry_slots()) {
          const auto d = static_cast<std::int64_t>(key_net_.value_at(slot));
          if (d == 0) continue;
          const std::uint64_t* kc =
              weight_.key_counts().find(key_net_.key_at(slot));
          const std::uint64_t old_kc = kc == nullptr ? 0 : *kc;
          const auto new_kc = static_cast<std::uint64_t>(
              static_cast<std::int64_t>(old_kc) + d);
          d_diag += static_cast<std::int64_t>(pair_weight(new_kc)) -
                    static_cast<std::int64_t>(pair_weight(old_kc));
        }
      }
      const auto new_active = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(active) + d_active);
      const std::uint64_t new_w =
          new_active * (n - 1) + (n - new_active) * new_active +
          static_cast<std::uint64_t>(
              static_cast<std::int64_t>(key_diag) + d_diag);
      const double drift =
          std::fabs(static_cast<double>(new_w) - static_cast<double>(w));
      last_drift_exceeded_ =
          drift > kRateDriftFactor * eps_ * static_cast<double>(w);
    }

    // --- Commit.
    last_deltas_.clear();
    for (std::uint32_t slot : net_.entry_slots()) {
      const auto code = static_cast<std::uint32_t>(net_.key_at(slot));
      const auto d = static_cast<std::int64_t>(net_.value_at(slot));
      if (d == 0) continue;
      const std::uint64_t old = counts_[code];
      const auto now = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(old) + d);
      counts_[code] = now;
      weight_.on_count_change(protocol_, code, old, now);
      all_pool_.apply_delta(code, d);
      if (restless(code)) active_pool_.apply_delta(code, d);
      last_deltas_.push_back(
          CountDelta{code, static_cast<std::int32_t>(d)});
    }
    if constexpr (ObservableProtocol<P>) counters_.add_scaled(staged, 1);
    effective_ += drawn;
    return true;
  }

  // Enumerated mode: one independent Poisson per non-null category —
  // active initiator x any occupied responder, passive initiator x active
  // responder, and (keyed) the same-key passive fibers — walking only the
  // pools' occupied slots.
  std::uint64_t stage_enumerated(double per_pair) {
    std::uint64_t drawn = 0;
    for (std::uint32_t sa = 0; sa < active_pool_.slots(); ++sa) {
      const std::uint64_t ma = active_pool_.weight_at(sa);
      if (ma == 0) continue;
      const std::uint32_t a = active_pool_.code_at(sa);
      for (std::uint32_t sb = 0; sb < all_pool_.slots(); ++sb) {
        std::uint64_t mb = all_pool_.weight_at(sb);
        if (mb == 0) continue;
        const std::uint32_t b = all_pool_.code_at(sb);
        if (b == a) --mb;
        if (mb == 0) continue;
        const std::uint64_t k = sample_poisson(
            rng_, per_pair * static_cast<double>(ma) *
                      static_cast<double>(mb));
        if (k != 0) {
          draws_.add(pair_code_key(a, b), static_cast<std::int64_t>(k));
          drawn += k;
        }
      }
    }
    for (std::uint32_t sq = 0; sq < all_pool_.slots(); ++sq) {
      const std::uint64_t mq = all_pool_.weight_at(sq);
      if (mq == 0) continue;
      const std::uint32_t q = all_pool_.code_at(sq);
      if (restless(q)) continue;  // active initiators covered above
      for (std::uint32_t sb = 0; sb < active_pool_.slots(); ++sb) {
        const std::uint64_t mb = active_pool_.weight_at(sb);
        if (mb == 0) continue;
        const std::uint64_t k = sample_poisson(
            rng_, per_pair * static_cast<double>(mq) *
                      static_cast<double>(mb));
        if (k != 0) {
          draws_.add(pair_code_key(q, active_pool_.code_at(sb)),
                     static_cast<std::int64_t>(k));
          drawn += k;
        }
      }
    }
    if constexpr (KeyedPassiveProtocol<P>) {
      const FlatMap64& kc = weight_.key_counts();
      for (std::uint32_t slot : kc.entry_slots()) {
        if (kc.value_at(slot) < 2) continue;
        const auto key = static_cast<std::uint32_t>(kc.key_at(slot));
        for (std::uint32_t c1 : protocol_.passive_fiber(key)) {
          const std::uint64_t m1 = counts_[c1];
          if (m1 == 0) continue;
          for (std::uint32_t c2 : protocol_.passive_fiber(key)) {
            std::uint64_t m2 = counts_[c2];
            if (c2 == c1) --m2;
            if (m2 == 0) continue;
            const std::uint64_t k = sample_poisson(
                rng_, per_pair * static_cast<double>(m1) *
                          static_cast<double>(m2));
            if (k != 0) {
              draws_.add(pair_code_key(c1, c2),
                         static_cast<std::int64_t>(k));
              drawn += k;
            }
          }
        }
      }
    }
    return drawn;
  }

  // Per-draw mode: `k_total` effective interactions, each sampling its
  // ordered pair with the exact kernels' 3-case conditional split —
  // with replacement across draws (the frozen-rate fiction), each draw's
  // responder conditioned on the initiator's unit within the draw.
  std::uint64_t stage_per_draw(std::uint64_t k_total, std::uint64_t w1,
                               std::uint64_t w2, std::uint64_t key_diag) {
    for (std::uint64_t i = 0; i < k_total; ++i) {
      const std::pair<std::uint32_t, std::uint32_t> pr =
          draw_effective_pair(w1, w2, key_diag);
      draws_.add(pair_code_key(pr.first, pr.second), 1);
    }
    return k_total;
  }

  // Samples one effective ordered pair from the *current* pools via the
  // exact kernels' 3-case conditional split on the active-weight partition
  // (which the caller passes so bulk staging can freeze it per leap).
  std::pair<std::uint32_t, std::uint32_t> draw_effective_pair(
      std::uint64_t w1, std::uint64_t w2, std::uint64_t key_diag) {
    const std::uint64_t x = rng_.below(w1 + w2 + key_diag);
    std::uint32_t a, b;
    if (x < w1) {
      // Active initiator ∝ count; responder ∝ count over the other n-1.
      a = active_pool_.code_at(active_pool_.draw_remove(rng_));
      active_pool_.restore_removed();
      std::uint32_t a_slot = 0;
      all_pool_.find_slot(a, a_slot);
      all_pool_.remove_bulk(a_slot, 1);
      b = all_pool_.code_at(all_pool_.draw_remove(rng_));
      all_pool_.restore_removed();
    } else if (x < w1 + w2) {
      // Passive initiator: rejection-sample from the full counts
      // (expected tries n / S, paid with probability ∝ S). Responder is
      // restless, so it is never the initiator's unit.
      do {
        a = all_pool_.code_at(all_pool_.draw_remove(rng_));
        all_pool_.restore_removed();
      } while (restless(a));
      b = active_pool_.code_at(active_pool_.draw_remove(rng_));
      active_pool_.restore_removed();
    } else {
      // Keyed same-key passive pair: key ∝ s_k (s_k - 1), then the
      // ordered pair within the fiber ∝ counts with the initiator's unit
      // excluded from the responder.
      return draw_diag_pair();
    }
    return {a, b};
  }

  // Exact jump-chain mode: consumes `leap` candidate interactions the way
  // the geometric-skip kernels do — skip Geometric(W / n(n-1)) candidates
  // to the next effective interaction, sample its ordered pair from the
  // *live* counts, apply it immediately, repeat. Every quantity refreshes
  // between events, so this mode is exact in distribution: leaps routed
  // here contribute zero approximation error. It carries the engine
  // whenever the expected event count is too small for bulk statistics
  // (small populations run entirely here) and absorbs bulk leaps whose
  // Poisson draws overran an occupancy.
  void exact_jump(std::uint64_t leap) {
    const std::uint64_t n = population_size();
    const double pairs =
        static_cast<double>(n) * static_cast<double>(n - 1);
    last_deltas_.clear();
    std::uint64_t consumed = 0;
    while (consumed < leap) {
      const std::uint64_t w = weight_.total(n);
      if (w == 0) break;  // silent: every remaining candidate is null
      const std::uint64_t skip =
          sample_geometric(rng_, static_cast<double>(w) / pairs);
      if (skip > leap - consumed) break;  // next event lands past the window
      consumed += skip;
      const std::uint64_t active = weight_.restless();
      std::uint64_t key_diag = 0;
      if constexpr (KeyedPassiveProtocol<P>) key_diag = weight_.key_diag();
      const std::pair<std::uint32_t, std::uint32_t> pr =
          draw_effective_pair(active * (n - 1), (n - active) * active,
                              key_diag);
      const typename TransitionCache<P>::Entry& e =
          cache_.lookup(protocol_, pr.first, pr.second, rng_);
      if constexpr (ObservableProtocol<P>)
        counters_.add_scaled(e.counters_delta, 1);
      ++effective_;
      if (e.na == pr.first && e.nb == pr.second)
        continue;  // null pair inside the active-weight superset
      net_.clear();
      net_.add(pr.first, -1);
      net_.add(pr.second, -1);
      net_.add(e.na, +1);
      net_.add(e.nb, +1);
      for (std::uint32_t slot : net_.entry_slots()) {
        const auto code = static_cast<std::uint32_t>(net_.key_at(slot));
        const auto d = static_cast<std::int64_t>(net_.value_at(slot));
        if (d == 0) continue;
        const std::uint64_t old = counts_[code];
        const auto now = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(old) + d);
        counts_[code] = now;
        weight_.on_count_change(protocol_, code, old, now);
        all_pool_.apply_delta(code, d);
        if (restless(code)) active_pool_.apply_delta(code, d);
        last_deltas_.push_back(
            CountDelta{code, static_cast<std::int32_t>(d)});
      }
    }
  }

  std::pair<std::uint32_t, std::uint32_t> draw_diag_pair() {
    if constexpr (KeyedPassiveProtocol<P>) {
      const FlatMap64& kc = weight_.key_counts();
      std::uint64_t target = rng_.below(weight_.key_diag());
      for (std::uint32_t slot : kc.entry_slots()) {
        const std::uint64_t sk = kc.value_at(slot);
        const std::uint64_t pw = pair_weight(sk);
        if (target >= pw) {
          target -= pw;
          continue;
        }
        const auto key = static_cast<std::uint32_t>(kc.key_at(slot));
        const std::uint32_t a =
            pick_in_fiber(key, rng_.below(sk), 0, 0);
        const std::uint32_t b =
            pick_in_fiber(key, rng_.below(sk - 1), a, 1);
        return {a, b};
      }
    }
    throw std::logic_error("key diagonal weight inconsistent");
  }

  std::uint32_t pick_in_fiber(std::uint32_t key, std::uint64_t target,
                              std::uint32_t exclude,
                              std::uint64_t discount) const {
    if constexpr (KeyedPassiveProtocol<P>) {
      for (std::uint32_t code : protocol_.passive_fiber(key)) {
        std::uint64_t m = counts_[code];
        if (discount > 0 && code == exclude) m -= discount;
        if (target < m) return code;
        target -= m;
      }
    }
    throw std::logic_error("passive fiber exhausted in diagonal draw");
  }

  // Aggregate-rate drift bound, relative to tau_eps: a multi-event leap may
  // move the active weight by at most this multiple of eps * W before the
  // feedback controller halves the next leap. At the default eps this flags
  // per-leap rate drift beyond 20%.
  static constexpr double kRateDriftFactor = 4.0;

  P protocol_;
  std::vector<std::uint64_t> counts_;
  Rng rng_;
  double eps_;
  Counters counters_{};
  std::uint64_t interactions_ = 0;

  ScalarActiveWeight<P> weight_;
  SegmentedPool all_pool_;     // weight = count, every occupied code
  SegmentedPool active_pool_;  // weight = count, restless codes only
  TransitionCache<P> cache_;

  FlatMap64 draws_;    // (a << 32 | b) -> effective draws this leap
  FlatMap64 net_;      // staged code -> net delta (int64 bits)
  FlatMap64 key_net_;  // staged passive-key -> delta (keyed drift preview)
  std::vector<CountDelta> last_deltas_;
  StrategyTrace trace_;
  std::uint64_t leaps_ = 0;
  std::uint64_t shrink_retries_ = 0;
  std::uint64_t effective_ = 0;
  // Drift-feedback controller state: the running leap-length ceiling (starts
  // unclamped = "use the eps target") and the last committed leap's verdict.
  std::uint64_t cur_leap_ = ~std::uint64_t{0};
  bool last_drift_exceeded_ = false;
};

}  // namespace ppsim
