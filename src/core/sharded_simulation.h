// Sharded single-run count engine: intra-run parallelism for one huge-n
// simulation (ISSUE 5 / ROADMAP open item 1).
//
// run_trials_parallel fans out whole trials, so a single run — the regime
// the paper's O(log n) stabilization bound actually targets — was still
// single-threaded. ShardedSimulation<P> splits the *count vector* across T
// worker shards instead, following the count-vector decomposition framing
// of Berenbrink et al.'s batched simulation line (PAPERS.md):
//
// Each step() simulates one *round* of G = round_ptime * n interactions:
//
//  1. Partition. The population is partitioned uniformly at random into T
//     fixed-size shards by a two-level chained hypergeometric draw over
//     the merged pool's occupied *segments* first and their member codes
//     second (the chain rule factors through the grouping, so the joint
//     law equals sample_shard_partition's flat chain; shards whose quota
//     is zero this round are integrated out, which leaves the law of the
//     drawn shards unchanged).
//  2. Quotas. The round's G interactions are attributed to shards by an
//     exact multinomial with weights m_t (m_t - 1) — precisely the uniform
//     scheduler's probability of an ordered pair falling inside shard t,
//     conditioned on the partition.
//  3. Shard phase (parallel). Shard t simulates its quota of interactions
//     of the uniform scheduler restricted to its own m_t agents, on sparse
//     shard-local kernels (OccupiedPool + the multinomial batch kernel in
//     sparse mode + a scalar-weight geometric skip) — no O(|Q|) dense
//     structures per shard, so rebuilding a shard costs O(occupied) per
//     round. A shard whose active weight hits zero fast-forwards the rest
//     of its quota for free (all its pairs are provably null).
//  4. Reconciliation (serial, deterministic order). Worker net-deltas are
//     merged back into the global count vector (merge_signed_deltas), the
//     scalar active weight, the occupied pool, the engine counters, and
//     last_deltas().
//
// Exactness: for any shard sizes, the expected meeting rate of every
// ordered agent pair is exactly the scheduler's 2G / n(n-1) per round
// (P[both in shard t] = m_t(m_t-1)/n(n-1) times the in-shard rate
// 2 E[E_t]/(m_t(m_t-1)) with E[E_t] = G m_t(m_t-1)/sum m(m-1), summed over
// t), and in the G = 1 limit the scheme IS the uniform scheduler (a random
// partition followed by a shard-conditional pair draw marginalizes to a
// uniform ordered pair). For G > 1 the approximation is operator-splitting
// style: pairs co-resident this round are slightly bunched relative to
// pairs split across shards. The repo's cross-engine discipline gates it
// statistically: tests/engine_equivalence_test.cpp holds sharded runs to
// the same family-controlled CI overlap (tests/stat_harness.h) as every
// other strategy, at n in {8, 64, 512} over 30 seeds.
//
// Determinism: results are a pure function of (seed, shard count). Worker
// RNG streams are derive_seed(derive_seed(seed_root, round), shard), the
// partition/quota stream is its own derived stream, and reconciliation
// folds shards in index order — so the output never depends on how many OS
// threads execute the shard phase (max_workers, --threads, PPSIM_THREADS),
// only on the spec'd shard count. Bit-stability for a fixed (seed, shards)
// across worker counts is asserted in the equivalence tests.
//
// ShardedSimulation<P> satisfies the Engine, CountEngine and StrategyEngine
// concepts (strategy() == BatchStrategy::kSharded); protocols must be
// enumerable, and observable protocols need ScalableCounters so worker
// counters can be merged.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "core/batch_kernels.h"
#include "core/batch_simulation.h"  // BatchStepStats
#include "core/discrete_samplers.h"
#include "core/engine.h"
#include "core/faults.h"
#include "core/protocol.h"
#include "core/rng.h"

namespace ppsim {

// Protocols the sharded engine can run: enumerable (it is a count engine),
// with mergeable counters when observable.
template <class P>
concept ShardableProtocol =
    EnumerableProtocol<P> &&
    (!ObservableProtocol<P> || ScalableCounters<ProtocolCounters<P>>);

struct ShardedOptions {
  // Default shard count when shards == 0. A fixed constant on purpose:
  // the shard count is part of the experiment definition (results are a
  // pure function of (seed, shards)), so it must never be derived from
  // the worker/thread count or the machine — that would let --threads or
  // the host silently change results.
  static constexpr std::uint32_t kDefaultShards = 8;

  std::uint32_t shards = 0;       // 0 = kDefaultShards; the effective
                                  // count is clamped to n / 2 so every
                                  // shard holds >= 2 agents
  std::uint32_t max_workers = 0;  // worker threads for the shard phase
                                  // (0 = hardware concurrency); never
                                  // affects results, only wall clock
  double round_ptime = 0.125;     // global parallel time simulated per
                                  // round (G = max(1, round_ptime * n)
                                  // interactions). Shorter rounds re-draw
                                  // the partition more often — closer to
                                  // the exact G = 1 limit — at more split
                                  // overhead; 1/8 keeps the within-round
                                  // pair bunching statistically invisible
                                  // at n = 8 (where G = 1 makes the scheme
                                  // exact outright) while n >= 10^6 rounds
                                  // stay >> the thread-handoff cost
};

namespace detail {

// Persistent worker pool for the shard phase. run() executes job(i) for
// i in [0, jobs) across the workers and returns when all are done; the
// assignment is dynamic but jobs touch disjoint shard state, so execution
// order cannot affect results.
class ShardTaskPool {
 public:
  explicit ShardTaskPool(std::uint32_t workers) {
    threads_.reserve(workers);
    for (std::uint32_t i = 0; i < workers; ++i)
      threads_.emplace_back([this] { worker_loop(); });
  }

  ~ShardTaskPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) t.join();
  }

  void run(std::uint32_t jobs,
           const std::function<void(std::uint32_t)>& job) {
    std::unique_lock<std::mutex> lock(mutex_);
    job_ = &job;
    jobs_ = jobs;
    next_ = 0;
    remaining_ = jobs;
    error_ = nullptr;
    ++generation_;
    cv_.notify_all();
    done_cv_.wait(lock, [&] { return remaining_ == 0; });
    job_ = nullptr;
    if (error_) std::rethrow_exception(error_);
  }

 private:
  void worker_loop() {
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      while (next_ < jobs_) {
        const std::uint32_t i = next_++;
        lock.unlock();
        std::exception_ptr err;
        try {
          (*job_)(i);
        } catch (...) {
          err = std::current_exception();
        }
        lock.lock();
        if (err && !error_) error_ = err;
        if (--remaining_ == 0) done_cv_.notify_all();
      }
    }
  }

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::uint32_t)>* job_ = nullptr;
  std::uint32_t jobs_ = 0;
  std::uint32_t next_ = 0;
  std::uint32_t remaining_ = 0;
  std::uint64_t generation_ = 0;
  std::exception_ptr error_;
  bool stop_ = false;
};

}  // namespace detail

// One shard's sparse simulation state: an occupied pool (inside the
// multinomial kernel), a scalar active weight, a net-delta map, and a
// private RNG stream. All state is rebuilt from the round's allocation in
// O(occupied); nothing is shared mutably across shards.
template <ShardableProtocol P>
class ShardWorker {
 public:
  using State = typename P::State;
  using Counters = ProtocolCounters<P>;

  static constexpr bool kStructured = ScalarActiveWeight<P>::kStructured;

  // Installs the engine's fault spec (nullptr = fault-free). Drop and
  // one-way are per-interaction draws, so they factor cleanly through the
  // shard decomposition: each worker applies them to its own slice of the
  // round from its own stream. Churn is handled round-granularly by the
  // engine (see ShardedSimulation::set_faults), never inside a worker.
  void set_faults(const FaultSpec* faults) {
    faults_ = (faults != nullptr && faults->active()) ? faults : nullptr;
    kernel_.set_faults(faults_);
  }

  // Rebinds the worker to this round's allocation: alloc[i] agents of
  // codes[i], m agents total, a fresh derived RNG stream.
  void prepare(const P& protocol, const std::vector<std::uint32_t>& codes,
               const std::vector<std::uint64_t>& alloc, std::uint64_t m,
               std::uint64_t seed) {
    kernel_.reset_sparse();
    weight_.clear();
    net_.clear();
    counters_ = Counters{};
    stats_ = BatchStepStats{};
    m_ = m;
    rng_ = Rng(seed);
    for (std::size_t i = 0; i < codes.size(); ++i) {
      if (alloc[i] == 0) continue;
      kernel_.pool().apply_delta(codes[i], static_cast<std::int64_t>(alloc[i]));
      weight_.on_count_change(protocol, codes[i], 0, alloc[i]);
    }
  }

  // Simulates exactly `target` interactions of the uniform scheduler
  // restricted to this shard's m agents: the geometric path truncates its
  // waits at the remaining quota (memorylessness makes redrawing next
  // round exact) and the multinomial path runs its final batch in exact
  // truncated mode (run_batch_sparse's cap), so a shard never overshoots
  // its round quota. A shard with zero active weight fast-forwards the
  // remainder for free. Returns the interactions consumed (== target).
  std::uint64_t run(const P& protocol, std::uint64_t target) {
    std::uint64_t consumed = 0;
    while (consumed < target) {
      if constexpr (kStructured) {
        const std::uint64_t w = weight_.total(m_);
        if (w == 0) {  // every pair in this shard is null: silent shard
          stats_.batched += target - consumed;
          consumed = target;
          break;
        }
        if (StrategyController::shard_step_strategy(m_, w) ==
            BatchStrategy::kMultinomial) {
          consumed += step_multinomial(protocol, target - consumed);
        } else {
          consumed += step_geometric(protocol, w, target - consumed);
        }
      } else {
        if constexpr (NullPairProtocol<P>) {
          std::uint32_t only;
          if (kernel_.single_occupied_code(only)) {
            const State s = protocol.decode(only);
            if (protocol.is_null_pair(s, s)) {
              stats_.batched += target - consumed;
              consumed = target;
              break;
            }
          }
        }
        consumed += step_multinomial(protocol, target - consumed);
      }
    }
    return consumed;
  }

  // code -> net signed count delta of the last run (FlatMap64 int64-bits
  // convention), in deterministic insertion order.
  const FlatMap64& net_deltas() const { return net_; }
  const Counters& counters() const { return counters_; }
  const BatchStepStats& stats() const { return stats_; }

 private:
  // The skip-vs-batch choice is StrategyController::shard_step_strategy
  // at shard scale (population m); see its comment for why the shard rule
  // is density-only. `cap` bounds the batch at the shard's remaining quota
  // exactly.
  std::uint64_t step_multinomial(const P& protocol, std::uint64_t cap) {
    deltas_.clear();
    const std::uint64_t used = kernel_.run_batch_sparse(
        protocol, m_, rng_, counters_, deltas_, cap);
    for (const CountDelta& d : deltas_) {
      const std::uint64_t now = kernel_.pool().weight_of(d.code);
      const std::uint64_t old = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(now) - d.delta);
      weight_.on_count_change(protocol, d.code, old, now);
      net_.add(d.code, d.delta);
    }
    ++stats_.effective;
    stats_.batched += used - 1;
    ++stats_.multinomial_batches;
    return used;
  }

  // Geometric skip, truncated at the shard's remaining quota. Unlike
  // BatchSimulation (whose run() owns the whole clock, so overshooting a
  // target is just more simulated time), a shard simulates a fixed *slice*
  // of the round: an arrival whose geometric wait lands beyond the slice
  // must NOT be executed here — the population is re-partitioned before it
  // would happen, and by memorylessness redrawing the wait next round is
  // exact. Executing it anyway would let rare cross-agent events (e.g. the
  // Observation 2.6 duplicate-rank meeting) fire at shard-local rates —
  // a measured ~10% stabilization-time bias before this truncation.
  std::uint64_t step_geometric(const P& protocol, std::uint64_t w,
                               std::uint64_t remaining) {
    const std::uint64_t pairs = m_ * (m_ - 1);
    // Dropping thins the changeful-slot rate multiplicatively and leaves
    // the conditional active-pair law alone (uniform thinning), exactly as
    // in BatchSimulation::geometric_step. sample_geometric returns 1
    // without touching the rng when p >= 1, so the unconditional call
    // reproduces the old saturated-weight `wait = 1` shortcut bit for bit.
    double p = static_cast<double>(w) / static_cast<double>(pairs);
    if (faults_ != nullptr) p *= 1.0 - faults_->drop;
    if (p <= 0.0) {  // drop == 1: every arrival in this slice is lost
      stats_.batched += remaining;
      return remaining;
    }
    const std::uint64_t wait = sample_geometric(rng_, p);
    if (wait > remaining) {  // no active arrival inside this slice
      stats_.batched += remaining;
      return remaining;
    }
    stats_.batched += wait - 1;
    ++stats_.effective;
    const auto [a, b] = sample_active_pair(protocol, w);
    apply_interaction(protocol, a, b);
    return wait;
  }

  // Linear-scan weighted draws over the occupied pool. The pool's slot
  // order is deterministic (insertion order, compacted deterministically),
  // so every draw is reproducible from the stream.
  template <class WeightOf>
  std::uint32_t pick_by(WeightOf&& weight_of, std::uint64_t target) const {
    const OccupiedPool& pool = kernel_.pool();
    for (std::uint32_t slot = 0; slot < pool.slots(); ++slot) {
      const std::uint64_t cw = pool.weight_at(slot);
      if (cw == 0) continue;
      const std::uint64_t w = weight_of(pool.code_at(slot), cw);
      if (target < w) return pool.code_at(slot);
      target -= w;
    }
    throw std::logic_error("shard pool weight exhausted in pair draw");
  }

  std::pair<std::uint32_t, std::uint32_t> sample_active_pair(
      const P& protocol, std::uint64_t w) {
    if constexpr (DiagonalActiveProtocol<P>) {
      // Colliding state ∝ m_q (m_q - 1) over active codes.
      const std::uint32_t q =
          pick_by(
              [&](std::uint32_t code, std::uint64_t cw) -> std::uint64_t {
                if (cw < 2) return 0;
                const State st = protocol.decode(code);
                return protocol.is_null_pair(st, st) ? 0 : cw * (cw - 1);
              },
              rng_.below(w));
      return {q, q};
    } else if constexpr (KeyedPassiveProtocol<P>) {
      const std::uint64_t a_cnt = weight_.restless();
      const std::uint64_t w1 = a_cnt * (m_ - 1);
      const std::uint64_t w2 = (m_ - a_cnt) * a_cnt;
      const std::uint64_t x = rng_.below(w);
      auto restless_weight = [&](std::uint32_t code,
                                 std::uint64_t cw) -> std::uint64_t {
        return protocol.is_passive(protocol.decode(code)) ? 0 : cw;
      };
      if (x < w1) {
        // (1) restless initiator; responder uniform over the other m - 1.
        const std::uint32_t a = pick_by(restless_weight, rng_.below(a_cnt));
        const std::uint32_t b = pick_by(
            [&](std::uint32_t code, std::uint64_t cw) -> std::uint64_t {
              return cw - (code == a ? 1 : 0);
            },
            rng_.below(m_ - 1));
        return {a, b};
      }
      if (x < w1 + w2) {
        // (2) passive initiator, restless responder.
        const std::uint32_t a = pick_by(
            [&](std::uint32_t code, std::uint64_t cw) -> std::uint64_t {
              return protocol.is_passive(protocol.decode(code)) ? cw : 0;
            },
            rng_.below(m_ - a_cnt));
        const std::uint32_t b = pick_by(restless_weight, rng_.below(a_cnt));
        return {a, b};
      }
      // (3) a same-key passive pair: key ∝ s_k (s_k - 1), then the ordered
      // pair inside the key's occupied fiber ∝ m_q (m_q' - [q = q']).
      std::uint64_t target = rng_.below(w - w1 - w2);
      std::uint32_t key = 0;
      std::uint64_t s_k = 0;
      for (std::uint32_t slot : weight_.key_counts().entry_slots()) {
        const std::uint64_t kc = weight_.key_counts().value_at(slot);
        const std::uint64_t kw = pair_weight(kc);
        if (target < kw) {
          key = static_cast<std::uint32_t>(weight_.key_counts().key_at(slot));
          s_k = kc;
          break;
        }
        target -= kw;
      }
      auto fiber_weight = [&](std::uint32_t code,
                              std::uint64_t cw) -> std::uint64_t {
        const State st = protocol.decode(code);
        return protocol.is_passive(st) && protocol.passive_key(st) == key
                   ? cw
                   : 0;
      };
      const std::uint32_t a = pick_by(fiber_weight, rng_.below(s_k));
      const std::uint32_t b = pick_by(
          [&](std::uint32_t code, std::uint64_t cw) -> std::uint64_t {
            const std::uint64_t fw = fiber_weight(code, cw);
            return fw - (code == a ? 1 : 0);
          },
          rng_.below(s_k - 1));
      return {a, b};
    } else if constexpr (UnkeyedPassiveProtocol<P>) {
      const std::uint64_t a_cnt = weight_.restless();
      const std::uint64_t w1 = a_cnt * (m_ - 1);
      const std::uint64_t x = rng_.below(w);
      auto restless_weight = [&](std::uint32_t code,
                                 std::uint64_t cw) -> std::uint64_t {
        return protocol.is_passive(protocol.decode(code)) ? 0 : cw;
      };
      if (x < w1) {
        const std::uint32_t a = pick_by(restless_weight, rng_.below(a_cnt));
        const std::uint32_t b = pick_by(
            [&](std::uint32_t code, std::uint64_t cw) -> std::uint64_t {
              return cw - (code == a ? 1 : 0);
            },
            rng_.below(m_ - 1));
        return {a, b};
      }
      const std::uint32_t a = pick_by(
          [&](std::uint32_t code, std::uint64_t cw) -> std::uint64_t {
            return protocol.is_passive(protocol.decode(code)) ? cw : 0;
          },
          rng_.below(m_ - a_cnt));
      const std::uint32_t b = pick_by(restless_weight, rng_.below(a_cnt));
      return {a, b};
    } else {
      (void)w;
      throw std::logic_error("sample_active_pair on unstructured protocol");
    }
  }

  void apply_interaction(const P& protocol, std::uint32_t a,
                         std::uint32_t b) {
    // One-way delivery is drawn per delivered interaction (the FaultSpec
    // convention: counters record in full, the responder keeps its state).
    const bool one_way = faults_ != nullptr && faults_->oneway > 0.0 &&
                         rng_.unit() < faults_->oneway;
    State sa = protocol.decode(a);
    State sb = protocol.decode(b);
    invoke_interact(protocol, sa, sb, rng_, counters_);
    const std::uint32_t na = protocol.encode(sa);
    const std::uint32_t nb = one_way ? b : protocol.encode(sb);
    if (na != a) {
      bump(protocol, a, -1);
      bump(protocol, na, +1);
    }
    if (nb != b) {
      bump(protocol, b, -1);
      bump(protocol, nb, +1);
    }
  }

  void bump(const P& protocol, std::uint32_t code, std::int64_t d) {
    const std::uint64_t old = kernel_.pool().weight_of(code);
    kernel_.pool().apply_delta(code, d);
    weight_.on_count_change(
        protocol, code, old,
        static_cast<std::uint64_t>(static_cast<std::int64_t>(old) + d));
    net_.add(code, d);
  }

  MultinomialKernel<P> kernel_;    // owns the shard's occupied pool
  const FaultSpec* faults_ = nullptr;  // non-null iff fault injection is on
  ScalarActiveWeight<P> weight_;
  FlatMap64 net_;                  // code -> net delta this round
  std::vector<CountDelta> deltas_;
  Rng rng_{0};
  std::uint64_t m_ = 0;
  BatchStepStats stats_;
  [[no_unique_address]] Counters counters_{};
};

template <ShardableProtocol P>
class ShardedSimulation {
 public:
  using State = typename P::State;
  using Counters = ProtocolCounters<P>;

  ShardedSimulation(P protocol, std::vector<std::uint64_t> counts,
                    std::uint64_t seed, ShardedOptions options = {})
      : protocol_(std::move(protocol)),
        counts_(std::move(counts)),
        seed_(seed),
        alloc_rng_(derive_seed(seed, 0x5A1D)) {
    init(options);
  }

  ShardedSimulation(P protocol, const std::vector<State>& initial,
                    std::uint64_t seed, ShardedOptions options = {})
      : protocol_(std::move(protocol)),
        counts_(counts_of(protocol_, initial)),
        seed_(seed),
        alloc_rng_(derive_seed(seed, 0x5A1D)) {
    init(options);
  }

  std::uint32_t population_size() const {
    return protocol_.population_size();
  }
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  const std::vector<std::uint64_t>& state_counts() const { return counts_; }
  const P& protocol() const { return protocol_; }
  P& protocol() { return protocol_; }

  const Counters& counters() const { return counters_; }
  std::uint64_t interactions() const { return interactions_; }
  double parallel_time() const {
    return static_cast<double>(interactions_) /
           static_cast<double>(population_size());
  }
  const BatchStepStats& stats() const { return stats_; }
  const std::vector<CountDelta>& last_deltas() const { return last_deltas_; }

  std::uint32_t shards() const {
    return static_cast<std::uint32_t>(shard_sizes_.size());
  }
  std::uint32_t workers() const { return workers_; }
  std::uint64_t round_interactions() const { return g_round_; }
  std::uint64_t rounds() const { return rounds_; }

  BatchStrategy strategy() const { return BatchStrategy::kSharded; }
  BatchStrategy resolved_strategy() const { return BatchStrategy::kSharded; }
  void set_strategy(BatchStrategy s) {
    if (s != BatchStrategy::kSharded)
      throw std::invalid_argument(
          "ShardedSimulation runs only the sharded strategy; construct a "
          "BatchSimulation for " +
          std::string(to_string(s)));
  }

  // Fault injection (core/faults.h). Drop and one-way compile into the
  // workers exactly (each worker thins its own slice of the round from its
  // own stream). Churn is round-granular BY DESIGN on this engine: the
  // round's crashes are drawn as one Binomial(slots, churn / n) after
  // reconciliation and applied to the merged counts — within-round crash
  // timing is coarsened to the round boundary, the same operator-splitting
  // coarsening the sharded partition itself already accepts for G > 1.
  // An all-zero spec is bit-transparent.
  void set_faults(const FaultSpec& faults) {
    faults.validate();
    if (faults.active() && !ScalarActiveWeight<P>::kStructured)
      throw std::invalid_argument(
          "count-engine fault injection requires a protocol with declared "
          "null structure (diagonal / keyed / unkeyed passive); use "
          "engine=array");
    faults_ = faults;
    faults_active_ = faults.active();
    for (auto& w : workers_state_)
      w.set_faults(faults_active_ ? &faults_ : nullptr);
    crash_q_ = 0.0;
    if (faults.churn > 0.0) {
      if constexpr (!ChurnableProtocol<P>) {
        throw std::invalid_argument(
            "fault.churn needs a protocol with a churn_state()");
      } else {
        crash_q_ = faults.crash_probability(population_size());
        churn_code_ = protocol_.encode(protocol_.churn_state());
      }
    }
  }
  const FaultSpec& faults() const { return faults_; }

  // For structured protocols: no future interaction can change anything.
  bool silent() const
    requires ScalarActiveWeight<P>::kStructured
  {
    return merged_weight_.total(population_size()) == 0;
  }

  // Advances by one round (>= 1 interaction; typically round_ptime * n).
  // Returns the interactions consumed, 0 iff the configuration is provably
  // stuck.
  std::uint64_t step() {
    last_deltas_.clear();
    const bool churn_on = crash_q_ > 0.0;
    if (provably_stuck()) {
      if (!churn_on) return 0;
      // Churn-only round: every pair is provably null, but agents still
      // crash — consume a full round of null slots and apply its crashes.
      ++round_index_;
      apply_round_churn(g_round_);
      interactions_ += g_round_;
      stats_.batched += g_round_;
      ++rounds_;
      trace_.note(StrategyArm::kSharded, g_round_);
      return g_round_;
    }
    const std::uint64_t n = population_size();
    const std::uint32_t t_count = shards();
    ++round_index_;

    // 1. Exact multinomial quotas ∝ m_t (m_t - 1).
    sample_multinomial(alloc_rng_, g_round_, quota_probs_, quota_);

    // 2. Occupied snapshot + two-level chained MVH partition: each shard's
    //    allocation is drawn segment-by-segment over the merged pool's
    //    per-segment subtotals (one hypergeometric per segment, with early
    //    exit once the shard is full), then member-by-member only inside
    //    segments that actually received mass. Grouping the chain by
    //    segment leaves the joint law identical to the flat chain of
    //    sample_shard_partition (the law the chi-square tests in
    //    tests/discrete_samplers_test.cpp pin down) — the chain rule
    //    factors through any fixed grouping — while skipping exhausted and
    //    empty segments wholesale. The two exact shortcuts remain: quota-0
    //    shards are integrated out of the chain, and the last active shard
    //    takes the remainder without a draw.
    snapshot_occupied();
    remaining_ = occ_counts_;
    seg_remaining_ = seg_subtotal_;
    const std::uint64_t round_base =
        derive_seed(derive_seed(seed_, 0xB10C), round_index_);
    std::uint64_t unassigned = n;
    for (std::uint32_t t = 0; t < t_count; ++t) {
      if (quota_[t] == 0) continue;
      if (unassigned == shard_sizes_[t]) {
        alloc_[t] = remaining_;
      } else {
        sample_segmented_allocation(shard_sizes_[t], unassigned, alloc_[t]);
      }
      unassigned -= shard_sizes_[t];
      workers_state_[t].prepare(protocol_, occ_codes_, alloc_[t],
                                shard_sizes_[t], derive_seed(round_base, t));
    }

    // 3. Shard phase: parallel when the round is big enough to amortize
    //    the pool handoff; inline otherwise. Either way, results are
    //    identical — shard streams and shard state are fixed above.
    auto run_shard = [&](std::uint32_t t) {
      consumed_[t] =
          quota_[t] == 0 ? 0 : workers_state_[t].run(protocol_, quota_[t]);
    };
    if (workers_ > 1 && g_round_ >= kMinThreadedRound) {
      if (!task_pool_)
        task_pool_ = std::make_unique<detail::ShardTaskPool>(workers_);
      const std::function<void(std::uint32_t)> job = run_shard;
      task_pool_->run(t_count, job);
    } else {
      for (std::uint32_t t = 0; t < t_count; ++t) run_shard(t);
    }

    // 4. Reconciliation, in shard index order.
    round_net_.clear();
    std::uint64_t consumed_total = 0;
    for (std::uint32_t t = 0; t < t_count; ++t) {
      if (quota_[t] == 0) continue;
      consumed_total += consumed_[t];
      merge_signed_deltas(round_net_, workers_state_[t].net_deltas());
      if constexpr (ObservableProtocol<P>)
        counters_.add_scaled(workers_state_[t].counters(), 1);
      const BatchStepStats& ws = workers_state_[t].stats();
      stats_.effective += ws.effective;
      stats_.batched += ws.batched;
      stats_.multinomial_batches += ws.multinomial_batches;
    }
    for (std::uint32_t slot : round_net_.entry_slots()) {
      const auto code = static_cast<std::uint32_t>(round_net_.key_at(slot));
      const auto d = static_cast<std::int64_t>(round_net_.value_at(slot));
      if (d == 0) continue;
      const std::uint64_t old = counts_[code];
      counts_[code] =
          static_cast<std::uint64_t>(static_cast<std::int64_t>(old) + d);
      merged_pool_.apply_delta(code, d);
      merged_weight_.on_count_change(protocol_, code, old, counts_[code]);
      last_deltas_.push_back(
          CountDelta{code, static_cast<std::int32_t>(d)});
    }
    interactions_ += consumed_total;
    if (churn_on) apply_round_churn(consumed_total);
    ++rounds_;
    trace_.note(StrategyArm::kSharded, consumed_total);
    return consumed_total;
  }

  // The controller's decision trace: every round of this engine runs the
  // sharded arm (the per-shard skip-vs-batch refinement happens inside the
  // workers and is not an arm switch).
  const StrategyTrace& strategy_trace() const { return trace_; }

  // Runs until at least `count` interactions have elapsed (the last round
  // may overshoot; the overshoot is real simulated time).
  void run(std::uint64_t count) {
    const std::uint64_t target = interactions_ + count;
    while (interactions_ < target)
      if (step() == 0) break;
  }

  // Runs until done(*this), checked after every round. Returns true iff the
  // predicate fired before `max_interactions`.
  template <class Done>
  bool run_until(Done&& done, std::uint64_t max_interactions) {
    if (done(*this)) return true;
    while (interactions_ < max_interactions) {
      if (step() == 0) return done(*this);
      if (done(*this)) return true;
    }
    return false;
  }

 private:
  // Rounds below this many interactions run the shard phase inline: the
  // per-round thread handoff (~tens of microseconds) would otherwise rival
  // the simulated work itself at small n.
  static constexpr std::uint64_t kMinThreadedRound = 8192;

  static std::vector<std::uint64_t> counts_of(
      const P& protocol, const std::vector<State>& states) {
    if (states.size() != protocol.population_size())
      throw std::invalid_argument(
          "initial configuration size != population size");
    std::vector<std::uint64_t> counts(protocol.num_states(), 0);
    for (const State& s : states) {
      const std::uint32_t code = protocol.encode(s);
      if (code >= counts.size())
        throw std::invalid_argument("encode() out of range");
      ++counts[code];
    }
    return counts;
  }

  void init(const ShardedOptions& options) {
    const std::uint64_t n = population_size();
    if (counts_.size() != protocol_.num_states())
      throw std::invalid_argument("counts size != num_states");
    std::uint64_t total = 0;
    for (std::uint64_t c : counts_) total += c;
    if (total != n)
      throw std::invalid_argument("counts must sum to population size");
    if (n < 2) throw std::invalid_argument("sharded engine needs n >= 2");
    if (options.round_ptime <= 0)
      throw std::invalid_argument("round_ptime must be positive");

    const unsigned hw = std::thread::hardware_concurrency();
    const std::uint32_t hw_default = hw > 0 ? hw : 1;
    const std::uint32_t worker_cap =
        options.max_workers > 0 ? options.max_workers : hw_default;
    std::uint64_t t_count = options.shards > 0
                                ? options.shards
                                : ShardedOptions::kDefaultShards;
    // Every shard needs >= 2 agents for an ordered pair to exist.
    t_count = std::min<std::uint64_t>(t_count, n / 2);
    t_count = std::max<std::uint64_t>(t_count, 1);

    shard_sizes_.resize(t_count);
    for (std::uint64_t t = 0; t < t_count; ++t)
      shard_sizes_[t] = n / t_count + (t < n % t_count ? 1 : 0);
    quota_probs_.resize(t_count);
    for (std::uint64_t t = 0; t < t_count; ++t)
      quota_probs_[t] = static_cast<double>(shard_sizes_[t]) *
                        static_cast<double>(shard_sizes_[t] - 1);
    g_round_ = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(options.round_ptime *
                                      static_cast<double>(n)));
    workers_ = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(worker_cap, t_count));

    workers_state_.resize(t_count);
    alloc_.resize(t_count);
    quota_.resize(t_count);
    consumed_.resize(t_count);

    merged_pool_.build(counts_);
    merged_weight_.clear();
    for (std::uint32_t slot = 0; slot < merged_pool_.slots(); ++slot) {
      const std::uint64_t w = merged_pool_.weight_at(slot);
      if (w > 0)
        merged_weight_.on_count_change(protocol_, merged_pool_.code_at(slot),
                                       0, w);
    }
  }

  // The round's churn: Binomial(slots, churn / n) crashes, each resetting
  // a uniformly random agent to the boot state, applied to the merged
  // counts (and last_deltas_, so downstream trackers see them).
  void apply_round_churn(std::uint64_t slots) {
    std::uint64_t crashes = sample_binomial(alloc_rng_, slots, crash_q_);
    for (; crashes > 0; --crashes) {
      const std::uint32_t victim = pick_uniform_agent_code();
      if (victim == churn_code_) continue;
      apply_global_delta(victim, -1);
      apply_global_delta(churn_code_, +1);
    }
  }

  // Uniform agent draw over the merged counts: linear scan of the occupied
  // pool (crashes per round are few; O(occupied) each is in the noise).
  std::uint32_t pick_uniform_agent_code() {
    std::uint64_t target = alloc_rng_.below(population_size());
    for (std::uint32_t slot = 0; slot < merged_pool_.slots(); ++slot) {
      const std::uint64_t w = merged_pool_.weight_at(slot);
      if (target < w) return merged_pool_.code_at(slot);
      target -= w;
    }
    throw std::logic_error("population exhausted in churn victim draw");
  }

  // One merged-count change, mirrored into every global structure the
  // reconciliation loop maintains.
  void apply_global_delta(std::uint32_t code, std::int64_t d) {
    const std::uint64_t old = counts_[code];
    counts_[code] =
        static_cast<std::uint64_t>(static_cast<std::int64_t>(old) + d);
    merged_pool_.apply_delta(code, d);
    merged_weight_.on_count_change(protocol_, code, old, counts_[code]);
    last_deltas_.push_back(CountDelta{code, static_cast<std::int32_t>(d)});
  }

  bool provably_stuck() const {
    if constexpr (ScalarActiveWeight<P>::kStructured) {
      return merged_weight_.total(population_size()) == 0;
    } else if constexpr (NullPairProtocol<P>) {
      std::uint32_t only;
      if (!merged_pool_.single_occupied(only)) return false;
      const State s = protocol_.decode(only);
      return protocol_.is_null_pair(s, s);
    } else {
      return false;
    }
  }

  // Snapshot of the merged pool's occupied codes, grouped contiguously by
  // pool segment: occ_codes_/occ_counts_ entries [seg_begin_[s],
  // seg_begin_[s+1]) belong to segment s, whose live subtotal starts at
  // seg_subtotal_[s]. The grouping is what lets the per-shard chain draw
  // one hypergeometric per segment instead of one per occupied code.
  void snapshot_occupied() {
    occ_codes_.clear();
    occ_counts_.clear();
    seg_begin_.clear();
    seg_subtotal_.clear();
    const std::uint32_t segs = merged_pool_.segment_count();
    for (std::uint32_t seg = 0; seg < segs; ++seg) {
      seg_begin_.push_back(static_cast<std::uint32_t>(occ_codes_.size()));
      std::uint64_t subtotal = 0;
      for (std::uint32_t slot : merged_pool_.segment_slots(seg)) {
        const std::uint64_t w = merged_pool_.weight_at(slot);
        if (w == 0) continue;
        occ_codes_.push_back(merged_pool_.code_at(slot));
        occ_counts_.push_back(w);
        subtotal += w;
      }
      seg_subtotal_.push_back(subtotal);
    }
    seg_begin_.push_back(static_cast<std::uint32_t>(occ_codes_.size()));
  }

  // One shard's allocation (`want` agents out of the `available` not yet
  // assigned), drawn by the two-level chain over seg_remaining_ and
  // remaining_; both are decremented in place.
  void sample_segmented_allocation(std::uint64_t want, std::uint64_t available,
                                   std::vector<std::uint64_t>& out) {
    out.assign(occ_counts_.size(), 0);
    std::uint64_t remaining_total = available;
    std::uint64_t left = want;
    for (std::size_t seg = 0; seg < seg_subtotal_.size() && left > 0; ++seg) {
      const std::uint64_t sw = seg_remaining_[seg];
      const std::uint64_t k =
          sw == 0 ? 0
                  : sample_hypergeometric(alloc_rng_, sw, remaining_total - sw,
                                          left);
      remaining_total -= sw;
      left -= k;
      if (k == 0) continue;
      seg_remaining_[seg] = sw - k;
      std::uint64_t seg_rem = sw;
      std::uint64_t seg_left = k;
      for (std::uint32_t i = seg_begin_[seg];
           i < seg_begin_[seg + 1] && seg_left > 0; ++i) {
        const std::uint64_t w = remaining_[i];
        const std::uint64_t x =
            w == 0 ? 0
                   : sample_hypergeometric(alloc_rng_, w, seg_rem - w,
                                           seg_left);
        seg_rem -= w;
        seg_left -= x;
        if (x != 0) {
          out[i] = x;
          remaining_[i] -= x;
        }
      }
    }
  }

  P protocol_;
  std::vector<std::uint64_t> counts_;  // merged dense counts (the snapshot)
  std::uint64_t seed_;
  Rng alloc_rng_;                      // partition + quota stream
  OccupiedPool merged_pool_;           // occupied view for the split
  ScalarActiveWeight<P> merged_weight_;
  std::vector<std::uint64_t> shard_sizes_;
  std::vector<double> quota_probs_;    // m_t (m_t - 1)
  std::uint64_t g_round_ = 1;
  std::uint32_t workers_ = 1;
  std::uint64_t round_index_ = 0;
  std::uint64_t rounds_ = 0;
  std::uint64_t interactions_ = 0;
  std::vector<ShardWorker<P>> workers_state_;
  std::unique_ptr<detail::ShardTaskPool> task_pool_;
  std::vector<std::vector<std::uint64_t>> alloc_;  // per shard, per occ code
  std::vector<std::uint64_t> quota_;
  std::vector<std::uint64_t> consumed_;
  std::vector<std::uint64_t> remaining_;
  std::vector<std::uint32_t> occ_codes_;
  std::vector<std::uint64_t> occ_counts_;
  std::vector<std::uint32_t> seg_begin_;      // segment -> occ_* start index
  std::vector<std::uint64_t> seg_subtotal_;   // segment live subtotals
  std::vector<std::uint64_t> seg_remaining_;  // ...not yet assigned
  FlatMap64 round_net_;
  std::vector<CountDelta> last_deltas_;
  FaultSpec faults_{};  // all-zero (and bit-transparent) unless set_faults()
  bool faults_active_ = false;
  double crash_q_ = 0.0;  // per-slot crash probability churn / n
  std::uint32_t churn_code_ = 0;  // encode(churn_state()), churn only
  BatchStepStats stats_;
  StrategyTrace trace_;
  [[no_unique_address]] Counters counters_{};
};

}  // namespace ppsim
