// Aligned ASCII table printer used by the benchmark harness to emit
// paper-style tables (Table 1 and the per-lemma experiment tables).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace ppsim {

class Table {
 public:
  explicit Table(std::vector<std::string> header)
      : header_(std::move(header)) {}

  Table& add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i)
        widths[i] = std::max(widths[i], row[i].size());
    };
    widen(header_);
    for (const auto& r : rows_) widen(r);

    auto print_row = [&](const std::vector<std::string>& row) {
      os << "|";
      for (std::size_t i = 0; i < widths.size(); ++i) {
        const std::string& cell = i < row.size() ? row[i] : std::string();
        os << " " << cell << std::string(widths[i] - cell.size(), ' ')
           << " |";
      }
      os << "\n";
    };
    auto print_rule = [&] {
      os << "+";
      for (auto w : widths) os << std::string(w + 2, '-') << "+";
      os << "\n";
    };

    print_rule();
    print_row(header_);
    print_rule();
    for (const auto& r : rows_) print_row(r);
    print_rule();
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

inline std::string fmt_sci(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision + 2, v);
  return buf;
}

}  // namespace ppsim
