// Protocol-facing concepts shared by every simulation engine.
//
// A protocol is a *pure* transition function over pairs of states: interact()
// must be const. Protocols that want per-interaction instrumentation declare
// a nested Counters struct and take it as an extra interact() parameter; the
// engine owns the Counters instance (the "engine-side observer"), so the same
// protocol object can drive many engines — or many threads — at once.
//
// The concept ladder, from weakest to strongest:
//   Protocol            - const transition function (plain or observable)
//   RankingProtocol     - exposes rank_of() (the paper's SSR output)
//   EnumerableProtocol  - finite state space coded as [0, num_states())
//   NullPairProtocol    - can certify a pair as a no-op without randomness
//   DeterministicProtocol  - interact() never consumes randomness, so the
//                            batched engine may cache transitions per
//                            ordered state pair and apply them in bulk
//   DiagonalActiveProtocol - non-null pairs all have equal states
//   KeyedPassiveProtocol   - null pairs are exactly "both passive, keys differ"
//   UnkeyedPassiveProtocol - "both passive" is a *sufficient* condition for
//                            null (no key); all-passive configurations are
//                            silent
#pragma once

#include <concepts>
#include <cstdint>
#include <vector>

#include "core/rng.h"

namespace ppsim {

// Transition function without instrumentation: interact(a, b, rng) const.
template <class P>
concept PlainProtocol =
    requires(const P p, typename P::State& a, typename P::State& b, Rng& rng) {
      { p.interact(a, b, rng) };
    };

// Transition function that reports events into a protocol-defined counter
// struct owned by the engine: interact(a, b, rng, counters) const.
template <class P>
concept ObservableProtocol =
    requires(const P p, typename P::State& a, typename P::State& b, Rng& rng,
             typename P::Counters& c) {
      typename P::Counters;
      { p.interact(a, b, rng, c) };
    };

// Minimal contract a protocol must satisfy to be simulated. The requires
// clauses bind a *const* protocol object on purpose: a non-const interact()
// (e.g. one mutating protocol-local counters) is rejected at compile time.
template <class P>
concept Protocol = requires(const P p) {
  typename P::State;
  { p.population_size() } -> std::convertible_to<std::uint32_t>;
} && (PlainProtocol<P> || ObservableProtocol<P>);

// Protocols that expose a ranking output (rank_of returns 0 for "no rank
// assigned yet").
template <class P>
concept RankingProtocol =
    Protocol<P> && requires(const P p, const typename P::State& s) {
      { p.rank_of(s) } -> std::convertible_to<std::uint32_t>;
    };

// A protocol whose finite state space can be enumerated: states are coded
// as integers in [0, num_states()), with encode/decode the bijection.
template <class P>
concept EnumerableProtocol =
    Protocol<P> && requires(const P p, const typename P::State& s,
                            std::uint32_t code) {
      { p.num_states() } -> std::convertible_to<std::uint32_t>;
      { p.encode(s) } -> std::convertible_to<std::uint32_t>;
      { p.decode(code) } -> std::same_as<typename P::State>;
    };

// Protocols that can tell, deterministically and without consuming
// randomness, whether interact(a, b, .) would leave (a, b) unchanged.
template <class P>
concept NullPairProtocol =
    requires(const P p, const typename P::State& a, const typename P::State& b) {
      { p.is_null_pair(a, b) } -> std::convertible_to<bool>;
    };

// Protocols declaring (kDeterministicInteract = true) that interact() is a
// deterministic function of the two input states: it never reads the Rng.
// The multinomial batch kernel relies on this to memoize transitions per
// ordered (s1, s2) code pair and apply k repetitions as one count update.
template <class P>
concept DeterministicProtocol = Protocol<P> && bool(P::kDeterministicInteract);

// Protocols asserting that every non-null ordered pair has equal states
// (all progress happens on the diagonal of Q x Q). Enables the exact
// geometric fast-forward between effective interactions.
template <class P>
concept DiagonalActiveProtocol =
    NullPairProtocol<P> && P::kActiveRequiresEqualStates;

// Protocols whose null pairs are exactly {both states "passive" with
// different keys}: is_null_pair(a, b) must equal
//   is_passive(a) && is_passive(b) && passive_key(a) != passive_key(b).
// Diagonal protocols are the special case where every state is passive and
// the key is the state code itself. For Optimal-Silent-SSR, passive =
// Settled and the key is the rank: two Settled agents with distinct ranks
// never change, so the batched engine can geometric-skip entire
// Theta(n^2)-interaction stretches of a mostly-Settled population (this is
// what makes the Observation 2.6 detection-latency experiments feasible at
// n = 10^6+). passive_fiber(k) must list exactly the codes of the passive
// states whose key is k (small for all protocols in this repo).
template <class P>
concept KeyedPassiveProtocol =
    NullPairProtocol<P> && EnumerableProtocol<P> &&
    requires(const P p, const typename P::State& s, std::uint32_t k) {
      { p.is_passive(s) } -> std::convertible_to<bool>;
      { p.passive_key(s) } -> std::convertible_to<std::uint32_t>;
      { p.num_passive_keys() } -> std::convertible_to<std::uint32_t>;
      { p.passive_fiber(k) } -> std::convertible_to<std::vector<std::uint32_t>>;
    };

// Protocols declaring (kPassivePairsAreNull = true) the keyless passive
// structure: any interaction between two passive agents is null, and a
// configuration in which every agent is passive is therefore silent. Unlike
// the keyed structure this is only a *sufficient* null condition — pairs
// involving a non-passive agent may still be null and are simulated
// individually (exact either way). ResetProcess (passive = computing, an
// iff) and one-way epidemics (passive = infected, sufficient only) use it.
template <class P>
concept UnkeyedPassiveProtocol =
    NullPairProtocol<P> && EnumerableProtocol<P> &&
    bool(P::kPassivePairsAreNull) &&
    requires(const P p, const typename P::State& s) {
      { p.is_passive(s) } -> std::convertible_to<bool>;
    };

// --- Engine-side counters plumbing -----------------------------------------

// Placeholder counters type for plain protocols (zero size in the engine).
struct NoCounters {};

namespace detail {
template <class P>
struct ProtocolCountersImpl {
  using type = NoCounters;
};
template <ObservableProtocol P>
struct ProtocolCountersImpl<P> {
  using type = typename P::Counters;
};
}  // namespace detail

// The counters struct an engine must own for protocol P.
template <class P>
using ProtocolCounters = typename detail::ProtocolCountersImpl<P>::type;

// Counters that support bulk accumulation: c.add_scaled(delta, k) must be
// equivalent to adding `delta` into `c` k times. Required for the
// multinomial batch kernel to cache the counter increments of a
// deterministic transition alongside its state outputs.
template <class C>
concept ScalableCounters =
    requires(C c, const C& delta, std::uint64_t k) { c.add_scaled(delta, k); };

// Applies one transition, routing counters to observable protocols.
template <Protocol P>
inline void invoke_interact(const P& p, typename P::State& a,
                            typename P::State& b, Rng& rng,
                            ProtocolCounters<P>& counters) {
  if constexpr (ObservableProtocol<P>) {
    p.interact(a, b, rng, counters);
  } else {
    (void)counters;
    p.interact(a, b, rng);
  }
}

}  // namespace ppsim
