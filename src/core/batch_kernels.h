// Reusable sampling kernels for the count-based batched backend.
//
// BatchSimulation (core/batch_simulation.h) is assembled from the kernels
// in this file; each kernel is an independently testable piece of the
// count-vector machinery:
//
//   WeightedSampler       - Fenwick tree over per-state weights
//                           (O(log |Q|) point update and weighted draw)
//   FlatMap64             - open-addressing uint64 -> uint64 map used for
//                           pair grouping, touched-multiset bookkeeping and
//                           the per-(s1,s2) transition cache
//   sample_ordered_state_pair
//                         - the scheduler's exact ordered state-pair draw
//   DiagonalKernel        - geometric skip for protocols whose non-null
//                           pairs all have equal states
//   KeyedPassiveKernel    - geometric skip for "null iff both passive with
//                           distinct keys" (Optimal-Silent-SSR)
//   UnkeyedPassiveKernel  - geometric skip for "both passive => null" with
//                           no key (ResetProcess, one-way epidemics)
//   SegmentedPool         - weighted pool over the *occupied* subset of a
//                           huge code space, clustered into contiguous
//                           256-code segments with per-segment weight
//                           subtotals: the multinomial kernel's sampling
//                           substrate (weighted draws walk a Fenwick tree
//                           over O(segments) subtotals plus one short
//                           in-segment scan, instead of a deep tree over
//                           O(occupied) raw codes); also the sharded
//                           engine's per-shard count store (reset() +
//                           apply_delta reloads in O(occupied))
//   merge_signed_deltas   - folds per-shard code -> net-delta maps into the
//                           global one in deterministic order (the sharded
//                           engine's reconciliation kernel)
//   ScalarActiveWeight    - the structured active weight W as scalars only
//                           (no Fenwick trees): silence certification and
//                           skip-vs-batch density decisions for the sharded
//                           engine's merged view and its shard workers
//   sample_collision_free_prefix
//                         - exact birthday-problem draw of how many
//                           consecutive interactions touch fresh agents
//   MultinomialKernel     - the ppsim-style batch step: simulate a whole
//                           Theta(sqrt(n))-interaction collision-free
//                           prefix at once by sampling its sender/receiver
//                           state multisets hypergeometrically, applying
//                           transitions per (s1, s2) pair in bulk through a
//                           cached delta table, then replaying the single
//                           colliding interaction exactly
//
// The three geometric-skip kernels each maintain their active weight both
// as an incremental scalar and inside Fenwick trees. The scalar is always
// current (silent() and the auto-strategy density test read it); the
// Fenwick trees may be updated lazily while the multinomial kernel is
// driving the run (it never reads them), and are brought back in sync by
// the engine before the next geometric-skip step.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/discrete_samplers.h"
#include "core/faults.h"
#include "core/protocol.h"
#include "core/rng.h"

namespace ppsim {

// Fenwick tree over per-state weights, supporting O(log |Q|) point update
// and O(log |Q|) sampling of an index with probability weight/total.
class WeightedSampler {
 public:
  WeightedSampler() : tree_(1, 0) {}
  explicit WeightedSampler(std::uint32_t size) : tree_(size + 1, 0) {}

  // O(size) bulk construction from a full weight vector (replaces any
  // existing content) — point-adds would cost O(size log size).
  void build(const std::vector<std::uint64_t>& weights) {
    tree_.assign(weights.size() + 1, 0);
    for (std::uint32_t i = 1; i < tree_.size(); ++i) {
      tree_[i] += weights[i - 1];
      const std::uint32_t parent = i + (i & (~i + 1));
      if (parent < tree_.size()) tree_[parent] += tree_[i];
    }
  }

  std::uint32_t size() const {
    return static_cast<std::uint32_t>(tree_.size()) - 1;
  }

  void add(std::uint32_t index, std::int64_t delta) {
    for (std::uint32_t i = index + 1; i < tree_.size(); i += i & (~i + 1))
      tree_[i] += static_cast<std::uint64_t>(delta);
  }

  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (std::uint32_t i = static_cast<std::uint32_t>(tree_.size()) - 1; i > 0;
         i -= i & (~i + 1))
      sum += tree_[i];
    return sum;
  }

  // Returns the smallest index such that the prefix sum through it exceeds
  // `target` (target in [0, total())): samples index ∝ weight. When
  // `remainder` is non-null it receives the offset of `target` inside the
  // found index's weight — the residual a caller needs to keep drilling
  // into a finer structure (e.g. a segment's member list).
  std::uint32_t find(std::uint64_t target,
                     std::uint64_t* remainder = nullptr) const {
    std::uint32_t pos = 0;
    std::uint32_t mask = 1;
    while ((mask << 1) < tree_.size()) mask <<= 1;
    for (; mask > 0; mask >>= 1) {
      const std::uint32_t next = pos + mask;
      if (next < tree_.size() && tree_[next] <= target) {
        target -= tree_[next];
        pos = next;
      }
    }
    if (remainder != nullptr) *remainder = target;
    return pos;  // 0-based index
  }

 private:
  std::vector<std::uint64_t> tree_;  // 1-based internal indexing
};

// One count change applied by the last effective step (or batch):
// counts()[code] moved by delta. Lets analysis code (e.g. the generic
// ranked-run harness) keep incremental trackers without rescanning O(|Q|)
// counts.
struct CountDelta {
  std::uint32_t code;
  std::int32_t delta;
};

// Open-addressing hash map uint64 -> uint64 (linear probing, power-of-two
// capacity, insertion-ordered iteration). The batched engine's hot maps —
// pair grouping, touched multisets, net deltas, the transition cache — all
// live on this: no per-node allocation, O(1) clear, deterministic
// iteration order (so every consumer of the map is reproducible from the
// seed).
class FlatMap64 {
 public:
  struct Entry {
    std::uint64_t key;
    std::uint64_t value;
  };

  FlatMap64() { rehash(16); }

  void clear() {
    entries_.clear();
    ++epoch_;
    if (epoch_ == 0) {  // epoch counter wrapped: hard reset the stamps
      std::fill(stamps_.begin(), stamps_.end(), 0);
      epoch_ = 1;
    }
  }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  // Insertion-ordered live entries. Values are indices into the slot
  // table's value storage; use value_at / entry iteration below.
  const std::vector<std::uint32_t>& entry_slots() const { return entries_; }
  std::uint64_t key_at(std::uint32_t slot) const { return keys_[slot]; }
  std::uint64_t value_at(std::uint32_t slot) const { return values_[slot]; }
  std::uint64_t& value_ref(std::uint32_t slot) { return values_[slot]; }

  // Returns the value slot for `key`, inserting value `init` if absent;
  // sets `inserted` accordingly.
  std::uint32_t find_or_insert(std::uint64_t key, std::uint64_t init,
                               bool* inserted = nullptr) {
    if (entries_.size() * 2 >= capacity()) grow();
    std::uint32_t slot = probe(key);
    if (stamps_[slot] != epoch_) {
      stamps_[slot] = epoch_;
      keys_[slot] = key;
      values_[slot] = init;
      entries_.push_back(slot);
      if (inserted != nullptr) *inserted = true;
    } else if (inserted != nullptr) {
      *inserted = false;
    }
    return slot;
  }

  // Returns a pointer to the value for `key`, or nullptr when absent.
  std::uint64_t* find(std::uint64_t key) {
    const std::uint32_t slot = probe(key);
    return stamps_[slot] == epoch_ ? &values_[slot] : nullptr;
  }
  const std::uint64_t* find(std::uint64_t key) const {
    const std::uint32_t slot = probe(key);
    return stamps_[slot] == epoch_ ? &values_[slot] : nullptr;
  }

  void add(std::uint64_t key, std::int64_t delta) {
    const std::uint32_t slot = find_or_insert(key, 0);
    values_[slot] = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(values_[slot]) + delta);
  }

 private:
  std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(keys_.size());
  }

  static std::uint64_t mix(std::uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
  }

  std::uint32_t probe(std::uint64_t key) const {
    std::uint32_t slot = static_cast<std::uint32_t>(mix(key)) & mask_;
    while (stamps_[slot] == epoch_ && keys_[slot] != key)
      slot = (slot + 1) & mask_;
    return slot;
  }

  void rehash(std::uint32_t cap) {
    keys_.assign(cap, 0);
    values_.assign(cap, 0);
    stamps_.assign(cap, 0);
    mask_ = cap - 1;
    epoch_ = 1;
  }

  void grow() {
    std::vector<std::uint64_t> old_keys;
    std::vector<std::uint64_t> old_values;
    old_keys.reserve(entries_.size());
    old_values.reserve(entries_.size());
    for (std::uint32_t slot : entries_) {
      old_keys.push_back(keys_[slot]);
      old_values.push_back(values_[slot]);
    }
    entries_.clear();
    rehash(capacity() * 2);
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      const std::uint32_t slot = find_or_insert(old_keys[i], old_values[i]);
      values_[slot] = old_values[i];
    }
  }

  std::vector<std::uint64_t> keys_;
  std::vector<std::uint64_t> values_;
  std::vector<std::uint32_t> stamps_;  // slot live iff stamp == epoch_
  std::vector<std::uint32_t> entries_;
  std::uint32_t mask_ = 0;
  std::uint32_t epoch_ = 1;
};

inline std::uint64_t pair_code_key(std::uint32_t a, std::uint32_t b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

// Accumulates one map of signed count deltas (values are int64 bit patterns,
// the FlatMap64::add convention) into another. This is the sharded engine's
// merge kernel: each worker shard reports its round as a code -> net-delta
// map, and the merge folds them into the global map in shard order, so the
// merged iteration order — and everything downstream of it — is a pure
// function of (seed, shard count), never of the worker thread count.
inline void merge_signed_deltas(FlatMap64& into, const FlatMap64& from) {
  for (std::uint32_t slot : from.entry_slots())
    into.add(from.key_at(slot),
             static_cast<std::int64_t>(from.value_at(slot)));
}

// The scheduler's exact ordered state-pair draw from a count Fenwick:
// initiator ∝ counts, responder uniform over the other n-1 agents (the
// same count vector with one agent in the initiator's state removed).
inline std::pair<std::uint32_t, std::uint32_t> sample_ordered_state_pair(
    Rng& rng, WeightedSampler& count_sampler, std::uint64_t n) {
  const std::uint32_t a = count_sampler.find(rng.below(n));
  count_sampler.add(a, -1);
  const std::uint32_t b = count_sampler.find(rng.below(n - 1));
  count_sampler.add(a, +1);
  return {a, b};
}

inline std::uint64_t pair_weight(std::uint64_t m) {
  return m * (m > 0 ? m - 1 : 0);
}

// --- Geometric-skip kernels -------------------------------------------------

// Diagonal fast path: every non-null pair has equal states, so the active
// weight is W = sum over active q of m_q (m_q - 1) and the colliding state
// is drawn ∝ m_q (m_q - 1).
template <EnumerableProtocol P>
class DiagonalKernel {
 public:
  void build(const P& protocol, const std::vector<std::uint64_t>& counts) {
    const std::uint32_t q = protocol.num_states();
    active_.resize(q);
    std::vector<std::uint64_t> weights(q, 0);
    total_ = 0;
    for (std::uint32_t s = 0; s < q; ++s) {
      const typename P::State st = protocol.decode(s);
      active_[s] = !protocol.is_null_pair(st, st);
      if (active_[s]) {
        weights[s] = pair_weight(counts[s]);
        total_ += weights[s];
      }
    }
    sampler_.build(weights);
  }

  std::uint64_t total() const { return total_; }

  // counts[s] moved old_count -> new_count. When `lazy`, only the scalar is
  // maintained; resync_code() repairs the Fenwick tree later.
  void on_count_change(std::uint32_t s, std::uint64_t old_count,
                       std::uint64_t new_count, bool lazy) {
    if (!active_[s]) return;
    const std::int64_t dw = static_cast<std::int64_t>(pair_weight(new_count)) -
                            static_cast<std::int64_t>(pair_weight(old_count));
    total_ = static_cast<std::uint64_t>(static_cast<std::int64_t>(total_) + dw);
    if (!lazy && dw != 0) sampler_.add(s, dw);
  }

  void resync_code(std::uint32_t s, std::uint64_t old_count,
                   std::uint64_t new_count) {
    if (!active_[s]) return;
    const std::int64_t dw = static_cast<std::int64_t>(pair_weight(new_count)) -
                            static_cast<std::int64_t>(pair_weight(old_count));
    if (dw != 0) sampler_.add(s, dw);
  }

  std::uint32_t sample(Rng& rng) const {
    return sampler_.find(rng.below(total_));
  }

 private:
  WeightedSampler sampler_;
  std::vector<char> active_;
  std::uint64_t total_ = 0;
};

// Keyed-passive fast path. Ordered active pairs partition exactly into
//   (1) restless initiator, any responder:        A (n - 1)
//   (2) passive initiator, restless responder:    S A
//   (3) both passive with the same key:           D = sum_k s_k (s_k - 1)
// (check: n(n-1) - [passive pairs with distinct keys] = A(n-1) + SA + D).
// The active pair is drawn by case-splitting on the three weights; each
// case samples its conditional distribution exactly.
template <EnumerableProtocol P>
class KeyedPassiveKernel {
 public:
  // The three-term active-weight partition, computed in one place so that
  // silent(), the auto-strategy density test and the step can never drift.
  struct Weights {
    std::uint64_t restless = 0;  // A
    std::uint64_t diag = 0;      // D = sum_k s_k (s_k - 1)
    std::uint64_t w1 = 0;        // A (n - 1)
    std::uint64_t w2 = 0;        // S A
    std::uint64_t total = 0;     // W = w1 + w2 + D
  };

  void build(const P& protocol, const std::vector<std::uint64_t>& counts) {
    const std::uint32_t q = protocol.num_states();
    restless_ = WeightedSampler(q);
    key_counts_.assign(protocol.num_passive_keys(), 0);
    restless_count_ = 0;
    diag_total_ = 0;
    // Point-adds over occupied states only: at most n of the |Q| codes are
    // occupied, so this beats a dense O(|Q|) weight-vector build.
    for (std::uint32_t s = 0; s < q; ++s) {
      if (counts[s] == 0) continue;
      const typename P::State st = protocol.decode(s);
      if (protocol.is_passive(st)) {
        key_counts_[protocol.passive_key(st)] += counts[s];
      } else {
        restless_.add(s, static_cast<std::int64_t>(counts[s]));
        restless_count_ += counts[s];
      }
    }
    std::vector<std::uint64_t> key_w(key_counts_.size(), 0);
    for (std::uint32_t k = 0; k < key_counts_.size(); ++k) {
      key_w[k] = pair_weight(key_counts_[k]);
      diag_total_ += key_w[k];
    }
    key_sampler_.build(key_w);
    dirty_keys_.clear();
  }

  Weights weights(std::uint64_t n) const {
    Weights w;
    w.restless = restless_count_;
    w.diag = diag_total_;
    w.w1 = w.restless * (n - 1);
    w.w2 = (n - w.restless) * w.restless;
    w.total = w.w1 + w.w2 + w.diag;
    return w;
  }

  void on_count_change(const P& protocol, std::uint32_t code,
                       std::int64_t delta, bool lazy) {
    const typename P::State st = protocol.decode(code);
    if (protocol.is_passive(st)) {
      const std::uint32_t k = protocol.passive_key(st);
      const std::uint64_t old_kc = key_counts_[k];
      if (lazy) dirty_keys_.find_or_insert(k, old_kc);  // first old value wins
      key_counts_[k] = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(old_kc) + delta);
      diag_total_ = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(diag_total_) +
          static_cast<std::int64_t>(pair_weight(key_counts_[k])) -
          static_cast<std::int64_t>(pair_weight(old_kc)));
      if (!lazy) {
        key_sampler_.add(k,
                         static_cast<std::int64_t>(pair_weight(key_counts_[k])) -
                             static_cast<std::int64_t>(pair_weight(old_kc)));
      }
    } else {
      restless_count_ = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(restless_count_) + delta);
      if (!lazy) restless_.add(code, delta);
    }
  }

  // Repairs the restless Fenwick for one dirtied code (the engine tracks
  // old counts); key Fenwick repairs happen in resync_keys().
  void resync_code(const P& protocol, std::uint32_t code,
                   std::uint64_t old_count, std::uint64_t new_count) {
    if (protocol.is_passive(protocol.decode(code))) return;
    const std::int64_t d = static_cast<std::int64_t>(new_count) -
                           static_cast<std::int64_t>(old_count);
    if (d != 0) restless_.add(code, d);
  }

  void resync_keys() {
    for (std::uint32_t slot : dirty_keys_.entry_slots()) {
      const auto k = static_cast<std::uint32_t>(dirty_keys_.key_at(slot));
      const std::uint64_t old_kc = dirty_keys_.value_at(slot);
      const std::int64_t dw =
          static_cast<std::int64_t>(pair_weight(key_counts_[k])) -
          static_cast<std::int64_t>(pair_weight(old_kc));
      if (dw != 0) key_sampler_.add(k, dw);
    }
    dirty_keys_.clear();
  }

  // Samples the active ordered pair given precomputed weights (total > 0).
  // Consumes randomness in the exact order of the pre-refactor engine.
  std::pair<std::uint32_t, std::uint32_t> sample_pair(
      Rng& rng, const P& protocol, WeightedSampler& count_sampler,
      const std::vector<std::uint64_t>& counts, std::uint64_t n,
      const Weights& kw) const {
    const std::uint64_t x = rng.below(kw.total);
    std::uint32_t a_code, b_code;
    if (x < kw.w1) {
      // (1) restless initiator; responder uniform over the other n-1 agents
      // (same count vector with one agent in the initiator's state removed).
      a_code = restless_.find(rng.below(kw.restless));
      count_sampler.add(a_code, -1);
      b_code = count_sampler.find(rng.below(n - 1));
      count_sampler.add(a_code, +1);
    } else if (x < kw.w1 + kw.w2) {
      // (2) passive initiator by rejection against the full count vector
      // (P[passive] = S/n per try; this branch is drawn with probability
      // ∝ S, so the expected rejection work per step is O(1)); restless
      // responder directly.
      for (;;) {
        a_code = count_sampler.find(rng.below(n));
        if (protocol.is_passive(protocol.decode(a_code))) break;
      }
      b_code = restless_.find(rng.below(kw.restless));
    } else {
      // (3) a same-key passive pair: key ∝ s_k (s_k - 1), then the ordered
      // pair inside the key's fiber ∝ m_q (m_q' - [q = q']).
      const std::uint32_t k = key_sampler_.find(rng.below(kw.diag));
      const std::vector<std::uint32_t> fiber = protocol.passive_fiber(k);
      a_code = pick_in_fiber(counts, fiber, rng.below(key_counts_[k]),
                             /*exclude_pos=*/fiber.size(), 0);
      b_code = pick_in_fiber(counts, fiber, rng.below(key_counts_[k] - 1),
                             /*exclude_pos=*/find_pos(fiber, a_code), 1);
    }
    return {a_code, b_code};
  }

 private:
  static std::size_t find_pos(const std::vector<std::uint32_t>& fiber,
                              std::uint32_t code) {
    for (std::size_t i = 0; i < fiber.size(); ++i)
      if (fiber[i] == code) return i;
    return fiber.size();
  }

  // Samples a code from `fiber` with weight counts[code], minus `discount`
  // on the entry at `exclude_pos` (used to remove the already-chosen
  // initiator agent from the responder draw).
  static std::uint32_t pick_in_fiber(const std::vector<std::uint64_t>& counts,
                                     const std::vector<std::uint32_t>& fiber,
                                     std::uint64_t target,
                                     std::size_t exclude_pos,
                                     std::uint64_t discount) {
    for (std::size_t i = 0; i < fiber.size(); ++i) {
      std::uint64_t weight = counts[fiber[i]];
      if (i == exclude_pos) weight -= discount;
      if (target < weight) return fiber[i];
      target -= weight;
    }
    throw std::logic_error(
        "passive_fiber inconsistent with counts: fiber weight exhausted");
  }

  WeightedSampler restless_;                // weight m_q on non-passive states
  WeightedSampler key_sampler_;             // weight s_k (s_k - 1) per key
  std::vector<std::uint64_t> key_counts_;   // s_k: passive agents per key
  std::uint64_t restless_count_ = 0;        // A (scalar mirror, always live)
  std::uint64_t diag_total_ = 0;            // D (scalar mirror, always live)
  FlatMap64 dirty_keys_;                    // key -> key_count at dirtying
};

// Unkeyed passive fast path: the protocol guarantees that a pair of two
// passive agents is null (kPassivePairsAreNull); pairs involving at least
// one non-passive agent may or may not be null and are simulated
// individually. Ordered candidate pairs partition into
//   (1) restless initiator, any responder:      A (n - 1)
//   (2) passive initiator, restless responder:  S A
// with W = A (n - 1) + S A = A (2n - 1 - A); W = 0 iff every agent is
// passive, which is silent by the structure guarantee.
template <EnumerableProtocol P>
class UnkeyedPassiveKernel {
 public:
  struct Weights {
    std::uint64_t restless = 0;  // A
    std::uint64_t w1 = 0;        // A (n - 1)
    std::uint64_t w2 = 0;        // S A
    std::uint64_t total = 0;
  };

  void build(const P& protocol, const std::vector<std::uint64_t>& counts) {
    const std::uint32_t q = protocol.num_states();
    restless_ = WeightedSampler(q);
    restless_count_ = 0;
    for (std::uint32_t s = 0; s < q; ++s) {
      if (counts[s] == 0) continue;
      if (!protocol.is_passive(protocol.decode(s))) {
        restless_.add(s, static_cast<std::int64_t>(counts[s]));
        restless_count_ += counts[s];
      }
    }
  }

  Weights weights(std::uint64_t n) const {
    Weights w;
    w.restless = restless_count_;
    w.w1 = w.restless * (n - 1);
    w.w2 = (n - w.restless) * w.restless;
    w.total = w.w1 + w.w2;
    return w;
  }

  void on_count_change(const P& protocol, std::uint32_t code,
                       std::int64_t delta, bool lazy) {
    if (protocol.is_passive(protocol.decode(code))) return;
    restless_count_ = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(restless_count_) + delta);
    if (!lazy) restless_.add(code, delta);
  }

  void resync_code(const P& protocol, std::uint32_t code,
                   std::uint64_t old_count, std::uint64_t new_count) {
    if (protocol.is_passive(protocol.decode(code))) return;
    const std::int64_t d = static_cast<std::int64_t>(new_count) -
                           static_cast<std::int64_t>(old_count);
    if (d != 0) restless_.add(code, d);
  }

  std::pair<std::uint32_t, std::uint32_t> sample_pair(
      Rng& rng, const P& protocol, WeightedSampler& count_sampler,
      std::uint64_t n, const Weights& kw) const {
    const std::uint64_t x = rng.below(kw.total);
    std::uint32_t a_code, b_code;
    if (x < kw.w1) {
      a_code = restless_.find(rng.below(kw.restless));
      count_sampler.add(a_code, -1);
      b_code = count_sampler.find(rng.below(n - 1));
      count_sampler.add(a_code, +1);
    } else {
      for (;;) {
        a_code = count_sampler.find(rng.below(n));
        if (protocol.is_passive(protocol.decode(a_code))) break;
      }
      b_code = restless_.find(rng.below(kw.restless));
    }
    return {a_code, b_code};
  }

 private:
  WeightedSampler restless_;
  std::uint64_t restless_count_ = 0;
};

// --- Scalar active-weight tracker -------------------------------------------

// Maintains the declared-structure active weight W as scalars only — no
// Fenwick trees, no O(|Q|) arrays — in O(1) per count change and O(occupied)
// to rebuild. The full geometric-skip kernels above also need to *sample*
// the active pair, which costs them Fenwick trees over the whole code
// space; the sharded engine (core/sharded_simulation.h) only needs W for
// silence certification, the skip-vs-batch density decision, and the wait
// geometric, and samples active pairs by linear scans over its (small)
// occupied sets instead. Keyed key counts live in a FlatMap64 so clearing
// between rounds is O(1).
template <EnumerableProtocol P>
class ScalarActiveWeight {
 public:
  static constexpr bool kStructured = DiagonalActiveProtocol<P> ||
                                      KeyedPassiveProtocol<P> ||
                                      UnkeyedPassiveProtocol<P>;

  void clear() {
    diag_total_ = 0;
    restless_ = 0;
    key_diag_ = 0;
    key_counts_.clear();
  }

  // counts[code] moved old_count -> new_count.
  void on_count_change(const P& protocol, std::uint32_t code,
                       std::uint64_t old_count, std::uint64_t new_count) {
    const std::int64_t d = static_cast<std::int64_t>(new_count) -
                           static_cast<std::int64_t>(old_count);
    if (d == 0) return;
    if constexpr (DiagonalActiveProtocol<P>) {
      const typename P::State st = protocol.decode(code);
      if (protocol.is_null_pair(st, st)) return;
      diag_total_ = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(diag_total_) +
          static_cast<std::int64_t>(pair_weight(new_count)) -
          static_cast<std::int64_t>(pair_weight(old_count)));
    } else if constexpr (KeyedPassiveProtocol<P>) {
      const typename P::State st = protocol.decode(code);
      if (protocol.is_passive(st)) {
        const std::uint32_t slot =
            key_counts_.find_or_insert(protocol.passive_key(st), 0);
        const std::uint64_t old_kc = key_counts_.value_at(slot);
        const std::uint64_t new_kc = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(old_kc) + d);
        key_counts_.value_ref(slot) = new_kc;
        key_diag_ = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(key_diag_) +
            static_cast<std::int64_t>(pair_weight(new_kc)) -
            static_cast<std::int64_t>(pair_weight(old_kc)));
      } else {
        restless_ = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(restless_) + d);
      }
    } else if constexpr (UnkeyedPassiveProtocol<P>) {
      if (!protocol.is_passive(protocol.decode(code)))
        restless_ = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(restless_) + d);
    }
  }

  // W for a population of m agents holding the tracked counts:
  //   diagonal: sum over active q of m_q (m_q - 1)
  //   keyed:    A (m - 1) + S A + sum_k s_k (s_k - 1)
  //   unkeyed:  A (m - 1) + S A
  std::uint64_t total(std::uint64_t m) const {
    if constexpr (DiagonalActiveProtocol<P>) {
      (void)m;
      return diag_total_;
    } else if constexpr (KeyedPassiveProtocol<P>) {
      return restless_ * (m - 1) + (m - restless_) * restless_ + key_diag_;
    } else if constexpr (UnkeyedPassiveProtocol<P>) {
      return restless_ * (m - 1) + (m - restless_) * restless_;
    } else {
      (void)m;
      return 0;
    }
  }

  std::uint64_t restless() const { return restless_; }
  std::uint64_t key_diag() const { return key_diag_; }
  // Keyed only: passive key -> passive-agent count (insertion-ordered).
  const FlatMap64& key_counts() const { return key_counts_; }

 private:
  std::uint64_t diag_total_ = 0;  // diagonal W
  std::uint64_t restless_ = 0;    // A (keyed / unkeyed)
  std::uint64_t key_diag_ = 0;    // sum_k s_k (s_k - 1) (keyed)
  FlatMap64 key_counts_;          // keyed: s_k per occupied key
};

// --- Multinomial batch kernel -----------------------------------------------

// Weighted pool over the occupied subset of a huge code space. Where the
// full-|Q| Fenwick tree of the geometric-skip paths is O(|Q|) memory (280 MB
// for Optimal-Silent-SSR at n = 10^6, so every draw is ~25 DRAM misses),
// this pool indexes only the occupied codes — O(min(n, |Q|)) slots, usually
// cache-resident — and supports weighted without-replacement draws with a
// restore step, which is exactly the access pattern of a multinomial batch.
//
// The occupied codes are clustered into *segments*: all codes sharing
// code >> kSegShift (a contiguous 256-code span of the state space; state
// encodings place related states in nearby codes, so occupied codes arrive
// clustered). Each segment carries a weight subtotal and its member slots
// sorted by code, and the sampling Fenwick tree runs over the O(segments)
// subtotals rather than the O(occupied) raw codes. A weighted draw is one
// shallow Fenwick walk plus a short in-segment scan; bulk multiset splits
// (multinomial categories, shard partitions) chain hypergeometrics over
// the subtotals first and touch member weights only inside segments that
// actually received mass. Dense regimes — uniform-random starts with ~n
// distinct occupied states, the paper's adversarial worst case — are where
// the two-level layout pays: the per-draw structure shrinks by the mean
// segment fill, and splits skip empty segments wholesale.
//
// Slot handles remain stable between structural mutations (apply_delta /
// build / reset); draw/remove/restore never move slots.
class SegmentedPool {
 public:
  // log2 of the code span per segment. 256 codes keeps a segment's member
  // list inside a cache line or two while collapsing the Fenwick tree by
  // the mean segment fill.
  static constexpr std::uint32_t kSegShift = 8;

  bool built() const { return built_; }

  // Resets to a built-but-empty pool. The sharded engine's workers reload
  // their pool from each round's shard allocation this way: O(occupied)
  // apply_delta calls instead of an O(|Q|) dense scan.
  void reset() {
    codes_.clear();
    weights_.clear();
    slot_of_.clear();
    slot_seg_.clear();
    segments_.clear();
    seg_of_.clear();
    total_ = 0;
    zero_slots_ = 0;
    removed_.clear();
    rebuild_seg_fenwick();
    built_ = true;
  }

  // Current weight of `code` (0 when the code has no slot).
  std::uint64_t weight_of(std::uint32_t code) const {
    const std::uint64_t* slot = slot_of_.find(code);
    return slot == nullptr ? 0 : weights_[static_cast<std::size_t>(*slot)];
  }

  // Slot of `code`, when it has one (weight may still be 0 until the next
  // compaction). Lets callers remove_bulk() at a known code — the
  // tau-leaping engine conditions its responder draw on the initiator unit
  // this way.
  bool find_slot(std::uint32_t code, std::uint32_t& slot) const {
    const std::uint64_t* s = slot_of_.find(code);
    if (s == nullptr) return false;
    slot = static_cast<std::uint32_t>(*s);
    return true;
  }

  void build(const std::vector<std::uint64_t>& counts) {
    reset();
    // Pre-size pass: count the occupied codes and their distinct segments
    // up front so the slot arrays are allocated once and the segment
    // Fenwick never doubles mid-build. Wide code spaces with scattered
    // occupancy — the count-form sublinear quotients put thousands of
    // occupied codes across thousands of segments — otherwise pay a
    // geometric ladder of O(cap) rebuild_seg_fenwick calls inside
    // ensure_slot.
    std::uint32_t occ = 0;
    std::uint32_t segs = 0;
    std::uint64_t last_seg = ~std::uint64_t{0};
    for (std::uint32_t code = 0; code < counts.size(); ++code) {
      if (counts[code] == 0) continue;
      ++occ;
      const std::uint64_t seg_id = code >> kSegShift;
      if (seg_id != last_seg) {
        ++segs;
        last_seg = seg_id;
      }
    }
    codes_.reserve(occ);
    weights_.reserve(occ);
    slot_seg_.reserve(occ);
    segments_.reserve(segs);
    std::uint32_t cap = 16;
    while (cap < segs) cap *= 2;
    seg_fenwick_ = WeightedSampler(cap);
    for (std::uint32_t code = 0; code < counts.size(); ++code) {
      if (counts[code] == 0) continue;
      bool fresh = false;
      const std::uint32_t slot = ensure_slot(code, &fresh);
      weights_[slot] = counts[code];
      const std::uint32_t seg = slot_seg_[slot];
      segments_[seg].weight += counts[code];
      total_ += counts[code];
    }
    rebuild_seg_fenwick();
  }

  std::uint64_t total() const { return total_; }
  std::uint32_t slots() const {
    return static_cast<std::uint32_t>(codes_.size());
  }
  std::uint32_t occupied() const {
    return static_cast<std::uint32_t>(codes_.size()) - zero_slots_;
  }
  std::uint32_t code_at(std::uint32_t slot) const { return codes_[slot]; }
  std::uint64_t weight_at(std::uint32_t slot) const { return weights_[slot]; }

  // --- Segment directory ---------------------------------------------------
  std::uint32_t segment_count() const {
    return static_cast<std::uint32_t>(segments_.size());
  }
  std::uint64_t segment_weight(std::uint32_t seg) const {
    return segments_[seg].weight;
  }
  // Member slots of a segment, sorted by code. Zero-weight members stay
  // listed until the next compaction (weighted scans skip them naturally).
  const std::vector<std::uint32_t>& segment_slots(std::uint32_t seg) const {
    return segments_[seg].slots;
  }
  // The member slot holding offset `target` of the segment's weight
  // (target in [0, segment_weight(seg))).
  std::uint32_t pick_in_segment(std::uint32_t seg, std::uint64_t target) const {
    for (std::uint32_t slot : segments_[seg].slots) {
      const std::uint64_t w = weights_[slot];
      if (target < w) return slot;
      target -= w;
    }
    throw std::logic_error("segment weight subtotal inconsistent");
  }

  // When exactly one code holds the whole population, writes it to `code`.
  // Only meaningful with no outstanding removals.
  bool single_occupied(std::uint32_t& code) const {
    if (occupied() != 1) return false;
    for (std::size_t i = 0; i < weights_.size(); ++i)
      if (weights_[i] != 0) {
        code = codes_[i];
        return true;
      }
    return false;
  }

  // Draws a slot ∝ weight and removes one unit from it (recorded for
  // restore_removed()): segment via the subtotal Fenwick, member by the
  // in-segment scan on the residual.
  std::uint32_t draw_remove(Rng& rng) {
    std::uint64_t rem = 0;
    const std::uint32_t seg = seg_fenwick_.find(rng.below(total_), &rem);
    const std::uint32_t slot = pick_in_segment(seg, rem);
    seg_fenwick_.add(seg, -1);
    --segments_[seg].weight;
    --weights_[slot];
    --total_;
    removed_.push_back(Removed{slot, 1});
    return slot;
  }

  // Removes `k` units at `slot` (recorded for restore_removed()).
  void remove_bulk(std::uint32_t slot, std::uint64_t k) {
    if (k == 0) return;
    const std::uint32_t seg = slot_seg_[slot];
    seg_fenwick_.add(seg, -static_cast<std::int64_t>(k));
    segments_[seg].weight -= k;
    weights_[slot] -= k;
    total_ -= k;
    removed_.push_back(Removed{slot, k});
  }

  // Restores every unit removed since the last restore, returning the pool
  // to "weights == counts" state.
  void restore_removed() {
    for (const Removed& r : removed_) {
      const std::uint32_t seg = slot_seg_[r.slot];
      seg_fenwick_.add(seg, static_cast<std::int64_t>(r.k));
      segments_[seg].weight += r.k;
      weights_[r.slot] += r.k;
      total_ += r.k;
    }
    removed_.clear();
  }

  // Permanent count change (counts[code] += delta), creating the slot (and
  // its segment) on demand. Must not be called while removals are
  // outstanding.
  void apply_delta(std::uint32_t code, std::int64_t delta) {
    if (delta == 0) return;
    bool fresh = false;
    const std::uint32_t slot = ensure_slot(code, &fresh);
    const std::uint64_t old = weights_[slot];
    weights_[slot] = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(old) + delta);
    total_ = static_cast<std::uint64_t>(static_cast<std::int64_t>(total_) +
                                        delta);
    const std::uint32_t seg = slot_seg_[slot];
    segments_[seg].weight = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(segments_[seg].weight) + delta);
    seg_fenwick_.add(seg, delta);
    if (old == 0 && weights_[slot] != 0 && !fresh) --zero_slots_;
    if (old != 0 && weights_[slot] == 0) ++zero_slots_;
    maybe_compact();
  }

 private:
  struct Removed {
    std::uint32_t slot;
    std::uint64_t k;
  };

  struct Segment {
    std::uint64_t weight = 0;          // sum of member weights
    std::vector<std::uint32_t> slots;  // member slots, sorted by code
  };

  // Slot for `code`, creating it (weight 0) and its segment on demand.
  std::uint32_t ensure_slot(std::uint32_t code, bool* fresh) {
    bool inserted = false;
    const std::uint32_t map_slot =
        slot_of_.find_or_insert(code, codes_.size(), &inserted);
    *fresh = inserted;
    if (!inserted)
      return static_cast<std::uint32_t>(slot_of_.value_at(map_slot));
    const auto slot = static_cast<std::uint32_t>(codes_.size());
    codes_.push_back(code);
    weights_.push_back(0);
    const std::uint64_t seg_id = code >> kSegShift;
    bool seg_inserted = false;
    const std::uint32_t seg_map =
        seg_of_.find_or_insert(seg_id, segments_.size(), &seg_inserted);
    std::uint32_t seg;
    if (seg_inserted) {
      seg = static_cast<std::uint32_t>(segments_.size());
      segments_.push_back(Segment{});
      if (segments_.size() > seg_fenwick_.size()) rebuild_seg_fenwick();
    } else {
      seg = static_cast<std::uint32_t>(seg_of_.value_at(seg_map));
    }
    auto& members = segments_[seg].slots;
    const auto it = std::lower_bound(
        members.begin(), members.end(), code,
        [this](std::uint32_t s, std::uint32_t c) { return codes_[s] < c; });
    members.insert(it, slot);
    slot_seg_.push_back(seg);
    return slot;
  }

  void rebuild_seg_fenwick() {
    std::uint32_t cap = 16;
    while (cap < segments_.size()) cap *= 2;
    std::vector<std::uint64_t> w(cap, 0);
    for (std::size_t i = 0; i < segments_.size(); ++i) w[i] = segments_[i].weight;
    seg_fenwick_ = WeightedSampler(cap);
    seg_fenwick_.build(w);
  }

  void maybe_compact() {
    if (codes_.size() < 64 || zero_slots_ * 2 < codes_.size()) return;
    std::vector<std::uint32_t> codes;
    std::vector<std::uint64_t> weights;
    codes.reserve(codes_.size() - zero_slots_);
    weights.reserve(codes_.size() - zero_slots_);
    for (std::size_t i = 0; i < codes_.size(); ++i) {
      if (weights_[i] == 0) continue;
      codes.push_back(codes_[i]);
      weights.push_back(weights_[i]);
    }
    const std::uint64_t saved_total = total_;
    codes_.clear();
    weights_.clear();
    slot_of_.clear();
    slot_seg_.clear();
    segments_.clear();
    seg_of_.clear();
    zero_slots_ = 0;
    for (std::size_t i = 0; i < codes.size(); ++i) {
      bool fresh = false;
      const std::uint32_t slot = ensure_slot(codes[i], &fresh);
      weights_[slot] = weights[i];
      segments_[slot_seg_[slot]].weight += weights[i];
    }
    total_ = saved_total;
    rebuild_seg_fenwick();
  }

  std::vector<std::uint32_t> codes_;    // slot -> code
  std::vector<std::uint64_t> weights_;  // slot -> current weight
  FlatMap64 slot_of_;                   // code -> slot
  std::vector<std::uint32_t> slot_seg_; // slot -> segment index
  std::vector<Segment> segments_;       // insertion-ordered
  FlatMap64 seg_of_;                    // code >> kSegShift -> segment index
  WeightedSampler seg_fenwick_;         // over segment subtotals (pow-2 cap)
  std::uint64_t total_ = 0;
  std::uint32_t zero_slots_ = 0;
  std::vector<Removed> removed_;
  bool built_ = false;
};

// The pre-segmentation name; every consumer-facing contract (slots, draws,
// deltas, restore) is unchanged, so the alias keeps the engines readable.
using OccupiedPool = SegmentedPool;

// The distribution of the number L >= 1 of consecutive interactions whose
// 2L participants are all distinct (the birthday-problem prefix): with
// p_j = (n - 2j)(n - 2j - 1) / (n (n - 1)) the probability that interaction
// j+1 avoids the 2j agents already touched,
//   P[L >= i] = prod_{j < i} p_j,
// inverted against one uniform. p_0 = 1, so L >= 1; the product reaches 0
// at 2L >= n - 1, so L < n/2 + 1 and the interaction after the prefix
// provably touches an already-touched agent. E[L] ~ sqrt(pi n / 8) ~
// 0.63 sqrt(n).
//
// The tail products depend only on n, so they are computed once (down to
// underflow, ~sqrt(710 n) entries) and each draw is a binary search —
// O(log n) instead of O(sqrt(n)) multiplications per batch.
class CollisionPrefixSampler {
 public:
  void build(std::uint64_t n) {
    n_ = n;
    tail_.clear();
    tail_.push_back(1.0);  // P[L >= 0]
    const double inv_pairs =
        1.0 / (static_cast<double>(n) * static_cast<double>(n - 1));
    double g = 1.0;
    for (std::uint64_t l = 0;; ++l) {
      const double fresh =
          static_cast<double>(n) - 2.0 * static_cast<double>(l);
      if (fresh < 2.0) break;
      g *= fresh * (fresh - 1.0) * inv_pairs;
      if (g <= 0.0) break;  // underflow: P[L > l] is exactly 0 in doubles
      tail_.push_back(g);   // P[L >= l + 1]
    }
  }

  bool built_for(std::uint64_t n) const { return n_ == n && !tail_.empty(); }

  // L = max{i : P[L >= i] > u} for one uniform u; identical in value to the
  // sequential product inversion.
  std::uint64_t sample(Rng& rng) const {
    const double u = rng.unit();
    // First index with tail_[i] <= u over the descending table — the same
    // "stop at the first product <= u" rule as the sequential inversion.
    const auto it = std::lower_bound(tail_.begin(), tail_.end(), u,
                                     [](double a, double b) { return a > b; });
    const auto l = static_cast<std::uint64_t>(it - tail_.begin()) - 1;
    return l == 0 ? 1 : l;  // p_0 = 1: unreachable guard for rounding
  }

 private:
  std::uint64_t n_ = 0;
  std::vector<double> tail_;  // tail_[i] = P[L >= i], strictly descending
};

// Memoized transition table for deterministic protocols, keyed by the
// ordered state-code pair: one decode/interact/encode per distinct (s1, s2)
// ever seen, then every repetition is a table hit whose counter deltas are
// applied in bulk via add_scaled. Extracted from MultinomialKernel so the
// tau-leaping engine (core/tau_leap_simulation.h) applies its macro-leap
// category counts through the very same cache.
//
// Only meaningful for DeterministicProtocol protocols (and, if observable,
// ScalableCounters); callers gate on that — the template itself is left
// unconstrained so engines can declare a member for any protocol and simply
// never touch it outside a `if constexpr (cacheable)` branch.
template <class P>
class TransitionCache {
 public:
  using State = typename P::State;
  using Counters = ProtocolCounters<P>;

  struct Entry {
    std::uint32_t na = 0;
    std::uint32_t nb = 0;
    [[no_unique_address]] Counters counters_delta{};
  };

  // The memoized result of the ordered pair (a, b), computing it on first
  // use. The rng is threaded through for signature uniformity only — a
  // deterministic protocol never reads it.
  const Entry& lookup(const P& protocol, std::uint32_t a, std::uint32_t b,
                      Rng& rng) {
    bool inserted = false;
    std::uint32_t slot =
        map_.find_or_insert(pair_code_key(a, b), 0, &inserted);
    if (inserted) {
      if (entries_.size() >= kMaxEntries) {
        // Huge state spaces could make the cache grow without limit;
        // dropping it is always safe (it is a pure memoization).
        map_.clear();
        entries_.clear();
        slot = map_.find_or_insert(pair_code_key(a, b), 0);
      }
      Entry e;
      State sa = protocol.decode(a);
      State sb = protocol.decode(b);
      if constexpr (ObservableProtocol<P>) {
        Counters delta{};
        protocol.interact(sa, sb, rng, delta);
        e.counters_delta = delta;
      } else {
        protocol.interact(sa, sb, rng);
      }
      e.na = protocol.encode(sa);
      e.nb = protocol.encode(sb);
      map_.value_ref(slot) = entries_.size();
      entries_.push_back(e);
    }
    return entries_[map_.value_at(slot)];
  }

 private:
  static constexpr std::size_t kMaxEntries = std::size_t{1} << 22;

  FlatMap64 map_;  // (a << 32 | b) -> index into entries_
  std::vector<Entry> entries_;
};

// The ppsim-style multinomial batch step. One call simulates, exactly:
//   * a collision-free prefix of L interactions, by drawing the 2L
//     participants' state multiset from the counts (sequential
//     without-replacement draws from the occupied pool, or bulk
//     multivariate-hypergeometric splits when few states are occupied —
//     both are the same distribution by exchangeability), pairing sender
//     and receiver multisets uniformly, and applying transitions per
//     distinct ordered (s1, s2) pair in bulk through a cached delta table;
//   * the single interaction that ends the batch by touching an
//     already-touched agent, replayed individually against the touched
//     agents' post-batch states (ppsim's collision handling).
//
// Transitions are cached only for DeterministicProtocol protocols (and, if
// observable, only when the Counters support add_scaled); otherwise every
// repetition invokes interact() — still correct, just without the bulk
// application savings.
template <EnumerableProtocol P>
class MultinomialKernel {
 public:
  using State = typename P::State;
  using Counters = ProtocolCounters<P>;

  static constexpr bool kCacheable =
      DeterministicProtocol<P> &&
      (!ObservableProtocol<P> || ScalableCounters<ProtocolCounters<P>>);

  bool built() const { return pool_.built(); }

  void ensure_built(const std::vector<std::uint64_t>& counts) {
    if (!pool_.built()) pool_.build(counts);
  }

  // Fault injection (core/faults.h), compiled into the batch exactly: the
  // prefix draw and participant sampling are untouched (faults change what
  // an interaction *does*, never who interacts), and each (s1, s2)
  // category's k repetitions are thinned by one Binomial(k, 1 - drop)
  // draw — a dropped pair leaves both agents unchanged, exactly like a
  // null pair. Of the survivors, Binomial(., oneway) are delivered
  // one-way: the cached transition applies, but the responder keeps its
  // old state. The colliding interaction replays its own per-interaction
  // fault draws. nullptr (the default) is the zero-overhead fault-free
  // path, bit-identical to the pre-fault kernel.
  void set_faults(const FaultSpec* faults) {
    faults_ = (faults != nullptr && faults->active()) ? faults : nullptr;
  }

  // Keeps the occupied pool current while another strategy drives the run.
  void on_external_change(std::uint32_t code, std::int64_t delta) {
    if (pool_.built()) pool_.apply_delta(code, delta);
  }

  // True iff every agent sits in one state code (written to `code`); the
  // engine uses this with is_null_pair to certify stuck configurations.
  bool single_occupied_code(std::uint32_t& code) const {
    return pool_.built() && pool_.single_occupied(code);
  }

  // Sparse mode for the sharded engine's shard workers: the counts live
  // entirely in the kernel's occupied pool — reset_sparse() then
  // pool().apply_delta(code, count) per occupied code loads a shard's
  // round allocation in O(occupied) — and the batch runs over a *shard*
  // population rather than protocol.population_size().
  void reset_sparse() { pool_.reset(); }
  OccupiedPool& pool() { return pool_; }
  const OccupiedPool& pool() const { return pool_; }

  // Runs one batch: mutates `counts`, accumulates protocol counters,
  // appends the net per-code deltas to `out_deltas`, and returns the number
  // of interactions consumed (L + 1). Requires n >= 2. `cap` > 0 truncates
  // the batch exactly as in run_batch_sparse — the engine uses it to land
  // a batch on the churn crash countdown with zero overshoot.
  std::uint64_t run_batch(const P& protocol, std::vector<std::uint64_t>& counts,
                          Rng& rng, Counters& counters,
                          std::vector<CountDelta>& out_deltas,
                          std::uint64_t cap = 0) {
    ensure_built(counts);
    return run_batch_impl(protocol, protocol.population_size(),
                          DenseCounts{&counts}, rng, counters, out_deltas,
                          cap);
  }

  // Sparse front door (see reset_sparse above): identical batch logic and
  // randomness order, but the only count store updated is the pool.
  //
  // `cap` > 0 truncates the batch exactly: when the drawn collision-free
  // prefix would overshoot (l + 1 > cap), the event "the first cap
  // interactions touch only fresh agents" has occurred — it is exactly
  // {L >= cap} — so the kernel simulates precisely cap collision-free
  // interactions, skips the collision replay, and returns cap. The sharded
  // engine uses this to land each shard on its round quota with zero
  // overshoot instead of up to one whole ~sqrt(m)-interaction batch.
  std::uint64_t run_batch_sparse(const P& protocol, std::uint64_t n, Rng& rng,
                                 Counters& counters,
                                 std::vector<CountDelta>& out_deltas,
                                 std::uint64_t cap = 0) {
    return run_batch_impl(protocol, n, NullCounts{}, rng, counters,
                          out_deltas, cap);
  }

 private:
  // Count-store sinks for run_batch_impl's fold phase.
  struct DenseCounts {
    std::vector<std::uint64_t>* counts;
    void add(std::uint32_t code, std::int64_t d) const {
      (*counts)[code] = static_cast<std::uint64_t>(
          static_cast<std::int64_t>((*counts)[code]) + d);
    }
  };
  struct NullCounts {
    void add(std::uint32_t, std::int64_t) const {}
  };

  template <class CountsSink>
  std::uint64_t run_batch_impl(const P& protocol, std::uint64_t n,
                               CountsSink sink, Rng& rng, Counters& counters,
                               std::vector<CountDelta>& out_deltas,
                               std::uint64_t cap = 0) {
    if (!prefix_.built_for(n)) prefix_.build(n);
    const std::uint64_t l = prefix_.sample(rng);
    // Exact truncation (see run_batch_sparse): l >= cap is the event that
    // the first cap interactions are collision-free, so conditioned on the
    // drawn l the truncated batch is cap collision-free interactions and
    // no collision replay.
    const bool truncated = cap > 0 && l + 1 > cap;
    const std::uint64_t use_l = truncated ? cap : l;

    net_.clear();
    touched_.clear();
    pair_list_.clear();

    // --- Prefix participants: 2l states drawn without replacement. The
    // ordered tuple of distinct agents is exchangeable, so drawing the l
    // initiators first and the l responders second, then pairing by index,
    // has exactly the scheduler's distribution. Bulk splitting costs
    // O(segments) hypergeometrics per side; per-draw costs O(l) pool draws
    // — cross over where the split is cheaper per interaction.
    if (2 * static_cast<std::uint64_t>(pool_.segment_count()) <= use_l) {
      sample_prefix_bulk(rng, use_l);
    } else {
      sample_prefix_per_draw(rng, use_l);
    }

    // --- Apply the prefix per distinct ordered pair.
    for (const PairCount& pc : pair_list_)
      apply_pair(protocol, pc.a, pc.b, pc.k, rng, counters);

    if (!truncated) {
      // --- The colliding interaction. Conditioned on the prefix ending at
      // length l, the first colliding pick is either the initiator (weight
      // r/n, r = 2l touched agents) or the responder after a fresh
      // initiator (weight (n-r)/n * r/(n-1)); scaled by n(n-1):
      const std::uint64_t r = 2 * l;
      const std::uint64_t w_init = r * (n - 1);
      const std::uint64_t w_resp = (n - r) * r;
      const std::uint64_t x = rng.below(w_init + w_resp);
      std::uint32_t ca, cb;
      if (x < w_init) {
        // Initiator is uniform among the touched agents (their *current*,
        // post-batch states); responder uniform over the other n - 1 agents.
        ca = pick_touched(rng.below(r), /*exclude=*/0, 0);
        const std::uint64_t y = rng.below(n - 1);
        if (y < r - 1) {
          cb = pick_touched(y, ca, 1);
        } else {
          cb = pool_.code_at(pool_.draw_remove(rng));  // untouched agent
        }
      } else {
        ca = pool_.code_at(pool_.draw_remove(rng));  // fresh initiator
        cb = pick_touched(rng.below(r), /*exclude=*/0, 0);
      }
      // The colliding interaction draws its own fault Bernoullis: dropped
      // means both agents return unchanged (their pool removals are undone
      // by restore_removed below); one-way means the responder keeps cb.
      const bool f_dropped = faults_ != nullptr && faults_->drop > 0.0 &&
                             rng.unit() < faults_->drop;
      if (!f_dropped) {
        const bool f_oneway = faults_ != nullptr && faults_->oneway > 0.0 &&
                              rng.unit() < faults_->oneway;
        State sa = protocol.decode(ca);
        State sb = protocol.decode(cb);
        invoke_interact(protocol, sa, sb, rng, counters);
        const std::uint32_t na = protocol.encode(sa);
        const std::uint32_t nb = f_oneway ? cb : protocol.encode(sb);
        net_.add(ca, -1);
        net_.add(na, +1);
        net_.add(cb, -1);
        net_.add(nb, +1);
      }
    }

    // --- Fold the batch back into the counts and the pool.
    pool_.restore_removed();
    for (std::uint32_t slot : net_.entry_slots()) {
      const auto code = static_cast<std::uint32_t>(net_.key_at(slot));
      const auto d = static_cast<std::int64_t>(net_.value_at(slot));
      if (d == 0) continue;
      sink.add(code, d);
      pool_.apply_delta(code, d);
      out_deltas.push_back(CountDelta{code, static_cast<std::int32_t>(d)});
    }
    return truncated ? cap : l + 1;
  }

  struct PairCount {
    std::uint32_t a;
    std::uint32_t b;
    std::uint64_t k;
  };

  // One category run of a bulk split: `k` draws landed on `slot`.
  struct SlotRun {
    std::uint32_t slot;
    std::uint64_t k;
  };

  // Sequential without-replacement draws from the occupied pool: initiators
  // draws_[0..l), responders draws_[l..2l), paired by index and grouped.
  void sample_prefix_per_draw(Rng& rng, std::uint64_t l) {
    draws_.clear();
    draws_.reserve(2 * l);
    for (std::uint64_t i = 0; i < 2 * l; ++i)
      draws_.push_back(pool_.code_at(pool_.draw_remove(rng)));
    pairs_.clear();
    for (std::uint64_t i = 0; i < l; ++i)
      pairs_.add(pair_code_key(draws_[i], draws_[l + i]), 1);
    for (std::uint32_t slot : pairs_.entry_slots()) {
      const std::uint64_t key = pairs_.key_at(slot);
      pair_list_.push_back(PairCount{static_cast<std::uint32_t>(key >> 32),
                                     static_cast<std::uint32_t>(key),
                                     pairs_.value_at(slot)});
    }
  }

  // Below this allocation a segment's multiset is realized by sequential
  // weighted member draws (each one rng.below + short scan); above it by a
  // chained hypergeometric walk over the members.
  static constexpr std::uint64_t kSmallSegmentAlloc = 4;

  // Splits a `want`-sized multiset off the pool (without replacement) into
  // per-slot runs: chained hypergeometrics over the per-segment subtotals
  // first — O(segments) univariate draws with early exit, segments that
  // receive nothing are never opened — then each allocated segment's share
  // over its members. Removes the drawn units from the pool (restored by
  // the caller's restore_removed()).
  void split_segmented(Rng& rng, std::uint64_t want,
                       std::vector<SlotRun>& out) {
    out.clear();
    std::uint64_t remaining = pool_.total();
    std::uint64_t left = want;
    const std::uint32_t segs = pool_.segment_count();
    for (std::uint32_t seg = 0; seg < segs && left > 0; ++seg) {
      const std::uint64_t sw = pool_.segment_weight(seg);
      const std::uint64_t k =
          sw == 0 ? 0 : sample_hypergeometric(rng, sw, remaining - sw, left);
      remaining -= sw;
      left -= k;
      if (k == 0) continue;
      const auto& members = pool_.segment_slots(seg);
      if (members.size() == 1) {
        out.push_back(SlotRun{members[0], k});
        pool_.remove_bulk(members[0], k);
      } else if (k <= kSmallSegmentAlloc) {
        std::uint64_t seg_w = sw;
        for (std::uint64_t i = 0; i < k; ++i) {
          const std::uint32_t slot =
              pool_.pick_in_segment(seg, rng.below(seg_w--));
          out.push_back(SlotRun{slot, 1});
          pool_.remove_bulk(slot, 1);
        }
      } else {
        std::uint64_t seg_remaining = sw;
        std::uint64_t seg_left = k;
        for (std::uint32_t slot : members) {
          if (seg_left == 0) break;
          const std::uint64_t w = pool_.weight_at(slot);
          const std::uint64_t x =
              w == 0 ? 0
                     : sample_hypergeometric(rng, w, seg_remaining - w,
                                             seg_left);
          seg_remaining -= w;
          seg_left -= x;
          if (x != 0) {
            out.push_back(SlotRun{slot, x});
            pool_.remove_bulk(slot, x);
          }
        }
      }
    }
  }

  // Bulk path: split the initiator and responder multisets off the counts
  // with the two-level segmented split, then realize the uniform
  // initiator-responder bijection by Fisher-Yates-shuffling the expanded
  // responder sequence against the initiators in fixed category order —
  // O(l) cheap operations — and group the ordered pairs through the pairs_
  // map (no dense category matrix, so bulk has no occupied-count cap).
  void sample_prefix_bulk(Rng& rng, std::uint64_t l) {
    split_segmented(rng, l, sender_runs_);
    split_segmented(rng, l, recv_runs_);

    recv_expand_.clear();
    recv_expand_.reserve(l);
    for (const SlotRun& run : recv_runs_)
      for (std::uint64_t rep = 0; rep < run.k; ++rep)
        recv_expand_.push_back(pool_.code_at(run.slot));
    for (std::uint64_t i = l - 1; i > 0; --i) {
      const std::uint64_t j = rng.below(i + 1);
      std::swap(recv_expand_[i], recv_expand_[j]);
    }

    pairs_.clear();
    std::size_t idx = 0;
    for (const SlotRun& run : sender_runs_) {
      const std::uint32_t code_a = pool_.code_at(run.slot);
      for (std::uint64_t rep = 0; rep < run.k; ++rep)
        pairs_.add(pair_code_key(code_a, recv_expand_[idx++]), 1);
    }
    for (std::uint32_t slot : pairs_.entry_slots()) {
      const std::uint64_t key = pairs_.key_at(slot);
      pair_list_.push_back(PairCount{static_cast<std::uint32_t>(key >> 32),
                                     static_cast<std::uint32_t>(key),
                                     pairs_.value_at(slot)});
    }
  }

  // Applies k repetitions of the ordered pair (a, b): net count deltas,
  // touched-multiset bookkeeping, counters. Under faults the k repetitions
  // are thinned exactly: drops are i.i.d. per interaction, so the survivor
  // count is Binomial(k, 1 - drop) and the one-way count Binomial(.,
  // oneway); dropped pairs contribute no state change and no counters but
  // their agents are still touched (they participated in the prefix, with
  // unchanged states), so the collision replay sees the right multiset.
  void apply_pair(const P& protocol, std::uint32_t a, std::uint32_t b,
                  std::uint64_t k, Rng& rng, Counters& counters) {
    std::uint64_t survivors = k;
    std::uint64_t oneway = 0;
    if (faults_ != nullptr) {
      if (faults_->drop > 0.0)
        survivors = sample_binomial(rng, k, 1.0 - faults_->drop);
      if (faults_->oneway > 0.0 && survivors > 0)
        oneway = sample_binomial(rng, survivors, faults_->oneway);
      if (k > survivors) record_transition(a, b, a, b, k - survivors);
      if (survivors == 0) return;
    }
    const std::uint64_t full = survivors - oneway;
    if constexpr (kCacheable) {
      const typename TransitionCache<P>::Entry& e =
          cache_.lookup(protocol, a, b, rng);
      if constexpr (ObservableProtocol<P>) {
        counters.add_scaled(e.counters_delta, survivors);
      }
      if (full > 0) record_transition(a, b, e.na, e.nb, full);
      if (oneway > 0) record_transition(a, b, e.na, b, oneway);
    } else {
      // Randomized (or unscalable-counters) protocol: every repetition must
      // consume its own randomness / report its own events.
      const State base_a = protocol.decode(a);
      const State base_b = protocol.decode(b);
      for (std::uint64_t rep = 0; rep < survivors; ++rep) {
        State sa = base_a;
        State sb = base_b;
        invoke_interact(protocol, sa, sb, rng, counters);
        record_transition(a, b, protocol.encode(sa),
                          rep < full ? protocol.encode(sb) : b, 1);
      }
    }
  }

  void record_transition(std::uint32_t a, std::uint32_t b, std::uint32_t na,
                         std::uint32_t nb, std::uint64_t k) {
    const auto dk = static_cast<std::int64_t>(k);
    net_.add(a, -dk);
    net_.add(b, -dk);
    net_.add(na, +dk);
    net_.add(nb, +dk);
    touched_.add(na, dk);
    touched_.add(nb, dk);
  }

  // Uniform draw over the touched agents' current states (weight = multiset
  // count, `discount` subtracted at `exclude` — used to remove the chosen
  // collision initiator from the responder draw). Deterministic iteration
  // order (FlatMap64 preserves insertion order).
  std::uint32_t pick_touched(std::uint64_t target, std::uint32_t exclude,
                             std::uint64_t discount) const {
    for (std::uint32_t slot : touched_.entry_slots()) {
      const auto code = static_cast<std::uint32_t>(touched_.key_at(slot));
      std::uint64_t w = touched_.value_at(slot);
      if (discount > 0 && code == exclude) w -= discount;
      if (target < w) return code;
      target -= w;
    }
    throw std::logic_error("touched multiset exhausted in collision draw");
  }

  OccupiedPool pool_;
  CollisionPrefixSampler prefix_;
  const FaultSpec* faults_ = nullptr;  // non-null iff fault injection is on
  FlatMap64 pairs_;    // (a << 32 | b) -> repetitions (per-draw grouping)
  FlatMap64 net_;      // code -> net count delta (int64 bits)
  FlatMap64 touched_;  // code -> touched agents currently in that state
  TransitionCache<P> cache_;
  std::vector<PairCount> pair_list_;    // this batch's (s1, s2, k) groups
  std::vector<std::uint32_t> draws_;
  std::vector<SlotRun> sender_runs_;
  std::vector<SlotRun> recv_runs_;
  std::vector<std::uint32_t> recv_expand_;  // shuffled receiver codes
};

}  // namespace ppsim
