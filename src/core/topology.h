// Interaction-graph topologies: the scheduler layer behind the Engine API
// generalized from the complete graph to arbitrary communication graphs.
//
// The population-protocol model schedules one ordered pair per slot,
// uniformly over the DIRECTED EDGES of a communication graph G (the paper's
// Section 2 model is the complete graph; ROADMAP item 1 names the
// directed-ring SS-LE family as the first non-clique target). A Topology is
// a value describing G together with an exact uniform-edge sampler:
//
//   complete     all n(n-1) ordered pairs (the classical scheduler)
//   ring         the directed cycle: n edges i -> (i+1) mod n
//   line         the path 0-1-...-(n-1), both directions: 2(n-1) edges
//   star         hub 0 <-> each leaf, both directions: 2(n-1) edges
//   mesh:RxC     the R x C grid, both directions per adjacency
//   torus:RxC    the grid with wrap-around edges (a wrapped dimension
//                contributes its extra edge only when its size is >= 3,
//                so degenerate dims never duplicate an edge or self-loop)
//   custom:path  explicit directed-edge list loaded from a file
//
// Transparency contract: sampling the complete topology reproduces
// UniformScheduler::next draw for draw — same rng calls, same order, same
// values — so topology=complete is bit-identical to the untopologized
// engines and consumes zero extra randomness (the fault-layer contract of
// core/faults.h, applied to the scheduler itself). Every other topology
// uses exactly one rng.below(edge_count()) draw per slot.
//
// Custom-graph file format: one directed edge "u v" per line, '#' starts a
// comment, blank lines ignored. Validation is strict (the CLI convention):
// self-loops, duplicate edges, out-of-range indices, isolated agents and
// disconnected supports are hard errors, not silent acceptance.
#pragma once

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <queue>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/rng.h"
#include "core/scheduler.h"

namespace ppsim {

enum class TopologyKind { kComplete, kRing, kLine, kStar, kMesh, kTorus,
                          kCustom };

inline const char* to_string(TopologyKind k) {
  switch (k) {
    case TopologyKind::kComplete: return "complete";
    case TopologyKind::kRing: return "ring";
    case TopologyKind::kLine: return "line";
    case TopologyKind::kStar: return "star";
    case TopologyKind::kMesh: return "mesh";
    case TopologyKind::kTorus: return "torus";
    case TopologyKind::kCustom: return "custom";
  }
  return "?";
}

class Topology {
 public:
  // Unset placeholder (population_size() == 0): engine constructors taking
  // a defaulted Topology substitute complete(n) for it. Never sampled.
  Topology() : kind_(TopologyKind::kComplete), n_(0), spec_("complete") {}

  // --- Factories -----------------------------------------------------------

  static Topology complete(std::uint32_t n) {
    Topology t(TopologyKind::kComplete, n, "complete");
    t.edge_count_ = static_cast<std::uint64_t>(n) * (n - 1);
    t.diameter_ = 1;
    return t;
  }

  static Topology ring(std::uint32_t n) {
    Topology t(TopologyKind::kRing, n, "ring");
    t.edge_count_ = n;  // directed cycle; n = 2 gives both (0,1) and (1,0)
    t.diameter_ = n / 2;  // undirected support (interactions update both ends)
    return t;
  }

  static Topology line(std::uint32_t n) {
    Topology t(TopologyKind::kLine, n, "line");
    t.edge_count_ = 2ull * (n - 1);
    t.diameter_ = n - 1;
    return t;
  }

  static Topology star(std::uint32_t n) {
    Topology t(TopologyKind::kStar, n, "star");
    t.edge_count_ = 2ull * (n - 1);
    t.diameter_ = n == 2 ? 1 : 2;
    return t;
  }

  static Topology mesh(std::uint32_t rows, std::uint32_t cols) {
    return grid(TopologyKind::kMesh, rows, cols);
  }

  static Topology torus(std::uint32_t rows, std::uint32_t cols) {
    return grid(TopologyKind::kTorus, rows, cols);
  }

  // Explicit directed-edge list. `label` is the canonical spec echoed in
  // reports (parse() passes "custom:<path>").
  static Topology custom(std::uint32_t n, std::vector<AgentPair> edges,
                         const std::string& label = "custom") {
    Topology t(TopologyKind::kCustom, n, label);
    validate_edge_list(n, edges, label);
    t.edge_count_ = edges.size();
    t.custom_edges_ = std::move(edges);
    t.diameter_ = undirected_diameter(n, t.custom_edges_);
    return t;
  }

  // --- Spec parsing --------------------------------------------------------

  // Full parse against a known population size. "" means complete.
  static Topology parse(const std::string& spec, std::uint32_t n) {
    if (n < 2) throw std::invalid_argument("population size must be >= 2");
    if (spec.empty() || spec == "complete") return complete(n);
    if (spec == "ring") return ring(n);
    if (spec == "line") return line(n);
    if (spec == "star") return star(n);
    if (spec.rfind("mesh:", 0) == 0 || spec.rfind("torus:", 0) == 0) {
      const bool is_torus = spec[0] == 't';
      const auto [rows, cols] =
          parse_dims(spec, spec.find(':') + 1);
      if (static_cast<std::uint64_t>(rows) * cols != n)
        throw std::invalid_argument(
            "topology '" + spec + "' needs rows*cols == n (" +
            std::to_string(static_cast<std::uint64_t>(rows) * cols) +
            " != " + std::to_string(n) + ")");
      return is_torus ? torus(rows, cols) : mesh(rows, cols);
    }
    if (spec.rfind("custom:", 0) == 0)
      return custom(n, load_edge_file(spec.substr(7)), spec);
    throw std::invalid_argument(
        "unknown topology '" + spec +
        "' (complete | ring | line | star | mesh:RxC | torus:RxC | "
        "custom:<file>)");
  }

  // Population-free shape check for flag-parse time (common/cli.h): the
  // kind must be known, mesh/torus dims must parse as positive integers,
  // and a custom file must exist and parse (index bounds, isolation and
  // connectivity still need n and are checked by parse()).
  static void validate_spec(const std::string& spec) {
    if (spec.empty() || spec == "complete" || spec == "ring" ||
        spec == "line" || spec == "star")
      return;
    if (spec.rfind("mesh:", 0) == 0 || spec.rfind("torus:", 0) == 0) {
      parse_dims(spec, spec.find(':') + 1);
      return;
    }
    if (spec.rfind("custom:", 0) == 0) {
      load_edge_file(spec.substr(7));
      return;
    }
    throw std::invalid_argument(
        "unknown topology '" + spec +
        "' (complete | ring | line | star | mesh:RxC | torus:RxC | "
        "custom:<file>)");
  }

  // --- Observers -----------------------------------------------------------

  TopologyKind kind() const { return kind_; }
  bool is_complete() const { return kind_ == TopologyKind::kComplete; }
  std::uint32_t population_size() const { return n_; }
  std::uint64_t edge_count() const { return edge_count_; }  // directed
  const std::string& spec() const { return spec_; }

  // Diameter of the undirected support of G (an interaction updates both
  // endpoints, so information crosses any edge in either direction —
  // edge orientation only fixes the initiator/responder roles).
  std::uint32_t diameter() const { return diameter_; }

  // --- Sampling ------------------------------------------------------------

  // One slot: an ordered pair uniform over the directed edges. The
  // complete path must stay textually identical to UniformScheduler::next
  // (core/scheduler.h) — that equality IS the transparency contract.
  AgentPair sample(Rng& rng) const {
    switch (kind_) {
      case TopologyKind::kComplete: {
        const auto i = static_cast<std::uint32_t>(rng.below(n_));
        auto j = static_cast<std::uint32_t>(rng.below(n_ - 1));
        if (j >= i) ++j;  // uniform over the n-1 agents distinct from i
        return AgentPair{i, j};
      }
      case TopologyKind::kRing: {
        const auto e = static_cast<std::uint32_t>(rng.below(n_));
        return AgentPair{e, e + 1 == n_ ? 0 : e + 1};
      }
      case TopologyKind::kLine: {
        const auto e = rng.below(edge_count_);
        const auto u = static_cast<std::uint32_t>(e >> 1);
        return (e & 1) ? AgentPair{u + 1, u} : AgentPair{u, u + 1};
      }
      case TopologyKind::kStar: {
        const auto e = rng.below(edge_count_);
        const auto leaf = static_cast<std::uint32_t>(1 + (e >> 1));
        return (e & 1) ? AgentPair{leaf, 0} : AgentPair{0, leaf};
      }
      case TopologyKind::kMesh:
      case TopologyKind::kTorus: {
        const auto e = rng.below(edge_count_);
        return grid_edge(e);
      }
      case TopologyKind::kCustom:
        return custom_edges_[rng.below(edge_count_)];
    }
    throw std::logic_error("unreachable topology kind");
  }

  // Materialized directed-edge list, in the sampler's index order (edge k
  // is what sample() returns when its below(edge_count) draw lands on k;
  // the complete topology has no single-draw index and lists pairs in
  // (i, j) lexicographic order). Test/analysis use — O(edges) memory.
  std::vector<AgentPair> edges() const {
    std::vector<AgentPair> out;
    out.reserve(edge_count_);
    switch (kind_) {
      case TopologyKind::kComplete:
        for (std::uint32_t i = 0; i < n_; ++i)
          for (std::uint32_t j = 0; j < n_; ++j)
            if (i != j) out.push_back(AgentPair{i, j});
        break;
      case TopologyKind::kRing:
        for (std::uint32_t e = 0; e < n_; ++e)
          out.push_back(AgentPair{e, e + 1 == n_ ? 0 : e + 1});
        break;
      case TopologyKind::kLine:
      case TopologyKind::kStar:
      case TopologyKind::kMesh:
      case TopologyKind::kTorus:
        for (std::uint64_t e = 0; e < edge_count_; ++e) {
          if (kind_ == TopologyKind::kLine) {
            const auto u = static_cast<std::uint32_t>(e >> 1);
            out.push_back((e & 1) ? AgentPair{u + 1, u} : AgentPair{u, u + 1});
          } else if (kind_ == TopologyKind::kStar) {
            const auto leaf = static_cast<std::uint32_t>(1 + (e >> 1));
            out.push_back((e & 1) ? AgentPair{leaf, 0} : AgentPair{0, leaf});
          } else {
            out.push_back(grid_edge(e));
          }
        }
        break;
      case TopologyKind::kCustom:
        out = custom_edges_;
        break;
    }
    return out;
  }

 private:
  Topology(TopologyKind kind, std::uint32_t n, std::string spec)
      : kind_(kind), n_(n), spec_(std::move(spec)) {
    if (n < 2) throw std::invalid_argument("population size must be >= 2");
  }

  // Shared mesh/torus construction. A torus dimension of size >= 3 closes
  // into a cycle (one extra undirected edge per row/column); sizes 1 and 2
  // keep the mesh edges only — the wrap edge would be a self-loop (size 1)
  // or a duplicate of the existing edge (size 2).
  static Topology grid(TopologyKind kind, std::uint32_t rows,
                       std::uint32_t cols) {
    if (rows == 0 || cols == 0)
      throw std::invalid_argument("mesh/torus dims must be >= 1");
    const std::uint64_t n64 = static_cast<std::uint64_t>(rows) * cols;
    if (n64 > 0xffffffffull)
      throw std::invalid_argument("mesh/torus rows*cols overflows uint32");
    const bool wrap = kind == TopologyKind::kTorus;
    const std::uint32_t h_per_row =
        (wrap && cols >= 3) ? cols : (cols >= 2 ? cols - 1 : 0);
    const std::uint32_t v_per_col =
        (wrap && rows >= 3) ? rows : (rows >= 2 ? rows - 1 : 0);
    const std::uint64_t undirected =
        static_cast<std::uint64_t>(rows) * h_per_row +
        static_cast<std::uint64_t>(cols) * v_per_col;
    if (undirected == 0)
      throw std::invalid_argument("mesh/torus 1x1 has no edges");
    const std::string spec = std::string(to_string(kind)) + ":" +
                             std::to_string(rows) + "x" +
                             std::to_string(cols);
    Topology t(kind, static_cast<std::uint32_t>(n64), spec);
    t.rows_ = rows;
    t.cols_ = cols;
    t.h_per_row_ = h_per_row;
    t.v_per_col_ = v_per_col;
    t.edge_count_ = 2 * undirected;
    const std::uint32_t dr =
        (wrap && rows >= 3) ? rows / 2 : rows - 1;
    const std::uint32_t dc =
        (wrap && cols >= 3) ? cols / 2 : cols - 1;
    t.diameter_ = dr + dc;
    return t;
  }

  // Directed grid edge for sampler index e in [0, edge_count): bit 0 is
  // the direction, the rest indexes undirected edges — horizontal edges
  // (row-major) first, then vertical edges (column-major). A wrapped
  // dimension's per-row/per-column edge k connects offset k to (k+1) mod
  // size, which for the unwrapped count (size-1) never wraps.
  AgentPair grid_edge(std::uint64_t e) const {
    const bool back = (e & 1) != 0;
    std::uint64_t u = e >> 1;
    std::uint32_t a, b;
    const std::uint64_t horizontal =
        static_cast<std::uint64_t>(rows_) * h_per_row_;
    if (u < horizontal) {
      const auto r = static_cast<std::uint32_t>(u / h_per_row_);
      const auto k = static_cast<std::uint32_t>(u % h_per_row_);
      a = r * cols_ + k;
      b = r * cols_ + (k + 1 == cols_ ? 0 : k + 1);
    } else {
      u -= horizontal;
      const auto c = static_cast<std::uint32_t>(u / v_per_col_);
      const auto k = static_cast<std::uint32_t>(u % v_per_col_);
      a = k * cols_ + c;
      b = (k + 1 == rows_ ? 0 : k + 1) * cols_ + c;
    }
    return back ? AgentPair{b, a} : AgentPair{a, b};
  }

  static std::pair<std::uint32_t, std::uint32_t> parse_dims(
      const std::string& spec, std::size_t from) {
    const std::size_t x = spec.find('x', from);
    if (x == std::string::npos || x == from || x + 1 >= spec.size())
      throw std::invalid_argument("topology '" + spec +
                                  "' needs dims in the form RxC");
    auto parse_one = [&](std::size_t lo, std::size_t hi) -> std::uint32_t {
      const std::string tok = spec.substr(lo, hi - lo);
      try {
        std::size_t pos = 0;
        const unsigned long v = std::stoul(tok, &pos);
        if (pos != tok.size() || v == 0 || v > 0xffffffffUL)
          throw std::invalid_argument(tok);
        return static_cast<std::uint32_t>(v);
      } catch (...) {
        throw std::invalid_argument("topology '" + spec +
                                    "' has a malformed dim '" + tok + "'");
      }
    };
    return {parse_one(from, x), parse_one(x + 1, spec.size())};
  }

  static std::vector<AgentPair> load_edge_file(const std::string& path) {
    std::ifstream in(path);
    if (!in)
      throw std::invalid_argument("cannot open custom-topology file '" +
                                  path + "'");
    std::vector<AgentPair> edges;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      const std::size_t hash = line.find('#');
      if (hash != std::string::npos) line.resize(hash);
      std::istringstream ls(line);
      std::uint64_t u, v;
      if (!(ls >> u)) continue;  // blank / comment-only line
      std::string trailing;
      if (!(ls >> v) || (ls >> trailing))
        throw std::invalid_argument(
            "custom-topology file '" + path + "' line " +
            std::to_string(lineno) + ": expected 'u v' (one directed edge)");
      if (u == v)
        throw std::invalid_argument("custom-topology file '" + path +
                                    "' line " + std::to_string(lineno) +
                                    ": self-loop " + std::to_string(u));
      if (u > 0xffffffffull || v > 0xffffffffull)
        throw std::invalid_argument("custom-topology file '" + path +
                                    "' line " + std::to_string(lineno) +
                                    ": agent index overflows uint32");
      edges.push_back(AgentPair{static_cast<std::uint32_t>(u),
                                static_cast<std::uint32_t>(v)});
    }
    if (edges.empty())
      throw std::invalid_argument("custom-topology file '" + path +
                                  "' has no edges");
    return edges;
  }

  static void validate_edge_list(std::uint32_t n,
                                 const std::vector<AgentPair>& edges,
                                 const std::string& label) {
    if (edges.empty())
      throw std::invalid_argument("custom topology '" + label +
                                  "' has no edges");
    std::vector<char> seen_agent(n, 0);
    std::vector<std::uint64_t> keys;
    keys.reserve(edges.size());
    for (const AgentPair& e : edges) {
      if (e.initiator >= n || e.responder >= n)
        throw std::invalid_argument(
            "custom topology '" + label + "' edge (" +
            std::to_string(e.initiator) + ", " +
            std::to_string(e.responder) + ") is out of range for n = " +
            std::to_string(n));
      if (e.initiator == e.responder)
        throw std::invalid_argument("custom topology '" + label +
                                    "' has a self-loop at " +
                                    std::to_string(e.initiator));
      seen_agent[e.initiator] = seen_agent[e.responder] = 1;
      keys.push_back((static_cast<std::uint64_t>(e.initiator) << 32) |
                     e.responder);
    }
    std::sort(keys.begin(), keys.end());
    for (std::size_t i = 1; i < keys.size(); ++i)
      if (keys[i] == keys[i - 1])
        throw std::invalid_argument(
            "custom topology '" + label + "' has a duplicate edge (" +
            std::to_string(keys[i] >> 32) + ", " +
            std::to_string(keys[i] & 0xffffffffull) +
            ") — duplicates would skew uniform-edge sampling");
    for (std::uint32_t a = 0; a < n; ++a)
      if (!seen_agent[a])
        throw std::invalid_argument("custom topology '" + label +
                                    "' leaves agent " + std::to_string(a) +
                                    " isolated (it could never interact)");
    // Weak connectivity: an interaction updates both endpoints, so the
    // undirected support must be one component or part of the population
    // can never influence the rest.
    std::vector<std::vector<std::uint32_t>> adj(n);
    for (const AgentPair& e : edges) {
      adj[e.initiator].push_back(e.responder);
      adj[e.responder].push_back(e.initiator);
    }
    std::vector<char> visited(n, 0);
    std::queue<std::uint32_t> frontier;
    frontier.push(0);
    visited[0] = 1;
    std::uint32_t reached = 1;
    while (!frontier.empty()) {
      const std::uint32_t u = frontier.front();
      frontier.pop();
      for (std::uint32_t v : adj[u])
        if (!visited[v]) {
          visited[v] = 1;
          ++reached;
          frontier.push(v);
        }
    }
    if (reached != n)
      throw std::invalid_argument("custom topology '" + label +
                                  "' is disconnected (" +
                                  std::to_string(n - reached) +
                                  " agent(s) unreachable from agent 0)");
  }

  // All-pairs undirected eccentricity via BFS from every node — custom
  // graphs are small by construction (they arrive as files).
  static std::uint32_t undirected_diameter(
      std::uint32_t n, const std::vector<AgentPair>& edges) {
    std::vector<std::vector<std::uint32_t>> adj(n);
    for (const AgentPair& e : edges) {
      adj[e.initiator].push_back(e.responder);
      adj[e.responder].push_back(e.initiator);
    }
    std::uint32_t diameter = 0;
    std::vector<std::uint32_t> dist(n);
    for (std::uint32_t s = 0; s < n; ++s) {
      std::fill(dist.begin(), dist.end(), 0xffffffffu);
      std::queue<std::uint32_t> frontier;
      dist[s] = 0;
      frontier.push(s);
      while (!frontier.empty()) {
        const std::uint32_t u = frontier.front();
        frontier.pop();
        for (std::uint32_t v : adj[u])
          if (dist[v] == 0xffffffffu) {
            dist[v] = dist[u] + 1;
            if (dist[v] > diameter) diameter = dist[v];
            frontier.push(v);
          }
      }
    }
    return diameter;
  }

  TopologyKind kind_;
  std::uint32_t n_;
  std::string spec_;
  std::uint64_t edge_count_ = 0;
  std::uint32_t diameter_ = 0;
  std::uint32_t rows_ = 0, cols_ = 0;        // grid kinds
  std::uint32_t h_per_row_ = 0, v_per_col_ = 0;
  std::vector<AgentPair> custom_edges_;      // custom kind only
};

}  // namespace ppsim
