// The uniform random pairwise scheduler of the population-protocol model.
//
// At each discrete step an ordered pair of distinct agents (initiator,
// responder) is chosen uniformly at random from the n(n-1) possibilities
// (complete communication graph, Section 2 of the paper).
#pragma once

#include <cstdint>
#include <stdexcept>

#include "core/rng.h"

namespace ppsim {

struct AgentPair {
  std::uint32_t initiator;
  std::uint32_t responder;
};

class UniformScheduler {
 public:
  explicit UniformScheduler(std::uint32_t n) : n_(n) {
    if (n < 2) throw std::invalid_argument("population size must be >= 2");
  }

  std::uint32_t population_size() const { return n_; }

  AgentPair next(Rng& rng) const {
    const auto i = static_cast<std::uint32_t>(rng.below(n_));
    auto j = static_cast<std::uint32_t>(rng.below(n_ - 1));
    if (j >= i) ++j;  // uniform over the n-1 agents distinct from i
    return AgentPair{i, j};
  }

 private:
  std::uint32_t n_;
};

}  // namespace ppsim
