// Fault injection: the unreliable-network scheduler layer.
//
// The paper's self-stabilization guarantee covers arbitrary initial
// *states* under the uniform random scheduler; whether a protocol also
// survives an unreliable *network* — lost messages, one-way radio links,
// agents crashing and rebooting — is an empirical question (ROADMAP item
// 2). This header defines the fault model once, as three composable knobs
// on the interaction slot, so every engine implements the same law and
// cross-engine equivalence stays checkable:
//
//   drop    - each interaction is lost with probability `drop`,
//             independently: neither agent changes state, no counters are
//             recorded, the protocol's transition never runs. A dropped
//             pair is indistinguishable from a null pair.
//   oneway  - each non-dropped interaction is delivered one-way with
//             probability `oneway`: the full transition is computed, the
//             initiator applies its new state, the responder's reply is
//             lost in transit and it keeps its old state. Counters are
//             recorded in full (the *initiator* observed the interaction
//             happen; what failed is the reply delivery) — this is the
//             documented convention, chosen so observable detection
//             statistics stay comparable across fault rates.
//   churn   - agents crash at rate `churn` per unit of parallel time:
//             at the END of each interaction slot, independently with
//             probability q = churn / n, one uniformly random agent is
//             reset to the protocol's churn_state() (a freshly booted
//             agent). Under the anonymous fixed-n population model a
//             crash-reset is identical to crash-remove + join of a fresh
//             node, so the population size is always conserved exactly.
//
// All fault draws come from the engine's own seeded Rng stream — results
// stay a pure function of (seed, FaultSpec), and an all-zero FaultSpec
// consumes zero extra randomness, so the undecorated engine is reproduced
// bit for bit.
//
// Per-slot law (identical on every engine; the count engines compile it
// exactly — see core/batch_simulation.h and core/sharded_simulation.h):
//   1. an ordered pair is scheduled uniformly;
//   2. with prob `drop` the interaction is lost, else with prob `oneway`
//      it is delivered one-way, else it is delivered in full;
//   3. with prob q = churn / n one uniformly random agent crashes.
// The crash times are materialized as a geometric countdown over slots
// (memoryless, so truncating a count-engine batch at the countdown and
// redrawing is exact — the same argument the sharded engine already uses
// for its per-round geometric waits).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/protocol.h"
#include "core/rng.h"
#include "core/scheduler.h"
#include "core/topology.h"

namespace ppsim {

// Protocols that can absorb churn: churn_state() is the state of a freshly
// booted (crashed-and-rejoined) agent. Kept separate from the Protocol
// concept so churn on a protocol without a boot state is a hard error
// instead of a silent guess.
template <class P>
concept ChurnableProtocol = Protocol<P> && requires(const P p) {
  { p.churn_state() } -> std::same_as<typename P::State>;
};

// The three fault knobs. Plumbed through ScenarioSpec as
// fault.drop= / fault.oneway= / fault.churn=; every ScenarioResult whose
// spec had any knob non-zero is stamped `faulted: true` in the BENCH
// envelope (the approximate/abstracted honesty pattern — but unlike those
// tiers, faulted records keep the full bit-determinism contract: seeded
// faults reproduce exactly, so they stay under bench_compare --strict).
struct FaultSpec {
  double drop = 0.0;    // P(interaction lost), in [0, 1]
  double oneway = 0.0;  // P(non-dropped interaction is one-way), in [0, 1]
  double churn = 0.0;   // crashes per unit parallel time, in [0, n]

  bool active() const { return drop > 0.0 || oneway > 0.0 || churn > 0.0; }

  // Range checks that do not need n (the churn <= n upper bound is
  // checked by the engines, which know the population).
  void validate() const {
    if (!(drop >= 0.0 && drop <= 1.0))
      throw std::invalid_argument("fault.drop must be in [0, 1]");
    if (!(oneway >= 0.0 && oneway <= 1.0))
      throw std::invalid_argument("fault.oneway must be in [0, 1]");
    if (!(churn >= 0.0))
      throw std::invalid_argument("fault.churn must be >= 0");
  }

  // Per-slot crash probability for a population of n agents.
  double crash_probability(std::uint32_t n) const {
    validate();
    const double q = churn / static_cast<double>(n);
    if (q > 1.0)
      throw std::invalid_argument(
          "fault.churn exceeds n (more than one crash per slot)");
    return q;
  }
};

// Agent-array engine with the fault layer woven into the pair step: the
// ground truth the count-engine fault compilations are validated against.
// Satisfies AgentArrayEngine; on top of the Simulation<P> contract it
// exposes last_crashed() so rank trackers can follow churn (a crash
// touches an agent outside the returned pair).
template <Protocol P>
class FaultySimulation {
 public:
  using State = typename P::State;
  using Counters = ProtocolCounters<P>;

  FaultySimulation(P protocol, std::vector<State> initial, std::uint64_t seed,
                   const FaultSpec& faults)
      : FaultySimulation(std::move(protocol), std::move(initial), seed,
                         faults, Topology()) {}

  // Interaction-graph variant: pairs come from the topology's uniform-edge
  // sampler (core/topology.h). The fault law composes unchanged — drop /
  // oneway / churn act on the scheduled slot whatever graph produced it.
  FaultySimulation(P protocol, std::vector<State> initial, std::uint64_t seed,
                   const FaultSpec& faults, Topology topology)
      : protocol_(std::move(protocol)),
        states_(std::move(initial)),
        topology_(topology.population_size() == 0
                      ? Topology::complete(protocol_.population_size())
                      : std::move(topology)),
        rng_(seed),
        spec_(faults) {
    if (states_.size() != protocol_.population_size())
      throw std::invalid_argument(
          "initial configuration size != population size");
    if (topology_.population_size() != protocol_.population_size())
      throw std::invalid_argument(
          "topology population size != protocol population size");
    const double q = spec_.crash_probability(protocol_.population_size());
    if (spec_.churn > 0.0) {
      if constexpr (!ChurnableProtocol<P>)
        throw std::invalid_argument(
            "fault.churn needs a protocol with a churn_state()");
      crash_q_ = q;
      crash_countdown_ = sample_geometric(rng_, crash_q_);
    }
  }

  std::uint32_t population_size() const {
    return protocol_.population_size();
  }
  const std::vector<State>& states() const { return states_; }
  P& protocol() { return protocol_; }
  const P& protocol() const { return protocol_; }
  const Counters& counters() const { return counters_; }
  const FaultSpec& faults() const { return spec_; }
  const Topology& topology() const { return topology_; }

  std::uint64_t interactions() const { return interactions_; }
  double parallel_time() const {
    return static_cast<double>(interactions_) /
           static_cast<double>(population_size());
  }

  // Agent crashed by the last step's end-of-slot churn draw, or -1. At
  // most one agent can crash per slot (the countdown fires once).
  std::int64_t last_crashed() const { return last_crashed_; }

  std::vector<std::uint64_t> state_counts() const
    requires EnumerableProtocol<P>
  {
    std::vector<std::uint64_t> counts(protocol_.num_states(), 0);
    for (const State& s : states_) ++counts[protocol_.encode(s)];
    return counts;
  }

  // One slot of the per-slot law. Every fault draw is guarded by its knob,
  // so an all-zero FaultSpec replays the undecorated Simulation<P> stream
  // bit for bit.
  AgentPair step() {
    const AgentPair pair = topology_.sample(rng_);
    const bool dropped = spec_.drop > 0.0 && rng_.unit() < spec_.drop;
    if (!dropped) {
      if (spec_.oneway > 0.0 && rng_.unit() < spec_.oneway) {
        State a = states_[pair.initiator];
        State b = states_[pair.responder];
        invoke_interact(protocol_, a, b, rng_, counters_);
        states_[pair.initiator] = a;  // the responder's reply is lost
      } else {
        invoke_interact(protocol_, states_[pair.initiator],
                        states_[pair.responder], rng_, counters_);
      }
    }
    ++interactions_;
    last_crashed_ = -1;
    if (crash_countdown_ > 0 && --crash_countdown_ == 0) {
      const auto victim =
          static_cast<std::uint32_t>(rng_.below(population_size()));
      if constexpr (ChurnableProtocol<P>)
        states_[victim] = protocol_.churn_state();
      last_crashed_ = victim;
      crash_countdown_ = sample_geometric(rng_, crash_q_);
    }
    return pair;
  }

  void run(std::uint64_t count) {
    for (std::uint64_t k = 0; k < count; ++k) step();
  }

  template <class Done>
  bool run_until(Done&& done, std::uint64_t max_interactions) {
    while (interactions_ < max_interactions) {
      step();
      if (done(*this)) return true;
    }
    return false;
  }

 private:
  P protocol_;
  std::vector<State> states_;
  Topology topology_;
  Rng rng_;
  FaultSpec spec_;
  double crash_q_ = 0.0;
  std::uint64_t crash_countdown_ = 0;  // slots until the next crash; 0 = never
  std::int64_t last_crashed_ = -1;
  std::uint64_t interactions_ = 0;
  [[no_unique_address]] Counters counters_{};
};

// Engines that inject churn outside the scheduled pair (FaultySimulation):
// trackers following an agent-array engine must also re-read the crashed
// agent after each step.
template <class E>
concept ChurnReportingEngine = requires(const E e) {
  { e.last_crashed() } -> std::convertible_to<std::int64_t>;
};

}  // namespace ppsim
