// The classic "fratricide" initialized leader election L,L -> L,F.
//
// It is the slow leader election Optimal-Silent-SSR runs during the dormant
// phase of a reset (Protocol 3 line 4, Lemma 4.2), and the stochastic
// dominator used in the Theta(n^2) upper bound of Theorem 2.4. Expected
// interactions from all-L: sum_{i=2..n} n(n-1)/(i(i-1)) = n(n-1)(1 - 1/n).
//
// Two simulators: a direct one, and an exact-distribution accelerated one
// that jumps over null interactions with geometric skips (only L-L meetings
// change anything).
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/rng.h"
#include "core/scheduler.h"

namespace ppsim {

struct FratricideResult {
  std::uint64_t interactions = 0;
  double parallel_time = 0.0;
};

inline FratricideResult run_fratricide_direct(std::uint32_t n,
                                              std::uint64_t seed,
                                              std::uint32_t initial_leaders) {
  if (initial_leaders < 1 || initial_leaders > n)
    throw std::invalid_argument("initial_leaders out of range");
  Rng rng(seed);
  UniformScheduler sched(n);
  std::vector<char> leader(n, 0);
  for (std::uint32_t i = 0; i < initial_leaders; ++i) leader[i] = 1;
  std::uint32_t count = initial_leaders;
  std::uint64_t t = 0;
  while (count > 1) {
    const AgentPair p = sched.next(rng);
    ++t;
    if (leader[p.initiator] && leader[p.responder]) {
      leader[p.responder] = 0;  // initiator survives
      --count;
    }
  }
  return FratricideResult{t, static_cast<double>(t) / n};
}

// sample_geometric lives in core/rng.h (it is shared by every jump-chain
// accelerator, not specific to the fratricide process).

// Accelerated fratricide: from i leaders, the next effective interaction is
// an L-L meeting, which happens each step with probability
// i(i-1) / (n(n-1)); the wait is geometric.
inline FratricideResult run_fratricide_fast(std::uint32_t n,
                                            std::uint64_t seed,
                                            std::uint32_t initial_leaders) {
  if (initial_leaders < 1 || initial_leaders > n)
    throw std::invalid_argument("initial_leaders out of range");
  Rng rng(seed);
  const double pairs =
      static_cast<double>(n) * static_cast<double>(n - 1);
  std::uint64_t t = 0;
  for (std::uint32_t i = initial_leaders; i > 1; --i) {
    const double p = static_cast<double>(i) *
                     static_cast<double>(i - 1) / pairs;
    t += sample_geometric(rng, p);
  }
  return FratricideResult{t, static_cast<double>(t) / n};
}

// Exact expected interaction count from all-n leaders (Lemma 4.2).
inline double fratricide_expected_interactions(std::uint32_t n) {
  return static_cast<double>(n) * static_cast<double>(n - 1) *
         (1.0 - 1.0 / static_cast<double>(n));
}

}  // namespace ppsim
