// Uniform random recursive trees from epidemic infections (Lemma 2.11).
//
// Viewing the standard epidemic as generating a tree (each agent's parent is
// the agent that infected it) yields a uniform random recursive tree; its
// height is e*ln(n) in expectation with exponential tails (Drmota, [32,33]).
// This is the structural fact behind the H = Theta(log n) choice in
// Sublinear-Time-SSR: collision information travels along epidemic paths of
// length O(log n).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "core/scheduler.h"

namespace ppsim {

struct EpidemicTreeResult {
  std::uint32_t height = 0;        // depth of the deepest infected agent
  std::uint32_t last_agent_depth = 0;  // depth of the last agent infected
  std::uint64_t interactions = 0;
};

// Runs one epidemic from agent 0, recording infection parents, and returns
// the height of the infection tree.
inline EpidemicTreeResult run_epidemic_tree(std::uint32_t n,
                                            std::uint64_t seed) {
  Rng rng(seed);
  UniformScheduler sched(n);
  std::vector<std::uint32_t> depth(n, 0);
  std::vector<char> infected(n, 0);
  infected[0] = 1;
  std::uint32_t count = 1;
  std::uint64_t t = 0;
  EpidemicTreeResult out;
  std::uint32_t last = 0;
  while (count < n) {
    const AgentPair p = sched.next(rng);
    ++t;
    const bool ai = infected[p.initiator];
    const bool bi = infected[p.responder];
    if (ai == bi) continue;  // both or neither: no new infection
    const std::uint32_t src = ai ? p.initiator : p.responder;
    const std::uint32_t dst = ai ? p.responder : p.initiator;
    infected[dst] = 1;
    depth[dst] = depth[src] + 1;
    out.height = std::max(out.height, depth[dst]);
    last = dst;
    ++count;
  }
  out.last_agent_depth = depth[last];
  out.interactions = t;
  return out;
}

// Direct sampler of the random recursive tree (vertex i attaches to a uniform
// vertex in {0..i-1}); used to cross-check the epidemic-tree construction.
inline std::uint32_t sample_recursive_tree_height(std::uint32_t n,
                                                  std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint32_t> depth(n, 0);
  std::uint32_t h = 0;
  for (std::uint32_t i = 1; i < n; ++i) {
    const auto parent = static_cast<std::uint32_t>(rng.below(i));
    depth[i] = depth[parent] + 1;
    h = std::max(h, depth[i]);
  }
  return h;
}

}  // namespace ppsim
