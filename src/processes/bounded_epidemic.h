// The bounded epidemic process (Section 2.1, Lemmas 2.10 and 2.11).
//
// A source agent s has level 0, all others level infinity; on an interaction
// both agents update level <- min(own level, other level + 1). tau_k is the
// first (parallel) time a fixed target agent reaches level <= k, i.e. it has
// heard from the source through an interaction chain of length <= k.
//
// Lemma 2.10: E[tau_k] <= k * n^{1/k} for constant k.
// Lemma 2.11: tau_{3 log2 n} <= 3 ln n whp (epidemic trees are shallow).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/rng.h"
#include "core/scheduler.h"

namespace ppsim {

struct BoundedEpidemicResult {
  // tau_by_level[k] = parallel time when the target first had level <= k
  // (index 0 unused except for the source itself). Levels never reached
  // within the horizon are left at -1.
  std::vector<double> tau_by_level;
  std::uint64_t interactions = 0;
};

// Runs until the target's level drops to <= stop_level (and records the
// first-hit times of every level above it on the way down).
inline BoundedEpidemicResult run_bounded_epidemic(std::uint32_t n,
                                                  std::uint32_t max_level,
                                                  std::uint32_t stop_level,
                                                  std::uint64_t seed) {
  if (stop_level < 1 || stop_level > max_level)
    throw std::invalid_argument("stop_level out of range");
  if (n < 2) throw std::invalid_argument("need n >= 2");
  constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();
  Rng rng(seed);
  UniformScheduler sched(n);
  std::vector<std::uint32_t> level(n, kInf);
  const std::uint32_t source = 0;
  const std::uint32_t target = n - 1;
  level[source] = 0;

  BoundedEpidemicResult out;
  out.tau_by_level.assign(max_level + 1, -1.0);
  std::uint64_t t = 0;
  std::uint32_t target_level = kInf;
  while (target_level > stop_level) {
    const AgentPair p = sched.next(rng);
    ++t;
    auto& li = level[p.initiator];
    auto& lj = level[p.responder];
    const std::uint32_t mi = lj == kInf ? li : std::min(li, lj + 1);
    const std::uint32_t mj = li == kInf ? lj : std::min(lj, li + 1);
    li = mi;
    lj = mj;
    if (level[target] < target_level) {
      const double ptime = static_cast<double>(t) / n;
      for (std::uint32_t k = level[target];
           k < target_level && k <= max_level; ++k)
        if (out.tau_by_level[k] < 0) out.tau_by_level[k] = ptime;
      target_level = level[target];
    }
  }
  out.interactions = t;
  return out;
}

}  // namespace ppsim
