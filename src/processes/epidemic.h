// The epidemic processes (Section 2.1).
//
// Two-way: agents hold infected ∈ {true,false} and update
//   a.infected, b.infected <- a.infected OR b.infected.
// T_n is the number of interactions until everyone is infected; Lemma 2.7 /
// Corollary 2.8 give E[T_n] = (n-1) * H_{n-1} ~ n ln n and
// P[T_n > 3 n ln n] < 1/n^2.
//
// One-way: only the initiator transmits (b.infected <- b.infected OR
// a.infected), the variant the paper's propagating-variable arguments
// (Observation 3.1) are phrased over. OneWayEpidemic below is a proper
// Protocol — enumerable (2 states) and declaring the unkeyed passive
// structure (passive = infected: two infected agents never change), so the
// count-based batched backend can geometric-skip the infected-infected
// stretches that dominate endgame and residual-susceptibility workloads at
// scale (bench_propagate_reset exercises it at n = 10^6+).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/rng.h"
#include "core/scheduler.h"

namespace ppsim {

class OneWayEpidemic {
 public:
  struct State {
    bool infected = false;
  };

  // interact() never reads the Rng.
  static constexpr bool kDeterministicInteract = true;
  // Unkeyed passive structure: two infected agents are always null. (This
  // is a sufficient condition only — pairs with a susceptible initiator are
  // also null and are simulated individually, which is exact either way.)
  static constexpr bool kPassivePairsAreNull = true;

  explicit OneWayEpidemic(std::uint32_t n) : n_(n) {
    if (n < 2) throw std::invalid_argument("population size must be >= 2");
  }

  std::uint32_t population_size() const { return n_; }

  void interact(State& initiator, State& responder, Rng&) const {
    if (initiator.infected) responder.infected = true;
  }

  // EnumerableProtocol: Q = {susceptible = 0, infected = 1}.
  std::uint32_t num_states() const { return 2; }
  std::uint32_t encode(const State& s) const { return s.infected ? 1 : 0; }
  State decode(std::uint32_t code) const { return State{code != 0}; }

  bool is_null_pair(const State& a, const State& b) const {
    return !a.infected || b.infected;
  }
  bool is_passive(const State& s) const { return s.infected; }

 private:
  std::uint32_t n_;
};

// Count vector for a one-way epidemic with `infected` infected agents.
inline std::vector<std::uint64_t> one_way_epidemic_counts(
    std::uint32_t n, std::uint64_t infected) {
  if (infected > n) throw std::invalid_argument("infected > population");
  return {n - infected, infected};
}

struct EpidemicResult {
  std::uint64_t interactions = 0;
  double parallel_time = 0.0;
};

// Simulates one epidemic to completion, starting from `initially_infected`
// infected agents (default 1).
inline EpidemicResult run_epidemic(std::uint32_t n, std::uint64_t seed,
                                   std::uint32_t initially_infected = 1) {
  if (initially_infected == 0 || initially_infected > n)
    throw std::invalid_argument("initially_infected out of range");
  Rng rng(seed);
  UniformScheduler sched(n);
  std::vector<char> infected(n, 0);
  for (std::uint32_t i = 0; i < initially_infected; ++i) infected[i] = 1;
  std::uint32_t count = initially_infected;
  std::uint64_t t = 0;
  while (count < n) {
    const AgentPair p = sched.next(rng);
    ++t;
    const bool any = infected[p.initiator] || infected[p.responder];
    if (any) {
      if (!infected[p.initiator]) {
        infected[p.initiator] = 1;
        ++count;
      }
      if (!infected[p.responder]) {
        infected[p.responder] = 1;
        ++count;
      }
    }
  }
  return EpidemicResult{t, static_cast<double>(t) / n};
}

// Exact expectation from Lemma 2.7: E[T_n] = (n-1) * H_{n-1}.
inline double epidemic_expected_interactions(std::uint32_t n) {
  double h = 0.0;
  for (std::uint32_t i = 1; i + 1 <= n; ++i) h += 1.0 / i;
  return static_cast<double>(n - 1) * h;
}

}  // namespace ppsim
