// The two-way epidemic process (Section 2.1).
//
// Agents hold infected ∈ {true,false} and update
//   a.infected, b.infected <- a.infected OR b.infected.
// T_n is the number of interactions until everyone is infected; Lemma 2.7 /
// Corollary 2.8 give E[T_n] = (n-1) * H_{n-1} ~ n ln n and
// P[T_n > 3 n ln n] < 1/n^2.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/rng.h"
#include "core/scheduler.h"

namespace ppsim {

struct EpidemicResult {
  std::uint64_t interactions = 0;
  double parallel_time = 0.0;
};

// Simulates one epidemic to completion, starting from `initially_infected`
// infected agents (default 1).
inline EpidemicResult run_epidemic(std::uint32_t n, std::uint64_t seed,
                                   std::uint32_t initially_infected = 1) {
  if (initially_infected == 0 || initially_infected > n)
    throw std::invalid_argument("initially_infected out of range");
  Rng rng(seed);
  UniformScheduler sched(n);
  std::vector<char> infected(n, 0);
  for (std::uint32_t i = 0; i < initially_infected; ++i) infected[i] = 1;
  std::uint32_t count = initially_infected;
  std::uint64_t t = 0;
  while (count < n) {
    const AgentPair p = sched.next(rng);
    ++t;
    const bool any = infected[p.initiator] || infected[p.responder];
    if (any) {
      if (!infected[p.initiator]) {
        infected[p.initiator] = 1;
        ++count;
      }
      if (!infected[p.responder]) {
        infected[p.responder] = 1;
        ++count;
      }
    }
  }
  return EpidemicResult{t, static_cast<double>(t) / n};
}

// Exact expectation from Lemma 2.7: E[T_n] = (n-1) * H_{n-1}.
inline double epidemic_expected_interactions(std::uint32_t n) {
  double h = 0.0;
  for (std::uint32_t i = 1; i + 1 <= n; ++i) h += 1.0 / i;
  return static_cast<double>(n - 1) * h;
}

}  // namespace ppsim
