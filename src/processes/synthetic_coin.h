// Synthetic-coin derandomization (Section 6).
//
// Population protocols are formally deterministic; randomness is extracted
// from the scheduler. Each agent alternates between roles Alg and Flip on
// every interaction ("time multiplexing"). When an agent in role Alg meets a
// partner in role Flip, it harvests one bit: heads if the Alg agent was the
// initiator, tails if it was the responder. Because the scheduler picks the
// ordered pair uniformly, the bit is exactly unbiased and independent of both
// agents' states. An agent needing a bit waits an expected 4 interactions
// (the partner is in Flip w.p. ~1/2 and the agent must be in Alg, w.p. 1/2).
#pragma once

#include <cstdint>
#include <optional>

namespace ppsim {

// Per-agent coin state: a single phase bit, toggled on *every* interaction.
struct CoinPhase {
  bool flip_phase = false;  // false = Alg, true = Flip
};

// Advances both agents' phases and, if the configuration (Alg meets Flip)
// yields a harvestable bit for either agent, reports it.
//
// Returned bits: harvested_initiator is set iff the initiator was in Alg and
// the responder in Flip (the initiator's bit is heads=true); symmetric for
// the responder (its bit is tails=false when it is in Alg and the initiator
// in Flip, because from its perspective it was the responder).
struct CoinOutcome {
  std::optional<bool> initiator_bit;
  std::optional<bool> responder_bit;
};

inline CoinOutcome synthetic_coin_step(CoinPhase& initiator,
                                       CoinPhase& responder) {
  CoinOutcome out;
  const bool i_alg = !initiator.flip_phase;
  const bool r_alg = !responder.flip_phase;
  if (i_alg && !r_alg) out.initiator_bit = true;   // Alg initiated: heads
  if (r_alg && !i_alg) out.responder_bit = false;  // Alg responded: tails
  initiator.flip_phase = !initiator.flip_phase;
  responder.flip_phase = !responder.flip_phase;
  return out;
}

}  // namespace ppsim
