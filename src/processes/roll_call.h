// The roll call process (Section 2.1, Lemma 2.9).
//
// Every agent starts with a roster containing only its own ID; interactions
// take set unions. R_n is the number of interactions until every agent knows
// all n IDs. Lemma 2.9: E[R_n] ~ 1.5 n ln n and P[R_n > 3 n ln n] < 1/n.
//
// Rosters are bitsets (one bit per agent ID), so a union is a word-wise OR
// and completion is tracked by an incremental popcount.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "core/scheduler.h"

namespace ppsim {

struct RollCallResult {
  std::uint64_t interactions = 0;
  double parallel_time = 0.0;
};

namespace detail {

class BitRoster {
 public:
  BitRoster(std::uint32_t n, std::uint32_t self)
      : words_((n + 63) / 64, 0), popcount_(1) {
    words_[self / 64] |= (1ULL << (self % 64));
  }

  // ORs `other` into this; returns the updated popcount.
  std::uint32_t merge_from(const BitRoster& other) {
    std::uint32_t pc = 0;
    for (std::size_t w = 0; w < words_.size(); ++w) {
      words_[w] |= other.words_[w];
      pc += static_cast<std::uint32_t>(std::popcount(words_[w]));
    }
    popcount_ = pc;
    return pc;
  }

  std::uint32_t popcount() const { return popcount_; }
  const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  std::vector<std::uint64_t> words_;
  std::uint32_t popcount_;
};

}  // namespace detail

inline RollCallResult run_roll_call(std::uint32_t n, std::uint64_t seed) {
  Rng rng(seed);
  UniformScheduler sched(n);
  std::vector<detail::BitRoster> rosters;
  rosters.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) rosters.emplace_back(n, i);
  std::uint32_t complete = 0;  // agents whose roster has all n IDs
  std::uint64_t t = 0;
  while (complete < n) {
    const AgentPair p = sched.next(rng);
    ++t;
    auto& a = rosters[p.initiator];
    auto& b = rosters[p.responder];
    const std::uint32_t before_a = a.popcount();
    const std::uint32_t before_b = b.popcount();
    if (before_a == n && before_b == n) continue;
    // Union both ways (two-way exchange).
    detail::BitRoster merged = a;
    merged.merge_from(b);
    a = merged;
    b = merged;
    if (before_a < n && a.popcount() == n) ++complete;
    if (before_b < n && b.popcount() == n) ++complete;
  }
  return RollCallResult{t, static_cast<double>(t) / n};
}

}  // namespace ppsim
