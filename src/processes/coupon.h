// Coupon-collector process over scheduled pairs (Lemma 2.9's lower-bound
// ingredient): the number of interactions until every agent has interacted
// at least once. Two agents are "collected" per step, so the expectation is
// ~ (1/2) n ln n.
#pragma once

#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "core/scheduler.h"

namespace ppsim {

struct CouponResult {
  std::uint64_t interactions = 0;
  double parallel_time = 0.0;
};

inline CouponResult run_pair_coupon_collector(std::uint32_t n,
                                              std::uint64_t seed) {
  Rng rng(seed);
  UniformScheduler sched(n);
  std::vector<char> seen(n, 0);
  std::uint32_t count = 0;
  std::uint64_t t = 0;
  while (count < n) {
    const AgentPair p = sched.next(rng);
    ++t;
    if (!seen[p.initiator]) {
      seen[p.initiator] = 1;
      ++count;
    }
    if (!seen[p.responder]) {
      seen[p.responder] = 1;
      ++count;
    }
  }
  return CouponResult{t, static_cast<double>(t) / n};
}

}  // namespace ppsim
