// Adversarial initial conditions for the directed-ring SS-LE protocol.
//
// Self-stabilization on the ring quantifies over every assignment of
// (leader, dist, bullet, shield) to every position — and on a ring,
// *position* is part of the configuration, so the agent-array form is the
// primary one (the count form, used by clique engines and the round-trip
// tests, is its encoding and deliberately forgets placement).
#pragma once

#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "init/initial_condition.h"
#include "protocols/ring_ssle.h"

namespace ppsim {

inline const InitialConditionSet<RingSSLE>& ring_ssle_inits() {
  using P = RingSSLE;
  // Every generator is agents-first; the count form encodes the same
  // configuration (same Rng draws by construction: it is the same call).
  auto counts_of = [](const P& p,
                      std::vector<P::State> agents) {
    std::vector<std::uint64_t> counts(p.num_states(), 0);
    for (const P::State& s : agents) ++counts[p.encode(s)];
    return counts;
  };
  static const InitialConditionSet<P> set = [counts_of] {
    InitialConditionSet<P> s;
    auto uniform_random = [](const P& p, std::uint64_t seed) {
      Rng rng(seed);
      const std::uint32_t n = p.population_size();
      std::vector<P::State> init(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        init[i].leader = rng.below(2) != 0;
        init[i].dist = static_cast<std::uint32_t>(rng.below(p.cap() + 1));
        init[i].bullet = rng.below(2) != 0;
        init[i].shield = rng.below(2) != 0;
      }
      return init;
    };
    s.add({"uniform-random",
           "every field of every agent uniformly random (junk leaders, "
           "bullets, shields, distances)",
           uniform_random,
           [counts_of, uniform_random](const P& p, std::uint64_t seed) {
             return counts_of(p, uniform_random(p, seed));
           }});
    // One unshielded leader at position 0, followers carrying their true
    // distances: the converged configuration mid-cycle (the survivor is
    // about to re-fire). Exactly one active edge at the start and O(1)
    // forever — the compressed ring path's showcase regime.
    auto coherent = [](const P& p, std::uint64_t) {
      const std::uint32_t n = p.population_size();
      std::vector<P::State> init(n);
      init[0].leader = true;
      for (std::uint32_t i = 1; i < n; ++i) init[i].dist = i;
      return init;
    };
    s.add({"coherent",
           "one unshielded leader at position 0, followers at their true "
           "distances, no bullets",
           coherent,
           [counts_of, coherent](const P& p, std::uint64_t seed) {
             return counts_of(p, coherent(p, seed));
           }});
    auto many_leaders = [](const P& p, std::uint64_t) {
      std::vector<P::State> init(p.population_size());
      for (auto& a : init) a.leader = true;
      return init;
    };
    s.add({"many-leaders", "every agent an unshielded leader",
           many_leaders,
           [counts_of, many_leaders](const P& p, std::uint64_t seed) {
             return counts_of(p, many_leaders(p, seed));
           }});
    // No leader anywhere, every agent carrying a stale bullet and a junk
    // shield: exercises both recovery mechanisms at once (bullet
    // depletion + distance-timeout promotion).
    auto stale_bullets = [](const P& p, std::uint64_t) {
      const std::uint32_t n = p.population_size();
      std::vector<P::State> init(n);
      for (std::uint32_t i = 0; i < n; ++i) {
        init[i].dist = i % (p.cap() + 1);
        init[i].bullet = true;
        init[i].shield = true;
      }
      return init;
    };
    s.add({"stale-bullets",
           "no leaders, every agent holding a stale bullet and shield",
           stale_bullets,
           [counts_of, stale_bullets](const P& p, std::uint64_t seed) {
             return counts_of(p, stale_bullets(p, seed));
           }});
    // Two coherent half-ring domains: the minimal elimination duel.
    auto two_leaders = [](const P& p, std::uint64_t) {
      const std::uint32_t n = p.population_size();
      const std::uint32_t half = n / 2;
      std::vector<P::State> init(n);
      init[0].leader = true;
      init[half].leader = true;
      for (std::uint32_t i = 1; i < half; ++i) init[i].dist = i;
      for (std::uint32_t i = half + 1; i < n; ++i) init[i].dist = i - half;
      return init;
    };
    s.add({"two-leaders",
           "unshielded leaders at positions 0 and n/2, coherent domains",
           two_leaders,
           [counts_of, two_leaders](const P& p, std::uint64_t seed) {
             return counts_of(p, two_leaders(p, seed));
           }});
    return s;
  }();
  return set;
}

}  // namespace ppsim
