// Adversarial initial conditions for Sublinear-Time-SSR (Protocols 5-8).
//
// The SlAdversary enum + free functions are the historical API (moved here
// from analysis/adversary.h); sublinear_inits() wraps them as the named
// InitialConditionSet the Scenario API dispatches on. All generators are
// agent-array only: the protocol's quasi-exponential state space is not
// enumerable, so there is no count form.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "core/rng.h"
#include "init/initial_condition.h"
#include "protocols/sublinear.h"

namespace ppsim {

enum class SlAdversary {
  kUniformRandom,    // random names/rosters/trees/roles (valid states)
  kCorrectRanked,    // unique names, full rosters, lex ranks, bare trees
  kDuplicateNames,   // two agents share a name (the Lemma 5.6 workload)
  kGhostNames,       // unique names, a ghost entry planted in rosters
  kPoisonedTrees,    // unique names + fabricated histories (Lemma 5.5)
  kMidReset,         // everyone in a random Resetting state
  kPostWave,         // instant after a reset wave: everyone freshly recruited
  kAllSameName,      // every agent has the same name
  kShortNames,       // partially regenerated names
};

inline const char* to_string(SlAdversary a) {
  switch (a) {
    case SlAdversary::kUniformRandom: return "uniform-random";
    case SlAdversary::kCorrectRanked: return "correct-ranked";
    case SlAdversary::kDuplicateNames: return "duplicate-names";
    case SlAdversary::kGhostNames: return "ghost-names";
    case SlAdversary::kPoisonedTrees: return "poisoned-trees";
    case SlAdversary::kMidReset: return "mid-reset";
    case SlAdversary::kPostWave: return "post-wave";
    case SlAdversary::kAllSameName: return "all-same-name";
    case SlAdversary::kShortNames: return "short-names";
  }
  return "?";
}

inline Name random_name(Rng& rng, std::uint32_t len) {
  return Name::from_bits(rng(), len);
}

// Distinct full-length names for the whole population.
inline std::vector<Name> distinct_names(std::uint32_t count,
                                        std::uint32_t len, Rng& rng) {
  std::vector<Name> names;
  names.reserve(count);
  while (names.size() < count) {
    const Name cand = random_name(rng, len);
    bool dup = false;
    for (const auto& existing : names)
      if (existing == cand) {
        dup = true;
        break;
      }
    if (!dup) names.push_back(cand);
  }
  return names;
}

// A fabricated (but structurally valid: sibling-unique) history tree of the
// given depth, drawing node labels from `pool` and random syncs/timers, some
// live and some expired.
inline HistoryNodePtr random_history_node(const Name& label,
                                          const std::vector<Name>& pool,
                                          std::uint32_t depth, Rng& rng,
                                          const SublinearParams& p) {
  std::vector<HistoryEdge> kids;
  if (depth > 0) {
    const std::uint32_t fanout = static_cast<std::uint32_t>(rng.below(3));
    for (std::uint32_t k = 0; k < fanout; ++k) {
      const Name child_label = pool[rng.below(pool.size())];
      bool dup = false;
      for (const auto& e : kids)
        if (e.child->name == child_label) {
          dup = true;
          break;
        }
      if (dup) continue;
      HistoryEdge e;
      e.sync = rng.range(1, p.smax);
      // Owner frame starts at ops = 0; expiries in [-th, +th]: half expired.
      e.expiry = static_cast<std::int64_t>(rng.below(2 * p.th + 1)) -
                 static_cast<std::int64_t>(p.th);
      e.shift = 0;
      e.child = random_history_node(child_label, pool, depth - 1, rng, p);
      kids.push_back(std::move(e));
    }
  }
  return std::make_shared<const HistoryNode>(label, std::move(kids));
}

inline std::vector<SublinearTimeSSR::State> sublinear_config(
    const SublinearParams& p, SlAdversary kind, std::uint64_t seed) {
  Rng rng(seed);
  const std::uint32_t n = p.n;
  const SublinearTimeSSR proto(p);
  std::vector<SublinearTimeSSR::State> states(n);

  auto collecting = [&](const Name& name) {
    return proto.make_collecting(name);
  };
  auto names = distinct_names(n, p.name_len, rng);

  // A correct ranked configuration over `names`: full rosters, lex ranks.
  auto make_ranked = [&] {
    Roster full;
    for (const auto& nm : names) full.insert(nm);
    for (std::uint32_t i = 0; i < n; ++i) {
      states[i] = collecting(names[i]);
      states[i].roster = full;
      states[i].rank = full.lexicographic_rank(names[i]);
    }
  };

  switch (kind) {
    case SlAdversary::kUniformRandom:
      for (std::uint32_t i = 0; i < n; ++i) {
        if (rng.below(4) == 0) {  // Resetting
          auto& s = states[i];
          s.role = SlRole::Resetting;
          s.resetcount = static_cast<std::uint32_t>(rng.below(p.rmax + 1));
          s.delaytimer = static_cast<std::uint32_t>(rng.below(p.dmax + 1));
          s.name = rng.coin() ? Name()
                              : random_name(rng, static_cast<std::uint32_t>(
                                                     rng.below(p.name_len)));
        } else {  // Collecting with random roster/tree/rank
          const Name nm = rng.coin() ? names[i] : names[rng.below(n)];
          auto& s = states[i];
          s = collecting(nm);
          const std::uint64_t extra = rng.below(n);
          for (std::uint64_t k = 0; k < extra; ++k) {
            // Mix of real names and arbitrary bitstrings (possible ghosts).
            s.roster.insert(rng.coin() ? names[rng.below(n)]
                                       : random_name(rng, p.name_len));
          }
          s.rank = static_cast<std::uint32_t>(rng.range(1, n));
          s.tree.install(
              random_history_node(nm, names,
                                  std::min<std::uint32_t>(p.depth_h, 3), rng,
                                  p),
              0);
        }
      }
      break;
    case SlAdversary::kCorrectRanked:
      make_ranked();
      break;
    case SlAdversary::kDuplicateNames: {
      names[1] = names[0];  // a collision; rosters see n-1 distinct names
      for (std::uint32_t i = 0; i < n; ++i)
        states[i] = collecting(names[i]);
      break;
    }
    case SlAdversary::kGhostNames: {
      // Unique names, but partial rosters with a planted ghost entry: the
      // roll call will push the union over n (Lemma 5.3). Rosters stay
      // within the |roster| <= n field bound — the ghost displaces a real
      // name the agent has "not heard yet".
      const Name ghost = [&] {
        while (true) {
          const Name g = random_name(rng, p.name_len);
          bool clash = false;
          for (const auto& nm : names)
            if (nm == g) clash = true;
          if (!clash) return g;
        }
      }();
      for (std::uint32_t i = 0; i < n; ++i) {
        states[i] = collecting(names[i]);
        const std::uint64_t extra = rng.below(n - 1);
        for (std::uint64_t k = 0; k < extra && states[i].roster.size() < n;
             ++k)
          states[i].roster.insert(names[rng.below(n)]);
      }
      for (std::uint32_t i = 0; i < std::max<std::uint32_t>(1, n / 4); ++i) {
        if (states[i].roster.size() >= n) continue;
        states[i].roster.insert(ghost);
      }
      states[0].roster = Roster::singleton(names[0]);  // room for the ghost
      states[0].roster.insert(ghost);
      break;
    }
    case SlAdversary::kPoisonedTrees:
      make_ranked();
      for (std::uint32_t i = 0; i < n; ++i)
        states[i].tree.install(
            random_history_node(names[i], names,
                                std::min<std::uint32_t>(p.depth_h, 3), rng,
                                p),
            0);
      break;
    case SlAdversary::kMidReset:
      for (auto& s : states) {
        s.role = SlRole::Resetting;
        s.resetcount = static_cast<std::uint32_t>(rng.below(p.rmax + 1));
        s.delaytimer = static_cast<std::uint32_t>(rng.below(p.dmax + 1));
        s.name = Name();
      }
      break;
    case SlAdversary::kPostWave:
      // Deterministic: the exact recruit() state (resetcount = 0,
      // delaytimer = Dmax, nameless, bare tree). No rng draws, so the
      // configuration is seed-independent — it mirrors the count-form
      // generator and anchors the count-vs-array drain equivalence tests.
      for (auto& s : states) {
        s.role = SlRole::Resetting;
        s.resetcount = 0;
        s.delaytimer = p.dmax;
        s.name = Name();
      }
      break;
    case SlAdversary::kAllSameName:
      for (std::uint32_t i = 0; i < n; ++i) states[i] = collecting(names[0]);
      break;
    case SlAdversary::kShortNames:
      for (std::uint32_t i = 0; i < n; ++i) {
        const auto len =
            static_cast<std::uint32_t>(rng.below(p.name_len));
        states[i] = collecting(Name::from_bits(rng(), len));
      }
      break;
  }
  return states;
}

// Named generator catalog for the Scenario API (agent-array only).
inline const InitialConditionSet<SublinearTimeSSR>& sublinear_inits() {
  using P = SublinearTimeSSR;
  auto from_kind = [](SlAdversary kind) {
    return [kind](const P& p, std::uint64_t seed) {
      return sublinear_config(p.params(), kind, seed);
    };
  };
  auto describe = [](SlAdversary kind) {
    switch (kind) {
      case SlAdversary::kUniformRandom:
        return "random names/rosters/trees/roles (valid states)";
      case SlAdversary::kCorrectRanked:
        return "unique names, full rosters, lex ranks, bare trees";
      case SlAdversary::kDuplicateNames:
        return "two agents share a name (Lemma 5.6 workload)";
      case SlAdversary::kGhostNames:
        return "unique names, ghost entry planted in rosters (Lemma 5.3)";
      case SlAdversary::kPoisonedTrees:
        return "unique names + fabricated histories (Lemma 5.5)";
      case SlAdversary::kMidReset:
        return "everyone in a random Resetting state";
      case SlAdversary::kPostWave:
        return "instant after a reset wave: everyone freshly recruited";
      case SlAdversary::kAllSameName:
        return "every agent has the same name";
      case SlAdversary::kShortNames:
        return "partially regenerated names";
    }
    return "?";
  };
  static const InitialConditionSet<P> set = [describe, from_kind] {
    InitialConditionSet<P> s;
    for (SlAdversary kind :
         {SlAdversary::kUniformRandom, SlAdversary::kCorrectRanked,
          SlAdversary::kDuplicateNames, SlAdversary::kGhostNames,
          SlAdversary::kPoisonedTrees, SlAdversary::kMidReset,
          SlAdversary::kPostWave, SlAdversary::kAllSameName,
          SlAdversary::kShortNames})
      s.add({to_string(kind), describe(kind), from_kind(kind), nullptr});
    return s;
  }();
  return set;
}

}  // namespace ppsim
