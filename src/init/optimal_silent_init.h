// Adversarial initial conditions for Optimal-Silent-SSR (Protocols 3-4).
//
// The OsAdversary enum + free functions are the historical API (moved here
// from analysis/adversary.h); optimal_silent_inits() wraps them as the
// named InitialConditionSet the Scenario API dispatches on, adding the
// count-native `dormant-mix` start (the timer-heavy multinomial workload,
// O(1) occupied states at any n) and the Lemma 4.1 `single-leader` start.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/rng.h"
#include "init/initial_condition.h"
#include "protocols/optimal_silent.h"

namespace ppsim {

enum class OsAdversary {
  kUniformRandom,      // every field uniform over its valid range
  kAllLeaders,         // everyone Settled at rank 1 ("all leaders")
  kAllUnsettledZero,   // everyone Unsettled with exhausted patience
  kDuplicateRank,      // correct ranking except one duplicated rank
  kAllPropagating,     // everyone mid-reset with resetcount > 0
  kAllDormant,         // everyone dormant with random delay timers
  kCorrectRanking,     // the unique silent configuration (stability check)
};

inline const char* to_string(OsAdversary a) {
  switch (a) {
    case OsAdversary::kUniformRandom: return "uniform-random";
    case OsAdversary::kAllLeaders: return "all-leaders";
    case OsAdversary::kAllUnsettledZero: return "all-unsettled-0";
    case OsAdversary::kDuplicateRank: return "duplicate-rank";
    case OsAdversary::kAllPropagating: return "all-propagating";
    case OsAdversary::kAllDormant: return "all-dormant";
    case OsAdversary::kCorrectRanking: return "correct-ranking";
  }
  return "?";
}

// Number of children rank r has in the full binary tree over ranks {1..n}.
inline std::uint8_t binary_tree_children(std::uint32_t rank,
                                         std::uint32_t n) {
  std::uint8_t c = 0;
  if (2ull * rank <= n) ++c;
  if (2ull * rank + 1 <= n) ++c;
  return c;
}

inline std::vector<OptimalSilentSSR::State> optimal_silent_config(
    const OptimalSilentParams& p, OsAdversary kind, std::uint64_t seed) {
  Rng rng(seed);
  const std::uint32_t n = p.n;
  std::vector<OptimalSilentSSR::State> states(n);
  auto settled = [&](std::uint32_t rank, std::uint8_t children) {
    OptimalSilentSSR::State s;
    s.role = OsRole::Settled;
    s.rank = rank;
    s.children = children;
    return s;
  };
  switch (kind) {
    case OsAdversary::kUniformRandom:
      for (auto& s : states) {
        switch (rng.below(3)) {
          case 0:
            s = settled(static_cast<std::uint32_t>(rng.range(1, n)),
                        static_cast<std::uint8_t>(rng.below(3)));
            break;
          case 1:
            s.role = OsRole::Unsettled;
            s.errorcount = static_cast<std::uint32_t>(rng.below(p.emax + 1));
            break;
          default:
            s.role = OsRole::Resetting;
            s.leader = rng.coin();
            s.resetcount =
                static_cast<std::uint32_t>(rng.below(p.rmax + 1));
            s.delaytimer =
                static_cast<std::uint32_t>(rng.below(p.dmax + 1));
            break;
        }
      }
      break;
    case OsAdversary::kAllLeaders:
      for (auto& s : states) s = settled(1, 0);
      break;
    case OsAdversary::kAllUnsettledZero:
      for (auto& s : states) {
        s.role = OsRole::Unsettled;
        s.errorcount = 0;
      }
      break;
    case OsAdversary::kDuplicateRank:
      for (std::uint32_t i = 0; i < n; ++i)
        states[i] = settled(i + 1, binary_tree_children(i + 1, n));
      states[1] = states[0];  // rank 1 duplicated, rank 2 missing
      break;
    case OsAdversary::kAllPropagating:
      for (auto& s : states) {
        s.role = OsRole::Resetting;
        s.leader = rng.coin();
        s.resetcount = static_cast<std::uint32_t>(rng.range(1, p.rmax));
        s.delaytimer = 0;
      }
      break;
    case OsAdversary::kAllDormant:
      for (auto& s : states) {
        s.role = OsRole::Resetting;
        s.leader = rng.coin();
        s.resetcount = 0;
        s.delaytimer = static_cast<std::uint32_t>(rng.range(1, p.dmax));
      }
      break;
    case OsAdversary::kCorrectRanking:
      for (std::uint32_t i = 0; i < n; ++i)
        states[i] = settled(i + 1, binary_tree_children(i + 1, n));
      break;
  }
  return states;
}

// Count-vector configuration for the batched backend: the post-wave
// configuration of a successful reset epoch — every agent dormant with a
// full delay timer (delaytimer = Dmax), `leaders` of them still holding the
// leader bit. This is the paper's timer-heavy regime: every interaction
// decrements two delay timers, so every interaction is effective and the
// geometric skip degenerates to one-by-one simulation (the multinomial
// batch strategy's target workload). O(|Q|) to build, no agent array.
inline std::vector<std::uint64_t> optimal_silent_dormant_counts(
    const OptimalSilentParams& p, std::uint32_t leaders = 1) {
  if (leaders > p.n) throw std::invalid_argument("leaders > population");
  const OptimalSilentSSR proto(p);
  std::vector<std::uint64_t> counts(proto.num_states(), 0);
  OptimalSilentSSR::State s;
  s.role = OsRole::Resetting;
  s.resetcount = 0;
  s.delaytimer = p.dmax;
  s.leader = true;
  counts[proto.encode(s)] = leaders;
  s.leader = false;
  counts[proto.encode(s)] = p.n - leaders;
  return counts;
}

// Named generator catalog for the Scenario API.
inline const InitialConditionSet<OptimalSilentSSR>& optimal_silent_inits() {
  using P = OptimalSilentSSR;
  auto from_kind = [](OsAdversary kind) {
    return [kind](const P& p, std::uint64_t seed) {
      return optimal_silent_config(p.params(), kind, seed);
    };
  };
  auto describe = [](OsAdversary kind) {
    switch (kind) {
      case OsAdversary::kUniformRandom:
        return "every field of every agent uniform over its valid range";
      case OsAdversary::kAllLeaders:
        return "everyone Settled at rank 1 (n leaders)";
      case OsAdversary::kAllUnsettledZero:
        return "everyone Unsettled with exhausted patience";
      case OsAdversary::kDuplicateRank:
        return "correct ranking except rank 1 duplicated (Observation 2.6 "
               "detection workload)";
      case OsAdversary::kAllPropagating:
        return "everyone mid-reset with resetcount > 0";
      case OsAdversary::kAllDormant:
        return "everyone dormant with a random delay timer";
      case OsAdversary::kCorrectRanking:
        return "the unique silent configuration (stability check)";
    }
    return "?";
  };
  static const InitialConditionSet<P> set = [describe, from_kind] {
    InitialConditionSet<P> s;
    for (OsAdversary kind :
         {OsAdversary::kUniformRandom, OsAdversary::kAllLeaders,
          OsAdversary::kAllUnsettledZero, OsAdversary::kDuplicateRank,
          OsAdversary::kAllPropagating, OsAdversary::kAllDormant,
          OsAdversary::kCorrectRanking})
      s.add({to_string(kind), describe(kind), from_kind(kind), nullptr});
    s.add({"dormant-mix",
           "post-wave reset epoch: everyone dormant at delaytimer = Dmax, "
           "one leader bit set (timer-heavy; 2 occupied states at any n)",
           nullptr,
           [](const P& p, std::uint64_t) {
             return optimal_silent_dormant_counts(p.params());
           }});
    s.add({"single-leader",
           "one Settled leader at rank 1, everyone else Unsettled at full "
           "patience (Lemma 4.1 binary-tree ranking start)",
           [](const P& p, std::uint64_t) {
             const auto& params = p.params();
             std::vector<P::State> init(params.n);
             init[0].role = OsRole::Settled;
             init[0].rank = 1;
             init[0].children = 0;
             for (std::uint32_t j = 1; j < params.n; ++j) {
               init[j].role = OsRole::Unsettled;
               init[j].errorcount = params.emax;
             }
             return init;
           },
           [](const P& p, std::uint64_t) {
             const auto& params = p.params();
             std::vector<std::uint64_t> counts(p.num_states(), 0);
             P::State leader;
             leader.role = OsRole::Settled;
             leader.rank = 1;
             leader.children = 0;
             counts[p.encode(leader)] = 1;
             P::State follower;
             follower.role = OsRole::Unsettled;
             follower.errorcount = params.emax;
             counts[p.encode(follower)] = params.n - 1;
             return counts;
           }});
    return s;
  }();
  return set;
}

}  // namespace ppsim
