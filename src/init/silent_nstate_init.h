// Adversarial initial conditions for Silent-n-state-SSR (Protocol 1).
//
// The free functions are the historical API (moved here from
// analysis/adversary.h); silent_nstate_inits() wraps them as the named
// InitialConditionSet the Scenario API dispatches on. The worst-case start
// (Theorem 2.4's lower-bound configuration) lives with the protocol itself
// in protocols/silent_nstate.h.
#pragma once

#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "init/initial_condition.h"
#include "protocols/silent_nstate.h"

namespace ppsim {

inline std::vector<SilentNStateSSR::State> silent_nstate_random_config(
    std::uint32_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<SilentNStateSSR::State> states(n);
  for (auto& s : states) s.rank = static_cast<std::uint32_t>(rng.below(n));
  return states;
}

inline std::vector<SilentNStateSSR::State> silent_nstate_all_same(
    std::uint32_t n, std::uint32_t rank) {
  std::vector<SilentNStateSSR::State> states(n);
  for (auto& s : states) s.rank = rank;
  return states;
}

// Named generator catalog. The count emitters mirror the agent emitters'
// Rng draw order exactly, so either form of a (name, seed) pair is the same
// random configuration distribution.
inline const InitialConditionSet<SilentNStateSSR>& silent_nstate_inits() {
  using P = SilentNStateSSR;
  static const InitialConditionSet<P> set = [] {
    InitialConditionSet<P> s;
    s.add({"worst-case",
           "Theorem 2.4 lower-bound start: two agents at rank 0, one at "
           "each rank 1..n-2, none at n-1",
           [](const P& p, std::uint64_t) {
             return silent_nstate_worst_config(p.population_size());
           },
           [](const P& p, std::uint64_t) {
             const std::uint32_t n = p.population_size();
             std::vector<std::uint64_t> counts(p.num_states(), 0);
             counts[0] = 2;
             for (std::uint32_t i = 2; i < n; ++i) counts[i - 1] = 1;
             return counts;
           }});
    s.add({"uniform-random", "every rank uniform over {0..n-1}",
           [](const P& p, std::uint64_t seed) {
             return silent_nstate_random_config(p.population_size(), seed);
           },
           [](const P& p, std::uint64_t seed) {
             Rng rng(seed);
             const std::uint32_t n = p.population_size();
             std::vector<std::uint64_t> counts(p.num_states(), 0);
             for (std::uint32_t i = 0; i < n; ++i) ++counts[rng.below(n)];
             return counts;
           }});
    s.add({"all-same", "every agent at rank 0 (maximal collision mass)",
           [](const P& p, std::uint64_t) {
             return silent_nstate_all_same(p.population_size(), 0);
           },
           [](const P& p, std::uint64_t) {
             std::vector<std::uint64_t> counts(p.num_states(), 0);
             counts[0] = p.population_size();
             return counts;
           }});
    s.add({"duplicate-rank",
           "correct ranking except agent 1 copies rank 0 (Observation 2.6: "
           "recovery needs the duplicated pair to meet directly)",
           [](const P& p, std::uint64_t) {
             const std::uint32_t n = p.population_size();
             std::vector<P::State> states(n);
             for (std::uint32_t i = 0; i < n; ++i) states[i].rank = i;
             states[1].rank = 0;
             return states;
           },
           [](const P& p, std::uint64_t) {
             std::vector<std::uint64_t> counts(p.num_states(), 1);
             counts[0] = 2;
             counts[1] = 0;
             return counts;
           }});
    s.add({"correct-ranking",
           "the silent permutation 0..n-1 (stability check)",
           [](const P& p, std::uint64_t) {
             const std::uint32_t n = p.population_size();
             std::vector<P::State> states(n);
             for (std::uint32_t i = 0; i < n; ++i) states[i].rank = i;
             return states;
           },
           [](const P& p, std::uint64_t) {
             return std::vector<std::uint64_t>(p.num_states(), 1);
           }});
    return s;
  }();
  return set;
}

}  // namespace ppsim
