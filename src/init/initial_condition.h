// Composable initial conditions — the adversary as a first-class value.
//
// Self-stabilization quantifies over *every* configuration of valid states,
// so experiments need a vocabulary of hostile starting points. An
// InitialCondition<P> is a named, seeded generator of such a configuration
// for protocol P; an InitialConditionSet<P> is the per-protocol catalog the
// Scenario API (core/registry.h, analysis/scenarios.h) dispatches on by
// name, replacing the per-protocol free functions that used to live in
// analysis/adversary.h.
//
// A generator emits the configuration in whichever representation is
// natural — an agent-state array, a state-count vector, or both — and the
// set converts on demand:
//   * counts -> agents via decode()  (enumerable protocols),
//   * agents -> counts via encode()  (enumerable protocols),
// so every adversarial start can feed either simulation backend. Count
// emission matters at scale: a generator that writes O(occupied) counts
// (e.g. the dormant-mix start, 2 nonzero entries at any n) lets an
// adversarial sweep run on the batched backend at n = 10^6+ without ever
// materializing n agent structs.
//
// Generators producing both forms MUST consume their Rng stream
// identically in both (same draws, same order), so the two forms of one
// (name, seed) pair describe the same random configuration distribution —
// tests/scenario_test.cpp enforces the encode/decode round trip for every
// registered (protocol, generator) pair.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/protocol.h"

namespace ppsim {

template <Protocol P>
struct InitialCondition {
  using State = typename P::State;
  using AgentsFn =
      std::function<std::vector<State>(const P&, std::uint64_t seed)>;
  using CountsFn =
      std::function<std::vector<std::uint64_t>(const P&, std::uint64_t seed)>;

  std::string name;
  std::string description;
  AgentsFn make_agents;  // null: generator is count-only
  CountsFn make_counts;  // null: generator is agent-only
};

template <Protocol P>
class InitialConditionSet {
 public:
  using State = typename P::State;

  // The first added generator is the set's default.
  InitialConditionSet& add(InitialCondition<P> init) {
    if (!init.make_agents && !init.make_counts)
      throw std::invalid_argument("initial condition '" + init.name +
                                  "' has no generator");
    inits_.push_back(std::move(init));
    return *this;
  }

  const InitialCondition<P>* find(const std::string& name) const {
    for (const auto& i : inits_)
      if (i.name == name) return &i;
    return nullptr;
  }

  const std::string& default_name() const {
    if (inits_.empty()) throw std::logic_error("empty initial-condition set");
    return inits_.front().name;
  }

  std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(inits_.size());
    for (const auto& i : inits_) out.push_back(i.name);
    return out;
  }

  const std::vector<InitialCondition<P>>& all() const { return inits_; }

  // Materializes the named configuration as an agent array (decoding a
  // count-only generator's output for enumerable protocols).
  std::vector<State> agents(const P& protocol, const std::string& name,
                            std::uint64_t seed) const {
    const InitialCondition<P>& init = resolve(name);
    if (init.make_agents) return init.make_agents(protocol, seed);
    if constexpr (EnumerableProtocol<P>) {
      const auto counts = init.make_counts(protocol, seed);
      std::vector<State> out;
      out.reserve(protocol.population_size());
      for (std::uint32_t q = 0; q < counts.size(); ++q) {
        const State s = protocol.decode(q);
        for (std::uint64_t k = 0; k < counts[q]; ++k) out.push_back(s);
      }
      return out;
    } else {
      throw std::logic_error("initial condition '" + name +
                             "' is count-only and the protocol is not "
                             "enumerable");
    }
  }

  // Materializes the named configuration as a state-count vector (encoding
  // an agent-only generator's output). Enumerable protocols only.
  std::vector<std::uint64_t> counts(const P& protocol, const std::string& name,
                                    std::uint64_t seed) const
    requires EnumerableProtocol<P>
  {
    const InitialCondition<P>& init = resolve(name);
    if (init.make_counts) return init.make_counts(protocol, seed);
    const auto agents = init.make_agents(protocol, seed);
    std::vector<std::uint64_t> counts(protocol.num_states(), 0);
    for (const State& s : agents) ++counts[protocol.encode(s)];
    return counts;
  }

 private:
  const InitialCondition<P>& resolve(const std::string& name) const {
    const InitialCondition<P>* init =
        find(name.empty() ? default_name() : name);
    if (init == nullptr)
      throw std::invalid_argument("unknown initial condition '" + name + "'");
    return *init;
  }

  std::vector<InitialCondition<P>> inits_;
};

}  // namespace ppsim
