// Adversarial initial conditions for the count-form Sublinear-Time-SSR
// abstraction (protocols/sublinear_count.h).
//
// The generator names shared with the agent-array catalog
// (init/sublinear_init.h) — duplicate-names, mid-reset, correct-ranked —
// produce the *projection* of the same adversarial distribution, so
// cross-form experiments can pair (init, seed) cells: mid-reset draws the
// identical per-agent (resetcount, delaytimer) law, duplicate-names plants
// the same two colliding names among n-2 unique ones, correct-ranked is the
// all-passive fixed point. Every generator emits both forms and consumes its
// Rng stream identically in both (the scenario round-trip contract).
#pragma once

#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "init/initial_condition.h"
#include "protocols/sublinear_count.h"

namespace ppsim {

inline const InitialConditionSet<SublinearCountSSR>& sublinear_count_inits() {
  using P = SublinearCountSSR;
  using State = P::State;

  static const InitialConditionSet<P> set = [] {
    InitialConditionSet<P> s;

    // Two agents share a name, everyone Collecting with singleton rosters
    // and bare trees — the Lemma 5.6 detection workload. No Rng draws.
    s.add({"duplicate-names",
           "two agents share a name (Lemma 5.6 workload), singleton rosters",
           [](const P& p, std::uint64_t) {
             std::vector<State> out;
             out.reserve(p.population_size());
             for (std::uint32_t j = 0; j < 2; ++j) {
               State d;
               d.nc = p.dup_class(j);
               out.push_back(d);
             }
             State full;
             full.nc = p.full_class();
             for (std::uint32_t i = 2; i < p.population_size(); ++i)
               out.push_back(full);
             return out;
           },
           [](const P& p, std::uint64_t) {
             std::vector<std::uint64_t> counts(p.num_states(), 0);
             State d;
             d.nc = p.dup_class(0);
             counts[p.encode(d)] += 1;
             d.nc = p.dup_class(1);
             counts[p.encode(d)] += 1;
             if (p.population_size() > 2) {
               State full;
               full.nc = p.full_class();
               counts[p.encode(full)] += p.population_size() - 2;
             }
             return counts;
           }});

    // Everyone in a random Resetting state with an empty name — the same
    // per-agent (resetcount, delaytimer) law as the agent-array mid-reset
    // generator, which makes (mid-reset -> drained) the paired cell the
    // cross-form exactness tests run.
    s.add({"mid-reset",
           "everyone in a random Resetting state, names cleared",
           [](const P& p, std::uint64_t seed) {
             Rng rng(seed);
             const auto& pp = p.params();
             std::vector<State> out(p.population_size());
             for (auto& st : out) {
               st.role = SlRole::Resetting;
               st.resetcount =
                   static_cast<std::uint32_t>(rng.below(pp.rmax + 1));
               st.delaytimer =
                   static_cast<std::uint32_t>(rng.below(pp.dmax + 1));
               st.nc = 0;
             }
             return out;
           },
           [](const P& p, std::uint64_t seed) {
             Rng rng(seed);
             const auto& pp = p.params();
             std::vector<std::uint64_t> counts(p.num_states(), 0);
             State st;
             st.role = SlRole::Resetting;
             st.nc = 0;
             for (std::uint32_t i = 0; i < p.population_size(); ++i) {
               st.resetcount =
                   static_cast<std::uint32_t>(rng.below(pp.rmax + 1));
               st.delaytimer =
                   static_cast<std::uint32_t>(rng.below(pp.dmax + 1));
               ++counts[p.encode(st)];
             }
             return counts;
           }});

    // The all-passive fixed point: unique full names, rosters at cap. The
    // configuration is silent in count form (every pair is null), so it
    // anchors safety/ptime cells. No Rng draws.
    s.add({"correct-ranked",
           "unique full names, rosters at cap (the all-passive fixed point)",
           [](const P& p, std::uint64_t) {
             State st;
             st.nc = p.full_class();
             st.bucket = p.top_bucket();
             return std::vector<State>(p.population_size(), st);
           },
           [](const P& p, std::uint64_t) {
             std::vector<std::uint64_t> counts(p.num_states(), 0);
             State st;
             st.nc = p.full_class();
             st.bucket = p.top_bucket();
             counts[p.encode(st)] = p.population_size();
             return counts;
           }});

    // The instant after a reset wave has zeroed out: everyone dormant with a
    // fresh delay timer and an empty name — the regime where the dormant
    // conveyor (and its tau behavior) dominates. No Rng draws.
    s.add({"post-wave",
           "everyone dormant at delaytimer = Dmax with an empty name",
           [](const P& p, std::uint64_t) {
             State st;
             st.role = SlRole::Resetting;
             st.resetcount = 0;
             st.delaytimer = p.params().dmax;
             st.nc = 0;
             return std::vector<State>(p.population_size(), st);
           },
           [](const P& p, std::uint64_t) {
             std::vector<std::uint64_t> counts(p.num_states(), 0);
             State st;
             st.role = SlRole::Resetting;
             st.resetcount = 0;
             st.delaytimer = p.params().dmax;
             st.nc = 0;
             counts[p.encode(st)] = p.population_size();
             return counts;
           }});

    return s;
  }();
  return set;
}

}  // namespace ppsim
