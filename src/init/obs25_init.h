// Initial conditions for the Observation 2.5 SSLE protocol (n = 3).
#pragma once

#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "init/initial_condition.h"
#include "protocols/obs25.h"

namespace ppsim {

inline const InitialConditionSet<Obs25SSLE>& obs25_inits() {
  using P = Obs25SSLE;
  static const InitialConditionSet<P> set = [] {
    InitialConditionSet<P> s;
    s.add({"all-leaders", "all three agents in the leader state l (active)",
           [](const P&, std::uint64_t) {
             return std::vector<P::State>(3);  // v = 0 is the leader state
           },
           [](const P&, std::uint64_t) {
             return std::vector<std::uint64_t>{3, 0, 0, 0, 0, 0};
           }});
    s.add({"uniform-random", "each agent uniform over {l, f0..f4}",
           [](const P&, std::uint64_t seed) {
             Rng rng(seed);
             std::vector<P::State> init(3);
             for (auto& st : init)
               st.v = static_cast<std::uint8_t>(rng.below(P::kStates));
             return init;
           },
           [](const P&, std::uint64_t seed) {
             Rng rng(seed);
             std::vector<std::uint64_t> counts(P::kStates, 0);
             for (int i = 0; i < 3; ++i) ++counts[rng.below(P::kStates)];
             return counts;
           }});
    return s;
  }();
  return set;
}

}  // namespace ppsim
