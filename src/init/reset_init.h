// Initial conditions for the ResetProcess harness protocol (Protocol 2 /
// Section 3): the trigger-one start behind every phase-timing experiment,
// the Corollary 3.5 debris mixture, and the all-computing stability check.
#pragma once

#include <cstdint>
#include <vector>

#include "core/rng.h"
#include "init/initial_condition.h"
#include "reset/reset_process.h"

namespace ppsim {

// Count vector with one freshly triggered agent and n-1 Computing agents —
// the start of every Section 3 phase experiment. O(|Q|) at any n.
inline std::vector<std::uint64_t> reset_trigger_one_counts(
    const ResetProcess& proto) {
  std::vector<std::uint64_t> counts(proto.num_states(), 0);
  ResetProcess::State triggered;
  proto.trigger(triggered);
  counts[0] = proto.population_size() - 1;
  counts[proto.encode(triggered)] = 1;
  return counts;
}

// Named generator catalog for the Scenario API.
inline const InitialConditionSet<ResetProcess>& reset_process_inits() {
  using P = ResetProcess;
  static const InitialConditionSet<P> set = [] {
    InitialConditionSet<P> s;
    s.add({"trigger-one",
           "one freshly triggered agent (resetcount = Rmax), n-1 Computing",
           [](const P& p, std::uint64_t) {
             std::vector<P::State> init(p.population_size());
             p.trigger(init[0]);
             return init;
           },
           [](const P& p, std::uint64_t) {
             return reset_trigger_one_counts(p);
           }});
    // The Corollary 3.5 debris mixture: each agent independently Computing
    // with probability 1/2, else Resetting with a uniform resetcount in
    // [0, Rmax) and delaytimer in [0, Dmax]. Both emitters consume the Rng
    // stream identically (coin, then two draws when Resetting).
    s.add({"mid-reset-mix",
           "arbitrary Resetting debris: ~n/2 agents mid-reset with random "
           "wave heights and timers (Corollary 3.5)",
           [](const P& p, std::uint64_t seed) {
             Rng rng(seed);
             std::vector<P::State> init(p.population_size());
             for (auto& st : init) {
               if (rng.coin()) continue;
               st.resetting = true;
               st.resetcount =
                   static_cast<std::uint32_t>(rng.below(p.rmax()));
               st.delaytimer =
                   static_cast<std::uint32_t>(rng.below(p.dmax() + 1));
             }
             return init;
           },
           [](const P& p, std::uint64_t seed) {
             Rng rng(seed);
             std::vector<std::uint64_t> counts(p.num_states(), 0);
             P::State st;
             for (std::uint32_t i = 0; i < p.population_size(); ++i) {
               if (rng.coin()) {
                 ++counts[0];
                 continue;
               }
               st.resetting = true;
               st.resetcount =
                   static_cast<std::uint32_t>(rng.below(p.rmax()));
               st.delaytimer =
                   static_cast<std::uint32_t>(rng.below(p.dmax() + 1));
               ++counts[p.encode(st)];
             }
             return counts;
           }});
    s.add({"all-computing",
           "everyone Computing (the silent configuration; stability check)",
           [](const P& p, std::uint64_t) {
             return std::vector<P::State>(p.population_size());
           },
           [](const P& p, std::uint64_t) {
             std::vector<std::uint64_t> counts(p.num_states(), 0);
             counts[0] = p.population_size();
             return counts;
           }});
    return s;
  }();
  return set;
}

}  // namespace ppsim
