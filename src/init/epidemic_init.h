// Initial conditions for the one-way epidemic (Section 2.1): the classic
// single-source start and the residual-drain endgame the unkeyed passive
// skip accelerates.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "init/initial_condition.h"
#include "processes/epidemic.h"

namespace ppsim {

inline const InitialConditionSet<OneWayEpidemic>& one_way_epidemic_inits() {
  using P = OneWayEpidemic;
  auto agents_with_infected = [](const P& p, std::uint64_t infected) {
    std::vector<P::State> init(p.population_size());
    for (std::uint64_t i = 0; i < infected; ++i) init[i].infected = true;
    return init;
  };
  static const InitialConditionSet<P> set = [agents_with_infected] {
    InitialConditionSet<P> s;
    s.add({"single-infected", "one infected agent, n-1 susceptible",
           [agents_with_infected](const P& p, std::uint64_t) {
             return agents_with_infected(p, 1);
           },
           [](const P& p, std::uint64_t) {
             return one_way_epidemic_counts(p.population_size(), 1);
           }});
    // k = min(16, n/2) susceptible left: completion needs ~n H_k / 2 more
    // interactions, almost all of them infected-infected nulls — the
    // unkeyed-passive geometric skip's showcase regime. The susceptible
    // agents sit at the FRONT of the array so an early-exit completeness
    // scan reads O(k), not O(n), per check while any remain (the array
    // engine's predicate cost must not distort the batch-vs-array
    // baseline; the count form is layout-free anyway).
    s.add({"residual-16",
           "all but min(16, n/2) agents already infected (residual drain)",
           [](const P& p, std::uint64_t) {
             const std::uint32_t n = p.population_size();
             const std::uint32_t k = std::min<std::uint32_t>(16, n / 2);
             std::vector<P::State> init(n);
             for (std::uint32_t i = k; i < n; ++i) init[i].infected = true;
             return init;
           },
           [](const P& p, std::uint64_t) {
             const std::uint32_t n = p.population_size();
             const std::uint32_t k = std::min<std::uint32_t>(16, n / 2);
             return one_way_epidemic_counts(n, n - k);
           }});
    return s;
  }();
  return set;
}

}  // namespace ppsim
