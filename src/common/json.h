// Minimal JSON reader shared by the tools (tools/bench_compare's baseline
// diffing, tools/ppsle_run's sweep-matrix mode).
//
// Supports objects, arrays, strings, numbers, booleans and null — enough
// for the flat schema analysis/bench_report.h emits and for scenario-matrix
// files. Writing stays with BenchRecord/BenchReport; this header only reads.
#pragma once

#include <cctype>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace ppsim {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> fields;

  const JsonValue* get(const std::string& key) const {
    for (const auto& [k, v] : fields)
      if (k == key) return &v;
    return nullptr;
  }

  bool is_string() const { return kind == Kind::kString; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= s_.size()) return false;
    const char c = s_[pos_];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.str);
    }
    if (c == 't' || c == 'f') {
      const bool is_true = c == 't';
      const char* word = is_true ? "true" : "false";
      const std::size_t len = is_true ? 4 : 5;
      if (s_.compare(pos_, len, word) != 0) return false;
      pos_ += len;
      out.kind = JsonValue::Kind::kBool;
      out.b = is_true;
      return true;
    }
    if (c == 'n') {
      if (s_.compare(pos_, 4, "null") != 0) return false;
      pos_ += 4;
      out.kind = JsonValue::Kind::kNull;
      return true;
    }
    return parse_number(out);
  }

  bool parse_string(std::string& out) {
    if (s_[pos_] != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) return false;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= h - '0';
            else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
            else return false;
          }
          // BenchRecord only writes \u00XX control escapes; encode as-is.
          out.push_back(static_cast<char>(code & 0xff));
          break;
        }
        default: return false;
      }
    }
    return false;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            std::strchr("+-.eE", s_[pos_]) != nullptr))
      ++pos_;
    if (pos_ == start) return false;
    try {
      out.num = std::stod(s_.substr(start, pos_ - start));
    } catch (...) {
      return false;
    }
    out.kind = JsonValue::Kind::kNumber;
    return true;
  }

  bool parse_array(JsonValue& out) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue item;
      if (!parse_value(item)) return false;
      out.items.push_back(std::move(item));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool parse_object(JsonValue& out) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      std::string key;
      if (pos_ >= s_.size() || !parse_string(key)) return false;
      skip_ws();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      JsonValue value;
      if (!parse_value(value)) return false;
      out.fields.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= s_.size()) return false;
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (s_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace ppsim
