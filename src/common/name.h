// Packed bitstring names.
//
// Sublinear-Time-SSR gives each agent a name in {0,1}^{<= 3*log2 n} (Section
// 5.1). Names are built one random bit at a time while the agent is dormant,
// so the type supports partial lengths, and ranks are assigned by
// lexicographic order over bitstrings, where a proper prefix sorts before any
// of its extensions. Bits are stored MSB-first in a single 64-bit word, which
// makes lexicographic comparison of equal-length names a plain integer
// comparison (n up to ~2^21 fits: 3*log2 n <= 63).
#pragma once

#include <algorithm>
#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

#include "common/intlog.h"

namespace ppsim {

class Name {
 public:
  static constexpr std::uint32_t kMaxBits = 63;

  constexpr Name() = default;  // the empty string epsilon

  static Name from_bits(std::uint64_t value, std::uint32_t length) {
    if (length > kMaxBits) throw std::invalid_argument("name too long");
    Name n;
    n.len_ = length;
    // Place the `length` low bits of value at the top of the word, first bit
    // (most significant of value's low `length` bits) first.
    n.bits_ = length == 0 ? 0 : (value << (64 - length));
    return n;
  }

  // The number of bits a name has for population size n: 3*ceil(log2 n),
  // at least 3 (the paper's 3*log2 n; ceilings are asymptotically negligible).
  static std::uint32_t full_length(std::uint32_t n) {
    return std::max<std::uint32_t>(3, 3 * ppsim::ceil_log2(n));
  }

  constexpr std::uint32_t length() const { return len_; }
  constexpr bool empty() const { return len_ == 0; }

  void clear() {
    len_ = 0;
    bits_ = 0;
  }

  void append_bit(bool bit) {
    if (len_ >= kMaxBits) throw std::length_error("name at maximum length");
    if (bit) bits_ |= (1ULL << (63 - len_));
    ++len_;
  }

  bool bit(std::uint32_t i) const {
    if (i >= len_) throw std::out_of_range("bit index past name length");
    return ((bits_ >> (63 - i)) & 1ULL) != 0;
  }

  // Lexicographic bitstring order; a proper prefix precedes its extensions.
  friend std::strong_ordering operator<=>(const Name& a, const Name& b) {
    const std::uint32_t c = a.len_ < b.len_ ? a.len_ : b.len_;
    if (c > 0) {
      const std::uint64_t pa = a.bits_ >> (64 - c);
      const std::uint64_t pb = b.bits_ >> (64 - c);
      if (pa != pb) return pa <=> pb;
    }
    return a.len_ <=> b.len_;
  }

  friend bool operator==(const Name& a, const Name& b) {
    return a.len_ == b.len_ && a.bits_ == b.bits_;
  }

  std::string to_string() const {
    if (len_ == 0) return "eps";
    std::string s;
    s.reserve(len_);
    for (std::uint32_t i = 0; i < len_; ++i) s.push_back(bit(i) ? '1' : '0');
    return s;
  }

  // 64-bit mix of (bits, len) for Bloom digests and hashing.
  std::uint64_t hash() const {
    std::uint64_t z = bits_ ^ (0x9e3779b97f4a7c15ULL * (len_ + 1));
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint32_t len_ = 0;
  std::uint64_t bits_ = 0;  // MSB-first: bit i of the string at position 63-i
};

}  // namespace ppsim

template <>
struct std::hash<ppsim::Name> {
  std::size_t operator()(const ppsim::Name& n) const noexcept {
    return static_cast<std::size_t>(n.hash());
  }
};
