// Shared command-line parsing for the bench binaries, examples and tools.
//
// Every bench binary used to carry its own copy of the --smoke/--quick/
// --full/--threads/--strategy loop (and every example its own --backend
// strcmp chain); they now all go through this header. Unlike the old
// parsers, unknown flags are a *hard error* (exit 2): a typoed
// --strateg=multinomial used to be silently ignored and the bench would
// happily measure the wrong configuration.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/engine.h"    // BatchStrategy, parse_strategy
#include "core/faults.h"    // FaultSpec
#include "core/topology.h"  // Topology::validate_spec

namespace ppsim {

// Scale/flag bundle for the bench binaries:
//   --quick / --full   scale the trial counts down / up
//   --smoke            CI mode: 1 trial, smallest population only (see
//                      sizes()) — exercises every code path in seconds
//   --threads=N        thread count for run_trials_parallel and for the
//                      sharded engine's worker pool (also PPSIM_THREADS;
//                      0 = hardware concurrency). Never changes results —
//                      only wall clock.
//   --strategy=S       batching strategy for the count-based engine
//                      (geometric_skip | multinomial | auto | sharded);
//                      benches that honor it call strategy_or() and record
//                      the choice in their BENCH_*.json metadata
//   --shards=N         strategy=sharded: worker shard count (0 = the
//                      engine's fixed default, 8). Results depend on
//                      (seed, shards) — deliberately never on --threads.
//   --fault.drop=P     fault injection (core/faults.h): interaction loss
//   --fault.oneway=P   probability, one-way-delivery probability, and
//   --fault.churn=R    crash-reset rate per unit parallel time. Benches
//                      that honor these pass `faults` into their
//                      ScenarioSpecs; out-of-range values are hard errors
//                      like everything else here.
//   --topology=G       interaction graph (core/topology.h): complete |
//                      ring | line | star | mesh:RxC | torus:RxC |
//                      custom:<path>. Structurally validated here (bad
//                      names/dims exit 2); the n-dependent checks happen
//                      when the bench builds its Topology.
//   --micro            also run the binary's google-benchmark micro section
// Anything else is a hard error.
struct BenchScale {
  double factor = 1.0;  // multiplies trial counts
  bool quick = false;
  bool full = false;
  bool smoke = false;
  bool micro = false;
  std::uint32_t threads = 0;   // 0 = auto (env / hardware)
  std::uint32_t shards = 0;    // 0 = auto (sharded strategy only)
  std::string strategy_name;   // empty = bench default
  std::string topology;        // empty = bench default (complete)
  FaultSpec faults;            // all-zero = fault-free

  static BenchScale from_args(int argc, char** argv) {
    BenchScale s;
    // Strict numeric parse for the fault knobs: the whole argument after
    // '=' must be a number in [lo, hi], else exit 2 — a typoed
    // --fault.drop=0.5x must not silently run some other experiment.
    auto fault_knob = [&](const std::string& arg, std::size_t prefix_len,
                          double lo, double hi, const char* name) {
      const std::string text = arg.substr(prefix_len);
      char* end = nullptr;
      const double v = std::strtod(text.c_str(), &end);
      if (text.empty() || end != text.c_str() + text.size() || v < lo ||
          v > hi) {
        std::cerr << "bad --" << name << " value '" << text << "' (want a "
                  << "number in [" << lo << ", "
                  << (hi < 1e300 ? std::to_string(hi) : std::string("inf"))
                  << "])\n";
        std::exit(2);
      }
      return v;
    };
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--quick") {
        s.quick = true;
        s.factor = 0.25;
      } else if (a == "--full") {
        s.full = true;
        s.factor = 4.0;
      } else if (a == "--smoke") {
        s.smoke = true;
        s.quick = true;
        s.factor = 0.0;
      } else if (a == "--micro") {
        s.micro = true;
      } else if (a.rfind("--threads=", 0) == 0) {
        const long v = std::strtol(a.c_str() + 10, nullptr, 10);
        if (v > 0) s.threads = static_cast<std::uint32_t>(v);
      } else if (a.rfind("--shards=", 0) == 0) {
        const long v = std::strtol(a.c_str() + 9, nullptr, 10);
        if (v > 0) s.shards = static_cast<std::uint32_t>(v);
      } else if (a.rfind("--strategy=", 0) == 0) {
        s.strategy_name = a.substr(11);
        BatchStrategy ignored;
        if (!parse_strategy(s.strategy_name, ignored)) {
          std::cerr << "unknown --strategy value '" << s.strategy_name
                    << "' (want geometric_skip | multinomial | auto | "
                       "sharded)\n";
          std::exit(2);
        }
      } else if (a.rfind("--fault.drop=", 0) == 0) {
        s.faults.drop = fault_knob(a, 13, 0.0, 1.0, "fault.drop");
      } else if (a.rfind("--fault.oneway=", 0) == 0) {
        s.faults.oneway = fault_knob(a, 15, 0.0, 1.0, "fault.oneway");
      } else if (a.rfind("--fault.churn=", 0) == 0) {
        // The churn <= n upper bound needs the population; the engines
        // check it. Here: any finite non-negative rate.
        s.faults.churn = fault_knob(a, 14, 0.0, 1e300, "fault.churn");
      } else if (a.rfind("--topology=", 0) == 0) {
        s.topology = a.substr(11);
        try {
          Topology::validate_spec(s.topology);
        } catch (const std::exception& e) {
          std::cerr << "bad --topology value '" << s.topology
                    << "': " << e.what() << "\n";
          std::exit(2);
        }
      } else {
        std::cerr << argv[0] << ": unknown flag '" << a
                  << "' (known: --quick --full --smoke --micro --threads=N "
                     "--shards=N --strategy=S --fault.drop=P "
                     "--fault.oneway=P --fault.churn=R --topology=G)\n";
        std::exit(2);
      }
    }
    return s;
  }

  // The engine strategy this run should use: the --strategy flag if given,
  // else the bench's own default.
  BatchStrategy strategy_or(BatchStrategy fallback) const {
    BatchStrategy s = fallback;
    if (!strategy_name.empty()) parse_strategy(strategy_name, s);
    return s;
  }

  std::uint32_t trials(std::uint32_t base) const {
    if (smoke) return 1;
    const auto t = static_cast<std::uint32_t>(base * factor);
    return t < 3 ? 3 : t;
  }

  // Sweep points for this run: the full list normally, only the first
  // (smallest) entry under --smoke. Works for any point type (population
  // sizes, ablation factors, Smax values, ...).
  template <class T>
  std::vector<T> points(std::initializer_list<T> all) const {
    if (smoke) return {*all.begin()};
    return all;
  }

  // The common case: population sizes (keeps integer literals deducing to
  // std::uint32_t at every call site).
  std::vector<std::uint32_t> sizes(
      std::initializer_list<std::uint32_t> all) const {
    return points<std::uint32_t>(all);
  }
};

// Flag parser for the examples: --backend=array|batch plus nothing else.
// Returns true for the batched engine. Unknown flags are a hard error.
inline bool parse_backend_flag(int argc, char** argv,
                               bool default_batch = false) {
  bool batch = default_batch;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--backend=batch") {
      batch = true;
    } else if (a == "--backend=array") {
      batch = false;
    } else {
      std::cerr << argv[0] << ": unknown flag '" << a
                << "' (known: --backend=array|batch)\n";
      std::exit(2);
    }
  }
  return batch;
}

// For binaries that take no flags at all: hard-error on any argument.
inline void require_no_args(int argc, char** argv) {
  if (argc <= 1) return;
  std::cerr << argv[0] << ": unexpected argument '" << argv[1]
            << "' (this binary takes no flags)\n";
  std::exit(2);
}

}  // namespace ppsim
