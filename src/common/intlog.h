// Shared integer-logarithm helper.
//
// ceil_log2(n) = ceil(log2 n) for n >= 2, and 1 for n <= 2 — i.e. the
// number of bits needed to index n distinct values, floored at 1 so that
// degenerate populations still get a nonempty bit budget. Both
// Name::full_length (common/name.h) and SublinearParams (protocols/
// sublinear.h, protocols/sublinear_count.h) derive their bit lengths from
// this one definition; they used to carry near-identical private loops.
#pragma once

#include <algorithm>
#include <cstdint>

namespace ppsim {

inline std::uint32_t ceil_log2(std::uint32_t n) {
  std::uint32_t bits = 0;
  std::uint32_t v = n > 1 ? n - 1 : 1;
  while (v > 0) {
    ++bits;
    v >>= 1;
  }
  return std::max<std::uint32_t>(1, bits);
}

}  // namespace ppsim
