// The `roster` field of Sublinear-Time-SSR (Protocol 5): the set of all names
// an agent has heard of, propagated by union on every interaction (the roll
// call process). Stored as a sorted, copy-on-write vector so that
//   - union is a linear merge,
//   - an agent's rank is its name's lower_bound position + 1 (the
//     "lexicographic order of name in roster", Protocol 5 line 8),
//   - the ghost-name trigger |roster_a U roster_b| > n can short-circuit
//     without materializing an oversized union,
//   - after the population converges, all agents share one immutable vector
//     and every roster operation is O(1) (pointer equality spreads like an
//     epidemic because equal-content merges adopt one side's storage).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/name.h"

namespace ppsim {

class Roster {
 public:
  Roster() : names_(empty_storage()) {}

  static Roster singleton(const Name& name) {
    Roster r;
    r.names_ = std::make_shared<const std::vector<Name>>(
        std::vector<Name>{name});
    return r;
  }

  std::size_t size() const { return names_->size(); }

  bool contains(const Name& n) const {
    return std::binary_search(names_->begin(), names_->end(), n);
  }

  const std::vector<Name>& names() const { return *names_; }

  void insert(const Name& n) {
    if (contains(n)) return;
    std::vector<Name> copy = *names_;  // copy-on-write
    copy.insert(std::lower_bound(copy.begin(), copy.end(), n), n);
    names_ = std::make_shared<const std::vector<Name>>(std::move(copy));
  }

  // 1-based lexicographic position of `n` among the roster entries. Defined
  // even when n is absent (adversarial states); equals 1 + #entries < n.
  std::uint32_t lexicographic_rank(const Name& n) const {
    auto it = std::lower_bound(names_->begin(), names_->end(), n);
    return static_cast<std::uint32_t>(it - names_->begin()) + 1;
  }

  // |a U b| without materializing the union. O(1) when storage is shared.
  static std::size_t union_size(const Roster& a, const Roster& b) {
    if (a.names_ == b.names_) return a.size();
    std::size_t count = 0;
    auto ia = a.names_->begin();
    auto ib = b.names_->begin();
    while (ia != a.names_->end() && ib != b.names_->end()) {
      if (*ia < *ib)
        ++ia;
      else if (*ib < *ia)
        ++ib;
      else {
        ++ia;
        ++ib;
      }
      ++count;
    }
    count += static_cast<std::size_t>(a.names_->end() - ia);
    count += static_cast<std::size_t>(b.names_->end() - ib);
    return count;
  }

  // The union. Adopts `a`'s storage when it already equals the union (in
  // particular when the rosters are equal), so repeated merges converge to
  // one shared vector and become O(1).
  static Roster merged(const Roster& a, const Roster& b) {
    if (a.names_ == b.names_) return a;
    if (a.size() >= b.size() &&
        std::includes(a.names_->begin(), a.names_->end(), b.names_->begin(),
                      b.names_->end()))
      return a;
    if (b.size() > a.size() &&
        std::includes(b.names_->begin(), b.names_->end(), a.names_->begin(),
                      a.names_->end()))
      return b;
    std::vector<Name> out;
    out.reserve(a.size() + b.size());
    std::set_union(a.names_->begin(), a.names_->end(), b.names_->begin(),
                   b.names_->end(), std::back_inserter(out));
    Roster r;
    r.names_ = std::make_shared<const std::vector<Name>>(std::move(out));
    return r;
  }

  // Content equality (pointer fast path).
  friend bool operator==(const Roster& a, const Roster& b) {
    return a.names_ == b.names_ || *a.names_ == *b.names_;
  }

  bool shares_storage_with(const Roster& other) const {
    return names_ == other.names_;
  }

 private:
  static const std::shared_ptr<const std::vector<Name>>& empty_storage() {
    static const auto empty =
        std::make_shared<const std::vector<Name>>();
    return empty;
  }

  std::shared_ptr<const std::vector<Name>> names_;  // sorted, unique
};

}  // namespace ppsim
