// Host fingerprinting for perf baselines.
//
// Wall-clock baselines only transfer between machines with the same CPU;
// tools/bench_compare keys its per-host baseline directories by this
// fingerprint (CPU model + logical core count) so a CI runner that matches
// the baseline host can apply the tight regression gate, while unknown
// hosts fall back to a loose cross-machine threshold. BenchReport also
// stamps the fingerprint into every BENCH_*.json envelope so an artifact
// records where its numbers came from.
#pragma once

#include <cctype>
#include <fstream>
#include <string>
#include <thread>

namespace ppsim {

namespace detail {
inline std::string cpu_model_name() {
  std::ifstream in("/proc/cpuinfo");
  std::string line;
  while (std::getline(in, line)) {
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (line.compare(0, 10, "model name") == 0 ||
        line.compare(0, 8, "Hardware") == 0) {  // some ARM kernels
      std::string value = line.substr(colon + 1);
      while (!value.empty() && std::isspace(static_cast<unsigned char>(
                                   value.front())))
        value.erase(value.begin());
      while (!value.empty() &&
             std::isspace(static_cast<unsigned char>(value.back())))
        value.pop_back();
      if (!value.empty()) return value;
    }
  }
  return "unknown-cpu";
}
}  // namespace detail

// Human-readable fingerprint: "<cpu model> x<logical cores>".
inline const std::string& host_fingerprint() {
  static const std::string fp = [] {
    const unsigned hw = std::thread::hardware_concurrency();
    return detail::cpu_model_name() + " x" + std::to_string(hw ? hw : 1);
  }();
  return fp;
}

// Filesystem-safe slug of the fingerprint (lowercase, [a-z0-9-] only,
// runs of other characters collapsed to one '-'): the per-host baseline
// directory name bench_compare looks for.
inline const std::string& host_fingerprint_slug() {
  static const std::string slug = [] {
    std::string out;
    bool dash = false;
    for (char c : host_fingerprint()) {
      const auto u = static_cast<unsigned char>(c);
      if (std::isalnum(u)) {
        out.push_back(static_cast<char>(std::tolower(u)));
        dash = false;
      } else if (!dash && !out.empty()) {
        out.push_back('-');
        dash = true;
      }
    }
    while (!out.empty() && out.back() == '-') out.pop_back();
    return out.empty() ? std::string("unknown-host") : out;
  }();
  return slug;
}

}  // namespace ppsim
