// Propagate-Reset (Protocol 2, Section 3).
//
// A reusable subprotocol by which an agent that detects an error triggers a
// global restart: the trigger (resetcount = Rmax) spreads by epidemic as a
// propagating variable a,b <- max(a-1, b-1, 0) (Observation 3.1); once
// everyone's count hits 0 the population is dormant; dormant agents count a
// delaytimer down from Dmax and then execute the host protocol's Reset, and
// the instruction to awaken spreads by epidemic (a dormant agent that meets a
// computing agent resets immediately).
//
// Crucially, agents keep no memory of whether a reset already happened
// (Section 3, footnote 10): an adversary could otherwise plant "already
// reset" markers and suppress the reset forever.
//
// The host protocol supplies role management through the Host concept below:
//   is_resetting(s)      - whether s is in the Resetting role
//   reset_count(s)       - mutable access to resetcount  (Resetting only)
//   delay_timer(s)       - mutable access to delaytimer  (Resetting only)
//   recruit(s)           - enter the Resetting role with resetcount = 0,
//                          delaytimer = Dmax, plus protocol-specific
//                          initialization (e.g. leader <- L in Protocol 3)
//   reset_agent(s)       - the Reset subroutine; must leave the Resetting role
//   dmax()               - the delay constant Dmax
#pragma once

#include <algorithm>
#include <cassert>
#include <concepts>
#include <cstdint>

namespace ppsim {

template <class H, class State>
concept ResetHost = requires(H h, State& s, const State& cs) {
  { h.is_resetting(cs) } -> std::convertible_to<bool>;
  { h.reset_count(s) } -> std::convertible_to<std::uint32_t&>;
  { h.delay_timer(s) } -> std::convertible_to<std::uint32_t&>;
  { h.recruit(s) };
  { h.reset_agent(s) };
  { h.dmax() } -> std::convertible_to<std::uint32_t>;
};

// Satisfies ResetHost by binding a pure (const) protocol to an engine-owned
// counters instance for the duration of one propagate_reset_step call: the
// protocol's reset_agent(state, counters) hook is the only one that reports
// an event, so it is the only one that needs the binding. Used by every
// protocol that embeds Propagate-Reset (Optimal-Silent-SSR,
// Sublinear-Time-SSR, ResetProcess).
template <class P, class Counters>
struct ResetView {
  using State = typename P::State;
  const P& protocol;
  Counters& counters;

  bool is_resetting(const State& s) const { return protocol.is_resetting(s); }
  std::uint32_t& reset_count(State& s) const {
    return protocol.reset_count(s);
  }
  std::uint32_t& delay_timer(State& s) const {
    return protocol.delay_timer(s);
  }
  void recruit(State& s) const { protocol.recruit(s); }
  void reset_agent(State& s) const { protocol.reset_agent(s, counters); }
  std::uint32_t dmax() const { return protocol.dmax(); }
};

// Executes Propagate-Reset for an interacting pair where at least one agent
// is in the Resetting role. Follows Protocol 2 line by line; the "other
// agent is computing" awakening test uses pre-interaction roles, so the first
// agent to awaken does not also awaken its partner within the same
// interaction (matching the paper's definition of an awakening
// configuration).
template <class Host, class State>
  requires ResetHost<Host, State>
void propagate_reset_step(Host& host, State& a, State& b) {
  const bool a_was_resetting = host.is_resetting(a);
  const bool b_was_resetting = host.is_resetting(b);
  assert(a_was_resetting || b_was_resetting);

  // Lines 1-2: a propagating agent recruits a computing partner.
  if (a_was_resetting && !b_was_resetting && host.reset_count(a) > 0) {
    host.recruit(b);
  } else if (b_was_resetting && !a_was_resetting &&
             host.reset_count(b) > 0) {
    host.recruit(a);
  }

  // Lines 3-4: the propagating-variable max rule (Observation 3.1). A
  // computing agent has virtual resetcount 0, in which case the rule is a
  // no-op on the resetting side, so we only apply it when both agents are
  // (now) in the Resetting role.
  bool a_just_zero = false;
  bool b_just_zero = false;
  if (host.is_resetting(a) && host.is_resetting(b)) {
    const std::uint32_t ra = host.reset_count(a);
    const std::uint32_t rb = host.reset_count(b);
    const std::uint32_t v = std::max(std::max(ra, rb), 1u) - 1;
    a_just_zero = ra > 0 && v == 0;
    b_just_zero = rb > 0 && v == 0;
    host.reset_count(a) = v;
    host.reset_count(b) = v;
  }

  // Lines 5-11: dormant agents tick their delay timer and possibly awaken.
  auto handle_dormant = [&](State& self, bool self_just_zero,
                            bool other_was_resetting) {
    if (!host.is_resetting(self) || host.reset_count(self) != 0) return;
    std::uint32_t& timer = host.delay_timer(self);
    if (self_just_zero) {
      timer = host.dmax();  // line 7: initialize the delay
    } else if (timer > 0) {
      --timer;  // line 9
    }
    if (timer == 0 || !other_was_resetting) {
      host.reset_agent(self);  // lines 10-11: awaken
    }
  };
  handle_dormant(a, a_just_zero, b_was_resetting);
  handle_dormant(b, b_just_zero, a_was_resetting);
}

}  // namespace ppsim
