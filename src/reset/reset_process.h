// A minimal host protocol around Propagate-Reset, used to study the reset
// machinery in isolation (Section 3's lemmas) in tests and in
// bench/bench_propagate_reset. Agents are either Computing (a single
// contentless state) or Resetting; Reset returns them to Computing and
// counts how many times each agent has reset.
//
// The protocol is enumerable, so the count-based batched backend can run
// the Section 3 phase experiments past n = 10^6: the canonical coding is
//   0                      Computing
//   1 .. Rmax              Resetting, propagating (resetcount = code)
//   Rmax+1 .. Rmax+1+Dmax  Resetting, dormant (delaytimer = code - Rmax - 1)
// A propagating agent's delaytimer is dead state — Protocol 2 line 7
// rewrites it on the transition to dormancy — and the per-agent
// resets_executed tally is pure instrumentation (never read by the
// dynamics), so both are normalized away by encode(); population-wide reset
// counts remain exact through the engine-owned Counters.
//
// It also declares the unkeyed passive structure (passive = Computing):
// two Computing agents never change, and an all-Computing configuration is
// silent, which is exactly the "null iff both passive" skip the batched
// engine exploits between reset waves.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/rng.h"
#include "reset/propagate_reset.h"

namespace ppsim {

class ResetProcess {
 public:
  struct State {
    bool resetting = false;
    std::uint32_t resetcount = 0;
    std::uint32_t delaytimer = 0;
    std::uint32_t resets_executed = 0;  // per-agent Reset() invocations
  };

  // Engine-owned per-interaction event counters (ObservableProtocol).
  struct Counters {
    std::uint64_t resets_executed = 0;  // population-wide Reset() count

    // ScalableCounters: bulk accounting for the multinomial batch kernel.
    void add_scaled(const Counters& d, std::uint64_t k) {
      resets_executed += d.resets_executed * k;
    }
  };

  // interact() never reads the Rng: transitions are cacheable per ordered
  // state-code pair (multinomial batch strategy).
  static constexpr bool kDeterministicInteract = true;

  // Unkeyed passive structure: two Computing agents are always null.
  static constexpr bool kPassivePairsAreNull = true;

  ResetProcess(std::uint32_t n, std::uint32_t rmax, std::uint32_t dmax)
      : n_(n), rmax_(rmax), dmax_(dmax) {
    if (n < 2) throw std::invalid_argument("population size must be >= 2");
  }

  std::uint32_t population_size() const { return n_; }
  std::uint32_t rmax() const { return rmax_; }

  void interact(State& a, State& b, Rng&, Counters& c) const {
    if (a.resetting || b.resetting) {
      ResetView<ResetProcess, Counters> host{*this, c};
      propagate_reset_step(host, a, b);
    }
  }

  std::uint32_t rank_of(const State&) const { return 0; }

  // Marks an agent as having just detected an error (Protocol 2 precondition:
  // "some agent becoming triggered").
  void trigger(State& s) const {
    s.resetting = true;
    s.resetcount = rmax_;
    s.delaytimer = 0;
  }

  // --- EnumerableProtocol: canonical coding (see file comment). ---
  std::uint32_t num_states() const { return 1 + rmax_ + dmax_ + 1; }

  std::uint32_t encode(const State& s) const {
    if (!s.resetting) return 0;
    if (s.resetcount > 0) {
      if (s.resetcount > rmax_)
        throw std::invalid_argument("invalid propagating Resetting state");
      return s.resetcount;
    }
    if (s.delaytimer > dmax_)
      throw std::invalid_argument("invalid dormant Resetting state");
    return 1 + rmax_ + s.delaytimer;
  }

  State decode(std::uint32_t code) const {
    State s;
    if (code == 0) return s;
    s.resetting = true;
    if (code <= rmax_) {
      s.resetcount = code;
      return s;
    }
    code -= rmax_ + 1;
    if (code > dmax_)
      throw std::invalid_argument("state code out of range");
    s.resetcount = 0;
    s.delaytimer = code;
    return s;
  }

  // --- UnkeyedPassiveProtocol: both Computing => null; all-Computing is
  // silent (and the converse holds too: any pair with a Resetting agent
  // changes state, so is_null_pair is an exact characterization here). ---
  bool is_null_pair(const State& a, const State& b) const {
    return !a.resetting && !b.resetting;
  }
  bool is_passive(const State& s) const { return !s.resetting; }

  // --- ResetHost hooks. ---
  bool is_resetting(const State& s) const { return s.resetting; }
  std::uint32_t& reset_count(State& s) const { return s.resetcount; }
  std::uint32_t& delay_timer(State& s) const { return s.delaytimer; }
  void recruit(State& s) const {
    s.resetting = true;
    s.resetcount = 0;
    s.delaytimer = dmax_;
  }
  void reset_agent(State& s, Counters& c) const {
    s.resetting = false;
    ++s.resets_executed;
    ++c.resets_executed;
  }
  std::uint32_t dmax() const { return dmax_; }

 private:
  std::uint32_t n_;
  std::uint32_t rmax_;
  std::uint32_t dmax_;
};

}  // namespace ppsim
