// A minimal host protocol around Propagate-Reset, used to study the reset
// machinery in isolation (Section 3's lemmas) in tests and in
// bench/bench_propagate_reset. Agents are either Computing (a single
// contentless state) or Resetting; Reset returns them to Computing and
// counts how many times each agent has reset.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/rng.h"
#include "reset/propagate_reset.h"

namespace ppsim {

class ResetProcess {
 public:
  struct State {
    bool resetting = false;
    std::uint32_t resetcount = 0;
    std::uint32_t delaytimer = 0;
    std::uint32_t resets_executed = 0;  // per-agent Reset() invocations
  };

  // Engine-owned per-interaction event counters (ObservableProtocol).
  struct Counters {
    std::uint64_t resets_executed = 0;  // population-wide Reset() count
  };

  ResetProcess(std::uint32_t n, std::uint32_t rmax, std::uint32_t dmax)
      : n_(n), rmax_(rmax), dmax_(dmax) {
    if (n < 2) throw std::invalid_argument("population size must be >= 2");
  }

  std::uint32_t population_size() const { return n_; }
  std::uint32_t rmax() const { return rmax_; }

  void interact(State& a, State& b, Rng&, Counters& c) const {
    if (a.resetting || b.resetting) {
      ResetView<ResetProcess, Counters> host{*this, c};
      propagate_reset_step(host, a, b);
    }
  }

  std::uint32_t rank_of(const State&) const { return 0; }

  // Marks an agent as having just detected an error (Protocol 2 precondition:
  // "some agent becoming triggered").
  void trigger(State& s) const {
    s.resetting = true;
    s.resetcount = rmax_;
    s.delaytimer = 0;
  }

  // --- ResetHost hooks. ---
  bool is_resetting(const State& s) const { return s.resetting; }
  std::uint32_t& reset_count(State& s) const { return s.resetcount; }
  std::uint32_t& delay_timer(State& s) const { return s.delaytimer; }
  void recruit(State& s) const {
    s.resetting = true;
    s.resetcount = 0;
    s.delaytimer = dmax_;
  }
  void reset_agent(State& s, Counters& c) const {
    s.resetting = false;
    ++s.resets_executed;
    ++c.resets_executed;
  }
  std::uint32_t dmax() const { return dmax_; }

 private:
  std::uint32_t n_;
  std::uint32_t rmax_;
  std::uint32_t dmax_;
};

}  // namespace ppsim
