// The "barrier rank" machinery of Lemmas 2.2 and 2.3: for every
// configuration of Silent-n-state-SSR there is a rank k such that the
// partial sums sum_{d=0..r} m_{(k-d) mod n} <= r+1 for all r, and this
// invariant is preserved by every interaction. The barrier is why Protocol 1
// cannot cycle forever. These helpers compute a witness k and check the
// invariant; used in tests (exhaustive for tiny n) and benchmarks.
#pragma once

#include <cstdint>
#include <vector>

#include "protocols/silent_nstate.h"

namespace ppsim {

inline std::vector<std::uint32_t> rank_counts(
    const std::vector<SilentNStateSSR::State>& states, std::uint32_t n) {
  std::vector<std::uint32_t> m(n, 0);
  for (const auto& s : states) ++m[s.rank % n];
  return m;
}

// Lemma 2.2's constructive witness: k minimizing S_k = sum_{j<=k}(m_j - 1).
inline std::uint32_t barrier_rank(const std::vector<std::uint32_t>& counts) {
  const auto n = static_cast<std::uint32_t>(counts.size());
  std::int64_t s = 0;
  std::int64_t best = INT64_MAX;
  std::uint32_t k = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    s += static_cast<std::int64_t>(counts[i]) - 1;
    if (s < best) {
      best = s;
      k = i;
    }
  }
  return k;
}

// Checks invariant (1): for all r, sum_{d=0..r} m_{(k-d) mod n} <= r+1.
inline bool barrier_invariant_holds(const std::vector<std::uint32_t>& counts,
                                    std::uint32_t k) {
  const auto n = static_cast<std::uint32_t>(counts.size());
  std::uint64_t sum = 0;
  for (std::uint32_t r = 0; r < n; ++r) {
    sum += counts[(k + n - (r % n)) % n];
    if (sum > r + 1) return false;
  }
  return true;
}

}  // namespace ppsim
