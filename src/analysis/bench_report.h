// Machine-readable benchmark output.
//
// Every bench binary emits a BENCH_<name>.json next to its human-readable
// tables so the performance trajectory (wall time, interactions, parallel
// time, backend, per-n sweeps) can be tracked across PRs by tooling instead
// of by eyeball. The format is a flat list of records — one JSON object per
// measurement — under a small envelope:
//
//   {
//     "bench": "table1",
//     "records": [
//       {"experiment": "detection_latency", "n": 1000000,
//        "backend": "batch", "wall_seconds": 0.31,
//        "interactions": 499999500000, "parallel_time": 499999.5, ...},
//       ...
//     ]
//   }
//
// Records are schema-free key/value rows (numbers, strings, booleans); the
// conventional keys are "experiment", "n", "backend", "wall_seconds",
// "interactions", "parallel_time", "trials".
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/host.h"

namespace ppsim {

// JSON string literal (quotes + escapes) for the writer below.
inline std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += "\"";
  return out;
}

class BenchRecord {
 public:
  BenchRecord& set(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, json_quote(value));
    return *this;
  }
  BenchRecord& set(const std::string& key, const char* value) {
    return set(key, std::string(value));
  }
  BenchRecord& set(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", value);
    fields_.emplace_back(key, buf);
    return *this;
  }
  BenchRecord& set(const std::string& key, std::uint64_t value) {
    fields_.emplace_back(key, std::to_string(value));
    return *this;
  }
  BenchRecord& set(const std::string& key, std::uint32_t value) {
    return set(key, static_cast<std::uint64_t>(value));
  }
  BenchRecord& set(const std::string& key, int value) {
    fields_.emplace_back(key, std::to_string(value));
    return *this;
  }
  BenchRecord& set(const std::string& key, bool value) {
    fields_.emplace_back(key, value ? "true" : "false");
    return *this;
  }

  std::string json() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i) out += ", ";
      out += json_quote(fields_[i].first) + ": " + fields_[i].second;
    }
    out += "}";
    return out;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;  // key -> json
};

class BenchReport {
 public:
  // `name` is the bench's short name: BenchReport("table1") writes
  // BENCH_table1.json in the current working directory on write().
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  BenchRecord& add() {
    records_.emplace_back();
    return records_.back();
  }

  // Writes BENCH_<name>.json; returns the path (empty on I/O failure).
  std::string write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return "";
    // The host fingerprint records where the numbers came from; the
    // per-host baseline directories of tools/bench_compare --host-gate are
    // named by its slug form (common/host.h).
    std::fprintf(f, "{\"bench\": \"%s\", \"host\": %s, \"records\": [\n",
                 name_.c_str(), json_quote(host_fingerprint()).c_str());
    for (std::size_t i = 0; i < records_.size(); ++i)
      std::fprintf(f, "  %s%s\n", records_[i].json().c_str(),
                   i + 1 < records_.size() ? "," : "");
    std::fprintf(f, "]}\n");
    std::fclose(f);
    return path;
  }

 private:
  std::string name_;
  std::vector<BenchRecord> records_;
};

// Wall-clock stopwatch for bench records.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Appends one record per sweep point (mean/ci95 of the measured metric).
// Count-engine sweeps pass the batching strategy that produced the numbers
// (recorded in every record so perf tooling like tools/bench_compare never
// compares records from different strategies as one configuration); an
// empty strategy emits no field.
template <class SweepT>
void report_sweep_strategy(BenchReport& report, const std::string& experiment,
                           const std::string& backend,
                           const std::string& strategy, const SweepT& sweep,
                           const std::string& metric = "parallel_time") {
  for (const auto& p : sweep.points) {
    BenchRecord& rec = report.add();
    rec.set("experiment", experiment).set("backend", backend);
    if (!strategy.empty()) rec.set("strategy", strategy);
    rec.set("n", static_cast<std::uint64_t>(p.n))
        .set("trials", static_cast<std::uint64_t>(p.summary.count))
        .set(metric + "_mean", p.summary.mean)
        .set(metric + "_ci95", p.summary.ci95)
        .set(metric + "_p99", p.summary.p99);
  }
}

template <class SweepT>
void report_sweep(BenchReport& report, const std::string& experiment,
                  const std::string& backend, const SweepT& sweep,
                  const std::string& metric = "parallel_time") {
  report_sweep_strategy(report, experiment, backend, "", sweep, metric);
}

}  // namespace ppsim
