// DEPRECATED shim — the adversarial generators moved to src/init/.
//
// This header used to define every adversarial initial-configuration
// generator as per-protocol free functions, pulling four protocol headers
// into every consumer. The generators now live in per-protocol headers
// under src/init/ (one include per protocol, plus the composable
// InitialCondition API in init/initial_condition.h that the Scenario API
// dispatches on by name):
//
//   init/silent_nstate_init.h   silent_nstate_random_config / _all_same
//   init/optimal_silent_init.h  OsAdversary, optimal_silent_config,
//                               optimal_silent_dormant_counts
//   init/sublinear_init.h       SlAdversary, sublinear_config, random_name,
//                               distinct_names, random_history_node
//
// Include the specific header(s) you need instead of this one; this shim
// only exists so historical includes keep compiling and will be removed
// once the remaining consumers migrate.
#pragma once

#include "init/optimal_silent_init.h"
#include "init/silent_nstate_init.h"
#include "init/sublinear_init.h"
