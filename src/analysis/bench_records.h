// The bench_compare core: loading BENCH_*.json directories into keyed
// records and diffing two record sets, shared between the tools/
// bench_compare CLI and the unit tests that pin its semantics.
//
// Records are matched by identity key (bench, experiment, backend,
// strategy, n, mode, approximate, tau_eps, abstracted — plus an occurrence
// index for repeated keys); everything else is measurement. The
// `approximate`, `tau_eps`, and `abstracted` fields are part of the
// *identity*, not the measurement: a record produced by the approximate
// tier (strategy=tau / engine=ode, stamped "approximate": true by the
// scenario API) or by an abstracted protocol (a count-form quotient,
// stamped "abstracted": true) is a different experiment class from an
// exact record of the same shape, so the two never silently compare
// against each other when a bench cell migrates between tiers.
//
// Approximate records are additionally exempt from --strict drift checks:
// strictness asserts that same code + same seeds reproduce the
// deterministic fields (interactions, parallel_time) bit-for-bit, which is
// a contract only the exact engines make. Approximate results are pure
// functions of (seed, tau_eps) *for a fixed engine version*, but the whole
// point of the tier is that the engine may legitimately re-tune its leap
// controller between commits — so approximate cells are gated on wall time
// only, and drift in their sampled values is never a CI failure.
// Abstracted records get the same exemption for the same reason: the
// quotient (bucket boundaries, witness truncation) may legitimately be
// re-tuned between commits, so their sampled values are wall-gated only.
//
// Faulted records (fault injection: "faulted": true + the fault_drop /
// fault_oneway / fault_churn knobs) join the identity the same way — a
// faulted cell never silently compares against its fault-free twin or a
// different knob setting — but get NO strict exemption: seeded faults are
// drawn from the engines' own deterministic streams, so same code + same
// seeds reproduce faulted interactions/parallel_time bit for bit, and
// drift there is as much a red flag as in any exact record.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"

namespace ppsim::benchcmp {

struct Record {
  // Identity: bench|experiment|backend|strategy|n|mode|approximate|tau_eps|
  //           abstracted|faulted|fault_drop|fault_oneway|fault_churn|#i
  std::string key;
  std::map<std::string, double> metrics;  // numeric + boolean fields (0/1)

  bool approximate() const {
    const auto it = metrics.find("approximate");
    return it != metrics.end() && it->second != 0.0;
  }
  bool abstracted() const {
    const auto it = metrics.find("abstracted");
    return it != metrics.end() && it->second != 0.0;
  }
};

inline std::string identity_field(const JsonValue& rec, const char* name) {
  const JsonValue* v = rec.get(name);
  if (v == nullptr) return "";
  if (v->kind == JsonValue::Kind::kString) return v->str;
  if (v->kind == JsonValue::Kind::kNumber) {
    std::ostringstream os;
    os << v->num;
    return os.str();
  }
  if (v->kind == JsonValue::Kind::kBool) return v->b ? "true" : "false";
  return "";
}

// Loads every BENCH_*.json record in `dir` under its identity key.
inline bool load_dir(const std::string& dir,
                     std::map<std::string, Record>& out, bool verbose,
                     std::ostream& log = std::cout,
                     std::ostream& err = std::cerr) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(dir)) {
    err << "bench_compare: not a directory: " << dir << "\n";
    return false;
  }
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
        name.substr(name.size() - 5) == ".json")
      files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  std::map<std::string, int> occurrence;
  for (const auto& path : files) {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    JsonValue root;
    if (!JsonParser(text).parse(root) ||
        root.kind != JsonValue::Kind::kObject) {
      err << "bench_compare: cannot parse " << path << "\n";
      return false;
    }
    const JsonValue* bench = root.get("bench");
    const JsonValue* records = root.get("records");
    if (bench == nullptr || records == nullptr ||
        records->kind != JsonValue::Kind::kArray) {
      err << "bench_compare: unexpected schema in " << path << "\n";
      return false;
    }
    for (const JsonValue& r : records->items) {
      if (r.kind != JsonValue::Kind::kObject) continue;
      std::string key = bench->str;
      for (const char* field : {"experiment", "backend", "strategy", "n",
                                "mode", "approximate", "tau_eps",
                                "abstracted", "faulted", "fault_drop",
                                "fault_oneway", "fault_churn"}) {
        key.push_back('|');
        key.append(identity_field(r, field));
      }
      const int index = occurrence[key]++;
      key.append("|#");
      key.append(std::to_string(index));
      Record rec;
      rec.key = key;
      for (const auto& [k, v] : r.fields) {
        if (v.kind == JsonValue::Kind::kNumber) rec.metrics[k] = v.num;
        if (v.kind == JsonValue::Kind::kBool) rec.metrics[k] = v.b ? 1 : 0;
      }
      out.emplace(key, std::move(rec));
    }
  }
  if (verbose)
    log << "loaded " << out.size() << " records from " << files.size()
        << " files in " << dir << "\n";
  return true;
}

struct CompareOptions {
  double threshold = 0.20;    // relative wall_seconds growth = regression
  double min_seconds = 0.05;  // absolute growth a regression must exceed
  bool strict = false;        // flag drift in deterministic fields
};

struct CompareStats {
  int compared = 0;
  int regressions = 0;
  int improvements = 0;
  int drift = 0;
  int approx_exempt = 0;      // approximate records --strict skipped over
  int abstracted_exempt = 0;  // abstracted records --strict skipped over
  int missing = 0;            // baseline-only records
  int added = 0;          // candidate-only records
  bool failed() const { return regressions > 0 || drift > 0; }
};

// Diffs candidate against baseline: wall-clock gating for every matched
// pair, strict drift for exact records only (see the header comment for
// why approximate records are exempt). Findings are printed to `out`.
inline CompareStats compare(const std::map<std::string, Record>& base,
                            const std::map<std::string, Record>& cand,
                            const CompareOptions& opts,
                            std::ostream& out = std::cout) {
  CompareStats stats;
  char line[256];
  for (const auto& [key, b] : base) {
    const auto it = cand.find(key);
    if (it == cand.end()) {
      ++stats.missing;
      continue;
    }
    const Record& c = it->second;
    const auto bw = b.metrics.find("wall_seconds");
    const auto cw = c.metrics.find("wall_seconds");
    if (bw != b.metrics.end() && cw != c.metrics.end()) {
      // A regression must exceed the relative threshold AND an absolute
      // min_seconds of growth: the absolute floor keeps sub-noise records
      // (smoke runs) quiet without masking a large blowup from a tiny
      // baseline.
      ++stats.compared;
      const double ratio = cw->second / std::max(bw->second, 1e-12);
      if (cw->second >
          bw->second * (1.0 + opts.threshold) + opts.min_seconds) {
        ++stats.regressions;
        std::snprintf(line, sizeof line,
                      "REGRESSION  %-70s %8.3fs -> %8.3fs  (%.0f%%)\n",
                      key.c_str(), bw->second, cw->second,
                      (ratio - 1.0) * 100.0);
        out << line;
      } else if (cw->second <
                 bw->second * (1.0 - opts.threshold) - opts.min_seconds) {
        ++stats.improvements;
        std::snprintf(line, sizeof line,
                      "improved    %-70s %8.3fs -> %8.3fs  (%.0f%%)\n",
                      key.c_str(), bw->second, cw->second,
                      (ratio - 1.0) * 100.0);
        out << line;
      }
    }
    if (opts.strict) {
      if (b.approximate() || c.approximate()) {
        ++stats.approx_exempt;
        continue;
      }
      if (b.abstracted() || c.abstracted()) {
        ++stats.abstracted_exempt;
        continue;
      }
      for (const char* field : {"interactions", "parallel_time"}) {
        const auto bf = b.metrics.find(field);
        const auto cf = c.metrics.find(field);
        if (bf == b.metrics.end() || cf == c.metrics.end()) continue;
        const double denom = std::max(1.0, std::fabs(bf->second));
        if (std::fabs(bf->second - cf->second) / denom > 1e-9) {
          ++stats.drift;
          std::snprintf(line, sizeof line,
                        "DRIFT       %-70s %s %.17g -> %.17g\n", key.c_str(),
                        field, bf->second, cf->second);
          out << line;
        }
      }
    }
  }
  for (const auto& [key, c] : cand) {
    (void)c;
    if (base.find(key) == base.end()) ++stats.added;
  }
  return stats;
}

}  // namespace ppsim::benchcmp
