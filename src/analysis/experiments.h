// Shared helpers for the benchmark harness: seeded trial loops, sweep
// tables, and scaling-exponent reports.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/rng.h"
#include "core/stats.h"
#include "core/table.h"

namespace ppsim {

// Runs `trials` seeded executions of `one` (seed -> measurement).
template <class F>
std::vector<double> run_trials(std::uint32_t trials, std::uint64_t base_seed,
                               F&& one) {
  std::vector<double> xs;
  xs.reserve(trials);
  for (std::uint32_t t = 0; t < trials; ++t)
    xs.push_back(one(derive_seed(base_seed, t)));
  return xs;
}

// A (n, summary) sweep with a power-law fit over the means.
struct SweepPoint {
  double n = 0;
  Summary summary;
};

struct Sweep {
  std::vector<SweepPoint> points;

  LinearFit fit() const {
    std::vector<double> ns, ts;
    for (const auto& p : points) {
      ns.push_back(p.n);
      ts.push_back(p.summary.mean);
    }
    return fit_power_law(ns, ts);
  }

  // Growth factor of the mean per doubling of n between consecutive points
  // (assumes the sweep doubles n); length = points-1.
  std::vector<double> doubling_factors() const {
    std::vector<double> fs;
    for (std::size_t i = 1; i < points.size(); ++i)
      fs.push_back(points[i].summary.mean / points[i - 1].summary.mean);
    return fs;
  }
};

// Standard sweep printer: one row per n with mean +/- ci, p50/p95/p99.
inline void print_sweep(const std::string& title, const Sweep& sweep,
                        const std::string& metric = "parallel time") {
  std::cout << "\n== " << title << " ==\n";
  Table t({"n", metric + " mean", "ci95", "p50", "p95", "p99", "max"});
  for (const auto& p : sweep.points) {
    t.add_row({fmt(p.n, 0), fmt(p.summary.mean), fmt(p.summary.ci95),
               fmt(p.summary.p50), fmt(p.summary.p95), fmt(p.summary.p99),
               fmt(p.summary.max)});
  }
  t.print();
  if (sweep.points.size() >= 2) {
    const LinearFit f = sweep.fit();
    std::cout << "log-log fit: time ~ n^" << fmt(f.slope, 3)
              << "  (R^2 = " << fmt(f.r2, 4) << ")\n";
  }
}

// Tiny flag parser for the bench binaries: --quick / --full scale the trial
// counts; everything else is ignored (so the binaries also tolerate being
// invoked by generic runners).
struct BenchScale {
  double factor = 1.0;  // multiplies trial counts
  bool quick = false;
  bool full = false;

  static BenchScale from_args(int argc, char** argv) {
    BenchScale s;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--quick") {
        s.quick = true;
        s.factor = 0.25;
      } else if (a == "--full") {
        s.full = true;
        s.factor = 4.0;
      }
    }
    return s;
  }

  std::uint32_t trials(std::uint32_t base) const {
    const auto t = static_cast<std::uint32_t>(base * factor);
    return t < 3 ? 3 : t;
  }
};

}  // namespace ppsim
