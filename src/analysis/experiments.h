// Shared helpers for the benchmark harness: seeded trial loops (serial and
// multi-threaded), sweep tables, and scaling-exponent reports.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.h"  // BenchScale (shared bench flag parsing)
#include "core/engine.h"  // BatchStrategy, parse_strategy
#include "core/rng.h"
#include "core/stats.h"
#include "core/table.h"

namespace ppsim {

// Runs `trials` seeded executions of `one` (seed -> measurement).
template <class F>
std::vector<double> run_trials(std::uint32_t trials, std::uint64_t base_seed,
                               F&& one) {
  std::vector<double> xs;
  xs.reserve(trials);
  for (std::uint32_t t = 0; t < trials; ++t)
    xs.push_back(one(derive_seed(base_seed, t)));
  return xs;
}

// Thread count for run_trials_parallel: explicit argument, else the
// PPSIM_THREADS environment variable, else the hardware concurrency.
inline std::uint32_t resolve_thread_count(std::uint32_t requested = 0) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("PPSIM_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::uint32_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

// Multi-threaded seed fan-out. Deterministic by construction: trial t always
// runs with derive_seed(base_seed, t) — an independent derived RNG stream —
// and lands in slot t of the result vector, so the measurements are
// bit-identical regardless of the thread count (validated in
// tests/engine_equivalence_test.cpp). `one` must be self-contained: each
// invocation constructs its own protocol and engine and shares no mutable
// state with other trials. Threads defaults to resolve_thread_count()
// (PPSIM_THREADS env var / hardware concurrency; benches plumb --threads).
template <class F>
std::vector<double> run_trials_parallel(std::uint32_t trials,
                                        std::uint64_t base_seed, F&& one,
                                        std::uint32_t threads = 0) {
  threads = resolve_thread_count(threads);
  if (threads > trials) threads = trials;
  std::vector<double> xs(trials, 0.0);
  if (threads <= 1) {
    for (std::uint32_t t = 0; t < trials; ++t)
      xs[t] = one(derive_seed(base_seed, t));
    return xs;
  }
  std::atomic<std::uint32_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto worker = [&] {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;  // fail fast
      const std::uint32_t t = next.fetch_add(1);
      if (t >= trials) return;
      try {
        xs[t] = one(derive_seed(base_seed, t));
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::uint32_t i = 0; i < threads; ++i) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
  return xs;
}

// A (n, summary) sweep with a power-law fit over the means.
struct SweepPoint {
  double n = 0;
  Summary summary;
};

struct Sweep {
  std::vector<SweepPoint> points;

  LinearFit fit() const {
    std::vector<double> ns, ts;
    for (const auto& p : points) {
      ns.push_back(p.n);
      ts.push_back(p.summary.mean);
    }
    return fit_power_law(ns, ts);
  }

  // Growth factor of the mean per doubling of n between consecutive points
  // (assumes the sweep doubles n); length = points-1.
  std::vector<double> doubling_factors() const {
    std::vector<double> fs;
    for (std::size_t i = 1; i < points.size(); ++i)
      fs.push_back(points[i].summary.mean / points[i - 1].summary.mean);
    return fs;
  }
};

// Standard sweep printer: one row per n with mean +/- ci, p50/p95/p99.
inline void print_sweep(const std::string& title, const Sweep& sweep,
                        const std::string& metric = "parallel time") {
  std::cout << "\n== " << title << " ==\n";
  Table t({"n", metric + " mean", "ci95", "p50", "p95", "p99", "max"});
  for (const auto& p : sweep.points) {
    t.add_row({fmt(p.n, 0), fmt(p.summary.mean), fmt(p.summary.ci95),
               fmt(p.summary.p50), fmt(p.summary.p95), fmt(p.summary.p99),
               fmt(p.summary.max)});
  }
  t.print();
  if (sweep.points.size() >= 2) {
    const LinearFit f = sweep.fit();
    std::cout << "log-log fit: time ~ n^" << fmt(f.slope, 3)
              << "  (R^2 = " << fmt(f.r2, 4) << ")\n";
  }
}

// BenchScale (the shared --smoke/--quick/--full/--threads/--strategy flag
// bundle) lives in common/cli.h now, re-exported through the include above;
// unknown flags are a hard error there instead of being silently ignored.

}  // namespace ppsim
