// Shared helpers for the benchmark harness: seeded trial loops (serial and
// multi-threaded), sweep tables, and scaling-exponent reports.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"  // BatchStrategy, parse_strategy
#include "core/rng.h"
#include "core/stats.h"
#include "core/table.h"

namespace ppsim {

// Runs `trials` seeded executions of `one` (seed -> measurement).
template <class F>
std::vector<double> run_trials(std::uint32_t trials, std::uint64_t base_seed,
                               F&& one) {
  std::vector<double> xs;
  xs.reserve(trials);
  for (std::uint32_t t = 0; t < trials; ++t)
    xs.push_back(one(derive_seed(base_seed, t)));
  return xs;
}

// Thread count for run_trials_parallel: explicit argument, else the
// PPSIM_THREADS environment variable, else the hardware concurrency.
inline std::uint32_t resolve_thread_count(std::uint32_t requested = 0) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("PPSIM_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::uint32_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

// Multi-threaded seed fan-out. Deterministic by construction: trial t always
// runs with derive_seed(base_seed, t) — an independent derived RNG stream —
// and lands in slot t of the result vector, so the measurements are
// bit-identical regardless of the thread count (validated in
// tests/engine_equivalence_test.cpp). `one` must be self-contained: each
// invocation constructs its own protocol and engine and shares no mutable
// state with other trials. Threads defaults to resolve_thread_count()
// (PPSIM_THREADS env var / hardware concurrency; benches plumb --threads).
template <class F>
std::vector<double> run_trials_parallel(std::uint32_t trials,
                                        std::uint64_t base_seed, F&& one,
                                        std::uint32_t threads = 0) {
  threads = resolve_thread_count(threads);
  if (threads > trials) threads = trials;
  std::vector<double> xs(trials, 0.0);
  if (threads <= 1) {
    for (std::uint32_t t = 0; t < trials; ++t)
      xs[t] = one(derive_seed(base_seed, t));
    return xs;
  }
  std::atomic<std::uint32_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto worker = [&] {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;  // fail fast
      const std::uint32_t t = next.fetch_add(1);
      if (t >= trials) return;
      try {
        xs[t] = one(derive_seed(base_seed, t));
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::uint32_t i = 0; i < threads; ++i) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
  return xs;
}

// A (n, summary) sweep with a power-law fit over the means.
struct SweepPoint {
  double n = 0;
  Summary summary;
};

struct Sweep {
  std::vector<SweepPoint> points;

  LinearFit fit() const {
    std::vector<double> ns, ts;
    for (const auto& p : points) {
      ns.push_back(p.n);
      ts.push_back(p.summary.mean);
    }
    return fit_power_law(ns, ts);
  }

  // Growth factor of the mean per doubling of n between consecutive points
  // (assumes the sweep doubles n); length = points-1.
  std::vector<double> doubling_factors() const {
    std::vector<double> fs;
    for (std::size_t i = 1; i < points.size(); ++i)
      fs.push_back(points[i].summary.mean / points[i - 1].summary.mean);
    return fs;
  }
};

// Standard sweep printer: one row per n with mean +/- ci, p50/p95/p99.
inline void print_sweep(const std::string& title, const Sweep& sweep,
                        const std::string& metric = "parallel time") {
  std::cout << "\n== " << title << " ==\n";
  Table t({"n", metric + " mean", "ci95", "p50", "p95", "p99", "max"});
  for (const auto& p : sweep.points) {
    t.add_row({fmt(p.n, 0), fmt(p.summary.mean), fmt(p.summary.ci95),
               fmt(p.summary.p50), fmt(p.summary.p95), fmt(p.summary.p99),
               fmt(p.summary.max)});
  }
  t.print();
  if (sweep.points.size() >= 2) {
    const LinearFit f = sweep.fit();
    std::cout << "log-log fit: time ~ n^" << fmt(f.slope, 3)
              << "  (R^2 = " << fmt(f.r2, 4) << ")\n";
  }
}

// Tiny flag parser for the bench binaries:
//   --quick / --full   scale the trial counts down / up
//   --smoke            CI mode: 1 trial, smallest population only (see
//                      sizes()) — exercises every code path in seconds
//   --threads=N        thread count for run_trials_parallel (also
//                      PPSIM_THREADS; 0 = hardware concurrency)
//   --strategy=S       batching strategy for the count-based engine
//                      (geometric_skip | multinomial | auto); benches that
//                      honor it call strategy_or() and record the choice in
//                      their BENCH_*.json metadata
// Everything else is ignored (so the binaries also tolerate being invoked by
// generic runners).
struct BenchScale {
  double factor = 1.0;  // multiplies trial counts
  bool quick = false;
  bool full = false;
  bool smoke = false;
  std::uint32_t threads = 0;   // 0 = auto (env / hardware)
  std::string strategy_name;   // empty = bench default

  static BenchScale from_args(int argc, char** argv) {
    BenchScale s;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--quick") {
        s.quick = true;
        s.factor = 0.25;
      } else if (a == "--full") {
        s.full = true;
        s.factor = 4.0;
      } else if (a == "--smoke") {
        s.smoke = true;
        s.quick = true;
        s.factor = 0.0;
      } else if (a.rfind("--threads=", 0) == 0) {
        const long v = std::strtol(a.c_str() + 10, nullptr, 10);
        if (v > 0) s.threads = static_cast<std::uint32_t>(v);
      } else if (a.rfind("--strategy=", 0) == 0) {
        s.strategy_name = a.substr(11);
        BatchStrategy ignored;
        if (!parse_strategy(s.strategy_name, ignored)) {
          std::cerr << "unknown --strategy value '" << s.strategy_name
                    << "' (want geometric_skip | multinomial | auto)\n";
          std::exit(2);
        }
      }
    }
    return s;
  }

  // The engine strategy this run should use: the --strategy flag if given,
  // else the bench's own default.
  BatchStrategy strategy_or(BatchStrategy fallback) const {
    BatchStrategy s = fallback;
    if (!strategy_name.empty()) parse_strategy(strategy_name, s);
    return s;
  }

  std::uint32_t trials(std::uint32_t base) const {
    if (smoke) return 1;
    const auto t = static_cast<std::uint32_t>(base * factor);
    return t < 3 ? 3 : t;
  }

  // Sweep points for this run: the full list normally, only the first
  // (smallest) entry under --smoke. Works for any point type (population
  // sizes, ablation factors, Smax values, ...).
  template <class T>
  std::vector<T> points(std::initializer_list<T> all) const {
    if (smoke) return {*all.begin()};
    return all;
  }

  // The common case: population sizes (keeps integer literals deducing to
  // std::uint32_t at every call site).
  std::vector<std::uint32_t> sizes(
      std::initializer_list<std::uint32_t> all) const {
    return points<std::uint32_t>(all);
  }
};

}  // namespace ppsim
