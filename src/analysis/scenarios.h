// Concrete protocol registrations for the Scenario API (core/registry.h).
//
// Every protocol in src/protocols/ and src/reset/ is registered here with
// its name, state-space metadata, named adversarial initial conditions
// (src/init/), supported stop conditions, and a type-erased runner that
// executes a ScenarioSpec end to end:
//
//   protocol         inits (default first)            stop conditions
//   silent-nstate    worst-case, uniform-random, ...  ranked | ptime
//   optimal-silent   uniform-random, duplicate-rank,  ranked | detected |
//                    dormant-mix, single-leader, ...    ptime
//   sublinear-h1     uniform-random, ghost-names, ... ranked | ptime
//   sublinear-hlog   (same; H = 3 log2 n params)      ranked | ptime
//   sublinear-h1-count   duplicate-names, mid-reset,  detected | drained |
//   sublinear-hlog-count   correct-ranked, post-wave    ptime
//   reset-process    trigger-one, mid-reset-mix, ...  drained | ptime
//   one-way-epidemic single-infected, residual-16     complete | ptime
//   obs25            all-leaders, uniform-random      silent | ptime
//   ring-ssle        uniform-random, coherent, ...    elected | ptime
//                    (directed ring only; topology defaults to ring)
//
// Stop conditions:
//   ranked    run until the ranking is stably correct (the paper's
//             stabilization time); metric = stabilization parallel time
//   detected / drained / complete / silent
//             protocol-specific predicates; metric = parallel time at the
//             first firing
//   ptime     fixed parallel-time budget (spec.horizon_ptime); metric =
//             per-trial *run* wall seconds (engine construction excluded;
//             ScenarioResult.wall_seconds covers the whole scenario
//             including construction) — the perf-measurement mode
//
// Engine resolution: spec.engine = "auto" picks the batched engine for
// enumerable protocols and the agent array otherwise; "batch" on a
// non-enumerable protocol is a hard error. Trial t always runs the RNG
// streams derived from derive_seed(spec.seed, t) (init and engine streams
// split one level deeper), so results are bit-identical for any thread
// count, exactly like run_trials_parallel.
//
// strategy = "sharded" (+ shards=N) runs each trial on the sharded
// single-run engine (core/sharded_simulation.h): the trial fan-out goes
// serial and spec.threads caps the shard workers instead. Results are a
// pure function of (seed, shards) — never of the thread count.
//
// APPROXIMATE tier (opt-in, never auto-chosen):
//   strategy = "tau" (+ tau.eps=E) runs trials on the tau-leaping count
//   engine (core/tau_leap_simulation.h) — exact only in the small-leap
//   limit. engine = "ode" (until=ptime only) integrates the mean-field
//   drift (core/mean_field.h). Both stamp ScenarioResult.approximate =
//   true + the resolved tau_eps; bench_compare exempts such records from
//   strict drift checks against exact baselines.
//
// ABSTRACTED protocols: the sublinear-*-count entries run the truncated
// count-form quotient of Sublinear-Time-SSR (protocols/sublinear_count.h)
// rather than the concrete protocol, so every record they produce is
// stamped ScenarioResult.abstracted = true regardless of engine —
// bench_compare exempts abstracted records from strict drift the same way
// it exempts approximate ones. The trunc.depth param (0 | 1, default 1)
// selects the history-tree truncation depth.
#pragma once

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/bench_report.h"
#include "analysis/convergence.h"
#include "analysis/experiments.h"
#include "core/batch_simulation.h"
#include "core/mean_field.h"
#include "core/registry.h"
#include "core/ring_simulation.h"
#include "core/sharded_simulation.h"
#include "core/simulation.h"
#include "core/tau_leap_simulation.h"
#include "core/topology.h"
#include "init/epidemic_init.h"
#include "init/obs25_init.h"
#include "init/optimal_silent_init.h"
#include "init/reset_init.h"
#include "init/ring_ssle_init.h"
#include "init/silent_nstate_init.h"
#include "init/sublinear_count_init.h"
#include "init/sublinear_init.h"
#include "processes/epidemic.h"
#include "protocols/obs25.h"
#include "protocols/optimal_silent.h"
#include "protocols/ring_ssle.h"
#include "protocols/silent_nstate.h"
#include "protocols/sublinear.h"
#include "protocols/sublinear_count.h"
#include "reset/reset_process.h"

namespace ppsim {

namespace scenario_detail {

inline std::uint32_t resolve_population(const ScenarioSpec& spec,
                                        std::uint32_t default_n,
                                        std::uint32_t fixed_n) {
  if (fixed_n != 0) {
    if (spec.n != 0 && spec.n != fixed_n)
      throw std::invalid_argument("protocol '" + spec.protocol +
                                  "' is defined only for n = " +
                                  std::to_string(fixed_n));
    return fixed_n;
  }
  return spec.n != 0 ? spec.n : default_n;
}

// Compile-time gate for the tau-leaping engine: deterministic transitions
// (bulk application replays the cache), passive-structured null knowledge
// (category enumeration), and — when observable — scalable counters.
template <class P>
inline constexpr bool kTauCapable =
    EnumerableProtocol<P> && DeterministicProtocol<P> &&
    (KeyedPassiveProtocol<P> || UnkeyedPassiveProtocol<P>) &&
    (!ObservableProtocol<P> || ScalableCounters<ProtocolCounters<P>>);

template <class P>
bool resolve_use_batch(const ScenarioSpec& spec) {
  const std::string engine = spec.engine.empty() ? "auto" : spec.engine;
  if (engine == "array") return false;
  if (engine != "batch" && engine != "auto")
    throw std::invalid_argument("unknown engine '" + engine +
                                "' (array | batch | auto; ode needs "
                                "until=ptime)");
  if constexpr (EnumerableProtocol<P>) {
    return true;
  } else {
    if (engine == "batch")
      throw std::invalid_argument(
          "protocol '" + spec.protocol +
          "' is not enumerable: the batched engine cannot run it");
    return false;
  }
}

// Indexed deterministic trial fan-out (same contract as
// run_trials_parallel: slot t is trial t whatever the thread count).
inline void for_each_trial(std::uint32_t trials, std::uint32_t threads,
                           const std::function<void(std::uint32_t)>& body) {
  threads = resolve_thread_count(threads);
  if (threads > trials) threads = trials;
  if (threads <= 1) {
    for (std::uint32_t t = 0; t < trials; ++t) body(t);
    return;
  }
  std::atomic<std::uint32_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto worker = [&] {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      const std::uint32_t t = next.fetch_add(1);
      if (t >= trials) return;
      try {
        body(t);
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::uint32_t i = 0; i < threads; ++i) pool.emplace_back(worker);
  for (auto& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

// Shared trial driver: materializes the named initial condition for the
// resolved engine, runs `run_one(sim) -> {value, fired}` per trial, and
// assembles the ScenarioResult.
template <class P, class RunOne>
ScenarioResult drive(const ScenarioSpec& spec, const P& proto,
                     const InitialConditionSet<P>& inits,
                     const std::string& until_name, const char* metric,
                     RunOne run_one) {
  const std::string init_name =
      spec.init.empty() ? inits.default_name() : spec.init;
  if (inits.find(init_name) == nullptr)
    throw std::invalid_argument("unknown initial condition '" + init_name +
                                "' for protocol '" + spec.protocol + "'");
  // execute_ptime intercepts engine=ode before reaching here, so seeing it
  // means a stop condition the drift-only integrator cannot answer.
  if (spec.engine == "ode")
    throw std::invalid_argument(
        "engine=ode supports until=ptime only (the mean-field drift has no "
        "per-trial stopping events)");
  // Interaction graph (core/topology.h). "" = complete = the classical
  // scheduler, bit for bit. The clique count engines compile the complete
  // graph's pair law, so a non-complete topology demotes engine=auto to
  // the agent array — except the directed ring, which has its own
  // run-length-compressed count engine (core/ring_simulation.h) for
  // protocols with enumerable, deterministic transitions.
  const Topology topology = Topology::parse(
      spec.topology.empty() ? "complete" : spec.topology,
      proto.population_size());
  const bool ring_topology = topology.kind() == TopologyKind::kRing;
  bool use_batch = resolve_use_batch<P>(spec);
  bool use_ring = false;
  if (!topology.is_complete() && use_batch) {
    if (!ring_topology) {
      if (spec.engine == "batch")
        throw std::invalid_argument(
            "engine=batch compiles the complete graph's pair law (plus the "
            "compressed ring); topology '" + topology.spec() +
            "' runs on engine=array");
      use_batch = false;  // engine=auto: fall back to the agent array
    } else if constexpr (RingCompressibleProtocol<P>) {
      use_ring = true;
      use_batch = false;
    } else {
      if (spec.engine == "batch")
        throw std::invalid_argument(
            "protocol '" + spec.protocol +
            "' cannot run the compressed ring engine (needs deterministic "
            "transitions); use engine=array");
      use_batch = false;
    }
  }
  if (use_ring) {
    const std::string sname = spec.strategy.empty() ? "auto" : spec.strategy;
    if (sname != "auto" && sname != "geometric_skip")
      throw std::invalid_argument(
          "the ring count path runs its own run-length-compressed geometric "
          "skip; strategy '" + sname +
          "' is not available on topology=ring (use auto, geometric_skip, "
          "or engine=array)");
  }
  // Whole-run arm choice: when engine=auto AND strategy=auto leave the
  // decision open, the strategy controller inspects trial 0's initial
  // occupancy (regenerated bit-identically from the derived init seed — no
  // randomness is consumed from any trial stream) and routes dense starts
  // to the agent array, which no count engine can beat there (see
  // core/engine.h StrategyController). Pinning either field disables the
  // override, so head-to-head strategy measurements stay pure.
  std::string engine_arm;
  if constexpr (EnumerableProtocol<P>) {
    const std::string engine_name = spec.engine.empty() ? "auto" : spec.engine;
    const std::string strat_name =
        spec.strategy.empty() ? "auto" : spec.strategy;
    if (use_batch && engine_name == "auto" && strat_name == "auto") {
      const std::vector<std::uint64_t> probe = inits.counts(
          proto, init_name, derive_seed(derive_seed(spec.seed, 0), 1));
      std::uint64_t occupancy = 0;
      for (std::uint64_t c : probe)
        if (c != 0) ++occupancy;
      const StrategyArm arm =
          StrategyController::engine_arm(proto.population_size(), occupancy);
      engine_arm = to_string(arm);
      if (arm == StrategyArm::kArray) use_batch = false;
    }
  }
  BatchStrategy strategy = BatchStrategy::kAuto;
  if (use_batch) {
    const std::string sname = spec.strategy.empty() ? "auto" : spec.strategy;
    if (!parse_strategy(sname, strategy))
      throw std::invalid_argument(
          "unknown strategy '" + sname +
          "' (geometric_skip | multinomial | auto | sharded | tau)");
  } else if (spec.strategy == "tau" || spec.strategy == "tau_leap") {
    // The array engine silently ignores pinned batch strategies (matrix
    // sweeps reuse one strategy list across engines), but running exact
    // while the spec asked for the approximate tier would mislabel the
    // result — hard error instead.
    throw std::invalid_argument(
        "strategy 'tau' needs the count engine (enumerable protocol, "
        "engine != array)");
  }
  // APPROXIMATE tier: tau-leaping is strictly opt-in (never reachable from
  // strategy=auto; see core/engine.h StrategyController) and stamps the
  // result so downstream tooling can never strict-diff it against exact
  // baselines.
  const bool tau = use_batch && strategy == BatchStrategy::kTauLeap;
  // Fault injection (core/faults.h) is exact-tier only: the approximate
  // engines' error bounds assume the fault-free transition rates.
  spec.faults.validate();
  const bool faulted = spec.faults.active();
  if (faulted && tau)
    throw std::invalid_argument(
        "fault injection is exact-tier only (strategy=tau is approximate; "
        "use array, geometric_skip, multinomial, auto or sharded)");
  double tau_eps = 0.0;
  if (tau) {
    if constexpr (!kTauCapable<P>) {
      throw std::invalid_argument(
          "protocol '" + spec.protocol +
          "' cannot run the tau-leaping engine (needs deterministic, "
          "passive-structured transitions)");
    }
    if (!std::isfinite(spec.tau_eps) || spec.tau_eps < 0.0)
      throw std::invalid_argument("tau.eps must be finite and >= 0");
    tau_eps = spec.tau_eps > 0.0 ? spec.tau_eps : kDefaultTauEps;
  }
  // strategy=sharded parallelizes *inside* one run, so the trial fan-out
  // goes serial and --threads/PPSIM_THREADS caps the shard workers instead.
  // The shard count itself comes from shards= (0 = the fixed default, NOT
  // the worker count — results are a pure function of (seed, shards) and
  // must never depend on threads or the machine).
  const bool sharded = use_batch && strategy == BatchStrategy::kSharded;
  std::uint32_t engine_workers = 0;
  std::uint32_t shard_count = 0;
  if (sharded) {
    if constexpr (!ShardableProtocol<P>) {
      throw std::invalid_argument(
          "protocol '" + spec.protocol +
          "' cannot run the sharded strategy (counters are not mergeable)");
    }
    engine_workers = resolve_thread_count(spec.threads);
    shard_count =
        spec.shards ? spec.shards : ShardedOptions::kDefaultShards;
    // Mirror of the engine's clamp, so the report names the real count.
    shard_count = std::max<std::uint32_t>(
        1, std::min<std::uint32_t>(shard_count,
                                   proto.population_size() / 2));
  }
  const std::uint32_t trials = spec.trials ? spec.trials : 1;
  std::vector<double> values(trials, -1.0);
  std::vector<std::uint64_t> interactions(trials, 0);
  std::vector<char> fired(trials, 0);
  std::vector<StrategyTrace> traces(trials);

  const WallTimer total;
  for_each_trial(trials, sharded ? 1 : spec.threads, [&](std::uint32_t t) {
    const std::uint64_t trial_seed = derive_seed(spec.seed, t);
    const std::uint64_t init_seed = derive_seed(trial_seed, 1);
    const std::uint64_t engine_seed = derive_seed(trial_seed, 2);
    auto record = [&](auto& sim) {
      const std::pair<double, bool> r = run_one(sim);
      values[t] = r.first;
      fired[t] = r.second;
      interactions[t] = sim.interactions();
      if constexpr (requires { sim.strategy_trace(); }) {
        traces[t] = sim.strategy_trace();
      } else {
        traces[t].note(StrategyArm::kArray, sim.interactions());
      }
    };
    if (use_ring) {
      if constexpr (RingCompressibleProtocol<P>) {
        // Position-ordered agents: the same catalog array the agent-array
        // engine consumes, so both ring engines start from the identical
        // configuration per seed. The full fault law composes (drop thins
        // the skip rate, oneway/churn are drawn per slot).
        RingSimulation<P> sim(proto, inits.agents(proto, init_name, init_seed),
                              engine_seed, spec.faults);
        record(sim);
      }
    } else if (use_batch) {
      if constexpr (EnumerableProtocol<P>) {
        if (tau) {
          if constexpr (kTauCapable<P>) {
            TauLeapSimulation<P> sim(proto,
                                     inits.counts(proto, init_name, init_seed),
                                     engine_seed, tau_eps);
            record(sim);
          }
        } else if (sharded) {
          if constexpr (ShardableProtocol<P>) {
            ShardedOptions options;
            options.shards = shard_count;
            options.max_workers = engine_workers;
            ShardedSimulation<P> sim(
                proto, inits.counts(proto, init_name, init_seed),
                engine_seed, options);
            if (faulted) sim.set_faults(spec.faults);
            record(sim);
          }
        } else {
          BatchSimulation<P> sim(proto,
                                 inits.counts(proto, init_name, init_seed),
                                 engine_seed, strategy);
          if (faulted) sim.set_faults(spec.faults);
          record(sim);
        }
      }
    } else if (faulted) {
      FaultySimulation<P> sim(proto, inits.agents(proto, init_name, init_seed),
                              engine_seed, spec.faults, topology);
      record(sim);
    } else {
      Simulation<P> sim(proto, inits.agents(proto, init_name, init_seed),
                        engine_seed, topology);
      record(sim);
    }
  });

  ScenarioResult out;
  out.metric = metric;
  out.values = values;
  out.summary = summarize(out.values);
  out.backend = (use_batch || use_ring) ? "batch" : "array";
  out.strategy = use_ring ? "ring_rle"
                          : (use_batch ? std::string(to_string(strategy))
                                       : std::string());
  out.engine_arm = engine_arm;
  out.topology = topology.spec();
  for (const StrategyTrace& tr : traces) out.trace.merge(tr);
  out.shards = shard_count;
  out.init = init_name;
  out.until = until_name;
  out.params = spec.params;
  out.n = proto.population_size();
  out.trials = trials;
  for (char f : fired)
    if (!f) ++out.failed;
  double inter_sum = 0;
  for (std::uint64_t i : interactions)
    inter_sum += static_cast<double>(i);
  out.interactions_mean = inter_sum / static_cast<double>(trials);
  out.wall_seconds = total.seconds();
  out.approximate = tau;
  out.tau_eps = tau_eps;
  out.faulted = faulted;
  if (faulted) out.faults = spec.faults;
  return out;
}

// Ranked-stabilization horizon/tail resolution: spec overrides win, the
// protocol's registered defaults otherwise.
inline RunOptions ranked_options(const ScenarioSpec& spec,
                                 std::uint64_t default_horizon,
                                 double default_tail) {
  RunOptions opts;
  opts.max_interactions =
      spec.max_interactions ? spec.max_interactions : default_horizon;
  opts.tail_ptime = spec.tail_ptime >= 0 ? spec.tail_ptime : default_tail;
  return opts;
}

template <class P>
ScenarioResult execute_ranked(const ScenarioSpec& spec, const P& proto,
                              const InitialConditionSet<P>& inits,
                              const std::string& until_name,
                              const RunOptions& opts) {
  return drive(spec, proto, inits, until_name, "parallel_time",
               [&](auto& sim) {
                 const RunResult r = run_engine_until_ranked(sim, opts);
                 return std::pair<double, bool>(
                     r.stabilized ? r.stabilization_ptime : -1.0,
                     r.stabilized);
               });
}

// Holding-time stop condition (convergence.h run_engine_until_held): wait
// for the first correct ranking, then measure the parallel time until it
// breaks. Metric = holding_time; a trial that never observes the full
// enter-then-break cycle inside the horizon is a failed trial. Meaningful
// mainly under fault injection — a fault-free silent protocol holds
// forever, which reports as failed, not as a number.
template <class P>
ScenarioResult execute_held(const ScenarioSpec& spec, const P& proto,
                            const InitialConditionSet<P>& inits,
                            const std::string& until_name,
                            std::uint64_t default_horizon) {
  RunOptions opts;
  opts.max_interactions =
      spec.max_interactions ? spec.max_interactions : default_horizon;
  return drive(spec, proto, inits, until_name, "holding_time",
               [&](auto& sim) {
                 const RunResult r = run_engine_until_held(sim, opts);
                 return std::pair<double, bool>(
                     r.stabilized ? r.stabilization_ptime : -1.0,
                     r.stabilized);
               });
}

// Predicate stop condition. `done` is a generic callable over either
// engine. `cheap` predicates (O(1): counter reads) are checked after every
// interaction on the agent array; expensive ones (O(n) scans) every
// max(1, n/64) interactions — an overshoot of at most 1/64 parallel time,
// amortizing the scan to O(64) per interaction. Count engines check after
// every configuration change (null stretches cannot flip a predicate).
template <class P, class Done>
ScenarioResult execute_predicate(const ScenarioSpec& spec, const P& proto,
                                 const InitialConditionSet<P>& inits,
                                 const std::string& until_name,
                                 std::uint64_t max_interactions, Done done,
                                 bool cheap) {
  return drive(
      spec, proto, inits, until_name, "parallel_time",
      [&](auto& sim) {
        using E = std::decay_t<decltype(sim)>;
        bool hit;
        if constexpr (AgentArrayEngine<E>) {
          if (cheap) {
            hit = done(sim) ||
                  sim.run_until([&](const E& s) { return done(s); },
                                max_interactions);
          } else {
            const std::uint64_t stride =
                std::max<std::uint64_t>(1, sim.population_size() / 64);
            hit = done(sim);
            while (!hit && sim.interactions() < max_interactions) {
              sim.run(std::min(stride,
                               max_interactions - sim.interactions()));
              hit = done(sim);
            }
          }
        } else {
          hit = sim.run_until([&](const E& s) { return done(s); },
                              max_interactions);
        }
        return std::pair<double, bool>(hit ? sim.parallel_time() : -1.0,
                                       hit);
      });
}

// APPROXIMATE drift-only tier: engine=ode integrates the mean-field ODE
// (core/mean_field.h) over the fixed parallel-time budget. Deterministic
// given the init (trials differ only through their derived init seeds);
// metric = per-trial run wall seconds like every until=ptime cell, and the
// result is stamped approximate with the resolved step (tau_eps doubles as
// the RK4 dt here; 0 = kDefaultOdeDt).
template <class P>
ScenarioResult drive_ode(const ScenarioSpec& spec, const P& proto,
                         const InitialConditionSet<P>& inits,
                         const std::string& until_name) {
  if constexpr (!(EnumerableProtocol<P> && DeterministicProtocol<P> &&
                  (KeyedPassiveProtocol<P> || UnkeyedPassiveProtocol<P>))) {
    throw std::invalid_argument(
        "protocol '" + spec.protocol +
        "' cannot run the mean-field engine (needs deterministic, "
        "passive-structured transitions)");
  } else {
    if (spec.horizon_ptime <= 0)
      throw std::invalid_argument(
          "until=ptime needs a positive ptime=<parallel-time budget>");
    if (!spec.strategy.empty() && spec.strategy != "auto")
      throw std::invalid_argument(
          "engine=ode has no batching strategy; drop strategy='" +
          spec.strategy + "'");
    const std::string init_name =
        spec.init.empty() ? inits.default_name() : spec.init;
    if (inits.find(init_name) == nullptr)
      throw std::invalid_argument("unknown initial condition '" + init_name +
                                  "' for protocol '" + spec.protocol + "'");
    if (spec.faults.active())
      throw std::invalid_argument(
          "fault injection is exact-tier only (engine=ode is the mean-field "
          "drift; use engine=array|batch)");
    if (!spec.topology.empty() && spec.topology != "complete")
      throw std::invalid_argument(
          "engine=ode assumes complete mixing; topology '" + spec.topology +
          "' has no mean-field drift here");
    if (!std::isfinite(spec.tau_eps) || spec.tau_eps < 0.0)
      throw std::invalid_argument("tau.eps must be finite and >= 0");
    const double dt = spec.tau_eps > 0.0 ? spec.tau_eps : kDefaultOdeDt;
    const std::uint32_t trials = spec.trials ? spec.trials : 1;
    std::vector<double> values(trials, -1.0);
    std::vector<std::uint64_t> interactions(trials, 0);
    const WallTimer total;
    for_each_trial(trials, spec.threads, [&](std::uint32_t t) {
      const std::uint64_t trial_seed = derive_seed(spec.seed, t);
      const std::uint64_t init_seed = derive_seed(trial_seed, 1);
      MeanFieldSimulation<P> sim(
          proto, inits.counts(proto, init_name, init_seed), dt);
      const WallTimer run_wall;
      sim.run_ptime(spec.horizon_ptime);
      values[t] = run_wall.seconds();
      interactions[t] = sim.interactions();
    });
    ScenarioResult out;
    out.metric = "wall_seconds";
    out.values = values;
    out.summary = summarize(out.values);
    out.backend = "ode";
    out.topology = "complete";
    out.init = init_name;
    out.until = until_name;
    out.params = spec.params;
    out.n = proto.population_size();
    out.trials = trials;
    double inter_sum = 0;
    for (std::uint64_t i : interactions)
      inter_sum += static_cast<double>(i);
    out.interactions_mean = inter_sum / static_cast<double>(trials);
    out.wall_seconds = total.seconds();
    out.approximate = true;
    out.tau_eps = dt;
    return out;
  }
}

// Fixed parallel-time budget: the perf-measurement mode. Metric = per-trial
// *run* wall seconds (engine construction excluded, so strategy
// head-to-heads measure the stepping code); ScenarioResult.wall_seconds
// still covers the whole scenario including construction.
template <class P>
ScenarioResult execute_ptime(const ScenarioSpec& spec, const P& proto,
                             const InitialConditionSet<P>& inits,
                             const std::string& until_name) {
  if (spec.engine == "ode")
    return drive_ode(spec, proto, inits, until_name);
  if (spec.horizon_ptime <= 0)
    throw std::invalid_argument(
        "until=ptime needs a positive ptime=<parallel-time budget>");
  const auto budget = static_cast<std::uint64_t>(
      spec.horizon_ptime * static_cast<double>(proto.population_size()));
  return drive(spec, proto, inits, until_name, "wall_seconds",
               [&](auto& sim) {
                 const WallTimer run_wall;
                 sim.run(budget);
                 return std::pair<double, bool>(run_wall.seconds(), true);
               });
}

[[noreturn]] inline void unknown_until(const ScenarioSpec& spec,
                                       const std::string& until) {
  throw std::invalid_argument("unknown stop condition '" + until +
                              "' for protocol '" + spec.protocol + "'");
}

}  // namespace scenario_detail

// --- Protocol registrations -------------------------------------------------

inline void register_silent_nstate(ProtocolRegistry& reg) {
  ProtocolEntry e;
  e.name = "silent-nstate";
  e.description =
      "Protocol 1 (Cai-Izumi-Wada): n-state silent SSR, Theta(n^2) time";
  e.states = "n (exact)";
  e.silent = true;
  e.batch_capable = true;
  e.default_n = 64;
  e.inits = silent_nstate_inits().names();
  e.default_init = silent_nstate_inits().default_name();
  e.untils = {"ranked", "thinned", "held", "ptime"};
  e.default_until = "ranked";
  e.run = [](const ScenarioSpec& spec) {
    namespace sd = scenario_detail;
    const std::uint32_t n = sd::resolve_population(spec, 64, 0);
    ParamReader(spec).finish();  // no overridable constants
    const SilentNStateSSR proto(n);
    const auto& inits = silent_nstate_inits();
    const std::string until = spec.until.empty() ? "ranked" : spec.until;
    if (until == "ranked")
      return sd::execute_ranked(spec, proto, inits, until,
                                sd::ranked_options(spec, 1ull << 62, 0.0));
    if (until == "held") {
      // Entry needs the Theta(n^2)-time stabilization first: ~20x the exact
      // worst-case expectation (n-1)C(n,2), saturated to the open horizon.
      const double cap =
          20.0 * silent_nstate_worst_expected_interactions(n) + 16777216.0;
      const std::uint64_t horizon =
          cap > 9e18 ? (1ull << 62) : static_cast<std::uint64_t>(cap);
      return sd::execute_held(spec, proto, inits, until, horizon);
    }
    if (until == "thinned") {
      // Rank 0 holds at most one agent. From `duplicate-rank` this is the
      // Observation 2.6 meeting time (the duplicated pair must interact
      // directly); from `all-same` it is the time until the original rank
      // thins to one holder — the protocol-level companion of the
      // Omega(log n) coupon-collector bound (bench_lower_bounds).
      auto thinned = [](const auto& sim) {
        using E = std::decay_t<decltype(sim)>;
        if constexpr (AgentArrayEngine<E>) {
          std::uint32_t holders = 0;
          for (const auto& s : sim.states())
            if (s.rank == 0 && ++holders > 1) return false;
          return true;
        } else {
          return sim.state_counts()[0] <= 1;
        }
      };
      return sd::execute_predicate(
          spec, proto, inits, until,
          spec.max_interactions ? spec.max_interactions : 1ull << 62,
          thinned, /*cheap=*/false);
    }
    if (until == "ptime") return sd::execute_ptime(spec, proto, inits, until);
    sd::unknown_until(spec, until);
  };
  reg.add(std::move(e));
}

inline void register_optimal_silent(ProtocolRegistry& reg) {
  ProtocolEntry e;
  e.name = "optimal-silent";
  e.description =
      "Protocols 3-4: time-optimal silent SSR, Theta(n) time, O(n) states";
  e.states = "~35n (canonical coding)";
  e.silent = true;
  e.batch_capable = true;
  e.default_n = 64;
  e.inits = optimal_silent_inits().names();
  e.default_init = optimal_silent_inits().default_name();
  e.untils = {"ranked", "detected", "silent", "held", "ptime"};
  e.default_until = "ranked";
  e.run = [](const ScenarioSpec& spec) {
    namespace sd = scenario_detail;
    const std::uint32_t n = sd::resolve_population(spec, 64, 0);
    // Timer-constant overrides: the standard() defaults are Emax = 16n,
    // Dmax = 8n, Rmax = ceil(8 ln n) + 4; the factors scale each Theta
    // constant (bench_ablations' failure-boundary sweeps drive these).
    ParamReader params(spec);
    OptimalSilentParams op = OptimalSilentParams::standard(n);
    op.emax = static_cast<std::uint32_t>(
        params.number("emax_factor", 16.0) * static_cast<double>(n));
    op.dmax = static_cast<std::uint32_t>(
        params.number("dmax_factor", 8.0) * static_cast<double>(n));
    op.rmax = static_cast<std::uint32_t>(
                  std::ceil(params.number("rmax_factor", 8.0) *
                            std::log(static_cast<double>(n)))) +
              4;
    params.finish();
    const OptimalSilentSSR proto(op);
    const auto& inits = optimal_silent_inits();
    const std::string until = spec.until.empty() ? "ranked" : spec.until;
    const std::uint64_t horizon =
        static_cast<std::uint64_t>(n) * n * 2000 + (1ull << 24);
    if (until == "ranked")
      return sd::execute_ranked(spec, proto, inits, until,
                                sd::ranked_options(spec, horizon, 0.0));
    if (until == "held")
      return sd::execute_held(spec, proto, inits, until, horizon);
    if (until == "detected") {
      // Observation 2.6's quantity: time until a rank collision is seen.
      auto detected = [](const auto& sim) {
        return sim.counters().collision_triggers > 0;
      };
      return sd::execute_predicate(
          spec, proto, inits, until,
          spec.max_interactions ? spec.max_interactions : 1ull << 62,
          detected, /*cheap=*/true);
    }
    if (until == "silent") {
      // Full silence — the event the paper's silence definition names:
      // no ordered pair is non-null. Count engines certify it in O(1)
      // (zero active weight, Theta(n)-states keyed structure); the agent
      // array falls back to the literal pair scan.
      auto silent = [](const auto& sim) {
        using E = std::decay_t<decltype(sim)>;
        if constexpr (AgentArrayEngine<E>) {
          const auto& p = sim.protocol();
          const auto& states = sim.states();
          for (std::size_t i = 0; i < states.size(); ++i)
            for (std::size_t j = 0; j < states.size(); ++j)
              if (i != j && !p.is_null_pair(states[i], states[j]))
                return false;
          return true;
        } else {
          return sim.silent();
        }
      };
      return sd::execute_predicate(
          spec, proto, inits, until,
          spec.max_interactions ? spec.max_interactions : horizon, silent,
          /*cheap=*/false);
    }
    if (until == "ptime") return sd::execute_ptime(spec, proto, inits, until);
    sd::unknown_until(spec, until);
  };
  reg.add(std::move(e));
}

namespace scenario_detail {
inline void register_sublinear_entry(ProtocolRegistry& reg,
                                     const std::string& name,
                                     const std::string& description,
                                     const std::string& states,
                                     std::uint32_t default_n,
                                     std::function<SublinearParams(
                                         std::uint32_t)> make_params) {
  ProtocolEntry e;
  e.name = name;
  e.description = description;
  e.states = states;
  e.silent = false;
  e.batch_capable = false;  // quasi-exponential state space by design
  e.default_n = default_n;
  e.inits = sublinear_inits().names();
  e.default_init = sublinear_inits().default_name();
  e.untils = {"ranked", "detected", "drained", "ptime"};
  e.default_until = "ranked";
  e.run = [default_n,
           make_params = std::move(make_params)](const ScenarioSpec& spec) {
    namespace sd = scenario_detail;
    const std::uint32_t n = sd::resolve_population(spec, default_n, 0);
    // Detector/timer overrides: h rebuilds the constant-H parameter set
    // (bench_sublinear's H sweep runs one registered entry across
    // param.h=1..3 instead of three near-identical registrations), smax
    // and th replace the derived values outright, and the flags toggle the
    // Section 6 synthetic coin and the direct-check collision detector
    // variant.
    ParamReader params(spec);
    const auto h_override =
        static_cast<std::uint32_t>(params.integer("h", 0));
    SublinearParams p = h_override > 0
                            ? SublinearParams::constant_h(n, h_override)
                            : make_params(n);
    p.smax = params.integer("smax", p.smax);
    p.th = static_cast<std::uint32_t>(params.integer("th", p.th));
    p.use_synthetic_coin =
        params.flag("synthetic_coin", p.use_synthetic_coin);
    p.direct_check = params.flag("direct_check", p.direct_check);
    params.finish();
    const SublinearTimeSSR proto(p);
    const auto& inits = sublinear_inits();
    const std::string until = spec.until.empty() ? "ranked" : spec.until;
    if (until == "ranked") {
      // Non-silent protocol: demand a tail window so stale adversarial
      // timers cannot fake stabilization (Lemma 5.5; see convergence.h).
      const std::uint64_t per_epoch =
          static_cast<std::uint64_t>(p.n) *
          (6ull * p.th + 6ull * p.dmax + 400);
      const std::uint64_t horizon = 120ull * per_epoch + (1ull << 22);
      return sd::execute_ranked(
          spec, proto, inits, until,
          sd::ranked_options(spec, horizon, 0.75 * p.th + 10));
    }
    if (until == "detected") {
      // Time until the collision detector first fires — the Section 4
      // detection-latency quantity (cheap: one counter read).
      auto detected = [](const auto& sim) {
        return sim.counters().collision_triggers > 0;
      };
      return sd::execute_predicate(
          spec, proto, inits, until,
          spec.max_interactions ? spec.max_interactions : 1ull << 62,
          detected, /*cheap=*/true);
    }
    if (until == "drained") {
      // Time until no agent is Resetting — the reset-wave drain quantity,
      // paired with the count form's drained cell for the cross-form
      // exactness tests (the reset machinery is a lossless quotient).
      auto drained = [](const auto& sim) {
        for (const auto& s : sim.states())
          if (s.role == SlRole::Resetting) return false;
        return true;
      };
      return sd::execute_predicate(
          spec, proto, inits, until,
          spec.max_interactions ? spec.max_interactions : 1ull << 50,
          drained, /*cheap=*/false);
    }
    if (until == "ptime") return sd::execute_ptime(spec, proto, inits, until);
    sd::unknown_until(spec, until);
  };
  reg.add(std::move(e));
}

// One count-form entry (protocols/sublinear_count.h): the truncated
// abstraction of the same parameter family, EnumerableProtocol and hence
// batch/sharded/tau-capable. Every result is stamped abstracted = true —
// the protocol itself is a quotient, whatever the engine.
inline void register_sublinear_count_entry(
    ProtocolRegistry& reg, const std::string& name,
    const std::string& description, const std::string& states,
    std::uint32_t default_n,
    std::function<SublinearParams(std::uint32_t)> make_params) {
  ProtocolEntry e;
  e.name = name;
  e.description = description;
  e.states = states;
  // The abstraction is silent (tree churn is erased: an all-passive
  // configuration has no non-null pair), unlike the concrete protocol.
  e.silent = true;
  e.batch_capable = true;
  e.default_n = default_n;
  e.inits = sublinear_count_inits().names();
  e.default_init = sublinear_count_inits().default_name();
  e.untils = {"detected", "drained", "ptime"};
  e.default_until = "detected";
  e.run = [default_n,
           make_params = std::move(make_params)](const ScenarioSpec& spec) {
    namespace sd = scenario_detail;
    const std::uint32_t n = sd::resolve_population(spec, default_n, 0);
    // Same overridable constants as the array entries, plus trunc.depth
    // (history-tree truncation: 0 = direct check only, 1 = witness
    // automaton). synthetic_coin is accepted as a key so the error is
    // about expressibility, not an unknown param.
    ParamReader params(spec);
    const auto h_override =
        static_cast<std::uint32_t>(params.integer("h", 0));
    SublinearParams p = h_override > 0
                            ? SublinearParams::constant_h(n, h_override)
                            : make_params(n);
    p.smax = params.integer("smax", p.smax);
    p.th = static_cast<std::uint32_t>(params.integer("th", p.th));
    p.use_synthetic_coin = params.flag("synthetic_coin", false);
    p.direct_check = params.flag("direct_check", p.direct_check);
    const auto trunc_depth =
        static_cast<std::uint32_t>(params.integer("trunc.depth", 1));
    params.finish();
    const SublinearCountSSR proto(p, trunc_depth);
    const auto& inits = sublinear_count_inits();
    const std::string until = spec.until.empty() ? "detected" : spec.until;
    ScenarioResult out;
    if (until == "detected") {
      auto detected = [](const auto& sim) {
        return sim.counters().collision_triggers > 0;
      };
      out = sd::execute_predicate(
          spec, proto, inits, until,
          spec.max_interactions ? spec.max_interactions : 1ull << 62,
          detected, /*cheap=*/true);
    } else if (until == "drained") {
      // No agent Resetting. The canonical coding keeps the Resetting block
      // contiguous, so count engines scan one span of the count vector.
      auto drained = [&proto](const auto& sim) {
        using E = std::decay_t<decltype(sim)>;
        if constexpr (AgentArrayEngine<E>) {
          for (const auto& s : sim.states())
            if (s.role == SlRole::Resetting) return false;
          return true;
        } else {
          const auto& counts = sim.state_counts();
          const std::uint32_t lo = proto.first_resetting_code();
          const std::uint32_t hi = lo + proto.resetting_code_count();
          for (std::uint32_t q = lo; q < hi; ++q)
            if (counts[q] > 0) return false;
          return true;
        }
      };
      out = sd::execute_predicate(
          spec, proto, inits, until,
          spec.max_interactions ? spec.max_interactions : 1ull << 50,
          drained, /*cheap=*/false);
    } else if (until == "ptime") {
      out = sd::execute_ptime(spec, proto, inits, until);
    } else {
      sd::unknown_until(spec, until);
    }
    out.abstracted = true;
    return out;
  };
  reg.add(std::move(e));
}
}  // namespace scenario_detail

inline void register_sublinear(ProtocolRegistry& reg) {
  scenario_detail::register_sublinear_entry(
      reg, "sublinear-h1",
      "Protocols 5-8 with H = 1: Theta(n^{1/2})-time non-silent SSR",
      "exp(O(n^H) log n)", 32,
      [](std::uint32_t n) { return SublinearParams::constant_h(n, 1); });
  // H = Theta(log n) trees make single interactions expensive to
  // *simulate* beyond small n (the quasi-exponential state is real) —
  // hence the small default.
  scenario_detail::register_sublinear_entry(
      reg, "sublinear-hlog",
      "Protocols 5-8 with H = 3 log2 n: Theta(log n)-time non-silent SSR",
      "exp(O(n^log n) log n)", 8,
      [](std::uint32_t n) { return SublinearParams::log_time(n); });
}

// Count-form truncated abstraction of the same rows (Table 1 rows 3-4 on
// the batch/sharded/tau stack). The h1 variant's TH = Theta(n^{1/2}) blows
// the witness-age axis up with n, so it stays a small-to-mid-n entry; the
// hlog variant's TH = Theta(log n) keeps the state space ~O(log^2 n * TH)
// and reaches n = 10^6 (bench_sublinear's count detection cells).
inline void register_sublinear_count(ProtocolRegistry& reg) {
  scenario_detail::register_sublinear_count_entry(
      reg, "sublinear-h1-count",
      "count-form quotient of sublinear-h1 (abstracted: trunc. trees, "
      "name classes, bucketed rosters)",
      "poly(n): ~6 log2(n) * TH codes, TH = Theta(n^{1/2})", 256,
      [](std::uint32_t n) { return SublinearParams::constant_h(n, 1); });
  scenario_detail::register_sublinear_count_entry(
      reg, "sublinear-hlog-count",
      "count-form quotient of sublinear-hlog (abstracted: trunc. trees, "
      "name classes, bucketed rosters)",
      "poly(n): ~6 log2(n) * TH codes, TH = Theta(log n)", 256,
      [](std::uint32_t n) { return SublinearParams::log_time(n); });
}

inline void register_reset_process(ProtocolRegistry& reg) {
  ProtocolEntry e;
  e.name = "reset-process";
  e.description =
      "Protocol 2 harness: Propagate-Reset in isolation (Section 3 phases)";
  e.states = "Rmax + Dmax + 2";
  e.silent = true;
  e.batch_capable = true;
  e.default_n = 64;
  e.inits = reset_process_inits().names();
  e.default_init = reset_process_inits().default_name();
  e.untils = {"drained", "ptime"};
  e.default_until = "drained";
  e.run = [](const ScenarioSpec& spec) {
    namespace sd = scenario_detail;
    const std::uint32_t n = sd::resolve_population(spec, 64, 0);
    // The Section 3 experiment constants: Rmax = 8 ln n + 4, Dmax = 4 Rmax;
    // rmax_factor / dmax_factor override the two Theta constants.
    ParamReader params(spec);
    const auto rmax =
        static_cast<std::uint32_t>(
            std::ceil(params.number("rmax_factor", 8.0) *
                      std::log(static_cast<double>(n)))) +
        4;
    const auto dmax = static_cast<std::uint32_t>(
        params.number("dmax_factor", 4.0) * static_cast<double>(rmax));
    params.finish();
    const ResetProcess proto(n, rmax, dmax);
    const auto& inits = reset_process_inits();
    const std::string until = spec.until.empty() ? "drained" : spec.until;
    if (until == "drained") {
      auto drained = [](const auto& sim) {
        using E = std::decay_t<decltype(sim)>;
        if constexpr (AgentArrayEngine<E>) {
          for (const auto& s : sim.states())
            if (s.resetting) return false;
          return true;
        } else {
          return sim.silent();  // all-Computing iff zero active weight
        }
      };
      return sd::execute_predicate(
          spec, proto, inits, until,
          spec.max_interactions ? spec.max_interactions : 1ull << 50,
          drained, /*cheap=*/false);
    }
    if (until == "ptime") return sd::execute_ptime(spec, proto, inits, until);
    sd::unknown_until(spec, until);
  };
  reg.add(std::move(e));
}

inline void register_one_way_epidemic(ProtocolRegistry& reg) {
  ProtocolEntry e;
  e.name = "one-way-epidemic";
  e.description =
      "Section 2.1 one-way epidemic (initiator infects responder)";
  e.states = "2";
  e.silent = true;
  e.batch_capable = true;
  e.default_n = 1024;
  e.inits = one_way_epidemic_inits().names();
  e.default_init = one_way_epidemic_inits().default_name();
  e.untils = {"complete", "ptime"};
  e.default_until = "complete";
  e.run = [](const ScenarioSpec& spec) {
    namespace sd = scenario_detail;
    const std::uint32_t n = sd::resolve_population(spec, 1024, 0);
    ParamReader(spec).finish();  // no overridable constants
    const OneWayEpidemic proto(n);
    const auto& inits = one_way_epidemic_inits();
    const std::string until = spec.until.empty() ? "complete" : spec.until;
    if (until == "complete") {
      auto complete = [](const auto& sim) {
        using E = std::decay_t<decltype(sim)>;
        if constexpr (AgentArrayEngine<E>) {
          for (const auto& s : sim.states())
            if (!s.infected) return false;
          return true;
        } else {
          return sim.silent();  // all infected (no infected => no spreader)
        }
      };
      return sd::execute_predicate(
          spec, proto, inits, until,
          spec.max_interactions ? spec.max_interactions : 1ull << 62,
          complete, /*cheap=*/false);
    }
    if (until == "ptime") return sd::execute_ptime(spec, proto, inits, until);
    sd::unknown_until(spec, until);
  };
  reg.add(std::move(e));
}

inline void register_obs25(ProtocolRegistry& reg) {
  ProtocolEntry e;
  e.name = "obs25";
  e.description =
      "Observation 2.5: silent SSLE for n = 3 with unrankable states";
  e.states = "6";
  e.silent = true;
  e.batch_capable = true;
  e.fixed_n = 3;
  e.default_n = 3;
  e.inits = obs25_inits().names();
  e.default_init = obs25_inits().default_name();
  e.untils = {"silent", "ptime"};
  e.default_until = "silent";
  e.run = [](const ScenarioSpec& spec) {
    namespace sd = scenario_detail;
    sd::resolve_population(spec, 3, 3);
    ParamReader(spec).finish();  // no overridable constants
    const Obs25SSLE proto(3);
    const auto& inits = obs25_inits();
    const std::string until = spec.until.empty() ? "silent" : spec.until;
    if (until == "silent") {
      auto silent = [](const auto& sim) {
        const auto& p = sim.protocol();
        using E = std::decay_t<decltype(sim)>;
        if constexpr (AgentArrayEngine<E>) {
          const auto& states = sim.states();
          for (std::size_t i = 0; i < states.size(); ++i)
            for (std::size_t j = 0; j < states.size(); ++j)
              if (i != j && !p.is_null_pair(states[i], states[j]))
                return false;
          return true;
        } else {
          const auto& counts = sim.state_counts();
          for (std::uint32_t a = 0; a < counts.size(); ++a) {
            if (counts[a] == 0) continue;
            if (counts[a] > 1 &&
                !p.is_null_pair(p.decode(a), p.decode(a)))
              return false;
            for (std::uint32_t b = a + 1; b < counts.size(); ++b)
              if (counts[b] > 0 &&
                  !p.is_null_pair(p.decode(a), p.decode(b)))
                return false;
          }
          return true;
        }
      };
      return sd::execute_predicate(
          spec, proto, inits, until,
          spec.max_interactions ? spec.max_interactions : 1ull << 30,
          silent, /*cheap=*/true);
    }
    if (until == "ptime") return sd::execute_ptime(spec, proto, inits, until);
    sd::unknown_until(spec, until);
  };
  reg.add(std::move(e));
}

inline void register_ring_ssle(ProtocolRegistry& reg) {
  ProtocolEntry e;
  e.name = "ring-ssle";
  e.description =
      "Yokota-Sudo-Masuzawa SS-LE on the directed ring (arXiv 2009.10926)";
  e.states = "8(cap+1), cap = N >= n (the paper's population bound)";
  e.silent = false;  // the survivor perpetually re-fires its bullet
  e.batch_capable = true;  // via the run-length-compressed ring engine
  e.default_n = 64;
  e.inits = ring_ssle_inits().names();
  e.default_init = ring_ssle_inits().default_name();
  e.untils = {"elected", "ptime"};
  e.default_until = "elected";
  e.run = [](const ScenarioSpec& raw) {
    namespace sd = scenario_detail;
    const std::uint32_t n = sd::resolve_population(raw, 64, 0);
    ParamReader params(raw);
    const auto cap = static_cast<std::uint32_t>(params.integer("cap", 0));
    params.finish();
    const RingSSLE proto(n, cap);
    const auto& inits = ring_ssle_inits();
    // The protocol is *defined* on the directed ring: its distance counting
    // reads "my clockwise predecessor", which no other graph provides. An
    // empty topology therefore defaults to ring here (not complete), and
    // anything else is inexpressible.
    ScenarioSpec spec = raw;
    if (spec.topology.empty()) spec.topology = "ring";
    if (spec.topology != "ring")
      throw std::invalid_argument(
          "ring-ssle is defined on the directed ring; topology '" +
          spec.topology + "' has no predecessor structure (use "
          "topology=ring or leave it empty)");
    const std::string until = spec.until.empty() ? "elected" : spec.until;
    if (until == "elected") {
      // Unique leader, *held*: transient uniqueness is real in this
      // protocol (a stale-distance follower can still promote after the
      // count first touches 1), so the stop condition demands leader_count
      // == 1 for a tail window before declaring election. The default
      // window is 4n parallel time — a few full bullet circulations (one
      // circulation is ~n parallel time: n edge-firings at ~n slots each).
      // Metric = parallel time at the onset of the held uniqueness.
      const double tail_ptime =
          spec.tail_ptime >= 0 ? spec.tail_ptime : 4.0 * n;
      const auto window = static_cast<std::uint64_t>(
          tail_ptime * static_cast<double>(n));
      const std::uint64_t horizon =
          spec.max_interactions
              ? spec.max_interactions
              : 4ull * n * n * n + (1ull << 24);
      return sd::drive(
          spec, proto, inits, until, "parallel_time",
          [&proto, window, horizon](auto& sim) {
            using E = std::decay_t<decltype(sim)>;
            // Count-engine leader census: the ring engine maintains it
            // incrementally; the clique count engines (compiled here but
            // unreachable at runtime — the ring topology demotes them)
            // would pay a state-space scan.
            auto census = [&proto](const auto& s) {
              if constexpr (requires { s.leader_count(); }) {
                return s.leader_count();
              } else {
                const auto& counts = s.state_counts();
                std::uint64_t k = 0;
                for (std::uint32_t q = 0; q < counts.size(); ++q)
                  if (counts[q] != 0 && proto.is_leader(proto.decode(q)))
                    k += counts[q];
                return k;
              }
            };
            std::uint64_t leaders = 0;
            std::vector<char> lead;
            if constexpr (AgentArrayEngine<E>) {
              const auto& states = sim.states();
              lead.resize(states.size());
              for (std::size_t i = 0; i < states.size(); ++i) {
                lead[i] = sim.protocol().is_leader(states[i]) ? 1 : 0;
                leaders += lead[i];
              }
            } else {
              leaders = census(sim);
            }
            bool holding = leaders == 1;
            std::uint64_t hold_start = sim.interactions();
            auto elected = [&]() {
              return std::pair<double, bool>(
                  static_cast<double>(hold_start) /
                      static_cast<double>(sim.population_size()),
                  true);
            };
            while (sim.interactions() < horizon) {
              if constexpr (AgentArrayEngine<E>) {
                const AgentPair pr = sim.step();
                auto refresh = [&](std::uint32_t i) {
                  const char l =
                      sim.protocol().is_leader(sim.states()[i]) ? 1 : 0;
                  leaders += static_cast<std::uint64_t>(l) -
                             static_cast<std::uint64_t>(lead[i]);
                  lead[i] = l;
                };
                refresh(pr.initiator);
                refresh(pr.responder);
                if constexpr (ChurnReportingEngine<E>) {
                  if (sim.last_crashed() >= 0)
                    refresh(static_cast<std::uint32_t>(sim.last_crashed()));
                }
              } else {
                if (sim.step() == 0) {
                  // Provably stuck: uniqueness (if held) is permanent.
                  if (holding) return elected();
                  return std::pair<double, bool>(-1.0, false);
                }
                leaders = census(sim);
              }
              if (leaders == 1) {
                if (!holding) {
                  holding = true;
                  hold_start = sim.interactions();
                }
                if (sim.interactions() - hold_start >= window)
                  return elected();
              } else {
                holding = false;
              }
            }
            return std::pair<double, bool>(-1.0, false);
          });
    }
    if (until == "ptime") return sd::execute_ptime(spec, proto, inits, until);
    sd::unknown_until(spec, until);
  };
  reg.add(std::move(e));
}

// The registry every harness shares: all protocols of the repo, registered
// once, in a stable order.
inline const ProtocolRegistry& default_registry() {
  static const ProtocolRegistry reg = [] {
    ProtocolRegistry r;
    register_silent_nstate(r);
    register_optimal_silent(r);
    register_sublinear(r);
    register_sublinear_count(r);
    register_reset_process(r);
    register_one_way_epidemic(r);
    register_obs25(r);
    register_ring_ssle(r);
    return r;
  }();
  return reg;
}

inline ScenarioResult run_scenario(const ScenarioSpec& spec) {
  return default_registry().run(spec);
}

// BENCH_*.json record for one executed scenario (tools/ppsle_run's emission
// path). Identity fields first (bench_compare keys on experiment / backend
// / strategy / n), then the metric summary and throughput measurements.
inline BenchRecord& report_scenario(BenchReport& report,
                                    const std::string& experiment,
                                    const ScenarioResult& r) {
  BenchRecord& rec = report.add();
  rec.set("experiment", experiment).set("backend", r.backend);
  if (!r.strategy.empty()) rec.set("strategy", r.strategy);
  if (!r.engine_arm.empty()) rec.set("engine_arm", r.engine_arm);
  for (std::size_t i = 0; i < kStrategyArmCount; ++i) {
    if (r.trace.steps[i] == 0) continue;
    const std::string arm = to_string(static_cast<StrategyArm>(i));
    rec.set("arm_" + arm + "_steps", r.trace.steps[i])
        .set("arm_" + arm + "_interactions", r.trace.interactions[i]);
  }
  for (const auto& [key, value] : r.params) rec.set("param_" + key, value);
  if (r.shards > 0) rec.set("shards", static_cast<std::uint64_t>(r.shards));
  // Interaction graph: stamped only when non-complete, so clique records
  // keep their committed baseline shape byte for byte. The topology joins
  // the record identity (a ring cell never compares against its clique
  // twin), with no strict-diff exemption — topologized runs stay exact.
  if (!r.topology.empty() && r.topology != "complete")
    rec.set("topology", r.topology);
  rec.set("n", static_cast<std::uint64_t>(r.n))
      .set("trials", r.trials)
      .set("init", r.init)
      .set("until", r.until)
      .set(r.metric + "_mean", r.summary.mean)
      .set(r.metric + "_ci95", r.summary.ci95)
      .set(r.metric + "_p99", r.summary.p99)
      .set("interactions_mean", r.interactions_mean)
      .set("wall_seconds", r.wall_seconds);
  // Approximate-tier honesty stamp (strategy=tau / engine=ode): consumers
  // (bench_compare) must never strict-diff these records' metric values
  // against exact baselines.
  if (r.approximate)
    rec.set("approximate", true).set("tau_eps", r.tau_eps);
  // Abstracted-protocol honesty stamp (count-form quotients): same
  // strict-diff exemption, orthogonal to `approximate`.
  if (r.abstracted) rec.set("abstracted", true);
  // Fault-injection honesty stamp: the knobs join the record identity
  // (a faulted cell never compares against its fault-free twin), but
  // UNLIKE approximate/abstracted there is no strict-diff exemption —
  // seeded faults reproduce bit for bit.
  if (r.faulted)
    rec.set("faulted", true)
        .set("fault_drop", r.faults.drop)
        .set("fault_oneway", r.faults.oneway)
        .set("fault_churn", r.faults.churn);
  if (r.failed > 0) rec.set("failed", r.failed);
  return rec;
}

}  // namespace ppsim
