// Run-until-stable harness.
//
// Measures convergence/stabilization parallel time of a ranking protocol
// exactly as the paper defines it: the number of interactions after which
// the configuration is (stably) correct forever, divided by n.
//
// For the silent protocols a correct configuration is provably silent, so
// the first entry into correctness is stabilization (optionally verified by
// an exhaustive null-pair check). Sublinear-Time-SSR is non-silent; there we
// record the *last* entry into correctness and additionally require the
// configuration to stay correct for a caller-chosen tail window (>= 3*TH
// parallel time: stale adversarial tree data can only cause a spurious reset
// while its timers are alive, Lemma 5.5).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/rank_tracker.h"
#include "core/simulation.h"

namespace ppsim {

struct RunOptions {
  std::uint64_t max_interactions = 0;  // hard horizon (required)
  double tail_ptime = 0.0;  // extra correct time demanded after last entry
  bool verify_silent = false;  // O(n^2) null-pair check at the end
};

struct RunResult {
  bool stabilized = false;
  double stabilization_ptime = -1.0;  // last entry into correctness
  double first_correct_ptime = -1.0;
  std::uint64_t interactions = 0;
  std::uint64_t correctness_breaks = 0;  // times correctness was lost again
};

template <RankingProtocol P>
RunResult run_until_ranked(P protocol, std::vector<typename P::State> initial,
                           std::uint64_t seed, const RunOptions& opts) {
  if (opts.max_interactions == 0)
    throw std::invalid_argument("max_interactions must be set");
  const std::uint32_t n = protocol.population_size();
  Simulation<P> sim(std::move(protocol), std::move(initial), seed);

  std::vector<std::uint32_t> shadow(n);
  RankTracker tracker(n);
  for (std::uint32_t i = 0; i < n; ++i)
    shadow[i] = sim.protocol().rank_of(sim.states()[i]);
  tracker.reset(sim.states(), [&](const typename P::State& s) {
    return sim.protocol().rank_of(s);
  });

  RunResult out;
  bool was_correct = tracker.is_permutation();
  double last_entry = was_correct ? 0.0 : -1.0;
  if (was_correct) out.first_correct_ptime = 0.0;

  const std::uint64_t tail_interactions = static_cast<std::uint64_t>(
      opts.tail_ptime * static_cast<double>(n));

  while (sim.interactions() < opts.max_interactions) {
    const AgentPair pair = sim.step();
    for (std::uint32_t agent : {pair.initiator, pair.responder}) {
      const std::uint32_t r = sim.protocol().rank_of(sim.states()[agent]);
      if (r != shadow[agent]) {
        tracker.on_change(shadow[agent], r);
        shadow[agent] = r;
      }
    }
    const bool correct = tracker.is_permutation();
    if (correct && !was_correct) {
      last_entry = sim.parallel_time();
      if (out.first_correct_ptime < 0)
        out.first_correct_ptime = last_entry;
    } else if (!correct && was_correct) {
      ++out.correctness_breaks;
    }
    was_correct = correct;
    if (correct) {
      const auto since_entry = static_cast<std::uint64_t>(
          (sim.parallel_time() - last_entry) * static_cast<double>(n));
      if (opts.tail_ptime == 0.0 || since_entry >= tail_interactions) {
        out.stabilized = true;
        break;
      }
    }
  }
  out.interactions = sim.interactions();
  if (out.stabilized) out.stabilization_ptime = last_entry;

  if constexpr (requires(const P& p, const typename P::State& s) {
                  p.is_null_pair(s, s);
                }) {
    if (out.stabilized && opts.verify_silent) {
      const auto& states = sim.states();
      for (std::uint32_t i = 0; i < n; ++i)
        for (std::uint32_t j = 0; j < n; ++j)
          if (i != j && !sim.protocol().is_null_pair(states[i], states[j]))
            throw std::logic_error(
                "configuration reported stable is not silent");
    }
  } else {
    if (opts.verify_silent)
      throw std::invalid_argument(
          "verify_silent requires the protocol to expose is_null_pair");
  }
  return out;
}

}  // namespace ppsim
