// Run-until-stable harness, retargeted onto the backend-agnostic Engine
// contract (core/engine.h).
//
// Measures convergence/stabilization parallel time of a ranking protocol
// exactly as the paper defines it: the number of interactions after which
// the configuration is (stably) correct forever, divided by n.
//
// For the silent protocols a correct configuration is provably silent, so
// the first entry into correctness is stabilization (optionally verified by
// an exhaustive null-pair check). Sublinear-Time-SSR is non-silent; there we
// record the *last* entry into correctness and additionally require the
// configuration to stay correct for a caller-chosen tail window (>= 3*TH
// parallel time: stale adversarial tree data can only cause a spurious reset
// while its timers are alive, Lemma 5.5).
//
// Two engine families, one front door:
//   * AgentArrayEngine (Simulation<P>): incremental RankTracker updates on
//     the two agents each step touches — O(1) per interaction.
//   * CountEngine (BatchSimulation<P>): incremental RankTracker updates on
//     the count deltas each step reports (last_deltas()) — O(1) per
//     configuration change, so whole geometric-skipped null stretches cost
//     nothing. A multinomial batch step reports the whole batch's net
//     deltas, so correctness is observed at batch granularity; tail-window
//     runs (tail_ptime > 0) therefore require the geometric_skip strategy,
//     whose batched stretches are provably null — enforced below.
// A count engine that reports step() == 0 is provably stuck (silent): if the
// configuration is correct at that point it is stabilized forever.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/batch_simulation.h"
#include "core/engine.h"
#include "core/faults.h"  // ChurnReportingEngine
#include "core/rank_tracker.h"
#include "core/simulation.h"

namespace ppsim {

struct RunOptions {
  std::uint64_t max_interactions = 0;  // hard horizon (required)
  double tail_ptime = 0.0;  // extra correct time demanded after last entry
  bool verify_silent = false;  // O(n^2) null-pair check at the end
};

struct RunResult {
  bool stabilized = false;
  double stabilization_ptime = -1.0;  // last entry into correctness
  double first_correct_ptime = -1.0;
  std::uint64_t interactions = 0;
  std::uint64_t correctness_breaks = 0;  // times correctness was lost again
};

namespace detail {

// Entry/exit bookkeeping for "correct and has stayed correct for the tail
// window", shared by both engine harnesses.
class StabilizationClock {
 public:
  StabilizationClock(const RunOptions& opts, std::uint32_t n, RunResult& out)
      : tail_ptime_(opts.tail_ptime),
        tail_interactions_(
            static_cast<std::uint64_t>(opts.tail_ptime * static_cast<double>(n))),
        n_(n),
        out_(out) {}

  void init(bool correct) {
    was_correct_ = correct;
    if (correct) {
      last_entry_ = 0.0;
      out_.first_correct_ptime = 0.0;
    }
  }

  // Records the correctness state after one (effective) interaction at
  // parallel time `ptime`; returns true iff the run has stabilized and the
  // harness should stop.
  bool on_state(bool correct, double ptime) {
    if (correct && !was_correct_) {
      last_entry_ = ptime;
      if (out_.first_correct_ptime < 0) out_.first_correct_ptime = last_entry_;
    } else if (!correct && was_correct_) {
      ++out_.correctness_breaks;
    }
    was_correct_ = correct;
    if (correct) {
      const auto since_entry = static_cast<std::uint64_t>(
          (ptime - last_entry_) * static_cast<double>(n_));
      if (tail_ptime_ == 0.0 || since_entry >= tail_interactions_) return true;
    }
    return false;
  }

  bool was_correct() const { return was_correct_; }
  double last_entry() const { return last_entry_; }

 private:
  double tail_ptime_;
  std::uint64_t tail_interactions_;
  std::uint32_t n_;
  RunResult& out_;
  bool was_correct_ = false;
  double last_entry_ = -1.0;
};

template <class E>
void verify_silent_or_throw(const E& engine) {
  const auto& protocol = engine.protocol();
  if constexpr (AgentArrayEngine<E>) {
    const auto& states = engine.states();
    const std::uint32_t n = engine.population_size();
    for (std::uint32_t i = 0; i < n; ++i)
      for (std::uint32_t j = 0; j < n; ++j)
        if (i != j && !protocol.is_null_pair(states[i], states[j]))
          throw std::logic_error(
              "configuration reported stable is not silent");
  } else {
    // Count engine: check every ordered pair of occupied states (a state
    // with count >= 2 must also be null against itself). Decode each
    // occupied code once — the pair loop is O(occupied^2) already.
    const auto& counts = engine.state_counts();
    std::vector<std::uint32_t> occupied;
    std::vector<typename E::State> decoded;
    for (std::uint32_t q = 0; q < counts.size(); ++q)
      if (counts[q] > 0) {
        occupied.push_back(q);
        decoded.push_back(protocol.decode(q));
      }
    for (std::size_t i = 0; i < occupied.size(); ++i) {
      for (std::size_t j = 0; j < occupied.size(); ++j) {
        if (i == j && counts[occupied[i]] < 2) continue;
        if (!protocol.is_null_pair(decoded[i], decoded[j]))
          throw std::logic_error(
              "configuration reported stable is not silent");
      }
    }
  }
}

template <class E>
void maybe_verify_silent(const E& engine, const RunOptions& opts,
                         const RunResult& out) {
  using State = typename E::State;
  if constexpr (requires(const E& e, const State& s) {
                  e.protocol().is_null_pair(s, s);
                }) {
    if (out.stabilized && opts.verify_silent) verify_silent_or_throw(engine);
  } else {
    if (opts.verify_silent)
      throw std::invalid_argument(
          "verify_silent requires the protocol to expose is_null_pair");
  }
}

}  // namespace detail

// Backend-agnostic ranked-run harness: drives any Engine whose protocol is a
// RankingProtocol until the ranking is stably correct (see file comment).

template <AgentArrayEngine E>
RunResult run_engine_until_ranked(E& sim, const RunOptions& opts) {
  if (opts.max_interactions == 0)
    throw std::invalid_argument("max_interactions must be set");
  const std::uint32_t n = sim.population_size();
  const auto& protocol = sim.protocol();

  std::vector<std::uint32_t> shadow(n);
  RankTracker tracker(n);
  for (std::uint32_t i = 0; i < n; ++i)
    shadow[i] = protocol.rank_of(sim.states()[i]);
  tracker.reset(sim.states(), [&](const typename E::State& s) {
    return protocol.rank_of(s);
  });

  RunResult out;
  detail::StabilizationClock clock(opts, n, out);
  clock.init(tracker.is_permutation());

  auto refresh_agent = [&](std::uint32_t agent) {
    const std::uint32_t r = protocol.rank_of(sim.states()[agent]);
    if (r != shadow[agent]) {
      tracker.on_change(shadow[agent], r);
      shadow[agent] = r;
    }
  };
  while (sim.interactions() < opts.max_interactions) {
    const AgentPair pair = sim.step();
    refresh_agent(pair.initiator);
    refresh_agent(pair.responder);
    // Churn crashes an agent outside the scheduled pair; engines that do it
    // report the victim so the shadow ranks stay exact.
    if constexpr (ChurnReportingEngine<E>) {
      const std::int64_t crashed = sim.last_crashed();
      if (crashed >= 0) refresh_agent(static_cast<std::uint32_t>(crashed));
    }
    if (clock.on_state(tracker.is_permutation(), sim.parallel_time())) {
      out.stabilized = true;
      break;
    }
  }
  out.interactions = sim.interactions();
  if (out.stabilized) out.stabilization_ptime = clock.last_entry();
  detail::maybe_verify_silent(sim, opts, out);
  return out;
}

template <CountEngine E>
RunResult run_engine_until_ranked(E& sim, const RunOptions& opts) {
  if (opts.max_interactions == 0)
    throw std::invalid_argument("max_interactions must be set");
  if constexpr (StrategyEngine<E>) {
    // The tail-window bookkeeping below credits a whole batched stretch as
    // "correctness unchanged", which only the geometric paths guarantee
    // (their stretches are provably null); a multinomial batch can break
    // and re-enter correctness invisibly inside one step.
    if (opts.tail_ptime > 0.0 &&
        sim.strategy() != BatchStrategy::kGeometricSkip)
      throw std::invalid_argument(
          "tail_ptime windows on a count engine require the geometric_skip "
          "strategy (multinomial batches hide intra-batch correctness "
          "breaks)");
  }
  const std::uint32_t n = sim.population_size();
  const auto& protocol = sim.protocol();

  RankTracker tracker(n);
  {
    const auto& counts = sim.state_counts();
    for (std::uint32_t q = 0; q < counts.size(); ++q)
      if (counts[q] > 0)
        tracker.apply_delta(protocol.rank_of(protocol.decode(q)),
                            static_cast<std::int64_t>(counts[q]));
  }

  RunResult out;
  detail::StabilizationClock clock(opts, n, out);
  clock.init(tracker.is_permutation());

  bool stuck = false;
  while (sim.interactions() < opts.max_interactions) {
    if (sim.step() == 0) {
      stuck = true;  // provably silent: correctness is frozen forever
      break;
    }
    // A batched null stretch precedes the effective interaction the step
    // ends on; the configuration (and so correctness) was unchanged through
    // it. If a tail window is armed and closed inside the stretch — i.e. by
    // the interaction just before the effective one — stabilization happened
    // there, exactly as the per-interaction agent-array harness would see.
    if (opts.tail_ptime > 0.0 && clock.was_correct()) {
      const double before_effective =
          static_cast<double>(sim.interactions() - 1) / static_cast<double>(n);
      if (clock.on_state(true, before_effective)) {
        out.stabilized = true;
        break;
      }
    }
    for (const CountDelta& d : sim.last_deltas())
      tracker.apply_delta(protocol.rank_of(protocol.decode(d.code)), d.delta);
    if (clock.on_state(tracker.is_permutation(), sim.parallel_time())) {
      out.stabilized = true;
      break;
    }
  }
  if (stuck && clock.was_correct()) out.stabilized = true;
  out.interactions = sim.interactions();
  if (out.stabilized) out.stabilization_ptime = clock.last_entry();
  detail::maybe_verify_silent(sim, opts, out);
  return out;
}

// Holding-time harness: how long does a correct (rank-permutation)
// configuration persist before the next disruption? The run waits for the
// first entry into correctness, then for the first loss of it; the metric
// is the parallel time between the two. Under a reliable scheduler a
// silent protocol never loses correctness, so the natural use is fault
// injection (core/faults.h) — holding time vs churn/drop rate quantifies
// how robust the stabilized configuration is.
//
// Result encoding (reusing RunResult): first_correct_ptime is the entry,
// stabilization_ptime is the HOLDING TIME, stabilized means the full
// entry-then-break cycle was observed inside the horizon. A run that never
// enters, or enters and never breaks (e.g. fault-free silence — the engine
// reports provably stuck, or the horizon ends first), is not a measurement
// and reports stabilized == false.

template <AgentArrayEngine E>
RunResult run_engine_until_held(E& sim, const RunOptions& opts) {
  if (opts.max_interactions == 0)
    throw std::invalid_argument("max_interactions must be set");
  const std::uint32_t n = sim.population_size();
  const auto& protocol = sim.protocol();

  std::vector<std::uint32_t> shadow(n);
  RankTracker tracker(n);
  for (std::uint32_t i = 0; i < n; ++i)
    shadow[i] = protocol.rank_of(sim.states()[i]);
  tracker.reset(sim.states(), [&](const typename E::State& s) {
    return protocol.rank_of(s);
  });

  RunResult out;
  bool entered = tracker.is_permutation();
  double entry_ptime = 0.0;
  if (entered) out.first_correct_ptime = 0.0;

  auto refresh_agent = [&](std::uint32_t agent) {
    const std::uint32_t r = protocol.rank_of(sim.states()[agent]);
    if (r != shadow[agent]) {
      tracker.on_change(shadow[agent], r);
      shadow[agent] = r;
    }
  };
  while (sim.interactions() < opts.max_interactions) {
    const AgentPair pair = sim.step();
    refresh_agent(pair.initiator);
    refresh_agent(pair.responder);
    if constexpr (ChurnReportingEngine<E>) {
      const std::int64_t crashed = sim.last_crashed();
      if (crashed >= 0) refresh_agent(static_cast<std::uint32_t>(crashed));
    }
    const bool correct = tracker.is_permutation();
    if (!entered) {
      if (correct) {
        entered = true;
        entry_ptime = sim.parallel_time();
        out.first_correct_ptime = entry_ptime;
      }
    } else if (!correct) {
      out.correctness_breaks = 1;
      out.stabilized = true;
      out.stabilization_ptime = sim.parallel_time() - entry_ptime;
      break;
    }
  }
  out.interactions = sim.interactions();
  return out;
}

// Count-engine twin. Correctness is observed at step granularity; while a
// silent protocol's configuration is correct (hence silent) the only
// possible step is a churn crash landing exactly on its own slot, so the
// break is still caught at the exact interaction for the protocols
// registered here.
template <CountEngine E>
RunResult run_engine_until_held(E& sim, const RunOptions& opts) {
  if (opts.max_interactions == 0)
    throw std::invalid_argument("max_interactions must be set");
  const std::uint32_t n = sim.population_size();
  const auto& protocol = sim.protocol();

  RankTracker tracker(n);
  {
    const auto& counts = sim.state_counts();
    for (std::uint32_t q = 0; q < counts.size(); ++q)
      if (counts[q] > 0)
        tracker.apply_delta(protocol.rank_of(protocol.decode(q)),
                            static_cast<std::int64_t>(counts[q]));
  }

  RunResult out;
  bool entered = tracker.is_permutation();
  double entry_ptime = 0.0;
  if (entered) out.first_correct_ptime = 0.0;

  while (sim.interactions() < opts.max_interactions) {
    if (sim.step() == 0) break;  // frozen forever: no break will ever come
    for (const CountDelta& d : sim.last_deltas())
      tracker.apply_delta(protocol.rank_of(protocol.decode(d.code)), d.delta);
    const bool correct = tracker.is_permutation();
    if (!entered) {
      if (correct) {
        entered = true;
        entry_ptime = sim.parallel_time();
        out.first_correct_ptime = entry_ptime;
      }
    } else if (!correct) {
      out.correctness_breaks = 1;
      out.stabilized = true;
      out.stabilization_ptime = sim.parallel_time() - entry_ptime;
      break;
    }
  }
  out.interactions = sim.interactions();
  return out;
}

// Convenience front-ends that build the engine from (protocol, initial
// configuration, seed). The agent-array form is the historical API used
// throughout the tests; the batched form is its count-based twin.

template <RankingProtocol P>
RunResult run_until_ranked(P protocol, std::vector<typename P::State> initial,
                           std::uint64_t seed, const RunOptions& opts) {
  Simulation<P> sim(std::move(protocol), std::move(initial), seed);
  return run_engine_until_ranked(sim, opts);
}

template <class P>
  requires RankingProtocol<P> && EnumerableProtocol<P>
RunResult run_until_ranked_batched(P protocol,
                                   std::vector<std::uint64_t> counts,
                                   std::uint64_t seed, const RunOptions& opts) {
  BatchSimulation<P> sim(std::move(protocol), std::move(counts), seed);
  return run_engine_until_ranked(sim, opts);
}

}  // namespace ppsim
