// The interaction-history tree of Sublinear-Time-SSR and the collision
// detection it supports (Protocols 7 and 8, Sections 5.3-5.4, Figure 2).
//
// Each agent stores a tree of depth <= H whose root is labelled with its own
// name; a root-to-node path a -s1-> b -s2-> c means "when a last met b they
// generated sync value s1, and in that interaction b told a that when b last
// met c they generated s2". Paths are simply labelled (no name repeats along
// a path). When agents meet they (1) check every not-outdated path ending at
// the partner's name against the partner's own history (Check-Path-
// Consistency) and declare a collision on any mismatch, then (2) exchange
// trees: each replaces its depth-1 subtree for the partner by the partner's
// entire tree trimmed to depth H-1, tagged with a freshly generated shared
// sync value.
//
// Representation. The tree field has quasi-exponential size if materialized
// (Theorem 5.7 counts exp(O(n^H) log n) states), so nodes are immutable and
// structurally shared: grafting the partner's tree is O(1) plus an O(degree)
// rebuild of the root. Three protocol rules become lazy:
//
//   * timers   - "decrement every edge timer" (lines 13-14) would touch the
//                whole tree; instead each agent keeps an operation counter
//                and edges store an expiry in their owner's frame. A graft
//                stores the frame shift (owner ops - partner ops), so the
//                effective timer of an edge reached with accumulated shift
//                sigma is expiry + sigma - reader_ops, clamped at 0.
//   * depth    - trimming the partner's tree to depth H-1 (line 9) is a
//                depth budget enforced during traversal.
//   * own-name - "remove subtrees rooted at my own name" (lines 11-12) and
//                simple labeling are together equivalent to skipping, during
//                traversal, any child whose name equals an ancestor's name on
//                the current path (the root carries the owner's name).
//
// Per-node 256-bit Bloom digests of subtree names prune the detection DFS.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/name.h"
#include "core/rng.h"

namespace ppsim {

struct HistoryNode;
using HistoryNodePtr = std::shared_ptr<const HistoryNode>;

struct HistoryEdge {
  std::uint64_t sync = 0;   // {1..Smax}
  std::int64_t expiry = 0;  // effective timer = expiry + sigma - reader ops
  std::int64_t shift = 0;   // added to sigma when descending into child
  HistoryNodePtr child;
};

// 256-bit Bloom digest over the names appearing in a subtree (including the
// node's own name; over-approximate, never misses a present name).
struct NameDigest {
  std::array<std::uint64_t, 4> words{};

  void add(const Name& n) {
    const std::uint64_t h = n.hash();
    words[(h >> 6) & 3] |= (1ULL << (h & 63));
    words[(h >> 14) & 3] |= (1ULL << ((h >> 8) & 63));
  }
  void merge(const NameDigest& other) {
    for (int i = 0; i < 4; ++i) words[i] |= other.words[i];
  }
  bool may_contain(const Name& n) const {
    const std::uint64_t h = n.hash();
    return ((words[(h >> 6) & 3] >> (h & 63)) & 1ULL) != 0 &&
           ((words[(h >> 14) & 3] >> ((h >> 8) & 63)) & 1ULL) != 0;
  }
};

struct HistoryNode {
  Name name;
  std::vector<HistoryEdge> children;  // sibling names are unique
  NameDigest digest;                  // own name + all descendant names

  HistoryNode(Name n, std::vector<HistoryEdge> kids)
      : name(n), children(std::move(kids)) {
    digest.add(name);
    for (const auto& e : children)
      if (e.child) digest.merge(e.child->digest);
  }

  // Iterative teardown: history DAGs can contain reference chains as long as
  // the execution, so the default recursive shared_ptr destruction could
  // overflow the stack.
  ~HistoryNode() {
    thread_local std::vector<HistoryEdge> pending;
    thread_local bool draining = false;
    for (auto& e : children) pending.push_back(std::move(e));
    children.clear();
    if (draining) return;
    draining = true;
    while (!pending.empty()) {
      HistoryEdge e = std::move(pending.back());
      pending.pop_back();
      e.child.reset();  // may re-enter this destructor, which only enqueues
    }
    draining = false;
  }

  HistoryNode(const HistoryNode&) = delete;
  HistoryNode& operator=(const HistoryNode&) = delete;
};

// One agent's tree field: the current (immutable) root plus the agent's
// operation counter, whose increments realize the global timer decrement.
class HistoryTree {
 public:
  HistoryTree() = default;

  void reset(const Name& own_name) {
    root_ = std::make_shared<const HistoryNode>(own_name,
                                                std::vector<HistoryEdge>{});
    ops_ = 0;
  }

  bool initialized() const { return root_ != nullptr; }
  const HistoryNodePtr& root() const { return root_; }
  std::uint64_t ops() const { return ops_; }
  const Name& own_name() const { return root_->name; }

  // Lines 13-14 of Protocol 7: decrement every timer in this tree.
  void tick() { ++ops_; }

  // Lines 6-10 of Protocol 7: replace the depth-1 subtree named after the
  // partner by the partner's tree (a pre-interaction snapshot), reached via a
  // new edge carrying the shared sync value and a fresh timer.
  //
  // prune_window > 0 additionally drops root edges that have been expired
  // for more than prune_window of this agent's operations. Expired edges can
  // still serve as *verification* material (Check-Path-Consistency ignores
  // timers), but a verifying edge is never older than the live path it
  // vouches for by more than ~TH interactions of frame skew per hop, so a
  // window of several TH bounds the root degree without disturbing safety;
  // see DESIGN.md ("dead-edge pruning").
  void graft(const HistoryNodePtr& partner_root, std::uint64_t partner_ops,
             std::uint64_t sync, std::uint32_t th,
             std::uint64_t prune_window = 0) {
    std::vector<HistoryEdge> kids;
    kids.reserve(root_->children.size() + 1);
    for (const auto& e : root_->children) {
      if (e.child->name == partner_root->name) continue;
      if (prune_window > 0 &&
          e.expiry + static_cast<std::int64_t>(prune_window) <
              static_cast<std::int64_t>(ops_))
        continue;  // long-dead: unreachable for detection, stale for verify
      kids.push_back(e);
    }
    HistoryEdge fresh;
    fresh.sync = sync;
    fresh.expiry = static_cast<std::int64_t>(ops_) + th;
    fresh.shift = static_cast<std::int64_t>(ops_) -
                  static_cast<std::int64_t>(partner_ops);
    fresh.child = partner_root;
    kids.push_back(std::move(fresh));
    root_ = std::make_shared<const HistoryNode>(root_->name, std::move(kids));
  }

  // Used by adversarial generators to install arbitrary (valid-format) trees.
  void install(HistoryNodePtr root, std::uint64_t ops) {
    root_ = std::move(root);
    ops_ = ops;
  }

 private:
  HistoryNodePtr root_;
  std::uint64_t ops_ = 0;
};

struct CollisionDetectorParams {
  std::uint32_t depth_h = 1;  // H: maximum path length considered
  std::uint64_t smax = 1;     // sync values drawn from {1..smax}
  std::uint32_t th = 1;       // initial edge timer T_H
  // The direct rule "equal names meeting declare a collision". Protocol 7
  // detects only through third parties, which cannot work at n = 2 (there is
  // no third agent); the direct rule is the paper's H = 0 warm-up and can
  // never fire in a non-colliding configuration, so it is safe. See
  // DESIGN.md.
  bool direct_check = true;
  // Root edges expired for more than this many owner operations are dropped
  // at the next graft (0 = keep forever). Bounds the root degree by ~the
  // number of distinct partners met within the window.
  std::uint64_t prune_window = 0;
};

struct CollisionDetectorStats {
  std::uint64_t calls = 0;
  std::uint64_t nodes_visited = 0;       // detection DFS work
  std::uint64_t paths_checked = 0;       // Check-Path-Consistency runs
  std::uint64_t max_nodes_one_call = 0;  // worst single detection DFS
  std::uint64_t collisions_reported = 0;
};

// Stateless with respect to agents; owns parameters only. Instrumentation is
// reported into a caller-owned CollisionDetectorStats (engine-side observer),
// which keeps detect_and_update const — required for const protocol
// transition functions. The DFS scratch buffers are mutable workspace, so a
// detector instance must not be shared across concurrently running engines
// (each trial of run_trials_parallel constructs its own protocol).
class CollisionDetector {
 public:
  explicit CollisionDetector(CollisionDetectorParams params)
      : params_(params) {}

  const CollisionDetectorParams& params() const { return params_; }

  // Protocol 7, Detect-Name-Collision(a, b). Returns true iff a collision is
  // detected; otherwise performs the mutual tree exchange and timer tick.
  // Both trees must be initialized.
  bool detect_and_update(HistoryTree& a, HistoryTree& b, Rng& rng,
                         CollisionDetectorStats& stats) const {
    ++stats.calls;
    std::uint64_t call_nodes = 0;
    if (params_.direct_check && a.own_name() == b.own_name()) {
      ++stats.collisions_reported;
      return true;
    }
    // Lines 1-4: check all of a's live histories about b and vice versa.
    if (has_inconsistent_path(a, b, call_nodes, stats) ||
        has_inconsistent_path(b, a, call_nodes, stats)) {
      stats.nodes_visited += call_nodes;
      stats.max_nodes_one_call =
          std::max(stats.max_nodes_one_call, call_nodes);
      ++stats.collisions_reported;
      return true;
    }
    stats.nodes_visited += call_nodes;
    stats.max_nodes_one_call = std::max(stats.max_nodes_one_call, call_nodes);
    // Line 5: the shared fresh sync value.
    const std::uint64_t x = rng.range(1, params_.smax);
    // Lines 6-10: mutual graft of pre-interaction snapshots, trimmed to
    // depth H-1. For H = 1 the trim leaves only the partner's bare name, so
    // we materialize it (a canonical leaf): this cuts the reference chain
    // into the partner's history entirely and gives the depth-1
    // "dictionary" of the paper's warm-up O(sqrt n) protocol with O(1)
    // memory per edge. For H >= 2 the trim stays lazy (see class comment).
    HistoryNodePtr a_for_b;
    HistoryNodePtr b_for_a;
    if (params_.depth_h == 1) {
      a_for_b = std::make_shared<const HistoryNode>(
          a.own_name(), std::vector<HistoryEdge>{});
      b_for_a = std::make_shared<const HistoryNode>(
          b.own_name(), std::vector<HistoryEdge>{});
    } else {
      a_for_b = a.root();
      b_for_a = b.root();
    }
    const std::uint64_t a_ops = a.ops();
    const std::uint64_t b_ops = b.ops();
    a.graft(b_for_a, b_ops, x, params_.th, params_.prune_window);
    b.graft(a_for_b, a_ops, x, params_.th, params_.prune_window);
    // Lines 13-14: global timer decrement.
    a.tick();
    b.tick();
    return false;
  }

  // Exposed for unit tests: Protocol 8 on an explicit path. `names` holds
  // the path's node labels from the root (names[0] = i's own name) to the
  // final node (named j); `syncs[k]` is the sync on the edge into names[k]
  // (syncs[0] unused). Returns true iff consistent.
  bool check_path_consistency(const HistoryTree& j_tree,
                              const std::vector<Name>& names,
                              const std::vector<std::uint64_t>& syncs) const {
    const std::size_t p = names.size() - 1;
    const HistoryNode* cur = j_tree.root().get();
    for (std::size_t t = 1; t <= p && t <= params_.depth_h; ++t) {
      const Name& want = names[p - t];
      const HistoryEdge* next = find_child(*cur, want);
      if (next == nullptr) break;  // the reverse suffix ends here
      // j.e_{p-t+1} in the paper's indexing corresponds to i's edge with
      // sync syncs[p-t+1].
      if (next->sync == syncs[p - t + 1]) return true;
      cur = next->child.get();
    }
    return false;  // Inconsistent: no edge of the reverse suffix matched
  }

 private:
  static const HistoryEdge* find_child(const HistoryNode& node,
                                       const Name& name) {
    for (const auto& e : node.children)
      if (e.child->name == name) return &e;
    return nullptr;
  }

  // Line 2 of Protocol 7: DFS over all live (all timers positive), simply
  // labelled paths of length <= H in i's tree that end at a node named
  // j.name; returns true iff any fails Check-Path-Consistency against j.
  bool has_inconsistent_path(const HistoryTree& i_tree,
                             const HistoryTree& j_tree,
                             std::uint64_t& nodes_visited,
                             CollisionDetectorStats& stats) const {
    const Name target = j_tree.own_name();
    path_names_.clear();
    path_syncs_.clear();
    path_names_.push_back(i_tree.own_name());
    path_syncs_.push_back(0);
    return dfs(*i_tree.root(), /*sigma=*/0,
               static_cast<std::int64_t>(i_tree.ops()), /*depth=*/0, target,
               j_tree, nodes_visited, stats);
  }

  bool dfs(const HistoryNode& node, std::int64_t sigma, std::int64_t ops,
           std::uint32_t depth, const Name& target, const HistoryTree& j_tree,
           std::uint64_t& nodes_visited, CollisionDetectorStats& stats) const {
    if (depth >= params_.depth_h) return false;
    for (const auto& e : node.children) {
      ++nodes_visited;
      const Name& cn = e.child->name;
      if (e.expiry + sigma - ops <= 0) continue;  // outdated: timer hit 0
      if (!e.child->digest.may_contain(target)) continue;  // Bloom prune
      bool repeated = false;  // lazy simple-labeling / own-name removal
      for (const Name& anc : path_names_)
        if (anc == cn) {
          repeated = true;
          break;
        }
      if (repeated) continue;
      path_names_.push_back(cn);
      path_syncs_.push_back(e.sync);
      bool bad = false;
      if (cn == target) {
        ++stats.paths_checked;
        bad = !check_path_consistency(j_tree, path_names_, path_syncs_);
      }
      if (!bad)
        bad = dfs(*e.child, sigma + e.shift, ops, depth + 1, target, j_tree,
                  nodes_visited, stats);
      path_names_.pop_back();
      path_syncs_.pop_back();
      if (bad) return true;
    }
    return false;
  }

  CollisionDetectorParams params_;
  // Scratch buffers reused across calls to avoid per-interaction allocation;
  // mutable workspace only (never read across calls), not observable state.
  mutable std::vector<Name> path_names_;
  mutable std::vector<std::uint64_t> path_syncs_;
};

// --- Introspection helpers (tests, state accounting, demos). ---

// Counts the logical nodes of the tree as the protocol defines it (depth
// limit, live-or-dead edges, simple labeling). Exponential in the worst
// case; use on small trees only.
inline std::uint64_t logical_node_count(const HistoryNode& node,
                                        std::uint32_t depth_left,
                                        std::vector<Name>& path) {
  std::uint64_t count = 1;
  if (depth_left == 0) return count;
  path.push_back(node.name);
  for (const auto& e : node.children) {
    bool repeated = false;
    for (const Name& anc : path)
      if (anc == e.child->name) {
        repeated = true;
        break;
      }
    if (repeated) continue;
    count += logical_node_count(*e.child, depth_left - 1, path);
  }
  path.pop_back();
  return count;
}

inline std::uint64_t logical_node_count(const HistoryTree& tree,
                                        std::uint32_t depth_h) {
  std::vector<Name> path;
  return tree.initialized() ? logical_node_count(*tree.root(), depth_h, path)
                            : 0;
}

// Counts only live paths (all timers positive), i.e. the portion the
// detection DFS can visit.
inline std::uint64_t live_node_count(const HistoryNode& node,
                                     std::int64_t sigma, std::int64_t ops,
                                     std::uint32_t depth_left,
                                     std::vector<Name>& path) {
  std::uint64_t count = 1;
  if (depth_left == 0) return count;
  path.push_back(node.name);
  for (const auto& e : node.children) {
    if (e.expiry + sigma - ops <= 0) continue;
    bool repeated = false;
    for (const Name& anc : path)
      if (anc == e.child->name) {
        repeated = true;
        break;
      }
    if (repeated) continue;
    count += live_node_count(*e.child, sigma + e.shift, ops, depth_left - 1,
                             path);
  }
  path.pop_back();
  return count;
}

inline std::uint64_t live_node_count(const HistoryTree& tree,
                                     std::uint32_t depth_h) {
  std::vector<Name> path;
  return tree.initialized()
             ? live_node_count(*tree.root(), 0,
                               static_cast<std::int64_t>(tree.ops()), depth_h,
                               path)
             : 0;
}

// --- Truncated-tree projection (the count-form state abstraction). ---
//
// sublinear_count.h abstracts each agent's history tree to its depth-<= d
// truncation with syncs erased: what survives of a root edge is only (child
// name, age in owner operations). These helpers compute that projection from
// a concrete tree, so tests can map agent-array states onto count-form codes
// and verify the abstraction identifies exactly the states the quotient says
// it should.

// Number of live (timer > 0) root edges — the truncated tree's root degree.
inline std::uint32_t live_root_degree(const HistoryTree& tree) {
  if (!tree.initialized()) return 0;
  const auto ops = static_cast<std::int64_t>(tree.ops());
  std::uint32_t deg = 0;
  for (const auto& e : tree.root()->children)
    if (e.expiry - ops > 0) ++deg;
  return deg;
}

// Age (in owner operations since the graft) of the root edge leading to
// `name`, or -1 if no such edge exists. The edge is live iff its age < th it
// was grafted with: age = ops_now - ops_at_graft = th - remaining_timer. A
// freshly grafted edge has age 1 by the time its owner next interacts (the
// creating interaction's tick happens after the graft).
inline std::int64_t root_edge_age(const HistoryTree& tree, const Name& name,
                                  std::uint32_t th) {
  if (!tree.initialized()) return -1;
  const auto ops = static_cast<std::int64_t>(tree.ops());
  for (const auto& e : tree.root()->children)
    if (e.child->name == name) return ops - (e.expiry - th);
  return -1;
}

// Canonical shape code of the depth-<= d truncation restricted to live
// paths: a stable hash over (child name, recursive code) pairs sorted by
// name, with syncs and exact timer values erased. Two trees get the same
// code iff their live truncations are isomorphic as name-labelled trees —
// the equivalence the count form's state classes are built from.
inline std::uint64_t truncated_shape_code(const HistoryNode& node,
                                          std::int64_t sigma, std::int64_t ops,
                                          std::uint32_t depth_left,
                                          std::vector<Name>& path) {
  std::uint64_t code = node.name.hash() * 0x9e3779b97f4a7c15ULL + 1;
  if (depth_left == 0) return code;
  path.push_back(node.name);
  std::vector<std::uint64_t> kid_codes;
  for (const auto& e : node.children) {
    if (e.expiry + sigma - ops <= 0) continue;
    bool repeated = false;
    for (const Name& anc : path)
      if (anc == e.child->name) {
        repeated = true;
        break;
      }
    if (repeated) continue;
    kid_codes.push_back(truncated_shape_code(*e.child, sigma + e.shift, ops,
                                             depth_left - 1, path));
  }
  path.pop_back();
  std::sort(kid_codes.begin(), kid_codes.end());
  // The root-vs-child mix must not commute: a plain (code ^ k) * m maps
  // root-A-child-B and root-B-child-A single-edge trees to the same code.
  for (std::uint64_t k : kid_codes)
    code = (code * 0x2545f4914f6cdd1dULL) ^ (k + 0x9e3779b97f4a7c15ULL);
  return code;
}

inline std::uint64_t truncated_shape_code(const HistoryTree& tree,
                                          std::uint32_t depth) {
  if (!tree.initialized()) return 0;
  std::vector<Name> path;
  return truncated_shape_code(*tree.root(), 0,
                              static_cast<std::int64_t>(tree.ops()), depth,
                              path);
}

}  // namespace ppsim
