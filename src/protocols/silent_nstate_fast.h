// Exact-distribution accelerated simulator for Silent-n-state-SSR.
//
// Only interactions between two agents of equal rank change the
// configuration. From a configuration with rank counts m_0..m_{n-1}, the
// probability that a uniformly random ordered pair collides is
//   p = sum_r m_r (m_r - 1) / (n (n - 1)),
// so the wait until the next effective interaction is Geometric(p) and the
// colliding rank is chosen with probability proportional to m_r (m_r - 1).
// Jumping directly between effective interactions preserves the exact
// distribution of the stabilization interaction count while doing O(1) work
// per *effective* event, which lets the Theta(n^2)-time protocol be measured
// at populations far beyond what the direct simulator can reach.
//
// Validated against the direct simulator in tests/silent_nstate_test.cpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/rng.h"  // sample_geometric
#include "protocols/silent_nstate.h"

namespace ppsim {

struct SilentNStateFastResult {
  std::uint64_t interactions = 0;
  double parallel_time = 0.0;
  std::uint64_t effective_events = 0;  // rank-collision interactions
};

class SilentNStateFast {
 public:
  explicit SilentNStateFast(std::uint32_t n) : n_(n) {
    if (n < 2) throw std::invalid_argument("population size must be >= 2");
  }

  // Runs to the (unique reachable) silent configuration from the given rank
  // counts. counts[r] = number of agents at rank r; must sum to n.
  SilentNStateFastResult run(std::vector<std::uint32_t> counts,
                             std::uint64_t seed) const {
    if (counts.size() != n_)
      throw std::invalid_argument("counts must have length n");
    std::uint64_t total = 0;
    // weight[r] = m_r (m_r - 1); colliding_weight = sum_r weight[r].
    std::vector<std::uint64_t> weight(n_, 0);
    std::uint64_t colliding_weight = 0;
    for (std::uint32_t r = 0; r < n_; ++r) {
      total += counts[r];
      weight[r] = static_cast<std::uint64_t>(counts[r]) *
                  (counts[r] > 0 ? counts[r] - 1 : 0);
      colliding_weight += weight[r];
    }
    if (total != n_) throw std::invalid_argument("counts must sum to n");

    Rng rng(seed);
    const double ordered_pairs =
        static_cast<double>(n_) * static_cast<double>(n_ - 1);
    SilentNStateFastResult out;
    while (colliding_weight > 0) {
      const double p = static_cast<double>(colliding_weight) / ordered_pairs;
      out.interactions += sample_geometric(rng, p);
      ++out.effective_events;
      // Pick the colliding rank with probability weight[r]/colliding_weight.
      std::uint64_t x = rng.below(colliding_weight);
      std::uint32_t r = 0;
      while (x >= weight[r]) {
        x -= weight[r];
        ++r;
      }
      const std::uint32_t s = (r + 1) % n_;
      // One agent moves from rank r to rank s; update both weights.
      auto w = [](std::uint32_t m) {
        return static_cast<std::uint64_t>(m) * (m > 0 ? m - 1 : 0);
      };
      colliding_weight -= weight[r] + weight[s];
      --counts[r];
      ++counts[s];
      weight[r] = w(counts[r]);
      weight[s] = w(counts[s]);
      colliding_weight += weight[r] + weight[s];
    }
    out.parallel_time =
        static_cast<double>(out.interactions) / static_cast<double>(n_);
    return out;
  }

  // Interop with the count-based batched backend: BatchSimulation keeps
  // 64-bit counts; narrow and delegate. Named (not overloaded) so that
  // brace-initialized count literals stay unambiguous. Validated against
  // BatchSimulation<SilentNStateSSR> in tests/batch_simulation_test.cpp —
  // the two accelerators implement the same jump-chain independently.
  SilentNStateFastResult run_counts(const std::vector<std::uint64_t>& counts,
                                    std::uint64_t seed) const {
    std::vector<std::uint32_t> narrow(counts.size());
    for (std::size_t r = 0; r < counts.size(); ++r) {
      if (counts[r] > n_)
        throw std::invalid_argument("count exceeds population size");
      narrow[r] = static_cast<std::uint32_t>(counts[r]);
    }
    return run(std::move(narrow), seed);
  }

  std::uint32_t population_size() const { return n_; }

 private:
  std::uint32_t n_;
};

// Rank-count vector of an explicit agent configuration — the bridge from
// the agent-array world to the count-based accelerators.
inline std::vector<std::uint32_t> silent_nstate_counts_of(
    std::uint32_t n, const std::vector<SilentNStateSSR::State>& states) {
  if (states.size() != n)
    throw std::invalid_argument("configuration size != population size");
  std::vector<std::uint32_t> counts(n, 0);
  for (const auto& s : states) {
    if (s.rank >= n) throw std::invalid_argument("rank out of range");
    ++counts[s.rank];
  }
  return counts;
}

// Rank-count vector of the worst-case configuration of Theorem 2.4.
inline std::vector<std::uint32_t> silent_nstate_worst_counts(
    std::uint32_t n) {
  std::vector<std::uint32_t> counts(n, 1);
  counts[0] = 2;
  counts[n - 1] = 0;
  return counts;
}

}  // namespace ppsim
