// The SSLE view of a ranking protocol (Section 2): any protocol solving SSR
// solves SSLE by declaring leader <=> rank = 1. These helpers expose that
// view over a configuration.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/simulation.h"

namespace ppsim {

// True iff this agent is the leader under the rank-1 rule.
template <RankingProtocol P>
bool is_leader(const P& protocol, const typename P::State& s) {
  return protocol.rank_of(s) == 1;
}

template <RankingProtocol P>
std::uint32_t count_leaders(const P& protocol,
                            const std::vector<typename P::State>& states) {
  std::uint32_t count = 0;
  for (const auto& s : states)
    if (is_leader(protocol, s)) ++count;
  return count;
}

// Index of the unique leader, or nullopt if there is not exactly one.
template <RankingProtocol P>
std::optional<std::uint32_t> unique_leader(
    const P& protocol, const std::vector<typename P::State>& states) {
  std::optional<std::uint32_t> found;
  for (std::uint32_t i = 0; i < states.size(); ++i) {
    if (is_leader(protocol, states[i])) {
      if (found) return std::nullopt;
      found = i;
    }
  }
  return found;
}

// True iff ranks form a permutation of 1..n (full-scan check; the
// incremental RankTracker is used inside hot loops instead).
template <RankingProtocol P>
bool is_correctly_ranked(const P& protocol,
                         const std::vector<typename P::State>& states) {
  std::vector<bool> seen(states.size() + 1, false);
  for (const auto& s : states) {
    const std::uint32_t r = protocol.rank_of(s);
    if (r == 0 || r > states.size() || seen[r]) return false;
    seen[r] = true;
  }
  return true;
}

}  // namespace ppsim
