// The SSLE view of a ranking protocol (Section 2): any protocol solving SSR
// solves SSLE by declaring leader <=> rank = 1. These helpers expose that
// view over a configuration.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/batch_simulation.h"
#include "core/simulation.h"

namespace ppsim {

// True iff this agent is the leader under the rank-1 rule.
template <RankingProtocol P>
bool is_leader(const P& protocol, const typename P::State& s) {
  return protocol.rank_of(s) == 1;
}

template <RankingProtocol P>
std::uint32_t count_leaders(const P& protocol,
                            const std::vector<typename P::State>& states) {
  std::uint32_t count = 0;
  for (const auto& s : states)
    if (is_leader(protocol, s)) ++count;
  return count;
}

// Index of the unique leader, or nullopt if there is not exactly one.
template <RankingProtocol P>
std::optional<std::uint32_t> unique_leader(
    const P& protocol, const std::vector<typename P::State>& states) {
  std::optional<std::uint32_t> found;
  for (std::uint32_t i = 0; i < states.size(); ++i) {
    if (is_leader(protocol, states[i])) {
      if (found) return std::nullopt;
      found = i;
    }
  }
  return found;
}

// True iff ranks form a permutation of 1..n (full-scan check; the
// incremental RankTracker is used inside hot loops instead).
template <RankingProtocol P>
bool is_correctly_ranked(const P& protocol,
                         const std::vector<typename P::State>& states) {
  std::vector<bool> seen(states.size() + 1, false);
  for (const auto& s : states) {
    const std::uint32_t r = protocol.rank_of(s);
    if (r == 0 || r > states.size() || seen[r]) return false;
    seen[r] = true;
  }
  return true;
}

// --- Count-based views -----------------------------------------------------
//
// The same SSLE queries over a BatchSimulation configuration: counts[q] is
// the number of agents in the state coded q. O(|Q|) instead of O(n).

template <class P>
  requires EnumerableProtocol<P> && RankingProtocol<P>
std::uint64_t count_leaders(const P& protocol,
                            const std::vector<std::uint64_t>& counts) {
  std::uint64_t total = 0;
  for (std::uint32_t q = 0; q < counts.size(); ++q)
    if (counts[q] > 0 && is_leader(protocol, protocol.decode(q)))
      total += counts[q];
  return total;
}

template <class P>
  requires EnumerableProtocol<P> && RankingProtocol<P>
bool has_unique_leader(const P& protocol,
                       const std::vector<std::uint64_t>& counts) {
  return count_leaders(protocol, counts) == 1;
}

// True iff the counted configuration's ranks form a permutation of 1..n.
// Two agents sharing a state share a rank, so any count > 1 disqualifies.
template <class P>
  requires EnumerableProtocol<P> && RankingProtocol<P>
bool is_correctly_ranked(const P& protocol,
                         const std::vector<std::uint64_t>& counts) {
  const std::uint64_t n = protocol.population_size();
  std::vector<bool> seen(n + 1, false);
  for (std::uint32_t q = 0; q < counts.size(); ++q) {
    if (counts[q] == 0) continue;
    if (counts[q] > 1) return false;
    const std::uint32_t r = protocol.rank_of(protocol.decode(q));
    if (r == 0 || r > n || seen[r]) return false;
    seen[r] = true;
  }
  return true;
}

}  // namespace ppsim
