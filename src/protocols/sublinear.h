// Sublinear-Time-SSR (Protocols 5 and 6, Section 5).
//
// Self-stabilizing ranking in O(H * n^{1/(H+1)}) expected time for constant
// H, and O(log n) — optimal — for H = Theta(log n), at the price of a
// quasi-exponential state space. Each agent holds:
//
//   name   - a random bitstring of length 3*log2(n), regenerated bit-by-bit
//            while dormant during a reset;
//   roster - the set of all names heard of, spread by union (the roll call
//            process): when |roster| = n the agent's rank is its name's
//            lexicographic position, and |roster| > n proves a "ghost name"
//            and triggers a reset;
//   tree   - the interaction-history tree used by Detect-Name-Collision to
//            find two agents with the same name without waiting Theta(n)
//            time for them to meet (collision_tree.h).
//
// Since any sublinear-time SSLE protocol must be non-silent (Observation
// 2.6), the trees keep changing forever even after ranks stabilize; safety
// (no false collision is ever declared from a uniquely-named configuration
// reached after a clean reset) is Lemma 5.4/5.5, exercised in the tests.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <utility>

#include "common/intlog.h"
#include "common/name.h"
#include "common/roster.h"
#include "core/rng.h"
#include "processes/synthetic_coin.h"
#include "protocols/collision_tree.h"
#include "reset/propagate_reset.h"

namespace ppsim {

enum class SlRole : std::uint8_t { Collecting, Resetting };

struct SublinearParams {
  std::uint32_t n = 0;
  std::uint32_t depth_h = 1;   // H: history-path length bound
  std::uint32_t name_len = 3;  // 3 * ceil(log2 n)
  std::uint64_t smax = 1;      // sync range, Theta(n^2)
  std::uint32_t th = 1;        // edge timer T_H = Theta(tau_{H+1})
  std::uint32_t rmax = 1;      // reset wave height, Theta(log n)
  std::uint32_t dmax = 1;      // dormant delay, Theta(log n)
  bool use_synthetic_coin = false;  // Section 6 derandomization of name bits
  bool direct_check = true;         // see CollisionDetectorParams

  // H = Theta(log n): the time-optimal O(log n) configuration
  // (Table 1 row 3; TH = Theta(log n) by Lemma 2.11).
  static SublinearParams log_time(std::uint32_t n) {
    SublinearParams p = base(n);
    p.depth_h = 3 * ceil_log2(n);
    p.th = static_cast<std::uint32_t>(std::ceil(6.0 * std::log(n))) + 4;
    return p;
  }

  // Constant H: the O(H * n^{1/(H+1)}) configuration (Table 1 row 4;
  // TH = Theta(H * n^{1/(H+1)}) by Lemma 2.10 with k = H+1).
  static SublinearParams constant_h(std::uint32_t n, std::uint32_t h) {
    if (h < 1) throw std::invalid_argument("H must be >= 1");
    SublinearParams p = base(n);
    p.depth_h = h;
    p.th = static_cast<std::uint32_t>(std::ceil(
               4.0 * (h + 1) *
               std::pow(static_cast<double>(n), 1.0 / (h + 1)))) +
           4;
    return p;
  }

  // Kept as a member so existing callers (`SublinearParams::ceil_log2`)
  // still resolve; forwards to the shared helper in common/intlog.h.
  static std::uint32_t ceil_log2(std::uint32_t n) {
    return ppsim::ceil_log2(n);
  }

 private:
  static SublinearParams base(std::uint32_t n) {
    if (n < 2) throw std::invalid_argument("population size must be >= 2");
    SublinearParams p;
    p.n = n;
    p.name_len = Name::full_length(n);
    p.smax = static_cast<std::uint64_t>(n) * n;
    const auto logn = std::log(static_cast<double>(n));
    p.rmax = static_cast<std::uint32_t>(std::ceil(8.0 * logn)) + 4;
    // Dormancy must outlast the wave (Lemma 3.3 requires Dmax =
    // Omega(log n + Rmax)) and leave room to regenerate name_len bits (one
    // per dormant interaction; the constructor adds headroom when the
    // synthetic coin is enabled, which needs ~4 interactions per bit).
    p.dmax = 2 * p.rmax + 2 * p.name_len +
             static_cast<std::uint32_t>(std::ceil(4.0 * logn)) + 8;
    return p;
  }
};

class SublinearTimeSSR {
 public:
  struct State {
    SlRole role = SlRole::Collecting;
    Name name;
    // Collecting fields.
    std::uint32_t rank = 0;  // write-only output, {1..n}
    Roster roster;
    HistoryTree tree;
    // Resetting fields.
    std::uint32_t resetcount = 0;  // {0..Rmax}
    std::uint32_t delaytimer = 0;  // {0..Dmax}
    // Synthetic-coin phase (Section 6); toggled every interaction.
    CoinPhase coin;
  };

  // Engine-owned per-interaction event counters (ObservableProtocol); the
  // collision detector's instrumentation rides along in `detector`.
  struct Counters {
    std::uint64_t collision_triggers = 0;
    std::uint64_t ghost_triggers = 0;
    std::uint64_t resets_executed = 0;
    std::uint64_t rank_updates = 0;
    std::uint64_t coin_bits = 0;
    std::uint64_t coin_waits = 0;  // interactions a bit-needing agent waited
    CollisionDetectorStats detector;
  };

  explicit SublinearTimeSSR(SublinearParams params)
      : params_(adjusted(params)), detector_(detector_params(params_)) {
    if (params.n < 2) throw std::invalid_argument("population size >= 2");
    if (params.smax < 1 || params.th < 1 || params.rmax < 1 ||
        params.dmax < 1)
      throw std::invalid_argument("constants must be positive");
  }

  std::uint32_t population_size() const { return params_.n; }
  const SublinearParams& params() const { return params_; }

  // A fully-initialized Collecting state, as produced by Reset.
  State make_collecting(const Name& name) const {
    State s;
    s.role = SlRole::Collecting;
    s.name = name;
    s.roster = Roster::singleton(name);
    s.tree.reset(name);
    return s;
  }

  // Protocol 5, for agent a interacting with agent b.
  void interact(State& a, State& b, Rng& rng, Counters& c) const {
    if (a.role == SlRole::Collecting && b.role == SlRole::Collecting) {
      assert(a.tree.initialized() && b.tree.initialized());
      // Line 2: collision detection (which also performs the tree exchange
      // when no collision is found) and the ghost-name cardinality check.
      const bool collision =
          detector_.detect_and_update(a.tree, b.tree, rng, c.detector);
      if (collision) ++c.collision_triggers;
      bool ghost = false;
      if (!collision) {
        ghost = Roster::union_size(a.roster, b.roster) > params_.n;
        if (ghost) ++c.ghost_triggers;
      }
      if (collision || ghost) {
        trigger_reset(a);  // line 3
        trigger_reset(b);
      } else {
        // Line 5: roster union.
        Roster merged = Roster::merged(a.roster, b.roster);
        a.roster = merged;
        b.roster = std::move(merged);
        // Lines 6-8: ranks only once every name is collected.
        if (a.roster.size() == params_.n) {
          a.rank = a.roster.lexicographic_rank(a.name);
          b.rank = b.roster.lexicographic_rank(b.name);
          c.rank_updates += 2;
        }
      }
    } else {
      // Line 10: some agent is Resetting.
      ResetView<SublinearTimeSSR, Counters> host{*this, c};
      propagate_reset_step(host, a, b);
      // Lines 11-12: clear names while the reset wave is propagating.
      for (State* i : {&a, &b})
        if (i->role == SlRole::Resetting && i->resetcount > 0)
          i->name.clear();
      // Lines 13-14: dormant agents regenerate their name bit by bit.
      for (State* i : {&a, &b}) {
        if (i->role != SlRole::Resetting || i->resetcount != 0 ||
            i->name.length() >= params_.name_len)
          continue;
        if (params_.use_synthetic_coin) {
          ++c.coin_waits;  // bit arrives only on an Alg-Flip meeting
        } else {
          i->name.append_bit(rng.coin());
          ++c.coin_bits;
        }
      }
      if (params_.use_synthetic_coin) harvest_coin_bits(a, b, c);
    }
    // Section 6 time multiplexing: every agent alternates Alg/Flip on every
    // interaction, regardless of role.
    if (params_.use_synthetic_coin) {
      a.coin.flip_phase = !a.coin.flip_phase;
      b.coin.flip_phase = !b.coin.flip_phase;
    }
  }

  std::uint32_t rank_of(const State& s) const {
    return s.role == SlRole::Collecting ? s.rank : 0;
  }

  // Sublinear-Time-SSR is non-silent: a Collecting pair always refreshes
  // history trees.
  bool is_null_pair(const State&, const State&) const { return false; }

  // --- ResetHost hooks for propagate_reset_step (Protocol 2). ---
  bool is_resetting(const State& s) const {
    return s.role == SlRole::Resetting;
  }
  std::uint32_t& reset_count(State& s) const { return s.resetcount; }
  std::uint32_t& delay_timer(State& s) const { return s.delaytimer; }
  void recruit(State& s) const {
    s.role = SlRole::Resetting;
    s.resetcount = 0;
    s.delaytimer = params_.dmax;
  }
  // Protocol 6: Reset(a). The history tree restarts from the bare root —
  // required by the safety argument (Lemma 5.4 reasons from agents that
  // "start with an empty tree" after awakening).
  void reset_agent(State& s, Counters& c) const {
    ++c.resets_executed;
    s.role = SlRole::Collecting;
    s.roster = Roster::singleton(s.name);
    s.tree.reset(s.name);
  }
  std::uint32_t dmax() const { return params_.dmax; }

 private:
  // The synthetic coin yields ~1 bit per 4 interactions, so the dormant
  // phase needs proportionally more headroom to finish a name.
  static SublinearParams adjusted(SublinearParams p) {
    if (p.use_synthetic_coin) p.dmax += 6 * p.name_len;
    return p;
  }

  static CollisionDetectorParams detector_params(const SublinearParams& p) {
    CollisionDetectorParams d;
    d.depth_h = p.depth_h;
    d.smax = p.smax;
    d.th = p.th;
    d.direct_check = p.direct_check;
    // Root edges dead for more than (H+6) * TH operations can no longer be
    // needed as verification material (frame skew per hop is O(TH) whp);
    // pruning them bounds the per-agent memory. See DESIGN.md.
    d.prune_window = static_cast<std::uint64_t>(p.depth_h + 6) * p.th;
    return d;
  }

  void trigger_reset(State& s) const {
    s.role = SlRole::Resetting;
    s.resetcount = params_.rmax;
    s.delaytimer = 0;
  }

  // Section 6: an agent in role Alg whose partner is in role Flip harvests
  // one unbiased bit (heads iff it initiated). `a` is the initiator.
  void harvest_coin_bits(State& a, State& b, Counters& c) const {
    auto needs_bit = [&](const State& s) {
      return s.role == SlRole::Resetting && s.resetcount == 0 &&
             s.name.length() < params_.name_len;
    };
    const bool a_alg = !a.coin.flip_phase;
    const bool b_alg = !b.coin.flip_phase;
    if (a_alg && !b_alg && needs_bit(a)) {
      a.name.append_bit(true);  // Alg initiated: heads
      ++c.coin_bits;
    }
    if (b_alg && !a_alg && needs_bit(b)) {
      b.name.append_bit(false);  // Alg responded: tails
      ++c.coin_bits;
    }
  }

  SublinearParams params_;
  CollisionDetector detector_;
};

}  // namespace ppsim
