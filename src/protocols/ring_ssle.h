// Directed-ring self-stabilizing leader election (ring-ssle).
//
// The first non-clique protocol of the repo (ROADMAP item 1): SS-LE on the
// directed ring topology, after Yokota–Sudo–Masuzawa (arXiv 2009.10926),
// who give a time-optimal self-stabilizing leader-election protocol for
// directed rings. This implementation reproduces that paper's mechanism
// set — distance-counting timeout for leader creation, forward-travelling
// bullets that kill unshielded leaders, shields that make the unique
// survivor immortal — in this repo's protocol vocabulary; constants,
// tie-breaking and the rival-evidence rule below are this codebase's
// choices, validated empirically by the adversarial-start suites in
// tests/topology_test.cpp rather than transcribed line by line from the
// paper. One deliberate deviation: the paper works from any upper bound
// N >= n, while this implementation instantiates the bound tightly
// (cap = n, enforced by the constructor) because its rival detector is
// the distance channel itself, whose threshold must separate "nearest
// upstream leader at distance <= n-1" from "my own domain wrapped the
// whole ring (distance exactly n)".
//
// State per agent: (leader, dist, bullet, shield), dist in [0, cap]. For
// a follower, dist counts from the nearest upstream leader; for a leader,
// the same field is its fire countdown. On the directed edge u -> v
// (u initiates, v responds), with src = 0 if u leads else u.dist:
//
//   1. countdown firing: an unshielded leader u with dist 0 fires — a
//      fresh bullet departs toward v, the shield goes up, and the
//      countdown resets to cap. An unshielded leader with dist > 0 just
//      ticks it down; a shielded leader is parked. Firing is therefore
//      throttled to once per ~cap*n interactions, the same timescale as a
//      bullet's full circulation.
//   2. distance counting: a non-leader v learns dist = min(cap, src + 1).
//      Reaching cap is the timeout: no leader upstream within the bound,
//      so v promotes itself (dist 0, unshielded — it fires on its first
//      initiation). A leader v instead reads src + 1 < cap as evidence of
//      a rival upstream (a true solo leader's predecessor always carries
//      dist n - 1) and drops its shield.
//   3. bullets travel with the edge direction: a bullet on u (or fired by
//      u this step) arrives at v. A non-leader v carries it onward; a
//      leader v absorbs it with its shield (shield drops) or, unshielded,
//      is killed by it (demoted to a follower at dist src + 1).
//
// Why it stabilizes:
//   * no leaders: the ring's minimum dist only ever increases (every
//     update writes pred.dist + 1), so some agent times out at cap and
//     promotes — leaders are recreated.
//   * two+ leaders: some leader's gap to its upstream rival is < n, so
//     rule 2 keeps its shield down and the next arriving bullet kills it;
//     no multi-leader configuration is ever silent (an unshielded leader
//     ticking its countdown is a state change, and some leader is always
//     unshielded or some follower promotes), so bullets keep coming and
//     leaders are eliminated in O(n) expected parallel time per duel.
//   * the survivor is immortal: once distances heal, its predecessor
//     announces src + 1 = n = cap (no evidence, shield stays), its own
//     bullet is the only one in flight and is fired exactly when the
//     shield goes up and absorbed exactly when it returns — shield up
//     whenever a bullet arrives, deterministically.
//   * stale junk: bullets are only consumed at leaders and only created
//     by firing, so adversarial bullets strictly deplete; adversarial
//     shields on followers are canonicalized away by any interaction.
//
// Non-silent by design — the survivor perpetually re-fires — but the
// converged configuration has O(1) active edges (the bullet front or the
// ticking countdown edge), which is exactly what the run-length-compressed
// ring engine (core/ring_simulation.h) exploits.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "core/rng.h"

namespace ppsim {

class RingSSLE {
 public:
  struct State {
    bool leader = false;
    std::uint32_t dist = 0;  // follower: distance from the nearest
                             // upstream leader; leader: fire countdown
    bool bullet = false;     // a bullet currently sits on this agent
    bool shield = false;     // leaders only (canonicalized off followers)

    bool operator==(const State&) const = default;
  };

  // interact() never reads the Rng: transitions are pure functions of the
  // ordered state pair (multinomial memoization, RLE nullity probing).
  static constexpr bool kDeterministicInteract = true;

  explicit RingSSLE(std::uint32_t n, std::uint32_t cap = 0)
      : n_(n), cap_(cap == 0 ? n : cap) {
    if (n < 2) throw std::invalid_argument("population size must be >= 2");
    if (cap_ != n)
      throw std::invalid_argument(
          "ring-ssle needs cap == n: this implementation instantiates the "
          "paper's bound N tightly because the distance channel doubles as "
          "the rival detector (see the header comment)");
    if (cap_ > (1u << 28))
      throw std::invalid_argument("ring-ssle cap too large (> 2^28)");
  }

  std::uint32_t population_size() const { return n_; }
  std::uint32_t cap() const { return cap_; }

  // EnumerableProtocol: code = dist * 8 + leader*4 + bullet*2 + shield.
  std::uint32_t num_states() const { return 8 * (cap_ + 1); }
  std::uint32_t encode(const State& s) const {
    return s.dist * 8 + (s.leader ? 4u : 0u) + (s.bullet ? 2u : 0u) +
           (s.shield ? 1u : 0u);
  }
  State decode(std::uint32_t code) const {
    State s;
    s.dist = code / 8;
    s.leader = (code & 4) != 0;
    s.bullet = (code & 2) != 0;
    s.shield = (code & 1) != 0;
    return s;
  }

  void interact(State& a, State& b, Rng&) const { apply(a, b); }

  // Exact nullity by trial application — interact() is deterministic, so
  // "would this ordered pair change anything" is a pure O(1) probe.
  bool is_null_pair(const State& a, const State& b) const {
    State a2 = a, b2 = b;
    apply(a2, b2);
    return a2 == a && b2 == b;
  }

  // ChurnableProtocol: a freshly booted agent is a plain follower at
  // distance 0 — self-stabilization absorbs it like any adversarial state.
  State churn_state() const { return State{}; }

  bool is_leader(const State& s) const { return s.leader; }

 private:
  void apply(State& a, State& b) const {
    const std::uint32_t src = a.leader ? 0 : a.dist;
    const bool fires = a.leader && !a.shield && a.dist == 0;
    const bool incoming = a.bullet || fires;
    const std::uint32_t d = src + 1 >= cap_ ? cap_ : src + 1;
    // Initiator, rule 1: countdown firing. The bullet (if any) departs; a
    // firing leader raises its shield and resets the countdown; a shielded
    // leader is parked; adversarial follower shields are canonicalized.
    a.bullet = false;
    if (a.leader) {
      if (!a.shield) {
        if (a.dist == 0) {
          a.shield = true;  // fires
          a.dist = cap_;
        } else {
          a.dist -= 1;  // ticking toward the next shot
        }
      }
    } else {
      a.shield = false;
    }
    // Responder, rule 2: distance counting / timeout promotion / rival
    // evidence.
    if (!b.leader) {
      if (d >= cap_) {
        b.leader = true;  // timeout: no leader within the bound upstream
        b.dist = 0;       // fires on its first initiation
        b.shield = false;
      } else {
        b.dist = d;
        b.shield = false;
      }
    } else if (d < cap_) {
      // A rival leader sits < n upstream (a true solo leader's
      // predecessor always announces src + 1 = n = cap): drop the shield
      // so the next bullet kills.
      b.shield = false;
    }
    // Responder, rule 3: bullet arrival (after the evidence rule, so a
    // bullet riding in with fresh rival evidence kills).
    if (incoming) {
      if (b.leader) {
        if (b.shield) {
          b.shield = false;  // absorbed
        } else {
          b.leader = false;  // killed
          b.shield = false;
          b.dist = d;
        }
      } else {
        b.bullet = true;  // carried onward
      }
    }
  }

  std::uint32_t n_;
  std::uint32_t cap_;
};

}  // namespace ppsim
