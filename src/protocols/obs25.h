// The Observation 2.5 protocol: silent SSLE for n = 3 whose states cannot be
// assigned ranks (so SSLE does not imply SSR "for free").
//
// States are {l, f0..f4}. The five silent configurations are {l, fi, fj}
// with |i-j| = 1 (mod 5); every other pair of states (equal states, or two
// followers at non-adjacent indices) jumps to a uniformly random pair of
// states. Because |F| = 5 is odd, no assignment of ranks {2,3} to f0..f4 can
// rank all five silent configurations consistently — the impossibility the
// observation proves, which tests/obs25_test.cpp verifies by enumeration.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "core/rng.h"

namespace ppsim {

class Obs25SSLE {
 public:
  // 0 = leader l, 1..5 = followers f0..f4.
  struct State {
    std::uint8_t v = 0;
  };

  static constexpr std::uint32_t kStates = 6;

  explicit Obs25SSLE(std::uint32_t n) {
    if (n != 3)
      throw std::invalid_argument("Observation 2.5 protocol is for n = 3");
  }

  std::uint32_t population_size() const { return 3; }

  static bool adjacent_followers(std::uint8_t a, std::uint8_t b) {
    if (a == 0 || b == 0) return false;
    const int i = a - 1;
    const int j = b - 1;
    const int d = ((i - j) % 5 + 5) % 5;
    return d == 1 || d == 4;  // |i-j| = 1 (mod 5)
  }

  // Null pairs are exactly {l, fi} and adjacent follower pairs.
  bool is_null_pair(const State& a, const State& b) const {
    if (a.v != b.v &&
        (a.v == 0 || b.v == 0 || adjacent_followers(a.v, b.v)))
      return true;
    return false;
  }

  void interact(State& a, State& b, Rng& rng) const {
    if (is_null_pair(a, b)) return;
    a.v = static_cast<std::uint8_t>(rng.below(kStates));
    b.v = static_cast<std::uint8_t>(rng.below(kStates));
  }

  bool is_leader(const State& s) const { return s.v == 0; }

  // EnumerableProtocol: Q = {l, f0..f4}, coded by the value itself, so the
  // protocol runs on the count-based backend too (cross-validated against
  // the agent array in tests/engine_equivalence_test.cpp).
  std::uint32_t num_states() const { return kStates; }
  std::uint32_t encode(const State& s) const {
    if (s.v >= kStates) throw std::invalid_argument("invalid Obs25 state");
    return s.v;
  }
  State decode(std::uint32_t code) const {
    return State{static_cast<std::uint8_t>(code)};
  }
};

}  // namespace ppsim
