// Silent-n-state-SSR (Protocol 1) — the Cai–Izumi–Wada baseline.
//
// Each agent holds rank in {0..n-1}; when the initiator and responder agree,
// the responder moves up one rank mod n. This solves self-stabilizing ranking
// with exactly n states (optimal, Theorem 2.1) but needs Theta(n^2) parallel
// time (Theorem 2.4): progress requires the two colliding agents to meet
// directly, a Theta(n) wait, n-1 times in the worst case.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/rng.h"

namespace ppsim {

class SilentNStateSSR {
 public:
  struct State {
    std::uint32_t rank = 0;  // {0..n-1}, the paper's Protocol 1 convention
  };

  // All progress happens on the diagonal: interact() only changes state
  // when initiator.rank == responder.rank, so the batched backend may
  // geometric-skip every unequal-rank draw (core/batch_simulation.h).
  static constexpr bool kActiveRequiresEqualStates = true;

  // interact() never reads the Rng: transitions are cacheable per ordered
  // state-code pair (multinomial batch strategy).
  static constexpr bool kDeterministicInteract = true;

  explicit SilentNStateSSR(std::uint32_t n) : n_(n) {
    if (n < 2) throw std::invalid_argument("population size must be >= 2");
  }

  std::uint32_t population_size() const { return n_; }

  // EnumerableProtocol: Q = {0..n-1}, coded by the rank itself.
  std::uint32_t num_states() const { return n_; }
  std::uint32_t encode(const State& s) const { return s.rank; }
  State decode(std::uint32_t code) const { return State{code}; }

  void interact(State& initiator, State& responder, Rng&) const {
    if (initiator.rank == responder.rank)
      responder.rank = (responder.rank + 1) % n_;
  }

  // Ranking output in the paper's formal {1..n} convention.
  std::uint32_t rank_of(const State& s) const { return s.rank + 1; }

  // ChurnableProtocol: a freshly booted agent starts at rank 0. With n
  // states there is no "unranked" value — a crash lands on whatever rank 0
  // holds, and self-stabilization resolves the duplicate from there.
  State churn_state() const { return State{0}; }

  // A pair is null iff the ranks differ; a configuration in which every pair
  // is null is silent, and the silent configurations are exactly the
  // permutations.
  bool is_null_pair(const State& a, const State& b) const {
    return a.rank != b.rank;
  }

 private:
  std::uint32_t n_;
};

// The worst-case initial configuration from Theorem 2.4's lower bound:
// two agents at rank 0, one agent at each rank 1..n-2, none at rank n-1.
// From here stabilization requires n-1 consecutive bottleneck meetings and
// E[interactions] = (n-1) * C(n,2) exactly.
inline std::vector<SilentNStateSSR::State> silent_nstate_worst_config(
    std::uint32_t n) {
  if (n < 2) throw std::invalid_argument("population size must be >= 2");
  std::vector<SilentNStateSSR::State> states(n);
  states[0].rank = 0;
  states[1].rank = 0;
  for (std::uint32_t i = 2; i < n; ++i) states[i].rank = i - 1;
  return states;
}

// Exact expectation of the stabilization interaction count from the
// worst-case configuration (Theorem 2.4): (n-1) * n(n-1)/2.
inline double silent_nstate_worst_expected_interactions(std::uint32_t n) {
  const double c2 = static_cast<double>(n) * (n - 1) / 2.0;
  return static_cast<double>(n - 1) * c2;
}

}  // namespace ppsim
