// Count-form abstraction of Sublinear-Time-SSR (Table 1 rows 3-4).
//
// The real protocol (protocols/sublinear.h) is pinned to the O(n)-memory
// agent array: its per-agent state (3*log2 n name bits, a roster set, an
// interaction-history tree) is quasi-exponential, which defeats the
// EnumerableProtocol coding every fast engine depends on. This file defines
// a canonical truncated quotient of that state with a state space polynomial
// in n, so the dynamics run on BatchSimulation (geometric/multinomial/auto),
// ShardedSimulation, and the tau tier.
//
// The abstraction, field by field:
//
//   name    -> lexicographic-rank CLASS. The dynamics never compare two
//              specific names; they only ask "is this name one of the
//              colliding duplicates, a completed unique name, or a partial
//              name of length l still being regenerated?". Classes:
//              partial(l) for l in [0, name_len), unique-full, dup_0, dup_1.
//              Bit-by-bit regeneration becomes partial(l) -> partial(l+1);
//              completion lands on unique-full (the O(1/n) birthday chance
//              that a regenerated name re-collides is dropped -- see "lossy
//              regimes" below).
//   tree    -> depth-<= d truncation with canonical shape codes (the
//              projection computed by truncated_shape_code /
//              root_edge_age in collision_tree.h). At trunc.depth = 1 the
//              live truncation of a non-duplicate agent's tree that matters
//              for detection is exactly its root edge toward the duplicate
//              name x: a WITNESS (j, age) recording which duplicate last
//              grafted the x-edge and how many owner operations ago. The
//              witness automaton is exact for direction-1 of
//              Detect-Name-Collision (holder of a live witness about dup_j
//              meets dup_{1-j} => syncs cannot match => collision);
//              direction-2 (the duplicate's own tree vouching) would need
//              per-pair sync memory and is dropped, which can only delay
//              detection, never fabricate it. trunc.depth = 0 keeps only
//              the direct equal-names check. Depths >= 2 are rejected.
//   roster  -> cardinality class: exact buckets {1..8}, geometric x2 above,
//              and the cap n as its own bucket (rank assignment fires there).
//              Merges take the deterministic mean-field union of bucket
//              representatives u = min(n, ra + rb - floor(ra*rb/n)). Ghost
//              names (|union| > n) are not expressible, so the ghost trigger
//              is unreachable by construction.
//   reset   -> exact. (role, resetcount <= Rmax, delaytimer <= Dmax) carry
//              over unchanged and the transition reuses propagate_reset_step
//              verbatim through ResetView, with the same dead-field
//              normalization as ResetProcess (a propagating agent's
//              delaytimer is rewritten before it is ever read). Resetting
//              agents keep their name class: recruitment and the rc 1 -> 0
//              transition preserve names in the real protocol, so dormant
//              agents can awaken carrying full (even duplicate) names.
//   coin    -> the Section 6 synthetic coin multiplexes a phase bit over
//              every interaction; it is rejected here (construction throws)
//              rather than silently mismodeled.
//
// Exact vs lossy regimes. The reset machinery (trigger -> wave -> dormancy
// -> drain) is a lossless quotient: every transition of (role, rc, dt, name
// length) matches the real protocol exactly, which the cross-form CI-overlap
// tests assert at n in {8, 64, 512}. Detection latency and roster growth are
// lossy (direction-2 dropped, mean-field rosters, birthday re-collisions
// dropped), so every record produced through the registry entries is stamped
// `abstracted: true` and tests/sublinear_count_test.cpp quantifies the
// detection divergence instead of claiming equivalence.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "common/intlog.h"
#include "core/rng.h"
#include "protocols/sublinear.h"
#include "reset/propagate_reset.h"

namespace ppsim {

class SublinearCountSSR {
 public:
  struct State {
    SlRole role = SlRole::Collecting;
    // Name class index: [0, name_len) partial of that length; name_len
    // unique-full; name_len + 1 + j the duplicate classes (j in {0, 1}).
    std::uint32_t nc = 0;
    // Witness about duplicate wit_j, wit_age in [1, th) own-operations old;
    // wit_age == 0 means no (live) witness. Collecting non-duplicates only.
    std::uint32_t wit_j = 0;
    std::uint32_t wit_age = 0;
    std::uint32_t bucket = 0;  // roster cardinality bucket index
    // Resetting fields (exact; dead while Collecting).
    std::uint32_t resetcount = 0;
    std::uint32_t delaytimer = 0;
  };

  // Engine-owned per-interaction event counters (ObservableProtocol).
  // ghost_triggers is omitted: the bucketed roster cannot exceed n, so the
  // ghost rule is unreachable in count form.
  struct Counters {
    std::uint64_t collision_triggers = 0;
    std::uint64_t resets_executed = 0;
    std::uint64_t rank_updates = 0;
    std::uint64_t coin_bits = 0;

    // ScalableCounters: bulk accounting for the multinomial batch kernel.
    void add_scaled(const Counters& d, std::uint64_t k) {
      collision_triggers += d.collision_triggers * k;
      resets_executed += d.resets_executed * k;
      rank_updates += d.rank_updates * k;
      coin_bits += d.coin_bits * k;
    }
  };

  // interact() never reads the Rng: transitions are cacheable per ordered
  // state-code pair (multinomial batch strategy).
  static constexpr bool kDeterministicInteract = true;

  // Unkeyed passive structure: see is_passive below.
  static constexpr bool kPassivePairsAreNull = true;

  SublinearCountSSR(SublinearParams params, std::uint32_t trunc_depth)
      : params_(params), depth_(trunc_depth) {
    if (params.n < 2) throw std::invalid_argument("population size >= 2");
    if (params.use_synthetic_coin)
      throw std::invalid_argument(
          "the synthetic coin is not expressible in the count abstraction");
    if (trunc_depth > 1)
      throw std::invalid_argument(
          "trunc.depth >= 2 would need per-pair sync memory; supported "
          "depths are 0 (direct check only) and 1 (witness automaton)");
    if (params.th < 1 || params.rmax < 1 || params.dmax < 1)
      throw std::invalid_argument("constants must be positive");
    build_buckets();
    // Code-layout radices (see encode below).
    wit_count_ = depth_ >= 1 && params_.th >= 2 ? 1 + 2 * (params_.th - 1) : 1;
    const std::uint64_t rb = buckets_.size();
    const std::uint64_t nn = params_.name_len + 3;  // partials + full + dups
    dup_base_ = (params_.name_len + 1ull) * wit_count_ * rb;
    collecting_size_ = dup_base_ + 2 * rb;
    resetting_size_ = (params_.rmax + params_.dmax + 1ull) * nn;
    const std::uint64_t total = collecting_size_ + resetting_size_;
    if (total > std::numeric_limits<std::uint32_t>::max())
      throw std::invalid_argument("count-form state space exceeds 2^32");
  }

  std::uint32_t population_size() const { return params_.n; }
  const SublinearParams& params() const { return params_; }
  std::uint32_t trunc_depth() const { return depth_; }

  // --- Name classes. ---
  std::uint32_t partial_class(std::uint32_t len) const {
    if (len >= params_.name_len)
      throw std::invalid_argument("partial length past name_len");
    return len;
  }
  std::uint32_t full_class() const { return params_.name_len; }
  std::uint32_t dup_class(std::uint32_t j) const {
    if (j > 1) throw std::invalid_argument("duplicate index must be 0 or 1");
    return params_.name_len + 1 + j;
  }
  bool is_dup_class(std::uint32_t nc) const { return nc > params_.name_len; }

  // --- Roster cardinality buckets. ---
  std::uint32_t num_buckets() const {
    return static_cast<std::uint32_t>(buckets_.size());
  }
  std::uint32_t top_bucket() const { return num_buckets() - 1; }
  std::uint64_t bucket_rep(std::uint32_t k) const { return buckets_.at(k); }
  std::uint32_t bucket_of(std::uint64_t size) const {
    if (size < 1 || size > params_.n)
      throw std::invalid_argument("roster size out of [1, n]");
    const auto it = std::lower_bound(buckets_.begin(), buckets_.end(), size);
    return static_cast<std::uint32_t>(it - buckets_.begin());
  }

  void interact(State& a, State& b, Rng&, Counters& c) const {
    if (a.role == SlRole::Collecting && b.role == SlRole::Collecting) {
      const bool a_dup = is_dup_class(a.nc);
      const bool b_dup = is_dup_class(b.nc);
      // Line 2 of Protocol 5: collision detection. Direct check first, then
      // direction-1 of the truncated witness automaton; the ghost rule is
      // unreachable (buckets are capped at n).
      bool collision = params_.direct_check && a_dup && b_dup;
      if (depth_ >= 1 && !collision) {
        collision = (b_dup && !a_dup && a.wit_age > 0 &&
                     a.wit_j != b.nc - params_.name_len - 1) ||
                    (a_dup && !b_dup && b.wit_age > 0 &&
                     b.wit_j != a.nc - params_.name_len - 1);
      }
      if (collision) {
        ++c.collision_triggers;
        trigger_reset(a);  // line 3
        trigger_reset(b);
        return;
      }
      // Tree exchange + tick, projected to depth <= 1: meeting a duplicate
      // (re)grafts the x-edge with a fresh timer (witness age 1 after this
      // interaction's tick); otherwise an existing witness just ages, dying
      // when its timer would have hit 0 (age reaches th).
      if (depth_ >= 1) {
        auto update_witness = [&](State& self, const State& other,
                                  bool self_dup, bool other_dup) {
          if (self_dup) return;  // duplicates hold no witness about x
          if (other_dup) {
            if (params_.th >= 2) {
              self.wit_j = other.nc - params_.name_len - 1;
              self.wit_age = 1;
            }
            return;
          }
          if (self.wit_age > 0 && ++self.wit_age >= params_.th)
            self.wit_age = 0;
        };
        update_witness(a, b, a_dup, b_dup);
        update_witness(b, a, b_dup, a_dup);
      }
      // Line 5: roster union, as the mean-field union of bucket
      // representatives. The expected intersection ra*rb/n is FLOORED, not
      // rounded: floor(r*r/n) < r for every r < n, so a same-bucket merge
      // always advances and the roll call cannot stall (rounding deadlocks
      // at r = 1, n = 2), at the price of a bias of at most one name
      // toward faster collection. Line 6-8: rank assignment fires on newly
      // reaching the full roster (the real protocol re-assigns on every
      // full-roster meeting, but those are exactly the pairs the passive
      // skip elides, so the count tallies first-fills only).
      const std::uint64_t ra = bucket_rep(a.bucket);
      const std::uint64_t rb = bucket_rep(b.bucket);
      const std::uint64_t cap = params_.n;
      std::uint64_t u = ra + rb - ra * rb / cap;
      u = std::min(u, cap);
      if (u == cap && (ra < cap || rb < cap)) c.rank_updates += 2;
      a.bucket = b.bucket = bucket_of(u);
    } else {
      // Line 10: some agent is Resetting — the exact regime.
      ResetView<SublinearCountSSR, Counters> host{*this, c};
      propagate_reset_step(host, a, b);
      // Lines 11-12: clear names while the reset wave is propagating.
      for (State* i : {&a, &b})
        if (i->role == SlRole::Resetting && i->resetcount > 0) i->nc = 0;
      // Lines 13-14: dormant agents regenerate their name bit by bit;
      // partial(l) -> partial(l+1), landing on unique-full at l = name_len.
      for (State* i : {&a, &b}) {
        if (i->role != SlRole::Resetting || i->resetcount != 0 ||
            i->nc >= params_.name_len)
          continue;
        ++i->nc;
        ++c.coin_bits;
      }
    }
  }

  // Ranks are not recoverable from cardinality classes; the count entries
  // expose detected/drained/ptime stop conditions, never ranked.
  std::uint32_t rank_of(const State&) const { return 0; }

  // --- EnumerableProtocol: canonical coding. Layout (Collecting block
  // first, Resetting block contiguous at the end so the drained predicate
  // scans one span):
  //   [0, dup_base_)                non-dup Collecting: ((nc*W)+w)*RB + r
  //   [dup_base_, collecting_size_) dup Collecting:     dup_base_ + j*RB + r
  //   [collecting_size_, ...)       Resetting:          phase*NN + nc
  // where w = 0 means no witness, w = 1 + j*(th-1) + (age-1) otherwise;
  // phase < rmax is propagating with rc = phase+1 (delaytimer dead,
  // normalized), phase >= rmax is dormant with dt = phase - rmax. ---
  std::uint32_t num_states() const {
    return static_cast<std::uint32_t>(collecting_size_ + resetting_size_);
  }

  std::uint32_t encode(const State& s) const {
    const std::uint64_t rb = buckets_.size();
    if (s.role == SlRole::Collecting) {
      if (s.bucket >= rb) throw std::invalid_argument("bucket out of range");
      if (is_dup_class(s.nc)) {
        const std::uint32_t j = s.nc - params_.name_len - 1;
        if (j > 1) throw std::invalid_argument("invalid name class");
        return static_cast<std::uint32_t>(dup_base_ + j * rb + s.bucket);
      }
      std::uint64_t w = 0;
      if (s.wit_age > 0) {
        if (depth_ < 1 || s.wit_age >= params_.th || s.wit_j > 1)
          throw std::invalid_argument("invalid witness");
        w = 1 + static_cast<std::uint64_t>(s.wit_j) * (params_.th - 1) +
            (s.wit_age - 1);
      }
      return static_cast<std::uint32_t>(
          (static_cast<std::uint64_t>(s.nc) * wit_count_ + w) * rb + s.bucket);
    }
    const std::uint64_t nn = params_.name_len + 3;
    if (s.nc >= nn) throw std::invalid_argument("invalid name class");
    std::uint64_t phase;
    if (s.resetcount > 0) {
      if (s.resetcount > params_.rmax)
        throw std::invalid_argument("invalid propagating Resetting state");
      phase = s.resetcount - 1;
    } else {
      if (s.delaytimer > params_.dmax)
        throw std::invalid_argument("invalid dormant Resetting state");
      phase = params_.rmax + s.delaytimer;
    }
    return static_cast<std::uint32_t>(collecting_size_ + phase * nn + s.nc);
  }

  State decode(std::uint32_t code) const {
    State s;
    const std::uint64_t rb = buckets_.size();
    std::uint64_t c = code;
    if (c < dup_base_) {
      s.role = SlRole::Collecting;
      s.bucket = static_cast<std::uint32_t>(c % rb);
      c /= rb;
      const std::uint64_t w = c % wit_count_;
      s.nc = static_cast<std::uint32_t>(c / wit_count_);
      if (w > 0) {
        s.wit_j = static_cast<std::uint32_t>((w - 1) / (params_.th - 1));
        s.wit_age = static_cast<std::uint32_t>((w - 1) % (params_.th - 1)) + 1;
      }
      return s;
    }
    if (c < collecting_size_) {
      s.role = SlRole::Collecting;
      c -= dup_base_;
      s.nc = params_.name_len + 1 + static_cast<std::uint32_t>(c / rb);
      s.bucket = static_cast<std::uint32_t>(c % rb);
      return s;
    }
    c -= collecting_size_;
    if (c >= resetting_size_)
      throw std::invalid_argument("state code out of range");
    const std::uint64_t nn = params_.name_len + 3;
    s.role = SlRole::Resetting;
    s.nc = static_cast<std::uint32_t>(c % nn);
    const std::uint64_t phase = c / nn;
    if (phase < params_.rmax) {
      s.resetcount = static_cast<std::uint32_t>(phase) + 1;
    } else {
      s.resetcount = 0;
      s.delaytimer = static_cast<std::uint32_t>(phase - params_.rmax);
    }
    return s;
  }

  // First code of the contiguous Resetting block and its length — the span
  // the drained stop-condition scans.
  std::uint32_t first_resetting_code() const {
    return static_cast<std::uint32_t>(collecting_size_);
  }
  std::uint32_t resetting_code_count() const {
    return static_cast<std::uint32_t>(resetting_size_);
  }

  // --- UnkeyedPassiveProtocol. Passive = Collecting, uniquely and fully
  // named, witness-free, roster at cap: two such agents change nothing (the
  // mean union of cap with cap is cap, no witness is created or aged, no
  // collision can fire). Any pair with a Resetting agent is non-null, and a
  // non-passive Collecting partner strictly grows its roster bucket or ages
  // a witness, so the certificate is tight for non-duplicate pairs. ---
  bool is_passive(const State& s) const {
    return s.role == SlRole::Collecting && s.nc == params_.name_len &&
           s.wit_age == 0 && s.bucket == top_bucket();
  }
  bool is_null_pair(const State& a, const State& b) const {
    return is_passive(a) && is_passive(b);
  }

  // Marks an agent as having just detected an error (used by adversarial
  // generators; colliders keep their duplicate name class until the
  // propagating wave clears it, exactly like the real protocol).
  void trigger_reset(State& s) const {
    s.role = SlRole::Resetting;
    s.resetcount = params_.rmax;
    s.delaytimer = 0;
  }

  // --- ResetHost hooks for propagate_reset_step (Protocol 2). ---
  bool is_resetting(const State& s) const {
    return s.role == SlRole::Resetting;
  }
  std::uint32_t& reset_count(State& s) const { return s.resetcount; }
  std::uint32_t& delay_timer(State& s) const { return s.delaytimer; }
  void recruit(State& s) const {
    s.role = SlRole::Resetting;
    s.resetcount = 0;
    s.delaytimer = params_.dmax;
  }
  // Protocol 6 Reset(a): back to Collecting with a singleton roster and a
  // bare tree (no witnesses). The name class survives, as in the real
  // protocol.
  void reset_agent(State& s, Counters& c) const {
    ++c.resets_executed;
    s.role = SlRole::Collecting;
    s.bucket = 0;  // bucket_of(1)
    s.wit_j = 0;
    s.wit_age = 0;
  }
  std::uint32_t dmax() const { return params_.dmax; }

 private:
  // Exact buckets {1..8}, geometric x2 above, a bucket ending at n-1, and
  // {n} alone on top (rank assignment is observable only there).
  void build_buckets() {
    const std::uint64_t cap = params_.n;
    for (std::uint64_t u = 1; u <= cap && u <= 8; ++u) buckets_.push_back(u);
    if (cap > 8) {
      for (std::uint64_t u = 16; u < cap - 1; u *= 2) buckets_.push_back(u);
      if (buckets_.back() < cap - 1) buckets_.push_back(cap - 1);
      buckets_.push_back(cap);
    }
  }

  SublinearParams params_;
  std::uint32_t depth_;
  std::vector<std::uint64_t> buckets_;  // bucket upper bounds = representatives
  std::uint64_t wit_count_ = 1;
  std::uint64_t dup_base_ = 0;
  std::uint64_t collecting_size_ = 0;
  std::uint64_t resetting_size_ = 0;
};

}  // namespace ppsim
