// Optimal-Silent-SSR (Protocols 3 and 4, Section 4).
//
// A silent self-stabilizing ranking protocol with O(n) states and O(n)
// expected parallel time — both optimal for silent protocols (Observation
// 2.6). Structure:
//
//   * Errors trigger Propagate-Reset (Protocol 2): either two Settled agents
//     collide on a rank, or an Unsettled agent waits Emax = Theta(n)
//     interactions without receiving one.
//   * The reset's dormant phase is stretched to Dmax = Theta(n), during which
//     all Resetting agents run the slow leader election L,L -> L,F (every
//     agent enters the Resetting role as L), so the population awakens with a
//     unique leader with constant probability (Lemma 4.2).
//   * Upon Reset, the leader becomes Settled with rank 1 and everyone else
//     Unsettled; Settled agents then recruit Unsettled agents into a full
//     binary tree of ranks (children of rank i are 2i and 2i+1), which
//     completes in O(n) time (Lemma 4.1, Figure 1).
//
// interact() is a pure (const) transition function; per-interaction events
// are reported into an engine-owned Counters instance (ObservableProtocol).
//
// The protocol is enumerable: the state space is coded canonically into
// 3n + (Emax+1) + 2 Rmax + 2 (Dmax+1) = 35n + O(log n) codes (with the
// standard constants), and it exposes the keyed-passive structure
// (passive = Settled, key = rank) that lets BatchSimulation geometric-skip
// the null stretches of mostly-Settled configurations — the regime that
// dominates both the stable phase and the Observation 2.6 detection-latency
// experiments.
//
// Erratum note: Protocol 3 line 9 reads "2*i.rank + i.children < n", which
// with 1-based ranks would never assign rank n (contradicting Figure 1, where
// rank 12 is assigned for n = 12). We use <= n; see DESIGN.md.
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/rng.h"
#include "reset/propagate_reset.h"

namespace ppsim {

enum class OsRole : std::uint8_t { Settled, Unsettled, Resetting };

struct OptimalSilentParams {
  std::uint32_t n = 0;
  std::uint32_t emax = 0;  // Unsettled patience, Theta(n)
  std::uint32_t dmax = 0;  // dormant delay, Theta(n)
  std::uint32_t rmax = 0;  // reset wave height, Theta(log n)

  // Defaults validated by tests and stressed by bench/bench_ablations. The
  // paper's proof constants (Rmax = 60 ln n and unspecified Theta(n)'s) are
  // deliberately generous; these are the smallest round values at which the
  // per-epoch success probability stays high at simulable sizes.
  static OptimalSilentParams standard(std::uint32_t n) {
    if (n < 2) throw std::invalid_argument("population size must be >= 2");
    OptimalSilentParams p;
    p.n = n;
    p.emax = 16 * n;
    p.dmax = 8 * n;
    p.rmax = static_cast<std::uint32_t>(
        std::ceil(8.0 * std::log(static_cast<double>(n)))) + 4;
    return p;
  }
};

class OptimalSilentSSR {
 public:
  struct State {
    OsRole role = OsRole::Unsettled;
    // Settled fields.
    std::uint32_t rank = 0;      // {1..n}
    std::uint8_t children = 0;   // {0,1,2}
    // Unsettled fields.
    std::uint32_t errorcount = 0;  // {0..Emax}
    // Resetting fields.
    bool leader = false;           // L = true, F = false
    std::uint32_t resetcount = 0;  // {0..Rmax}
    std::uint32_t delaytimer = 0;  // {0..Dmax}, meaningful when resetcount=0
  };

  // Engine-owned per-interaction event counters (ObservableProtocol).
  struct Counters {
    std::uint64_t collision_triggers = 0;  // line 5: two Settled, same rank
    std::uint64_t timeout_triggers = 0;    // line 16: errorcount hit 0
    std::uint64_t resets_executed = 0;     // Protocol 4 invocations
    std::uint64_t recruits = 0;            // binary-tree rank assignments

    // ScalableCounters: lets the multinomial batch kernel account k cached
    // repetitions of one deterministic transition in O(1).
    void add_scaled(const Counters& d, std::uint64_t k) {
      collision_triggers += d.collision_triggers * k;
      timeout_triggers += d.timeout_triggers * k;
      resets_executed += d.resets_executed * k;
      recruits += d.recruits * k;
    }
  };

  // interact() never reads the Rng (Protocol 3 is a deterministic
  // transition table), so the batched engine may cache transitions per
  // ordered state-code pair.
  static constexpr bool kDeterministicInteract = true;

  explicit OptimalSilentSSR(OptimalSilentParams params) : params_(params) {
    if (params.n < 2) throw std::invalid_argument("population size >= 2");
    if (params.emax == 0 || params.dmax == 0 || params.rmax == 0)
      throw std::invalid_argument("constants must be positive");
  }

  std::uint32_t population_size() const { return params_.n; }
  const OptimalSilentParams& params() const { return params_; }

  // Protocol 3, for initiator a and responder b.
  void interact(State& a, State& b, Rng&, Counters& c) const {
    // Lines 1-4: resetting machinery plus the slow leader election.
    if (a.role == OsRole::Resetting || b.role == OsRole::Resetting) {
      ResetView<OptimalSilentSSR, Counters> host{*this, c};
      propagate_reset_step(host, a, b);
      if (a.role == OsRole::Resetting && b.role == OsRole::Resetting &&
          a.leader && b.leader) {
        b.leader = false;  // L,L -> L,F
      }
    }
    // Lines 5-7: rank-collision detection between Settled agents.
    if (a.role == OsRole::Settled && b.role == OsRole::Settled &&
        a.rank == b.rank) {
      ++c.collision_triggers;
      trigger_reset(a);
      trigger_reset(b);
    }
    // Lines 8-12: binary-tree rank assignment.
    assign_rank(a, b, c);
    assign_rank(b, a, c);
    // Lines 13-18: Unsettled patience countdown.
    for (State* i : {&a, &b}) {
      if (i->role != OsRole::Unsettled) continue;
      if (i->errorcount > 0) --i->errorcount;
      if (i->errorcount == 0) {
        // Lines 16-18 re-trigger both agents unconditionally (even one
        // already Resetting): a fresh error restarts the wave.
        ++c.timeout_triggers;
        trigger_reset(a);
        trigger_reset(b);
      }
    }
  }

  std::uint32_t rank_of(const State& s) const {
    return s.role == OsRole::Settled ? s.rank : 0;
  }

  // ChurnableProtocol: a freshly booted agent is Unsettled with full
  // patience — the same state Reset gives every non-leader (Protocol 4),
  // so a crashed agent rejoins exactly like a freshly reset one.
  State churn_state() const {
    State s;
    s.role = OsRole::Unsettled;
    s.errorcount = params_.emax;
    return s;
  }

  // The stable configuration (all Settled, distinct ranks) is silent: every
  // pair of distinct-rank Settled states has only the null transition.
  bool is_null_pair(const State& a, const State& b) const {
    return a.role == OsRole::Settled && b.role == OsRole::Settled &&
           a.rank != b.rank;
  }

  // --- EnumerableProtocol: canonical state coding ---------------------------
  //
  // Codes normalize away every field the state's role provably never reads
  // before rewriting it: Settled keeps (rank, children); Unsettled keeps
  // errorcount; Resetting keeps (leader, resetcount) plus delaytimer only
  // when dormant (resetcount = 0) — while the wave is propagating
  // (resetcount > 0) the timer is dead state, always reinitialized to Dmax
  // on the transition to dormancy (Protocol 2 line 7). The projected
  // dynamics are therefore exactly the agent-array dynamics (cross-validated
  // in tests/engine_equivalence_test.cpp).

  std::uint32_t num_states() const {
    return settled_codes() + unsettled_codes() + 2 * params_.rmax +
           2 * (params_.dmax + 1);
  }

  std::uint32_t encode(const State& s) const {
    switch (s.role) {
      case OsRole::Settled:
        if (s.rank < 1 || s.rank > params_.n || s.children > 2)
          throw std::invalid_argument("invalid Settled state");
        return (s.rank - 1) * 3 + s.children;
      case OsRole::Unsettled:
        if (s.errorcount > params_.emax)
          throw std::invalid_argument("invalid Unsettled state");
        return settled_codes() + s.errorcount;
      case OsRole::Resetting: {
        if (s.resetcount > params_.rmax)
          throw std::invalid_argument("invalid Resetting state");
        const std::uint32_t base = settled_codes() + unsettled_codes();
        if (s.resetcount > 0)  // propagating: delaytimer is dead state
          return base + 2 * (s.resetcount - 1) + (s.leader ? 1u : 0u);
        if (s.delaytimer > params_.dmax)
          throw std::invalid_argument("invalid dormant Resetting state");
        return base + 2 * params_.rmax + 2 * s.delaytimer +
               (s.leader ? 1u : 0u);
      }
    }
    throw std::invalid_argument("invalid role");
  }

  State decode(std::uint32_t code) const {
    State s;
    if (code < settled_codes()) {
      s.role = OsRole::Settled;
      s.rank = code / 3 + 1;
      s.children = static_cast<std::uint8_t>(code % 3);
      return s;
    }
    code -= settled_codes();
    if (code < unsettled_codes()) {
      s.role = OsRole::Unsettled;
      s.errorcount = code;
      return s;
    }
    code -= unsettled_codes();
    s.role = OsRole::Resetting;
    if (code < 2 * params_.rmax) {
      s.resetcount = code / 2 + 1;
      s.leader = (code % 2) != 0;
      s.delaytimer = 0;
    } else {
      code -= 2 * params_.rmax;
      if (code >= 2 * (params_.dmax + 1))
        throw std::invalid_argument("state code out of range");
      s.resetcount = 0;
      s.delaytimer = code / 2;
      s.leader = (code % 2) != 0;
    }
    return s;
  }

  // --- KeyedPassiveProtocol: null iff both Settled with distinct ranks. ----
  bool is_passive(const State& s) const { return s.role == OsRole::Settled; }
  std::uint32_t passive_key(const State& s) const { return s.rank - 1; }
  std::uint32_t num_passive_keys() const { return params_.n; }
  std::vector<std::uint32_t> passive_fiber(std::uint32_t key) const {
    // The three Settled states with rank key+1 (children 0, 1, 2).
    return {3 * key, 3 * key + 1, 3 * key + 2};
  }

  // --- ResetHost hooks for propagate_reset_step (Protocol 2). ---
  bool is_resetting(const State& s) const {
    return s.role == OsRole::Resetting;
  }
  std::uint32_t& reset_count(State& s) const { return s.resetcount; }
  std::uint32_t& delay_timer(State& s) const { return s.delaytimer; }
  // "All agents set themselves to L upon entering the Resetting role"
  // (Section 4), so the dormant phase runs leader election over everyone.
  void recruit(State& s) const {
    s.role = OsRole::Resetting;
    s.resetcount = 0;
    s.delaytimer = params_.dmax;
    s.leader = true;
  }
  // Protocol 4: Reset(a).
  void reset_agent(State& s, Counters& c) const {
    ++c.resets_executed;
    if (s.leader) {
      s.role = OsRole::Settled;
      s.rank = 1;
      s.children = 0;
    } else {
      s.role = OsRole::Unsettled;
      s.errorcount = params_.emax;
    }
  }
  std::uint32_t dmax() const { return params_.dmax; }

 private:
  std::uint32_t settled_codes() const { return 3 * params_.n; }
  std::uint32_t unsettled_codes() const { return params_.emax + 1; }

  // Lines 8-12 for the ordered role pair (settled recruiter i, candidate j).
  void assign_rank(State& i, State& j, Counters& c) const {
    if (i.role == OsRole::Settled && j.role == OsRole::Unsettled &&
        i.children < 2 &&
        2ull * i.rank + i.children <= params_.n) {  // erratum: <= (see above)
      j.role = OsRole::Settled;
      j.children = 0;
      j.rank = 2 * i.rank + i.children;
      ++i.children;
      ++c.recruits;
    }
  }

  void trigger_reset(State& s) const {
    s.role = OsRole::Resetting;
    s.resetcount = params_.rmax;
    s.delaytimer = 0;
    s.leader = true;
  }

  OptimalSilentParams params_;
};

}  // namespace ppsim
