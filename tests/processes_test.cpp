// Tests for the probabilistic-tool processes of Section 2.1: epidemic, roll
// call, bounded epidemic, recursive trees, fratricide, coupon collector, and
// the synthetic coin of Section 6. The statistical assertions use generous
// tolerances around the paper's exact expectations so they are robust across
// seeds while still catching implementation regressions.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/experiments.h"
#include "core/stats.h"
#include "processes/bounded_epidemic.h"
#include "processes/coupon.h"
#include "processes/epidemic.h"
#include "processes/fratricide.h"
#include "processes/recursive_tree.h"
#include "processes/roll_call.h"
#include "processes/synthetic_coin.h"

namespace ppsim {
namespace {

TEST(Epidemic, CompletesAndCountsInteractions) {
  const EpidemicResult r = run_epidemic(32, 1);
  EXPECT_GT(r.interactions, 31u);  // at least n-1 infections needed
  EXPECT_DOUBLE_EQ(r.parallel_time, r.interactions / 32.0);
}

TEST(Epidemic, RejectsBadInitialCount) {
  EXPECT_THROW(run_epidemic(8, 1, 0), std::invalid_argument);
  EXPECT_THROW(run_epidemic(8, 1, 9), std::invalid_argument);
}

TEST(Epidemic, FullyInfectedStartEndsImmediately) {
  const EpidemicResult r = run_epidemic(16, 3, 16);
  EXPECT_EQ(r.interactions, 0u);
}

// Lemma 2.7: E[T_n] = (n-1) H_{n-1}.
TEST(Epidemic, MeanMatchesLemma27) {
  constexpr std::uint32_t kN = 128;
  const auto xs = run_trials(400, 77, [&](std::uint64_t seed) {
    return static_cast<double>(run_epidemic(kN, seed).interactions);
  });
  const Summary s = summarize(xs);
  const double expected = epidemic_expected_interactions(kN);
  EXPECT_NEAR(s.mean, expected, 4 * s.ci95 + 0.02 * expected);
}

// Corollary 2.8: P[T_n > 3 n ln n] < 1/n^2 — at n=128 and 300 trials we
// should essentially never see an excession.
TEST(Epidemic, TailBoundCorollary28) {
  constexpr std::uint32_t kN = 128;
  const double bound = 3.0 * kN * std::log(kN);
  int exceed = 0;
  for (int t = 0; t < 300; ++t)
    if (run_epidemic(kN, derive_seed(123, t)).interactions > bound) ++exceed;
  EXPECT_EQ(exceed, 0);
}

TEST(RollCall, CompletesWithAllRostersFull) {
  const RollCallResult r = run_roll_call(16, 5);
  EXPECT_GT(r.interactions, 0u);
}

// Lemma 2.9: E[R_n] ~ 1.5 n ln n — i.e. ~1.5x the epidemic time.
TEST(RollCall, MeanIsAboutOnePointFiveTimesEpidemic) {
  constexpr std::uint32_t kN = 128;
  const auto xs = run_trials(150, 99, [&](std::uint64_t seed) {
    return static_cast<double>(run_roll_call(kN, seed).interactions);
  });
  const Summary s = summarize(xs);
  const double epidemic = epidemic_expected_interactions(kN);
  const double ratio = s.mean / epidemic;
  EXPECT_GT(ratio, 1.25);
  EXPECT_LT(ratio, 1.75);
}

// Roll call dominates the epidemic: R_n >= T_n stochastically. Compare means.
TEST(RollCall, DominatesEpidemicInMean) {
  constexpr std::uint32_t kN = 64;
  double roll = 0, epi = 0;
  for (int t = 0; t < 100; ++t) {
    roll += static_cast<double>(
        run_roll_call(kN, derive_seed(7, t)).interactions);
    epi += static_cast<double>(
        run_epidemic(kN, derive_seed(8, t)).interactions);
  }
  EXPECT_GT(roll, epi);
}

TEST(BoundedEpidemic, LevelTimesAreMonotone) {
  const auto r = run_bounded_epidemic(64, 6, 1, 3);
  // tau_k is non-increasing in k: hearing via longer paths is never slower.
  double prev = -1;
  for (std::uint32_t k = 6; k >= 1; --k) {
    ASSERT_GE(r.tau_by_level[k], 0.0) << "level " << k << " never reached";
    if (prev >= 0) {
      EXPECT_GE(r.tau_by_level[k], prev);
    }
    prev = r.tau_by_level[k];
  }
}

// Lemma 2.10: E[tau_k] <= k n^{1/k}. Checked for k = 1..3 at n = 64 with a
// 1.5x slack for the constant-factor looseness of the bound's derivation.
TEST(BoundedEpidemic, Lemma210UpperBound) {
  constexpr std::uint32_t kN = 64;
  constexpr int kTrials = 120;
  std::vector<double> sums(4, 0.0);
  for (int t = 0; t < kTrials; ++t) {
    const auto r = run_bounded_epidemic(kN, 3, 1, derive_seed(55, t));
    for (std::uint32_t k = 1; k <= 3; ++k) sums[k] += r.tau_by_level[k];
  }
  for (std::uint32_t k = 1; k <= 3; ++k) {
    const double mean = sums[k] / kTrials;
    const double bound = k * std::pow(static_cast<double>(kN), 1.0 / k);
    EXPECT_LT(mean, 1.5 * bound) << "k=" << k;
  }
}

// tau_1 is a direct meeting: expected (n-1)/2 parallel time.
TEST(BoundedEpidemic, Tau1IsDirectMeeting) {
  constexpr std::uint32_t kN = 32;
  const auto xs = run_trials(400, 11, [&](std::uint64_t seed) {
    return run_bounded_epidemic(kN, 1, 1, seed).tau_by_level[1];
  });
  const Summary s = summarize(xs);
  // Two specific agents meet with probability 2/(n(n-1)) per interaction:
  // expected n(n-1)/2 interactions = (n-1)/2 parallel time.
  EXPECT_NEAR(s.mean, (kN - 1) / 2.0, 4 * s.ci95 + 1.0);
}

// Lemma 2.11: with k = 3 log2 n, tau_k <= 3 ln n with high probability.
TEST(BoundedEpidemic, Lemma211LogLevels) {
  constexpr std::uint32_t kN = 256;
  const std::uint32_t k = 3 * 8;  // 3 log2(256)
  int exceed = 0;
  constexpr int kTrials = 80;
  for (int t = 0; t < kTrials; ++t) {
    const auto r = run_bounded_epidemic(kN, k, k, derive_seed(21, t));
    if (r.tau_by_level[k] > 3.0 * std::log(kN)) ++exceed;
  }
  EXPECT_LE(exceed, 2);  // whp bound: essentially never
}

TEST(RecursiveTree, EpidemicTreeHeightNearELogN) {
  constexpr std::uint32_t kN = 1024;
  const auto xs = run_trials(60, 31, [&](std::uint64_t seed) {
    return static_cast<double>(run_epidemic_tree(kN, seed).height);
  });
  const Summary s = summarize(xs);
  const double expected = std::exp(1.0) * std::log(kN);  // e ln n (Drmota)
  EXPECT_GT(s.mean, 0.6 * expected);
  EXPECT_LT(s.mean, 1.4 * expected);
}

TEST(RecursiveTree, DirectSamplerAgreesWithEpidemicTree) {
  constexpr std::uint32_t kN = 1024;
  double epi = 0, direct = 0;
  constexpr int kTrials = 60;
  for (int t = 0; t < kTrials; ++t) {
    epi += run_epidemic_tree(kN, derive_seed(1, t)).height;
    direct += sample_recursive_tree_height(kN, derive_seed(2, t));
  }
  EXPECT_NEAR(epi / kTrials, direct / kTrials, 0.15 * (epi / kTrials));
}

TEST(Fratricide, SingleLeaderIsImmediatelyDone) {
  const auto r = run_fratricide_direct(16, 3, 1);
  EXPECT_EQ(r.interactions, 0u);
}

// Lemma 4.2: expected interactions from all-L is n(n-1)(1 - 1/n).
TEST(Fratricide, MeanMatchesClosedForm) {
  constexpr std::uint32_t kN = 48;
  const auto xs = run_trials(300, 17, [&](std::uint64_t seed) {
    return static_cast<double>(
        run_fratricide_direct(kN, seed, kN).interactions);
  });
  const Summary s = summarize(xs);
  const double expected = fratricide_expected_interactions(kN);
  EXPECT_NEAR(s.mean, expected, 4 * s.ci95 + 0.03 * expected);
}

// The accelerated simulator is exact in distribution: means must agree.
TEST(Fratricide, FastSimulatorMatchesDirect) {
  constexpr std::uint32_t kN = 48;
  const auto direct = run_trials(300, 19, [&](std::uint64_t seed) {
    return static_cast<double>(
        run_fratricide_direct(kN, seed, kN).interactions);
  });
  const auto fast = run_trials(300, 23, [&](std::uint64_t seed) {
    return static_cast<double>(
        run_fratricide_fast(kN, seed, kN).interactions);
  });
  const Summary sd = summarize(direct);
  const Summary sf = summarize(fast);
  EXPECT_NEAR(sd.mean, sf.mean, 3 * (sd.ci95 + sf.ci95));
}

TEST(Geometric, MeanIsOneOverP) {
  Rng rng(3);
  for (double p : {0.5, 0.1, 0.01}) {
    double sum = 0;
    constexpr int kTrials = 20000;
    for (int t = 0; t < kTrials; ++t)
      sum += static_cast<double>(sample_geometric(rng, p));
    EXPECT_NEAR(sum / kTrials, 1.0 / p, 0.06 / p);
  }
}

TEST(Geometric, AlwaysAtLeastOne) {
  Rng rng(5);
  for (int t = 0; t < 1000; ++t)
    EXPECT_GE(sample_geometric(rng, 0.9), 1u);
}

TEST(Coupon, EveryAgentSeenAtCompletion) {
  const auto r = run_pair_coupon_collector(64, 9);
  EXPECT_GT(r.interactions, 31u);  // needs at least n/2 interactions
}

// Pairwise coupon collection takes ~ (1/2) n ln n interactions.
TEST(Coupon, MeanNearHalfNLogN) {
  constexpr std::uint32_t kN = 256;
  const auto xs = run_trials(200, 41, [&](std::uint64_t seed) {
    return static_cast<double>(
        run_pair_coupon_collector(kN, seed).interactions);
  });
  const Summary s = summarize(xs);
  const double expected = 0.5 * kN * std::log(kN);
  EXPECT_GT(s.mean, 0.75 * expected);
  EXPECT_LT(s.mean, 1.35 * expected);
}

TEST(SyntheticCoin, HarvestsOnlyOnAlgFlipMeetings) {
  CoinPhase alg{false}, flip{true};
  const CoinOutcome o1 = synthetic_coin_step(alg, flip);
  ASSERT_TRUE(o1.initiator_bit.has_value());
  EXPECT_TRUE(*o1.initiator_bit);  // Alg initiated: heads
  EXPECT_FALSE(o1.responder_bit.has_value());
  // Phases toggled.
  EXPECT_TRUE(alg.flip_phase);
  EXPECT_FALSE(flip.flip_phase);

  CoinPhase both_alg_a{false}, both_alg_b{false};
  const CoinOutcome o2 = synthetic_coin_step(both_alg_a, both_alg_b);
  EXPECT_FALSE(o2.initiator_bit.has_value());
  EXPECT_FALSE(o2.responder_bit.has_value());
}

// The harvested bits are unbiased under the uniform scheduler.
TEST(SyntheticCoin, BitsAreUnbiased) {
  constexpr std::uint32_t kN = 10;
  Rng rng(71);
  UniformScheduler sched(kN);
  std::vector<CoinPhase> phases(kN);
  for (std::uint32_t i = 0; i < kN; ++i) phases[i].flip_phase = i % 2 == 0;
  std::uint64_t heads = 0, bits = 0;
  for (int t = 0; t < 400000; ++t) {
    const AgentPair p = sched.next(rng);
    const CoinOutcome o =
        synthetic_coin_step(phases[p.initiator], phases[p.responder]);
    if (o.initiator_bit) {
      ++bits;
      if (*o.initiator_bit) ++heads;
    }
    if (o.responder_bit) {
      ++bits;
      if (*o.responder_bit) ++heads;
    }
  }
  ASSERT_GT(bits, 10000u);
  EXPECT_NEAR(static_cast<double>(heads) / bits, 0.5, 0.01);
}

// Section 6: an agent needing a bit waits an expected ~4 interactions.
TEST(SyntheticCoin, ExpectedWaitPerBitIsAboutFour) {
  constexpr std::uint32_t kN = 16;
  Rng rng(73);
  UniformScheduler sched(kN);
  std::vector<CoinPhase> phases(kN);
  std::uint64_t bits = 0, agent_interactions = 0;
  for (int t = 0; t < 500000; ++t) {
    const AgentPair p = sched.next(rng);
    agent_interactions += 2;
    const CoinOutcome o =
        synthetic_coin_step(phases[p.initiator], phases[p.responder]);
    bits += (o.initiator_bit ? 1 : 0) + (o.responder_bit ? 1 : 0);
  }
  const double per_bit = static_cast<double>(agent_interactions) / bits;
  EXPECT_NEAR(per_bit, 4.0, 0.2);
}

}  // namespace
}  // namespace ppsim
