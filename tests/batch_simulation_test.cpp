// Tests for the count-based batched simulation backend
// (core/batch_simulation.h): the WeightedSampler substrate, exactness of
// the state-pair scheduler projection, and distributional equivalence with
// the agent-array backend and with the hand-rolled SilentNStateFast
// accelerator on convergence-time summaries.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "analysis/convergence.h"
#include "core/batch_simulation.h"
#include "core/rng.h"
#include "core/simulation.h"
#include "core/stats.h"
#include "protocols/leader.h"
#include "protocols/silent_nstate.h"
#include "protocols/silent_nstate_fast.h"

namespace ppsim {
namespace {

// --- WeightedSampler -------------------------------------------------------

TEST(WeightedSampler, TotalTracksUpdates) {
  WeightedSampler w(8);
  EXPECT_EQ(w.total(), 0u);
  w.add(0, 3);
  w.add(7, 5);
  EXPECT_EQ(w.total(), 8u);
  w.add(7, -5);
  EXPECT_EQ(w.total(), 3u);
}

TEST(WeightedSampler, FindMapsPrefixRangesToIndices) {
  WeightedSampler w(5);
  w.add(1, 2);  // prefix targets {0, 1}
  w.add(3, 3);  // prefix targets {2, 3, 4}
  EXPECT_EQ(w.find(0), 1u);
  EXPECT_EQ(w.find(1), 1u);
  EXPECT_EQ(w.find(2), 3u);
  EXPECT_EQ(w.find(4), 3u);
}

TEST(WeightedSampler, SamplesProportionallyToWeight) {
  WeightedSampler w(4);
  w.add(0, 1);
  w.add(2, 3);
  Rng rng(7);
  std::vector<std::uint64_t> hits(4, 0);
  const std::uint64_t draws = 40000;
  for (std::uint64_t i = 0; i < draws; ++i) ++hits[w.find(rng.below(4))];
  EXPECT_EQ(hits[1], 0u);
  EXPECT_EQ(hits[3], 0u);
  // hits[2]/draws ~ 3/4 with stddev ~ sqrt(draws * 3/16) / draws ~ 0.002.
  EXPECT_NEAR(static_cast<double>(hits[2]) / draws, 0.75, 0.02);
}

// --- Construction and invariants -------------------------------------------

TEST(BatchSimulation, CountsMatchInitialConfiguration) {
  const std::uint32_t n = 16;
  const auto cfg = silent_nstate_worst_config(n);
  BatchSimulation<SilentNStateSSR> sim(SilentNStateSSR(n), cfg, 1);
  std::vector<std::uint64_t> expected(n, 0);
  for (const auto& s : cfg) ++expected[s.rank];
  EXPECT_EQ(sim.counts(), expected);
}

TEST(BatchSimulation, RejectsBadCountVectors) {
  SilentNStateSSR proto(4);
  EXPECT_THROW(BatchSimulation<SilentNStateSSR>(
                   proto, std::vector<std::uint64_t>{1, 1, 1}, 1),
               std::invalid_argument);
  EXPECT_THROW(BatchSimulation<SilentNStateSSR>(
                   proto, std::vector<std::uint64_t>{4, 1, 0, 0}, 1),
               std::invalid_argument);
}

TEST(BatchSimulation, PopulationIsConservedAcrossSteps) {
  const std::uint32_t n = 32;
  BatchSimulation<SilentNStateSSR> sim(
      SilentNStateSSR(n), silent_nstate_worst_config(n), 99);
  for (int k = 0; k < 200; ++k) {
    if (sim.step() == 0) break;
    const auto& c = sim.counts();
    EXPECT_EQ(std::accumulate(c.begin(), c.end(), std::uint64_t{0}), n);
  }
}

TEST(BatchSimulation, DeterministicForEqualSeeds) {
  const std::uint32_t n = 24;
  BatchSimulation<SilentNStateSSR> a(SilentNStateSSR(n),
                                     silent_nstate_worst_config(n), 5);
  BatchSimulation<SilentNStateSSR> b(SilentNStateSSR(n),
                                     silent_nstate_worst_config(n), 5);
  a.run_until([](const auto& s) { return s.silent(); }, 1u << 30);
  b.run_until([](const auto& s) { return s.silent(); }, 1u << 30);
  EXPECT_EQ(a.interactions(), b.interactions());
  EXPECT_EQ(a.counts(), b.counts());
}

TEST(BatchSimulation, SilentConfigurationNeverChanges) {
  const std::uint32_t n = 8;
  std::vector<SilentNStateSSR::State> perm(n);
  for (std::uint32_t i = 0; i < n; ++i) perm[i].rank = i;
  BatchSimulation<SilentNStateSSR> sim(SilentNStateSSR(n), perm, 3);
  EXPECT_TRUE(sim.silent());
  EXPECT_EQ(sim.step(), 0u);
  EXPECT_EQ(sim.interactions(), 0u);
}

TEST(BatchSimulation, StabilizesToAPermutation) {
  const std::uint32_t n = 64;
  BatchSimulation<SilentNStateSSR> sim(
      SilentNStateSSR(n), silent_nstate_worst_config(n), 11);
  ASSERT_TRUE(
      sim.run_until([](const auto& s) { return s.silent(); }, 1ull << 40));
  EXPECT_TRUE(is_correctly_ranked(sim.protocol(), sim.counts()));
  EXPECT_TRUE(has_unique_leader(sim.protocol(), sim.counts()));
  EXPECT_EQ(count_leaders(sim.protocol(), sim.counts()), 1u);
}

// --- Count-based leader views ----------------------------------------------

TEST(LeaderCounts, CountBasedViewsMatchAgentArrayViews) {
  const std::uint32_t n = 12;
  SilentNStateSSR proto(n);
  const auto cfg = silent_nstate_worst_config(n);
  std::vector<std::uint64_t> counts(n, 0);
  for (const auto& s : cfg) ++counts[s.rank];
  EXPECT_EQ(count_leaders(proto, counts),
            static_cast<std::uint64_t>(count_leaders(proto, cfg)));
  EXPECT_EQ(is_correctly_ranked(proto, counts),
            is_correctly_ranked(proto, cfg));
  // Worst config has two rank-0 agents => two leaders, not ranked.
  EXPECT_EQ(count_leaders(proto, counts), 2u);
  EXPECT_FALSE(is_correctly_ranked(proto, counts));
  EXPECT_FALSE(has_unique_leader(proto, counts));
}

TEST(SilentNStateFastInterop, RunCountsMatchesRunOnSameSeed) {
  const std::uint32_t n = 48;
  const auto narrow = silent_nstate_worst_counts(n);
  const std::vector<std::uint64_t> wide(narrow.begin(), narrow.end());
  const auto a = SilentNStateFast(n).run(narrow, 77);
  const auto b = SilentNStateFast(n).run_counts(wide, 77);
  EXPECT_EQ(a.interactions, b.interactions);
  EXPECT_EQ(a.effective_events, b.effective_events);
}

TEST(SilentNStateFastInterop, CountsOfBridgesAgentConfigurations) {
  const std::uint32_t n = 10;
  const auto cfg = silent_nstate_worst_config(n);
  const auto counts = silent_nstate_counts_of(n, cfg);
  EXPECT_EQ(counts, silent_nstate_worst_counts(n));
  EXPECT_THROW(silent_nstate_counts_of(n + 1, cfg), std::invalid_argument);
}

// --- Equivalence with the agent-array backend ------------------------------
//
// The batched backend must agree with Simulation<P> *in distribution*: from
// the same worst-case initial configuration, convergence-time summaries
// across independent seeds must have overlapping 95% confidence intervals.
// The two backends consume randomness differently, so only distributional
// agreement is meaningful.

double array_backend_time(std::uint32_t n, std::uint64_t seed) {
  RunOptions opts;
  opts.max_interactions = 1ull << 62;
  const RunResult r = run_until_ranked(
      SilentNStateSSR(n), silent_nstate_worst_config(n), seed, opts);
  EXPECT_TRUE(r.stabilized);
  return r.stabilization_ptime;
}

double batch_backend_time(std::uint32_t n, std::uint64_t seed) {
  BatchSimulation<SilentNStateSSR> sim(
      SilentNStateSSR(n), silent_nstate_worst_config(n), seed);
  EXPECT_TRUE(
      sim.run_until([](const auto& s) { return s.silent(); }, 1ull << 62));
  return sim.parallel_time();
}

void expect_overlapping_ci(const Summary& a, const Summary& b) {
  const double lo_a = a.mean - a.ci95, hi_a = a.mean + a.ci95;
  const double lo_b = b.mean - b.ci95, hi_b = b.mean + b.ci95;
  EXPECT_LE(lo_a, hi_b) << "CIs disjoint: [" << lo_a << ", " << hi_a
                        << "] vs [" << lo_b << ", " << hi_b << "]";
  EXPECT_LE(lo_b, hi_a) << "CIs disjoint: [" << lo_a << ", " << hi_a
                        << "] vs [" << lo_b << ", " << hi_b << "]";
}

class BatchEquivalence : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BatchEquivalence, AgreesWithArrayBackendOnConvergenceTime) {
  const std::uint32_t n = GetParam();
  const std::uint32_t seeds = 30;
  std::vector<double> array_times, batch_times;
  for (std::uint32_t i = 0; i < seeds; ++i) {
    array_times.push_back(array_backend_time(n, derive_seed(1000 + n, i)));
    batch_times.push_back(batch_backend_time(n, derive_seed(2000 + n, i)));
  }
  expect_overlapping_ci(summarize(array_times), summarize(batch_times));
}

// The hand-rolled accelerator implements the same jump chain independently;
// all three backends must agree in distribution.
TEST_P(BatchEquivalence, AgreesWithSilentNStateFast) {
  const std::uint32_t n = GetParam();
  const std::uint32_t seeds = 30;
  std::vector<double> fast_times, batch_times;
  for (std::uint32_t i = 0; i < seeds; ++i) {
    fast_times.push_back(
        SilentNStateFast(n)
            .run(silent_nstate_worst_counts(n), derive_seed(3000 + n, i))
            .parallel_time);
    batch_times.push_back(batch_backend_time(n, derive_seed(4000 + n, i)));
  }
  expect_overlapping_ci(summarize(fast_times), summarize(batch_times));
}

INSTANTIATE_TEST_SUITE_P(SilentNState, BatchEquivalence,
                         ::testing::Values(8u, 64u, 512u));

// --- General (non-diagonal) path -------------------------------------------
//
// A 2-state one-way epidemic: (1, 0) -> (1, 1) for either role; infected
// pairs and susceptible pairs are null. Progress lives OFF the diagonal, so
// BatchSimulation must take the general path with identical-draw batching.
struct EpidemicProtocol {
  struct State {
    std::uint8_t infected = 0;
  };
  static constexpr bool kActiveRequiresEqualStates = false;

  std::uint32_t n;
  std::uint32_t population_size() const { return n; }
  void interact(State& a, State& b, Rng&) const {
    if (a.infected != b.infected) a.infected = b.infected = 1;
  }
  std::uint32_t num_states() const { return 2; }
  std::uint32_t encode(const State& s) const { return s.infected; }
  State decode(std::uint32_t code) const {
    return State{static_cast<std::uint8_t>(code)};
  }
  bool is_null_pair(const State& a, const State& b) const {
    return a.infected == b.infected;
  }
};

double epidemic_array_time(std::uint32_t n, std::uint64_t seed) {
  std::vector<EpidemicProtocol::State> init(n);
  init[0].infected = 1;
  Simulation<EpidemicProtocol> sim(EpidemicProtocol{n}, init, seed);
  const bool done = sim.run_until(
      [n](const auto& s) {
        for (const auto& st : s.states())
          if (!st.infected) return false;
        return true;
      },
      1ull << 40);
  EXPECT_TRUE(done);
  return sim.parallel_time();
}

double epidemic_batch_time(std::uint32_t n, std::uint64_t seed) {
  std::vector<std::uint64_t> counts = {n - 1, 1};
  BatchSimulation<EpidemicProtocol> sim(EpidemicProtocol{n}, counts, seed);
  const bool done = sim.run_until(
      [n](const auto& s) { return s.counts()[1] == n; }, 1ull << 40);
  EXPECT_TRUE(done);
  return sim.parallel_time();
}

TEST(BatchSimulationGeneral, EpidemicAgreesWithArrayBackend) {
  const std::uint32_t n = 256;
  const std::uint32_t seeds = 40;
  std::vector<double> array_times, batch_times;
  for (std::uint32_t i = 0; i < seeds; ++i) {
    array_times.push_back(epidemic_array_time(n, derive_seed(7000, i)));
    batch_times.push_back(epidemic_batch_time(n, derive_seed(8000, i)));
  }
  // Epidemic completion time concentrates near 2 ln n (Section 2 folklore);
  // both backends must see the same distribution.
  expect_overlapping_ci(summarize(array_times), summarize(batch_times));
}

TEST(BatchSimulationGeneral, BatchesNullRunsOnConcentratedCounts) {
  // All-susceptible except one infected at n = 4096: most draws are null
  // pairs among susceptibles, so the batch counter must dominate, and
  // every interaction must be accounted exactly once.
  const std::uint32_t n = 4096;
  std::vector<std::uint64_t> counts = {n - 1, 1};
  BatchSimulation<EpidemicProtocol> sim(EpidemicProtocol{n}, counts, 17);
  sim.run(200000);
  EXPECT_GT(sim.stats().batched, sim.stats().effective);
  EXPECT_EQ(sim.stats().batched + sim.stats().effective, sim.interactions());
}

TEST(BatchSimulationGeneral, DetectsStuckAllSameStateConfiguration) {
  // Fully infected: the only drawable pair is null, so step() must signal
  // silence (return 0) and run() must terminate instead of ticking through
  // the whole budget one interaction at a time.
  const std::uint32_t n = 1024;
  std::vector<std::uint64_t> counts = {0, n};
  BatchSimulation<EpidemicProtocol> sim(EpidemicProtocol{n}, counts, 5);
  EXPECT_EQ(sim.step(), 0u);
  sim.run(1ull << 50);  // must return immediately, not iterate 2^50 times
  EXPECT_EQ(sim.interactions(), 0u);
  EXPECT_FALSE(sim.run_until([](const auto&) { return false; }, 1ull << 50));
}

}  // namespace
}  // namespace ppsim
