// Tests for Silent-n-state-SSR (Protocol 1, Theorem 2.4) and the barrier
// lemmas 2.2/2.3, plus the exact-distribution accelerated simulator.
#include <gtest/gtest.h>

#include <numeric>

#include "analysis/barrier.h"
#include "analysis/convergence.h"
#include "analysis/experiments.h"
#include "core/simulation.h"
#include "init/silent_nstate_init.h"
#include "protocols/leader.h"
#include "protocols/silent_nstate.h"
#include "protocols/silent_nstate_fast.h"

namespace ppsim {
namespace {

using State = SilentNStateSSR::State;

TEST(SilentNState, TransitionOnlyFiresOnEqualRanks) {
  SilentNStateSSR proto(5);
  Rng rng(1);
  State a{2}, b{2};
  proto.interact(a, b, rng);
  EXPECT_EQ(a.rank, 2u);
  EXPECT_EQ(b.rank, 3u);  // responder moved up
  State c{1}, d{4};
  proto.interact(c, d, rng);
  EXPECT_EQ(c.rank, 1u);
  EXPECT_EQ(d.rank, 4u);
}

TEST(SilentNState, RankWrapsModuloN) {
  SilentNStateSSR proto(4);
  Rng rng(1);
  State a{3}, b{3};
  proto.interact(a, b, rng);
  EXPECT_EQ(b.rank, 0u);
}

TEST(SilentNState, NullPairsAreExactlyDistinctRanks) {
  SilentNStateSSR proto(4);
  for (std::uint32_t i = 0; i < 4; ++i)
    for (std::uint32_t j = 0; j < 4; ++j)
      EXPECT_EQ(proto.is_null_pair(State{i}, State{j}), i != j);
}

TEST(SilentNState, RankOfShiftsToOneBased) {
  SilentNStateSSR proto(4);
  EXPECT_EQ(proto.rank_of(State{0}), 1u);
  EXPECT_EQ(proto.rank_of(State{3}), 4u);
}

TEST(SilentNState, RejectsTinyPopulations) {
  EXPECT_THROW(SilentNStateSSR(1), std::invalid_argument);
}

TEST(SilentNState, WorstConfigShape) {
  const auto cfg = silent_nstate_worst_config(6);
  auto counts = rank_counts(cfg, 6);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[5], 0u);
  for (std::uint32_t r = 1; r < 5; ++r) EXPECT_EQ(counts[r], 1u);
}

TEST(SilentNState, StabilizesFromWorstConfig) {
  constexpr std::uint32_t kN = 16;
  RunOptions opts;
  opts.max_interactions = 1ull << 24;
  opts.verify_silent = true;
  const RunResult r = run_until_ranked(
      SilentNStateSSR(kN), silent_nstate_worst_config(kN), 42, opts);
  ASSERT_TRUE(r.stabilized);
  EXPECT_GT(r.stabilization_ptime, 0.0);
}

TEST(SilentNState, StabilizesFromAllSameRank) {
  constexpr std::uint32_t kN = 16;
  RunOptions opts;
  opts.max_interactions = 1ull << 24;
  opts.verify_silent = true;
  for (std::uint32_t r0 : {0u, 7u, 15u}) {
    const RunResult r = run_until_ranked(
        SilentNStateSSR(kN), silent_nstate_all_same(kN, r0), 43, opts);
    ASSERT_TRUE(r.stabilized) << "start rank " << r0;
  }
}

TEST(SilentNState, StabilizesFromRandomConfigs) {
  constexpr std::uint32_t kN = 16;
  RunOptions opts;
  opts.max_interactions = 1ull << 24;
  opts.verify_silent = true;
  for (int trial = 0; trial < 10; ++trial) {
    const RunResult r = run_until_ranked(
        SilentNStateSSR(kN),
        silent_nstate_random_config(kN, derive_seed(10, trial)),
        derive_seed(20, trial), opts);
    ASSERT_TRUE(r.stabilized) << "trial " << trial;
  }
}

TEST(SilentNState, AlreadyRankedIsImmediatelyStable) {
  constexpr std::uint32_t kN = 8;
  std::vector<State> cfg(kN);
  for (std::uint32_t i = 0; i < kN; ++i) cfg[i].rank = i;
  RunOptions opts;
  opts.max_interactions = 1000;
  const RunResult r =
      run_until_ranked(SilentNStateSSR(kN), cfg, 1, opts);
  ASSERT_TRUE(r.stabilized);
  EXPECT_DOUBLE_EQ(r.stabilization_ptime, 0.0);
}

TEST(SilentNState, SolvesLeaderElectionViaRankOne) {
  constexpr std::uint32_t kN = 12;
  RunOptions opts;
  opts.max_interactions = 1ull << 24;
  SilentNStateSSR proto(kN);
  Simulation<SilentNStateSSR> sim(proto, silent_nstate_worst_config(kN), 9);
  // Run to silence: every rank distinct.
  while (true) {
    sim.step();
    if (is_correctly_ranked(sim.protocol(), sim.states())) break;
  }
  EXPECT_EQ(count_leaders(sim.protocol(), sim.states()), 1u);
  EXPECT_TRUE(unique_leader(sim.protocol(), sim.states()).has_value());
}

// --- Barrier lemmas. ---

TEST(Barrier, WitnessSatisfiesInvariantExhaustivelyTinyN) {
  // Lemma 2.2 for every configuration of n = 5 agents (5^5 = 3125 configs).
  constexpr std::uint32_t kN = 5;
  std::vector<State> cfg(kN);
  for (std::uint32_t code = 0; code < 3125; ++code) {
    std::uint32_t c = code;
    for (auto& s : cfg) {
      s.rank = c % kN;
      c /= kN;
    }
    const auto counts = rank_counts(cfg, kN);
    const std::uint32_t k = barrier_rank(counts);
    ASSERT_TRUE(barrier_invariant_holds(counts, k))
        << "config code " << code << " k=" << k;
  }
}

TEST(Barrier, InvariantPreservedAlongExecutions) {
  // Lemma 2.3: fix k from the initial configuration; the invariant holds in
  // every reachable configuration.
  constexpr std::uint32_t kN = 12;
  for (int trial = 0; trial < 5; ++trial) {
    SilentNStateSSR proto(kN);
    Simulation<SilentNStateSSR> sim(
        proto, silent_nstate_random_config(kN, derive_seed(30, trial)),
        derive_seed(40, trial));
    const std::uint32_t k = barrier_rank(rank_counts(sim.states(), kN));
    ASSERT_TRUE(barrier_invariant_holds(rank_counts(sim.states(), kN), k));
    for (int step = 0; step < 20000; ++step) {
      sim.step();
      ASSERT_TRUE(barrier_invariant_holds(rank_counts(sim.states(), kN), k))
          << "trial " << trial << " step " << step;
    }
  }
}

TEST(Barrier, BarrierRankNeverHoldsTwoAgents) {
  constexpr std::uint32_t kN = 10;
  SilentNStateSSR proto(kN);
  Simulation<SilentNStateSSR> sim(proto,
                                  silent_nstate_random_config(kN, 77), 78);
  const std::uint32_t k = barrier_rank(rank_counts(sim.states(), kN));
  for (int step = 0; step < 20000; ++step) {
    sim.step();
    ASSERT_LE(rank_counts(sim.states(), kN)[k], 1u);
  }
}

// --- Theorem 2.4 and the accelerated simulator. ---

TEST(SilentNStateFast, MatchesDirectSimulatorInMean) {
  constexpr std::uint32_t kN = 24;
  constexpr int kTrials = 200;
  RunOptions opts;
  opts.max_interactions = 1ull << 30;
  const auto direct = run_trials(kTrials, 55, [&](std::uint64_t seed) {
    const RunResult r = run_until_ranked(
        SilentNStateSSR(kN), silent_nstate_worst_config(kN), seed, opts);
    return static_cast<double>(r.interactions);
  });
  const auto fast = run_trials(kTrials, 56, [&](std::uint64_t seed) {
    return static_cast<double>(
        SilentNStateFast(kN).run(silent_nstate_worst_counts(kN), seed)
            .interactions);
  });
  const Summary sd = summarize(direct);
  const Summary sf = summarize(fast);
  EXPECT_NEAR(sd.mean, sf.mean, 3 * (sd.ci95 + sf.ci95));
}

TEST(SilentNStateFast, WorstCaseMeanMatchesClosedForm) {
  // Theorem 2.4: E[interactions] = (n-1) * C(n,2) from the worst config.
  constexpr std::uint32_t kN = 32;
  const auto xs = run_trials(400, 60, [&](std::uint64_t seed) {
    return static_cast<double>(
        SilentNStateFast(kN).run(silent_nstate_worst_counts(kN), seed)
            .interactions);
  });
  const Summary s = summarize(xs);
  const double expected = silent_nstate_worst_expected_interactions(kN);
  EXPECT_NEAR(s.mean, expected, 4 * s.ci95 + 0.05 * expected);
}

TEST(SilentNStateFast, WorstCaseHasExactlyNMinusOneEvents) {
  // From the worst configuration each effective event moves the unique
  // colliding pair up one rank; exactly n-1 events reach the permutation.
  constexpr std::uint32_t kN = 20;
  const auto r = SilentNStateFast(kN).run(silent_nstate_worst_counts(kN), 3);
  EXPECT_EQ(r.effective_events, kN - 1);
}

TEST(SilentNStateFast, QuadraticScalingAcrossDoublings) {
  // Theorem 2.4: Theta(n^2) parallel time — the log-log slope over a few
  // doublings should be ~3 in interactions, i.e. ~2 in parallel time.
  std::vector<double> ns, times;
  for (std::uint32_t n : {64u, 128u, 256u, 512u}) {
    const auto xs = run_trials(30, 70 + n, [&](std::uint64_t seed) {
      return SilentNStateFast(n)
          .run(silent_nstate_worst_counts(n), seed)
          .parallel_time;
    });
    ns.push_back(n);
    times.push_back(summarize(xs).mean);
  }
  const LinearFit f = fit_power_law(ns, times);
  EXPECT_NEAR(f.slope, 2.0, 0.25);
}

TEST(SilentNStateFast, RejectsBadCounts) {
  SilentNStateFast fast(4);
  EXPECT_THROW(fast.run({1, 1, 1}, 1), std::invalid_argument);
  EXPECT_THROW(fast.run({4, 1, 0, 0}, 1), std::invalid_argument);
}

TEST(SilentNStateFast, PermutationStartNeedsNoEvents) {
  SilentNStateFast fast(6);
  const auto r = fast.run({1, 1, 1, 1, 1, 1}, 1);
  EXPECT_EQ(r.interactions, 0u);
  EXPECT_EQ(r.effective_events, 0u);
}

}  // namespace
}  // namespace ppsim
