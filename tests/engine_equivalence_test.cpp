// Tests for the unified Engine API (core/engine.h) and for the newly
// enumerable protocols on the count-based backend:
//
//  * compile-time contract checks: both backends satisfy Engine, every
//    protocol in the repo satisfies the (const-asserting) Protocol concept,
//    Optimal-Silent-SSR is keyed-passive, Obs25 is enumerable;
//  * Optimal-Silent-SSR canonical coding: encode/decode bijection,
//    dead-field canonicalization, keyed structure == null-pair predicate;
//  * cross-backend statistical equivalence on stabilization time for
//    OptimalSilentSSR (n in {8, 64, 512}, 30 seeds, overlapping
//    family-controlled CIs via tests/stat_harness.h, mirroring
//    tests/batch_simulation_test.cpp) and Obs25SSLE (n = 3 by definition of
//    the Observation 2.5 protocol);
//  * ISSUE 5: the sharded single-run engine against every other strategy
//    (OptimalSilent + ResetProcess, n in {8, 64, 512}, 30 seeds), plus its
//    determinism contract — bit-identical output for a fixed (seed, shard
//    count) at shard counts {1, 2, 4, 8}, whatever the worker thread count;
//  * the keyed-passive geometric skip against the analytic detection
//    latency of a duplicated rank (Observation 2.6's quantity);
//  * run_trials_parallel determinism: bit-identical per-seed measurements
//    for every thread count.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "analysis/convergence.h"
#include "analysis/experiments.h"
#include "core/batch_simulation.h"
#include "core/engine.h"
#include "core/sharded_simulation.h"
#include "core/simulation.h"
#include "core/stats.h"
#include "init/optimal_silent_init.h"
#include "processes/epidemic.h"
#include "protocols/leader.h"
#include "protocols/obs25.h"
#include "protocols/optimal_silent.h"
#include "protocols/silent_nstate.h"
#include "protocols/sublinear.h"
#include "reset/reset_process.h"
#include "stat_harness.h"

namespace ppsim {
namespace {

// --- Compile-time contract checks ------------------------------------------

static_assert(Protocol<SilentNStateSSR>);
static_assert(Protocol<OptimalSilentSSR>);
static_assert(Protocol<Obs25SSLE>);
static_assert(Protocol<SublinearTimeSSR>);
static_assert(Protocol<ResetProcess>);

static_assert(ObservableProtocol<OptimalSilentSSR>);
static_assert(ObservableProtocol<SublinearTimeSSR>);
static_assert(ObservableProtocol<ResetProcess>);
static_assert(!ObservableProtocol<SilentNStateSSR>);

static_assert(EnumerableProtocol<SilentNStateSSR>);
static_assert(EnumerableProtocol<OptimalSilentSSR>);
static_assert(EnumerableProtocol<Obs25SSLE>);
static_assert(!EnumerableProtocol<SublinearTimeSSR>);

static_assert(DiagonalActiveProtocol<SilentNStateSSR>);
static_assert(KeyedPassiveProtocol<OptimalSilentSSR>);
static_assert(!KeyedPassiveProtocol<SilentNStateSSR>);

// ISSUE 3: ResetProcess is enumerable (Section 3 phase experiments run
// batched), both it and OneWayEpidemic expose the unkeyed passive
// structure, and the deterministic-transition flag gates the multinomial
// kernel's delta cache.
static_assert(EnumerableProtocol<ResetProcess>);
static_assert(UnkeyedPassiveProtocol<ResetProcess>);
static_assert(EnumerableProtocol<OneWayEpidemic>);
static_assert(UnkeyedPassiveProtocol<OneWayEpidemic>);
static_assert(!UnkeyedPassiveProtocol<OptimalSilentSSR>);  // keyed, not unkeyed
static_assert(!KeyedPassiveProtocol<ResetProcess>);

static_assert(DeterministicProtocol<SilentNStateSSR>);
static_assert(DeterministicProtocol<OptimalSilentSSR>);
static_assert(DeterministicProtocol<ResetProcess>);
static_assert(DeterministicProtocol<OneWayEpidemic>);
static_assert(!DeterministicProtocol<Obs25SSLE>);  // interact() draws Rng

static_assert(ScalableCounters<OptimalSilentSSR::Counters>);
static_assert(ScalableCounters<ResetProcess::Counters>);

static_assert(StrategyEngine<BatchSimulation<OptimalSilentSSR>>);
static_assert(StrategyEngine<BatchSimulation<SilentNStateSSR>>);
static_assert(StrategyEngine<BatchSimulation<ResetProcess>>);
static_assert(!StrategyEngine<Simulation<OptimalSilentSSR>>);

// ISSUE 5: the sharded single-run engine is a full count/strategy engine
// for every shardable protocol (enumerable, mergeable counters).
static_assert(ShardableProtocol<OptimalSilentSSR>);
static_assert(ShardableProtocol<SilentNStateSSR>);
static_assert(ShardableProtocol<ResetProcess>);
static_assert(ShardableProtocol<OneWayEpidemic>);
static_assert(ShardableProtocol<Obs25SSLE>);
static_assert(!ShardableProtocol<SublinearTimeSSR>);  // not enumerable
static_assert(CountEngine<ShardedSimulation<OptimalSilentSSR>>);
static_assert(StrategyEngine<ShardedSimulation<OptimalSilentSSR>>);
static_assert(!AgentArrayEngine<ShardedSimulation<OptimalSilentSSR>>);

static_assert(Engine<Simulation<SilentNStateSSR>>);
static_assert(Engine<Simulation<OptimalSilentSSR>>);
static_assert(Engine<Simulation<SublinearTimeSSR>>);
static_assert(Engine<BatchSimulation<SilentNStateSSR>>);
static_assert(Engine<BatchSimulation<OptimalSilentSSR>>);
static_assert(Engine<BatchSimulation<Obs25SSLE>>);

static_assert(AgentArrayEngine<Simulation<OptimalSilentSSR>>);
static_assert(!AgentArrayEngine<BatchSimulation<OptimalSilentSSR>>);
static_assert(CountEngine<BatchSimulation<OptimalSilentSSR>>);
static_assert(!CountEngine<Simulation<OptimalSilentSSR>>);

// --- Optimal-Silent-SSR canonical coding -----------------------------------

TEST(OptimalSilentCoding, DecodeEncodeIsIdentityOnAllCodes) {
  for (std::uint32_t n : {2u, 5u, 16u}) {
    const OptimalSilentSSR proto(OptimalSilentParams::standard(n));
    const auto p = proto.params();
    EXPECT_EQ(proto.num_states(),
              3 * n + (p.emax + 1) + 2 * p.rmax + 2 * (p.dmax + 1));
    for (std::uint32_t code = 0; code < proto.num_states(); ++code)
      EXPECT_EQ(proto.encode(proto.decode(code)), code) << "n=" << n;
  }
}

TEST(OptimalSilentCoding, CanonicalizesDeadFields) {
  const OptimalSilentSSR proto(OptimalSilentParams::standard(8));
  // Settled ignores errorcount/leader/timers.
  OptimalSilentSSR::State s;
  s.role = OsRole::Settled;
  s.rank = 3;
  s.children = 1;
  const std::uint32_t clean = proto.encode(s);
  s.errorcount = 77;
  s.leader = true;
  s.delaytimer = 5;
  s.resetcount = 9;
  EXPECT_EQ(proto.encode(s), clean);
  // Propagating Resetting ignores delaytimer (dead until dormancy, when
  // Protocol 2 line 7 rewrites it).
  OptimalSilentSSR::State r;
  r.role = OsRole::Resetting;
  r.resetcount = 4;
  r.leader = false;
  r.delaytimer = 0;
  const std::uint32_t canon = proto.encode(r);
  r.delaytimer = 123;
  EXPECT_EQ(proto.encode(r), canon);
}

TEST(OptimalSilentCoding, KeyedStructureMatchesNullPairPredicate) {
  const OptimalSilentSSR proto(OptimalSilentParams::standard(5));
  const std::uint32_t q = proto.num_states();
  // The keyed-passive contract: null iff both passive with distinct keys.
  for (std::uint32_t a = 0; a < q; ++a) {
    const auto sa = proto.decode(a);
    for (std::uint32_t b = 0; b < q; ++b) {
      const auto sb = proto.decode(b);
      const bool structured = proto.is_passive(sa) && proto.is_passive(sb) &&
                              proto.passive_key(sa) != proto.passive_key(sb);
      EXPECT_EQ(proto.is_null_pair(sa, sb), structured)
          << "codes " << a << ", " << b;
    }
  }
  // Fibers enumerate exactly the passive codes of each key.
  std::vector<std::vector<std::uint32_t>> expected(proto.num_passive_keys());
  for (std::uint32_t c = 0; c < q; ++c) {
    const auto s = proto.decode(c);
    if (proto.is_passive(s)) expected[proto.passive_key(s)].push_back(c);
  }
  for (std::uint32_t k = 0; k < proto.num_passive_keys(); ++k)
    EXPECT_EQ(proto.passive_fiber(k), expected[k]) << "key " << k;
}

// --- Cross-backend equivalence: OptimalSilentSSR ---------------------------
//
// The engines consume randomness differently, so only distributional
// agreement is meaningful: stabilization-time summaries across independent
// seeds must have overlapping confidence intervals (tests/stat_harness.h;
// multi-comparison tests pass a family-widening factor).

void expect_overlapping_ci(const Summary& a, const Summary& b,
                           double widen = 1.0) {
  stat_harness::expect_overlapping_ci(a, b, "", widen);
}

RunOptions optimal_silent_opts(std::uint32_t n) {
  RunOptions opts;
  opts.max_interactions =
      static_cast<std::uint64_t>(n) * n * 2000 + (1ull << 24);
  return opts;
}

double optimal_array_time(std::uint32_t n, std::uint64_t seed) {
  const auto params = OptimalSilentParams::standard(n);
  OptimalSilentSSR proto(params);
  auto init = optimal_silent_config(params, OsAdversary::kUniformRandom, seed);
  Simulation<OptimalSilentSSR> sim(proto, std::move(init),
                                   derive_seed(seed, 1));
  const RunResult r = run_engine_until_ranked(sim, optimal_silent_opts(n));
  EXPECT_TRUE(r.stabilized);
  return r.stabilization_ptime;
}

double optimal_batch_time(std::uint32_t n, std::uint64_t seed,
                          BatchStrategy strategy) {
  const auto params = OptimalSilentParams::standard(n);
  OptimalSilentSSR proto(params);
  auto init = optimal_silent_config(params, OsAdversary::kUniformRandom, seed);
  BatchSimulation<OptimalSilentSSR> sim(proto, init, derive_seed(seed, 1),
                                        strategy);
  const RunResult r = run_engine_until_ranked(sim, optimal_silent_opts(n));
  EXPECT_TRUE(r.stabilized);
  return r.stabilization_ptime;
}

double optimal_sharded_time(std::uint32_t n, std::uint64_t seed,
                            std::uint32_t shards,
                            std::uint32_t max_workers = 1) {
  const auto params = OptimalSilentParams::standard(n);
  OptimalSilentSSR proto(params);
  auto init = optimal_silent_config(params, OsAdversary::kUniformRandom, seed);
  ShardedOptions options;
  options.shards = shards;
  options.max_workers = max_workers;
  ShardedSimulation<OptimalSilentSSR> sim(proto, init, derive_seed(seed, 1),
                                          options);
  const RunResult r = run_engine_until_ranked(sim, optimal_silent_opts(n));
  EXPECT_TRUE(r.stabilized);
  return r.stabilization_ptime;
}

class OptimalSilentBackendEquivalence
    : public ::testing::TestWithParam<std::uint32_t> {};

// ISSUE 3 / ISSUE 5 cross-strategy equivalence: agent array vs geometric
// skip vs multinomial vs auto vs sharded all measure the same
// stabilization-time distribution (family-controlled CI overlap over 30
// independent seeds per engine).
TEST_P(OptimalSilentBackendEquivalence, OverlappingStabilizationCIs) {
  const std::uint32_t n = GetParam();
  const std::uint32_t seeds = 30;
  std::vector<double> array_times, skip_times, multi_times, auto_times,
      sharded_times;
  for (std::uint32_t i = 0; i < seeds; ++i) {
    array_times.push_back(optimal_array_time(n, derive_seed(5000 + n, i)));
    skip_times.push_back(optimal_batch_time(n, derive_seed(6000 + n, i),
                                            BatchStrategy::kGeometricSkip));
    multi_times.push_back(optimal_batch_time(n, derive_seed(6500 + n, i),
                                             BatchStrategy::kMultinomial));
    auto_times.push_back(optimal_batch_time(n, derive_seed(6800 + n, i),
                                            BatchStrategy::kAuto));
    sharded_times.push_back(
        optimal_sharded_time(n, derive_seed(7100 + n, i), /*shards=*/4));
  }
  const double widen = stat_harness::family_widen(7);
  const Summary array = summarize(array_times);
  const Summary skip = summarize(skip_times);
  const Summary multi = summarize(multi_times);
  const Summary sharded = summarize(sharded_times);
  expect_overlapping_ci(array, skip, widen);
  expect_overlapping_ci(array, multi, widen);
  expect_overlapping_ci(array, summarize(auto_times), widen);
  expect_overlapping_ci(skip, multi, widen);
  expect_overlapping_ci(array, sharded, widen);
  expect_overlapping_ci(skip, sharded, widen);
  expect_overlapping_ci(multi, sharded, widen);
}

INSTANTIATE_TEST_SUITE_P(OptimalSilent, OptimalSilentBackendEquivalence,
                         ::testing::Values(8u, 64u, 512u));

// kAuto must be a pure function of (configuration, seed): two runs with the
// same seed are bit-identical in interactions, parallel time and counts.
// n is above the auto population floor and the run starts timer-heavy, so
// auto genuinely exercises the multinomial path here.
TEST(StrategyEquivalence, AutoIsBitStableForFixedSeed) {
  const std::uint32_t n = 20'000;
  const auto params = OptimalSilentParams::standard(n);
  OptimalSilentSSR proto(params);
  const auto init = optimal_silent_dormant_counts(params);
  auto run_once = [&](BatchSimulation<OptimalSilentSSR>& sim) {
    sim.run(200'000);
  };
  BatchSimulation<OptimalSilentSSR> a(proto, init, 1234,
                                      BatchStrategy::kAuto);
  BatchSimulation<OptimalSilentSSR> b(proto, init, 1234,
                                      BatchStrategy::kAuto);
  run_once(a);
  run_once(b);
  EXPECT_EQ(a.interactions(), b.interactions());
  EXPECT_EQ(a.parallel_time(), b.parallel_time());
  EXPECT_EQ(a.counts(), b.counts());
  EXPECT_EQ(a.counters().resets_executed, b.counters().resets_executed);
  EXPECT_EQ(a.stats().multinomial_batches, b.stats().multinomial_batches);
  // The dormant countdown has active density 1: auto resolved to the
  // multinomial batch.
  EXPECT_GT(a.stats().multinomial_batches, 0u);
}

// The auto rule's two sides: silent-heavy configurations resolve to the
// geometric skip, timer-heavy ones (above the population floor) to the
// multinomial batch; small populations stay geometric at any density.
TEST(StrategyEquivalence, AutoResolvesFromDensityAndScale) {
  {
    const auto params = OptimalSilentParams::standard(20'000);
    OptimalSilentSSR proto(params);
    BatchSimulation<OptimalSilentSSR> timer_heavy(
        proto, optimal_silent_dormant_counts(params), 1,
        BatchStrategy::kAuto);
    EXPECT_EQ(timer_heavy.resolved_strategy(), BatchStrategy::kMultinomial);
    BatchSimulation<OptimalSilentSSR> silent_heavy(
        proto,
        optimal_silent_config(params, OsAdversary::kDuplicateRank, 1), 1,
        BatchStrategy::kAuto);
    EXPECT_EQ(silent_heavy.resolved_strategy(),
              BatchStrategy::kGeometricSkip);
    EXPECT_EQ(silent_heavy.strategy(), BatchStrategy::kAuto);
  }
  {
    const auto params = OptimalSilentParams::standard(256);
    OptimalSilentSSR proto(params);
    BatchSimulation<OptimalSilentSSR> small(
        proto, optimal_silent_dormant_counts(params), 1,
        BatchStrategy::kAuto);
    EXPECT_EQ(small.resolved_strategy(), BatchStrategy::kGeometricSkip);
  }
}

// --- Cross-strategy equivalence: ResetProcess -------------------------------
//
// The Section 3 harness protocol, now enumerable: time until the reset wave
// started by one triggered agent has fully drained (everyone Computing),
// across all four engines.

double reset_array_time(std::uint32_t n, std::uint32_t rmax,
                        std::uint32_t dmax, std::uint64_t seed) {
  ResetProcess proto(n, rmax, dmax);
  std::vector<ResetProcess::State> init(n);
  proto.trigger(init[0]);
  Simulation<ResetProcess> sim(proto, std::move(init), seed);
  bool done = false;
  while (sim.interactions() < (1ull << 34)) {
    sim.step();
    done = true;
    for (const auto& s : sim.states())
      if (s.resetting) {
        done = false;
        break;
      }
    if (done) break;
  }
  EXPECT_TRUE(done);
  return sim.parallel_time();
}

std::vector<std::uint64_t> reset_trigger_counts(const ResetProcess& proto,
                                                std::uint32_t n) {
  std::vector<std::uint64_t> counts(proto.num_states(), 0);
  ResetProcess::State triggered;
  proto.trigger(triggered);
  counts[0] = n - 1;
  counts[proto.encode(triggered)] = 1;
  return counts;
}

double reset_batch_time(std::uint32_t n, std::uint32_t rmax,
                        std::uint32_t dmax, std::uint64_t seed,
                        BatchStrategy strategy) {
  ResetProcess proto(n, rmax, dmax);
  BatchSimulation<ResetProcess> sim(proto, reset_trigger_counts(proto, n),
                                    seed, strategy);
  EXPECT_TRUE(sim.run_until([](const auto& s) { return s.silent(); },
                            1ull << 34));
  EXPECT_EQ(sim.counts()[0], n);  // silent == all Computing
  return sim.parallel_time();
}

double reset_sharded_time(std::uint32_t n, std::uint32_t rmax,
                          std::uint32_t dmax, std::uint64_t seed,
                          std::uint32_t shards) {
  ResetProcess proto(n, rmax, dmax);
  ShardedOptions options;
  options.shards = shards;
  options.max_workers = 1;
  ShardedSimulation<ResetProcess> sim(proto, reset_trigger_counts(proto, n),
                                      seed, options);
  EXPECT_TRUE(sim.run_until([](const auto& s) { return s.silent(); },
                            1ull << 34));
  EXPECT_EQ(sim.counts()[0], n);  // silent == all Computing
  return sim.parallel_time();
}

class ResetProcessStrategyEquivalence
    : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ResetProcessStrategyEquivalence, OverlappingDrainTimeCIs) {
  const std::uint32_t n = GetParam();
  const auto rmax = static_cast<std::uint32_t>(
                        std::ceil(8.0 * std::log(static_cast<double>(n)))) +
                    4;
  const std::uint32_t dmax = 4 * rmax;
  const std::uint32_t seeds = 30;
  std::vector<double> array_times, skip_times, multi_times, auto_times,
      sharded_times;
  for (std::uint32_t i = 0; i < seeds; ++i) {
    array_times.push_back(
        reset_array_time(n, rmax, dmax, derive_seed(9100 + n, i)));
    skip_times.push_back(reset_batch_time(n, rmax, dmax,
                                          derive_seed(9200 + n, i),
                                          BatchStrategy::kGeometricSkip));
    multi_times.push_back(reset_batch_time(n, rmax, dmax,
                                           derive_seed(9300 + n, i),
                                           BatchStrategy::kMultinomial));
    auto_times.push_back(reset_batch_time(n, rmax, dmax,
                                          derive_seed(9400 + n, i),
                                          BatchStrategy::kAuto));
    sharded_times.push_back(reset_sharded_time(
        n, rmax, dmax, derive_seed(9500 + n, i), /*shards=*/4));
  }
  const double widen = stat_harness::family_widen(7);
  const Summary array = summarize(array_times);
  const Summary skip = summarize(skip_times);
  const Summary multi = summarize(multi_times);
  const Summary sharded = summarize(sharded_times);
  expect_overlapping_ci(array, skip, widen);
  expect_overlapping_ci(array, multi, widen);
  expect_overlapping_ci(array, summarize(auto_times), widen);
  expect_overlapping_ci(skip, multi, widen);
  expect_overlapping_ci(array, sharded, widen);
  expect_overlapping_ci(skip, sharded, widen);
  expect_overlapping_ci(multi, sharded, widen);
}

INSTANTIATE_TEST_SUITE_P(ResetProcess, ResetProcessStrategyEquivalence,
                         ::testing::Values(8u, 64u, 512u));

// --- Sharded engine contract -------------------------------------------------

// Determinism: the sharded engine is a pure function of (seed, shard
// count). For each shard count in {1, 2, 4, 8}, two runs with the same seed
// but different worker thread counts must be bit-identical in interactions,
// counts and counters (the satellite contract the README documents:
// shards= changes the stream decomposition, --threads never changes
// results).
TEST(ShardedDeterminism, BitIdenticalForFixedSeedAcrossWorkerCounts) {
  // n large enough that the 8-worker run really executes rounds on the
  // thread pool (rounds of n/8 interactions >= the inline threshold).
  const std::uint32_t n = 65'536;
  const auto params = OptimalSilentParams::standard(n);
  OptimalSilentSSR proto(params);
  const auto init = optimal_silent_dormant_counts(params);
  for (std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    ShardedOptions one_worker;
    one_worker.shards = shards;
    one_worker.max_workers = 1;
    ShardedOptions many_workers;
    many_workers.shards = shards;
    many_workers.max_workers = 8;
    ShardedSimulation<OptimalSilentSSR> a(proto, init, 777, one_worker);
    ShardedSimulation<OptimalSilentSSR> b(proto, init, 777, many_workers);
    a.run(40'000);
    b.run(40'000);
    EXPECT_EQ(a.shards(), shards);
    EXPECT_EQ(a.interactions(), b.interactions()) << shards << " shards";
    EXPECT_EQ(a.counts(), b.counts()) << shards << " shards";
    EXPECT_EQ(a.counters().resets_executed, b.counters().resets_executed)
        << shards << " shards";
    // And a re-run with identical options reproduces itself exactly.
    ShardedSimulation<OptimalSilentSSR> c(proto, init, 777, one_worker);
    c.run(40'000);
    EXPECT_EQ(a.interactions(), c.interactions()) << shards << " shards";
    EXPECT_EQ(a.counts(), c.counts()) << shards << " shards";
  }
}

// The shard count is clamped so every shard holds >= 2 agents, and the
// strategy surface reports kSharded.
TEST(ShardedDeterminism, ClampsShardsAndReportsStrategy) {
  const std::uint32_t n = 8;
  const auto params = OptimalSilentParams::standard(n);
  OptimalSilentSSR proto(params);
  const auto init =
      optimal_silent_config(params, OsAdversary::kUniformRandom, 3);
  ShardedOptions options;
  options.shards = 64;  // > n / 2: clamped to 4
  options.max_workers = 2;
  ShardedSimulation<OptimalSilentSSR> sim(proto, init, 5, options);
  EXPECT_EQ(sim.shards(), 4u);
  EXPECT_EQ(sim.strategy(), BatchStrategy::kSharded);
  EXPECT_EQ(sim.resolved_strategy(), BatchStrategy::kSharded);
  EXPECT_THROW(sim.set_strategy(BatchStrategy::kAuto),
               std::invalid_argument);
  // BatchSimulation, conversely, rejects the sharded strategy outright.
  EXPECT_THROW(BatchSimulation<OptimalSilentSSR>(proto, init, 5,
                                                 BatchStrategy::kSharded),
               std::invalid_argument);
}

// A correct ranking has zero merged active weight: the sharded engine
// certifies silence exactly like the keyed geometric path.
TEST(ShardedDeterminism, CorrectRankingIsSilent) {
  const std::uint32_t n = 32;
  const auto params = OptimalSilentParams::standard(n);
  OptimalSilentSSR proto(params);
  const auto init =
      optimal_silent_config(params, OsAdversary::kCorrectRanking, 1);
  ShardedOptions options;
  options.shards = 4;
  ShardedSimulation<OptimalSilentSSR> sim(proto, init, 3, options);
  EXPECT_TRUE(sim.silent());
  EXPECT_EQ(sim.step(), 0u);
  EXPECT_EQ(sim.interactions(), 0u);
}

// stat_harness sanity: the widening factor is the right normal quantile.
TEST(StatHarness, FamilyWidenMatchesNormalQuantiles) {
  EXPECT_DOUBLE_EQ(stat_harness::family_widen(1), 1.0);
  EXPECT_NEAR(stat_harness::inverse_normal_cdf(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(stat_harness::inverse_normal_cdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(stat_harness::family_widen(5) * 1.959964, 2.575829, 1e-4);
  EXPECT_GT(stat_harness::family_widen(60), 1.6);
  EXPECT_LT(stat_harness::family_widen(60), 1.8);
}

TEST(ResetProcessCoding, DecodeEncodeIsIdentityOnAllCodes) {
  const ResetProcess proto(16, 12, 48);
  EXPECT_EQ(proto.num_states(), 1u + 12 + 48 + 1);
  for (std::uint32_t code = 0; code < proto.num_states(); ++code)
    EXPECT_EQ(proto.encode(proto.decode(code)), code);
  // Instrumentation and dead fields are normalized away.
  ResetProcess::State s;
  s.resets_executed = 7;
  EXPECT_EQ(proto.encode(s), 0u);
  s.resetting = true;
  s.resetcount = 3;
  const std::uint32_t canon = proto.encode(s);
  s.delaytimer = 40;  // dead while propagating (Protocol 2 line 7 rewrites)
  EXPECT_EQ(proto.encode(s), canon);
  // The unkeyed structure is an exact characterization for this protocol.
  for (std::uint32_t a = 0; a < proto.num_states(); ++a)
    for (std::uint32_t b = 0; b < proto.num_states(); ++b)
      EXPECT_EQ(proto.is_null_pair(proto.decode(a), proto.decode(b)),
                proto.is_passive(proto.decode(a)) &&
                    proto.is_passive(proto.decode(b)));
}

// --- Cross-strategy equivalence: one-way epidemic ---------------------------

TEST(OneWayEpidemicEquivalence, OverlappingCompletionCIs) {
  const std::uint32_t n = 128;
  const std::uint32_t seeds = 40;
  OneWayEpidemic proto(n);
  auto batch_time = [&](std::uint64_t seed, BatchStrategy strategy) {
    BatchSimulation<OneWayEpidemic> sim(proto, one_way_epidemic_counts(n, 1),
                                        seed, strategy);
    EXPECT_TRUE(sim.run_until([](const auto& s) { return s.silent(); },
                              1ull << 34));
    return sim.parallel_time();
  };
  auto array_time = [&](std::uint64_t seed) {
    std::vector<OneWayEpidemic::State> init(n);
    init[0].infected = true;
    Simulation<OneWayEpidemic> sim(proto, std::move(init), seed);
    while (sim.interactions() < (1ull << 34)) {
      sim.step();
      std::uint32_t infected = 0;
      for (const auto& s : sim.states()) infected += s.infected ? 1 : 0;
      if (infected == n) break;
    }
    return sim.parallel_time();
  };
  std::vector<double> array_times, skip_times, multi_times;
  for (std::uint32_t i = 0; i < seeds; ++i) {
    array_times.push_back(array_time(derive_seed(9500, i)));
    skip_times.push_back(
        batch_time(derive_seed(9600, i), BatchStrategy::kGeometricSkip));
    multi_times.push_back(
        batch_time(derive_seed(9700, i), BatchStrategy::kMultinomial));
  }
  const Summary array = summarize(array_times);
  expect_overlapping_ci(array, summarize(skip_times));
  expect_overlapping_ci(array, summarize(multi_times));
  // Analytic anchor (Lemma 2.7 is for the two-way epidemic; one-way runs at
  // half the infection rate, E[T] = 2 (n-1) H_{n-1} interactions... sanity
  // only: the mean parallel time is Theta(log n)).
  EXPECT_GT(array.mean, 0.5 * std::log(static_cast<double>(n)));
  EXPECT_LT(array.mean, 8.0 * std::log(static_cast<double>(n)));
}

// The unkeyed skip crushes the endgame: with one susceptible agent left,
// the expected wait is ~n/2 parallel time but only O(1) candidate pairs
// are simulated.
TEST(OneWayEpidemicEquivalence, EndgameSkipsPassivePairs) {
  const std::uint32_t n = 4096;
  OneWayEpidemic proto(n);
  BatchSimulation<OneWayEpidemic> sim(proto,
                                      one_way_epidemic_counts(n, n - 1), 3);
  EXPECT_TRUE(
      sim.run_until([](const auto& s) { return s.silent(); }, 1ull << 40));
  // The wait is ~n interactions (the last susceptible is infected with
  // probability 1/n per interaction) but only ~2 candidate pairs get
  // simulated: everything between them is one geometric jump.
  EXPECT_GT(sim.interactions(), static_cast<std::uint64_t>(n) / 8);
  EXPECT_LE(sim.stats().effective, 16u);
  EXPECT_GT(sim.stats().batched, 8 * sim.stats().effective);
}

// The generic ranked harness agrees across backends starting from the
// deterministic duplicate-rank configuration too (exercises the keyed skip,
// the reset pipeline, and the recruit phase end to end).
TEST(OptimalSilentBackendEquivalence, DuplicateRankStartAgrees) {
  const std::uint32_t n = 64;
  const std::uint32_t seeds = 30;
  std::vector<double> array_times, batch_times;
  for (std::uint32_t i = 0; i < seeds; ++i) {
    const auto params = OptimalSilentParams::standard(n);
    OptimalSilentSSR proto(params);
    auto init =
        optimal_silent_config(params, OsAdversary::kDuplicateRank, 1);
    {
      Simulation<OptimalSilentSSR> sim(proto, init, derive_seed(7000, i));
      const RunResult r = run_engine_until_ranked(sim, optimal_silent_opts(n));
      EXPECT_TRUE(r.stabilized);
      array_times.push_back(r.stabilization_ptime);
    }
    {
      BatchSimulation<OptimalSilentSSR> sim(proto, init,
                                            derive_seed(8000, i));
      const RunResult r = run_engine_until_ranked(sim, optimal_silent_opts(n));
      EXPECT_TRUE(r.stabilized);
      batch_times.push_back(r.stabilization_ptime);
    }
  }
  expect_overlapping_ci(summarize(array_times), summarize(batch_times));
}

// Observation 2.6's detection latency: from the duplicate-rank start the
// error is detectable only when the two duplicates meet directly, an
// expected n(n-1)/2 interactions = (n-1)/2 parallel time. The keyed path
// simulates the whole wait as one geometric jump; its mean must match both
// the analytic value and the agent-array engine.
TEST(OptimalSilentBackendEquivalence, DetectionLatencyMatchesAnalytic) {
  const std::uint32_t n = 64;
  const std::uint32_t seeds = 400;
  const auto params = OptimalSilentParams::standard(n);
  OptimalSilentSSR proto(params);
  const auto init =
      optimal_silent_config(params, OsAdversary::kDuplicateRank, 1);
  auto detect_batch = [&](std::uint64_t seed) {
    BatchSimulation<OptimalSilentSSR> sim(proto, init, seed);
    EXPECT_TRUE(sim.run_until(
        [](const auto& s) { return s.counters().collision_triggers > 0; },
        1ull << 40));
    return sim.parallel_time();
  };
  auto detect_array = [&](std::uint64_t seed) {
    Simulation<OptimalSilentSSR> sim(proto, init, seed);
    EXPECT_TRUE(sim.run_until(
        [](const auto& s) { return s.counters().collision_triggers > 0; },
        1ull << 40));
    return sim.parallel_time();
  };
  const Summary batch =
      summarize(run_trials(seeds, 901, detect_batch));
  const Summary array =
      summarize(run_trials(seeds / 4, 902, detect_array));
  const double analytic = (n - 1) / 2.0;
  EXPECT_NEAR(batch.mean, analytic, 3 * batch.ci95 + 1e-9);
  expect_overlapping_ci(batch, array);
  // The silent stretch before the collision costs O(1) effective steps.
  BatchSimulation<OptimalSilentSSR> sim(proto, init, 99);
  sim.run_until(
      [](const auto& s) { return s.counters().collision_triggers > 0; },
      1ull << 40);
  EXPECT_LE(sim.stats().effective, 2u);
  EXPECT_GT(sim.interactions(), static_cast<std::uint64_t>(n));
}

// A correct ranking is silent under the keyed path: zero active weight.
TEST(OptimalSilentBackendEquivalence, CorrectRankingIsKeyedSilent) {
  const std::uint32_t n = 32;
  const auto params = OptimalSilentParams::standard(n);
  OptimalSilentSSR proto(params);
  const auto init =
      optimal_silent_config(params, OsAdversary::kCorrectRanking, 1);
  BatchSimulation<OptimalSilentSSR> sim(proto, init, 3);
  EXPECT_TRUE(sim.silent());
  EXPECT_EQ(sim.step(), 0u);
  EXPECT_EQ(sim.interactions(), 0u);
  RunOptions opts;
  opts.max_interactions = 1ull << 30;
  opts.verify_silent = true;
  BatchSimulation<OptimalSilentSSR> sim2(proto, init, 4);
  const RunResult r = run_engine_until_ranked(sim2, opts);
  EXPECT_TRUE(r.stabilized);
  EXPECT_EQ(r.stabilization_ptime, 0.0);
}

// --- Cross-backend equivalence: Obs25SSLE ----------------------------------
//
// The Observation 2.5 protocol is defined only for n = 3 (it exists to show
// SSLE does not imply SSR); the cross-backend check compares the time to
// reach a silent configuration {l, f_i, f_j}, |i-j| = 1 (mod 5).

bool obs25_states_silent(const Obs25SSLE& proto,
                         const std::vector<Obs25SSLE::State>& states) {
  for (std::size_t i = 0; i < states.size(); ++i)
    for (std::size_t j = 0; j < states.size(); ++j)
      if (i != j && !proto.is_null_pair(states[i], states[j])) return false;
  return true;
}

bool obs25_counts_silent(const Obs25SSLE& proto,
                         const std::vector<std::uint64_t>& counts) {
  for (std::uint32_t a = 0; a < counts.size(); ++a) {
    if (counts[a] == 0) continue;
    if (counts[a] > 1 &&
        !proto.is_null_pair(proto.decode(a), proto.decode(a)))
      return false;
    for (std::uint32_t b = a + 1; b < counts.size(); ++b)
      if (counts[b] > 0 &&
          !proto.is_null_pair(proto.decode(a), proto.decode(b)))
        return false;
  }
  return true;
}

TEST(Obs25BackendEquivalence, OverlappingTimeToSilenceCIs) {
  const Obs25SSLE proto(3);
  const std::uint32_t seeds = 60;
  std::vector<double> array_times, batch_times, multi_times;
  for (std::uint32_t i = 0; i < seeds; ++i) {
    {
      // All-leaders start: an active configuration.
      std::vector<Obs25SSLE::State> init(3);
      Simulation<Obs25SSLE> sim(proto, init, derive_seed(1100, i));
      EXPECT_TRUE(sim.run_until(
          [&](const auto& s) {
            return obs25_states_silent(s.protocol(), s.states());
          },
          1ull << 30));
      array_times.push_back(sim.parallel_time());
    }
    {
      std::vector<std::uint64_t> counts = {3, 0, 0, 0, 0, 0};
      BatchSimulation<Obs25SSLE> sim(proto, counts, derive_seed(1200, i));
      EXPECT_TRUE(sim.run_until(
          [&](const auto& s) {
            return obs25_counts_silent(s.protocol(), s.counts());
          },
          1ull << 30));
      batch_times.push_back(sim.parallel_time());
    }
    {
      // Randomized interact(): the multinomial kernel must replay every
      // repetition individually (no delta cache) — the one protocol in the
      // repo that exercises that branch.
      std::vector<std::uint64_t> counts = {3, 0, 0, 0, 0, 0};
      BatchSimulation<Obs25SSLE> sim(proto, counts, derive_seed(1300, i),
                                     BatchStrategy::kMultinomial);
      EXPECT_TRUE(sim.run_until(
          [&](const auto& s) {
            return obs25_counts_silent(s.protocol(), s.counts());
          },
          1ull << 30));
      multi_times.push_back(sim.parallel_time());
    }
  }
  expect_overlapping_ci(summarize(array_times), summarize(batch_times));
  expect_overlapping_ci(summarize(array_times), summarize(multi_times));
}

// --- run_trials_parallel ----------------------------------------------------

TEST(RunTrialsParallel, BitIdenticalAcrossThreadCounts) {
  auto one = [](std::uint64_t seed) {
    BatchSimulation<SilentNStateSSR> sim(
        SilentNStateSSR(64), silent_nstate_worst_config(64), seed);
    sim.run_until([](const auto& s) { return s.silent(); }, 1ull << 40);
    return sim.parallel_time();
  };
  const auto serial = run_trials(12, 42, one);
  for (std::uint32_t threads : {1u, 2u, 3u, 8u}) {
    const auto parallel = run_trials_parallel(12, 42, one, threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
      EXPECT_EQ(parallel[i], serial[i])  // bitwise: same seed, same stream
          << "trial " << i << " with " << threads << " threads";
  }
}

TEST(RunTrialsParallel, PropagatesExceptions) {
  auto boom = [](std::uint64_t seed) -> double {
    if (seed % 2 == 0 || true) throw std::runtime_error("trial failed");
    return 0.0;
  };
  EXPECT_THROW(run_trials_parallel(8, 7, boom, 4), std::runtime_error);
}

// --- Generic harness on both backends --------------------------------------

TEST(RunEngineUntilRanked, BackendsAgreeOnSilentNState) {
  const std::uint32_t n = 128;
  const std::uint32_t seeds = 30;
  std::vector<double> array_times, batch_times;
  RunOptions opts;
  opts.max_interactions = 1ull << 50;
  for (std::uint32_t i = 0; i < seeds; ++i) {
    {
      Simulation<SilentNStateSSR> sim(SilentNStateSSR(n),
                                      silent_nstate_worst_config(n),
                                      derive_seed(1300, i));
      const RunResult r = run_engine_until_ranked(sim, opts);
      EXPECT_TRUE(r.stabilized);
      array_times.push_back(r.stabilization_ptime);
    }
    {
      BatchSimulation<SilentNStateSSR> sim(SilentNStateSSR(n),
                                           silent_nstate_worst_config(n),
                                           derive_seed(1400, i));
      const RunResult r = run_engine_until_ranked(sim, opts);
      EXPECT_TRUE(r.stabilized);
      batch_times.push_back(r.stabilization_ptime);
    }
  }
  expect_overlapping_ci(summarize(array_times), summarize(batch_times));
}

}  // namespace
}  // namespace ppsim
