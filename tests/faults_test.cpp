// Tests for the fault-injection scheduler layer (core/faults.h) and its
// native compilations on the count engines:
//
//  * contract checks: ChurnableProtocol / ChurnReportingEngine concepts,
//    FaultySimulation is a full AgentArrayEngine;
//  * bit-transparency: an all-zero FaultSpec (fault.drop=0) reproduces the
//    undecorated engine bit for bit on array, geometric_skip, multinomial
//    and sharded — the fault layer consumes zero extra randomness;
//  * degenerate knobs: fault.drop=1 makes zero state changes on every
//    engine; churn conserves the population size exactly;
//  * hard errors: out-of-range knobs, churn > n, churn without a
//    churn_state(), count-engine faults on an unstructured protocol,
//    faults on the approximate tier (tau / ode);
//  * scenario plumbing: faulted runs are stamped `faulted` with the knobs
//    echoed, fault-free runs are not;
//  * the `held` stop condition: holding time is measured under churn on
//    both engine families, and a fault-free silent run reports failed
//    (holds forever) instead of inventing a number;
//  * cross-engine equivalence under faults: array vs geometric_skip vs
//    multinomial vs sharded measure the same distribution with faults
//    active — (optimal-silent, drop in {0.1, 0.5}) stabilization and
//    (silent-nstate, oneway) thinning, n in {8, 64, 512}, 30 seeds per
//    engine, family-controlled CI overlap via tests/stat_harness.h.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/scenarios.h"
#include "core/batch_simulation.h"
#include "core/faults.h"
#include "core/sharded_simulation.h"
#include "core/simulation.h"
#include "init/obs25_init.h"
#include "init/optimal_silent_init.h"
#include "protocols/obs25.h"
#include "protocols/optimal_silent.h"
#include "protocols/silent_nstate.h"
#include "stat_harness.h"

namespace ppsim {
namespace {

// --- Contract checks --------------------------------------------------------

static_assert(ChurnableProtocol<SilentNStateSSR>);
static_assert(ChurnableProtocol<OptimalSilentSSR>);
static_assert(!ChurnableProtocol<Obs25SSLE>);  // no boot state declared

static_assert(Engine<FaultySimulation<SilentNStateSSR>>);
static_assert(Engine<FaultySimulation<OptimalSilentSSR>>);
static_assert(AgentArrayEngine<FaultySimulation<OptimalSilentSSR>>);
static_assert(!CountEngine<FaultySimulation<OptimalSilentSSR>>);

static_assert(ChurnReportingEngine<FaultySimulation<OptimalSilentSSR>>);
static_assert(!ChurnReportingEngine<Simulation<OptimalSilentSSR>>);
static_assert(!ChurnReportingEngine<BatchSimulation<OptimalSilentSSR>>);

// --- Helpers ----------------------------------------------------------------

template <class P>
std::vector<std::uint64_t> counts_of(const P& proto,
                                     const std::vector<typename P::State>&
                                         agents) {
  std::vector<std::uint64_t> counts(proto.num_states(), 0);
  for (const auto& s : agents) ++counts[proto.encode(s)];
  return counts;
}

std::uint64_t total_count(const std::vector<std::uint64_t>& counts) {
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  return total;
}

// --- Bit-transparency: fault.drop=0 == no faults ----------------------------

// The decorator with an all-zero spec must replay Simulation<P>'s stream
// bit for bit: same scheduler draws, same protocol rng, no extra draws.
TEST(FaultTransparency, ZeroSpecFaultyArrayMatchesPlainArrayBitForBit) {
  const std::uint32_t n = 64;
  const SilentNStateSSR proto(n);
  const auto init = silent_nstate_worst_config(n);
  Simulation<SilentNStateSSR> plain(proto, init, 4242);
  FaultySimulation<SilentNStateSSR> faulty(proto, init, 4242, FaultSpec{});
  for (int k = 0; k < 20000; ++k) {
    const AgentPair a = plain.step();
    const AgentPair b = faulty.step();
    ASSERT_EQ(a.initiator, b.initiator) << "step " << k;
    ASSERT_EQ(a.responder, b.responder) << "step " << k;
  }
  EXPECT_EQ(plain.interactions(), faulty.interactions());
  for (std::uint32_t i = 0; i < n; ++i)
    ASSERT_EQ(proto.encode(plain.states()[i]), proto.encode(faulty.states()[i]))
        << "agent " << i;
}

// Same check on a protocol whose interact() itself draws randomness (the
// fault layer must not interleave extra draws into the shared stream).
TEST(FaultTransparency, ZeroSpecFaultyArrayMatchesOnRngDrawingProtocol) {
  const Obs25SSLE proto(3);
  const auto& inits = obs25_inits();
  const auto init = inits.agents(proto, inits.default_name(), 7);
  Simulation<Obs25SSLE> plain(proto, init, 99);
  FaultySimulation<Obs25SSLE> faulty(proto, init, 99, FaultSpec{});
  plain.run(5000);
  faulty.run(5000);
  EXPECT_EQ(counts_of(proto, plain.states()),
            counts_of(proto, faulty.states()));
}

// set_faults with an all-zero spec must be a no-op on the count engines:
// the fault-free randomness stream is reproduced exactly, per strategy.
TEST(FaultTransparency, ZeroSpecBatchMatchesPlainBatchBitForBit) {
  const std::uint32_t n = 64;
  const OptimalSilentSSR proto(OptimalSilentParams::standard(n));
  const auto agents =
      optimal_silent_config(proto.params(), OsAdversary::kUniformRandom, 5);
  const auto counts = counts_of(proto, agents);
  for (BatchStrategy strategy :
       {BatchStrategy::kGeometricSkip, BatchStrategy::kMultinomial,
        BatchStrategy::kAuto}) {
    BatchSimulation<OptimalSilentSSR> plain(proto, counts, 777, strategy);
    BatchSimulation<OptimalSilentSSR> faulty(proto, counts, 777, strategy);
    faulty.set_faults(FaultSpec{});
    for (int k = 0; k < 2000; ++k) {
      const std::uint64_t a = plain.step();
      const std::uint64_t b = faulty.step();
      ASSERT_EQ(a, b) << "strategy " << to_string(strategy) << " step " << k;
      if (a == 0) break;  // silent
    }
    EXPECT_EQ(plain.interactions(), faulty.interactions())
        << to_string(strategy);
    EXPECT_EQ(plain.state_counts(), faulty.state_counts())
        << to_string(strategy);
  }
}

TEST(FaultTransparency, ZeroSpecShardedMatchesPlainShardedBitForBit) {
  const std::uint32_t n = 64;
  const SilentNStateSSR proto(n);
  const auto counts = counts_of(proto, silent_nstate_worst_config(n));
  ShardedOptions options;
  options.shards = 4;
  options.max_workers = 2;
  ShardedSimulation<SilentNStateSSR> plain(proto, counts, 31337, options);
  ShardedSimulation<SilentNStateSSR> faulty(proto, counts, 31337, options);
  faulty.set_faults(FaultSpec{});
  for (int k = 0; k < 500; ++k) {
    const std::uint64_t a = plain.step();
    const std::uint64_t b = faulty.step();
    ASSERT_EQ(a, b) << "round " << k;
    if (a == 0) break;
  }
  EXPECT_EQ(plain.interactions(), faulty.interactions());
  EXPECT_EQ(plain.state_counts(), faulty.state_counts());
}

// --- Degenerate knobs -------------------------------------------------------

// drop=1 loses every interaction: the configuration never changes, but the
// array engine still accounts the scheduled (null) slots.
TEST(FaultDegenerate, DropOneFreezesArrayConfiguration) {
  const std::uint32_t n = 32;
  const SilentNStateSSR proto(n);
  const auto init = silent_nstate_worst_config(n);
  FaultSpec spec;
  spec.drop = 1.0;
  FaultySimulation<SilentNStateSSR> sim(proto, init, 11, spec);
  sim.run(5000);
  EXPECT_EQ(sim.interactions(), 5000u);
  for (std::uint32_t i = 0; i < n; ++i)
    ASSERT_EQ(proto.encode(sim.states()[i]), proto.encode(init[i]));
}

// On the count engines drop=1 zeroes the effective interaction rate: with
// churn off nothing can ever change, which the structured paths prove and
// report as silence (step() == 0).
TEST(FaultDegenerate, DropOneIsProvableSilenceOnBatch) {
  const std::uint32_t n = 32;
  FaultSpec spec;
  spec.drop = 1.0;
  {
    const SilentNStateSSR proto(n);  // diagonal / geometric path
    const auto counts = counts_of(proto, silent_nstate_worst_config(n));
    BatchSimulation<SilentNStateSSR> sim(proto, counts, 3,
                                         BatchStrategy::kGeometricSkip);
    sim.set_faults(spec);
    EXPECT_EQ(sim.step(), 0u);
    EXPECT_EQ(sim.state_counts(), counts);
  }
  {
    const OptimalSilentSSR proto(OptimalSilentParams::standard(n));
    const auto counts = counts_of(
        proto,
        optimal_silent_config(proto.params(), OsAdversary::kUniformRandom, 9));
    for (BatchStrategy strategy :
         {BatchStrategy::kGeometricSkip, BatchStrategy::kMultinomial}) {
      BatchSimulation<OptimalSilentSSR> sim(proto, counts, 3, strategy);
      sim.set_faults(spec);
      EXPECT_EQ(sim.step(), 0u) << to_string(strategy);
      EXPECT_EQ(sim.state_counts(), counts) << to_string(strategy);
    }
  }
}

TEST(FaultDegenerate, DropOneFreezesShardedConfiguration) {
  const std::uint32_t n = 32;
  const SilentNStateSSR proto(n);
  const auto counts = counts_of(proto, silent_nstate_worst_config(n));
  ShardedOptions options;
  options.shards = 4;
  FaultSpec spec;
  spec.drop = 1.0;
  ShardedSimulation<SilentNStateSSR> sim(proto, counts, 17, options);
  sim.set_faults(spec);
  for (int k = 0; k < 5; ++k) sim.step();
  EXPECT_GT(sim.interactions(), 0u);  // null slots are still scheduled
  EXPECT_EQ(sim.state_counts(), counts);
}

// Churn is crash-reset under the fixed-n population model: whatever the
// engine, the counts always sum to exactly n.
TEST(FaultDegenerate, ChurnConservesPopulationOnEveryEngine) {
  const std::uint32_t n = 64;
  const OptimalSilentSSR proto(OptimalSilentParams::standard(n));
  const auto agents =
      optimal_silent_config(proto.params(), OsAdversary::kUniformRandom, 21);
  const auto counts = counts_of(proto, agents);
  FaultSpec spec;
  spec.churn = 4.0;  // one crash every ~16 slots at n=64: plenty of churn
  {
    FaultySimulation<OptimalSilentSSR> sim(proto, agents, 51, spec);
    bool crashed = false;
    for (int k = 0; k < 20000; ++k) {
      sim.step();
      crashed = crashed || sim.last_crashed() >= 0;
    }
    EXPECT_TRUE(crashed);
    EXPECT_EQ(total_count(counts_of(proto, sim.states())), n);
  }
  for (BatchStrategy strategy :
       {BatchStrategy::kGeometricSkip, BatchStrategy::kMultinomial}) {
    BatchSimulation<OptimalSilentSSR> sim(proto, counts, 52, strategy);
    sim.set_faults(spec);
    sim.run(20000);
    EXPECT_EQ(total_count(sim.state_counts()), n) << to_string(strategy);
  }
  {
    ShardedOptions options;
    options.shards = 4;
    ShardedSimulation<OptimalSilentSSR> sim(proto, counts, 53, options);
    sim.set_faults(spec);
    sim.run(20000);
    EXPECT_EQ(total_count(sim.state_counts()), n);
  }
}

// With churn active a silent configuration is not an absorbing state, so
// the count engines must keep making progress (crash fast-forward) instead
// of reporting step() == 0 forever.
TEST(FaultDegenerate, ChurnKeepsSteppingThroughSilence) {
  const std::uint32_t n = 32;
  const SilentNStateSSR proto(n);
  std::vector<std::uint64_t> correct(proto.num_states(), 0);
  for (std::uint32_t r = 0; r < n; ++r) correct[r] = 1;  // silent: all ranks
  FaultSpec spec;
  spec.churn = 1.0;
  BatchSimulation<SilentNStateSSR> sim(proto, correct, 5, BatchStrategy::kAuto);
  sim.set_faults(spec);
  const std::uint64_t consumed = sim.step();
  EXPECT_GT(consumed, 0u);  // fast-forwarded to the first crash
  EXPECT_EQ(total_count(sim.state_counts()), n);
}

// --- Hard errors ------------------------------------------------------------

TEST(FaultErrors, SpecValidationRejectsOutOfRangeKnobs) {
  FaultSpec spec;
  spec.drop = 1.5;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = FaultSpec{};
  spec.oneway = -0.1;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = FaultSpec{};
  spec.churn = -1.0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = FaultSpec{};
  spec.drop = 1.0;
  spec.oneway = 1.0;
  EXPECT_NO_THROW(spec.validate());
}

TEST(FaultErrors, ChurnAboveNIsRejectedByTheEngines) {
  const std::uint32_t n = 8;
  const SilentNStateSSR proto(n);
  const auto init = silent_nstate_worst_config(n);
  FaultSpec spec;
  spec.churn = 20.0;  // q = churn / n > 1: more than one crash per slot
  EXPECT_THROW(FaultySimulation<SilentNStateSSR>(proto, init, 1, spec),
               std::invalid_argument);
  BatchSimulation<SilentNStateSSR> sim(proto, counts_of(proto, init), 1);
  EXPECT_THROW(sim.set_faults(spec), std::invalid_argument);
}

TEST(FaultErrors, ChurnNeedsAChurnState) {
  const Obs25SSLE proto(3);
  const auto& inits = obs25_inits();
  FaultSpec spec;
  spec.churn = 0.5;
  EXPECT_THROW(FaultySimulation<Obs25SSLE>(
                   proto, inits.agents(proto, inits.default_name(), 1), 1,
                   spec),
               std::invalid_argument);
}

// The count-engine compilations need the protocol's declared null
// structure; on an unstructured (general-step) protocol faults are a hard
// error pointing at the array engine instead of silently running unfaulted.
TEST(FaultErrors, CountEngineFaultsNeedStructuredProtocol) {
  const Obs25SSLE proto(3);
  const auto& inits = obs25_inits();
  const auto counts = inits.counts(proto, inits.default_name(), 1);
  BatchSimulation<Obs25SSLE> sim(proto, counts, 1);
  FaultSpec spec;
  spec.drop = 0.1;
  EXPECT_THROW(sim.set_faults(spec), std::invalid_argument);
  sim.set_faults(FaultSpec{});  // all-zero stays a no-op, not an error
}

TEST(FaultErrors, ApproximateTierRejectsFaults) {
  ScenarioSpec spec;
  spec.protocol = "optimal-silent";
  spec.n = 64;
  spec.engine = "batch";
  spec.strategy = "tau";
  spec.trials = 1;
  spec.faults.drop = 0.1;
  EXPECT_THROW(run_scenario(spec), std::invalid_argument);

  spec = ScenarioSpec{};
  spec.protocol = "optimal-silent";
  spec.n = 64;
  spec.engine = "ode";
  spec.until = "ptime";
  spec.horizon_ptime = 0.05;
  spec.trials = 1;
  spec.faults.drop = 0.1;
  EXPECT_THROW(run_scenario(spec), std::invalid_argument);
}

TEST(FaultErrors, ScenarioValidatesKnobRanges) {
  ScenarioSpec spec;
  spec.protocol = "silent-nstate";
  spec.n = 8;
  spec.trials = 1;
  spec.faults.drop = 1.5;
  EXPECT_THROW(run_scenario(spec), std::invalid_argument);
}

// --- Scenario plumbing: the faulted stamp -----------------------------------

TEST(FaultScenario, FaultedRunsAreStampedWithTheirKnobs) {
  ScenarioSpec spec;
  spec.protocol = "optimal-silent";
  spec.init = "uniform-random";
  spec.n = 32;
  spec.trials = 3;
  spec.seed = 71;
  spec.faults.drop = 0.2;
  spec.faults.oneway = 0.1;

  spec.engine = "array";
  const ScenarioResult array_r = run_scenario(spec);
  EXPECT_EQ(array_r.backend, "array");
  EXPECT_TRUE(array_r.faulted);
  EXPECT_DOUBLE_EQ(array_r.faults.drop, 0.2);
  EXPECT_DOUBLE_EQ(array_r.faults.oneway, 0.1);
  EXPECT_EQ(array_r.failed, 0u);

  spec.engine = "batch";
  spec.strategy = "multinomial";
  const ScenarioResult batch_r = run_scenario(spec);
  EXPECT_EQ(batch_r.backend, "batch");
  EXPECT_TRUE(batch_r.faulted);
  EXPECT_DOUBLE_EQ(batch_r.faults.drop, 0.2);
  EXPECT_EQ(batch_r.failed, 0u);
}

TEST(FaultScenario, FaultFreeRunsAreNotStamped) {
  ScenarioSpec spec;
  spec.protocol = "silent-nstate";
  spec.n = 16;
  spec.trials = 2;
  spec.seed = 5;
  const ScenarioResult r = run_scenario(spec);
  EXPECT_FALSE(r.faulted);
  EXPECT_FALSE(r.faults.active());
}

// --- until=held: the holding-time metric ------------------------------------

// Under churn a correct configuration is eventually disrupted: every trial
// must observe the full enter-then-break cycle and report a non-negative
// holding time, on the array decorator and the count engine alike.
TEST(FaultHeld, HoldingTimeUnderChurnOnBothEngineFamilies) {
  ScenarioSpec spec;
  spec.protocol = "optimal-silent";
  spec.init = "uniform-random";
  spec.until = "held";
  spec.n = 64;
  spec.trials = 4;
  spec.seed = 81;
  spec.faults.churn = 0.01;  // ~100 ptime between crashes >> convergence

  spec.engine = "array";
  const ScenarioResult array_r = run_scenario(spec);
  EXPECT_EQ(array_r.metric, "holding_time");
  EXPECT_TRUE(array_r.faulted);
  EXPECT_EQ(array_r.failed, 0u);
  for (double v : array_r.values) EXPECT_GE(v, 0.0);

  spec.engine = "batch";
  spec.strategy = "geometric_skip";
  spec.seed = 82;
  const ScenarioResult batch_r = run_scenario(spec);
  EXPECT_EQ(batch_r.metric, "holding_time");
  EXPECT_EQ(batch_r.failed, 0u);
  for (double v : batch_r.values) EXPECT_GE(v, 0.0);
}

// From an already-correct configuration the holding time is just the wait
// for the first disruptive crash — mean 1 / churn parallel time scaled by
// the chance the victim actually breaks the ranking ((n-1)/n here).
TEST(FaultHeld, HoldingTimeFromCorrectStartIsTheFirstCrash) {
  ScenarioSpec spec;
  spec.protocol = "silent-nstate";
  spec.init = "correct-ranking";
  spec.until = "held";
  spec.engine = "batch";
  spec.n = 64;
  spec.trials = 10;
  spec.seed = 91;
  spec.faults.churn = 0.05;
  const ScenarioResult r = run_scenario(spec);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_GT(r.summary.mean, 0.0);
}

// Without faults a silent protocol holds forever: the trial must report
// failed (no holding time) rather than a made-up number. The count engine
// proves silence and exits immediately instead of burning the horizon.
TEST(FaultHeld, FaultFreeSilentRunHoldsForeverAndFails) {
  ScenarioSpec spec;
  spec.protocol = "silent-nstate";
  spec.init = "correct-ranking";
  spec.until = "held";
  spec.engine = "batch";
  spec.n = 64;
  spec.trials = 2;
  spec.seed = 95;
  const ScenarioResult r = run_scenario(spec);
  EXPECT_EQ(r.failed, r.trials);
  for (double v : r.values) EXPECT_EQ(v, -1.0);
}

// --- Cross-engine equivalence under faults ----------------------------------
//
// The acceptance check for the count-engine fault compilations: with
// faults active, every strategy must still measure the same distribution
// as the FaultySimulation ground truth. 27 simultaneous CI-overlap
// comparisons across the two suites: Bonferroni widening via
// stat_harness::family_widen.

using stat_harness::expect_overlapping_ci;
const double kFaultWiden = stat_harness::family_widen(27);

ScenarioResult run_fault_cell(const std::string& protocol,
                              const std::string& init,
                              const std::string& until, std::uint32_t n,
                              const std::string& engine,
                              const std::string& strategy, std::uint64_t seed,
                              const FaultSpec& faults) {
  ScenarioSpec spec;
  spec.protocol = protocol;
  spec.init = init;
  spec.until = until;
  spec.n = n;
  spec.engine = engine;
  spec.strategy = strategy;
  spec.trials = 30;
  spec.seed = seed;
  spec.faults = faults;
  return run_scenario(spec);
}

class FaultCrossEngine : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FaultCrossEngine, OptimalSilentStabilizationUnderDrop) {
  const std::uint32_t n = GetParam();
  // Full ranked stabilization from a uniform-random start is the strong
  // check, but at n = 512 its dense occupied-state regime makes the
  // multinomial arm minutes-slow in unoptimized builds. There the cell
  // switches to duplicate-rank collision detection — the detection
  // latency is a bare meeting time, so it carries the same 1/(1-drop)
  // dilation signal at O(1) count-engine cost.
  const bool big = n >= 512;
  const char* init = big ? "duplicate-rank" : "uniform-random";
  const char* until = big ? "detected" : "ranked";
  for (double drop : {0.1, 0.5}) {
    FaultSpec faults;
    faults.drop = drop;
    const std::uint64_t tag = static_cast<std::uint64_t>(drop * 10.0);
    const ScenarioResult array_r = run_fault_cell(
        "optimal-silent", init, until, n, "array", "auto", 61000 + n + tag,
        faults);
    EXPECT_EQ(array_r.failed, 0u);
    EXPECT_TRUE(array_r.faulted);
    for (const char* strategy :
         {"geometric_skip", "multinomial", "sharded"}) {
      const ScenarioResult r = run_fault_cell(
          "optimal-silent", init, until, n, "batch", strategy,
          62000 + n + tag, faults);
      const std::string what = std::string("optimal-silent drop=") +
                               std::to_string(drop) + " " + strategy +
                               " n=" + std::to_string(n);
      EXPECT_EQ(r.failed, 0u) << what;
      EXPECT_TRUE(r.faulted) << what;
      expect_overlapping_ci(array_r.summary, r.summary, what, kFaultWiden);
    }
  }
}

TEST_P(FaultCrossEngine, SilentNStateThinningUnderOneway) {
  const std::uint32_t n = GetParam();
  FaultSpec faults;
  faults.oneway = 0.4;
  const ScenarioResult array_r =
      run_fault_cell("silent-nstate", "duplicate-rank", "thinned", n, "array",
                     "auto", 71000 + n, faults);
  EXPECT_EQ(array_r.failed, 0u);
  EXPECT_TRUE(array_r.faulted);
  for (const char* strategy : {"geometric_skip", "multinomial", "sharded"}) {
    const ScenarioResult r =
        run_fault_cell("silent-nstate", "duplicate-rank", "thinned", n,
                       "batch", strategy, 72000 + n, faults);
    const std::string what = std::string("silent-nstate oneway ") + strategy +
                             " n=" + std::to_string(n);
    EXPECT_EQ(r.failed, 0u) << what;
    expect_overlapping_ci(array_r.summary, r.summary, what, kFaultWiden);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FaultCrossEngine,
                         ::testing::Values(8u, 64u, 512u));

}  // namespace
}  // namespace ppsim
