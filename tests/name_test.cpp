// Unit tests for packed names and rosters (Section 5.1 data structures).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "common/name.h"
#include "common/roster.h"
#include "core/rng.h"

namespace ppsim {
namespace {

TEST(Name, EmptyByDefault) {
  Name n;
  EXPECT_TRUE(n.empty());
  EXPECT_EQ(n.length(), 0u);
  EXPECT_EQ(n.to_string(), "eps");
}

TEST(Name, AppendBitsBuildsString) {
  Name n;
  n.append_bit(true);
  n.append_bit(false);
  n.append_bit(true);
  EXPECT_EQ(n.length(), 3u);
  EXPECT_EQ(n.to_string(), "101");
  EXPECT_TRUE(n.bit(0));
  EXPECT_FALSE(n.bit(1));
  EXPECT_TRUE(n.bit(2));
}

TEST(Name, FromBitsMatchesAppend) {
  const Name a = Name::from_bits(0b101, 3);
  Name b;
  b.append_bit(true);
  b.append_bit(false);
  b.append_bit(true);
  EXPECT_EQ(a, b);
}

TEST(Name, BitThrowsPastLength) {
  const Name n = Name::from_bits(0b1, 1);
  EXPECT_THROW(n.bit(1), std::out_of_range);
}

TEST(Name, ClearResets) {
  Name n = Name::from_bits(0b111, 3);
  n.clear();
  EXPECT_TRUE(n.empty());
  EXPECT_EQ(n, Name());
}

TEST(Name, LexicographicOrderEqualLengths) {
  const Name a = Name::from_bits(0b001, 3);  // "001"
  const Name b = Name::from_bits(0b010, 3);  // "010"
  const Name c = Name::from_bits(0b100, 3);  // "100"
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(a, c);
}

TEST(Name, PrefixSortsBeforeExtension) {
  const Name p = Name::from_bits(0b10, 2);    // "10"
  const Name e0 = Name::from_bits(0b100, 3);  // "100"
  const Name e1 = Name::from_bits(0b101, 3);  // "101"
  EXPECT_LT(p, e0);
  EXPECT_LT(p, e1);
  const Name eps;
  EXPECT_LT(eps, p);
}

TEST(Name, OrderMatchesStringOrder) {
  // Property: Name ordering equals std::string ordering of the bit strings.
  Rng rng(42);
  std::vector<Name> names;
  for (int i = 0; i < 200; ++i)
    names.push_back(
        Name::from_bits(rng(), static_cast<std::uint32_t>(rng.below(12))));
  for (std::size_t i = 0; i < names.size(); ++i) {
    for (std::size_t j = 0; j < names.size(); ++j) {
      const std::string si = names[i].to_string() == "eps"
                                 ? ""
                                 : names[i].to_string();
      const std::string sj = names[j].to_string() == "eps"
                                 ? ""
                                 : names[j].to_string();
      EXPECT_EQ(names[i] < names[j], si < sj)
          << si << " vs " << sj;
      EXPECT_EQ(names[i] == names[j], si == sj);
    }
  }
}

TEST(Name, FullLengthIsThreeLogTwo) {
  EXPECT_EQ(Name::full_length(2), 3u);
  EXPECT_EQ(Name::full_length(8), 9u);
  EXPECT_EQ(Name::full_length(9), 12u);  // ceil(log2 9) = 4
  EXPECT_EQ(Name::full_length(1024), 30u);
}

TEST(Name, HashSpreadsValues) {
  std::set<std::uint64_t> hashes;
  for (std::uint64_t v = 0; v < 512; ++v)
    hashes.insert(Name::from_bits(v, 9).hash());
  EXPECT_EQ(hashes.size(), 512u);  // no collisions in a tiny set
}

TEST(Name, MaxLengthEnforced) {
  Name n;
  for (std::uint32_t i = 0; i < Name::kMaxBits; ++i) n.append_bit(true);
  EXPECT_THROW(n.append_bit(true), std::length_error);
  EXPECT_THROW(Name::from_bits(0, 64), std::invalid_argument);
}

TEST(Roster, SingletonContainsOwnName) {
  const Name n = Name::from_bits(0b101, 3);
  const Roster r = Roster::singleton(n);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.contains(n));
}

TEST(Roster, InsertKeepsSortedUnique) {
  Roster r;
  const Name a = Name::from_bits(0b01, 2);
  const Name b = Name::from_bits(0b10, 2);
  r.insert(b);
  r.insert(a);
  r.insert(b);
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(std::is_sorted(r.names().begin(), r.names().end()));
}

TEST(Roster, UnionSizeWithoutMaterializing) {
  Roster a, b;
  for (std::uint64_t v : {1ull, 2ull, 3ull}) a.insert(Name::from_bits(v, 4));
  for (std::uint64_t v : {3ull, 4ull}) b.insert(Name::from_bits(v, 4));
  EXPECT_EQ(Roster::union_size(a, b), 4u);
  const Roster u = Roster::merged(a, b);
  EXPECT_EQ(u.size(), 4u);
  for (std::uint64_t v : {1ull, 2ull, 3ull, 4ull})
    EXPECT_TRUE(u.contains(Name::from_bits(v, 4)));
}

TEST(Roster, UnionSizeMatchesMergedSizeRandomized) {
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    Roster a, b;
    const auto ka = rng.below(20);
    const auto kb = rng.below(20);
    for (std::uint64_t i = 0; i < ka; ++i)
      a.insert(Name::from_bits(rng.below(32), 5));
    for (std::uint64_t i = 0; i < kb; ++i)
      b.insert(Name::from_bits(rng.below(32), 5));
    EXPECT_EQ(Roster::union_size(a, b), Roster::merged(a, b).size());
  }
}

TEST(Roster, LexicographicRankIsOneBasedPosition) {
  Roster r;
  const Name a = Name::from_bits(0b00, 2);
  const Name b = Name::from_bits(0b01, 2);
  const Name c = Name::from_bits(0b11, 2);
  r.insert(c);
  r.insert(a);
  r.insert(b);
  EXPECT_EQ(r.lexicographic_rank(a), 1u);
  EXPECT_EQ(r.lexicographic_rank(b), 2u);
  EXPECT_EQ(r.lexicographic_rank(c), 3u);
  // Defined (lower_bound position) even for absent names.
  EXPECT_EQ(r.lexicographic_rank(Name::from_bits(0b10, 2)), 3u);
}

TEST(Roster, RanksOverFullPopulationAreAPermutation) {
  Rng rng(13);
  constexpr std::uint32_t kN = 64;
  std::set<std::uint64_t> raw;
  while (raw.size() < kN) raw.insert(rng.below(1 << 18));
  Roster full;
  std::vector<Name> names;
  for (auto v : raw) {
    names.push_back(Name::from_bits(v, 18));
    full.insert(names.back());
  }
  std::set<std::uint32_t> ranks;
  for (const auto& nm : names) ranks.insert(full.lexicographic_rank(nm));
  EXPECT_EQ(ranks.size(), kN);
  EXPECT_EQ(*ranks.begin(), 1u);
  EXPECT_EQ(*ranks.rbegin(), kN);
}

}  // namespace
}  // namespace ppsim
