// Tests for the interaction-history tree (Protocols 7-8, Figure 2): graft
// semantics, lazy frame-shifted timers, simple labeling, Check-Path-
// Consistency, indirect collision detection, and safety (no false
// positives) — including step-by-step reproduction of both executions in
// Figure 2 of the paper.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "common/name.h"
#include "core/rng.h"
#include "core/scheduler.h"
#include "protocols/collision_tree.h"

namespace ppsim {
namespace {

Name nm(std::uint64_t v) { return Name::from_bits(v, 8); }

struct VisibleEdge {
  Name name;
  std::uint64_t sync;
  std::int64_t timer;  // effective, clamped at 0
};

// The logical children of the node reached by following `path` (names from
// the root, excluded) under the lazy simple-labeling filter and frame-shift
// timers — i.e. the tree as the protocol defines it.
std::vector<VisibleEdge> visible_children(const HistoryTree& tree,
                                          const std::vector<Name>& path) {
  const HistoryNode* cur = tree.root().get();
  std::vector<Name> seen = {cur->name};
  std::int64_t sigma = 0;
  for (const Name& want : path) {
    const HistoryEdge* found = nullptr;
    for (const auto& e : cur->children) {
      bool repeated = false;
      for (const Name& anc : seen)
        if (anc == e.child->name) repeated = true;
      if (repeated) continue;
      if (e.child->name == want) {
        found = &e;
        break;
      }
    }
    if (found == nullptr) return {};  // path not present
    sigma += found->shift;
    cur = found->child.get();
    seen.push_back(cur->name);
  }
  std::vector<VisibleEdge> out;
  for (const auto& e : cur->children) {
    bool repeated = false;
    for (const Name& anc : seen)
      if (anc == e.child->name) repeated = true;
    if (repeated) continue;
    VisibleEdge v;
    v.name = e.child->name;
    v.sync = e.sync;
    // e.shift applies only below e.child; the edge's own timer uses the
    // shifts accumulated on the way to `cur`.
    const std::int64_t raw =
        e.expiry + sigma - static_cast<std::int64_t>(tree.ops());
    v.timer = raw > 0 ? raw : 0;
    out.push_back(v);
  }
  return out;
}

std::optional<VisibleEdge> visible_child(const HistoryTree& tree,
                                         const std::vector<Name>& path,
                                         const Name& child) {
  for (const auto& e : visible_children(tree, path))
    if (e.name == child) return e;
  return std::nullopt;
}

CollisionDetectorParams basic_params(std::uint32_t h, std::uint32_t th = 100,
                                     bool direct = false) {
  CollisionDetectorParams p;
  p.depth_h = h;
  p.smax = 1000000;
  p.th = th;
  p.direct_check = direct;
  return p;
}

// A detector whose sync draws we control (deterministic seed per call).
std::uint64_t interact_with_sync(CollisionDetector& det, HistoryTree& a,
                                 HistoryTree& b, std::uint64_t want_sync) {
  CollisionDetectorStats det_stats;
  // Drive the rng until it would produce `want_sync`; simpler: use a detector
  // API-level approach — emulate by grafting manually. Instead we just use
  // the real call and read back the sync from the fresh edge.
  Rng rng(want_sync * 7919 + 13);
  const bool collision = det.detect_and_update(a, b, rng, det_stats);
  EXPECT_FALSE(collision);
  return a.root()->children.back().sync;
}

TEST(HistoryTree, ResetMakesSingletonRoot) {
  HistoryTree t;
  t.reset(nm(1));
  ASSERT_TRUE(t.initialized());
  EXPECT_EQ(t.root()->name, nm(1));
  EXPECT_TRUE(t.root()->children.empty());
  EXPECT_EQ(t.ops(), 0u);
}

TEST(HistoryTree, MutualGraftCreatesDepthOneEntries) {
  HistoryTree a, b;
  a.reset(nm(1));
  b.reset(nm(2));
  CollisionDetector det(basic_params(2));
  CollisionDetectorStats det_stats;
  Rng rng(5);
  ASSERT_FALSE(det.detect_and_update(a, b, rng, det_stats));
  const auto ab = visible_child(a, {}, nm(2));
  const auto ba = visible_child(b, {}, nm(1));
  ASSERT_TRUE(ab.has_value());
  ASSERT_TRUE(ba.has_value());
  EXPECT_EQ(ab->sync, ba->sync);  // shared fresh sync value
  // Timer started at TH and ticked once at the end of the interaction.
  EXPECT_EQ(ab->timer, 99);
  EXPECT_EQ(ba->timer, 99);
}

TEST(HistoryTree, RepeatMeetingReplacesDepthOneSubtree) {
  HistoryTree a, b;
  a.reset(nm(1));
  b.reset(nm(2));
  CollisionDetector det(basic_params(2));
  CollisionDetectorStats det_stats;
  Rng r1(5), r2(6);
  ASSERT_FALSE(det.detect_and_update(a, b, r1, det_stats));
  const auto first = visible_child(a, {}, nm(2))->sync;
  ASSERT_FALSE(det.detect_and_update(a, b, r2, det_stats));
  const auto children = visible_children(a, {});
  EXPECT_EQ(children.size(), 1u);  // replaced, not duplicated
  EXPECT_NE(children[0].sync, first);
}

TEST(HistoryTree, TimersAgeWithOwnerOperations) {
  HistoryTree a, b;
  a.reset(nm(1));
  b.reset(nm(2));
  CollisionDetector det(basic_params(2, /*th=*/5));
  CollisionDetectorStats det_stats;
  Rng rng(5);
  ASSERT_FALSE(det.detect_and_update(a, b, rng, det_stats));
  EXPECT_EQ(visible_child(a, {}, nm(2))->timer, 4);
  a.tick();
  a.tick();
  EXPECT_EQ(visible_child(a, {}, nm(2))->timer, 2);
  a.tick();
  a.tick();
  a.tick();
  EXPECT_EQ(visible_child(a, {}, nm(2))->timer, 0);  // clamped
  // b's copy is unaffected by a's ticks.
  EXPECT_EQ(visible_child(b, {}, nm(1))->timer, 4);
}

TEST(HistoryTree, FrameShiftTransfersTimersAcrossOwners) {
  // b is much "older" (more operations) than a; when c grafts b's tree the
  // inner timers must continue from their current effective values.
  HistoryTree a, b, c;
  a.reset(nm(1));
  b.reset(nm(2));
  c.reset(nm(3));
  CollisionDetector det(basic_params(3, /*th=*/10));
  CollisionDetectorStats det_stats;
  Rng rng(7);
  // Age b's frame by 4 before it meets anyone.
  for (int i = 0; i < 4; ++i) b.tick();
  ASSERT_FALSE(det.detect_and_update(a, b, rng, det_stats));  // a-b, timer now 9
  EXPECT_EQ(visible_child(b, {}, nm(1))->timer, 9);
  ASSERT_FALSE(det.detect_and_update(c, b, rng, det_stats));  // c grafts b's tree
  // c sees b at depth 1 (timer 9) and a at depth 2 under b. The a-edge was
  // at 9 in b's frame when grafted, then c ticked once: effective 8.
  EXPECT_EQ(visible_child(c, {}, nm(2))->timer, 9);
  const auto deep = visible_child(c, {nm(2)}, nm(1));
  ASSERT_TRUE(deep.has_value());
  EXPECT_EQ(deep->timer, 8);
  // Aging c's frame ages the transferred edge identically.
  for (int i = 0; i < 8; ++i) c.tick();
  EXPECT_EQ(visible_child(c, {nm(2)}, nm(1))->timer, 0);
}

TEST(HistoryTree, SimpleLabelingHidesOwnNameInGraftedSubtrees) {
  // Figure 2 right, step 3: after a-b meet again, b's subtree inside a
  // contains an edge back to a, which the lazy filter must hide.
  HistoryTree a, b, c;
  a.reset(nm(1));
  b.reset(nm(2));
  c.reset(nm(3));
  CollisionDetector det(basic_params(3));
  CollisionDetectorStats det_stats;
  Rng rng(11);
  ASSERT_FALSE(det.detect_and_update(a, b, rng, det_stats));
  ASSERT_FALSE(det.detect_and_update(b, c, rng, det_stats));
  ASSERT_FALSE(det.detect_and_update(a, b, rng, det_stats));
  const auto under_b = visible_children(a, {nm(2)});
  ASSERT_EQ(under_b.size(), 1u);  // only c; the a-edge is filtered
  EXPECT_EQ(under_b[0].name, nm(3));
}

TEST(HistoryTree, DepthLimitHidesDeepNodes) {
  CollisionDetectorStats det_stats;
  HistoryTree a, b, c;
  a.reset(nm(1));
  b.reset(nm(2));
  c.reset(nm(3));
  CollisionDetector det(basic_params(1));  // H = 1: depth-1 dictionary
  Rng rng(13);
  ASSERT_FALSE(det.detect_and_update(a, b, rng, det_stats));
  ASSERT_FALSE(det.detect_and_update(b, c, rng, det_stats));
  // b's tree structurally contains a and c at depth 1; fine. c's graft of
  // b's tree would put a at depth 2 — invisible at H=1.
  EXPECT_EQ(logical_node_count(c, 1), 2u);  // root + b
}

// --- Figure 2, left execution. ---
TEST(Figure2, LeftExecutionBuildsPaperTrees) {
  HistoryTree a, b, c, d;
  a.reset(nm(0xA));
  b.reset(nm(0xB));
  c.reset(nm(0xC));
  d.reset(nm(0xD));
  CollisionDetector det(basic_params(3, /*th=*/1000));
  CollisionDetectorStats det_stats;

  const auto s1 = interact_with_sync(det, a, b, 1);  // a-b
  const auto s2 = interact_with_sync(det, b, c, 2);  // b-c
  const auto s3 = interact_with_sync(det, c, d, 3);  // c-d

  // a: a -s1-> b.
  ASSERT_TRUE(visible_child(a, {}, nm(0xB)).has_value());
  EXPECT_EQ(visible_child(a, {}, nm(0xB))->sync, s1);
  // b: a(s1), c(s2).
  EXPECT_EQ(visible_child(b, {}, nm(0xA))->sync, s1);
  EXPECT_EQ(visible_child(b, {}, nm(0xC))->sync, s2);
  // c: b(s2) -> a(s1), d(s3).
  EXPECT_EQ(visible_child(c, {}, nm(0xB))->sync, s2);
  EXPECT_EQ(visible_child(c, {nm(0xB)}, nm(0xA))->sync, s1);
  EXPECT_EQ(visible_child(c, {}, nm(0xD))->sync, s3);
  // d: d -s3-> c -s2-> b -s1-> a.
  EXPECT_EQ(visible_child(d, {}, nm(0xC))->sync, s3);
  EXPECT_EQ(visible_child(d, {nm(0xC)}, nm(0xB))->sync, s2);
  EXPECT_EQ(visible_child(d, {nm(0xC), nm(0xB)}, nm(0xA))->sync, s1);

  // d's path to a checks out against a: the last edge (b-a, s1) matches a's
  // reverse suffix a -s1-> b at its first edge.
  const std::vector<Name> names = {nm(0xD), nm(0xC), nm(0xB), nm(0xA)};
  const std::vector<std::uint64_t> syncs = {0, s3, s2, s1};
  EXPECT_TRUE(det.check_path_consistency(a, names, syncs));
  // And a full detection pass between d and a reports no collision.
  Rng rng(99);
  EXPECT_FALSE(det.detect_and_update(d, a, rng, det_stats));
}

// --- Figure 2, right execution. ---
TEST(Figure2, RightExecutionConsistencyViaSecondEdge) {
  HistoryTree a, b, c, d;
  a.reset(nm(0xA));
  b.reset(nm(0xB));
  c.reset(nm(0xC));
  d.reset(nm(0xD));
  CollisionDetector det(basic_params(3, /*th=*/1000));
  CollisionDetectorStats det_stats;

  const auto s1 = interact_with_sync(det, a, b, 1);  // a-b
  const auto s2 = interact_with_sync(det, b, c, 2);  // b-c
  const auto s7 = interact_with_sync(det, a, b, 7);  // a-b again
  const auto s3 = interact_with_sync(det, c, d, 3);  // c-d
  ASSERT_NE(s7, s1);

  // a: a -s7-> b -s2-> c.
  EXPECT_EQ(visible_child(a, {}, nm(0xB))->sync, s7);
  EXPECT_EQ(visible_child(a, {nm(0xB)}, nm(0xC))->sync, s2);
  // b: a(s7) [subtree filtered], c(s2).
  EXPECT_EQ(visible_child(b, {}, nm(0xA))->sync, s7);
  EXPECT_EQ(visible_child(b, {}, nm(0xC))->sync, s2);
  EXPECT_TRUE(visible_children(b, {nm(0xA)}).empty());
  // d: d -s3-> c -s2-> b -s1-> a (built before a-b regenerated s7? No: c-d
  // came last but c's knowledge of the a-b sync is still s1).
  EXPECT_EQ(visible_child(d, {nm(0xC), nm(0xB)}, nm(0xA))->sync, s1);

  // d's path ends with the stale a-b sync s1; a's first reverse edge has s7
  // (mismatch) but the second edge b -s2-> c matches d's c-b edge.
  const std::vector<Name> names = {nm(0xD), nm(0xC), nm(0xB), nm(0xA)};
  const std::vector<std::uint64_t> syncs = {0, s3, s2, s1};
  EXPECT_TRUE(det.check_path_consistency(a, names, syncs));
  Rng rng(99);
  EXPECT_FALSE(det.detect_and_update(d, a, rng, det_stats));
}

// --- Collision detection. ---

TEST(Detection, ThirdPartyDetectsDuplicateNames) {
  // b hears about a, then meets a' (same name as a): a' cannot echo the
  // sync history, so the collision is declared (Lemma 5.6's mechanism).
  HistoryTree a, a2, b;
  a.reset(nm(0xA));
  a2.reset(nm(0xA));  // duplicate name
  b.reset(nm(0xB));
  CollisionDetector det(basic_params(2, 100, /*direct=*/false));
  CollisionDetectorStats det_stats;
  Rng rng(17);
  ASSERT_FALSE(det.detect_and_update(b, a, rng, det_stats));
  EXPECT_TRUE(det.detect_and_update(b, a2, rng, det_stats));
}

TEST(Detection, DuplicateDetectionThroughTwoHops) {
  // a-x, x-y, y-a': the path a->x->y has length 2; y meets a' with H=3.
  HistoryTree a, a2, x, y;
  a.reset(nm(0xA));
  a2.reset(nm(0xA));
  x.reset(nm(1));
  y.reset(nm(2));
  CollisionDetector det(basic_params(3, 1000, false));
  CollisionDetectorStats det_stats;
  Rng rng(19);
  ASSERT_FALSE(det.detect_and_update(a, x, rng, det_stats));
  ASSERT_FALSE(det.detect_and_update(x, y, rng, det_stats));
  EXPECT_TRUE(det.detect_and_update(y, a2, rng, det_stats));
}

TEST(Detection, TooShallowTreeCannotSeeFarCollisions) {
  // Same chain but H = 1: y's tree cannot hold the depth-2 path to a, so
  // the meeting with a' is blind (this is the time/space tradeoff).
  HistoryTree a, a2, x, y;
  a.reset(nm(0xA));
  a2.reset(nm(0xA));
  x.reset(nm(1));
  y.reset(nm(2));
  CollisionDetector det(basic_params(1, 1000, false));
  CollisionDetectorStats det_stats;
  Rng rng(23);
  ASSERT_FALSE(det.detect_and_update(a, x, rng, det_stats));
  ASSERT_FALSE(det.detect_and_update(x, y, rng, det_stats));
  EXPECT_FALSE(det.detect_and_update(y, a2, rng, det_stats));
}

TEST(Detection, ExpiredTimersSuppressDetectionPaths) {
  // The b->a path's timer expires before b meets a': no detection (line 2
  // only checks paths with all timers positive).
  HistoryTree a, a2, b;
  a.reset(nm(0xA));
  a2.reset(nm(0xA));
  b.reset(nm(0xB));
  CollisionDetector det(basic_params(2, /*th=*/3, false));
  CollisionDetectorStats det_stats;
  Rng rng(29);
  ASSERT_FALSE(det.detect_and_update(b, a, rng, det_stats));
  for (int i = 0; i < 5; ++i) b.tick();  // outlive TH
  EXPECT_FALSE(det.detect_and_update(b, a2, rng, det_stats));
}

TEST(Detection, DirectCheckCatchesEqualNamesImmediately) {
  HistoryTree a, a2;
  a.reset(nm(0xA));
  a2.reset(nm(0xA));
  CollisionDetector det(basic_params(2, 100, /*direct=*/true));
  CollisionDetectorStats det_stats;
  Rng rng(31);
  EXPECT_TRUE(det.detect_and_update(a, a2, rng, det_stats));
}

TEST(Detection, NoDirectCheckMeansBlindDirectMeeting) {
  // Faithful Protocol 7: two same-named agents meeting directly see nothing
  // (their own name cannot appear below their root).
  HistoryTree a, a2;
  a.reset(nm(0xA));
  a2.reset(nm(0xA));
  CollisionDetector det(basic_params(2, 100, /*direct=*/false));
  CollisionDetectorStats det_stats;
  Rng rng(31);
  EXPECT_FALSE(det.detect_and_update(a, a2, rng, det_stats));
}

// Safety (Lemma 5.4): from a clean start with unique names, no interaction
// pattern produces a false collision.
TEST(Detection, NoFalsePositivesFromCleanStart) {
  constexpr std::uint32_t kAgents = 8;
  for (std::uint32_t h : {1u, 2u, 4u}) {
    CollisionDetector det(basic_params(h, /*th=*/20, true));
  CollisionDetectorStats det_stats;
    std::vector<HistoryTree> trees(kAgents);
    for (std::uint32_t i = 0; i < kAgents; ++i) trees[i].reset(nm(i + 1));
    Rng rng(1000 + h);
    UniformScheduler sched(kAgents);
    for (int step = 0; step < 30000; ++step) {
      const AgentPair p = sched.next(rng);
      ASSERT_FALSE(
          det.detect_and_update(trees[p.initiator], trees[p.responder], rng, det_stats))
          << "false positive at step " << step << " H=" << h;
    }
    EXPECT_EQ(det_stats.collisions_reported, 0u);
  }
}

TEST(Digest, NeverFalseNegative) {
  Rng rng(41);
  for (int trial = 0; trial < 200; ++trial) {
    NameDigest d;
    std::vector<Name> members;
    for (int i = 0; i < 20; ++i) {
      members.push_back(Name::from_bits(rng(), 12));
      d.add(members.back());
    }
    for (const auto& m : members) EXPECT_TRUE(d.may_contain(m));
  }
}

TEST(Digest, PrunesMostAbsentNames) {
  Rng rng(43);
  NameDigest d;
  for (int i = 0; i < 8; ++i) d.add(Name::from_bits(rng(), 20));
  int hits = 0;
  constexpr int kProbes = 2000;
  for (int i = 0; i < kProbes; ++i)
    if (d.may_contain(Name::from_bits(rng(), 19))) ++hits;
  EXPECT_LT(hits, kProbes / 4);  // false-positive rate well under 25%
}

TEST(NodeCounts, LiveIsSubsetOfLogical) {
  HistoryTree a, b, c;
  a.reset(nm(1));
  b.reset(nm(2));
  c.reset(nm(3));
  CollisionDetector det(basic_params(3, /*th=*/2));
  CollisionDetectorStats det_stats;
  Rng rng(47);
  ASSERT_FALSE(det.detect_and_update(a, b, rng, det_stats));
  ASSERT_FALSE(det.detect_and_update(b, c, rng, det_stats));
  ASSERT_FALSE(det.detect_and_update(a, c, rng, det_stats));
  for (int i = 0; i < 3; ++i) a.tick();
  EXPECT_LE(live_node_count(a, 3), logical_node_count(a, 3));
  EXPECT_EQ(live_node_count(a, 3), 1u);  // everything expired; root remains
}

// --- Minimal-population / H = 1 edge cases ---------------------------------

TEST(HistoryTree, TwoAgentWorldAtHOneRegraftsInsteadOfAccumulating) {
  // n = 2, H = 1: the smallest world the protocol runs in. The only
  // possible meeting re-grafts the single root edge forever; the truncated
  // projection must see degree 1 with the age snapping back to 1.
  HistoryTree a, b;
  a.reset(nm(1));
  b.reset(nm(2));
  CollisionDetector det(basic_params(1, /*th=*/5));
  CollisionDetectorStats det_stats;
  Rng rng(59);
  for (int i = 0; i < 12; ++i) {
    ASSERT_FALSE(det.detect_and_update(a, b, rng, det_stats));
    EXPECT_EQ(live_root_degree(a), 1u);
    EXPECT_EQ(root_edge_age(a, nm(2), 5), 1);  // fresh graft every meeting
  }
  // Left alone, the lone edge ages out and the live truncation empties.
  for (int i = 0; i < 5; ++i) a.tick();
  EXPECT_EQ(live_root_degree(a), 0u);
  EXPECT_EQ(root_edge_age(a, nm(2), 5), 6);  // still recorded, just dead
}

TEST(HistoryTree, ThreeAgentWorldAtHOneTruncationTracksLiveEdges) {
  // n = 3, H = 1: the truncated shape distinguishes "met one neighbor"
  // from "met both", and edge ages follow owner operations exactly.
  HistoryTree a, b, c;
  a.reset(nm(1));
  b.reset(nm(2));
  c.reset(nm(3));
  CollisionDetector det(basic_params(1, /*th=*/100));
  CollisionDetectorStats det_stats;
  Rng rng(61);
  const auto fresh_code = truncated_shape_code(a, 1);
  ASSERT_FALSE(det.detect_and_update(a, b, rng, det_stats));
  const auto one_edge = truncated_shape_code(a, 1);
  EXPECT_NE(one_edge, fresh_code);
  ASSERT_FALSE(det.detect_and_update(a, c, rng, det_stats));
  EXPECT_NE(truncated_shape_code(a, 1), one_edge);
  EXPECT_EQ(live_root_degree(a), 2u);
  EXPECT_EQ(root_edge_age(a, nm(2), 100), 2);
  EXPECT_EQ(root_edge_age(a, nm(3), 100), 1);
  // Depth 0 never saw any of it.
  EXPECT_EQ(truncated_shape_code(a, 0), fresh_code);
}

TEST(HistoryNode, LongGraftChainsDestructSafely) {
  // Build a reference chain much deeper than any sane call stack; the
  // iterative teardown in ~HistoryNode must handle it.
  HistoryTree a, b;
  a.reset(nm(1));
  b.reset(nm(2));
  CollisionDetector det(basic_params(2, /*th=*/4));
  CollisionDetectorStats det_stats;
  Rng rng(53);
  for (int i = 0; i < 200000; ++i)
    ASSERT_FALSE(det.detect_and_update(a, b, rng, det_stats));
  // Drop both trees; the chained snapshots unwind iteratively.
  a.reset(nm(1));
  b.reset(nm(2));
  SUCCEED();
}

}  // namespace
}  // namespace ppsim
