// The interaction-graph scheduler layer (core/topology.h) and the
// run-length-compressed ring engine (core/ring_simulation.h), held to the
// repo's full statistical test bar:
//
//   * exact uniform-edge sampling on every built-in topology, chi-square
//     GOF at the stat_harness significance, including the degenerate
//     cells (line endpoints, the star hub's share, 1xK meshes, wrap
//     suppression on 2-wide tori, the n = 2 ring);
//   * the transparency contract: topology=complete is bit-identical to
//     the untopologized engines — draw for draw against
//     UniformScheduler, and metric for metric through the Scenario API
//     on every batched strategy (mirroring tests/faults_test.cpp's
//     zero-fault-spec contract for the fault layer);
//   * RingSimulation's compressed configuration against brute force:
//     state counts, leader census and active-edge weight recomputed from
//     scratch after every step must match the incremental bookkeeping;
//   * ring-ssle end to end: every adversarial initial condition elects,
//     the agent array and the compressed ring engine measure
//     statistically indistinguishable election times (CI overlap,
//     n in {8, 64, 512} x 30 seeds), and fault injection composes with
//     the topology path (knob identity + `faulted` stamp survive);
//   * strict spec parsing: unknown graphs, malformed mesh dims, bad
//     custom-graph files and inexpressible engine/topology combinations
//     are hard errors, not silent fallbacks.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "analysis/scenarios.h"
#include "core/engine.h"
#include "core/faults.h"
#include "core/ring_simulation.h"
#include "core/rng.h"
#include "core/scheduler.h"
#include "core/simulation.h"
#include "core/topology.h"
#include "init/ring_ssle_init.h"
#include "processes/epidemic.h"
#include "protocols/ring_ssle.h"
#include "stat_harness.h"

namespace ppsim {
namespace {

using stat_harness::chi2_critical;
using stat_harness::expect_matches_pmf;
using stat_harness::expect_overlapping_ci;
using stat_harness::family_widen;

// --- concept coverage -------------------------------------------------------

static_assert(RingCompressibleProtocol<RingSSLE>);
static_assert(RingCompressibleProtocol<OneWayEpidemic>);
static_assert(LeaderReportingProtocol<RingSSLE>);
static_assert(!LeaderReportingProtocol<OneWayEpidemic>);
static_assert(CountEngine<RingSimulation<RingSSLE>>);
static_assert(CountEngine<RingSimulation<OneWayEpidemic>>);
// The ring engine has exactly one strategy; it must stay invisible to the
// strategy controller (same design as RingSimulation not being sharded).
static_assert(!StrategyEngine<RingSimulation<RingSSLE>>);

// --- shape ------------------------------------------------------------------

TEST(Topology, ShapesAndDiameters) {
  EXPECT_EQ(Topology().population_size(), 0u);  // unset placeholder

  const Topology complete = Topology::complete(8);
  EXPECT_EQ(complete.edge_count(), 56u);
  EXPECT_EQ(complete.diameter(), 1u);
  EXPECT_TRUE(complete.is_complete());

  EXPECT_EQ(Topology::ring(16).edge_count(), 16u);
  EXPECT_EQ(Topology::ring(16).diameter(), 8u);
  EXPECT_EQ(Topology::ring(2).edge_count(), 2u);  // (0,1) and (1,0)
  EXPECT_EQ(Topology::line(9).edge_count(), 16u);
  EXPECT_EQ(Topology::line(9).diameter(), 8u);
  EXPECT_EQ(Topology::star(9).edge_count(), 16u);
  EXPECT_EQ(Topology::star(9).diameter(), 2u);
  EXPECT_EQ(Topology::star(2).diameter(), 1u);

  EXPECT_EQ(Topology::mesh(4, 4).edge_count(), 48u);
  EXPECT_EQ(Topology::mesh(4, 4).diameter(), 6u);
  EXPECT_EQ(Topology::mesh(1, 6).edge_count(), 10u);  // a 1xK mesh is a line
  EXPECT_EQ(Topology::mesh(1, 6).diameter(), 5u);
  EXPECT_EQ(Topology::torus(3, 5).edge_count(), 60u);
  EXPECT_EQ(Topology::torus(3, 5).diameter(), 3u);
  // A 2-wide torus dimension must NOT wrap (the wrap edge would duplicate
  // the existing mesh edge): 2x4 has 2*4 horizontal (wrapped) + 4*1
  // vertical undirected edges.
  EXPECT_EQ(Topology::torus(2, 4).edge_count(), 24u);

  for (const auto& t :
       {Topology::complete(8), Topology::ring(16), Topology::ring(2),
        Topology::line(9), Topology::star(9), Topology::mesh(4, 4),
        Topology::mesh(1, 6), Topology::torus(3, 5), Topology::torus(2, 4)}) {
    const auto edges = t.edges();
    EXPECT_EQ(edges.size(), t.edge_count()) << t.spec();
    std::map<std::pair<std::uint32_t, std::uint32_t>, int> seen;
    for (const AgentPair& e : edges) {
      EXPECT_NE(e.initiator, e.responder) << t.spec() << ": self-loop";
      EXPECT_LT(e.initiator, t.population_size()) << t.spec();
      EXPECT_LT(e.responder, t.population_size()) << t.spec();
      EXPECT_EQ((++seen[{e.initiator, e.responder}]), 1)
          << t.spec() << ": duplicate edge (" << e.initiator << ", "
          << e.responder << ")";
    }
  }
}

// --- uniform-edge sampling (chi-square GOF) ---------------------------------

// Chi-square the sampler against the uniform law over the topology's
// directed edges. Every drawn pair must be a listed edge (hard failure
// otherwise); with E >= 3 edges the shared merged-bin GOF helper applies,
// and the 2-edge degenerate (the n = 2 ring) gets a direct chi-square at
// the same significance.
void expect_uniform_edges(const Topology& t, std::uint64_t seed) {
  const auto edges = t.edges();
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> index;
  for (std::size_t k = 0; k < edges.size(); ++k)
    index[{edges[k].initiator, edges[k].responder}] = k;
  const std::uint64_t slots = 2000 * edges.size() < 100000
                                  ? 100000
                                  : 2000 * edges.size();
  Rng rng(seed);
  std::vector<std::uint64_t> samples;
  samples.reserve(slots);
  for (std::uint64_t s = 0; s < slots; ++s) {
    const AgentPair p = t.sample(rng);
    const auto it = index.find({p.initiator, p.responder});
    ASSERT_NE(it, index.end())
        << t.spec() << ": sampled (" << p.initiator << ", " << p.responder
        << "), which is not an edge";
    samples.push_back(it->second);
  }
  const double e = static_cast<double>(edges.size());
  if (edges.size() >= 3) {
    expect_matches_pmf(samples, edges.size() - 1,
                       [e](std::uint64_t) { return 1.0 / e; },
                       t.spec().c_str());
  } else {
    std::vector<double> obs(edges.size(), 0.0);
    for (std::uint64_t s : samples) obs[s] += 1.0;
    const double expected = static_cast<double>(slots) / e;
    double chi2 = 0.0;
    for (double o : obs) chi2 += (o - expected) * (o - expected) / expected;
    EXPECT_LE(chi2, chi2_critical(e - 1.0)) << t.spec();
  }
}

TEST(TopologySampling, UniformOverEdges) {
  expect_uniform_edges(Topology::complete(8), 11);
  expect_uniform_edges(Topology::ring(16), 12);
  expect_uniform_edges(Topology::line(9), 13);   // endpoints have degree 1
  expect_uniform_edges(Topology::star(9), 14);   // the hub is on every edge
  expect_uniform_edges(Topology::mesh(4, 4), 15);
  expect_uniform_edges(Topology::torus(3, 5), 16);
  expect_uniform_edges(Topology::torus(2, 4), 17);  // suppressed wrap
}

TEST(TopologySampling, DegenerateCells) {
  expect_uniform_edges(Topology::ring(2), 21);    // 2 directed edges
  expect_uniform_edges(Topology::mesh(1, 7), 22); // 1xK mesh = a line
  expect_uniform_edges(Topology::star(2), 23);
  expect_uniform_edges(Topology::line(2), 24);
}

TEST(TopologySampling, CustomGraphUniform) {
  // Directed 4-cycle plus one chord, as an explicit edge list.
  const std::vector<AgentPair> edges = {
      {0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}};
  const Topology t = Topology::custom(4, edges);
  EXPECT_EQ(t.edge_count(), 5u);
  expect_uniform_edges(t, 25);
}

// --- the transparency contract ----------------------------------------------

// topology=complete must reproduce UniformScheduler::next draw for draw:
// same rng consumption, same pairs, zero extra randomness.
TEST(CompleteTransparency, SamplerMatchesUniformScheduler) {
  const std::uint32_t n = 97;
  const Topology t = Topology::complete(n);
  Rng a(42), b(42);
  UniformScheduler sched(n);
  for (int k = 0; k < 20000; ++k) {
    const AgentPair x = t.sample(a);
    const AgentPair y = sched.next(b);
    ASSERT_EQ(x.initiator, y.initiator) << "draw " << k;
    ASSERT_EQ(x.responder, y.responder) << "draw " << k;
  }
}

// An engine built with an explicit complete topology is bit-identical to
// the 3-arg (untopologized) engine: same pair stream, same states.
TEST(CompleteTransparency, PairedStepOnAgentArray) {
  const std::uint32_t n = 64;
  const OneWayEpidemic proto(n);
  std::vector<OneWayEpidemic::State> init(n);
  init[0].infected = true;
  Simulation<OneWayEpidemic> plain(proto, init, 7);
  Simulation<OneWayEpidemic> topo(proto, init, 7, Topology::complete(n));
  for (int k = 0; k < 5000; ++k) {
    const AgentPair x = plain.step();
    const AgentPair y = topo.step();
    ASSERT_EQ(x.initiator, y.initiator) << "step " << k;
    ASSERT_EQ(x.responder, y.responder) << "step " << k;
  }
  for (std::uint32_t i = 0; i < n; ++i)
    EXPECT_EQ(plain.states()[i].infected, topo.states()[i].infected);
}

TEST(CompleteTransparency, PairedStepUnderFaults) {
  const std::uint32_t n = 64;
  FaultSpec faults;
  faults.drop = 0.3;
  faults.oneway = 0.25;
  const OneWayEpidemic proto(n);
  std::vector<OneWayEpidemic::State> init(n);
  init[0].infected = true;
  FaultySimulation<OneWayEpidemic> plain(proto, init, 9, faults);
  FaultySimulation<OneWayEpidemic> topo(proto, init, 9, faults,
                                        Topology::complete(n));
  for (int k = 0; k < 5000; ++k) {
    const AgentPair x = plain.step();
    const AgentPair y = topo.step();
    ASSERT_EQ(x.initiator, y.initiator) << "step " << k;
    ASSERT_EQ(x.responder, y.responder) << "step " << k;
  }
  for (std::uint32_t i = 0; i < n; ++i)
    EXPECT_EQ(plain.states()[i].infected, topo.states()[i].infected);
}

// Through the Scenario API: naming topology=complete must not change a
// single measured value on any engine/strategy, and the resolved record
// keeps the baseline shape (topology resolved to "complete").
TEST(CompleteTransparency, ScenarioMetricsBitIdentical) {
  for (const char* strategy :
       {"auto", "geometric_skip", "multinomial", "sharded", "tau"}) {
    ScenarioSpec spec;
    spec.protocol = "one-way-epidemic";
    spec.n = 256;
    spec.strategy = strategy;
    spec.trials = 3;
    spec.seed = 77;
    spec.threads = 1;
    ScenarioSpec with = spec;
    with.topology = "complete";
    const ScenarioResult a = run_scenario(spec);
    const ScenarioResult b = run_scenario(with);
    ASSERT_EQ(a.values.size(), b.values.size()) << strategy;
    for (std::size_t i = 0; i < a.values.size(); ++i)
      EXPECT_EQ(a.values[i], b.values[i])
          << "strategy " << strategy << ", trial " << i;
    EXPECT_EQ(a.backend, b.backend) << strategy;
    EXPECT_EQ(a.strategy, b.strategy) << strategy;
    EXPECT_EQ(b.topology, "complete") << strategy;
  }
  // Same contract on the array engine and under fault injection.
  ScenarioSpec spec;
  spec.protocol = "one-way-epidemic";
  spec.n = 128;
  spec.engine = "array";
  spec.faults.drop = 0.2;
  spec.trials = 3;
  spec.seed = 78;
  spec.threads = 1;
  ScenarioSpec with = spec;
  with.topology = "complete";
  const ScenarioResult a = run_scenario(spec);
  const ScenarioResult b = run_scenario(with);
  for (std::size_t i = 0; i < a.values.size(); ++i)
    EXPECT_EQ(a.values[i], b.values[i]) << "faulted array, trial " << i;
  EXPECT_TRUE(b.faulted);
}

// --- RingSimulation vs brute force ------------------------------------------

TEST(RingEngine, IncrementalBookkeepingMatchesBruteForce) {
  for (std::uint32_t n : {4u, 17u, 64u}) {
    const RingSSLE p(n);
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const auto init = ring_ssle_inits().agents(p, "uniform-random", seed);
      RingSimulation<RingSSLE> sim(p, init, derive_seed(seed, 99));
      for (int step = 0; step < 800; ++step) {
        if (sim.step() == 0) break;
        std::vector<RingSSLE::State> s(n);
        for (std::uint32_t i = 0; i < n; ++i) s[i] = sim.state_at(i);
        std::vector<std::uint64_t> counts(p.num_states(), 0);
        std::uint64_t leaders = 0, w = 0;
        std::uint32_t runs = 0;
        for (std::uint32_t i = 0; i < n; ++i) {
          ++counts[p.encode(s[i])];
          if (p.is_leader(s[i])) ++leaders;
          if (!p.is_null_pair(s[i], s[(i + 1) % n])) ++w;
          if (!(s[i] == s[(i + 1) % n])) ++runs;
        }
        if (runs == 0) runs = 1;  // the whole ring is one arc
        const auto& ec = sim.state_counts();
        ASSERT_EQ(ec.size(), counts.size());
        for (std::uint32_t q = 0; q < p.num_states(); ++q)
          ASSERT_EQ(ec[q], counts[q])
              << "n=" << n << " seed=" << seed << " step=" << step
              << " state " << q;
        ASSERT_EQ(sim.leader_count(), leaders)
            << "n=" << n << " seed=" << seed << " step=" << step;
        ASSERT_EQ(sim.active_weight(), w)
            << "n=" << n << " seed=" << seed << " step=" << step;
        ASSERT_EQ(sim.arc_count(), runs)
            << "n=" << n << " seed=" << seed << " step=" << step;
      }
    }
  }
}

// A one-way epidemic on the ring has exactly one active edge (the
// frontier) from the first infection to the last: the compressed engine
// must report W = 1 throughout, complete in exactly n - 1 effective
// interactions, and then prove silence.
TEST(RingEngine, EpidemicFrontierHasUnitWeight) {
  const std::uint32_t n = 64;
  const OneWayEpidemic proto(n);
  std::vector<OneWayEpidemic::State> init(n);
  init[0].infected = true;
  RingSimulation<OneWayEpidemic> sim(proto, init, 5);
  for (std::uint32_t k = 1; k < n; ++k) {
    EXPECT_EQ(sim.active_weight(), 1u) << "before infection " << k;
    ASSERT_GT(sim.step(), 0u);
    EXPECT_EQ(sim.state_counts()[1], k + 1);
  }
  EXPECT_TRUE(sim.silent());
  EXPECT_EQ(sim.active_weight(), 0u);
  EXPECT_EQ(sim.step(), 0u);  // provably stuck, no churn to revive it
  EXPECT_EQ(sim.arc_count(), 1u);
}

// --- ring-ssle end to end ---------------------------------------------------

TEST(RingSSLEProtocol, CapMustEqualPopulation) {
  EXPECT_NO_THROW(RingSSLE(8));
  EXPECT_NO_THROW(RingSSLE(8, 8));
  EXPECT_THROW(RingSSLE(8, 9), std::invalid_argument);
  EXPECT_THROW(RingSSLE(8, 7), std::invalid_argument);
  EXPECT_THROW(RingSSLE(1), std::invalid_argument);
}

TEST(RingSSLEScenario, EveryAdversarialInitElects) {
  for (const std::string& init : ring_ssle_inits().names()) {
    ScenarioSpec spec;
    spec.protocol = "ring-ssle";
    spec.n = 64;
    spec.init = init;
    spec.trials = 5;
    spec.seed = 1234;
    spec.threads = 1;
    const ScenarioResult r = run_scenario(spec);
    EXPECT_EQ(r.failed, 0u) << init;
    EXPECT_EQ(r.backend, "batch") << init;
    EXPECT_EQ(r.strategy, "ring_rle") << init;
    EXPECT_EQ(r.topology, "ring") << init;
    for (double v : r.values) EXPECT_GE(v, 0.0) << init;
  }
}

TEST(RingSSLEScenario, ArrayAndCompressedEnginesAgree) {
  // The acceptance bar: the agent array (ground truth) and the compressed
  // ring engine must measure statistically indistinguishable election
  // times at n in {8, 64, 512} over 30 seeds each.
  const std::uint32_t kSeeds = 30;
  const double widen = family_widen(3);
  for (std::uint32_t n : {8u, 64u, 512u}) {
    ScenarioSpec spec;
    spec.protocol = "ring-ssle";
    spec.n = n;
    spec.init = "uniform-random";
    spec.trials = kSeeds;
    spec.seed = 4242;
    ScenarioSpec array = spec;
    array.engine = "array";
    const ScenarioResult rle = run_scenario(spec);
    const ScenarioResult arr = run_scenario(array);
    EXPECT_EQ(rle.failed, 0u) << "n=" << n;
    EXPECT_EQ(arr.failed, 0u) << "n=" << n;
    EXPECT_EQ(rle.strategy, "ring_rle") << "n=" << n;
    EXPECT_EQ(arr.backend, "array") << "n=" << n;
    expect_overlapping_ci(arr.summary, rle.summary,
                          "ring-ssle n=" + std::to_string(n), widen);
  }
}

TEST(RingSSLEScenario, FaultsComposeWithTopology) {
  // One faults-compose cell: message drop on the ring. The `faulted`
  // stamp and the knob identity must survive the topology path on both
  // engines, and the engines must still agree under the faulted law.
  ScenarioSpec spec;
  spec.protocol = "ring-ssle";
  spec.n = 64;
  spec.init = "uniform-random";
  spec.faults.drop = 0.25;
  spec.trials = 20;
  spec.seed = 555;
  ScenarioSpec array = spec;
  array.engine = "array";
  const ScenarioResult rle = run_scenario(spec);
  const ScenarioResult arr = run_scenario(array);
  for (const ScenarioResult* r : {&rle, &arr}) {
    EXPECT_TRUE(r->faulted);
    EXPECT_EQ(r->faults.drop, 0.25);
    EXPECT_EQ(r->topology, "ring");
    EXPECT_EQ(r->failed, 0u);
  }
  expect_overlapping_ci(arr.summary, rle.summary, "ring-ssle drop=0.25",
                        family_widen(1));
}

// --- strict parsing and inexpressible specs ---------------------------------

TEST(TopologyErrors, ParseRejectsMalformedSpecs) {
  EXPECT_THROW(Topology::parse("blah", 8), std::invalid_argument);
  EXPECT_THROW(Topology::parse("mesh:3x3", 8), std::invalid_argument);
  EXPECT_THROW(Topology::parse("mesh:0x5", 8), std::invalid_argument);
  EXPECT_THROW(Topology::parse("mesh:4", 8), std::invalid_argument);
  EXPECT_THROW(Topology::parse("torus:ax3", 12), std::invalid_argument);
  EXPECT_THROW(Topology::parse("custom:/nonexistent/edges", 4),
               std::invalid_argument);
  EXPECT_THROW(Topology::parse("ring", 1), std::invalid_argument);
  EXPECT_NO_THROW(Topology::validate_spec("ring"));      // n-free check
  EXPECT_NO_THROW(Topology::validate_spec("mesh:3x3"));  // n unknown yet
  EXPECT_THROW(Topology::validate_spec("mesh:2x"), std::invalid_argument);
  EXPECT_THROW(Topology::validate_spec("grid:2x2"), std::invalid_argument);
}

TEST(TopologyErrors, CustomGraphValidation) {
  using E = std::vector<AgentPair>;
  EXPECT_THROW(Topology::custom(4, E{}), std::invalid_argument);
  EXPECT_THROW(Topology::custom(4, E{{0, 0}}), std::invalid_argument);
  EXPECT_THROW(Topology::custom(4, E{{0, 1}, {0, 1}, {1, 2}, {2, 3}}),
               std::invalid_argument);  // duplicate edge skews sampling
  EXPECT_THROW(Topology::custom(4, E{{0, 5}}), std::invalid_argument);
  EXPECT_THROW(Topology::custom(4, E{{0, 1}, {1, 2}}),
               std::invalid_argument);  // agent 3 isolated
  EXPECT_THROW(Topology::custom(4, E{{0, 1}, {1, 0}, {2, 3}, {3, 2}}),
               std::invalid_argument);  // disconnected support
  EXPECT_NO_THROW(Topology::custom(4, E{{0, 1}, {1, 2}, {2, 3}, {3, 0}}));
}

TEST(TopologyErrors, CustomGraphFile) {
  const std::string good = testing::TempDir() + "topology_test_ring4.edges";
  {
    std::ofstream out(good);
    out << "# a directed 4-cycle\n0 1\n1 2\n2 3\n3 0\n";
  }
  const Topology t = Topology::parse("custom:" + good, 4);
  EXPECT_EQ(t.edge_count(), 4u);
  EXPECT_EQ(t.spec(), "custom:" + good);
  EXPECT_THROW(Topology::parse("custom:" + good, 5),
               std::invalid_argument);  // agent 4 isolated

  const std::string bad = testing::TempDir() + "topology_test_bad.edges";
  {
    std::ofstream out(bad);
    out << "0 1 2\n";  // three tokens on an edge line
  }
  EXPECT_THROW(Topology::parse("custom:" + bad, 4), std::invalid_argument);
}

TEST(TopologyErrors, InexpressibleScenarioSpecs) {
  // ring-ssle is defined on the directed ring only.
  ScenarioSpec spec;
  spec.protocol = "ring-ssle";
  spec.n = 8;
  spec.trials = 1;
  spec.topology = "line";
  EXPECT_THROW(run_scenario(spec), std::invalid_argument);

  // engine=batch pinned on a non-ring topology is inexpressible (the
  // count kernels compile the complete graph's pair law).
  ScenarioSpec batch_line;
  batch_line.protocol = "one-way-epidemic";
  batch_line.n = 32;
  batch_line.engine = "batch";
  batch_line.topology = "line";
  batch_line.trials = 1;
  EXPECT_THROW(run_scenario(batch_line), std::invalid_argument);

  // The compressed ring path has exactly one strategy; pinning a clique
  // batching strategy on it is a contradiction, not a silent fallback.
  ScenarioSpec ring_multinomial;
  ring_multinomial.protocol = "one-way-epidemic";
  ring_multinomial.n = 32;
  ring_multinomial.topology = "ring";
  ring_multinomial.strategy = "multinomial";
  ring_multinomial.trials = 1;
  EXPECT_THROW(run_scenario(ring_multinomial), std::invalid_argument);

  // The mean-field ODE assumes complete mixing.
  ScenarioSpec ode;
  ode.protocol = "one-way-epidemic";
  ode.n = 32;
  ode.engine = "ode";
  ode.topology = "ring";
  ode.trials = 1;
  EXPECT_THROW(run_scenario(ode), std::invalid_argument);
}

// A non-ring topology on a batch-capable protocol demotes engine=auto to
// the agent array and stamps the resolved graph into the record.
TEST(TopologyRouting, AutoDemotesToArrayOffTheRing) {
  ScenarioSpec spec;
  spec.protocol = "one-way-epidemic";
  spec.n = 36;
  spec.topology = "torus:6x6";
  spec.trials = 2;
  spec.seed = 3;
  spec.threads = 1;
  const ScenarioResult r = run_scenario(spec);
  EXPECT_EQ(r.backend, "array");
  EXPECT_TRUE(r.strategy.empty());
  EXPECT_EQ(r.topology, "torus:6x6");
  EXPECT_EQ(r.failed, 0u);
}

// The ring + compressible-protocol combination routes to the compressed
// engine and agrees with the array on the epidemic completion time.
TEST(TopologyRouting, RingEpidemicCrossEngine) {
  ScenarioSpec spec;
  spec.protocol = "one-way-epidemic";
  spec.n = 256;
  spec.topology = "ring";
  spec.trials = 30;
  spec.seed = 99;
  ScenarioSpec array = spec;
  array.engine = "array";
  const ScenarioResult rle = run_scenario(spec);
  const ScenarioResult arr = run_scenario(array);
  EXPECT_EQ(rle.backend, "batch");
  EXPECT_EQ(rle.strategy, "ring_rle");
  EXPECT_EQ(arr.backend, "array");
  EXPECT_EQ(rle.failed, 0u);
  EXPECT_EQ(arr.failed, 0u);
  expect_overlapping_ci(arr.summary, rle.summary, "ring epidemic n=256",
                        family_widen(1));
}

}  // namespace
}  // namespace ppsim
