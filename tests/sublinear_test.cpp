// Tests for Sublinear-Time-SSR (Protocols 5-6, Section 5): parameter
// construction, roster/ghost/rank mechanics, the reset-and-rename cycle,
// collision handling end to end, safety after stabilization, and the
// synthetic-coin variant of Section 6.
#include <gtest/gtest.h>

#include <set>

#include "analysis/convergence.h"
#include "analysis/experiments.h"
#include "core/simulation.h"
#include "init/sublinear_init.h"
#include "protocols/leader.h"
#include "protocols/sublinear.h"

namespace ppsim {
namespace {

using State = SublinearTimeSSR::State;

SublinearParams small_params(std::uint32_t n, std::uint32_t h = 2) {
  return SublinearParams::constant_h(n, h);
}

RunOptions run_opts(const SublinearParams& p, std::uint64_t horizon_mult = 1) {
  RunOptions opts;
  // Horizon: generous multiple of n * (detection wait + reset length).
  const std::uint64_t per_epoch =
      static_cast<std::uint64_t>(p.n) * (4ull * p.th + 4ull * p.dmax + 200);
  opts.max_interactions = horizon_mult * 60ull * per_epoch + (1ull << 22);
  opts.tail_ptime = 3.0 * p.th + 10;
  return opts;
}

TEST(SublinearParams, LogTimeConfiguration) {
  const auto p = SublinearParams::log_time(256);
  EXPECT_EQ(p.depth_h, 3u * 8u);
  EXPECT_EQ(p.name_len, 24u);
  EXPECT_EQ(p.smax, 256ull * 256ull);
  EXPECT_GT(p.dmax, p.rmax);
}

TEST(SublinearParams, ConstantHConfiguration) {
  const auto p = SublinearParams::constant_h(4096, 1);
  EXPECT_EQ(p.depth_h, 1u);
  // TH = Theta(H * n^{1/(H+1)}) = Theta(sqrt(n)) = 64 * 8 + slack.
  EXPECT_NEAR(static_cast<double>(p.th), 8.0 * 64.0, 80.0);
  EXPECT_THROW(SublinearParams::constant_h(16, 0), std::invalid_argument);
}

TEST(SublinearParams, RejectsTinyPopulations) {
  EXPECT_THROW(SublinearParams::log_time(1), std::invalid_argument);
}

TEST(Sublinear, MakeCollectingEstablishesInvariant) {
  SublinearTimeSSR proto(small_params(8));
  const Name nm = Name::from_bits(0b101, 9);
  const State s = proto.make_collecting(nm);
  EXPECT_EQ(s.role, SlRole::Collecting);
  EXPECT_TRUE(s.roster.contains(nm));  // name ∈ roster (state validity)
  EXPECT_TRUE(s.tree.initialized());
  EXPECT_EQ(s.tree.own_name(), nm);
}

TEST(Sublinear, RosterUnionSpreadsOnInteraction) {
  const auto p = small_params(8);
  SublinearTimeSSR proto(p);
  SublinearTimeSSR::Counters cnt;
  Rng rng(1);
  State a = proto.make_collecting(Name::from_bits(1, p.name_len));
  State b = proto.make_collecting(Name::from_bits(2, p.name_len));
  proto.interact(a, b, rng, cnt);
  EXPECT_EQ(a.roster.size(), 2u);
  EXPECT_EQ(b.roster.size(), 2u);
  EXPECT_EQ(a.roster, b.roster);
}

TEST(Sublinear, RanksAssignedOnlyWithFullRoster) {
  const auto p = small_params(3);
  SublinearTimeSSR proto(p);
  SublinearTimeSSR::Counters cnt;
  Rng rng(1);
  State a = proto.make_collecting(Name::from_bits(1, p.name_len));
  State b = proto.make_collecting(Name::from_bits(2, p.name_len));
  State c = proto.make_collecting(Name::from_bits(4, p.name_len));
  proto.interact(a, b, rng, cnt);
  EXPECT_EQ(a.rank, 0u);  // |roster| = 2 < 3
  proto.interact(a, c, rng, cnt);
  // a and c now have all 3 names: ranks by lexicographic position.
  EXPECT_EQ(a.rank, 1u);
  EXPECT_EQ(c.rank, 3u);
  EXPECT_EQ(b.rank, 0u);  // b hasn't seen c yet
  proto.interact(b, c, rng, cnt);
  EXPECT_EQ(b.rank, 2u);
}

TEST(Sublinear, GhostRosterTriggersReset) {
  const auto p = small_params(2);
  SublinearTimeSSR proto(p);
  SublinearTimeSSR::Counters cnt;
  Rng rng(1);
  State a = proto.make_collecting(Name::from_bits(1, p.name_len));
  State b = proto.make_collecting(Name::from_bits(2, p.name_len));
  // Plant a ghost: a's roster already holds two names; union will be 3 > n.
  a.roster.insert(Name::from_bits(5, p.name_len));
  proto.interact(a, b, rng, cnt);
  EXPECT_EQ(a.role, SlRole::Resetting);
  EXPECT_EQ(b.role, SlRole::Resetting);
  EXPECT_EQ(a.resetcount, p.rmax);
  EXPECT_EQ(cnt.ghost_triggers, 1u);
}

TEST(Sublinear, EqualNamesTriggerViaDirectCheck) {
  const auto p = small_params(4);
  SublinearTimeSSR proto(p);
  SublinearTimeSSR::Counters cnt;
  Rng rng(1);
  const Name shared = Name::from_bits(3, p.name_len);
  State a = proto.make_collecting(shared);
  State b = proto.make_collecting(shared);
  proto.interact(a, b, rng, cnt);
  EXPECT_EQ(a.role, SlRole::Resetting);
  EXPECT_EQ(cnt.collision_triggers, 1u);
}

TEST(Sublinear, PropagatingAgentsClearNames) {
  const auto p = small_params(4);
  SublinearTimeSSR proto(p);
  SublinearTimeSSR::Counters cnt;
  Rng rng(1);
  State a = proto.make_collecting(Name::from_bits(1, p.name_len));
  State b;
  b.role = SlRole::Resetting;
  b.resetcount = p.rmax;
  b.name = Name::from_bits(2, p.name_len);
  proto.interact(a, b, rng, cnt);
  // b propagates (rc > 0): name cleared; a recruited and, at rc = rmax-1 > 0,
  // cleared too.
  EXPECT_TRUE(b.name.empty());
  EXPECT_EQ(a.role, SlRole::Resetting);
  EXPECT_EQ(a.resetcount, p.rmax - 1);
  EXPECT_TRUE(a.name.empty());
}

TEST(Sublinear, DormantAgentsGrowNamesBitByBit) {
  const auto p = small_params(4);
  SublinearTimeSSR proto(p);
  SublinearTimeSSR::Counters cnt;
  Rng rng(1);
  State a, b;
  for (State* s : {&a, &b}) {
    s->role = SlRole::Resetting;
    s->resetcount = 0;
    s->delaytimer = p.dmax;
  }
  const auto before_a = a.name.length();
  proto.interact(a, b, rng, cnt);
  EXPECT_EQ(a.name.length(), before_a + 1);
  EXPECT_EQ(b.name.length(), 1u);
}

TEST(Sublinear, ResetRestartsRosterAndTree) {
  const auto p = small_params(4);
  SublinearTimeSSR proto(p);
  SublinearTimeSSR::Counters cnt;
  State s;
  s.role = SlRole::Resetting;
  s.name = Name::from_bits(6, p.name_len);
  proto.reset_agent(s, cnt);
  EXPECT_EQ(s.role, SlRole::Collecting);
  EXPECT_EQ(s.roster.size(), 1u);
  EXPECT_TRUE(s.roster.contains(s.name));
  EXPECT_TRUE(s.tree.initialized());
  EXPECT_TRUE(s.tree.root()->children.empty());
}

TEST(Sublinear, RankOfIgnoresResettingAgents) {
  const auto p = small_params(4);
  SublinearTimeSSR proto(p);
  State s;
  s.role = SlRole::Resetting;
  s.rank = 3;
  EXPECT_EQ(proto.rank_of(s), 0u);
  s.role = SlRole::Collecting;
  EXPECT_EQ(proto.rank_of(s), 3u);
}

TEST(Sublinear, NeverSilent) {
  const auto p = small_params(4);
  SublinearTimeSSR proto(p);
  SublinearTimeSSR::Counters cnt;
  State a = proto.make_collecting(Name::from_bits(1, p.name_len));
  State b = proto.make_collecting(Name::from_bits(2, p.name_len));
  EXPECT_FALSE(proto.is_null_pair(a, b));
  // Even a correctly-ranked pair keeps exchanging trees.
  Rng rng(1);
  const auto root_before = a.tree.root();
  proto.interact(a, b, rng, cnt);
  EXPECT_NE(a.tree.root(), root_before);
}

// End-to-end: stabilization from a planted duplicate pair (the Lemma 5.6
// pipeline: detect -> reset -> rename -> roll call -> rank).
TEST(Sublinear, RecoversFromDuplicateNames) {
  for (std::uint32_t h : {1u, 2u}) {
    const auto p = small_params(16, h);
    SublinearTimeSSR proto(p);
    auto init = sublinear_config(p, SlAdversary::kDuplicateNames, 7 + h);
    const RunResult r =
        run_until_ranked(proto, std::move(init), 11 + h, run_opts(p));
    ASSERT_TRUE(r.stabilized) << "H=" << h;
  }
}

// The correct-ranked configuration is already stable: no resets, no breaks.
TEST(Sublinear, CorrectRankedStartStaysStable) {
  const auto p = small_params(16);
  SublinearTimeSSR proto(p);
  auto init = sublinear_config(p, SlAdversary::kCorrectRanked, 3);
  Simulation<SublinearTimeSSR> sim(proto, std::move(init), 5);
  sim.run(400000);
  EXPECT_EQ(sim.counters().collision_triggers, 0u);
  EXPECT_EQ(sim.counters().ghost_triggers, 0u);
  EXPECT_EQ(sim.counters().resets_executed, 0u);
  EXPECT_TRUE(is_correctly_ranked(sim.protocol(), sim.states()));
}

// Safety (Lemma 5.4): after the protocol stabilizes once, the trees keep
// churning but never fire a false collision over a long horizon.
TEST(Sublinear, NoFalseCollisionsAfterStabilization) {
  const auto p = small_params(12);
  SublinearTimeSSR proto(p);
  auto init = sublinear_config(p, SlAdversary::kMidReset, 17);
  Simulation<SublinearTimeSSR> sim(proto, std::move(init), 19);
  // Run until ranked.
  std::uint64_t guard = 0;
  while (!is_correctly_ranked(sim.protocol(), sim.states())) {
    sim.step();
    ASSERT_LT(++guard, 80ull * 1000 * 1000) << "never ranked";
  }
  const auto resets_at_rank = sim.counters().resets_executed;
  sim.run(2ull * 1000 * 1000);
  EXPECT_EQ(sim.counters().resets_executed, resets_at_rank);
  EXPECT_TRUE(is_correctly_ranked(sim.protocol(), sim.states()));
}

// The n = 2 corner: the paper's indirect detection has no third party; the
// direct-check rule (see DESIGN.md) must still let the population recover
// from identical names.
TEST(Sublinear, TwoAgentPopulationRecoversFromSameName) {
  const auto p = small_params(2, 1);
  SublinearTimeSSR proto(p);
  auto init = sublinear_config(p, SlAdversary::kAllSameName, 23);
  const RunResult r = run_until_ranked(proto, std::move(init), 29,
                                       run_opts(p, /*horizon_mult=*/4));
  ASSERT_TRUE(r.stabilized);
}

// --- Minimal-population edge cases (n in {2, 3}, H = 1) ---------------------

TEST(Sublinear, NameLengthFloorCoversTinyPopulations) {
  // full_length = max(3, 3 ceil(log2 n)): the floor keeps n = 2 names
  // 3 bits long (collision probability 1/8 per regeneration, not 1/2),
  // and the dormant window must leave room to regenerate every bit.
  for (std::uint32_t n : {2u, 3u}) {
    const auto p = SublinearParams::constant_h(n, 1);
    EXPECT_EQ(p.name_len, n == 2 ? 3u : 6u);
    EXPECT_GT(p.dmax, p.rmax + p.name_len);
  }
}

TEST(Sublinear, GhostRosterTriggersResetAtTwoAgentsH1) {
  // The roster-overflow rule at the smallest population: a stale third
  // name makes the union exceed n = 2, which must read as a ghost even
  // though no collision detection is possible through a third party.
  const auto p = SublinearParams::constant_h(2, 1);
  SublinearTimeSSR proto(p);
  SublinearTimeSSR::Counters cnt;
  Rng rng(67);
  State a = proto.make_collecting(Name::from_bits(1, p.name_len));
  State b = proto.make_collecting(Name::from_bits(2, p.name_len));
  a.roster.insert(Name::from_bits(5, p.name_len));  // stale ghost name
  proto.interact(a, b, rng, cnt);
  EXPECT_EQ(cnt.ghost_triggers, 1u);
  EXPECT_EQ(a.role, SlRole::Resetting);
  EXPECT_EQ(b.role, SlRole::Resetting);
  EXPECT_EQ(b.resetcount, p.rmax);
}

TEST(Sublinear, ThreeAgentPopulationRecoversAtH1) {
  // n = 3, H = 1: one duplicate pair plus a lone third agent — the
  // smallest population where indirect (third-party) detection can fire
  // at all. The full pipeline must still stabilize to ranks {1, 2, 3}.
  const auto p = SublinearParams::constant_h(3, 1);
  SublinearTimeSSR proto(p);
  auto init = sublinear_config(p, SlAdversary::kDuplicateNames, 71);
  const RunResult r = run_until_ranked(proto, std::move(init), 73,
                                       run_opts(p, /*horizon_mult=*/4));
  ASSERT_TRUE(r.stabilized);
}

// Section 6: with the synthetic coin, dormant name generation still works
// and the protocol still stabilizes (slower by a small constant factor).
TEST(Sublinear, SyntheticCoinVariantStabilizes) {
  auto p = small_params(12);
  p.use_synthetic_coin = true;
  SublinearTimeSSR proto(p);
  auto init = sublinear_config(p, SlAdversary::kDuplicateNames, 31);
  Simulation<SublinearTimeSSR> sim(proto, std::move(init), 37);
  std::uint64_t budget = run_opts(p, /*horizon_mult=*/4).max_interactions;
  while (!is_correctly_ranked(sim.protocol(), sim.states()) && budget-- > 0)
    sim.step();
  ASSERT_TRUE(is_correctly_ranked(sim.protocol(), sim.states()));
  // The duplicate pair forced a reset, whose dormant phase regenerated
  // names from harvested coin bits.
  EXPECT_GT(sim.counters().coin_bits, 0u);
  EXPECT_GT(sim.counters().resets_executed, 0u);
}

TEST(Sublinear, SyntheticCoinNamesAreUnbiased) {
  auto p = small_params(8);
  p.use_synthetic_coin = true;
  SublinearTimeSSR proto(p);
  auto init = sublinear_config(p, SlAdversary::kMidReset, 41);
  Simulation<SublinearTimeSSR> sim(proto, std::move(init), 43);
  sim.run(400000);
  // Collect bit statistics over all current names.
  std::uint64_t ones = 0, bits = 0;
  for (const auto& s : sim.states()) {
    for (std::uint32_t i = 0; i < s.name.length(); ++i) {
      ++bits;
      if (s.name.bit(i)) ++ones;
    }
  }
  if (bits >= 32) {
    const double frac = static_cast<double>(ones) / bits;
    EXPECT_GT(frac, 0.15);
    EXPECT_LT(frac, 0.85);
  }
}

// Leader-election view: once ranked, exactly one agent has rank 1.
TEST(Sublinear, RankedConfigurationHasUniqueLeader) {
  const auto p = small_params(8);
  SublinearTimeSSR proto(p);
  auto init = sublinear_config(p, SlAdversary::kCorrectRanked, 47);
  Simulation<SublinearTimeSSR> sim(proto, std::move(init), 53);
  sim.run(10000);
  EXPECT_EQ(count_leaders(sim.protocol(), sim.states()), 1u);
}

}  // namespace
}  // namespace ppsim
