// Unit tests for the bench_compare core (analysis/bench_records.h):
// record identity, loading, wall-clock gating, and — the part that guards
// the approximate tier's honesty contract — the rule that records stamped
// "approximate": true are wall-time gated like everything else but NEVER
// strict-diffed, and never silently matched against exact records of the
// same shape.
#include "analysis/bench_records.h"

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "gtest/gtest.h"

namespace ppsim::benchcmp {
namespace {

namespace fs = std::filesystem;

// Writes one BENCH_<bench>.json holding `records` (raw JSON objects).
void write_bench(const fs::path& dir, const std::string& bench,
                 const std::vector<std::string>& records) {
  fs::create_directories(dir);
  std::ofstream out(dir / ("BENCH_" + bench + ".json"));
  out << "{\"bench\": \"" << bench << "\", \"records\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i)
    out << "  " << records[i] << (i + 1 < records.size() ? "," : "") << "\n";
  out << "]}\n";
}

std::map<std::string, Record> load(const fs::path& dir) {
  std::map<std::string, Record> out;
  std::ostringstream log, err;
  EXPECT_TRUE(load_dir(dir.string(), out, false, log, err)) << err.str();
  return out;
}

fs::path fresh_dir(const std::string& leaf) {
  const fs::path dir = fs::path(testing::TempDir()) / "benchcmp" / leaf;
  fs::remove_all(dir);
  return dir;
}

// An exact record and an approximate record with identical shape fields
// must land under different identity keys: migrating a bench cell onto the
// approximate tier is a new experiment class, not a drift/regression
// against the exact history.
TEST(BenchRecords, ApproximateIsASeparateIdentityClass) {
  const fs::path base = fresh_dir("identity/base");
  const fs::path cand = fresh_dir("identity/cand");
  const std::string shape =
      "\"experiment\": \"silence\", \"backend\": \"batch\", "
      "\"strategy\": \"tau\", \"n\": 1024";
  write_bench(base, "t",
              {"{" + shape + ", \"wall_seconds\": 1.0, "
               "\"parallel_time\": 4705}"});
  write_bench(cand, "t",
              {"{" + shape + ", \"approximate\": true, \"tau_eps\": 0.05, "
               "\"wall_seconds\": 9.0, \"parallel_time\": 7087}"});

  const auto b = load(base), c = load(cand);
  ASSERT_EQ(b.size(), 1u);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_NE(b.begin()->first, c.begin()->first);
  EXPECT_FALSE(b.begin()->second.approximate());
  EXPECT_TRUE(c.begin()->second.approximate());

  CompareOptions opts;
  opts.strict = true;
  std::ostringstream out;
  const CompareStats stats = compare(b, c, opts, out);
  EXPECT_EQ(stats.compared, 0);     // no shared key -> no wall comparison
  EXPECT_EQ(stats.drift, 0);        // and certainly no drift
  EXPECT_EQ(stats.missing, 1);
  EXPECT_EQ(stats.added, 1);
  EXPECT_FALSE(stats.failed());
}

// Strict mode must flag bit-for-bit drift in exact records and must NOT
// flag value changes in approximate ones (same key: same tau_eps, same
// shape — only the sampled values moved, which the approximate tier is
// allowed to do between commits).
TEST(BenchRecords, StrictDriftExemptsApproximateRecords) {
  const fs::path base = fresh_dir("strict/base");
  const fs::path cand = fresh_dir("strict/cand");
  const std::string exact_shape =
      "\"experiment\": \"silence\", \"backend\": \"batch\", "
      "\"strategy\": \"multinomial\", \"n\": 512";
  const std::string approx_shape =
      "\"experiment\": \"silence\", \"backend\": \"batch\", "
      "\"strategy\": \"tau\", \"n\": 512, \"approximate\": true, "
      "\"tau_eps\": 0.05";
  write_bench(base, "t",
              {"{" + exact_shape + ", \"wall_seconds\": 1.0, "
               "\"interactions\": 1000, \"parallel_time\": 2.0}",
               "{" + approx_shape + ", \"wall_seconds\": 0.1, "
               "\"interactions\": 900, \"parallel_time\": 1.9}"});
  write_bench(cand, "t",
              {"{" + exact_shape + ", \"wall_seconds\": 1.0, "
               "\"interactions\": 1001, \"parallel_time\": 2.1}",
               "{" + approx_shape + ", \"wall_seconds\": 0.1, "
               "\"interactions\": 1234, \"parallel_time\": 7.7}"});

  CompareOptions opts;
  opts.strict = true;
  std::ostringstream out;
  const CompareStats stats = compare(load(base), load(cand), opts, out);
  EXPECT_EQ(stats.compared, 2);
  EXPECT_EQ(stats.drift, 2);  // interactions + parallel_time, exact only
  EXPECT_EQ(stats.approx_exempt, 1);
  EXPECT_TRUE(stats.failed());
  EXPECT_NE(out.str().find("multinomial"), std::string::npos);
  EXPECT_EQ(out.str().find("tau"), std::string::npos)
      << "approximate record leaked into drift output:\n"
      << out.str();
}

// The exemption is from strictness only: approximate records still go
// through the wall-clock regression gate.
TEST(BenchRecords, ApproximateRecordsStillWallTimeGated) {
  const fs::path base = fresh_dir("wall/base");
  const fs::path cand = fresh_dir("wall/cand");
  const std::string shape =
      "\"experiment\": \"window\", \"backend\": \"batch\", "
      "\"strategy\": \"tau\", \"n\": 1000000, \"approximate\": true, "
      "\"tau_eps\": 0.05";
  write_bench(base, "t", {"{" + shape + ", \"wall_seconds\": 1.0}"});
  write_bench(cand, "t", {"{" + shape + ", \"wall_seconds\": 3.0}"});

  CompareOptions opts;
  opts.strict = true;
  std::ostringstream out;
  const CompareStats stats = compare(load(base), load(cand), opts, out);
  EXPECT_EQ(stats.compared, 1);
  EXPECT_EQ(stats.regressions, 1);
  EXPECT_EQ(stats.drift, 0);
  EXPECT_TRUE(stats.failed());
}

// Regressions need BOTH the relative threshold and the absolute
// min_seconds floor; improvements mirror the same band.
TEST(BenchRecords, WallGateNeedsRelativeAndAbsoluteGrowth) {
  const fs::path base = fresh_dir("floor/base");
  const fs::path cand = fresh_dir("floor/cand");
  const std::string shape =
      "\"experiment\": \"smoke\", \"backend\": \"array\", \"n\": 64";
  // 3x growth but only 20ms absolute: under the 50ms floor, stays quiet.
  write_bench(base, "t", {"{" + shape + ", \"wall_seconds\": 0.01}"});
  write_bench(cand, "t", {"{" + shape + ", \"wall_seconds\": 0.03}"});

  std::ostringstream out;
  const CompareStats stats =
      compare(load(base), load(cand), CompareOptions{}, out);
  EXPECT_EQ(stats.compared, 1);
  EXPECT_EQ(stats.regressions, 0);
  EXPECT_FALSE(stats.failed());
}

// Abstracted records (count-form protocol quotients, stamped
// "abstracted": true by the scenario API) mirror the approximate
// treatment: a separate identity class from exact records of the same
// shape, exempt from --strict drift, still wall-time gated.
TEST(BenchRecords, AbstractedIsASeparateIdentityClass) {
  const fs::path base = fresh_dir("abs-identity/base");
  const fs::path cand = fresh_dir("abs-identity/cand");
  const std::string shape =
      "\"experiment\": \"detection_latency_hlog\", \"backend\": \"batch\", "
      "\"strategy\": \"geometric_skip\", \"n\": 512";
  write_bench(base, "t",
              {"{" + shape + ", \"wall_seconds\": 1.0, "
               "\"parallel_time\": 12.5}"});
  write_bench(cand, "t",
              {"{" + shape + ", \"abstracted\": true, "
               "\"wall_seconds\": 0.1, \"parallel_time\": 14.0}"});

  const auto b = load(base), c = load(cand);
  ASSERT_EQ(b.size(), 1u);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_NE(b.begin()->first, c.begin()->first);
  EXPECT_FALSE(b.begin()->second.abstracted());
  EXPECT_TRUE(c.begin()->second.abstracted());

  CompareOptions opts;
  opts.strict = true;
  std::ostringstream out;
  const CompareStats stats = compare(b, c, opts, out);
  EXPECT_EQ(stats.compared, 0);  // no shared key -> no wall comparison
  EXPECT_EQ(stats.drift, 0);
  EXPECT_EQ(stats.missing, 1);
  EXPECT_EQ(stats.added, 1);
  EXPECT_FALSE(stats.failed());
}

// Same key (both abstracted): value drift is allowed — the quotient may be
// re-tuned between commits — but the wall-clock regression gate still
// applies.
TEST(BenchRecords, StrictDriftExemptsAbstractedRecordsButWallGates) {
  const fs::path base = fresh_dir("abs-strict/base");
  const fs::path cand = fresh_dir("abs-strict/cand");
  const std::string shape =
      "\"experiment\": \"detection_latency_hlog\", \"backend\": \"batch\", "
      "\"strategy\": \"multinomial\", \"n\": 1000000, \"abstracted\": true";
  write_bench(base, "t",
              {"{" + shape + ", \"wall_seconds\": 1.0, "
               "\"interactions\": 1000, \"parallel_time\": 2.0}"});
  write_bench(cand, "t",
              {"{" + shape + ", \"wall_seconds\": 3.0, "
               "\"interactions\": 1234, \"parallel_time\": 7.7}"});

  CompareOptions opts;
  opts.strict = true;
  std::ostringstream out;
  const CompareStats stats = compare(load(base), load(cand), opts, out);
  EXPECT_EQ(stats.compared, 1);
  EXPECT_EQ(stats.drift, 0);
  EXPECT_EQ(stats.abstracted_exempt, 1);
  EXPECT_EQ(stats.regressions, 1);  // 3x wall growth still fails the gate
  EXPECT_TRUE(stats.failed());
}

// A record can be both approximate and abstracted (count-form quotient run
// under tau); the approximate exemption fires first and the record is
// counted once.
TEST(BenchRecords, ApproximateAndAbstractedStack) {
  const fs::path base = fresh_dir("abs-both/base");
  const fs::path cand = fresh_dir("abs-both/cand");
  const std::string shape =
      "\"experiment\": \"drain\", \"backend\": \"batch\", "
      "\"strategy\": \"tau\", \"n\": 4096, \"approximate\": true, "
      "\"tau_eps\": 0.05, \"abstracted\": true";
  write_bench(base, "t",
              {"{" + shape + ", \"wall_seconds\": 0.5, "
               "\"interactions\": 100}"});
  write_bench(cand, "t",
              {"{" + shape + ", \"wall_seconds\": 0.5, "
               "\"interactions\": 999}"});

  CompareOptions opts;
  opts.strict = true;
  std::ostringstream out;
  const CompareStats stats = compare(load(base), load(cand), opts, out);
  EXPECT_EQ(stats.compared, 1);
  EXPECT_EQ(stats.drift, 0);
  EXPECT_EQ(stats.approx_exempt, 1);
  EXPECT_EQ(stats.abstracted_exempt, 0);
  EXPECT_FALSE(stats.failed());
}

// A faulted record (fault injection, stamped "faulted": true + knobs) is a
// separate identity class from its fault-free twin and from a different
// knob setting: a bench cell gaining a drop rate must never silently diff
// against the reliable-scheduler history.
TEST(BenchRecords, FaultedIsASeparateIdentityClass) {
  const fs::path base = fresh_dir("fault-identity/base");
  const fs::path cand = fresh_dir("fault-identity/cand");
  const std::string shape =
      "\"experiment\": \"drop_curve\", \"backend\": \"batch\", "
      "\"strategy\": \"multinomial\", \"n\": 1024";
  write_bench(base, "t",
              {"{" + shape + ", \"wall_seconds\": 1.0, "
               "\"parallel_time\": 12.0}",
               "{" + shape + ", \"faulted\": true, \"fault_drop\": 0.1, "
               "\"fault_oneway\": 0, \"fault_churn\": 0, "
               "\"wall_seconds\": 1.1, \"parallel_time\": 13.3}"});
  write_bench(cand, "t",
              {"{" + shape + ", \"faulted\": true, \"fault_drop\": 0.5, "
               "\"fault_oneway\": 0, \"fault_churn\": 0, "
               "\"wall_seconds\": 1.9, \"parallel_time\": 24.0}"});

  const auto b = load(base), c = load(cand);
  ASSERT_EQ(b.size(), 2u);
  ASSERT_EQ(c.size(), 1u);
  // drop=0.5 matches neither the fault-free record nor the drop=0.1 one.
  EXPECT_EQ(b.find(c.begin()->first), b.end());

  std::ostringstream out;
  const CompareStats stats = compare(b, c, CompareOptions{}, out);
  EXPECT_EQ(stats.compared, 0);
  EXPECT_EQ(stats.missing, 2);
  EXPECT_EQ(stats.added, 1);
  EXPECT_FALSE(stats.failed());
}

// Faulted records get NO strict exemption: seeded faults come from the
// engines' deterministic streams, so same code + same seeds reproduce a
// faulted run bit for bit — drift there fails --strict like any exact
// record.
TEST(BenchRecords, StrictDriftStillAppliesToFaultedRecords) {
  const fs::path base = fresh_dir("fault-strict/base");
  const fs::path cand = fresh_dir("fault-strict/cand");
  const std::string shape =
      "\"experiment\": \"drop_curve\", \"backend\": \"batch\", "
      "\"strategy\": \"multinomial\", \"n\": 4096, \"faulted\": true, "
      "\"fault_drop\": 0.5, \"fault_oneway\": 0, \"fault_churn\": 0";
  write_bench(base, "t",
              {"{" + shape + ", \"wall_seconds\": 1.0, "
               "\"interactions\": 1000, \"parallel_time\": 2.0}"});
  write_bench(cand, "t",
              {"{" + shape + ", \"wall_seconds\": 1.0, "
               "\"interactions\": 1001, \"parallel_time\": 2.1}"});

  CompareOptions opts;
  opts.strict = true;
  std::ostringstream out;
  const CompareStats stats = compare(load(base), load(cand), opts, out);
  EXPECT_EQ(stats.compared, 1);
  EXPECT_EQ(stats.drift, 2);  // interactions + parallel_time both moved
  EXPECT_EQ(stats.approx_exempt, 0);
  EXPECT_EQ(stats.abstracted_exempt, 0);
  EXPECT_TRUE(stats.failed());
}

// Booleans load as 0/1 metrics and repeated identical identities get
// distinct occurrence indices (regression guard for the loader).
TEST(BenchRecords, LoaderKeepsBoolsAndOccurrenceIndices) {
  const fs::path dir = fresh_dir("loader");
  const std::string shape =
      "\"experiment\": \"rep\", \"backend\": \"batch\", "
      "\"strategy\": \"tau\", \"n\": 8, \"approximate\": true, "
      "\"tau_eps\": 0.01";
  write_bench(dir, "t",
              {"{" + shape + ", \"wall_seconds\": 0.5}",
               "{" + shape + ", \"wall_seconds\": 0.6}"});
  const auto recs = load(dir);
  ASSERT_EQ(recs.size(), 2u);
  for (const auto& [key, rec] : recs) {
    EXPECT_TRUE(rec.approximate());
    EXPECT_EQ(rec.metrics.at("approximate"), 1.0);
    EXPECT_EQ(rec.metrics.at("tau_eps"), 0.01);
    EXPECT_NE(key.find("|#"), std::string::npos);
  }
}

}  // namespace
}  // namespace ppsim::benchcmp
