// Tests for the measurement harness itself (analysis/convergence.h), the
// copy-on-write roster fast paths, and the history-tree dead-edge pruning
// window — the three engineering layers the benchmarks lean on.
#include <gtest/gtest.h>

#include "analysis/convergence.h"
#include "common/roster.h"
#include "core/simulation.h"
#include "init/silent_nstate_init.h"
#include "init/sublinear_init.h"
#include "protocols/collision_tree.h"
#include "protocols/silent_nstate.h"
#include "protocols/sublinear.h"

namespace ppsim {
namespace {

TEST(Convergence, RequiresHorizon) {
  SilentNStateSSR proto(4);
  RunOptions opts;  // max_interactions unset
  EXPECT_THROW(run_until_ranked(proto, silent_nstate_random_config(4, 1), 2,
                                opts),
               std::invalid_argument);
}

TEST(Convergence, ReportsFailureWhenHorizonTooSmall) {
  constexpr std::uint32_t kN = 32;
  SilentNStateSSR proto(kN);
  RunOptions opts;
  opts.max_interactions = 10;  // hopeless
  const RunResult r = run_until_ranked(
      proto, silent_nstate_worst_config(kN), 3, opts);
  EXPECT_FALSE(r.stabilized);
  EXPECT_EQ(r.interactions, 10u);
  EXPECT_LT(r.stabilization_ptime, 0);
}

TEST(Convergence, FirstCorrectCanPrecedeStabilization) {
  // A protocol that reaches a permutation, breaks it, and re-reaches it:
  // first_correct < stabilization and correctness_breaks > 0.
  struct FlickerProtocol {
    struct State {
      std::uint32_t rank = 0;
      bool flickers = false;
      std::uint32_t phase = 0;
    };
    std::uint32_t n = 3;
    std::uint32_t population_size() const { return n; }
    void interact(State& a, State&, Rng&) const {
      // The flickering agent briefly duplicates rank 2, then settles at 1.
      if (a.flickers && a.phase < 3) {
        ++a.phase;
        a.rank = a.phase == 1 ? 2 : 1;
      }
    }
    std::uint32_t rank_of(const State& s) const { return s.rank; }
  };
  FlickerProtocol proto;
  std::vector<FlickerProtocol::State> init(3);
  init[0].rank = 1;
  init[0].flickers = true;
  init[1].rank = 2;
  init[2].rank = 3;
  RunOptions opts;
  opts.max_interactions = 100000;
  opts.tail_ptime = 5.0;
  const RunResult r = run_until_ranked(proto, init, 9, opts);
  ASSERT_TRUE(r.stabilized);
  EXPECT_GE(r.correctness_breaks, 1u);
  EXPECT_LT(r.first_correct_ptime, r.stabilization_ptime);
}

TEST(Convergence, TailWindowDelaysVerdictOnly) {
  constexpr std::uint32_t kN = 8;
  SilentNStateSSR proto(kN);
  std::vector<SilentNStateSSR::State> cfg(kN);
  for (std::uint32_t i = 0; i < kN; ++i) cfg[i].rank = i;
  RunOptions with_tail;
  with_tail.max_interactions = 100000;
  with_tail.tail_ptime = 20.0;
  const RunResult r = run_until_ranked(proto, cfg, 1, with_tail);
  ASSERT_TRUE(r.stabilized);
  EXPECT_DOUBLE_EQ(r.stabilization_ptime, 0.0);  // correct from the start
  EXPECT_GE(r.interactions, 20u * kN);           // but verified over the tail
}

TEST(RosterCow, MergeAdoptsSupersetStorage) {
  Roster a;
  for (std::uint64_t v : {1ull, 2ull, 3ull}) a.insert(Name::from_bits(v, 5));
  Roster b;
  b.insert(Name::from_bits(2, 5));
  const Roster u = Roster::merged(a, b);
  EXPECT_TRUE(u.shares_storage_with(a));  // a already contains b
}

TEST(RosterCow, EqualContentsConvergeToOneStorage) {
  Roster a, b;
  for (std::uint64_t v : {4ull, 9ull}) {
    a.insert(Name::from_bits(v, 5));
    b.insert(Name::from_bits(v, 5));
  }
  EXPECT_FALSE(a.shares_storage_with(b));
  const Roster u = Roster::merged(a, b);
  EXPECT_TRUE(u.shares_storage_with(a) || u.shares_storage_with(b));
}

TEST(RosterCow, SharedStorageUnionIsExact) {
  Roster a;
  for (std::uint64_t v = 0; v < 20; ++v) a.insert(Name::from_bits(v, 6));
  const Roster b = a;
  EXPECT_TRUE(b.shares_storage_with(a));
  EXPECT_EQ(Roster::union_size(a, b), 20u);
  EXPECT_TRUE(Roster::merged(a, b).shares_storage_with(a));
}

TEST(RosterCow, InsertDoesNotAliasOtherCopies) {
  Roster a;
  a.insert(Name::from_bits(1, 5));
  Roster b = a;
  b.insert(Name::from_bits(2, 5));
  EXPECT_EQ(a.size(), 1u);  // copy-on-write: a unchanged
  EXPECT_EQ(b.size(), 2u);
}

// In a full protocol run, rosters converge to shared storage population-wide
// (the O(1) steady-state fast path).
TEST(RosterCow, PopulationConvergesToSharedStorage) {
  const auto p = SublinearParams::constant_h(16, 1);
  SublinearTimeSSR proto(p);
  auto init = sublinear_config(p, SlAdversary::kCorrectRanked, 3);
  Simulation<SublinearTimeSSR> sim(proto, std::move(init), 5);
  sim.run(50000);
  std::uint32_t shared = 0;
  for (const auto& s : sim.states())
    if (s.roster.shares_storage_with(sim.states()[0].roster)) ++shared;
  EXPECT_EQ(shared, 16u);
}

TEST(Pruning, LongDeadRootEdgesAreDropped) {
  CollisionDetectorParams params;
  params.depth_h = 2;
  params.smax = 1 << 16;
  params.th = 4;
  params.prune_window = 10;
  CollisionDetector det(params);
  CollisionDetectorStats det_stats;
  HistoryTree a, b, c;
  a.reset(Name::from_bits(1, 8));
  b.reset(Name::from_bits(2, 8));
  c.reset(Name::from_bits(3, 8));
  Rng rng(1);
  ASSERT_FALSE(det.detect_and_update(a, b, rng, det_stats));
  EXPECT_EQ(a.root()->children.size(), 1u);
  // Age a far beyond th + prune_window, then meet c: the b edge (expired
  // for > prune_window) must be pruned at the graft.
  for (int i = 0; i < 40; ++i) a.tick();
  ASSERT_FALSE(det.detect_and_update(a, c, rng, det_stats));
  ASSERT_EQ(a.root()->children.size(), 1u);
  EXPECT_EQ(a.root()->children[0].child->name, Name::from_bits(3, 8));
}

TEST(Pruning, RecentlyDeadEdgesSurviveAsVerificationMaterial) {
  CollisionDetectorParams params;
  params.depth_h = 2;
  params.smax = 1 << 16;
  params.th = 4;
  params.prune_window = 100;
  CollisionDetector det(params);
  CollisionDetectorStats det_stats;
  HistoryTree a, b, c;
  a.reset(Name::from_bits(1, 8));
  b.reset(Name::from_bits(2, 8));
  c.reset(Name::from_bits(3, 8));
  Rng rng(1);
  ASSERT_FALSE(det.detect_and_update(a, b, rng, det_stats));
  for (int i = 0; i < 20; ++i) a.tick();  // dead (>th) but inside window
  ASSERT_FALSE(det.detect_and_update(a, c, rng, det_stats));
  EXPECT_EQ(a.root()->children.size(), 2u);
}

TEST(Pruning, ZeroWindowKeepsEverything) {
  CollisionDetectorParams params;
  params.depth_h = 2;
  params.smax = 1 << 16;
  params.th = 2;
  params.prune_window = 0;
  CollisionDetector det(params);
  CollisionDetectorStats det_stats;
  HistoryTree a, b, c;
  a.reset(Name::from_bits(1, 8));
  b.reset(Name::from_bits(2, 8));
  c.reset(Name::from_bits(3, 8));
  Rng rng(1);
  ASSERT_FALSE(det.detect_and_update(a, b, rng, det_stats));
  for (int i = 0; i < 1000; ++i) a.tick();
  ASSERT_FALSE(det.detect_and_update(a, c, rng, det_stats));
  EXPECT_EQ(a.root()->children.size(), 2u);
}

// The pruning window must not break stability: a stabilized population with
// aggressive churn keeps its ranking (no false positives from pruning).
TEST(Pruning, StabilityPreservedUnderPruning) {
  const auto p = SublinearParams::constant_h(12, 2);  // prune_window on
  SublinearTimeSSR proto(p);
  auto init = sublinear_config(p, SlAdversary::kCorrectRanked, 11);
  Simulation<SublinearTimeSSR> sim(proto, std::move(init), 13);
  sim.run(500000);
  EXPECT_EQ(sim.counters().collision_triggers, 0u);
  EXPECT_EQ(sim.counters().resets_executed, 0u);
}

}  // namespace
}  // namespace ppsim
