// Statistical exactness tests for core/discrete_samplers.h.
//
// Every sampler is compared against its closed-form pmf with a chi-square
// goodness-of-fit test at significance ~1e-3 (Wilson-Hilferty critical
// value), on fixed seeds so the suite is deterministic. The binomial cases
// straddle the inversion/BTPE dispatch boundary n * min(p, 1-p) = 10 from
// both sides, and the hypergeometric cases cover all three branches —
// sequential inversion (sample < 10), mode-centered two-sided inversion
// (sd <= 32), HRUA (sd > 32) — straddling *both* dispatch boundaries from
// both sides, plus the large-sample reflection. The shard
// partition (sample_shard_partition, the sharded engine's per-round split)
// is checked category-by-category: every shard's marginal — first drawn,
// chained, and the remainder — must match the closed-form hypergeometric
// of its size.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <stdexcept>
#include <vector>

#include "core/discrete_samplers.h"
#include "core/rng.h"
#include "stat_harness.h"

namespace ppsim {
namespace {

using stat_harness::chi2_critical;
using stat_harness::expect_matches_pmf;

double log_choose(double n, double k) {
  return log_gamma(n + 1.0) - log_gamma(k + 1.0) - log_gamma(n - k + 1.0);
}

double binomial_pmf(std::uint64_t n, double p, std::uint64_t k) {
  if (p == 0.0) return k == 0 ? 1.0 : 0.0;
  if (p == 1.0) return k == n ? 1.0 : 0.0;
  const double nd = static_cast<double>(n);
  const double kd = static_cast<double>(k);
  return std::exp(log_choose(nd, kd) + kd * std::log(p) +
                  (nd - kd) * std::log1p(-p));
}

double hypergeometric_pmf(std::uint64_t good, std::uint64_t bad,
                          std::uint64_t sample, std::uint64_t k) {
  if (k > good || k > sample || sample - k > bad) return 0.0;
  const double g = static_cast<double>(good);
  const double b = static_cast<double>(bad);
  const double s = static_cast<double>(sample);
  const double kd = static_cast<double>(k);
  return std::exp(log_choose(g, kd) + log_choose(b, s - kd) -
                  log_choose(g + b, s));
}

// --- log_gamma --------------------------------------------------------------

TEST(LogGamma, MatchesStdLgamma) {
  for (double x : {0.5, 1.0, 1.5, 2.0, 3.25, 7.0, 7.5, 10.0, 123.4, 1e4,
                   3.5e7}) {
    const double expect = std::lgamma(x);
    const double got = log_gamma(x);
    EXPECT_NEAR(got, expect, 1e-10 * std::max(1.0, std::fabs(expect)))
        << "x = " << x;
  }
}

// --- binomial ---------------------------------------------------------------

TEST(Binomial, EdgeCases) {
  Rng rng(1);
  EXPECT_EQ(sample_binomial(rng, 0, 0.3), 0u);
  EXPECT_EQ(sample_binomial(rng, 100, 0.0), 0u);
  EXPECT_EQ(sample_binomial(rng, 100, 1.0), 100u);
  EXPECT_THROW(sample_binomial(rng, 10, -0.1), std::invalid_argument);
  EXPECT_THROW(sample_binomial(rng, 10, 1.1), std::invalid_argument);
  EXPECT_EQ(sample_binomial(rng, 1, 0.5) <= 1, true);
}

struct BinomialCase {
  std::uint64_t n;
  double p;
  const char* label;
};

class BinomialPmf : public ::testing::TestWithParam<BinomialCase> {};

TEST_P(BinomialPmf, ChiSquareAgainstExactPmf) {
  const auto& c = GetParam();
  Rng rng(0xb1a5 + c.n);
  const std::uint32_t trials = 200'000;
  std::vector<std::uint64_t> xs(trials);
  for (auto& x : xs) x = sample_binomial(rng, c.n, c.p);
  expect_matches_pmf(
      xs, c.n, [&](std::uint64_t k) { return binomial_pmf(c.n, c.p, k); },
      c.label);
}

INSTANTIATE_TEST_SUITE_P(
    Branches, BinomialPmf,
    ::testing::Values(
        // Inversion branch, small mean.
        BinomialCase{25, 0.3, "inversion n=25 p=0.3"},
        // Boundary: n * p = 9.96 stays on inversion...
        BinomialCase{119, 0.0837, "inversion boundary np=9.96"},
        // ...and n * p = 10.2 crosses into BTPE.
        BinomialCase{120, 0.085, "btpe boundary np=10.2"},
        // Deep BTPE.
        BinomialCase{1000, 0.37, "btpe n=1000 p=0.37"},
        // p > 1/2: the reflected inversion branch (n q = 6.8).
        BinomialCase{40, 0.83, "inversion reflected n=40 p=0.83"},
        // p > 1/2 reflected BTPE.
        BinomialCase{500, 0.9, "btpe reflected n=500 p=0.9"},
        // Symmetric center.
        BinomialCase{64, 0.5, "btpe n=64 p=0.5"}));

TEST(Binomial, LargeNMeanAndVariance) {
  Rng rng(7);
  const std::uint64_t n = 1'000'000;
  const double p = 0.3;
  const std::uint32_t trials = 20'000;
  double sum = 0.0, sum2 = 0.0;
  for (std::uint32_t i = 0; i < trials; ++i) {
    const double x = static_cast<double>(sample_binomial(rng, n, p));
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / trials;
  const double var = sum2 / trials - mean * mean;
  const double expect_mean = static_cast<double>(n) * p;
  const double expect_var = expect_mean * (1.0 - p);
  const double se_mean = std::sqrt(expect_var / trials);
  EXPECT_NEAR(mean, expect_mean, 5.0 * se_mean);
  EXPECT_NEAR(var, expect_var, 0.05 * expect_var);
}

// --- hypergeometric ---------------------------------------------------------

TEST(Hypergeometric, EdgeCases) {
  Rng rng(2);
  EXPECT_EQ(sample_hypergeometric(rng, 5, 5, 0), 0u);
  EXPECT_EQ(sample_hypergeometric(rng, 0, 9, 4), 0u);
  EXPECT_EQ(sample_hypergeometric(rng, 9, 0, 4), 4u);
  EXPECT_EQ(sample_hypergeometric(rng, 6, 4, 10), 6u);
  EXPECT_THROW(sample_hypergeometric(rng, 3, 3, 7), std::invalid_argument);
}

struct HyperCase {
  std::uint64_t good, bad, sample;
  const char* label;
};

class HypergeometricPmf : public ::testing::TestWithParam<HyperCase> {};

TEST_P(HypergeometricPmf, ChiSquareAgainstExactPmf) {
  const auto& c = GetParam();
  Rng rng(0x9e0 + c.good * 31 + c.sample);
  const std::uint32_t trials = 200'000;
  std::vector<std::uint64_t> xs(trials);
  for (auto& x : xs) x = sample_hypergeometric(rng, c.good, c.bad, c.sample);
  const std::uint64_t hi = c.good < c.sample ? c.good : c.sample;
  expect_matches_pmf(
      xs, hi,
      [&](std::uint64_t k) {
        return hypergeometric_pmf(c.good, c.bad, c.sample, k);
      },
      c.label);
}

INSTANTIATE_TEST_SUITE_P(
    Branches, HypergeometricPmf,
    ::testing::Values(
        // Sequential-inversion branch (sample < 10).
        HyperCase{7, 9, 5, "hyp good=7 bad=9 sample=5"},
        HyperCase{40, 3, 6, "hyp minority bad"},
        // First dispatch boundary from both sides: sample = 9 stays on
        // sequential inversion, sample = 10 crosses into two-sided.
        HyperCase{30, 40, 9, "hyp boundary sample=9"},
        HyperCase{30, 40, 10, "two-sided boundary sample=10"},
        // Two-sided branch (10 <= sample, sd <= 32).
        HyperCase{120, 200, 90, "two-sided 120/200/90"},
        HyperCase{60, 30, 40, "two-sided good majority"},
        HyperCase{2000, 2000, 400, "two-sided symmetric 2000/2000/400"},
        // Reflection: sample > popsize/2 (recursed sample lands two-sided).
        HyperCase{50, 40, 70, "reflected 50/40/70"},
        // Large population, batch-sized draw (the engine's regime;
        // sd ~ 5.3 => two-sided).
        HyperCase{5000, 95000, 600, "two-sided 5000/95000/600"},
        // Second dispatch boundary from both sides: sd ~ 31.7 stays on
        // two-sided, sd ~ 32.4 crosses into HRUA.
        HyperCase{100000, 100000, 4100, "two-sided sd just under cutoff"},
        HyperCase{100000, 100000, 4300, "hrua sd just over cutoff"},
        // Deep HRUA (sd ~ 38; larger populations overflow the reference
        // pmf's log_gamma accuracy, not the sampler's).
        HyperCase{150000, 150000, 6000, "hrua deep 150k/150k/6k"}));

// --- poisson ----------------------------------------------------------------

double poisson_pmf(double mean, std::uint64_t k) {
  if (mean == 0.0) return k == 0 ? 1.0 : 0.0;
  const double kd = static_cast<double>(k);
  return std::exp(kd * std::log(mean) - mean - log_gamma(kd + 1.0));
}

TEST(Poisson, EdgeCases) {
  Rng rng(3);
  EXPECT_EQ(sample_poisson(rng, 0.0), 0u);
  EXPECT_THROW(sample_poisson(rng, -0.5), std::invalid_argument);
  EXPECT_THROW(sample_poisson(rng, std::nan("")), std::invalid_argument);
  EXPECT_THROW(sample_poisson(rng, std::numeric_limits<double>::infinity()),
               std::invalid_argument);
}

struct PoissonCase {
  double mean;
  const char* label;
};

class PoissonPmf : public ::testing::TestWithParam<PoissonCase> {};

TEST_P(PoissonPmf, ChiSquareAgainstExactPmf) {
  const auto& c = GetParam();
  Rng rng(0x9015 + static_cast<std::uint64_t>(c.mean * 64.0));
  const std::uint32_t trials = 200'000;
  std::vector<std::uint64_t> xs(trials);
  for (auto& x : xs) x = sample_poisson(rng, c.mean);
  // Truncate the (infinite) support far enough out that the missing tail
  // is < 1e-9 of the mass and a 200k-trial sample cannot plausibly land
  // beyond it.
  const std::uint64_t hi = static_cast<std::uint64_t>(
      c.mean + 14.0 * std::sqrt(c.mean) + 30.0);
  expect_matches_pmf(
      xs, hi, [&](std::uint64_t k) { return poisson_pmf(c.mean, k); },
      c.label);
}

INSTANTIATE_TEST_SUITE_P(
    Branches, PoissonPmf,
    ::testing::Values(
        // Inversion branch: tiny and moderate means (the tau engine's
        // per-category regime for rare interaction categories).
        PoissonCase{0.4, "inversion mean=0.4"},
        PoissonCase{3.2, "inversion mean=3.2"},
        // Dispatch boundary from both sides: mean 9.9 stays on inversion,
        // 10.1 crosses into PTRS.
        PoissonCase{9.9, "inversion boundary mean=9.9"},
        PoissonCase{10.1, "ptrs boundary mean=10.1"},
        // Deep PTRS.
        PoissonCase{40.0, "ptrs mean=40"},
        PoissonCase{320.0, "ptrs mean=320"}));

TEST(Poisson, LargeMeanAndVariance) {
  Rng rng(8);
  const double mean = 50'000.0;
  const std::uint32_t trials = 20'000;
  double sum = 0.0, sum2 = 0.0;
  for (std::uint32_t i = 0; i < trials; ++i) {
    const double x = static_cast<double>(sample_poisson(rng, mean));
    sum += x;
    sum2 += x * x;
  }
  const double got_mean = sum / trials;
  const double got_var = sum2 / trials - got_mean * got_mean;
  const double se_mean = std::sqrt(mean / trials);
  EXPECT_NEAR(got_mean, mean, 5.0 * se_mean);
  EXPECT_NEAR(got_var, mean, 0.05 * mean);
}

// --- multivariate hypergeometric --------------------------------------------

TEST(MultivariateHypergeometric, SumsAndEmptyCategories) {
  Rng rng(11);
  const std::vector<std::uint64_t> counts = {3, 0, 25, 12, 60};
  std::vector<std::uint64_t> out;
  for (int i = 0; i < 2000; ++i) {
    sample_multivariate_hypergeometric(rng, counts, 40, out);
    ASSERT_EQ(out.size(), counts.size());
    std::uint64_t sum = 0;
    for (std::size_t j = 0; j < out.size(); ++j) {
      ASSERT_LE(out[j], counts[j]);
      sum += out[j];
    }
    ASSERT_EQ(sum, 40u);
    ASSERT_EQ(out[1], 0u);
  }
  EXPECT_THROW(sample_multivariate_hypergeometric(rng, counts, 1000, out),
               std::invalid_argument);
}

TEST(MultivariateHypergeometric, MarginalMatchesUnivariatePmf) {
  Rng rng(12);
  const std::vector<std::uint64_t> counts = {3, 0, 25, 12, 60};
  const std::uint64_t total = 100, k = 40;
  const std::uint32_t trials = 100'000;
  std::vector<std::uint64_t> out;
  std::vector<std::uint64_t> cat2(trials), cat4(trials);
  for (std::uint32_t i = 0; i < trials; ++i) {
    sample_multivariate_hypergeometric(rng, counts, k, out);
    cat2[i] = out[2];
    cat4[i] = out[4];
  }
  expect_matches_pmf(
      cat2, counts[2],
      [&](std::uint64_t x) {
        return hypergeometric_pmf(counts[2], total - counts[2], k, x);
      },
      "mvh marginal category 2");
  expect_matches_pmf(
      cat4, k,
      [&](std::uint64_t x) {
        return hypergeometric_pmf(counts[4], total - counts[4], k, x);
      },
      "mvh marginal category 4 (chained)");
}

// --- shard partition (ISSUE 5) ----------------------------------------------
//
// The sharded engine's per-round split draws shard t's per-state counts by
// chained multivariate hypergeometrics. The chain rule makes the joint law
// the uniform partition, so *every* shard's marginal — not just the first
// drawn — must be the plain hypergeometric of its size: chi-square checks
// on an early shard, a late (chained) shard, and a remainder shard.

TEST(ShardPartition, ConservesCountsAndSizes) {
  Rng rng(21);
  const std::vector<std::uint64_t> counts = {3, 0, 25, 12, 60};
  const std::vector<std::uint64_t> sizes = {26, 25, 25, 24};
  std::vector<std::vector<std::uint64_t>> shards;
  for (int rep = 0; rep < 2000; ++rep) {
    sample_shard_partition(rng, counts, sizes, shards);
    ASSERT_EQ(shards.size(), sizes.size());
    std::vector<std::uint64_t> recombined(counts.size(), 0);
    for (std::size_t t = 0; t < shards.size(); ++t) {
      std::uint64_t total = 0;
      for (std::size_t c = 0; c < counts.size(); ++c) {
        total += shards[t][c];
        recombined[c] += shards[t][c];
      }
      ASSERT_EQ(total, sizes[t]) << "shard " << t;
      ASSERT_EQ(shards[t][1], 0u) << "phantom agents in empty category";
    }
    ASSERT_EQ(recombined, counts);
  }
  EXPECT_THROW(
      sample_shard_partition(rng, counts, {50, 49} /* != total */, shards),
      std::invalid_argument);
}

TEST(ShardPartition, ShardMarginalsMatchHypergeometricPmf) {
  Rng rng(22);
  const std::vector<std::uint64_t> counts = {3, 0, 25, 12, 60};
  const std::uint64_t total = 100;
  const std::vector<std::uint64_t> sizes = {26, 25, 25, 24};
  const std::uint32_t trials = 60'000;
  std::vector<std::vector<std::uint64_t>> shards;
  // shard 0 (first drawn), shard 2 (conditioned on two earlier draws),
  // shard 3 (the remainder — never drawn explicitly at all).
  std::vector<std::uint64_t> s0_cat4(trials), s2_cat2(trials),
      s3_cat3(trials);
  for (std::uint32_t i = 0; i < trials; ++i) {
    sample_shard_partition(rng, counts, sizes, shards);
    s0_cat4[i] = shards[0][4];
    s2_cat2[i] = shards[2][2];
    s3_cat3[i] = shards[3][3];
  }
  expect_matches_pmf(
      s0_cat4, counts[4],
      [&](std::uint64_t k) {
        return hypergeometric_pmf(counts[4], total - counts[4], sizes[0], k);
      },
      "shard 0 category 4");
  expect_matches_pmf(
      s2_cat2, counts[2],
      [&](std::uint64_t k) {
        return hypergeometric_pmf(counts[2], total - counts[2], sizes[2], k);
      },
      "shard 2 category 2 (chained)");
  expect_matches_pmf(
      s3_cat3, counts[3],
      [&](std::uint64_t k) {
        return hypergeometric_pmf(counts[3], total - counts[3], sizes[3], k);
      },
      "shard 3 category 3 (remainder)");
}

// --- multinomial ------------------------------------------------------------

TEST(Multinomial, SumsAndValidation) {
  Rng rng(13);
  std::vector<std::uint64_t> out;
  sample_multinomial(rng, 100, {2.0, 1.0, 1.0}, out);
  EXPECT_EQ(out[0] + out[1] + out[2], 100u);
  sample_multinomial(rng, 0, {1.0, 1.0}, out);
  EXPECT_EQ(out[0] + out[1], 0u);
  EXPECT_THROW(sample_multinomial(rng, 5, {1.0, -1.0}, out),
               std::invalid_argument);
  EXPECT_THROW(sample_multinomial(rng, 5, {0.0, 0.0}, out),
               std::invalid_argument);
}

TEST(Multinomial, MarginalsMatchBinomialPmf) {
  Rng rng(14);
  const std::vector<double> probs = {0.5, 0.25, 0.125, 0.125};
  const std::uint64_t k = 64;
  const std::uint32_t trials = 100'000;
  std::vector<std::uint64_t> out;
  std::vector<std::uint64_t> cat0(trials), cat3(trials);
  for (std::uint32_t i = 0; i < trials; ++i) {
    sample_multinomial(rng, k, probs, out);
    std::uint64_t sum = 0;
    for (auto v : out) sum += v;
    ASSERT_EQ(sum, k);
    cat0[i] = out[0];
    cat3[i] = out[3];
  }
  expect_matches_pmf(
      cat0, k, [&](std::uint64_t x) { return binomial_pmf(k, 0.5, x); },
      "multinomial marginal 0");
  expect_matches_pmf(
      cat3, k, [&](std::uint64_t x) { return binomial_pmf(k, 0.125, x); },
      "multinomial marginal 3 (last category remainder)");
}

}  // namespace
}  // namespace ppsim
