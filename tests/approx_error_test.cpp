// The approximate tier's honesty harness (ISSUE 7 layer 4).
//
// The tau-leaping count engine (core/tau_leap_simulation.h) and the
// mean-field ODE (core/mean_field.h) trade exactness for speed; this file
// quantifies the trade instead of asserting bit-level agreement:
//
//   * CI-overlap cells: at n in {8, 64, 512} x 30 paired seeds, the
//     tau engine's stabilization-time summary must overlap the exact
//     multinomial engine's 95% CI (family-widened over the 6 cells) for
//     OptimalSilentSSR (dormant-mix -> silent) and the reset process
//     (trigger-one -> drained). At these n the default leap controller
//     keeps expected events per leap under kBulkMinEvents, so the engine
//     runs its exact jump chain and the overlap holds by construction;
//     the cells pin that regime and catch any controller re-tune that
//     breaks it.
//   * Divergence curve: at bulk-engaged n (k_target = eps*n well past
//     kBulkMinEvents) the frozen-rate approximation has real, eps-bounded
//     error. We track the mean delay timer of dormant agents through the
//     dormant-mix drain and assert the tau-vs-exact gap stays a small
//     fraction of the exact movement at the default eps, and only degrades
//     gradually at a deliberately coarse eps.
//   * Stamping: every approximate result must carry approximate = true and
//     its resolved tau_eps; the exact tiers must not. bench_compare keys
//     on those fields (analysis/bench_records.h), so the stamps are the
//     contract that keeps approximate records out of strict drift gates.
//
// Plus determinism, silence certification, mass conservation, and the
// error paths that keep the approximate tier strictly opt-in.
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/scenarios.h"
#include "core/batch_simulation.h"
#include "core/mean_field.h"
#include "core/rng.h"
#include "core/tau_leap_simulation.h"
#include "init/optimal_silent_init.h"
#include "init/reset_init.h"
#include "protocols/optimal_silent.h"
#include "stat_harness.h"

#include "gtest/gtest.h"

namespace ppsim {
namespace {

// ---------------------------------------------------------------------------
// CI-overlap cells: tau vs exact through the public scenario API.

struct Cell {
  const char* protocol;
  const char* init;
  const char* until;
  std::uint32_t n;
};

// 2 protocols x 3 population sizes; family_widen(6) Bonferroni-controls
// the whole grid.
constexpr int kCellFamily = 6;
constexpr std::uint32_t kCellTrials = 30;
constexpr std::uint64_t kCellSeed = 42;

ScenarioResult run_cell(const Cell& cell, const std::string& strategy) {
  ScenarioSpec spec;
  spec.protocol = cell.protocol;
  spec.init = cell.init;
  spec.until = cell.until;
  spec.n = cell.n;
  spec.engine = "batch";
  spec.strategy = strategy;
  spec.trials = kCellTrials;
  spec.seed = kCellSeed;
  return run_scenario(spec);
}

void expect_tau_overlaps_exact(const Cell& cell) {
  const ScenarioResult exact = run_cell(cell, "multinomial");
  const ScenarioResult tau = run_cell(cell, "tau");

  // The stamps ARE the honesty contract: exact results must never claim
  // approximation, approximate results must always disclose it plus the
  // knob they resolved.
  EXPECT_FALSE(exact.approximate);
  EXPECT_EQ(exact.tau_eps, 0.0);
  EXPECT_TRUE(tau.approximate);
  EXPECT_EQ(tau.tau_eps, kDefaultTauEps);

  ASSERT_EQ(exact.failed, 0u) << cell.protocol << " exact hit the horizon";
  ASSERT_EQ(tau.failed, 0u) << cell.protocol << " tau hit the horizon";

  const std::string what = std::string(cell.protocol) + "/" + cell.init +
                           " until=" + cell.until +
                           " n=" + std::to_string(cell.n);
  stat_harness::expect_overlapping_ci(exact.summary, tau.summary, what,
                                      stat_harness::family_widen(kCellFamily));
}

TEST(ApproxCiOverlap, OptimalSilentN8) {
  expect_tau_overlaps_exact({"optimal-silent", "dormant-mix", "silent", 8});
}

TEST(ApproxCiOverlap, OptimalSilentN64) {
  expect_tau_overlaps_exact({"optimal-silent", "dormant-mix", "silent", 64});
}

TEST(ApproxCiOverlap, OptimalSilentN512) {
  expect_tau_overlaps_exact({"optimal-silent", "dormant-mix", "silent", 512});
}

TEST(ApproxCiOverlap, ResetProcessN8) {
  expect_tau_overlaps_exact({"reset-process", "trigger-one", "drained", 8});
}

TEST(ApproxCiOverlap, ResetProcessN64) {
  expect_tau_overlaps_exact({"reset-process", "trigger-one", "drained", 64});
}

TEST(ApproxCiOverlap, ResetProcessN512) {
  expect_tau_overlaps_exact({"reset-process", "trigger-one", "drained", 512});
}

// ---------------------------------------------------------------------------
// Divergence curve at bulk-engaged n: frozen-rate error is real but
// eps-bounded.

// Mean delay timer over dormant agents (Resetting with resetcount == 0) —
// the observable the dormant-mix drain moves monotonically from Dmax
// toward 0, so |tau - exact| / |movement| is a scale-free error measure.
double mean_dormant_delay(const OptimalSilentSSR& proto,
                          const std::vector<std::uint64_t>& counts) {
  double num = 0.0, den = 0.0;
  for (std::uint32_t code = 0; code < counts.size(); ++code) {
    if (counts[code] == 0) continue;
    const auto s = proto.decode(code);
    if (s.role == OsRole::Resetting && s.resetcount == 0) {
      num += static_cast<double>(counts[code]) * s.delaytimer;
      den += static_cast<double>(counts[code]);
    }
  }
  return den > 0.0 ? num / den : 0.0;
}

// Largest relative divergence of the tau trajectory from the exact one
// across parallel-time checkpoints, averaged over seeds. Checkpoints are
// taken at the tau engine's actual interaction counts (leaps overshoot a
// round target), and the exact engine is then run to the same counts, so
// both trajectories are compared at identical scheduler depth.
double divergence_vs_exact(double eps, std::uint32_t n,
                           const std::vector<double>& ptimes,
                           std::uint64_t base_seed, std::uint32_t seeds,
                           std::uint64_t* bulk_leaps_seen = nullptr) {
  const OptimalSilentSSR proto(OptimalSilentParams::standard(n));
  const auto counts0 = optimal_silent_dormant_counts(proto.params());
  const double start = mean_dormant_delay(proto, counts0);
  double worst = 0.0;
  for (std::uint32_t s = 0; s < seeds; ++s) {
    TauLeapSimulation<OptimalSilentSSR> tau(proto, counts0,
                                            derive_seed(base_seed, 2 * s),
                                            eps);
    BatchSimulation<OptimalSilentSSR> exact(
        proto, counts0, derive_seed(base_seed, 2 * s + 1),
        BatchStrategy::kMultinomial);
    for (double pt : ptimes) {
      const auto target =
          static_cast<std::uint64_t>(pt * static_cast<double>(n));
      while (tau.interactions() < target)
        if (tau.step() == 0) break;
      exact.run(tau.interactions() - exact.interactions());
      const double a = mean_dormant_delay(proto, tau.counts());
      const double b = mean_dormant_delay(proto, exact.state_counts());
      const double movement = std::fabs(start - b);
      if (movement > 1.0)
        worst = std::max(worst, std::fabs(a - b) / movement);
    }
    if (bulk_leaps_seen != nullptr) *bulk_leaps_seen += tau.leaps();
  }
  return worst;
}

TEST(ApproxDivergence, DormantDrainStaysEpsBounded) {
  // n chosen so the leap controller's target (eps * n effective events)
  // is far past kBulkMinEvents: the engine must run its bulk stages, the
  // regime where the frozen-rate approximation actually bites.
  const std::uint32_t n = 200000;
  const std::vector<double> ptimes = {1.0, 2.0, 4.0};
  std::uint64_t leaps = 0;
  const double at_default =
      divergence_vs_exact(kDefaultTauEps, n, ptimes, 0xD1A3, 3, &leaps);
  // Bulk actually engaged: the whole drain fits in few macro-leaps. An
  // exact-chain run at this depth would need >> 1000 leaps.
  EXPECT_LT(leaps, 1000u);
  EXPECT_GT(leaps, 0u);
  // Default eps: divergence within 5% of the exact movement.
  EXPECT_LT(at_default, 0.05) << "tau (eps=" << kDefaultTauEps
                              << ") diverged from exact";

  // Deliberately coarse eps: still bounded, but the band is honest about
  // being wider — the knob trades error for fewer leaps monotonically.
  const double at_coarse = divergence_vs_exact(0.4, n, ptimes, 0xD1A3, 3);
  EXPECT_LT(at_coarse, 0.25) << "tau (eps=0.4) left its recorded band";
}

// ---------------------------------------------------------------------------
// Tau engine: determinism, silence certification, trace accounting.

TEST(TauLeapEngine, DeterministicPerSeedAndEps) {
  const OptimalSilentSSR proto(OptimalSilentParams::standard(64));
  const auto counts0 = optimal_silent_dormant_counts(proto.params());
  auto run = [&](std::uint64_t seed, double eps) {
    TauLeapSimulation<OptimalSilentSSR> sim(proto, counts0, seed, eps);
    for (int i = 0; i < 200; ++i)
      if (sim.step() == 0) break;
    return sim.counts();
  };
  EXPECT_EQ(run(7, kDefaultTauEps), run(7, kDefaultTauEps));
  EXPECT_NE(run(7, kDefaultTauEps), run(8, kDefaultTauEps));
}

TEST(TauLeapEngine, CertifiesSilenceExactly) {
  // silent() is exact (structured active weight identically zero), so a
  // run driven to step() == 0 must be at the protocol's unique silent
  // configuration: all Settled, every rank {1..n} present exactly once.
  const std::uint32_t n = 8;
  const OptimalSilentSSR proto(OptimalSilentParams::standard(n));
  TauLeapSimulation<OptimalSilentSSR> sim(
      proto, optimal_silent_dormant_counts(proto.params()), 11);
  while (sim.step() != 0) {
  }
  EXPECT_TRUE(sim.silent());
  std::uint32_t settled = 0;
  for (std::uint32_t code = 0; code < sim.counts().size(); ++code) {
    if (sim.counts()[code] == 0) continue;
    const auto s = proto.decode(code);
    EXPECT_EQ(s.role, OsRole::Settled);
    settled += static_cast<std::uint32_t>(sim.counts()[code]);
  }
  EXPECT_EQ(settled, n);
}

TEST(TauLeapEngine, TraceChargesTheTauArm) {
  const OptimalSilentSSR proto(OptimalSilentParams::standard(32));
  TauLeapSimulation<OptimalSilentSSR> sim(
      proto, optimal_silent_dormant_counts(proto.params()), 3);
  std::uint64_t consumed = 0;
  for (int i = 0; i < 50; ++i) consumed += sim.step();
  const auto arm = static_cast<std::size_t>(StrategyArm::kTauLeap);
  EXPECT_EQ(sim.strategy_trace().steps[arm], sim.leaps());
  EXPECT_EQ(sim.strategy_trace().interactions[arm], consumed);
  EXPECT_EQ(sim.interactions(), consumed);
}

TEST(TauLeapEngine, RejectsBadEps) {
  const OptimalSilentSSR proto(OptimalSilentParams::standard(8));
  const auto counts = optimal_silent_dormant_counts(proto.params());
  EXPECT_THROW(TauLeapSimulation<OptimalSilentSSR>(proto, counts, 1, 0.0),
               std::invalid_argument);
  EXPECT_THROW(TauLeapSimulation<OptimalSilentSSR>(proto, counts, 1, -0.1),
               std::invalid_argument);
  EXPECT_THROW(
      TauLeapSimulation<OptimalSilentSSR>(
          proto, counts, 1, std::numeric_limits<double>::quiet_NaN()),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Scenario API: the approximate tier is strictly opt-in.

TEST(ApproxOptIn, AutoNeverSelectsTau) {
  ScenarioSpec spec;
  spec.protocol = "optimal-silent";
  spec.init = "dormant-mix";
  spec.until = "silent";
  spec.n = 64;
  spec.engine = "auto";
  spec.strategy = "auto";
  spec.trials = 2;
  spec.seed = 5;
  const ScenarioResult r = run_scenario(spec);
  EXPECT_FALSE(r.approximate);
  EXPECT_NE(r.strategy, "tau");
  const auto arm = static_cast<std::size_t>(StrategyArm::kTauLeap);
  EXPECT_EQ(r.trace.steps[arm], 0u)
      << "auto strategy ran approximate leaps without opting in";
}

TEST(ApproxOptIn, TauNeedsTheCountEngine) {
  ScenarioSpec spec;
  spec.protocol = "optimal-silent";
  spec.init = "dormant-mix";
  spec.n = 32;
  spec.engine = "array";
  spec.strategy = "tau";
  spec.trials = 1;
  EXPECT_THROW(run_scenario(spec), std::invalid_argument);
}

TEST(ApproxOptIn, NegativeTauEpsIsRejected) {
  ScenarioSpec spec;
  spec.protocol = "optimal-silent";
  spec.init = "dormant-mix";
  spec.n = 32;
  spec.engine = "batch";
  spec.strategy = "tau";
  spec.tau_eps = -0.5;
  spec.trials = 1;
  EXPECT_THROW(run_scenario(spec), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Mean-field ODE companion.

TEST(MeanFieldOde, DeterministicAndMassConserving) {
  const OptimalSilentSSR proto(OptimalSilentParams::standard(64));
  const auto counts0 = optimal_silent_dormant_counts(proto.params());
  MeanFieldSimulation<OptimalSilentSSR> a(proto, counts0);
  MeanFieldSimulation<OptimalSilentSSR> b(proto, counts0);
  a.run_ptime(8.0);
  b.run_ptime(8.0);
  double total = 0.0;
  for (std::uint32_t code : a.occupied()) {
    EXPECT_EQ(a.mass(code), b.mass(code)) << "ODE is not deterministic";
    total += a.mass(code);
  }
  // Mass is conserved up to the explicitly tracked support-floor pruning.
  EXPECT_NEAR(total + a.pruned_mass(), 64.0, 1e-6);
}

TEST(MeanFieldOde, ScenarioStampsApproximateWithResolvedStep) {
  ScenarioSpec spec;
  spec.protocol = "reset-process";
  spec.init = "trigger-one";
  spec.until = "ptime";
  spec.horizon_ptime = 2.0;
  spec.n = 100000;
  spec.engine = "ode";
  spec.trials = 2;
  spec.seed = 9;
  const ScenarioResult r = run_scenario(spec);
  EXPECT_TRUE(r.approximate);
  EXPECT_EQ(r.tau_eps, kDefaultOdeDt);  // resolved RK4 step
  EXPECT_EQ(r.backend, "ode");
  // until=ptime reports per-trial run wall seconds (the perf metric); the
  // integrator must still account the full fixed budget of interactions.
  EXPECT_EQ(r.metric, "wall_seconds");
  ASSERT_EQ(r.values.size(), 2u);
  EXPECT_GT(r.values[0], 0.0);
  EXPECT_NEAR(r.interactions_mean, 2.0 * 100000.0, 1.0);
}

TEST(MeanFieldOde, RequiresPtimeStop) {
  ScenarioSpec spec;
  spec.protocol = "reset-process";
  spec.init = "trigger-one";
  spec.until = "drained";
  spec.n = 1000;
  spec.engine = "ode";
  spec.trials = 1;
  EXPECT_THROW(run_scenario(spec), std::invalid_argument);
}

}  // namespace
}  // namespace ppsim
