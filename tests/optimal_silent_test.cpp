// Tests for Optimal-Silent-SSR (Protocols 3-4, Section 4): single-interaction
// semantics of each pseudocode line, the binary-tree ranking of Lemma 4.1 /
// Figure 1, the dormant-phase leader election of Lemma 4.2, and full
// stabilization from hostile starts (Theorem 4.3).
#include <gtest/gtest.h>

#include <set>

#include "analysis/convergence.h"
#include "analysis/experiments.h"
#include "core/simulation.h"
#include "init/optimal_silent_init.h"
#include "protocols/leader.h"
#include "protocols/optimal_silent.h"

namespace ppsim {
namespace {

using State = OptimalSilentSSR::State;

OptimalSilentParams params_for(std::uint32_t n) {
  return OptimalSilentParams::standard(n);
}

State settled(std::uint32_t rank, std::uint8_t children = 0) {
  State s;
  s.role = OsRole::Settled;
  s.rank = rank;
  s.children = children;
  return s;
}

State unsettled(std::uint32_t errorcount) {
  State s;
  s.role = OsRole::Unsettled;
  s.errorcount = errorcount;
  return s;
}

TEST(OptimalSilent, RankCollisionTriggersReset) {
  OptimalSilentSSR proto(params_for(8));
  OptimalSilentSSR::Counters cnt;
  Rng rng(1);
  State a = settled(3), b = settled(3);
  proto.interact(a, b, rng, cnt);
  EXPECT_EQ(a.role, OsRole::Resetting);
  EXPECT_EQ(b.role, OsRole::Resetting);
  EXPECT_EQ(a.resetcount, proto.params().rmax);
  EXPECT_EQ(b.resetcount, proto.params().rmax);
  EXPECT_TRUE(a.leader);  // line 7: both become L
  EXPECT_TRUE(b.leader);
  EXPECT_EQ(cnt.collision_triggers, 1u);
}

TEST(OptimalSilent, DistinctRanksDoNotTrigger) {
  OptimalSilentSSR proto(params_for(8));
  OptimalSilentSSR::Counters cnt;
  Rng rng(1);
  State a = settled(3), b = settled(4);
  proto.interact(a, b, rng, cnt);
  EXPECT_EQ(a.role, OsRole::Settled);
  EXPECT_EQ(b.role, OsRole::Settled);
}

TEST(OptimalSilent, SettledRecruitsUnsettledWithTreeRanks) {
  OptimalSilentSSR proto(params_for(8));
  OptimalSilentSSR::Counters cnt;
  Rng rng(1);
  State a = settled(1, 0), b = unsettled(100);
  proto.interact(a, b, rng, cnt);
  // First child of rank 1 gets rank 2 = 2*1 + 0.
  EXPECT_EQ(b.role, OsRole::Settled);
  EXPECT_EQ(b.rank, 2u);
  EXPECT_EQ(b.children, 0u);
  EXPECT_EQ(a.children, 1u);

  State c = unsettled(100);
  proto.interact(a, c, rng, cnt);
  EXPECT_EQ(c.rank, 3u);  // second child: 2*1 + 1
  EXPECT_EQ(a.children, 2u);

  State d = unsettled(100);
  proto.interact(a, d, rng, cnt);
  EXPECT_EQ(d.role, OsRole::Unsettled);  // full: no third child
}

TEST(OptimalSilent, RecruitWorksInBothDirections) {
  OptimalSilentSSR proto(params_for(8));
  OptimalSilentSSR::Counters cnt;
  Rng rng(1);
  State a = unsettled(100), b = settled(2, 0);
  proto.interact(a, b, rng, cnt);  // unsettled initiator, settled responder
  EXPECT_EQ(a.role, OsRole::Settled);
  EXPECT_EQ(a.rank, 4u);
}

TEST(OptimalSilent, LeafRanksDoNotRecruit) {
  // n = 8: rank 5 has children 10, 11 > 8 -> none.
  OptimalSilentSSR proto(params_for(8));
  OptimalSilentSSR::Counters cnt;
  Rng rng(1);
  State a = settled(5, 0), b = unsettled(100);
  proto.interact(a, b, rng, cnt);
  EXPECT_EQ(b.role, OsRole::Unsettled);
  EXPECT_EQ(a.children, 0u);
}

TEST(OptimalSilent, BoundaryRankAssignsExactlyN) {
  // Erratum check (Figure 1): with n = 12, rank 6's first child is 12.
  OptimalSilentSSR proto(params_for(12));
  OptimalSilentSSR::Counters cnt;
  Rng rng(1);
  State a = settled(6, 0), b = unsettled(100);
  proto.interact(a, b, rng, cnt);
  EXPECT_EQ(b.role, OsRole::Settled);
  EXPECT_EQ(b.rank, 12u);
  // Second child would be 13 > 12: not assigned.
  State c = unsettled(100);
  proto.interact(a, c, rng, cnt);
  EXPECT_EQ(c.role, OsRole::Unsettled);
}

TEST(OptimalSilent, UnsettledPatienceCountsDownAndTriggers) {
  OptimalSilentSSR proto(params_for(8));
  OptimalSilentSSR::Counters cnt;
  Rng rng(1);
  State a = unsettled(2);
  State b = unsettled(proto.params().emax);
  proto.interact(a, b, rng, cnt);
  EXPECT_EQ(a.role, OsRole::Unsettled);
  EXPECT_EQ(a.errorcount, 1u);
  proto.interact(a, b, rng, cnt);
  // a's count hit 0: both trigger.
  EXPECT_EQ(a.role, OsRole::Resetting);
  EXPECT_EQ(b.role, OsRole::Resetting);
  EXPECT_EQ(cnt.timeout_triggers, 1u);
}

TEST(OptimalSilent, ResetMapsLeaderAndFollowerCorrectly) {
  OptimalSilentSSR proto(params_for(8));
  OptimalSilentSSR::Counters cnt;
  State l;
  l.role = OsRole::Resetting;
  l.leader = true;
  proto.reset_agent(l, cnt);
  EXPECT_EQ(l.role, OsRole::Settled);
  EXPECT_EQ(l.rank, 1u);
  EXPECT_EQ(l.children, 0u);

  State f;
  f.role = OsRole::Resetting;
  f.leader = false;
  proto.reset_agent(f, cnt);
  EXPECT_EQ(f.role, OsRole::Unsettled);
  EXPECT_EQ(f.errorcount, proto.params().emax);
}

TEST(OptimalSilent, SlowLeaderElectionRunsAmongResetting) {
  OptimalSilentSSR proto(params_for(8));
  OptimalSilentSSR::Counters cnt;
  Rng rng(1);
  State a, b;
  for (State* s : {&a, &b}) {
    s->role = OsRole::Resetting;
    s->leader = true;
    s->resetcount = 5;
  }
  proto.interact(a, b, rng, cnt);
  EXPECT_TRUE(a.leader);   // initiator survives
  EXPECT_FALSE(b.leader);  // responder demoted (L,L -> L,F)
}

TEST(OptimalSilent, RecruitedAgentEntersAsLeader) {
  OptimalSilentSSR proto(params_for(8));
  State s = settled(4);
  proto.recruit(s);
  EXPECT_EQ(s.role, OsRole::Resetting);
  EXPECT_TRUE(s.leader);
  EXPECT_EQ(s.resetcount, 0u);
  EXPECT_EQ(s.delaytimer, proto.params().dmax);
}

TEST(OptimalSilent, NullPairsAreSettledDistinctRanks) {
  OptimalSilentSSR proto(params_for(8));
  EXPECT_TRUE(proto.is_null_pair(settled(1), settled(2)));
  EXPECT_FALSE(proto.is_null_pair(settled(1), settled(1)));
  EXPECT_FALSE(proto.is_null_pair(settled(1), unsettled(5)));
}

TEST(OptimalSilent, RankOfReportsOnlySettled) {
  OptimalSilentSSR proto(params_for(8));
  EXPECT_EQ(proto.rank_of(settled(5)), 5u);
  EXPECT_EQ(proto.rank_of(unsettled(3)), 0u);
  State r;
  r.role = OsRole::Resetting;
  r.rank = 7;  // stale bits must not leak through
  EXPECT_EQ(proto.rank_of(r), 0u);
}

// Lemma 4.1 / Figure 1: from a single settled leader, the binary-tree
// assignment ranks everyone, with each rank appearing exactly once.
TEST(OptimalSilent, BinaryTreeRankingFromSingleLeader) {
  for (std::uint32_t n : {2u, 3u, 7u, 12u, 33u, 64u}) {
    OptimalSilentSSR proto(params_for(n));
    std::vector<State> init(n);
    init[0] = settled(1);
    for (std::uint32_t i = 1; i < n; ++i)
      init[i] = unsettled(proto.params().emax);
    RunOptions opts;
    opts.max_interactions = 1ull << 26;
    opts.verify_silent = true;
    const RunResult r =
        run_until_ranked(proto, std::move(init), 100 + n, opts);
    ASSERT_TRUE(r.stabilized) << "n=" << n;
  }
}

// Figure 1's exact snapshot: 8 settled agents with ranks {1..5,8,9,10}
// arranged so ranks 6,7,11,12 remain; 4 unsettled agents fill them.
TEST(OptimalSilent, Figure1ScenarioCompletes) {
  constexpr std::uint32_t kN = 12;
  OptimalSilentSSR proto(params_for(kN));
  std::vector<State> init(kN);
  init[0] = settled(1, 2);  // children 2, 3 assigned
  init[1] = settled(2, 2);  // children 4, 5 assigned
  init[2] = settled(3, 0);  // children 6, 7 pending
  init[3] = settled(4, 2);  // children 8, 9 assigned
  init[4] = settled(5, 1);  // child 10 assigned, 11 pending
  init[5] = settled(8, 0);  // leaves
  init[6] = settled(9, 0);
  init[7] = settled(10, 0);
  for (std::uint32_t i = 8; i < kN; ++i)
    init[i] = unsettled(proto.params().emax);
  RunOptions opts;
  opts.max_interactions = 1ull << 24;
  opts.verify_silent = true;
  const RunResult r = run_until_ranked(proto, std::move(init), 12, opts);
  ASSERT_TRUE(r.stabilized);
  EXPECT_EQ(r.correctness_breaks, 0u);
}

// The unique silent configuration really is silent: no counters move.
TEST(OptimalSilent, CorrectConfigurationIsSilent) {
  constexpr std::uint32_t kN = 16;
  OptimalSilentSSR proto(params_for(kN));
  auto init = optimal_silent_config(proto.params(),
                                    OsAdversary::kCorrectRanking, 1);
  Simulation<OptimalSilentSSR> sim(proto, std::move(init), 5);
  sim.run(200000);
  EXPECT_EQ(sim.counters().collision_triggers, 0u);
  EXPECT_EQ(sim.counters().timeout_triggers, 0u);
  EXPECT_TRUE(is_correctly_ranked(sim.protocol(), sim.states()));
}

// Lemma 4.2: awakening configurations have a unique leader with constant
// probability — with our Dmax = 8n the success rate should be high.
TEST(OptimalSilent, AwakeningUsuallyHasUniqueLeader) {
  constexpr std::uint32_t kN = 64;
  int unique = 0;
  constexpr int kTrials = 25;
  for (int trial = 0; trial < kTrials; ++trial) {
    OptimalSilentSSR proto(params_for(kN));
    auto init = optimal_silent_config(proto.params(),
                                      OsAdversary::kAllPropagating,
                                      derive_seed(200, trial));
    Simulation<OptimalSilentSSR> sim(proto, std::move(init),
                                     derive_seed(300, trial));
    // Run until the first Reset executes; then count leaders = Settled
    // agents with rank 1 plus Resetting agents still marked L.
    while (sim.counters().resets_executed == 0 &&
           sim.interactions() < (1ull << 26))
      sim.step();
    ASSERT_GT(sim.counters().resets_executed, 0u);
    std::uint32_t leaders = 0;
    for (const auto& s : sim.states()) {
      if (s.role == OsRole::Resetting && s.leader) ++leaders;
      if (s.role == OsRole::Settled && s.rank == 1) ++leaders;
    }
    if (leaders == 1) ++unique;
  }
  EXPECT_GE(unique, kTrials * 3 / 5);
}

// Theorem 4.3: stabilization from every adversarial family.
class OptimalSilentAdversaryTest
    : public ::testing::TestWithParam<std::tuple<OsAdversary, std::uint32_t>> {
};

TEST_P(OptimalSilentAdversaryTest, Stabilizes) {
  const auto [kind, n] = GetParam();
  for (int trial = 0; trial < 3; ++trial) {
    OptimalSilentSSR proto(params_for(n));
    auto init =
        optimal_silent_config(proto.params(), kind, derive_seed(n, trial));
    RunOptions opts;
    opts.max_interactions =
        static_cast<std::uint64_t>(n) * n * 400 + (1ull << 22);
    opts.verify_silent = true;
    const RunResult r = run_until_ranked(proto, std::move(init),
                                         derive_seed(n + 1, trial), opts);
    ASSERT_TRUE(r.stabilized)
        << to_string(kind) << " n=" << n << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAdversaries, OptimalSilentAdversaryTest,
    ::testing::Combine(
        ::testing::Values(OsAdversary::kUniformRandom, OsAdversary::kAllLeaders,
                          OsAdversary::kAllUnsettledZero,
                          OsAdversary::kDuplicateRank,
                          OsAdversary::kAllPropagating,
                          OsAdversary::kAllDormant,
                          OsAdversary::kCorrectRanking),
        ::testing::Values(2u, 3u, 8u, 32u, 64u)),
    [](const auto& info) {
      std::string name = std::string(to_string(std::get<0>(info.param))) +
                         "_n" + std::to_string(std::get<1>(info.param));
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

// State accounting: the role-partitioned state space is O(n) (Theorem 4.3).
TEST(OptimalSilent, StateSpaceIsLinear) {
  for (std::uint32_t n : {16u, 64u, 256u}) {
    const auto p = params_for(n);
    // Settled: n ranks x 3 children values; Unsettled: Emax+1;
    // Resetting: 2 leader values x (Rmax propagating + Dmax+1 dormant).
    // With the standard constants: 3n + 16n + 2*8n + O(log n) = 35n + o(n).
    const std::uint64_t states = 3ull * n + (p.emax + 1) +
                                 2ull * (p.rmax + p.dmax + 1);
    EXPECT_LT(states, 36ull * n + 300);
  }
}

}  // namespace
}  // namespace ppsim
