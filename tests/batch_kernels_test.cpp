// Unit tests for the sampling kernels of core/batch_kernels.h: the flat
// hash map, the occupied-code pool, the exact birthday-problem prefix
// sampler, the extracted pair sampler, the multinomial batch kernel's
// conservation/bookkeeping invariants (its distributional exactness is
// cross-validated against the other engines in
// tests/engine_equivalence_test.cpp), and the ISSUE 5 shard merge kernels
// (merge_signed_deltas, OccupiedPool split/rejoin, ShardWorker population
// conservation).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/batch_kernels.h"
#include "core/batch_simulation.h"
#include "core/discrete_samplers.h"
#include "core/rng.h"
#include "core/sharded_simulation.h"
#include "processes/epidemic.h"
#include "protocols/optimal_silent.h"

namespace ppsim {
namespace {

// --- FlatMap64 --------------------------------------------------------------

TEST(FlatMap64, InsertFindAddClear) {
  FlatMap64 m;
  EXPECT_TRUE(m.empty());
  bool inserted = false;
  const std::uint32_t slot = m.find_or_insert(42, 7, &inserted);
  EXPECT_TRUE(inserted);
  EXPECT_EQ(m.value_at(slot), 7u);
  m.find_or_insert(42, 99, &inserted);
  EXPECT_FALSE(inserted);  // existing value kept
  EXPECT_EQ(*m.find(42), 7u);
  EXPECT_EQ(m.find(43), nullptr);
  m.add(42, -3);
  EXPECT_EQ(static_cast<std::int64_t>(*m.find(42)), 4);
  m.add(1000, 5);
  EXPECT_EQ(m.size(), 2u);
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(42), nullptr);
}

TEST(FlatMap64, GrowsAndKeepsInsertionOrder) {
  FlatMap64 m;
  const std::uint64_t n = 1000;
  for (std::uint64_t k = 0; k < n; ++k) m.find_or_insert(k * 977 + 3, k);
  ASSERT_EQ(m.size(), n);
  // Iteration follows insertion order even across growth rehashes.
  std::uint64_t expect = 0;
  for (std::uint32_t slot : m.entry_slots()) {
    EXPECT_EQ(m.key_at(slot), expect * 977 + 3);
    EXPECT_EQ(m.value_at(slot), expect);
    ++expect;
  }
  for (std::uint64_t k = 0; k < n; ++k)
    ASSERT_NE(m.find(k * 977 + 3), nullptr);
}

// --- OccupiedPool -----------------------------------------------------------

TEST(OccupiedPool, BuildDrawRestoreConserves) {
  std::vector<std::uint64_t> counts = {0, 5, 0, 3, 2, 0};
  OccupiedPool pool;
  EXPECT_FALSE(pool.built());
  pool.build(counts);
  EXPECT_TRUE(pool.built());
  EXPECT_EQ(pool.total(), 10u);
  EXPECT_EQ(pool.occupied(), 3u);

  Rng rng(3);
  std::vector<std::uint64_t> drawn(6, 0);
  for (int i = 0; i < 10; ++i) ++drawn[pool.code_at(pool.draw_remove(rng))];
  EXPECT_EQ(pool.total(), 0u);  // everything removed
  EXPECT_EQ(drawn[1], 5u);      // without replacement: exact multiset
  EXPECT_EQ(drawn[3], 3u);
  EXPECT_EQ(drawn[4], 2u);
  pool.restore_removed();
  EXPECT_EQ(pool.total(), 10u);
}

TEST(OccupiedPool, ApplyDeltaCreatesSlotsAndCompacts) {
  std::vector<std::uint64_t> counts(300, 0);
  for (std::uint32_t c = 0; c < 150; ++c) counts[c] = 1;
  OccupiedPool pool;
  pool.build(counts);
  EXPECT_EQ(pool.occupied(), 150u);
  // Move everything onto a single fresh code: lots of zero slots, then a
  // compaction.
  for (std::uint32_t c = 0; c < 150; ++c) {
    pool.apply_delta(c, -1);
    pool.apply_delta(200 + (c % 3), +1);
  }
  EXPECT_EQ(pool.total(), 150u);
  EXPECT_EQ(pool.occupied(), 3u);
  // Compaction halves the dead slots repeatedly until the 64-slot floor.
  EXPECT_LE(pool.slots(), 64u);
  std::uint32_t code = 0;
  EXPECT_FALSE(pool.single_occupied(code));
  pool.apply_delta(200, +0);  // no-op
  Rng rng(5);
  std::vector<std::uint64_t> drawn(300, 0);
  for (int i = 0; i < 150; ++i) ++drawn[pool.code_at(pool.draw_remove(rng))];
  EXPECT_EQ(drawn[200] + drawn[201] + drawn[202], 150u);
  pool.restore_removed();
}

TEST(OccupiedPool, SingleOccupied) {
  std::vector<std::uint64_t> counts = {0, 0, 8};
  OccupiedPool pool;
  pool.build(counts);
  std::uint32_t code = 0;
  ASSERT_TRUE(pool.single_occupied(code));
  EXPECT_EQ(code, 2u);
  pool.apply_delta(0, +1);
  EXPECT_FALSE(pool.single_occupied(code));
}

// --- SegmentedPool segment API (ISSUE 6) ------------------------------------

// Shared invariant: the per-segment weight subtotals partition the pool
// total exactly, every member of a segment shares code >> kSegShift, and
// members are sorted by code within their segment. Checked after every
// mutation phase below — the subtotals are what the segmented samplers
// (split_segmented, the sharded partition) trust blindly.
void expect_segment_invariants(const OccupiedPool& pool) {
  std::uint64_t total = 0;
  for (std::uint32_t seg = 0; seg < pool.segment_count(); ++seg) {
    std::uint64_t subtotal = 0;
    bool first = true;
    std::uint32_t prev = 0, span = 0;
    for (std::uint32_t slot : pool.segment_slots(seg)) {
      const std::uint32_t code = pool.code_at(slot);
      if (first) {
        span = code >> OccupiedPool::kSegShift;
      } else {
        ASSERT_LT(prev, code) << "segment " << seg << " members unsorted";
        ASSERT_EQ(code >> OccupiedPool::kSegShift, span)
            << "segment " << seg << " mixes code spans";
      }
      first = false;
      prev = code;
      subtotal += pool.weight_at(slot);
    }
    ASSERT_EQ(subtotal, pool.segment_weight(seg))
        << "segment " << seg << " subtotal drifted";
    total += subtotal;
  }
  ASSERT_EQ(total, pool.total()) << "segment subtotals do not partition";
}

TEST(SegmentedPool, BuildGroupsByCodeSpan) {
  std::vector<std::uint64_t> counts(1200, 0);
  counts[3] = 7;
  counts[250] = 2;   // same 256-code span as code 3
  counts[256] = 11;  // first code of the next span
  counts[300] = 4;
  counts[1100] = 6;  // span 4
  OccupiedPool pool;
  pool.build(counts);
  EXPECT_EQ(pool.segment_count(), 3u);
  EXPECT_EQ(pool.total(), 30u);
  EXPECT_EQ(pool.occupied(), 5u);
  expect_segment_invariants(pool);
}

TEST(SegmentedPool, PickInSegmentCoversEveryMember) {
  std::vector<std::uint64_t> counts(600, 0);
  counts[10] = 3;
  counts[20] = 1;
  counts[200] = 5;
  counts[512] = 4;
  counts[599] = 2;
  OccupiedPool pool;
  pool.build(counts);
  for (std::uint32_t seg = 0; seg < pool.segment_count(); ++seg) {
    // Both edge targets of every member's cumulative range must land on it.
    std::uint64_t cum = 0;
    for (std::uint32_t slot : pool.segment_slots(seg)) {
      const std::uint64_t w = pool.weight_at(slot);
      if (w == 0) continue;
      EXPECT_EQ(pool.pick_in_segment(seg, cum), slot);
      EXPECT_EQ(pool.pick_in_segment(seg, cum + w - 1), slot);
      cum += w;
    }
    EXPECT_EQ(cum, pool.segment_weight(seg));
  }
}

// Split / merge / rejoin round trip through the segment API: dealing a
// pool's members into two shard pools and folding them back conserves
// every per-code weight, and all three pools keep consistent subtotals
// throughout.
TEST(SegmentedPool, SplitMergeRejoinConserves) {
  std::vector<std::uint64_t> counts(2048, 0);
  Rng fill(71);
  for (int i = 0; i < 120; ++i)
    counts[fill.below(2048)] += 1 + fill.below(9);
  OccupiedPool pool, shard_a, shard_b, rejoined;
  pool.build(counts);
  shard_a.reset();
  shard_b.reset();
  rejoined.reset();
  expect_segment_invariants(pool);

  Rng rng(72);
  std::uint64_t moved_a = 0, moved_b = 0;
  for (std::uint32_t seg = 0; seg < pool.segment_count(); ++seg) {
    for (std::uint32_t slot : pool.segment_slots(seg)) {
      const std::uint32_t code = pool.code_at(slot);
      const std::uint64_t w = pool.weight_at(slot);
      if (w == 0) continue;
      // Random split of this member's weight between the two shards.
      const std::uint64_t to_a = rng.below(w + 1);
      if (to_a) shard_a.apply_delta(code, static_cast<std::int64_t>(to_a));
      if (w - to_a)
        shard_b.apply_delta(code, static_cast<std::int64_t>(w - to_a));
      moved_a += to_a;
      moved_b += w - to_a;
    }
  }
  EXPECT_EQ(shard_a.total(), moved_a);
  EXPECT_EQ(shard_b.total(), moved_b);
  EXPECT_EQ(moved_a + moved_b, pool.total());
  expect_segment_invariants(shard_a);
  expect_segment_invariants(shard_b);

  // Rejoin both shards; per-code weights must match the original exactly.
  for (const OccupiedPool* shard : {&shard_a, &shard_b})
    for (std::uint32_t seg = 0; seg < shard->segment_count(); ++seg)
      for (std::uint32_t slot : shard->segment_slots(seg))
        if (shard->weight_at(slot) > 0)
          rejoined.apply_delta(
              shard->code_at(slot),
              static_cast<std::int64_t>(shard->weight_at(slot)));
  expect_segment_invariants(rejoined);
  EXPECT_EQ(rejoined.total(), pool.total());
  for (std::uint32_t code = 0; code < 2048; ++code)
    ASSERT_EQ(rejoined.weight_of(code), counts[code]) << "code " << code;
}

// Subtotals stay consistent through the full mutation surface:
// draw_remove, remove_bulk, restore_removed, weight-moving apply_delta
// (including fresh segments and the zero-slot compaction path).
TEST(SegmentedPool, ChurnKeepsSubtotalsConsistent) {
  std::vector<std::uint64_t> counts(4096, 0);
  Rng fill(81);
  for (int i = 0; i < 200; ++i) counts[fill.below(4096)] += 1 + fill.below(5);
  OccupiedPool pool;
  pool.build(counts);
  const std::uint64_t original_total = pool.total();
  expect_segment_invariants(pool);

  // Weighted without-replacement draws.
  Rng rng(82);
  for (int i = 0; i < 64; ++i) {
    pool.draw_remove(rng);
    expect_segment_invariants(pool);
  }
  pool.restore_removed();
  expect_segment_invariants(pool);
  EXPECT_EQ(pool.total(), original_total);

  // Bulk removal of one member's remaining weight, then restore.
  for (std::uint32_t seg = 0; seg < pool.segment_count(); ++seg) {
    if (pool.segment_weight(seg) == 0) continue;
    const std::uint32_t slot =
        pool.pick_in_segment(seg, pool.segment_weight(seg) - 1);
    pool.remove_bulk(slot, pool.weight_at(slot));
    expect_segment_invariants(pool);
    break;
  }
  pool.restore_removed();
  expect_segment_invariants(pool);
  EXPECT_EQ(pool.total(), original_total);

  // Move everything onto a handful of fresh codes: drains all original
  // segments to zero (compaction trigger) and creates new segments.
  for (std::uint32_t code = 0; code < 4096; ++code) {
    const std::uint64_t w = pool.weight_of(code);
    if (w == 0 || code >= 4000) continue;
    pool.apply_delta(code, -static_cast<std::int64_t>(w));
    pool.apply_delta(4000 + (code % 7), static_cast<std::int64_t>(w));
  }
  expect_segment_invariants(pool);
  EXPECT_EQ(pool.total(), original_total);
  // All remaining weight sits at codes 4000..4095: exactly one live
  // segment (drained segments may linger at weight 0 until compaction).
  std::uint32_t live_segments = 0;
  for (std::uint32_t seg = 0; seg < pool.segment_count(); ++seg)
    if (pool.segment_weight(seg) > 0) ++live_segments;
  EXPECT_EQ(live_segments, 1u);
}

// --- Collision-free prefix --------------------------------------------------

TEST(CollisionPrefix, ExactPmfAtN4) {
  // n = 4: p_0 = 1, p_1 = (2)(1)/12 = 1/6, p_2 = 0, so
  // P[L = 1] = 5/6, P[L = 2] = 1/6.
  Rng rng(17);
  CollisionPrefixSampler prefix;
  prefix.build(4);
  EXPECT_TRUE(prefix.built_for(4));
  EXPECT_FALSE(prefix.built_for(5));
  const std::uint32_t trials = 120'000;
  std::uint32_t ones = 0, twos = 0;
  for (std::uint32_t i = 0; i < trials; ++i) {
    const std::uint64_t l = prefix.sample(rng);
    ASSERT_GE(l, 1u);
    ASSERT_LE(l, 2u);
    if (l == 1)
      ++ones;
    else
      ++twos;
  }
  const double f1 = static_cast<double>(ones) / trials;
  EXPECT_NEAR(f1, 5.0 / 6.0, 5.0 * std::sqrt((5.0 / 36.0) / trials));
  EXPECT_EQ(ones + twos, trials);
}

TEST(CollisionPrefix, MeanMatchesAnalyticAtN10000) {
  // E[L] = sum_i P[L >= i] = sum_i prod_{j<i} p_j, computed directly.
  const std::uint64_t n = 10'000;
  double expect = 0.0, g = 1.0;
  for (std::uint64_t l = 0;; ++l) {
    const double fresh = static_cast<double>(n) - 2.0 * l;
    if (fresh < 2.0) break;
    g *= fresh * (fresh - 1.0) /
         (static_cast<double>(n) * static_cast<double>(n - 1));
    if (g < 1e-16) break;
    expect += g;  // adds P[L >= l+1]
  }
  Rng rng(19);
  CollisionPrefixSampler prefix;
  prefix.build(n);
  const std::uint32_t trials = 40'000;
  double sum = 0.0, sum2 = 0.0;
  for (std::uint32_t i = 0; i < trials; ++i) {
    const double l = static_cast<double>(prefix.sample(rng));
    sum += l;
    sum2 += l * l;
  }
  const double mean = sum / trials;
  const double sd = std::sqrt(sum2 / trials - mean * mean);
  EXPECT_NEAR(mean, expect, 5.0 * sd / std::sqrt(trials));
  // Sanity: the prefix is Theta(sqrt(n)).
  EXPECT_GT(expect, 0.3 * std::sqrt(static_cast<double>(n)));
  EXPECT_LT(expect, 1.0 * std::sqrt(static_cast<double>(n)));
}

// --- sample_ordered_state_pair ----------------------------------------------

TEST(PairSampler, MatchesSchedulerPushforward) {
  // counts = {2, 3}, n = 5: P[(0,0)] = 2*1/20, P[(0,1)] = 2*3/20,
  // P[(1,0)] = 3*2/20, P[(1,1)] = 3*2/20.
  WeightedSampler s(2);
  s.add(0, 2);
  s.add(1, 3);
  Rng rng(23);
  const std::uint32_t trials = 200'000;
  std::uint32_t freq[2][2] = {{0, 0}, {0, 0}};
  for (std::uint32_t i = 0; i < trials; ++i) {
    const auto [a, b] = sample_ordered_state_pair(rng, s, 5);
    ++freq[a][b];
  }
  const double expect[2][2] = {{2.0 / 20, 6.0 / 20}, {6.0 / 20, 6.0 / 20}};
  for (int a = 0; a < 2; ++a)
    for (int b = 0; b < 2; ++b) {
      const double f = static_cast<double>(freq[a][b]) / trials;
      const double e = expect[a][b];
      EXPECT_NEAR(f, e, 5.0 * std::sqrt(e * (1 - e) / trials))
          << "(" << a << "," << b << ")";
    }
  // The sampler is restored after each draw.
  EXPECT_EQ(s.total(), 5u);
}

// --- MultinomialKernel ------------------------------------------------------

TEST(MultinomialKernel, OneWayEpidemicConservesAndProgresses) {
  const std::uint32_t n = 64;
  OneWayEpidemic proto(n);
  std::vector<std::uint64_t> counts = one_way_epidemic_counts(n, 1);
  MultinomialKernel<OneWayEpidemic> kernel;
  Rng rng(29);
  NoCounters nc;
  std::vector<CountDelta> deltas;
  std::uint64_t interactions = 0;
  std::uint64_t prev_infected = 1;
  while (counts[1] < n && interactions < (1u << 22)) {
    deltas.clear();
    interactions += kernel.run_batch(proto, counts, rng, nc, deltas);
    ASSERT_EQ(counts[0] + counts[1], n);  // population conserved
    ASSERT_GE(counts[1], prev_infected);  // infections never undone
    prev_infected = counts[1];
    for (const CountDelta& d : deltas) ASSERT_LT(d.code, 2u);
  }
  EXPECT_EQ(counts[1], n);  // completed
  // ~n ln n interactions, not wildly off.
  const double expect = n * std::log(n);
  EXPECT_GT(static_cast<double>(interactions), 0.2 * expect);
  EXPECT_LT(static_cast<double>(interactions), 30.0 * expect);
}

TEST(MultinomialKernel, OptimalSilentBatchesPreserveInvariants) {
  const std::uint32_t n = 256;
  // Small timer constants so the countdown machinery (timeouts, resets,
  // recruits) actually fires within the test's batch budget.
  OptimalSilentParams params;
  params.n = n;
  params.emax = 64;
  params.dmax = 64;
  params.rmax = 8;
  OptimalSilentSSR proto(params);
  // All-Unsettled start: the timer-heavy regime (every pair active).
  std::vector<std::uint64_t> counts(proto.num_states(), 0);
  OptimalSilentSSR::State u;
  u.role = OsRole::Unsettled;
  u.errorcount = params.emax;
  counts[proto.encode(u)] = n;

  MultinomialKernel<OptimalSilentSSR> kernel;
  Rng rng(31);
  OptimalSilentSSR::Counters c{};
  std::vector<CountDelta> deltas;
  std::uint64_t interactions = 0;
  for (int batch = 0; batch < 2000; ++batch) {
    deltas.clear();
    const std::uint64_t consumed =
        kernel.run_batch(proto, counts, rng, c, deltas);
    ASSERT_GE(consumed, 2u);  // prefix >= 1 plus the collision
    interactions += consumed;
    std::uint64_t total = 0;
    std::int64_t delta_sum = 0;
    for (std::uint64_t m : counts) total += m;
    for (const CountDelta& d : deltas) delta_sum += d.delta;
    ASSERT_EQ(total, n);        // population conserved
    ASSERT_EQ(delta_sum, 0);    // deltas are a closed rearrangement
  }
  // Batches amortize ~sqrt(n)+ interactions each.
  EXPECT_GT(interactions, 2000ull * 5);
  // The countdown ticked: timeout triggers eventually fire at errorcount 0
  // after ~emax ticks per agent; at least *some* protocol events were
  // counted through the scaled cache path.
  EXPECT_GT(c.timeout_triggers + c.resets_executed + c.recruits, 0u);
}

static_assert(MultinomialKernel<OptimalSilentSSR>::kCacheable);
static_assert(MultinomialKernel<OneWayEpidemic>::kCacheable);

// --- Shard merge kernels (ISSUE 5) ------------------------------------------

// merge_signed_deltas folds shard net-delta maps in deterministic order:
// sums are per-code exact (including cancellation to zero) and the merged
// map's iteration order follows first insertion.
TEST(ShardMerge, MergeSignedDeltasConservesAndOrders) {
  FlatMap64 a, b, merged;
  a.add(3, +5);
  a.add(900, -2);
  a.add(41, +1);
  b.add(900, +2);  // cancels a's entry exactly
  b.add(3, -1);
  b.add(7, +4);
  merge_signed_deltas(merged, a);
  merge_signed_deltas(merged, b);
  EXPECT_EQ(static_cast<std::int64_t>(*merged.find(3)), 4);
  EXPECT_EQ(static_cast<std::int64_t>(*merged.find(900)), 0);
  EXPECT_EQ(static_cast<std::int64_t>(*merged.find(41)), 1);
  EXPECT_EQ(static_cast<std::int64_t>(*merged.find(7)), 4);
  // Net of all deltas is conserved through the merge.
  std::int64_t total = 0;
  for (std::uint32_t slot : merged.entry_slots())
    total += static_cast<std::int64_t>(merged.value_at(slot));
  EXPECT_EQ(total, 9);
  // Insertion order: a's keys first, then b's new key.
  std::vector<std::uint64_t> order;
  for (std::uint32_t slot : merged.entry_slots())
    order.push_back(merged.key_at(slot));
  EXPECT_EQ(order, (std::vector<std::uint64_t>{3, 900, 41, 7}));
}

// OccupiedPool split/rejoin round trip: partitioning a pool's occupied
// counts into shards and folding them back conserves every count, and no
// phantom occupied codes appear on either side.
TEST(ShardMerge, OccupiedPoolSplitRejoinInvariants) {
  std::vector<std::uint64_t> counts(500, 0);
  counts[2] = 40;
  counts[77] = 1;
  counts[140] = 25;
  counts[499] = 34;  // total 100
  OccupiedPool pool;
  pool.build(counts);
  EXPECT_EQ(pool.total(), 100u);
  EXPECT_EQ(pool.weight_of(2), 40u);
  EXPECT_EQ(pool.weight_of(3), 0u);  // unoccupied code has no weight

  // Occupied snapshot (what the sharded engine splits each round).
  std::vector<std::uint32_t> occ_codes;
  std::vector<std::uint64_t> occ_counts;
  for (std::uint32_t slot = 0; slot < pool.slots(); ++slot)
    if (pool.weight_at(slot) > 0) {
      occ_codes.push_back(pool.code_at(slot));
      occ_counts.push_back(pool.weight_at(slot));
    }
  ASSERT_EQ(occ_codes.size(), 4u);

  Rng rng(99);
  const std::vector<std::uint64_t> sizes = {26, 25, 25, 24};
  std::vector<std::vector<std::uint64_t>> shards;
  sample_shard_partition(rng, occ_counts, sizes, shards);

  // Load each shard into its own pool via reset(): per-shard totals match
  // the shard sizes and only allocated codes are occupied.
  std::vector<std::uint64_t> recombined(occ_codes.size(), 0);
  for (std::size_t t = 0; t < shards.size(); ++t) {
    OccupiedPool shard_pool;
    shard_pool.reset();
    std::uint64_t loaded = 0;
    for (std::size_t i = 0; i < occ_codes.size(); ++i) {
      if (shards[t][i] == 0) continue;
      shard_pool.apply_delta(occ_codes[i],
                             static_cast<std::int64_t>(shards[t][i]));
      loaded += shards[t][i];
      recombined[i] += shards[t][i];
    }
    EXPECT_EQ(shard_pool.total(), sizes[t]) << "shard " << t;
    EXPECT_EQ(loaded, sizes[t]) << "shard " << t;
    EXPECT_EQ(shard_pool.weight_of(3), 0u);  // no phantom codes
    std::uint64_t occupied_weight = 0;
    for (std::uint32_t slot = 0; slot < shard_pool.slots(); ++slot)
      occupied_weight += shard_pool.weight_at(slot);
    EXPECT_EQ(occupied_weight, sizes[t]) << "shard " << t;
  }
  // Rejoin: per-code counts conserved exactly.
  EXPECT_EQ(recombined, occ_counts);
}

TEST(ShardMerge, OccupiedPoolResetClearsEverything) {
  std::vector<std::uint64_t> counts = {0, 5, 0, 3};
  OccupiedPool pool;
  pool.build(counts);
  Rng rng(7);
  pool.draw_remove(rng);
  pool.restore_removed();
  pool.reset();
  EXPECT_TRUE(pool.built());
  EXPECT_EQ(pool.total(), 0u);
  EXPECT_EQ(pool.occupied(), 0u);
  EXPECT_EQ(pool.weight_of(1), 0u);
  pool.apply_delta(9, 4);
  EXPECT_EQ(pool.total(), 4u);
  EXPECT_EQ(pool.weight_of(9), 4u);
}

// A ShardWorker round conserves its shard population: the pool total stays
// m, and the net-delta map sums to zero (a closed rearrangement).
TEST(ShardMerge, ShardWorkerConservesPopulation) {
  const std::uint32_t n = 256;  // shard of a notionally larger run
  OneWayEpidemic proto(1024);
  ShardWorker<OneWayEpidemic> worker;
  const std::vector<std::uint32_t> codes = {0, 1};
  const std::vector<std::uint64_t> alloc = {n - 8, 8};
  worker.prepare(proto, codes, alloc, n, /*seed=*/31);
  const std::uint64_t consumed = worker.run(proto, 2'000);
  EXPECT_GE(consumed, 2'000u);
  std::int64_t net = 0;
  std::uint64_t infected_delta = 0;
  for (std::uint32_t slot : worker.net_deltas().entry_slots()) {
    const auto d =
        static_cast<std::int64_t>(worker.net_deltas().value_at(slot));
    net += d;
    if (worker.net_deltas().key_at(slot) == 1)
      infected_delta = static_cast<std::uint64_t>(d);
  }
  EXPECT_EQ(net, 0);               // rearrangement, no creation
  EXPECT_GT(infected_delta, 0u);   // the epidemic progressed
  // A fully-infected (silent) shard fast-forwards its quota for free.
  ShardWorker<OneWayEpidemic> silent_worker;
  const std::vector<std::uint64_t> all_infected = {0, n};
  silent_worker.prepare(proto, codes, all_infected, n, 32);
  EXPECT_EQ(silent_worker.run(proto, 5'000), 5'000u);
  EXPECT_TRUE(silent_worker.net_deltas().empty());
}

}  // namespace
}  // namespace ppsim
