// Unit tests for the core substrate: RNG, scheduler, rank tracker,
// statistics, and table printing.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>
#include <sstream>

#include "core/rank_tracker.h"
#include "core/rng.h"
#include "core/scheduler.h"
#include "core/simulation.h"
#include "core/stats.h"
#include "core/table.h"

namespace ppsim {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 2000; ++i) {
      const auto v = rng.below(bound);
      EXPECT_LT(v, bound);
    }
  }
}

TEST(Rng, BelowIsApproximatelyUniform) {
  Rng rng(11);
  constexpr int kBound = 10;
  constexpr int kDraws = 100000;
  std::array<int, kBound> counts{};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBound)];
  // Chi-square with 9 dof; 99.9% critical value ~ 27.9.
  double chi2 = 0;
  const double expected = static_cast<double>(kDraws) / kBound;
  for (int c : counts) chi2 += (c - expected) * (c - expected) / expected;
  EXPECT_LT(chi2, 27.9);
}

TEST(Rng, RangeInclusive) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.range(5, 8));
  EXPECT_EQ(seen.size(), 4u);
  EXPECT_EQ(*seen.begin(), 5u);
  EXPECT_EQ(*seen.rbegin(), 8u);
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, CoinIsFair) {
  Rng rng(19);
  int heads = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i)
    if (rng.coin()) ++heads;
  EXPECT_NEAR(static_cast<double>(heads) / kDraws, 0.5, 0.01);
}

TEST(Rng, DeriveSeedSeparatesStreams) {
  EXPECT_NE(derive_seed(1, 0), derive_seed(1, 1));
  EXPECT_NE(derive_seed(1, 0), derive_seed(2, 0));
  EXPECT_EQ(derive_seed(1, 3), derive_seed(1, 3));
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, DeriveSeedStreamsAreIndependent) {
  // Every distinct stream of the same base must give a distinct seed, and
  // the derived streams must not be shifted copies of each other: generators
  // seeded from adjacent streams share (almost) no outputs in a long prefix.
  const std::uint64_t base = 0xfeedfacecafebeefULL;
  std::set<std::uint64_t> seeds;
  for (std::uint64_t s = 0; s < 256; ++s)
    seeds.insert(derive_seed(base, s));
  EXPECT_EQ(seeds.size(), 256u);

  Rng a(derive_seed(base, 0)), b(derive_seed(base, 1));
  std::set<std::uint64_t> outputs_a;
  for (int i = 0; i < 1000; ++i) outputs_a.insert(a());
  int collisions = 0;
  for (int i = 0; i < 1000; ++i)
    if (outputs_a.count(b())) ++collisions;
  EXPECT_LT(collisions, 3);
}

TEST(Scheduler, RejectsTinyPopulations) {
  EXPECT_THROW(UniformScheduler(0), std::invalid_argument);
  EXPECT_THROW(UniformScheduler(1), std::invalid_argument);
  EXPECT_NO_THROW(UniformScheduler(2));
}

TEST(Scheduler, NeverPairsAgentWithItself) {
  Rng rng(23);
  UniformScheduler sched(5);
  for (int i = 0; i < 10000; ++i) {
    const AgentPair p = sched.next(rng);
    EXPECT_NE(p.initiator, p.responder);
    EXPECT_LT(p.initiator, 5u);
    EXPECT_LT(p.responder, 5u);
  }
}

TEST(Scheduler, OrderedPairsAreUniform) {
  Rng rng(29);
  constexpr std::uint32_t kN = 4;
  UniformScheduler sched(kN);
  std::map<std::pair<int, int>, int> counts;
  constexpr int kDraws = 120000;
  for (int i = 0; i < kDraws; ++i) {
    const AgentPair p = sched.next(rng);
    ++counts[{p.initiator, p.responder}];
  }
  EXPECT_EQ(counts.size(), kN * (kN - 1));
  const double expected = static_cast<double>(kDraws) / (kN * (kN - 1));
  double chi2 = 0;
  for (const auto& [pair, c] : counts)
    chi2 += (c - expected) * (c - expected) / expected;
  // 11 dof, 99.9% critical value ~ 31.3.
  EXPECT_LT(chi2, 31.3);
}

TEST(RankTracker, DetectsPermutation) {
  RankTracker t(3);
  std::vector<int> ranks = {1, 2, 3};
  t.reset(ranks, [](int r) { return static_cast<std::uint32_t>(r); });
  EXPECT_TRUE(t.is_permutation());
}

TEST(RankTracker, DetectsDuplicatesAndZeros) {
  RankTracker t(3);
  std::vector<int> ranks = {1, 1, 3};
  t.reset(ranks, [](int r) { return static_cast<std::uint32_t>(r); });
  EXPECT_FALSE(t.is_permutation());
  ranks = {0, 2, 3};
  t.reset(ranks, [](int r) { return static_cast<std::uint32_t>(r); });
  EXPECT_FALSE(t.is_permutation());
}

TEST(RankTracker, IncrementalMatchesFullRecount) {
  constexpr std::uint32_t kN = 6;
  Rng rng(31);
  std::vector<std::uint32_t> ranks(kN, 0);
  RankTracker t(kN);
  t.reset(ranks, [](std::uint32_t r) { return r; });
  for (int step = 0; step < 5000; ++step) {
    const auto agent = static_cast<std::size_t>(rng.below(kN));
    const auto new_rank = static_cast<std::uint32_t>(rng.below(kN + 1));
    t.on_change(ranks[agent], new_rank);
    ranks[agent] = new_rank;
    // Recompute from scratch.
    std::vector<bool> seen(kN + 1, false);
    bool perm = true;
    for (auto r : ranks) {
      if (r == 0 || seen[r]) {
        perm = false;
        break;
      }
      seen[r] = true;
    }
    ASSERT_EQ(t.is_permutation(), perm) << "diverged at step " << step;
  }
}

TEST(RankTracker, RejectsOutOfRangeRanks) {
  RankTracker t(3);
  EXPECT_THROW(t.on_change(0, 4), std::out_of_range);
}

TEST(Stats, SummaryBasics) {
  const Summary s = summarize({1, 2, 3, 4, 5});
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Stats, SummaryThrowsOnEmpty) {
  EXPECT_THROW(summarize({}), std::invalid_argument);
}

TEST(Stats, QuantileInterpolates) {
  std::vector<double> xs = {0, 10};
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(xs, 1.0), 10.0);
}

TEST(Stats, QuantileOfSingletonIsThatElement) {
  const std::vector<double> xs = {7.5};
  for (double q : {0.0, 0.25, 0.5, 0.95, 1.0})
    EXPECT_DOUBLE_EQ(quantile_sorted(xs, q), 7.5);
}

TEST(Stats, QuantileThrowsOnEmpty) {
  EXPECT_THROW(quantile_sorted({}, 0.5), std::invalid_argument);
}

TEST(Stats, LineFitRecoversExactLine) {
  const LinearFit f = fit_line({1, 2, 3, 4}, {3, 5, 7, 9});
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r2, 1.0, 1e-12);
}

TEST(Stats, PowerLawFitRecoversExponent) {
  std::vector<double> ns, ts;
  for (double n : {16.0, 32.0, 64.0, 128.0}) {
    ns.push_back(n);
    ts.push_back(0.5 * n * n);  // exponent 2
  }
  const LinearFit f = fit_power_law(ns, ts);
  EXPECT_NEAR(f.slope, 2.0, 1e-9);
}

TEST(Stats, HarmonicNumber) {
  EXPECT_DOUBLE_EQ(harmonic_number(1), 1.0);
  EXPECT_NEAR(harmonic_number(4), 1.0 + 0.5 + 1.0 / 3 + 0.25, 1e-12);
  EXPECT_NEAR(harmonic_number(1000), std::log(1000.0) + 0.5772, 1e-3);
}

TEST(Table, PrintsAlignedCells) {
  Table t({"a", "bbbb"});
  t.add_row({"xx", "y"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| a  | bbbb |"), std::string::npos);
  EXPECT_NE(out.find("| xx | y    |"), std::string::npos);
}

TEST(Table, FmtFormats) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

// A toy protocol to exercise the Simulation engine end to end.
struct ToyCounterProtocol {
  struct State {
    std::uint32_t hits = 0;
  };
  std::uint32_t n;
  std::uint32_t population_size() const { return n; }
  void interact(State& a, State& b, Rng&) const {
    ++a.hits;
    ++b.hits;
  }
  std::uint32_t rank_of(const State&) const { return 0; }
};

TEST(Simulation, CountsInteractionsAndParallelTime) {
  ToyCounterProtocol proto{10};
  Simulation<ToyCounterProtocol> sim(proto,
                                     std::vector<ToyCounterProtocol::State>(10),
                                     99);
  sim.run(250);
  EXPECT_EQ(sim.interactions(), 250u);
  EXPECT_DOUBLE_EQ(sim.parallel_time(), 25.0);
  std::uint64_t total_hits = 0;
  for (const auto& s : sim.states()) total_hits += s.hits;
  EXPECT_EQ(total_hits, 500u);  // two agents per interaction
}

TEST(Simulation, RunUntilStopsAtPredicate) {
  ToyCounterProtocol proto{5};
  Simulation<ToyCounterProtocol> sim(proto,
                                     std::vector<ToyCounterProtocol::State>(5),
                                     7);
  const bool fired = sim.run_until(
      [](const auto& s) { return s.interactions() >= 42; }, 1000);
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.interactions(), 42u);
}

TEST(Simulation, RejectsMismatchedInitialConfiguration) {
  ToyCounterProtocol proto{5};
  EXPECT_THROW(Simulation<ToyCounterProtocol>(
                   proto, std::vector<ToyCounterProtocol::State>(4), 1),
               std::invalid_argument);
}

TEST(Simulation, ReproducibleAcrossEqualSeeds) {
  ToyCounterProtocol proto{8};
  Simulation<ToyCounterProtocol> a(proto,
                                   std::vector<ToyCounterProtocol::State>(8),
                                   5);
  Simulation<ToyCounterProtocol> b(proto,
                                   std::vector<ToyCounterProtocol::State>(8),
                                   5);
  a.run(1000);
  b.run(1000);
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_EQ(a.states()[i].hits, b.states()[i].hits);
}

}  // namespace
}  // namespace ppsim
