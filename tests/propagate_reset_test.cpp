// Tests for Propagate-Reset (Protocol 2, Section 3): the single-interaction
// semantics of recruitment, the propagating-variable max rule (Observation
// 3.1), dormancy, and awakening; plus the phase-level behavior of Lemmas
// 3.2/3.3, Theorem 3.4, and Corollary 3.5.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "core/simulation.h"
#include "reset/reset_process.h"

namespace ppsim {
namespace {

using State = ResetProcess::State;

State computing() { return State{}; }

State resetting(std::uint32_t rc, std::uint32_t delay = 0) {
  State s;
  s.resetting = true;
  s.resetcount = rc;
  s.delaytimer = delay;
  return s;
}

TEST(PropagateReset, PropagatingAgentRecruitsComputingPartner) {
  ResetProcess proc(4, 10, 100);
  ResetProcess::Counters cnt;
  Rng rng(1);
  State a = resetting(10);
  State b = computing();
  proc.interact(a, b, rng, cnt);
  EXPECT_TRUE(b.resetting);
  // Line 4: both become max(10-1, 0-1, 0) = 9.
  EXPECT_EQ(a.resetcount, 9u);
  EXPECT_EQ(b.resetcount, 9u);
  EXPECT_EQ(b.resets_executed, 0u);
}

TEST(PropagateReset, MaxRuleBetweenTwoResetting) {
  ResetProcess proc(4, 10, 100);
  ResetProcess::Counters cnt;
  Rng rng(1);
  State a = resetting(7);
  State b = resetting(3);
  proc.interact(a, b, rng, cnt);
  EXPECT_EQ(a.resetcount, 6u);
  EXPECT_EQ(b.resetcount, 6u);
}

TEST(PropagateReset, MaxRuleClampsAtZero) {
  ResetProcess proc(4, 10, 100);
  ResetProcess::Counters cnt;
  Rng rng(1);
  State a = resetting(1, 0);
  State b = resetting(1, 0);
  proc.interact(a, b, rng, cnt);
  // Both just became 0: delaytimer initialized to Dmax (line 7), no reset.
  EXPECT_EQ(a.resetcount, 0u);
  EXPECT_EQ(b.resetcount, 0u);
  EXPECT_EQ(a.delaytimer, 100u);
  EXPECT_EQ(b.delaytimer, 100u);
  EXPECT_TRUE(a.resetting);
  EXPECT_TRUE(b.resetting);
}

TEST(PropagateReset, DormantPairDecrementsDelayTimers) {
  ResetProcess proc(4, 10, 100);
  ResetProcess::Counters cnt;
  Rng rng(1);
  State a = resetting(0, 50);
  State b = resetting(0, 70);
  proc.interact(a, b, rng, cnt);
  EXPECT_EQ(a.delaytimer, 49u);
  EXPECT_EQ(b.delaytimer, 69u);
  EXPECT_EQ(a.resets_executed, 0u);
  EXPECT_EQ(b.resets_executed, 0u);
}

TEST(PropagateReset, DormantAwakensWhenDelayHitsZero) {
  ResetProcess proc(4, 10, 100);
  ResetProcess::Counters cnt;
  Rng rng(1);
  State a = resetting(0, 1);
  State b = resetting(0, 50);
  proc.interact(a, b, rng, cnt);
  EXPECT_FALSE(a.resetting);  // awakened: Reset executed
  EXPECT_EQ(a.resets_executed, 1u);
  EXPECT_TRUE(b.resetting);  // partner saw a pre-interaction Resetting agent
  EXPECT_EQ(b.resets_executed, 0u);
}

TEST(PropagateReset, DormantAwakensByEpidemicFromComputingPartner) {
  ResetProcess proc(4, 10, 100);
  ResetProcess::Counters cnt;
  Rng rng(1);
  State a = resetting(0, 99);
  State b = computing();
  proc.interact(a, b, rng, cnt);
  // Line 10: the partner's (pre-interaction) role is not Resetting.
  EXPECT_FALSE(a.resetting);
  EXPECT_EQ(a.resets_executed, 1u);
  EXPECT_FALSE(b.resetting);
}

TEST(PropagateReset, DormantDoesNotRecruitComputingPartner) {
  ResetProcess proc(4, 10, 100);
  ResetProcess::Counters cnt;
  Rng rng(1);
  State a = resetting(0, 99);
  State b = computing();
  proc.interact(a, b, rng, cnt);
  EXPECT_FALSE(b.resetting);  // recruitment requires resetcount > 0 (line 1)
  EXPECT_EQ(b.resets_executed, 0u);
}

TEST(PropagateReset, PropagatingPairDoesNotAwaken) {
  ResetProcess proc(4, 10, 100);
  ResetProcess::Counters cnt;
  Rng rng(1);
  State a = resetting(5);
  State b = resetting(9);
  proc.interact(a, b, rng, cnt);
  EXPECT_TRUE(a.resetting);
  EXPECT_TRUE(b.resetting);
  EXPECT_EQ(a.resets_executed + b.resets_executed, 0u);
}

TEST(PropagateReset, PropagatingPullsDormantBackIntoPropagation) {
  ResetProcess proc(4, 10, 100);
  ResetProcess::Counters cnt;
  Rng rng(1);
  State a = resetting(5);
  State b = resetting(0, 3);
  proc.interact(a, b, rng, cnt);
  EXPECT_EQ(b.resetcount, 4u);  // dormancy cancelled by the max rule
  EXPECT_EQ(b.resets_executed, 0u);
}

TEST(PropagateReset, FreshRecruitDelayDecrementsNotReinitialized) {
  ResetProcess proc(4, 10, 100);
  ResetProcess::Counters cnt;
  Rng rng(1);
  State a = resetting(1);  // becomes 0 this interaction
  State b = computing();
  proc.interact(a, b, rng, cnt);
  // a just became 0 -> delay=Dmax. b was recruited at rc=0 (not "just became
  // 0" through the max rule), so its recruit-assigned Dmax decrements once.
  EXPECT_EQ(a.resetcount, 0u);
  EXPECT_EQ(a.delaytimer, 100u);
  EXPECT_EQ(b.resetcount, 0u);
  EXPECT_EQ(b.delaytimer, 99u);
}

// --- Phase-level properties over whole executions. ---

struct WaveOutcome {
  double awakening_ptime = -1.0;       // first Reset execution
  double all_computing_ptime = -1.0;   // everyone back to Computing
  bool clean_awakening = false;        // all other agents dormant at first
                                       // Reset (the paper's awakening config)
  std::uint32_t min_resets = 0, max_resets = 0;
};

WaveOutcome run_wave(std::uint32_t n, std::uint32_t rmax, std::uint32_t dmax,
                     std::uint64_t seed, std::uint64_t max_interactions) {
  ResetProcess proto(n, rmax, dmax);
  std::vector<State> init(n);
  proto.trigger(init[0]);
  Simulation<ResetProcess> sim(proto, std::move(init), seed);
  WaveOutcome out;
  while (sim.interactions() < max_interactions) {
    sim.step();
    if (out.awakening_ptime < 0 && sim.counters().resets_executed > 0) {
      out.awakening_ptime = sim.parallel_time();
      bool clean = true;
      std::uint32_t computing_count = 0;
      for (const auto& s : sim.states()) {
        if (!s.resetting) {
          ++computing_count;
          continue;
        }
        if (s.resetcount != 0) clean = false;  // still propagating
      }
      // Exactly the newly-awakened agent is computing; all others dormant.
      out.clean_awakening = clean && computing_count == 1;
    }
    bool all_computing = true;
    for (const auto& s : sim.states())
      if (s.resetting) {
        all_computing = false;
        break;
      }
    if (all_computing) {
      out.all_computing_ptime = sim.parallel_time();
      break;
    }
  }
  out.min_resets = UINT32_MAX;
  for (const auto& s : sim.states()) {
    out.min_resets = std::min(out.min_resets, s.resets_executed);
    out.max_resets = std::max(out.max_resets, s.resets_executed);
  }
  return out;
}

// Theorem 3.4 + the epidemic awakening: from one triggered agent, the whole
// population resets and returns to computing within O(Dmax) parallel time.
TEST(PropagateResetWave, CompletesWithinLinearInDmax) {
  constexpr std::uint32_t kN = 256;
  const auto rmax =
      static_cast<std::uint32_t>(std::ceil(8 * std::log(kN))) + 4;
  const std::uint32_t dmax = 4 * rmax;
  for (int trial = 0; trial < 10; ++trial) {
    const WaveOutcome w =
        run_wave(kN, rmax, dmax, derive_seed(500, trial), 4000ull * kN);
    ASSERT_GE(w.all_computing_ptime, 0.0) << "wave never completed";
    EXPECT_GE(w.min_resets, 1u);  // everyone reset
    // O(Dmax) bound: generous constant.
    EXPECT_LT(w.all_computing_ptime, 4.0 * dmax);
  }
}

// The first Reset should happen from a fully dormant configuration (the
// paper's "awakening configuration") in nearly every execution.
TEST(PropagateResetWave, AwakeningIsCleanWithHighProbability) {
  constexpr std::uint32_t kN = 128;
  const auto rmax =
      static_cast<std::uint32_t>(std::ceil(8 * std::log(kN))) + 4;
  const std::uint32_t dmax = 4 * rmax;
  int clean = 0;
  constexpr int kTrials = 30;
  for (int trial = 0; trial < kTrials; ++trial) {
    const WaveOutcome w =
        run_wave(kN, rmax, dmax, derive_seed(600, trial), 4000ull * kN);
    if (w.clean_awakening) ++clean;
  }
  EXPECT_GE(clean, kTrials - 2);
}

// Agents reset exactly once per wave (the Dmax delay prevents double wakes).
TEST(PropagateResetWave, EachAgentResetsExactlyOnce) {
  constexpr std::uint32_t kN = 128;
  const auto rmax =
      static_cast<std::uint32_t>(std::ceil(8 * std::log(kN))) + 4;
  const std::uint32_t dmax = 4 * rmax;
  int exact = 0;
  constexpr int kTrials = 30;
  for (int trial = 0; trial < kTrials; ++trial) {
    const WaveOutcome w =
        run_wave(kN, rmax, dmax, derive_seed(700, trial), 4000ull * kN);
    if (w.min_resets == 1 && w.max_resets == 1) ++exact;
  }
  EXPECT_GE(exact, kTrials - 2);
}

// Corollary 3.5: from arbitrary Resetting debris (no triggered agent), the
// population reaches fully-computing (or awakens) quickly.
TEST(PropagateResetWave, DebrisDrainsToComputing) {
  constexpr std::uint32_t kN = 128;
  const auto rmax =
      static_cast<std::uint32_t>(std::ceil(8 * std::log(kN))) + 4;
  const std::uint32_t dmax = 4 * rmax;
  for (int trial = 0; trial < 10; ++trial) {
    Rng gen(derive_seed(800, trial));
    ResetProcess proto(kN, rmax, dmax);
    std::vector<State> init(kN);
    for (auto& s : init) {
      if (gen.coin()) continue;  // computing
      s.resetting = true;
      s.resetcount = static_cast<std::uint32_t>(gen.below(rmax));  // < Rmax
      s.delaytimer = static_cast<std::uint32_t>(gen.below(dmax + 1));
    }
    Simulation<ResetProcess> sim(proto, std::move(init),
                                 derive_seed(900, trial));
    bool done = false;
    while (sim.interactions() < 4000ull * kN) {
      sim.step();
      bool all_computing = true;
      for (const auto& s : sim.states())
        if (s.resetting) {
          all_computing = false;
          break;
        }
      if (all_computing) {
        done = true;
        break;
      }
    }
    EXPECT_TRUE(done) << "debris did not drain, trial " << trial;
    EXPECT_LT(sim.parallel_time(), 4.0 * dmax);
  }
}

}  // namespace
}  // namespace ppsim
