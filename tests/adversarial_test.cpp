// The cross-protocol self-stabilization property suite: every protocol must
// reach its stably-correct configuration from every adversarial family, and
// the SSLE view (leader <=> rank 1) must then hold. These are the
// "probability 1 from any configuration" guarantees of Theorems 2.4, 4.3,
// and 5.7, exercised across sizes and seeds.
#include <gtest/gtest.h>

#include <string>

#include "analysis/convergence.h"
#include "core/simulation.h"
#include "init/optimal_silent_init.h"
#include "init/silent_nstate_init.h"
#include "init/sublinear_init.h"
#include "protocols/leader.h"
#include "protocols/optimal_silent.h"
#include "protocols/silent_nstate.h"
#include "protocols/sublinear.h"

namespace ppsim {
namespace {

// ---------- Sublinear-Time-SSR across adversaries, H values, sizes. ----------

struct SlCase {
  SlAdversary kind;
  std::uint32_t n;
  std::uint32_t h;  // 0 means "log-time configuration"
};

std::string sl_case_name(const ::testing::TestParamInfo<SlCase>& info) {
  const auto& c = info.param;
  std::string name = std::string(to_string(c.kind)) + "_n" +
                     std::to_string(c.n) + "_H" +
                     (c.h == 0 ? std::string("log") : std::to_string(c.h));
  for (char& ch : name)
    if (ch == '-') ch = '_';
  return name;
}

class SublinearAdversaryTest : public ::testing::TestWithParam<SlCase> {};

TEST_P(SublinearAdversaryTest, StabilizesAndElectsLeader) {
  const SlCase c = GetParam();
  const SublinearParams p = c.h == 0 ? SublinearParams::log_time(c.n)
                                     : SublinearParams::constant_h(c.n, c.h);
  for (int trial = 0; trial < 2; ++trial) {
    SublinearTimeSSR proto(p);
    auto init = sublinear_config(p, c.kind, derive_seed(c.n * 131 + c.h, trial));
    RunOptions opts;
    const std::uint64_t per_epoch = static_cast<std::uint64_t>(p.n) *
                                    (4ull * p.th + 4ull * p.dmax + 200);
    opts.max_interactions = 80ull * per_epoch + (1ull << 22);
    opts.tail_ptime = 3.0 * p.th + 10;
    const RunResult r = run_until_ranked(proto, std::move(init),
                                         derive_seed(c.n * 137 + c.h, trial),
                                         opts);
    ASSERT_TRUE(r.stabilized)
        << to_string(c.kind) << " n=" << c.n << " H=" << c.h << " trial "
        << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, SublinearAdversaryTest,
    ::testing::Values(
        // H = 1 (the sqrt(n)-time warm-up structure).
        SlCase{SlAdversary::kUniformRandom, 8, 1},
        SlCase{SlAdversary::kDuplicateNames, 8, 1},
        SlCase{SlAdversary::kGhostNames, 8, 1},
        SlCase{SlAdversary::kPoisonedTrees, 8, 1},
        SlCase{SlAdversary::kMidReset, 8, 1},
        SlCase{SlAdversary::kAllSameName, 8, 1},
        SlCase{SlAdversary::kShortNames, 8, 1},
        SlCase{SlAdversary::kCorrectRanked, 8, 1},
        // H = 2 at a larger size.
        SlCase{SlAdversary::kUniformRandom, 24, 2},
        SlCase{SlAdversary::kDuplicateNames, 24, 2},
        SlCase{SlAdversary::kGhostNames, 24, 2},
        SlCase{SlAdversary::kPoisonedTrees, 24, 2},
        SlCase{SlAdversary::kAllSameName, 24, 2},
        // The log-time configuration.
        SlCase{SlAdversary::kUniformRandom, 16, 0},
        SlCase{SlAdversary::kDuplicateNames, 16, 0},
        SlCase{SlAdversary::kGhostNames, 16, 0},
        SlCase{SlAdversary::kPoisonedTrees, 16, 0},
        SlCase{SlAdversary::kMidReset, 16, 0},
        // Tiny populations.
        SlCase{SlAdversary::kAllSameName, 2, 1},
        SlCase{SlAdversary::kUniformRandom, 3, 1},
        SlCase{SlAdversary::kDuplicateNames, 3, 0}),
    sl_case_name);

// ---------- Leader view after stabilization, all protocols. ----------

TEST(LeaderView, SilentNStateElectsExactlyOne) {
  constexpr std::uint32_t kN = 12;
  SilentNStateSSR proto(kN);
  RunOptions opts;
  opts.max_interactions = 1ull << 26;
  const RunResult r = run_until_ranked(
      proto, silent_nstate_random_config(kN, 3), 5, opts);
  ASSERT_TRUE(r.stabilized);
}

TEST(LeaderView, OptimalSilentElectsExactlyOne) {
  constexpr std::uint32_t kN = 24;
  OptimalSilentSSR proto(OptimalSilentParams::standard(kN));
  auto init = optimal_silent_config(proto.params(),
                                    OsAdversary::kUniformRandom, 11);
  Simulation<OptimalSilentSSR> sim(proto, std::move(init), 13);
  while (!is_correctly_ranked(sim.protocol(), sim.states())) {
    sim.step();
    ASSERT_LT(sim.interactions(), 1ull << 27);
  }
  EXPECT_EQ(count_leaders(sim.protocol(), sim.states()), 1u);
}

// ---------- Composition (the self-stabilization selling point). ----------

// A prior computation may leave the ranking protocol's memory in any state;
// simulate that by running the protocol, corrupting everything mid-flight,
// and requiring re-stabilization.
TEST(Composition, OptimalSilentSurvivesMidRunCorruption) {
  constexpr std::uint32_t kN = 32;
  OptimalSilentSSR proto(OptimalSilentParams::standard(kN));
  auto init = optimal_silent_config(proto.params(),
                                    OsAdversary::kCorrectRanking, 1);
  Simulation<OptimalSilentSSR> sim(proto, std::move(init), 17);
  sim.run(10000);
  ASSERT_TRUE(is_correctly_ranked(sim.protocol(), sim.states()));
  // Transient fault: scramble every agent.
  auto corrupted = optimal_silent_config(sim.protocol().params(),
                                         OsAdversary::kUniformRandom, 19);
  sim.mutable_states() = corrupted;
  // Re-stabilizes.
  std::uint64_t budget = 1ull << 27;
  while (!is_correctly_ranked(sim.protocol(), sim.states()) && budget-- > 0)
    sim.step();
  ASSERT_TRUE(is_correctly_ranked(sim.protocol(), sim.states()));
  EXPECT_EQ(count_leaders(sim.protocol(), sim.states()), 1u);
}

TEST(Composition, SublinearSurvivesRepeatedFaults) {
  const SublinearParams p = SublinearParams::constant_h(12, 2);
  SublinearTimeSSR proto(p);
  auto init = sublinear_config(p, SlAdversary::kCorrectRanked, 23);
  Simulation<SublinearTimeSSR> sim(proto, std::move(init), 29);
  for (int round = 0; round < 3; ++round) {
    auto corrupted =
        sublinear_config(p, SlAdversary::kUniformRandom, 31 + round);
    sim.mutable_states() = corrupted;
    std::uint64_t budget = 1ull << 26;
    while (!is_correctly_ranked(sim.protocol(), sim.states()) &&
           budget-- > 0)
      sim.step();
    ASSERT_TRUE(is_correctly_ranked(sim.protocol(), sim.states()))
        << "round " << round;
  }
}

// ---------- Generator sanity: adversarial states are valid states. ----------

TEST(Generators, SublinearStatesSatisfyValidity) {
  for (auto kind :
       {SlAdversary::kUniformRandom, SlAdversary::kCorrectRanked,
        SlAdversary::kDuplicateNames, SlAdversary::kGhostNames,
        SlAdversary::kPoisonedTrees, SlAdversary::kMidReset,
        SlAdversary::kPostWave, SlAdversary::kAllSameName,
        SlAdversary::kShortNames}) {
    const SublinearParams p = SublinearParams::constant_h(12, 2);
    const auto states = sublinear_config(p, kind, 101);
    ASSERT_EQ(states.size(), p.n);
    for (const auto& s : states) {
      if (s.role == SlRole::Collecting) {
        EXPECT_TRUE(s.tree.initialized()) << to_string(kind);
        EXPECT_TRUE(s.roster.contains(s.name)) << to_string(kind);
        EXPECT_LE(s.name.length(), p.name_len);
      } else {
        EXPECT_LE(s.resetcount, p.rmax);
        EXPECT_LE(s.delaytimer, p.dmax);
      }
    }
  }
}

TEST(Generators, OptimalSilentStatesSatisfyValidity) {
  const auto p = OptimalSilentParams::standard(16);
  for (auto kind :
       {OsAdversary::kUniformRandom, OsAdversary::kAllLeaders,
        OsAdversary::kAllUnsettledZero, OsAdversary::kDuplicateRank,
        OsAdversary::kAllPropagating, OsAdversary::kAllDormant,
        OsAdversary::kCorrectRanking}) {
    const auto states = optimal_silent_config(p, kind, 103);
    ASSERT_EQ(states.size(), p.n);
    for (const auto& s : states) {
      switch (s.role) {
        case OsRole::Settled:
          EXPECT_GE(s.rank, 1u);
          EXPECT_LE(s.rank, p.n);
          EXPECT_LE(s.children, 2u);
          break;
        case OsRole::Unsettled:
          EXPECT_LE(s.errorcount, p.emax);
          break;
        case OsRole::Resetting:
          EXPECT_LE(s.resetcount, p.rmax);
          EXPECT_LE(s.delaytimer, p.dmax);
          break;
      }
    }
  }
}

TEST(Generators, DistinctNamesReallyDistinct) {
  Rng rng(7);
  const auto names = distinct_names(64, 18, rng);
  for (std::size_t i = 0; i < names.size(); ++i)
    for (std::size_t j = i + 1; j < names.size(); ++j)
      EXPECT_FALSE(names[i] == names[j]);
}

}  // namespace
}  // namespace ppsim
