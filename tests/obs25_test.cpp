// Tests for the Observation 2.5 protocol: silent SSLE for n = 3 that does
// not solve ranking — including an enumeration proof of the observation's
// impossibility argument.
#include <gtest/gtest.h>

#include <array>
#include <set>

#include "core/simulation.h"
#include "protocols/obs25.h"

namespace ppsim {
namespace {

using State = Obs25SSLE::State;

bool is_silent_config(const Obs25SSLE& proto, const std::array<State, 3>& c) {
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j)
      if (i != j && !proto.is_null_pair(c[i], c[j])) return false;
  return true;
}

TEST(Obs25, OnlyNEqualsThree) {
  EXPECT_THROW(Obs25SSLE(2), std::invalid_argument);
  EXPECT_THROW(Obs25SSLE(4), std::invalid_argument);
  EXPECT_NO_THROW(Obs25SSLE(3));
}

TEST(Obs25, AdjacencyIsModuloFive) {
  EXPECT_TRUE(Obs25SSLE::adjacent_followers(1, 2));   // f0, f1
  EXPECT_TRUE(Obs25SSLE::adjacent_followers(5, 1));   // f4, f0 (wraps)
  EXPECT_FALSE(Obs25SSLE::adjacent_followers(1, 3));  // f0, f2
  EXPECT_FALSE(Obs25SSLE::adjacent_followers(0, 1));  // leader not a follower
}

TEST(Obs25, SilentConfigsAreExactlyTheFive) {
  // Enumerate all 6^3 configurations; the silent ones must be {l, fi, fj}
  // with |i-j| = 1 mod 5 (in any agent order).
  Obs25SSLE proto(3);
  int silent_count = 0;
  std::set<std::multiset<int>> silent_sets;
  for (int x = 0; x < 6; ++x)
    for (int y = 0; y < 6; ++y)
      for (int z = 0; z < 6; ++z) {
        std::array<State, 3> c = {State{static_cast<std::uint8_t>(x)},
                                  State{static_cast<std::uint8_t>(y)},
                                  State{static_cast<std::uint8_t>(z)}};
        if (is_silent_config(proto, c)) {
          ++silent_count;
          silent_sets.insert({x, y, z});
        }
      }
  EXPECT_EQ(silent_sets.size(), 5u);  // exactly 5 distinct silent multisets
  EXPECT_EQ(silent_count, 5 * 6);     // each in 3! = 6 agent orders
  for (const auto& s : silent_sets) {
    // Each contains the leader and two adjacent followers.
    EXPECT_EQ(s.count(0), 1u);
    std::vector<int> fs;
    for (int v : s)
      if (v != 0) fs.push_back(v);
    ASSERT_EQ(fs.size(), 2u);
    EXPECT_TRUE(Obs25SSLE::adjacent_followers(
        static_cast<std::uint8_t>(fs[0]), static_cast<std::uint8_t>(fs[1])));
  }
}

TEST(Obs25, StabilizesToSilentConfigFromEveryStart) {
  Obs25SSLE proto(3);
  for (int x = 0; x < 6; ++x)
    for (int y = 0; y < 6; ++y)
      for (int z = 0; z < 6; ++z) {
        std::vector<State> init = {State{static_cast<std::uint8_t>(x)},
                                   State{static_cast<std::uint8_t>(y)},
                                   State{static_cast<std::uint8_t>(z)}};
        Simulation<Obs25SSLE> sim(proto, std::move(init),
                                  1000 + x * 36 + y * 6 + z);
        bool silent = false;
        for (int step = 0; step < 100000; ++step) {
          sim.step();
          std::array<State, 3> c = {sim.states()[0], sim.states()[1],
                                    sim.states()[2]};
          if (is_silent_config(sim.protocol(), c)) {
            silent = true;
            break;
          }
        }
        ASSERT_TRUE(silent) << "stuck from (" << x << "," << y << "," << z
                            << ")";
        // The silent configuration has exactly one leader.
        int leaders = 0;
        for (const auto& s : sim.states())
          if (sim.protocol().is_leader(s)) ++leaders;
        EXPECT_EQ(leaders, 1);
      }
}

// The enumeration behind Observation 2.5: no rank assignment to the six
// states ranks all five silent configurations consistently.
TEST(Obs25, NoRankAssignmentWorks) {
  // l is WLOG rank 1 (it appears in every silent config); each fi must take
  // rank 2 or 3. Try all 2^5 assignments; every one must fail on some silent
  // configuration {l, fi, f_{i+1 mod 5}} (needs {2,3} exactly).
  for (int mask = 0; mask < 32; ++mask) {
    auto rank_of_follower = [&](int i) { return (mask >> i) & 1 ? 3 : 2; };
    bool all_ok = true;
    for (int i = 0; i < 5; ++i) {
      const int j = (i + 1) % 5;
      if (rank_of_follower(i) == rank_of_follower(j)) {
        all_ok = false;
        break;
      }
    }
    EXPECT_FALSE(all_ok) << "mask " << mask
                         << " would rank all silent configs";
  }
}

}  // namespace
}  // namespace ppsim
