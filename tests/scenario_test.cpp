// Tests for the Scenario API (core/registry.h, analysis/scenarios.h) and
// the composable initial conditions (src/init/):
//
//  * registry sanity: every entry's defaults are registered names, lookups
//    and inexpressible specs fail loudly;
//  * round trips: for every registered (protocol, generator) pair on every
//    batch-capable protocol, the count emitter and the agent emitter of the
//    same (name, seed) describe the same configuration through
//    encode/decode, at n in {8, 64, 512};
//  * cross-engine equivalence: every (protocol, generator) pair runs on
//    both engines to its default stop condition with overlapping 95% CIs
//    at n in {8, 64, 512};
//  * sharded strategy (ISSUE 5): strategy=sharded + shards=N resolves,
//    matches the agent array distributionally, and is invariant to the
//    worker thread count;
//  * determinism: per-trial values are bit-identical for any thread count;
//  * acceptance: the Table-1 row-1 sweep reproduced from a ScenarioSpec
//    has CIs overlapping the committed bench/acceptance values, and an
//    adversarial initial condition runs on the multinomial strategy at
//    n = 10^6.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/scenarios.h"
#include "init/epidemic_init.h"
#include "init/obs25_init.h"
#include "init/optimal_silent_init.h"
#include "init/reset_init.h"
#include "init/silent_nstate_init.h"
#include "init/sublinear_count_init.h"
#include "init/sublinear_init.h"
#include "stat_harness.h"

namespace ppsim {
namespace {

// --- Registry sanity --------------------------------------------------------

TEST(Registry, EveryProtocolRegisteredWithValidDefaults) {
  const ProtocolRegistry& reg = default_registry();
  const std::vector<std::string> expected = {
      "silent-nstate",      "optimal-silent",
      "sublinear-h1",       "sublinear-hlog",
      "sublinear-h1-count", "sublinear-hlog-count",
      "reset-process",      "one-way-epidemic",
      "obs25",              "ring-ssle"};
  ASSERT_EQ(reg.all().size(), expected.size());
  for (const std::string& name : expected) {
    const ProtocolEntry* e = reg.find(name);
    ASSERT_NE(e, nullptr) << name;
    EXPECT_FALSE(e->description.empty());
    EXPECT_FALSE(e->inits.empty());
    EXPECT_FALSE(e->untils.empty());
    EXPECT_NE(std::find(e->inits.begin(), e->inits.end(), e->default_init),
              e->inits.end())
        << name << ": default init not registered";
    EXPECT_NE(
        std::find(e->untils.begin(), e->untils.end(), e->default_until),
        e->untils.end())
        << name << ": default until not registered";
  }
  EXPECT_EQ(reg.find("no-such-protocol"), nullptr);
  EXPECT_THROW(reg.at("no-such-protocol"), std::invalid_argument);
}

TEST(Registry, InexpressibleSpecsFailLoudly) {
  ScenarioSpec spec;
  spec.protocol = "sublinear-h1";
  spec.n = 8;
  spec.engine = "batch";  // not enumerable
  EXPECT_THROW(run_scenario(spec), std::invalid_argument);
  spec.engine = "warp-drive";
  EXPECT_THROW(run_scenario(spec), std::invalid_argument);

  spec = ScenarioSpec{};
  spec.protocol = "silent-nstate";
  spec.n = 8;
  spec.init = "no-such-init";
  EXPECT_THROW(run_scenario(spec), std::invalid_argument);
  spec.init = "";
  spec.until = "no-such-until";
  EXPECT_THROW(run_scenario(spec), std::invalid_argument);
  spec.until = "ptime";  // needs a budget
  EXPECT_THROW(run_scenario(spec), std::invalid_argument);
  spec.until = "";
  spec.strategy = "no-such-strategy";
  EXPECT_THROW(run_scenario(spec), std::invalid_argument);

  spec = ScenarioSpec{};
  spec.protocol = "obs25";
  spec.n = 7;  // fixed-n protocol
  EXPECT_THROW(run_scenario(spec), std::invalid_argument);
}

// --- Initial-condition round trips ------------------------------------------
//
// The load-bearing invariant of the InitialCondition API: for one
// (generator, seed) pair, the count form and the agent form describe the
// same configuration — agents encode to exactly the emitted counts, counts
// sum to n, and every occupied code round-trips decode -> encode.

template <class P>
void expect_roundtrips(const P& proto, const InitialConditionSet<P>& inits) {
  for (const auto& init : inits.all()) {
    const std::uint64_t seed = 987654321;
    const auto counts = inits.counts(proto, init.name, seed);
    ASSERT_EQ(counts.size(), proto.num_states()) << init.name;
    std::uint64_t total = 0;
    for (std::uint64_t c : counts) total += c;
    EXPECT_EQ(total, proto.population_size()) << init.name;
    for (std::uint32_t q = 0; q < counts.size(); ++q) {
      if (counts[q] > 0) {
        EXPECT_EQ(proto.encode(proto.decode(q)), q)
            << init.name << " code " << q;
      }
    }

    const auto agents = inits.agents(proto, init.name, seed);
    ASSERT_EQ(agents.size(), proto.population_size()) << init.name;
    std::vector<std::uint64_t> recount(proto.num_states(), 0);
    for (const auto& s : agents) ++recount[proto.encode(s)];
    EXPECT_EQ(recount, counts)
        << init.name << ": agent and count emitters disagree";
  }
}

TEST(InitRoundTrip, EveryBatchCapableProtocolAndGenerator) {
  for (std::uint32_t n : {8u, 64u, 512u}) {
    expect_roundtrips(SilentNStateSSR(n), silent_nstate_inits());
    expect_roundtrips(OptimalSilentSSR(OptimalSilentParams::standard(n)),
                      optimal_silent_inits());
    const auto rmax = static_cast<std::uint32_t>(
                          std::ceil(8.0 * std::log(static_cast<double>(n)))) +
                      4;
    expect_roundtrips(ResetProcess(n, rmax, 4 * rmax),
                      reset_process_inits());
    expect_roundtrips(OneWayEpidemic(n), one_way_epidemic_inits());
    expect_roundtrips(SublinearCountSSR(SublinearParams::constant_h(n, 1), 1),
                      sublinear_count_inits());
    expect_roundtrips(SublinearCountSSR(SublinearParams::log_time(n), 1),
                      sublinear_count_inits());
  }
  expect_roundtrips(Obs25SSLE(3), obs25_inits());
}

// Sublinear is agent-only (not enumerable): every generator must emit a
// full-size agent array, and count materialization must be rejected at
// compile time (no counts() overload) — here we check the agent side.
TEST(InitRoundTrip, SublinearGeneratorsEmitFullPopulations) {
  for (std::uint32_t n : {8u, 24u}) {
    const SublinearTimeSSR proto(SublinearParams::constant_h(n, 1));
    for (const auto& init : sublinear_inits().all()) {
      const auto agents = sublinear_inits().agents(proto, init.name, 4242);
      EXPECT_EQ(agents.size(), n) << init.name;
    }
  }
}

// --- Cross-engine equivalence -----------------------------------------------
//
// Every (protocol, generator) pair measures the same convergence-time
// distribution on the agent array and the batched engine: overlapping 95%
// CIs over independent seeds, at n in {8, 64, 512}.

// The CI-overlap check now lives in tests/stat_harness.h; the cross-engine
// sweep below runs ~60 simultaneous comparisons, where a per-pair 95% check
// would fail by chance every few runs — it passes the Bonferroni widening
// stat_harness::family_widen(60).
using stat_harness::expect_overlapping_ci;
const double kSweepWiden = stat_harness::family_widen(60);

void expect_cross_engine_agreement(const std::string& protocol,
                                   const std::string& init, std::uint32_t n,
                                   std::uint32_t trials) {
  ScenarioSpec spec;
  spec.protocol = protocol;
  spec.init = init;
  spec.n = n;
  spec.trials = trials;

  spec.engine = "array";
  spec.seed = 51000 + n;
  const ScenarioResult array_r = run_scenario(spec);
  spec.engine = "batch";
  spec.seed = 52000 + n;
  const ScenarioResult batch_r = run_scenario(spec);

  const std::string what = protocol + "/" + init + " n=" + std::to_string(n);
  EXPECT_EQ(array_r.failed, 0u) << what;
  EXPECT_EQ(batch_r.failed, 0u) << what;
  EXPECT_EQ(array_r.backend, "array");
  EXPECT_EQ(batch_r.backend, "batch");
  expect_overlapping_ci(array_r.summary, batch_r.summary, what, kSweepWiden);
}

class CrossEngine : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CrossEngine, SilentNState) {
  const std::uint32_t n = GetParam();
  // The Theta(n^2) protocol: keep the 512 trial count modest (each array
  // trial is ~n^3/2 scheduler draws).
  const std::uint32_t trials = n >= 512 ? 5 : 16;
  for (const auto& init : silent_nstate_inits().all())
    expect_cross_engine_agreement("silent-nstate", init.name, n, trials);
}

TEST_P(CrossEngine, OptimalSilent) {
  const std::uint32_t n = GetParam();
  const std::uint32_t trials = n >= 512 ? 8 : 16;
  for (const auto& init : optimal_silent_inits().all())
    expect_cross_engine_agreement("optimal-silent", init.name, n, trials);
}

TEST_P(CrossEngine, ResetProcess) {
  const std::uint32_t n = GetParam();
  for (const auto& init : reset_process_inits().all())
    expect_cross_engine_agreement("reset-process", init.name, n, 16);
}

TEST_P(CrossEngine, OneWayEpidemic) {
  const std::uint32_t n = GetParam();
  for (const auto& init : one_way_epidemic_inits().all())
    expect_cross_engine_agreement("one-way-epidemic", init.name, n, 20);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CrossEngine,
                         ::testing::Values(8u, 64u, 512u));

TEST(CrossEngineObs25, EveryGenerator) {
  for (const auto& init : obs25_inits().all())
    expect_cross_engine_agreement("obs25", init.name, 3, 40);
}

// --- Sharded strategy through the Scenario API ------------------------------

// strategy=sharded + shards=N is a first-class spec: it resolves, reports
// its shard count, matches the agent array distributionally, and its
// per-trial values are invariant to the worker thread count (threads= caps
// workers for sharded runs instead of fanning out trials).
TEST(ScenarioSharded, ShardedSpecMatchesArrayAndIgnoresThreadCount) {
  ScenarioSpec spec;
  spec.protocol = "optimal-silent";
  spec.init = "uniform-random";
  spec.engine = "batch";
  spec.strategy = "sharded";
  spec.shards = 4;
  spec.n = 64;
  spec.trials = 12;
  spec.seed = 4100;
  spec.threads = 1;
  const ScenarioResult sharded = run_scenario(spec);
  EXPECT_EQ(sharded.backend, "batch");
  EXPECT_EQ(sharded.strategy, "sharded");
  EXPECT_EQ(sharded.shards, 4u);
  EXPECT_EQ(sharded.failed, 0u);

  spec.threads = 4;  // workers only: must not change any trial value
  const ScenarioResult threaded = run_scenario(spec);
  stat_harness::expect_bit_identical(sharded.values, threaded.values,
                                     "sharded values vs thread count");

  ScenarioSpec array_spec = spec;
  array_spec.engine = "array";
  array_spec.strategy = "auto";
  array_spec.shards = 0;
  array_spec.seed = 4200;
  array_spec.trials = 16;
  const ScenarioResult array_r = run_scenario(array_spec);
  EXPECT_EQ(array_r.shards, 0u);
  expect_overlapping_ci(array_r.summary, sharded.summary,
                        "sharded vs array scenario", kSweepWiden);
}

// The shard count defaults to the worker count and is clamped to n / 2;
// non-sharded strategies never report shards.
TEST(ScenarioSharded, ShardCountResolution) {
  ScenarioSpec spec;
  spec.protocol = "reset-process";
  spec.engine = "batch";
  spec.strategy = "sharded";
  spec.shards = 64;  // n = 8 below: clamped to 4
  spec.n = 8;
  spec.trials = 2;
  spec.seed = 5;
  const ScenarioResult r = run_scenario(spec);
  EXPECT_EQ(r.shards, 4u);
  EXPECT_EQ(r.failed, 0u);

  spec.strategy = "auto";
  spec.shards = 4;  // ignored off the sharded strategy
  const ScenarioResult plain = run_scenario(spec);
  EXPECT_EQ(plain.shards, 0u);
}

// --- Determinism ------------------------------------------------------------

TEST(ScenarioDeterminism, ValuesBitIdenticalAcrossThreadCounts) {
  ScenarioSpec spec;
  spec.protocol = "optimal-silent";
  spec.init = "uniform-random";
  spec.n = 64;
  spec.trials = 8;
  spec.seed = 77;
  spec.threads = 1;
  const ScenarioResult serial = run_scenario(spec);
  for (std::uint32_t threads : {2u, 4u, 8u}) {
    spec.threads = threads;
    const ScenarioResult parallel = run_scenario(spec);
    ASSERT_EQ(parallel.values.size(), serial.values.size());
    for (std::size_t i = 0; i < serial.values.size(); ++i)
      EXPECT_EQ(parallel.values[i], serial.values[i])
          << "trial " << i << " with " << threads << " threads";
  }
}

// --- Acceptance -------------------------------------------------------------

// The Table-1 row-1 numbers, reproduced purely from a ScenarioSpec (the
// same cells bench/scenarios/table1_row1.json sweeps through ppsle_run):
// CIs must overlap the committed bench/acceptance/BENCH_table1.json values.
TEST(ScenarioAcceptance, Table1Row1MatchesCommittedAcceptance) {
  struct Committed {
    std::uint32_t n;
    double mean, ci95;
  };
  // bench/acceptance/BENCH_table1.json, experiment "table1_silent_nstate".
  const Committed committed[] = {{32, 466.79374999999999, 26.369235198803690},
                                 {64, 2016.7281250000001, 81.101033058512058}};
  for (const Committed& c : committed) {
    ScenarioSpec spec;
    spec.protocol = "silent-nstate";
    spec.init = "worst-case";
    spec.engine = "batch";
    spec.n = c.n;
    spec.trials = 30;
    spec.seed = 11 + c.n;
    const ScenarioResult r = run_scenario(spec);
    EXPECT_EQ(r.failed, 0u);
    Summary acceptance;
    acceptance.mean = c.mean;
    acceptance.ci95 = c.ci95;
    expect_overlapping_ci(r.summary, acceptance,
                          "table1 row 1 n=" + std::to_string(c.n));
  }
}

// An adversarial initial condition on the multinomial strategy at n = 10^6:
// the timer-heavy dormant-mix start (2 occupied states out of 35n), run on
// a fixed parallel-time budget. The count-native generator means no agent
// array is ever materialized.
TEST(ScenarioAcceptance, AdversarialInitOnMultinomialAtMillion) {
  ScenarioSpec spec;
  spec.protocol = "optimal-silent";
  spec.init = "dormant-mix";
  spec.engine = "batch";
  spec.strategy = "multinomial";
  spec.until = "ptime";
  spec.horizon_ptime = 0.05;
  spec.n = 1'000'000;
  spec.trials = 1;
  spec.seed = 9;
  const ScenarioResult r = run_scenario(spec);
  EXPECT_EQ(r.backend, "batch");
  EXPECT_EQ(r.strategy, "multinomial");
  EXPECT_EQ(r.failed, 0u);
  // The budget was actually simulated.
  EXPECT_GE(r.interactions_mean, 0.05 * 1e6);
  EXPECT_GT(r.summary.mean, 0.0);  // run wall seconds
}

}  // namespace
}  // namespace ppsim
