// Tests for the count-form Sublinear-Time-SSR abstraction
// (protocols/sublinear_count.h) and its truncated-tree projection
// (collision_tree.h):
//
//  * construction guards: inexpressible configurations (synthetic coin,
//    depth >= 2) throw instead of silently mismodeling;
//  * canonical coding: exhaustive decode -> encode round trip, contiguous
//    Resetting block, invalid states rejected;
//  * roster buckets: merges never stall below the top bucket (the roll
//    call cannot deadlock in the quotient), the cap is absorbing;
//  * transition semantics: the witness automaton mirrors the concrete
//    root-edge ages (the projection computed by root_edge_age), direct
//    and indirect detection fire exactly where the quotient says;
//  * cross-form exactness: in the regimes claimed lossless (the reset
//    machinery), count-vs-array CIs overlap at n in {8, 64, 512} x 30
//    seeds for both parameter families;
//  * quantified divergence where lossy: count-form detection latency is
//    the same order as the array's (direction-2 loss costs a small
//    constant factor), and every record is stamped abstracted = true.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/scenarios.h"
#include "init/sublinear_count_init.h"
#include "protocols/collision_tree.h"
#include "protocols/sublinear.h"
#include "protocols/sublinear_count.h"
#include "stat_harness.h"

namespace ppsim {
namespace {

using CState = SublinearCountSSR::State;

SublinearCountSSR make_h1(std::uint32_t n, std::uint32_t depth = 1) {
  return SublinearCountSSR(SublinearParams::constant_h(n, 1), depth);
}

// --- Construction guards ----------------------------------------------------

TEST(SublinearCount, RejectsInexpressibleConfigurations) {
  EXPECT_THROW(make_h1(1), std::invalid_argument);
  EXPECT_THROW(SublinearCountSSR(SublinearParams::constant_h(16, 1), 2),
               std::invalid_argument);
  auto coin = SublinearParams::constant_h(16, 1);
  coin.use_synthetic_coin = true;
  EXPECT_THROW(SublinearCountSSR(coin, 1), std::invalid_argument);
}

TEST(SublinearCount, StateSpaceIsPolynomial) {
  // The whole point of the quotient: hlog at n = 10^6 fits in a few
  // hundred thousand codes (the bench_sublinear acceptance cell), where
  // the concrete protocol's state space is quasi-exponential.
  const SublinearCountSSR big(SublinearParams::log_time(1'000'000), 1);
  EXPECT_LT(big.num_states(), 1'000'000u);
  EXPECT_GT(big.num_states(), 1'000u);
  // h1's TH = Theta(sqrt n) inflates the witness-age axis: still
  // polynomial, just a larger polynomial.
  const SublinearCountSSR h1 = make_h1(1024);
  EXPECT_LT(h1.num_states(), 2'000'000u);
}

// --- Canonical coding -------------------------------------------------------

TEST(SublinearCount, ExhaustiveCodeRoundTrip) {
  for (std::uint32_t n : {2u, 3u, 16u}) {
    const SublinearCountSSR proto = make_h1(n);
    for (std::uint32_t q = 0; q < proto.num_states(); ++q) {
      const CState s = proto.decode(q);
      EXPECT_EQ(proto.encode(s), q) << "n=" << n << " code " << q;
    }
    EXPECT_THROW(proto.decode(proto.num_states()), std::invalid_argument);
  }
}

TEST(SublinearCount, ResettingBlockIsContiguousAndComplete) {
  const SublinearCountSSR proto = make_h1(16);
  const std::uint32_t lo = proto.first_resetting_code();
  const std::uint32_t hi = lo + proto.resetting_code_count();
  EXPECT_EQ(hi, proto.num_states());
  for (std::uint32_t q = 0; q < proto.num_states(); ++q) {
    const bool resetting = proto.decode(q).role == SlRole::Resetting;
    EXPECT_EQ(resetting, q >= lo && q < hi) << "code " << q;
  }
}

TEST(SublinearCount, EncodeRejectsInvalidStates) {
  const SublinearCountSSR proto = make_h1(16);
  CState s;
  s.bucket = proto.num_buckets();
  EXPECT_THROW(proto.encode(s), std::invalid_argument);
  s = CState{};
  s.wit_age = proto.params().th;  // a witness can never reach age TH
  EXPECT_THROW(proto.encode(s), std::invalid_argument);
  s = CState{};
  s.role = SlRole::Resetting;
  s.resetcount = proto.params().rmax + 1;
  EXPECT_THROW(proto.encode(s), std::invalid_argument);
}

// --- Roster buckets ---------------------------------------------------------

TEST(SublinearCount, BucketMergesNeverStallBelowTheTop) {
  // Roll-call liveness in the quotient: a same-bucket merge below the top
  // strictly advances, and merging with the cap is absorbing. Without the
  // strict advance the bucketed roll call could deadlock short of rank
  // assignment.
  for (std::uint32_t n : {2u, 3u, 4u, 8u, 9u, 10u, 17u, 100u, 256u, 1000u}) {
    const SublinearCountSSR proto = make_h1(n);
    const std::uint64_t cap = n;
    auto mean_union = [cap](std::uint64_t ra, std::uint64_t rb) {
      return std::min(cap, ra + rb - ra * rb / cap);
    };
    for (std::uint32_t k = 0; k < proto.top_bucket(); ++k) {
      const std::uint64_t r = proto.bucket_rep(k);
      EXPECT_GT(proto.bucket_of(mean_union(r, r)), k) << "n=" << n;
      EXPECT_EQ(proto.bucket_of(mean_union(r, cap)), proto.top_bucket());
    }
    EXPECT_EQ(proto.bucket_rep(proto.top_bucket()), cap);
    EXPECT_EQ(proto.bucket_of(1), 0u);
  }
}

// --- Transition semantics ---------------------------------------------------

TEST(SublinearCount, DirectCheckFiresOnDuplicatePair) {
  const SublinearCountSSR proto = make_h1(16);
  SublinearCountSSR::Counters c;
  Rng rng(1);
  CState a, b;
  a.nc = proto.dup_class(0);
  b.nc = proto.dup_class(1);
  proto.interact(a, b, rng, c);
  EXPECT_EQ(c.collision_triggers, 1u);
  EXPECT_EQ(a.role, SlRole::Resetting);
  EXPECT_EQ(a.resetcount, proto.params().rmax);
  // Colliders keep their duplicate class until the wave clears it.
  EXPECT_TRUE(proto.is_dup_class(a.nc));
}

TEST(SublinearCount, WitnessAutomatonMirrorsConcreteRootEdgeAges) {
  // The abstraction map in action: run the same meeting pattern through
  // the concrete trees and the count-form witness, checking the witness
  // age equals the concrete root-edge age at every step.
  const auto p = SublinearParams::constant_h(8, 1);
  const SublinearTimeSSR concrete(p);
  const SublinearCountSSR quotient(p, 1);
  SublinearTimeSSR::Counters cc;
  SublinearCountSSR::Counters qc;
  Rng rng(7);

  const Name dup_name = Name::from_bits(5, p.name_len);
  auto d0 = concrete.make_collecting(dup_name);
  auto w = concrete.make_collecting(Name::from_bits(9, p.name_len));
  auto other = concrete.make_collecting(Name::from_bits(17, p.name_len));
  CState qw, qd0, qother;
  qw.nc = quotient.full_class();
  qother.nc = quotient.full_class();
  qd0.nc = quotient.dup_class(0);

  // Fresh trees: no live root edges, no witness.
  EXPECT_EQ(live_root_degree(w.tree), 0u);
  EXPECT_EQ(root_edge_age(w.tree, dup_name, p.th), -1);
  EXPECT_EQ(qw.wit_age, 0u);

  // w meets the duplicate: the x-edge is grafted, age 1 after the tick.
  concrete.interact(w, d0, rng, cc);
  quotient.interact(qw, qd0, rng, qc);
  EXPECT_EQ(root_edge_age(w.tree, dup_name, p.th), 1);
  EXPECT_EQ(live_root_degree(w.tree), 1u);
  EXPECT_EQ(qw.wit_age, 1u);
  EXPECT_EQ(qw.wit_j, 0u);

  // w meets a third party: the edge (and the witness) age by one owner
  // operation; the new partner's edge starts at age 1.
  concrete.interact(w, other, rng, cc);
  quotient.interact(qw, qother, rng, qc);
  EXPECT_EQ(root_edge_age(w.tree, dup_name, p.th), 2);
  EXPECT_EQ(root_edge_age(w.tree, other.name, p.th), 1);
  EXPECT_EQ(live_root_degree(w.tree), 2u);
  EXPECT_EQ(qw.wit_age, 2u);

  EXPECT_EQ(cc.collision_triggers, 0u);
  EXPECT_EQ(qc.collision_triggers, 0u);
}

TEST(SublinearCount, LiveWitnessDetectsTheOtherDuplicate) {
  const SublinearCountSSR proto = make_h1(16);
  SublinearCountSSR::Counters c;
  Rng rng(1);
  CState w, d0, d1;
  w.nc = proto.full_class();
  d0.nc = proto.dup_class(0);
  d1.nc = proto.dup_class(1);
  proto.interact(w, d0, rng, c);  // witness about dup_0
  ASSERT_EQ(c.collision_triggers, 0u);
  // Meeting dup_0 again just refreshes the witness: syncs would match.
  proto.interact(w, d0, rng, c);
  EXPECT_EQ(c.collision_triggers, 0u);
  EXPECT_EQ(w.wit_age, 1u);
  // Meeting the OTHER duplicate: syncs cannot match, collision.
  proto.interact(w, d1, rng, c);
  EXPECT_EQ(c.collision_triggers, 1u);
  EXPECT_EQ(w.role, SlRole::Resetting);  // line 3 resets both parties
  EXPECT_EQ(d1.role, SlRole::Resetting);
}

TEST(SublinearCount, WitnessDiesAtTheEdgeTimer) {
  const SublinearParams p = SublinearParams::constant_h(8, 1);
  const SublinearCountSSR proto(p, 1);
  SublinearCountSSR::Counters c;
  Rng rng(1);
  CState w, d0, other;
  w.nc = proto.full_class();
  d0.nc = proto.dup_class(0);
  other.nc = proto.full_class();
  proto.interact(w, d0, rng, c);
  ASSERT_EQ(w.wit_age, 1u);
  for (std::uint32_t i = 1; i + 1 < p.th; ++i) {
    proto.interact(w, other, rng, c);
    ASSERT_EQ(w.wit_age, i + 1) << "op " << i;
  }
  proto.interact(w, other, rng, c);  // age would reach TH: the edge expires
  EXPECT_EQ(w.wit_age, 0u);
  EXPECT_EQ(c.collision_triggers, 0u);
}

TEST(SublinearCount, DepthZeroKeepsOnlyTheDirectCheck) {
  const SublinearCountSSR proto = make_h1(16, /*depth=*/0);
  SublinearCountSSR::Counters c;
  Rng rng(1);
  CState w, d0, d1;
  w.nc = proto.full_class();
  d0.nc = proto.dup_class(0);
  d1.nc = proto.dup_class(1);
  proto.interact(w, d0, rng, c);
  EXPECT_EQ(w.wit_age, 0u);  // no witness automaton at depth 0
  proto.interact(w, d1, rng, c);
  EXPECT_EQ(c.collision_triggers, 0u);  // third parties detect nothing
  proto.interact(d0, d1, rng, c);
  EXPECT_EQ(c.collision_triggers, 1u);  // the duplicates themselves do
}

TEST(SublinearCount, ResetCycleMatchesTheConcreteLaw) {
  const SublinearCountSSR proto = make_h1(16);
  const SublinearParams& p = proto.params();
  SublinearCountSSR::Counters c;
  Rng rng(1);
  // Propagating agents clear and recruit; the recruit at rc = rmax-1 > 0
  // clears too (lines 10-12).
  CState a, b;
  a.nc = proto.full_class();
  b.role = SlRole::Resetting;
  b.resetcount = p.rmax;
  b.nc = proto.dup_class(1);
  proto.interact(a, b, rng, c);
  EXPECT_EQ(b.nc, 0u);
  EXPECT_EQ(a.role, SlRole::Resetting);
  EXPECT_EQ(a.resetcount, p.rmax - 1);
  EXPECT_EQ(a.nc, 0u);
  // Dormant agents regenerate one name-class step per interaction,
  // landing on unique-full (lines 13-14).
  CState x, y;
  for (CState* s : {&x, &y}) {
    s->role = SlRole::Resetting;
    s->resetcount = 0;
    s->delaytimer = p.dmax;
    s->nc = 0;
  }
  proto.interact(x, y, rng, c);
  EXPECT_EQ(x.nc, 1u);
  EXPECT_EQ(y.nc, 1u);
  EXPECT_GE(c.coin_bits, 2u);
  // Reset(a): back to a singleton-roster Collecting state, name kept.
  CState r;
  r.role = SlRole::Resetting;
  r.nc = proto.full_class();
  r.wit_age = 3;
  proto.reset_agent(r, c);
  EXPECT_EQ(r.role, SlRole::Collecting);
  EXPECT_EQ(r.bucket, 0u);
  EXPECT_EQ(r.wit_age, 0u);
  EXPECT_EQ(r.nc, proto.full_class());
}

TEST(SublinearCount, PassivePairsAreFixedPoints) {
  const SublinearCountSSR proto = make_h1(16);
  SublinearCountSSR::Counters c;
  Rng rng(1);
  CState a;
  a.nc = proto.full_class();
  a.bucket = proto.top_bucket();
  ASSERT_TRUE(proto.is_passive(a));
  CState b = a;
  ASSERT_TRUE(proto.is_null_pair(a, b));
  const std::uint32_t code = proto.encode(a);
  proto.interact(a, b, rng, c);
  EXPECT_EQ(proto.encode(a), code);
  EXPECT_EQ(proto.encode(b), code);
  EXPECT_EQ(c.collision_triggers + c.rank_updates + c.resets_executed, 0u);
  // Duplicates are never passive: detection must stay reachable.
  CState d;
  d.nc = proto.dup_class(0);
  d.bucket = proto.top_bucket();
  EXPECT_FALSE(proto.is_passive(d));
}

// --- Truncated-tree projection (collision_tree.h helpers) -------------------

TEST(TruncatedProjection, ShapeCodesIdentifyIsomorphicLiveTruncations) {
  const auto p = SublinearParams::constant_h(8, 1);
  const SublinearTimeSSR proto(p);
  SublinearTimeSSR::Counters c;
  Rng rng(3);
  const Name na = Name::from_bits(1, p.name_len);
  const Name nb = Name::from_bits(2, p.name_len);
  auto a1 = proto.make_collecting(na);
  auto b1 = proto.make_collecting(nb);
  auto a2 = proto.make_collecting(na);
  auto b2 = proto.make_collecting(nb);
  // Same meeting pattern => isomorphic truncations => equal codes.
  proto.interact(a1, b1, rng, c);
  proto.interact(a2, b2, rng, c);
  EXPECT_EQ(truncated_shape_code(a1.tree, 1),
            truncated_shape_code(a2.tree, 1));
  // Depth 0 erases the children: equal to a fresh tree of the same name.
  const auto fresh = proto.make_collecting(na);
  EXPECT_EQ(truncated_shape_code(a1.tree, 0),
            truncated_shape_code(fresh.tree, 0));
  // Depth 1 sees the new root edge: different from fresh.
  EXPECT_NE(truncated_shape_code(a1.tree, 1),
            truncated_shape_code(fresh.tree, 1));
  // Different root names => different codes.
  EXPECT_NE(truncated_shape_code(a1.tree, 1),
            truncated_shape_code(b1.tree, 1));
}

// --- Scenario plumbing: stamps, strategies, params --------------------------

TEST(SublinearCountScenario, EveryRecordIsStampedAbstracted) {
  ScenarioSpec spec;
  spec.protocol = "sublinear-h1-count";
  spec.init = "duplicate-names";
  spec.until = "detected";
  spec.n = 64;
  spec.trials = 4;
  spec.seed = 101;
  const ScenarioResult r = run_scenario(spec);
  EXPECT_TRUE(r.abstracted);
  EXPECT_FALSE(r.approximate);
  EXPECT_EQ(r.backend, "batch");
  EXPECT_EQ(r.failed, 0u);

  spec.protocol = "sublinear-h1";  // the concrete protocol is not abstracted
  spec.engine = "array";
  const ScenarioResult concrete = run_scenario(spec);
  EXPECT_FALSE(concrete.abstracted);
}

TEST(SublinearCountScenario, RunsOnShardedAndTauTiers) {
  ScenarioSpec spec;
  spec.protocol = "sublinear-hlog-count";
  spec.init = "duplicate-names";
  spec.until = "detected";
  spec.n = 256;
  spec.trials = 3;
  spec.seed = 202;
  spec.strategy = "sharded";
  spec.shards = 4;
  const ScenarioResult sharded = run_scenario(spec);
  EXPECT_EQ(sharded.shards, 4u);
  EXPECT_TRUE(sharded.abstracted);
  EXPECT_EQ(sharded.failed, 0u);

  spec.strategy = "tau";
  spec.shards = 0;
  const ScenarioResult tau = run_scenario(spec);
  EXPECT_TRUE(tau.abstracted);
  EXPECT_TRUE(tau.approximate);  // the two stamps compose
  EXPECT_GT(tau.tau_eps, 0.0);
}

TEST(SublinearCountScenario, TruncDepthParamAndGuards) {
  ScenarioSpec spec;
  spec.protocol = "sublinear-h1-count";
  spec.init = "duplicate-names";
  spec.until = "detected";
  spec.n = 32;
  spec.trials = 2;
  spec.seed = 303;
  spec.params = {{"trunc.depth", "0"}};
  const ScenarioResult r = run_scenario(spec);  // direct check still detects
  EXPECT_EQ(r.failed, 0u);
  EXPECT_TRUE(r.abstracted);

  spec.params = {{"trunc.depth", "2"}};
  EXPECT_THROW(run_scenario(spec), std::invalid_argument);
  spec.params = {{"synthetic_coin", "1"}};
  EXPECT_THROW(run_scenario(spec), std::invalid_argument);
}

// --- Cross-form exactness and quantified divergence -------------------------
//
// 10 simultaneous CI comparisons below: Bonferroni-widen them as a family
// (see tests/stat_harness.h).
const double kWiden = stat_harness::family_widen(10);

struct FamilyPair {
  const char* array_name;
  const char* count_name;
};
const FamilyPair kFamilies[] = {
    {"sublinear-h1", "sublinear-h1-count"},
    {"sublinear-hlog", "sublinear-hlog-count"},
};

ScenarioResult run_cell(const std::string& protocol, const std::string& init,
                        const std::string& until, std::uint32_t n,
                        std::uint64_t seed, std::uint32_t trials) {
  ScenarioSpec spec;
  spec.protocol = protocol;
  spec.init = init;
  spec.until = until;
  spec.n = n;
  spec.trials = trials;
  spec.seed = seed;
  return run_scenario(spec);
}

// The reset machinery is claimed to be a lossless quotient: from the same
// mid-reset law, time-to-drained must agree across forms. (The one lossy
// crack — an O(1/n) birthday chance that array-side regenerated names
// re-collide and re-trigger — is covered by the family widening.)
TEST(SublinearCountExactness, MidResetDrainMatchesArray) {
  for (const FamilyPair& f : kFamilies) {
    for (std::uint32_t n : {8u, 64u, 512u}) {
      const ScenarioResult array_r =
          run_cell(f.array_name, "mid-reset", "drained", n, 61000 + n, 30);
      const ScenarioResult count_r =
          run_cell(f.count_name, "mid-reset", "drained", n, 62000 + n, 30);
      const std::string what = std::string(f.count_name) +
                               "/mid-reset drained n=" + std::to_string(n);
      EXPECT_EQ(array_r.failed, 0u) << what;
      EXPECT_EQ(count_r.failed, 0u) << what;
      EXPECT_FALSE(array_r.abstracted);
      EXPECT_TRUE(count_r.abstracted);
      stat_harness::expect_overlapping_ci(array_r.summary, count_r.summary,
                                          what, kWiden);
    }
  }
}

// Same exact regime from the post-wave start (the dormant conveyor alone).
TEST(SublinearCountExactness, PostWaveDrainMatchesArray) {
  for (const FamilyPair& f : kFamilies) {
    const ScenarioResult array_r =
        run_cell(f.array_name, "post-wave", "drained", 64, 63001, 30);
    const ScenarioResult count_r =
        run_cell(f.count_name, "post-wave", "drained", 64, 63002, 30);
    const std::string what =
        std::string(f.count_name) + "/post-wave drained n=64";
    EXPECT_EQ(array_r.failed, 0u) << what;
    EXPECT_EQ(count_r.failed, 0u) << what;
    stat_harness::expect_overlapping_ci(array_r.summary, count_r.summary,
                                        what, kWiden);
  }
}

// Detection latency is LOSSY (direction-2 of Detect-Name-Collision is
// dropped, which can only delay detection): quantify the divergence as a
// bounded constant factor instead of claiming equivalence. The count mean
// must stay the same order as the array's — sanity that the witness
// automaton carries the load — while the abstracted stamp (checked above)
// keeps these records out of strict baseline diffs.
TEST(SublinearCountDivergence, DetectionLatencySameOrderNeverFaster) {
  for (const FamilyPair& f : kFamilies) {
    const ScenarioResult array_r =
        run_cell(f.array_name, "duplicate-names", "detected", 64, 64001, 30);
    const ScenarioResult count_r =
        run_cell(f.count_name, "duplicate-names", "detected", 64, 64002, 30);
    const std::string what = std::string(f.count_name) + " detection n=64";
    ASSERT_EQ(array_r.failed, 0u) << what;
    ASSERT_EQ(count_r.failed, 0u) << what;
    EXPECT_GT(count_r.summary.mean, 0.0) << what;
    // Dropping a detection direction cannot speed detection up beyond
    // noise, and the remaining direction keeps it within a small factor.
    EXPECT_GT(count_r.summary.mean + count_r.summary.ci95,
              0.5 * array_r.summary.mean)
        << what;
    EXPECT_LT(count_r.summary.mean, 8.0 * array_r.summary.mean) << what;
  }
}

}  // namespace
}  // namespace ppsim
