// Tests for the shared CLI parsing (common/cli.h): flag semantics, and the
// hard-error-on-unknown-flag contract that replaced the old silently
// ignoring parsers.
#include <gtest/gtest.h>

#include "common/cli.h"

namespace ppsim {
namespace {

char** make_argv(std::vector<std::string>& storage) {
  static std::vector<char*> ptrs;
  ptrs.clear();
  for (auto& s : storage) ptrs.push_back(s.data());
  return ptrs.data();
}

TEST(BenchScaleParse, KnownFlagsAreApplied) {
  std::vector<std::string> args = {"bench", "--smoke", "--threads=3",
                                   "--strategy=multinomial", "--micro"};
  const BenchScale s =
      BenchScale::from_args(static_cast<int>(args.size()), make_argv(args));
  EXPECT_TRUE(s.smoke);
  EXPECT_TRUE(s.quick);  // smoke implies quick
  EXPECT_TRUE(s.micro);
  EXPECT_EQ(s.threads, 3u);
  EXPECT_EQ(s.strategy_name, "multinomial");
  EXPECT_EQ(s.strategy_or(BatchStrategy::kAuto),
            BatchStrategy::kMultinomial);
  EXPECT_EQ(s.trials(30), 1u);  // smoke: one trial
  EXPECT_EQ(s.sizes({8, 64, 512}), std::vector<std::uint32_t>{8});
}

TEST(BenchScaleParse, DefaultsWithoutFlags) {
  std::vector<std::string> args = {"bench"};
  const BenchScale s =
      BenchScale::from_args(static_cast<int>(args.size()), make_argv(args));
  EXPECT_FALSE(s.smoke);
  EXPECT_FALSE(s.micro);
  EXPECT_EQ(s.trials(30), 30u);
  EXPECT_EQ(s.strategy_or(BatchStrategy::kGeometricSkip),
            BatchStrategy::kGeometricSkip);
}

TEST(BenchScaleParse, FaultKnobsAreApplied) {
  std::vector<std::string> args = {"bench", "--fault.drop=0.25",
                                   "--fault.oneway=1", "--fault.churn=2.5"};
  const BenchScale s =
      BenchScale::from_args(static_cast<int>(args.size()), make_argv(args));
  EXPECT_DOUBLE_EQ(s.faults.drop, 0.25);
  EXPECT_DOUBLE_EQ(s.faults.oneway, 1.0);
  EXPECT_DOUBLE_EQ(s.faults.churn, 2.5);
  EXPECT_TRUE(s.faults.active());
}

TEST(BenchScaleParse, FaultKnobsDefaultToZero) {
  std::vector<std::string> args = {"bench"};
  const BenchScale s =
      BenchScale::from_args(static_cast<int>(args.size()), make_argv(args));
  EXPECT_DOUBLE_EQ(s.faults.drop, 0.0);
  EXPECT_DOUBLE_EQ(s.faults.oneway, 0.0);
  EXPECT_DOUBLE_EQ(s.faults.churn, 0.0);
  EXPECT_FALSE(s.faults.active());
}

using CliDeath = ::testing::Test;

TEST(CliDeath, UnknownFlagIsAHardError) {
  std::vector<std::string> args = {"bench", "--strateg=multinomial"};
  EXPECT_EXIT(
      BenchScale::from_args(static_cast<int>(args.size()), make_argv(args)),
      ::testing::ExitedWithCode(2), "unknown flag");
}

TEST(CliDeath, BadStrategyValueIsAHardError) {
  std::vector<std::string> args = {"bench", "--strategy=warp"};
  EXPECT_EXIT(
      BenchScale::from_args(static_cast<int>(args.size()), make_argv(args)),
      ::testing::ExitedWithCode(2), "unknown --strategy value");
}

TEST(CliDeath, FaultDropOutOfRangeIsAHardError) {
  std::vector<std::string> args = {"bench", "--fault.drop=1.5"};
  EXPECT_EXIT(
      BenchScale::from_args(static_cast<int>(args.size()), make_argv(args)),
      ::testing::ExitedWithCode(2), "bad --fault.drop value");
}

TEST(CliDeath, FaultOnewayMalformedNumberIsAHardError) {
  std::vector<std::string> args = {"bench", "--fault.oneway=0.5x"};
  EXPECT_EXIT(
      BenchScale::from_args(static_cast<int>(args.size()), make_argv(args)),
      ::testing::ExitedWithCode(2), "bad --fault.oneway value");
}

TEST(CliDeath, FaultChurnNegativeIsAHardError) {
  std::vector<std::string> args = {"bench", "--fault.churn=-1"};
  EXPECT_EXIT(
      BenchScale::from_args(static_cast<int>(args.size()), make_argv(args)),
      ::testing::ExitedWithCode(2), "bad --fault.churn value");
}

TEST(CliDeath, FaultEmptyValueIsAHardError) {
  std::vector<std::string> args = {"bench", "--fault.drop="};
  EXPECT_EXIT(
      BenchScale::from_args(static_cast<int>(args.size()), make_argv(args)),
      ::testing::ExitedWithCode(2), "bad --fault.drop value");
}

TEST(CliDeath, MisspelledFaultFlagIsAHardError) {
  std::vector<std::string> args = {"bench", "--fault.drops=0.5"};
  EXPECT_EXIT(
      BenchScale::from_args(static_cast<int>(args.size()), make_argv(args)),
      ::testing::ExitedWithCode(2), "unknown flag");
}

TEST(BenchScaleParse, TopologyFlagIsApplied) {
  std::vector<std::string> args = {"bench", "--topology=mesh:4x8"};
  const BenchScale s =
      BenchScale::from_args(static_cast<int>(args.size()), make_argv(args));
  EXPECT_EQ(s.topology, "mesh:4x8");
  std::vector<std::string> args2 = {"bench"};
  EXPECT_TRUE(BenchScale::from_args(static_cast<int>(args2.size()),
                                    make_argv(args2))
                  .topology.empty());
}

TEST(CliDeath, UnknownTopologyNameIsAHardError) {
  std::vector<std::string> args = {"bench", "--topology=smallworld"};
  EXPECT_EXIT(
      BenchScale::from_args(static_cast<int>(args.size()), make_argv(args)),
      ::testing::ExitedWithCode(2), "bad --topology value");
}

TEST(CliDeath, MalformedMeshDimsAreAHardError) {
  // Zero dims and missing 'x' are both structural errors the flag parser
  // must catch itself (the n-dependent rows*cols check happens later).
  std::vector<std::string> args = {"bench", "--topology=mesh:0x5"};
  EXPECT_EXIT(
      BenchScale::from_args(static_cast<int>(args.size()), make_argv(args)),
      ::testing::ExitedWithCode(2), "bad --topology value");
  std::vector<std::string> args2 = {"bench", "--topology=torus:4"};
  EXPECT_EXIT(
      BenchScale::from_args(static_cast<int>(args2.size()),
                            make_argv(args2)),
      ::testing::ExitedWithCode(2), "bad --topology value");
}

TEST(CliDeath, MissingCustomGraphFileIsAHardError) {
  // validate_spec opens the edge file at flag-parse time, so a typoed
  // path dies here instead of after the bench's warmup.
  std::vector<std::string> args = {
      "bench", "--topology=custom:/nonexistent/graph.edges"};
  EXPECT_EXIT(
      BenchScale::from_args(static_cast<int>(args.size()), make_argv(args)),
      ::testing::ExitedWithCode(2), "bad --topology value");
}

TEST(CliDeath, BackendFlagRejectsUnknown) {
  std::vector<std::string> args = {"example", "--backend=quantum"};
  EXPECT_EXIT(parse_backend_flag(static_cast<int>(args.size()),
                                 make_argv(args)),
              ::testing::ExitedWithCode(2), "unknown flag");
}

TEST(CliDeath, RequireNoArgsRejectsAnything) {
  std::vector<std::string> args = {"demo", "--help"};
  EXPECT_EXIT(require_no_args(static_cast<int>(args.size()),
                              make_argv(args)),
              ::testing::ExitedWithCode(2), "unexpected argument");
}

TEST(BackendFlagParse, SelectsBackend) {
  std::vector<std::string> args = {"example", "--backend=batch"};
  EXPECT_TRUE(
      parse_backend_flag(static_cast<int>(args.size()), make_argv(args)));
  std::vector<std::string> args2 = {"example", "--backend=array"};
  EXPECT_FALSE(
      parse_backend_flag(static_cast<int>(args2.size()), make_argv(args2)));
  std::vector<std::string> args3 = {"example"};
  EXPECT_FALSE(
      parse_backend_flag(static_cast<int>(args3.size()), make_argv(args3)));
}

}  // namespace
}  // namespace ppsim
