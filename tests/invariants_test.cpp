// Execution-long invariant property tests: facts that must hold in *every*
// reachable configuration, checked continuously along randomized runs.
// These complement the stabilization suite: a protocol could stabilize while
// transiently violating its own state-space definition, which would break
// the paper's state-counting arguments.
#include <gtest/gtest.h>

#include "core/simulation.h"
#include "init/optimal_silent_init.h"
#include "init/silent_nstate_init.h"
#include "init/sublinear_init.h"
#include "protocols/optimal_silent.h"
#include "protocols/silent_nstate.h"
#include "protocols/sublinear.h"
#include "reset/reset_process.h"

namespace ppsim {
namespace {

// Silent-n-state: rank stays in {0..n-1} and the multiset size is n.
TEST(Invariants, SilentNStateRanksStayInRange) {
  constexpr std::uint32_t kN = 9;
  SilentNStateSSR proto(kN);
  for (int trial = 0; trial < 4; ++trial) {
    Simulation<SilentNStateSSR> sim(
        proto, silent_nstate_random_config(kN, derive_seed(1, trial)),
        derive_seed(2, trial));
    for (int step = 0; step < 30000; ++step) {
      sim.step();
      for (const auto& s : sim.states()) ASSERT_LT(s.rank, kN);
    }
  }
}

// Exhaustive self-stabilization for tiny populations: every one of the n^n
// rank configurations stabilizes (n = 4: 256 configurations).
TEST(Invariants, SilentNStateExhaustiveTinyN) {
  constexpr std::uint32_t kN = 4;
  SilentNStateSSR proto(kN);
  for (std::uint32_t code = 0; code < 256; ++code) {
    std::vector<SilentNStateSSR::State> cfg(kN);
    std::uint32_t c = code;
    for (auto& s : cfg) {
      s.rank = c % kN;
      c /= kN;
    }
    Simulation<SilentNStateSSR> sim(proto, std::move(cfg), 1000 + code);
    bool done = false;
    for (int step = 0; step < 200000; ++step) {
      sim.step();
      std::uint32_t mask = 0;
      for (const auto& s : sim.states()) mask |= 1u << s.rank;
      if (mask == 0xF) {
        done = true;
        break;
      }
    }
    ASSERT_TRUE(done) << "config " << code << " did not stabilize";
  }
}

// Optimal-Silent: every reachable state stays within its role's declared
// field ranges (the O(n) state bound depends on this).
TEST(Invariants, OptimalSilentFieldRangesPreserved) {
  constexpr std::uint32_t kN = 24;
  const auto params = OptimalSilentParams::standard(kN);
  for (auto kind : {OsAdversary::kUniformRandom, OsAdversary::kAllLeaders,
                    OsAdversary::kAllDormant}) {
    OptimalSilentSSR proto(params);
    Simulation<OptimalSilentSSR> sim(
        proto, optimal_silent_config(params, kind, 3), 5);
    for (int step = 0; step < 100000; ++step) {
      sim.step();
      for (const auto& s : sim.states()) {
        switch (s.role) {
          case OsRole::Settled:
            ASSERT_GE(s.rank, 1u);
            ASSERT_LE(s.rank, kN);
            ASSERT_LE(s.children, 2u);
            break;
          case OsRole::Unsettled:
            ASSERT_LE(s.errorcount, params.emax);
            break;
          case OsRole::Resetting:
            ASSERT_LE(s.resetcount, params.rmax);
            ASSERT_LE(s.delaytimer, params.dmax);
            break;
        }
      }
    }
  }
}

// Once the unique silent configuration is reached, it is never left (the
// "stably correct" requirement), checked over a long post-stabilization run.
TEST(Invariants, OptimalSilentStableConfigurationIsAbsorbing) {
  constexpr std::uint32_t kN = 16;
  const auto params = OptimalSilentParams::standard(kN);
  OptimalSilentSSR proto(params);
  Simulation<OptimalSilentSSR> sim(
      proto,
      optimal_silent_config(params, OsAdversary::kCorrectRanking, 1), 7);
  std::vector<std::uint32_t> ranks;
  for (const auto& s : sim.states()) ranks.push_back(s.rank);
  for (int step = 0; step < 200000; ++step) {
    sim.step();
    for (std::uint32_t i = 0; i < kN; ++i) {
      ASSERT_EQ(sim.states()[i].role, OsRole::Settled);
      ASSERT_EQ(sim.states()[i].rank, ranks[i]);
    }
  }
}

// Sublinear: the structural validity of Collecting states is preserved:
// name ∈ roster, |roster| <= n, tree rooted at the agent's own name.
TEST(Invariants, SublinearValidityPreserved) {
  const auto p = SublinearParams::constant_h(12, 2);
  for (auto kind : {SlAdversary::kUniformRandom, SlAdversary::kGhostNames,
                    SlAdversary::kDuplicateNames}) {
    SublinearTimeSSR proto(p);
    Simulation<SublinearTimeSSR> sim(
        proto, sublinear_config(p, kind, 11), 13);
    for (int step = 0; step < 60000; ++step) {
      sim.step();
      for (const auto& s : sim.states()) {
        if (s.role != SlRole::Collecting) {
          ASSERT_LE(s.resetcount, p.rmax);
          continue;
        }
        ASSERT_TRUE(s.tree.initialized());
        ASSERT_EQ(s.tree.own_name(), s.name);
        ASSERT_LE(s.roster.size(), p.n);
        // The generator's start may omit name ∈ roster only for Resetting
        // agents (no roster); once Collecting it must hold... except for
        // states that began Collecting adversarially without it — the
        // protocol never *removes* an agent's own name, so membership is
        // monotone: check only agents that have reset at least once is
        // complex; instead verify the weaker monotone fact:
        if (s.roster.contains(s.name)) continue;
        // Allowed only if the agent still carries its (valid) initial
        // roster; all generators install name ∈ roster, so this must hold:
        FAIL() << "agent lost its own name from its roster";
      }
    }
  }
}

// Sibling names in every reachable history-tree node are unique (the
// deterministic walk in Check-Path-Consistency depends on it).
TEST(Invariants, HistoryTreeSiblingsUnique) {
  const auto p = SublinearParams::constant_h(10, 2);
  SublinearTimeSSR proto(p);
  Simulation<SublinearTimeSSR> sim(
      proto, sublinear_config(p, SlAdversary::kCorrectRanked, 17), 19);
  auto check_node = [&](const HistoryNode& node, auto&& self, int depth) {
    if (depth > 3) return;  // sampled depth suffices
    for (std::size_t i = 0; i < node.children.size(); ++i)
      for (std::size_t j = i + 1; j < node.children.size(); ++j)
        ASSERT_FALSE(node.children[i].child->name ==
                     node.children[j].child->name);
    for (const auto& e : node.children) self(*e.child, self, depth + 1);
  };
  for (int step = 0; step < 20000; ++step) {
    sim.step();
    if (step % 500 != 0) continue;
    for (const auto& s : sim.states())
      if (s.tree.initialized()) check_node(*s.tree.root(), check_node, 0);
  }
}

// Observation 3.1's propagating-variable semantics, verified against an
// independent shadow implementation along full reset waves.
TEST(Invariants, ResetCountFollowsMaxRuleShadow) {
  constexpr std::uint32_t kN = 32;
  constexpr std::uint32_t kRmax = 20, kDmax = 200;
  ResetProcess proto(kN, kRmax, kDmax);
  std::vector<ResetProcess::State> init(kN);
  proto.trigger(init[0]);
  Simulation<ResetProcess> sim(proto, std::move(init), 23);
  // Shadow: resetcount per agent with computing agents at 0. The shadow
  // follows the same max-rule, with awakenings (role changes) re-synced.
  std::vector<std::int64_t> shadow(kN, 0);
  shadow[0] = kRmax;
  for (int step = 0; step < 50000; ++step) {
    const AgentPair pair = sim.step();
    const auto x = pair.initiator;
    const auto y = pair.responder;
    const std::int64_t v =
        std::max<std::int64_t>(std::max(shadow[x], shadow[y]) - 1, 0);
    shadow[x] = v;
    shadow[y] = v;
    for (std::uint32_t i : {x, y}) {
      const auto& s = sim.states()[i];
      const std::int64_t actual = s.resetting ? s.resetcount : 0;
      ASSERT_EQ(actual, shadow[i]) << "agent " << i << " step " << step;
    }
  }
}

}  // namespace
}  // namespace ppsim
