// Statistical equivalence harness shared by the engine/strategy validation
// suites (tests/engine_equivalence_test.cpp, tests/scenario_test.cpp).
//
// The repo's correctness discipline for every simulation strategy is the
// same: a new engine must measure the same convergence-time distribution as
// the ground-truth agent array, checked as overlapping confidence intervals
// over independent seeds, plus bit-determinism for anything that claims to
// be a pure function of its seed. Before this header each test file carried
// its own copy of the CI-overlap check with an ad-hoc widening constant;
// the helpers here make the family control explicit so every present and
// future strategy is validated identically:
//
//   family_widen(k)        - Bonferroni widening for k simultaneous
//                            CI-overlap checks: each pairwise check uses
//                            z_{1 - 0.025/k}/z_{0.975}-widened intervals,
//                            holding the whole family's false-alarm rate
//                            near the single-test 5%
//   expect_overlapping_ci  - the overlap assertion itself
//   seeded_values          - per-seed measurement vector (trial i runs
//                            derive_seed(base, i)); running two engines
//                            with the same base gives index-aligned paired
//                            runs
//   expect_bit_identical   - exact equality of two measurement vectors
//   expect_paired_bit_identical
//                          - per-seed paired determinism: two run callables
//                            must produce bitwise-equal values on every
//                            derived seed (e.g. the same engine at
//                            different worker-thread counts)
//   chi2_critical          - upper ~0.001 chi-square quantile
//                            (Wilson-Hilferty), the significance the repo's
//                            goodness-of-fit tests standardize on
//   expect_matches_pmf     - chi-square GOF of a sample vector against an
//                            arbitrary closed-form pmf, with small-bin
//                            merging (shared by the discrete-sampler and
//                            topology-sampling suites)
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/rng.h"
#include "core/stats.h"

namespace ppsim {
namespace stat_harness {

// Inverse standard normal cdf (Acklam's rational approximation; absolute
// error < 1.2e-8 over (0, 1), far below what a widening factor needs).
inline double inverse_normal_cdf(double p) {
  if (!(p > 0.0 && p < 1.0))
    throw std::invalid_argument("inverse_normal_cdf needs p in (0, 1)");
  constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                          -2.759285104469687e+02, 1.383577518672690e+02,
                          -3.066479806614716e+01, 2.506628277459239e+00};
  constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                          -1.556989798598866e+02, 6.680131188771972e+01,
                          -1.328068155288572e+01};
  constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                          -2.400758277161838e+00, -2.549732539343734e+00,
                          4.374664141464968e+00,  2.938163982698783e+00};
  constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                          2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - p_low) return -inverse_normal_cdf(1.0 - p);
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

// Widening factor for a family of `comparisons` simultaneous CI-overlap
// checks (1.0 for a single check; ~1.31 for 5, ~1.70 for 60).
inline double family_widen(std::size_t comparisons) {
  if (comparisons <= 1) return 1.0;
  return inverse_normal_cdf(1.0 - 0.025 / static_cast<double>(comparisons)) /
         1.959963984540054;
}

// The cross-engine acceptance check: the two summaries' (widened) 95%
// confidence intervals on the mean must overlap.
inline void expect_overlapping_ci(const Summary& a, const Summary& b,
                                  const std::string& what,
                                  double widen = 1.0) {
  const double lo_a = a.mean - widen * a.ci95;
  const double hi_a = a.mean + widen * a.ci95;
  const double lo_b = b.mean - widen * b.ci95;
  const double hi_b = b.mean + widen * b.ci95;
  EXPECT_LE(lo_a, hi_b) << what << ": CIs disjoint: [" << lo_a << ", "
                        << hi_a << "] vs [" << lo_b << ", " << hi_b << "]";
  EXPECT_LE(lo_b, hi_a) << what << ": CIs disjoint: [" << lo_a << ", "
                        << hi_a << "] vs [" << lo_b << ", " << hi_b << "]";
}

// Per-seed measurement vector: trial i measures one(derive_seed(base, i)).
template <class F>
std::vector<double> seeded_values(std::uint32_t seeds, std::uint64_t base,
                                  F&& one) {
  std::vector<double> xs;
  xs.reserve(seeds);
  for (std::uint32_t i = 0; i < seeds; ++i)
    xs.push_back(one(derive_seed(base, i)));
  return xs;
}

inline void expect_bit_identical(const std::vector<double>& a,
                                 const std::vector<double>& b,
                                 const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i], b[i]) << what << ": trial " << i << " diverged";
}

// Per-seed paired determinism: `a` and `b` are two spellings of what must
// be the same pure function of the seed (e.g. one engine run with 1 worker
// thread and with 8); every derived seed must produce bitwise-equal values.
template <class FA, class FB>
void expect_paired_bit_identical(std::uint32_t seeds, std::uint64_t base,
                                 FA&& a, FB&& b, const std::string& what) {
  for (std::uint32_t i = 0; i < seeds; ++i) {
    const std::uint64_t seed = derive_seed(base, i);
    EXPECT_EQ(a(seed), b(seed)) << what << ": seed index " << i;
  }
}

// Upper ~0.001 quantile of chi-square with df degrees of freedom
// (Wilson-Hilferty approximation; accurate to a few percent for df >= 3,
// which only makes the tests slightly conservative or slightly lax — fixed
// seeds keep them deterministic either way).
inline double chi2_critical(double df) {
  const double z = 3.09;  // standard normal upper 0.001 quantile
  const double t = 1.0 - 2.0 / (9.0 * df) + z * std::sqrt(2.0 / (9.0 * df));
  return df * t * t * t;
}

// Chi-square against an arbitrary pmf over [0, support]: bins with expected
// count < 8 are merged into their neighbor toward the mode, so the
// asymptotic chi-square approximation holds.
inline void expect_matches_pmf(
    const std::vector<std::uint64_t>& samples, std::uint64_t support_max,
    const std::function<double(std::uint64_t)>& pmf, const char* label) {
  const double n = static_cast<double>(samples.size());
  std::vector<double> observed(support_max + 2, 0.0);
  for (std::uint64_t s : samples) {
    ASSERT_LE(s, support_max) << label << ": sample beyond support";
    observed[s] += 1.0;
  }
  std::vector<double> expected(support_max + 2, 0.0);
  double mass = 0.0;
  for (std::uint64_t k = 0; k <= support_max; ++k) {
    expected[k] = n * pmf(k);
    mass += pmf(k);
  }
  ASSERT_NEAR(mass, 1.0, 1e-9) << label << ": pmf does not sum to 1";

  // Merge small-expectation bins left to right, then fold the remainder
  // into the last kept bin.
  std::vector<double> obs_bins, exp_bins;
  double o = 0.0, e = 0.0;
  for (std::uint64_t k = 0; k <= support_max; ++k) {
    o += observed[k];
    e += expected[k];
    if (e >= 8.0) {
      obs_bins.push_back(o);
      exp_bins.push_back(e);
      o = e = 0.0;
    }
  }
  if (e > 0.0 && !exp_bins.empty()) {
    obs_bins.back() += o;
    exp_bins.back() += e;
  }
  ASSERT_GE(exp_bins.size(), 3u) << label << ": too few bins";
  double chi2 = 0.0;
  for (std::size_t i = 0; i < exp_bins.size(); ++i) {
    const double d = obs_bins[i] - exp_bins[i];
    chi2 += d * d / exp_bins[i];
  }
  const double df = static_cast<double>(exp_bins.size()) - 1.0;
  EXPECT_LE(chi2, chi2_critical(df))
      << label << ": chi2 = " << chi2 << " over " << exp_bins.size()
      << " bins (critical " << chi2_critical(df) << ")";
}

}  // namespace stat_harness
}  // namespace ppsim
