// Edge cases and differential checks across modules: minimum population
// sizes, boundary ranks, saturated counters, and cross-implementation
// agreement between independent code paths.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/barrier.h"
#include "analysis/convergence.h"
#include "analysis/experiments.h"
#include "core/simulation.h"
#include "init/optimal_silent_init.h"
#include "init/silent_nstate_init.h"
#include "init/sublinear_init.h"
#include "processes/bounded_epidemic.h"
#include "processes/epidemic.h"
#include "protocols/leader.h"
#include "protocols/optimal_silent.h"
#include "protocols/silent_nstate.h"
#include "protocols/silent_nstate_fast.h"
#include "protocols/sublinear.h"

namespace ppsim {
namespace {

// ---------------- n = 2: the smallest legal population. ----------------

TEST(EdgeN2, SilentNStateStabilizes) {
  SilentNStateSSR proto(2);
  RunOptions opts;
  opts.max_interactions = 100000;
  opts.verify_silent = true;
  for (std::uint32_t r : {0u, 1u}) {
    const RunResult res =
        run_until_ranked(proto, silent_nstate_all_same(2, r), 5 + r, opts);
    ASSERT_TRUE(res.stabilized);
  }
}

TEST(EdgeN2, OptimalSilentAllAdversaries) {
  const auto params = OptimalSilentParams::standard(2);
  for (auto kind : {OsAdversary::kUniformRandom, OsAdversary::kAllLeaders,
                    OsAdversary::kAllUnsettledZero, OsAdversary::kAllDormant}) {
    for (int trial = 0; trial < 3; ++trial) {
      OptimalSilentSSR proto(params);
      RunOptions opts;
      opts.max_interactions = 1ull << 24;
      opts.verify_silent = true;
      const RunResult r = run_until_ranked(
          proto, optimal_silent_config(params, kind, derive_seed(1, trial)),
          derive_seed(2, trial), opts);
      ASSERT_TRUE(r.stabilized) << to_string(kind) << " trial " << trial;
    }
  }
}

TEST(EdgeN2, BinaryTreeHasExactlyOneChild) {
  // n = 2: rank 1's children would be 2 and 3; only 2 exists.
  const auto params = OptimalSilentParams::standard(2);
  OptimalSilentSSR proto(params);
  OptimalSilentSSR::Counters cnt;
  Rng rng(1);
  OptimalSilentSSR::State leader;
  leader.role = OsRole::Settled;
  leader.rank = 1;
  OptimalSilentSSR::State follower;
  follower.role = OsRole::Unsettled;
  follower.errorcount = params.emax;
  proto.interact(leader, follower, rng, cnt);
  EXPECT_EQ(follower.rank, 2u);
  OptimalSilentSSR::State extra;
  extra.role = OsRole::Unsettled;
  extra.errorcount = params.emax;
  proto.interact(leader, extra, rng, cnt);
  EXPECT_EQ(extra.role, OsRole::Unsettled);  // rank 3 > n: not assigned
}

// ---------------- Boundary ranks in the rank tree. ----------------

TEST(EdgeTree, PowerOfTwoBoundary) {
  // n = 8: rank 4's children are 8 and (9 > 8 rejected).
  const auto params = OptimalSilentParams::standard(8);
  OptimalSilentSSR proto(params);
  OptimalSilentSSR::Counters cnt;
  Rng rng(1);
  OptimalSilentSSR::State four;
  four.role = OsRole::Settled;
  four.rank = 4;
  OptimalSilentSSR::State u1, u2;
  u1.role = u2.role = OsRole::Unsettled;
  u1.errorcount = u2.errorcount = params.emax;
  proto.interact(four, u1, rng, cnt);
  EXPECT_EQ(u1.rank, 8u);
  proto.interact(four, u2, rng, cnt);
  EXPECT_EQ(u2.role, OsRole::Unsettled);
  EXPECT_EQ(four.children, 1u);
}

TEST(EdgeTree, ChildrenFieldSaturatesAtTwo) {
  const auto params = OptimalSilentParams::standard(32);
  OptimalSilentSSR proto(params);
  OptimalSilentSSR::Counters cnt;
  Rng rng(1);
  OptimalSilentSSR::State r1;
  r1.role = OsRole::Settled;
  r1.rank = 1;
  for (int k = 0; k < 5; ++k) {
    OptimalSilentSSR::State u;
    u.role = OsRole::Unsettled;
    u.errorcount = params.emax;
    proto.interact(r1, u, rng, cnt);
  }
  EXPECT_EQ(r1.children, 2u);  // never exceeds 2
}

// ---------------- Counter saturation. ----------------

TEST(EdgeCounters, ErrorcountStopsAtZero) {
  const auto params = OptimalSilentParams::standard(4);
  OptimalSilentSSR proto(params);
  OptimalSilentSSR::Counters cnt;
  Rng rng(1);
  OptimalSilentSSR::State a, b;
  a.role = OsRole::Unsettled;
  a.errorcount = 0;  // adversarial: already exhausted
  b.role = OsRole::Unsettled;
  b.errorcount = 0;
  proto.interact(a, b, rng, cnt);
  // Both trigger immediately (no underflow).
  EXPECT_EQ(a.role, OsRole::Resetting);
  EXPECT_EQ(b.role, OsRole::Resetting);
}

TEST(EdgeCounters, DelayTimerZeroAwakensImmediately) {
  const auto params = OptimalSilentParams::standard(4);
  OptimalSilentSSR proto(params);
  OptimalSilentSSR::Counters cnt;
  Rng rng(1);
  OptimalSilentSSR::State a, b;
  for (auto* s : {&a, &b}) {
    s->role = OsRole::Resetting;
    s->leader = false;
    s->resetcount = 0;
    s->delaytimer = 0;  // adversarial
  }
  proto.interact(a, b, rng, cnt);
  EXPECT_EQ(a.role, OsRole::Unsettled);
  EXPECT_EQ(b.role, OsRole::Unsettled);
}

// ---------------- Differential: fast vs direct on arbitrary counts. ------

TEST(Differential, FastSimulatorMatchesDirectOnRandomCounts) {
  constexpr std::uint32_t kN = 16;
  Rng gen(99);
  for (int cfg = 0; cfg < 5; ++cfg) {
    // A random rank-count vector summing to n.
    std::vector<std::uint32_t> counts(kN, 0);
    for (std::uint32_t i = 0; i < kN; ++i)
      ++counts[gen.below(kN)];
    // Direct: realize the counts as agents.
    std::vector<SilentNStateSSR::State> cfg_states;
    for (std::uint32_t r = 0; r < kN; ++r)
      for (std::uint32_t k = 0; k < counts[r]; ++k)
        cfg_states.push_back({r});
    constexpr int kTrials = 150;
    RunOptions opts;
    opts.max_interactions = 1ull << 28;
    std::vector<double> direct, fast;
    for (int t = 0; t < kTrials; ++t) {
      const RunResult r = run_until_ranked(SilentNStateSSR(kN), cfg_states,
                                           derive_seed(cfg, t), opts);
      direct.push_back(static_cast<double>(r.interactions));
      fast.push_back(static_cast<double>(
          SilentNStateFast(kN).run(counts, derive_seed(cfg + 100, t))
              .interactions));
    }
    const Summary sd = summarize(direct);
    const Summary sf = summarize(fast);
    EXPECT_NEAR(sd.mean, sf.mean, 3.5 * (sd.ci95 + sf.ci95))
        << "config " << cfg;
  }
}

// The barrier rank is itself preserved by the accelerated simulator's
// events: replay fast events on counts and check invariant (1).
TEST(Differential, BarrierHoldsUnderAcceleratedEvents) {
  constexpr std::uint32_t kN = 12;
  auto counts = silent_nstate_worst_counts(kN);
  const std::uint32_t k = barrier_rank(counts);
  ASSERT_TRUE(barrier_invariant_holds(counts, k));
  // One fast run mutates counts internally; re-run step-by-step here.
  Rng rng(3);
  std::vector<std::uint32_t> m = counts;
  for (int event = 0; event < 200; ++event) {
    // Pick any colliding rank (deterministically: the first).
    std::uint32_t r = kN;
    for (std::uint32_t i = 0; i < kN; ++i)
      if (m[i] >= 2) {
        r = i;
        break;
      }
    if (r == kN) break;  // silent
    --m[r];
    ++m[(r + 1) % kN];
    ASSERT_TRUE(barrier_invariant_holds(m, k)) << "event " << event;
  }
}

// ---------------- Epidemic process corner cases. ----------------

TEST(EdgeProcesses, EpidemicWithTwoAgents) {
  const auto r = run_epidemic(2, 7);
  EXPECT_EQ(r.interactions, 1u);  // the only pair must meet once
}

TEST(EdgeProcesses, BoundedEpidemicRejectsBadLevels) {
  EXPECT_THROW(run_bounded_epidemic(8, 3, 0, 1), std::invalid_argument);
  EXPECT_THROW(run_bounded_epidemic(8, 3, 4, 1), std::invalid_argument);
  EXPECT_THROW(run_bounded_epidemic(1, 3, 1, 1), std::invalid_argument);
}

TEST(EdgeProcesses, BoundedEpidemicTwoAgents) {
  const auto r = run_bounded_epidemic(2, 1, 1, 3);
  EXPECT_EQ(r.interactions, 1u);
  EXPECT_DOUBLE_EQ(r.tau_by_level[1], 0.5);
}

// ---------------- Sublinear corner cases. ----------------

TEST(EdgeSublinear, RosterAtExactlyNMinusOneDoesNotRank) {
  const auto p = SublinearParams::constant_h(4, 1);
  SublinearTimeSSR proto(p);
  SublinearTimeSSR::Counters cnt;
  Rng rng(1);
  auto names = [&] {
    Rng g(5);
    return distinct_names(4, p.name_len, g);
  }();
  auto a = proto.make_collecting(names[0]);
  auto b = proto.make_collecting(names[1]);
  auto c = proto.make_collecting(names[2]);
  proto.interact(a, b, rng, cnt);
  proto.interact(a, c, rng, cnt);
  EXPECT_EQ(a.roster.size(), 3u);  // n-1
  EXPECT_EQ(a.rank, 0u);           // no rank until all n names are present
}

TEST(EdgeSublinear, GhostAtExactBoundaryDoesNotTrigger) {
  // union == n must NOT trigger (only > n does).
  const auto p = SublinearParams::constant_h(3, 1);
  SublinearTimeSSR proto(p);
  SublinearTimeSSR::Counters cnt;
  Rng rng(1);
  Rng g(7);
  auto names = distinct_names(3, p.name_len, g);
  auto a = proto.make_collecting(names[0]);
  auto b = proto.make_collecting(names[1]);
  a.roster.insert(names[2]);  // third real name already known
  proto.interact(a, b, rng, cnt);
  EXPECT_EQ(a.role, SlRole::Collecting);
  EXPECT_EQ(a.roster.size(), 3u);
  EXPECT_NE(a.rank, 0u);  // full roster: ranked
}

TEST(EdgeSublinear, EmptyNamesCompareAndDetect) {
  // Two agents with epsilon names (mid-regeneration debris): the direct
  // check treats equal empty names as a collision, which is sound.
  const auto p = SublinearParams::constant_h(4, 1);
  SublinearTimeSSR proto(p);
  SublinearTimeSSR::Counters cnt;
  Rng rng(1);
  auto a = proto.make_collecting(Name());
  auto b = proto.make_collecting(Name());
  proto.interact(a, b, rng, cnt);
  EXPECT_EQ(a.role, SlRole::Resetting);
}

TEST(EdgeSublinear, RecruitedAgentKeepsItsName) {
  // Protocol 2's recruitment does not touch the name field; only a
  // propagating resetcount clears it (Protocol 5 lines 11-12).
  const auto p = SublinearParams::constant_h(4, 1);
  SublinearTimeSSR proto(p);
  auto s = proto.make_collecting(Name::from_bits(5, p.name_len));
  const Name before = s.name;
  proto.recruit(s);
  EXPECT_EQ(s.role, SlRole::Resetting);
  EXPECT_EQ(s.name, before);
}

// ---------------- Leader view corner cases. ----------------

TEST(EdgeLeader, NoLeaderBeforeRanking) {
  const auto p = SublinearParams::constant_h(4, 1);
  SublinearTimeSSR proto(p);
  Rng g(9);
  auto names = distinct_names(4, p.name_len, g);
  std::vector<SublinearTimeSSR::State> states;
  for (const auto& nm : names) states.push_back(proto.make_collecting(nm));
  EXPECT_EQ(count_leaders(proto, states), 0u);
  EXPECT_FALSE(unique_leader(proto, states).has_value());
}

TEST(EdgeLeader, TwoRankOnesMeansNoUniqueLeader) {
  SilentNStateSSR proto(4);
  std::vector<SilentNStateSSR::State> states = {{0}, {0}, {2}, {3}};
  EXPECT_EQ(count_leaders(proto, states), 2u);
  EXPECT_FALSE(unique_leader(proto, states).has_value());
  EXPECT_FALSE(is_correctly_ranked(proto, states));
}

}  // namespace
}  // namespace ppsim
