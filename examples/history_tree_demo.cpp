// History-tree demo: watch Detect-Name-Collision catch an impostor.
//
// Five agents run the collision-detection layer of Sublinear-Time-SSR in
// isolation. Two of them ("alice" and "mallory") are given the same name.
// The demo scripts a short interaction sequence, printing each agent's
// history tree, until a third party that has heard about alice meets
// mallory — who cannot echo the recorded sync values and is exposed
// (Protocol 8's Check-Path-Consistency returning Inconsistent).
//
// Build & run:  ./build/examples/history_tree_demo
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/name.h"
#include "core/rng.h"
#include "protocols/collision_tree.h"

using namespace ppsim;

namespace {

struct Agent {
  std::string label;
  HistoryTree tree;
};

void render(const HistoryNode& node, const std::string& indent,
            std::vector<Name>& path, std::int64_t sigma, std::int64_t ops,
            std::uint32_t depth_left,
            const std::vector<Agent>& directory) {
  auto label_of = [&](const Name& n) -> std::string {
    for (const auto& a : directory)
      if (a.tree.initialized() && a.tree.own_name() == n) return a.label;
    return n.to_string();
  };
  std::printf("%s%s\n", indent.c_str(), label_of(node.name).c_str());
  if (depth_left == 0) return;
  path.push_back(node.name);
  for (const auto& e : node.children) {
    bool repeated = false;
    for (const auto& anc : path)
      if (anc == e.child->name) repeated = true;
    if (repeated) continue;
    const auto timer =
        std::max<std::int64_t>(0, e.expiry + sigma - ops);
    std::printf("%s|-- sync=%llu timer=%lld --> ", indent.c_str(),
                static_cast<unsigned long long>(e.sync),
                static_cast<long long>(timer));
    std::vector<Name> sub = path;
    render(*e.child, indent + "    ", sub, sigma + e.shift, ops,
           depth_left - 1, directory);
  }
  path.pop_back();
}

void show(const Agent& a, const std::vector<Agent>& directory,
          std::uint32_t h) {
  std::printf("%s's history tree:\n", a.label.c_str());
  std::vector<Name> path;
  render(*a.tree.root(), "  ", path, 0,
         static_cast<std::int64_t>(a.tree.ops()), h, directory);
}

}  // namespace

int main(int argc, char** argv) {
  ppsim::require_no_args(argc, argv);
  constexpr std::uint32_t kH = 2;
  CollisionDetectorParams params;
  params.depth_h = kH;
  params.smax = 97;  // small two-digit syncs for readability
  params.th = 1000;
  params.direct_check = false;  // force the indirect mechanism
  CollisionDetector detector(params);

  std::vector<Agent> agents(5);
  agents[0].label = "alice";
  agents[1].label = "bob";
  agents[2].label = "carol";
  agents[3].label = "dave";
  agents[4].label = "mallory (same name as alice!)";
  const Name alice_name = Name::from_bits(0b101101, 6);
  agents[0].tree.reset(alice_name);
  agents[1].tree.reset(Name::from_bits(0b000111, 6));
  agents[2].tree.reset(Name::from_bits(0b011001, 6));
  agents[3].tree.reset(Name::from_bits(0b110010, 6));
  agents[4].tree.reset(alice_name);  // the impostor

  Rng rng(20210712);
  CollisionDetectorStats detector_stats;
  auto meet = [&](int i, int j) {
    std::printf("\n>>> %s meets %s\n", agents[i].label.c_str(),
                agents[j].label.c_str());
    const bool collision = detector.detect_and_update(
        agents[i].tree, agents[j].tree, rng, detector_stats);
    if (collision) {
      std::printf("    COLLISION DETECTED: the population would now "
                  "trigger Propagate-Reset and re-randomize names\n");
    } else {
      show(agents[i], agents, kH);
      show(agents[j], agents, kH);
    }
    return collision;
  };

  std::printf("H = %u: agents remember interaction chains of length <= %u\n",
              kH, kH);

  // bob meets alice and learns her sync history...
  meet(1, 0);
  // ...then gossips with carol (alice's record travels one hop)...
  meet(2, 1);
  // ...alice refreshes with dave (irrelevant chatter)...
  meet(0, 3);
  // ...and now carol bumps into mallory. Carol's tree holds a path
  // carol -> bob -> alice; mallory, asked to verify it, has no matching
  // sync values.
  const bool caught = meet(2, 4);
  std::printf("\n%s\n",
              caught
                  ? "mallory was exposed by a two-hop history she never took "
                    "part in — no direct alice-mallory meeting was needed."
                  : "mallory slipped through (try another seed)");
  return caught ? 0 : 1;
}
