// Protocol face-off: all three self-stabilizing ranking protocols on the
// same adversarial inputs — Table 1 in action, on your choice of backend.
//
// For a few population sizes, each protocol starts from an equally hostile
// configuration and races to a stable ranking. The output shows the paper's
// time hierarchy (Theta(n^2) vs Theta(n) vs sublinear) and the price paid
// in state complexity.
//
// Every race is one declarative ScenarioSpec executed by the protocol
// registry (the same specs `ppsle_run --scenario` takes): the backend is
// just the spec's engine field. Sublinear-Time-SSR always runs on the
// agent array — its quasi-exponential state space is the textbook example
// of a protocol the count-based backend cannot enumerate, and the registry
// rejects engine=batch for it.
//
// Build & run:  ./build/protocol_faceoff                  # agent array
//               ./build/protocol_faceoff --backend=batch  # batched engine
#include <cstdio>
#include <string>

#include "analysis/scenarios.h"
#include "common/cli.h"

using namespace ppsim;

namespace {

bool use_batch = false;

// One race = one ScenarioSpec, single trial.
double race(const std::string& protocol, const std::string& init,
            std::uint32_t n, std::uint64_t seed, bool force_array = false) {
  ScenarioSpec spec;
  spec.protocol = protocol;
  spec.init = init;
  spec.engine = (use_batch && !force_array) ? "batch" : "array";
  spec.n = n;
  spec.seed = seed;
  spec.trials = 1;
  return run_scenario(spec).values.front();
}

}  // namespace

int main(int argc, char** argv) {
  use_batch = parse_backend_flag(argc, argv);
  std::printf("self-stabilizing ranking face-off (stabilization parallel "
              "time, one adversarial run each)\n");
  std::printf("backend: %s (Sublinear always runs on the agent array: its "
              "state space is not enumerable)\n\n",
              use_batch ? "count-based batched" : "agent array");
  std::printf("%6s %18s %18s %20s %22s\n", "n", "Silent-n-state",
              "Optimal-Silent", "Sublinear (H=1)", "Sublinear (H=log n)");
  std::printf("%6s %18s %18s %20s %22s\n", "", "n states, silent",
              "O(n) states, silent", "exp states, live", "exp states, live");

  std::uint64_t seed = 1;
  for (std::uint32_t n : {16u, 32u, 64u, 128u}) {
    const double t1 = race("silent-nstate", "uniform-random", n, seed += 10);
    const double t2 = race("optimal-silent", "uniform-random", n, seed += 10);
    const double t3 = race("sublinear-h1", "uniform-random", n, seed += 10,
                           /*force_array=*/true);
    // The H = Theta(log n) configuration's history trees get expensive to
    // *simulate* (not to run!) beyond small n; keep the demo snappy.
    const double t4 = n <= 32 ? race("sublinear-hlog", "uniform-random", n,
                                     seed += 10, /*force_array=*/true)
                              : -1.0;
    if (t4 >= 0)
      std::printf("%6u %18.1f %18.1f %20.1f %22.1f\n", n, t1, t2, t3, t4);
    else
      std::printf("%6u %18.1f %18.1f %20.1f %22s\n", n, t1, t2, t3,
                  "(skipped: heavy)");
  }

  std::printf(
      "\nreading the race: the n-state baseline quadruples per doubling of "
      "n;\nOptimal-Silent doubles; the Sublinear rows grow far slower, "
      "paying with\nquasi-exponential state (their absolute times carry a "
      "fixed reset-pipeline\noverhead that shrinks in relative terms as n "
      "grows). This is Table 1 of the\npaper, measured.\n");
  return 0;
}
